// Concurrency-control scheme selection (paper §5.2.1: "Falcon's design is
// neutral to concurrency control algorithms").

#ifndef SRC_CC_CC_SCHEME_H_
#define SRC_CC_CC_SCHEME_H_

#include <cstdint>
#include <string_view>

namespace falcon {

enum class CcScheme : uint8_t {
  k2pl,     // two-phase locking, no-wait
  kTo,      // timestamp ordering
  kOcc,     // optimistic, 3-phase (read / validate / write)
  kMv2pl,   // 2PL + DRAM version chains for non-blocking read-only txns
  kMvTo,    // TO + version chains
  kMvOcc,   // OCC + version chains
};

constexpr bool IsMultiVersion(CcScheme s) {
  return s == CcScheme::kMv2pl || s == CcScheme::kMvTo || s == CcScheme::kMvOcc;
}

// The single-version protocol a (possibly MV) scheme runs for read-write
// transactions.
constexpr CcScheme BaseScheme(CcScheme s) {
  switch (s) {
    case CcScheme::kMv2pl:
      return CcScheme::k2pl;
    case CcScheme::kMvTo:
      return CcScheme::kTo;
    case CcScheme::kMvOcc:
      return CcScheme::kOcc;
    default:
      return s;
  }
}

constexpr std::string_view CcSchemeName(CcScheme s) {
  switch (s) {
    case CcScheme::k2pl:
      return "2PL";
    case CcScheme::kTo:
      return "TO";
    case CcScheme::kOcc:
      return "OCC";
    case CcScheme::kMv2pl:
      return "MV2PL";
    case CcScheme::kMvTo:
      return "MVTO";
    case CcScheme::kMvOcc:
      return "MVOCC";
  }
  return "?";
}

}  // namespace falcon

#endif  // SRC_CC_CC_SCHEME_H_
