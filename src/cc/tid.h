// Transaction ID generation and active-transaction tracking (paper §5.2.1).
//
// The paper derives TIDs from clock_gettime as {timestamp << 8 | thread_id}.
// We substitute a global monotone counter for the wall clock (documented in
// DESIGN.md): the engine only relies on TIDs being unique and monotone, and
// the counter makes tests deterministic. The <<8 thread-id suffix layout is
// kept so per-thread TID streams are disjoint, exactly as in the paper.

#ifndef SRC_CC_TID_H_
#define SRC_CC_TID_H_

#include <atomic>
#include <cstdint>

#include "src/common/constants.h"

namespace falcon {

inline constexpr uint64_t kTidThreadBits = 8;

class TidGenerator {
 public:
  // Starts issuing TIDs strictly above `floor` (recovery passes the maximum
  // pre-crash TID so timestamps stay monotone across restarts, §5.2.1 fn 2).
  explicit TidGenerator(uint64_t floor = 0) { Reset(floor); }

  void Reset(uint64_t floor) {
    counter_.store((floor >> kTidThreadBits) + 1, std::memory_order_relaxed);
  }

  uint64_t Next(uint32_t thread_id) {
    const uint64_t seq = counter_.fetch_add(1, std::memory_order_relaxed);
    return (seq << kTidThreadBits) | (thread_id & ((1u << kTidThreadBits) - 1));
  }

  // Upper bound on every TID issued so far (exclusive).
  uint64_t UpperBound() const {
    return counter_.load(std::memory_order_acquire) << kTidThreadBits;
  }

 private:
  std::atomic<uint64_t> counter_{1};
};

// Published TIDs of in-flight transactions, one slot per worker thread.
// Publishing the TID before any tuple access is what makes version
// reclamation safe (see src/storage/version_heap.h).
class ActiveTidTable {
 public:
  static constexpr uint64_t kIdle = UINT64_MAX;

  void Publish(uint32_t thread_id, uint64_t tid) {
    slots_[thread_id].value.store(tid, std::memory_order_seq_cst);
  }

  void Clear(uint32_t thread_id) {
    slots_[thread_id].value.store(kIdle, std::memory_order_release);
  }

  // Smallest TID of any in-flight transaction, or `fallback` when idle.
  // Versions/tuples with timestamps strictly below the result are invisible
  // to every current and future transaction.
  uint64_t MinActive(uint64_t fallback) const {
    uint64_t min = kIdle;
    for (const auto& slot : slots_) {
      const uint64_t v = slot.value.load(std::memory_order_acquire);
      if (v < min) {
        min = v;
      }
    }
    return min == kIdle ? fallback : min;
  }

 private:
  struct alignas(kCacheLineSize) Slot {
    std::atomic<uint64_t> value{kIdle};
  };
  Slot slots_[kMaxThreads];
};

}  // namespace falcon

#endif  // SRC_CC_TID_H_
