// Tuple-level concurrency-control primitives over the 8-byte cc_word in the
// tuple header (paper §5.2.1 and Figure 5's "CC Metadata Field" table).
//
//   2PL family:  cc_word = [write_lock:1 | reader_count:63], cas-acquired,
//                no-wait policy (conflict -> immediate abort, avoids
//                deadlocks).
//   TO/OCC:      cc_word = [lock:1 | write_ts:63]; read_ts is a separate
//                header field maintained with an atomic max (TO only).
//
// All operations are free functions over std::atomic<uint64_t> so every
// engine variant shares them.

#ifndef SRC_CC_LOCKS_H_
#define SRC_CC_LOCKS_H_

#include <atomic>
#include <cstdint>

namespace falcon {

inline constexpr uint64_t kCcLockBit = 1ull << 63;
// Set when an out-of-place engine supersedes a version: the timestamp stays
// readable for snapshot visibility, but the word changes so optimistic
// readers that observed the pre-retirement word fail validation.
inline constexpr uint64_t kCcRetiredBit = 1ull << 62;
inline constexpr uint64_t kCcTsMask = kCcRetiredBit - 1;

// ---- 2PL (no-wait) --------------------------------------------------------
//
// Layout: [write:1 | generation:8 | reader_count:55].
//
// The generation tag (from the catalog, bumped on every recovery) makes lock
// state left behind by a crash decode as "unlocked": read locks belong to
// volatile read sets the recovery log replay cannot see, so without the tag
// a crashed reader would block writers forever. This keeps Falcon's recovery
// free of heap scans (§5.3).

inline constexpr uint64_t k2plWriteBit = 1ull << 63;
inline constexpr int k2plGenShift = 55;
inline constexpr uint64_t k2plGenMask = 0xffull << k2plGenShift;
inline constexpr uint64_t k2plReaderMask = (1ull << k2plGenShift) - 1;

// Decodes `word` under `gen`: a stale generation reads as fully unlocked.
inline uint64_t Normalize2pl(uint64_t word, uint64_t gen) {
  if (((word & k2plGenMask) >> k2plGenShift) != (gen & 0xff)) {
    return (gen & 0xff) << k2plGenShift;
  }
  return word;
}

// Acquires the write lock iff the tuple is entirely unlocked.
inline bool TryLockWrite2pl(std::atomic<uint64_t>& word, uint64_t gen) {
  uint64_t cur = word.load(std::memory_order_acquire);
  for (;;) {
    const uint64_t norm = Normalize2pl(cur, gen);
    if ((norm & k2plWriteBit) != 0 || (norm & k2plReaderMask) != 0) {
      return false;
    }
    if (word.compare_exchange_weak(cur, norm | k2plWriteBit, std::memory_order_acquire)) {
      return true;
    }
  }
}

// Acquires one read lock iff no writer holds the tuple.
inline bool TryLockRead2pl(std::atomic<uint64_t>& word, uint64_t gen) {
  uint64_t cur = word.load(std::memory_order_acquire);
  for (;;) {
    const uint64_t norm = Normalize2pl(cur, gen);
    if ((norm & k2plWriteBit) != 0) {
      return false;
    }
    if (word.compare_exchange_weak(cur, norm + 1, std::memory_order_acquire)) {
      return true;
    }
  }
}

// Upgrades a held read lock to a write lock iff the caller is the only
// reader. Fails (no-wait) otherwise; the caller still holds its read lock.
inline bool TryUpgrade2pl(std::atomic<uint64_t>& word, uint64_t gen) {
  uint64_t expected = ((gen & 0xff) << k2plGenShift) | 1;
  return word.compare_exchange_strong(expected, ((gen & 0xff) << k2plGenShift) | k2plWriteBit,
                                      std::memory_order_acquire);
}

inline void UnlockWrite2pl(std::atomic<uint64_t>& word, uint64_t gen) {
  word.store((gen & 0xff) << k2plGenShift, std::memory_order_release);
}

inline void UnlockRead2pl(std::atomic<uint64_t>& word) {
  word.fetch_sub(1, std::memory_order_release);
}

// ---- TO / OCC (timestamped word with lock bit) ----------------------------

// Locks the word iff it is unlocked, preserving the timestamp. Returns the
// pre-lock timestamp through `ts_out`.
inline bool TryLockTs(std::atomic<uint64_t>& word, uint64_t* ts_out) {
  uint64_t cur = word.load(std::memory_order_acquire);
  while ((cur & kCcLockBit) == 0) {
    if (word.compare_exchange_weak(cur, cur | kCcLockBit, std::memory_order_acquire)) {
      *ts_out = cur;
      return true;
    }
  }
  return false;
}

// Unlocks and installs a new timestamp in one release store.
inline void UnlockWithTs(std::atomic<uint64_t>& word, uint64_t new_ts) {
  word.store(new_ts & kCcTsMask, std::memory_order_release);
}

// Unlocks, restoring the pre-lock word (abort path). Preserves the retired
// bit; only the lock bit is cleared.
inline void UnlockRestoreTs(std::atomic<uint64_t>& word, uint64_t old_ts) {
  word.store(old_ts & ~kCcLockBit, std::memory_order_release);
}

inline bool IsLockedTs(uint64_t word) { return (word & kCcLockBit) != 0; }
inline uint64_t TsOf(uint64_t word) { return word & kCcTsMask; }

// Trace payload for a CC conflict edge: the "wounding" side a failed
// acquisition observed. TS schemes embed the writer's TID in the word
// (TsOf). 2PL words carry no owner identity — readers are an anonymous
// count — so the best stand-ins are the tuple's write timestamp when
// write-locked (the last writer published it there) and the reader count
// when readers block a write/upgrade.
inline uint64_t ConflictHolder2pl(uint64_t word, uint64_t gen, uint64_t write_ts) {
  const uint64_t norm = Normalize2pl(word, gen);
  return (norm & k2plWriteBit) != 0 ? write_ts : (norm & k2plReaderMask);
}

// Monotone max update of a read timestamp (TO).
inline void AdvanceReadTs(std::atomic<uint64_t>& read_ts, uint64_t tid) {
  uint64_t cur = read_ts.load(std::memory_order_relaxed);
  while (cur < tid &&
         !read_ts.compare_exchange_weak(cur, tid, std::memory_order_relaxed)) {
  }
}

}  // namespace falcon

#endif  // SRC_CC_LOCKS_H_
