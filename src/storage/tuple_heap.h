// The in-NVM tuple heap (paper §5.1): fixed-size tuple slots allocated from
// per-thread 2MB page chains, with per-thread deleted lists for recycling
// (§5.4). One TupleHeap instance manages one table.

#ifndef SRC_STORAGE_TUPLE_HEAP_H_
#define SRC_STORAGE_TUPLE_HEAP_H_

#include <cstdint>
#include <functional>

#include "src/pmem/arena.h"
#include "src/pmem/catalog.h"
#include "src/sim/thread_context.h"
#include "src/storage/tuple.h"

namespace falcon {

class TupleHeap {
 public:
  TupleHeap(NvmArena* arena, TableMeta* meta) : arena_(arena), meta_(meta) {}

  // Reclamation hooks installed by the engine:
  //  * `blocked` — true while the tuple is CC-locked (a reviving transaction
  //    may hold it); reclamation stops at a blocked head.
  //  * `on_reclaim(ctx, key, offset)` — runs just before the slot is reused;
  //    the engine removes the tuple's (stale) index entry here.
  void SetReclaimHooks(std::function<bool(const TupleHeader*)> blocked,
                       std::function<void(ThreadContext&, uint64_t, PmOffset)> on_reclaim) {
    reclaim_blocked_ = std::move(blocked);
    on_reclaim_ = std::move(on_reclaim);
  }

  TableMeta* meta() const { return meta_; }
  uint64_t slot_size() const { return meta_->slot_size; }
  uint64_t data_size() const { return meta_->tuple_data_size; }

  // Allocates a slot for `key` on `ctx`'s thread. Tries the thread's deleted
  // list first: the head entry is reclaimable when its delete timestamp is
  // below `min_active_tid` (no running transaction can still read it).
  // Returns kNullPm when the arena is out of pages.
  PmOffset Allocate(ThreadContext& ctx, uint64_t key, uint64_t min_active_tid);

  // Marks the tuple deleted and appends it to the deleting thread's local
  // deleted list. The caller must hold the tuple's write latch/lock.
  void MarkDeleted(ThreadContext& ctx, PmOffset tuple, uint64_t delete_tid);

  TupleHeader* Header(PmOffset tuple) const { return arena_->Ptr<TupleHeader>(tuple); }

  // Visits every valid tuple slot in the table across all thread chains.
  // Used by heap-scan recovery (ZenS) and by integrity checks. The visitor
  // receives the slot offset and its header.
  void ForEachSlot(const std::function<void(PmOffset, TupleHeader*)>& visit) const;

  // Number of slots currently reachable in page chains (valid or not).
  uint64_t CountSlots() const;

 private:
  // Pops the head of the thread's deleted list if reclaimable.
  PmOffset TryReclaim(ThreadContext& ctx, uint64_t min_active_tid);

  // Returns a fresh slot from the thread's current page, growing the chain.
  PmOffset AllocateFresh(ThreadContext& ctx);

  NvmArena* arena_;
  TableMeta* meta_;
  std::function<bool(const TupleHeader*)> reclaim_blocked_;
  std::function<void(ThreadContext&, uint64_t, PmOffset)> on_reclaim_;
};

}  // namespace falcon

#endif  // SRC_STORAGE_TUPLE_HEAP_H_
