// In-DRAM version heap for MVCC (paper §5.2.3, Figure 6).
//
// Old versions of tuples are DRAM-only: they are rebuilt trivially (empty)
// after a crash, which both avoids NVM writes during version creation and
// removes old-version cleanup from the recovery path (§5.4).
//
// Each worker thread owns a VersionHeap: versions it creates go into its
// per-thread version queue, naturally ordered by end_ts (the creating
// transaction's TID). When the queue grows past a threshold, the owner
// recycles every version whose end_ts is below the minimum active TID.
//
// Reclamation safety: a version V is freed only when V.end_ts < min_active.
// A reader with TID T walks from the tuple onto the chain only when the
// tuple's write_ts > T, and walks past a version N onto N.prev only when
// N.begin_ts > T. Since the successor of V (newer version or the tuple
// itself) has begin_ts/write_ts == V.end_ts, reaching V requires
// T < V.end_ts — impossible for T >= min_active. TIDs are published before
// any read and the global TID counter is monotone, so no current or future
// transaction can reach a reclaimed version.

#ifndef SRC_STORAGE_VERSION_HEAP_H_
#define SRC_STORAGE_VERSION_HEAP_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>

#include "src/common/constants.h"

namespace falcon {

// One old version of a tuple. Immutable once published (linked into a
// chain); `prev` points to the next-older version.
struct Version {
  uint64_t begin_ts = 0;  // write_ts of the tuple before the update
  uint64_t end_ts = 0;    // TID of the writer that superseded it
  Version* prev = nullptr;
  uint32_t data_size = 0;
  // Tuple data follows the struct.
  std::byte* data() { return reinterpret_cast<std::byte*>(this + 1); }
  const std::byte* data() const { return reinterpret_cast<const std::byte*>(this + 1); }
};

// Per-thread version allocator + queue. Not thread safe: only the owning
// worker allocates and recycles; other threads only traverse chains.
class VersionHeap {
 public:
  explicit VersionHeap(size_t gc_threshold = kVersionQueueGcThreshold)
      : gc_threshold_(gc_threshold) {}
  ~VersionHeap();

  VersionHeap(const VersionHeap&) = delete;
  VersionHeap& operator=(const VersionHeap&) = delete;

  // Allocates a version with room for `data_size` bytes. The caller fills
  // data/timestamps, links it into the tuple's chain, then calls Enqueue.
  Version* Allocate(uint32_t data_size);

  // Inserts a published version into the recycling queue. Versions must be
  // enqueued in end_ts order (guaranteed: per-thread TIDs are monotone).
  void Enqueue(Version* version);

  // True if the queue is long enough that the caller should pass a
  // min_active_tid and recycle (paper: "above a predefined threshold").
  bool NeedsGc() const { return queue_.size() >= gc_threshold_; }

  // Frees every queued version with end_ts < min_active_tid. Returns the
  // number recycled.
  size_t Gc(uint64_t min_active_tid);

  // Frees everything (crash simulation: DRAM contents vanish).
  void DropAll();

  size_t queued() const { return queue_.size(); }
  size_t live_bytes() const { return live_bytes_; }

  // Cumulative activity counters, proving the GC actually fires (versions
  // recycled excludes DropAll, which models DRAM loss, not reclamation).
  uint64_t allocated_total() const { return allocated_total_; }
  uint64_t recycled_total() const { return recycled_total_; }
  uint64_t gc_runs() const { return gc_runs_; }
  void ResetStats() {
    allocated_total_ = 0;
    recycled_total_ = 0;
    gc_runs_ = 0;
  }

 private:
  void Free(Version* version);

  size_t gc_threshold_;
  std::deque<Version*> queue_;  // front = oldest end_ts
  // Simple size-class free lists would be a premature optimization here;
  // versions are malloc'd and freed, and their cost is modeled by the
  // simulated clock, not by host allocator performance.
  size_t live_bytes_ = 0;
  uint64_t allocated_total_ = 0;
  uint64_t recycled_total_ = 0;
  uint64_t gc_runs_ = 0;
};

}  // namespace falcon

#endif  // SRC_STORAGE_VERSION_HEAP_H_
