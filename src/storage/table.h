// Table creation/lookup over the persistent catalog.

#ifndef SRC_STORAGE_TABLE_H_
#define SRC_STORAGE_TABLE_H_

#include <string_view>

#include "src/pmem/catalog.h"
#include "src/storage/schema.h"
#include "src/storage/tuple.h"

namespace falcon {

// Creates a table from `schema` in the catalog and returns its metadata, or
// nullptr if the catalog is full or the name is already taken. `index_kind`
// selects the index implementation the engine will attach.
TableMeta* CreateTable(NvmArena& arena, const SchemaBuilder& schema, IndexKind index_kind);

// Finds a table by name; nullptr if absent.
TableMeta* FindTable(NvmArena& arena, std::string_view name);

// Finds a table by id; nullptr if out of range or unused.
TableMeta* FindTable(NvmArena& arena, uint64_t table_id);

}  // namespace falcon

#endif  // SRC_STORAGE_TABLE_H_
