#include "src/storage/table.h"

#include <cstring>

namespace falcon {

TableMeta* CreateTable(NvmArena& arena, const SchemaBuilder& schema, IndexKind index_kind) {
  Superblock* sb = GetSuperblock(arena);
  if (FindTable(arena, schema.name()) != nullptr) {
    return nullptr;
  }
  if (sb->table_count >= kMaxTables) {
    return nullptr;
  }
  const uint64_t id = sb->table_count;
  TableMeta* meta = &sb->tables[id];
  std::memset(static_cast<void*>(meta), 0, sizeof(TableMeta));
  std::memcpy(meta->name, schema.name(), kMaxTableNameLen + 1);
  meta->id = id;
  meta->tuple_data_size = schema.data_size();
  meta->slot_size = ComputeSlotSize(sizeof(TupleHeader), schema.data_size());
  meta->column_count = schema.column_count();
  std::memcpy(meta->columns, schema.columns(), sizeof(ColumnMeta) * schema.column_count());
  meta->index_kind = static_cast<uint64_t>(index_kind);
  meta->index_root = kNullPm;
  // Publish the table: in_use before table_count so a torn crash leaves the
  // catalog consistent (count only ever includes fully initialized slots).
  meta->in_use = 1;
  sb->table_count = id + 1;
  return meta;
}

TableMeta* FindTable(NvmArena& arena, std::string_view name) {
  Superblock* sb = GetSuperblock(arena);
  for (uint64_t i = 0; i < sb->table_count; ++i) {
    if (sb->tables[i].in_use != 0 && name == sb->tables[i].name) {
      return &sb->tables[i];
    }
  }
  return nullptr;
}

TableMeta* FindTable(NvmArena& arena, uint64_t table_id) {
  Superblock* sb = GetSuperblock(arena);
  if (table_id >= sb->table_count || sb->tables[table_id].in_use == 0) {
    return nullptr;
  }
  return &sb->tables[table_id];
}

}  // namespace falcon
