#include "src/storage/tuple_heap.h"

namespace falcon {

PmOffset TupleHeap::Allocate(ThreadContext& ctx, uint64_t key, uint64_t min_active_tid) {
  PmOffset slot = TryReclaim(ctx, min_active_tid);
  if (slot == kNullPm) {
    slot = AllocateFresh(ctx);
    if (slot == kNullPm) {
      return kNullPm;
    }
  }
  TupleHeader* header = Header(slot);
  // Initialize the header in place. The slot is not reachable from any index
  // yet, so plain stores are safe; costs are charged through the context.
  header->cc_word.store(0, std::memory_order_relaxed);
  header->read_ts.store(0, std::memory_order_relaxed);
  header->key = key;
  header->prev.store(kNullPm, std::memory_order_relaxed);
  header->version_head.store(0, std::memory_order_relaxed);
  header->delete_ts = 0;
  header->delete_next.store(kNullPm, std::memory_order_relaxed);
  header->flags.store(kTupleValid, std::memory_order_release);
  ctx.TouchStore(header, sizeof(TupleHeader));
  meta_->approx_tuple_count.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void TupleHeap::MarkDeleted(ThreadContext& ctx, PmOffset tuple, uint64_t delete_tid) {
  TupleHeader* header = Header(tuple);
  header->delete_ts = delete_tid;
  const uint64_t prev_flags =
      header->flags.fetch_or(kTupleDeleted | kTupleListed, std::memory_order_release);
  ctx.TouchStore(header, sizeof(TupleHeader));
  if ((prev_flags & kTupleDeleted) == 0) {
    meta_->approx_tuple_count.fetch_sub(1, std::memory_order_relaxed);
  }
  if ((prev_flags & kTupleListed) != 0) {
    // Already chained into a deleted list: a revived tombstone stays listed
    // until TryReclaim pops it, so deleting it again must not append a second
    // time (the delete_next reset below would sever the chain behind it).
    return;
  }
  header->delete_next.store(kNullPm, std::memory_order_relaxed);

  // Append to this thread's deleted list (tail pointer lives in the catalog;
  // entries chain through TupleHeader::delete_next). The list is local to
  // the thread, so no synchronization is needed beyond the stores above.
  const uint32_t t = ctx.thread_id();
  const PmOffset tail = meta_->deleted_tail[t];
  if (tail == kNullPm) {
    meta_->deleted_head[t] = tuple;
  } else {
    Header(tail)->delete_next.store(tuple, std::memory_order_relaxed);
    ctx.TouchStore(Header(tail), sizeof(uint64_t));
  }
  meta_->deleted_tail[t] = tuple;
  ctx.TouchStore(&meta_->deleted_tail[t], sizeof(PmOffset));
}

PmOffset TupleHeap::TryReclaim(ThreadContext& ctx, uint64_t min_active_tid) {
  const uint32_t t = ctx.thread_id();
  for (;;) {
    const PmOffset head = meta_->deleted_head[t];
    if (head == kNullPm) {
      return kNullPm;
    }
    TupleHeader* header = Header(head);
    ctx.TouchLoad(header, sizeof(TupleHeader));
    // A revived tuple (delete flag cleared by a later insert) is live again:
    // drop it from the list without reusing it.
    const bool revived = (header->flags.load(std::memory_order_acquire) & kTupleDeleted) == 0;
    if (!revived) {
      // Entries are appended in delete-timestamp order, so if the head is
      // not reclaimable nothing behind it is either (§5.4).
      if (header->delete_ts >= min_active_tid) {
        return kNullPm;
      }
      // A reviving transaction may hold the tombstone's lock: don't pull the
      // slot out from under it.
      if (reclaim_blocked_ && reclaim_blocked_(header)) {
        return kNullPm;
      }
    }
    const PmOffset next = header->delete_next.load(std::memory_order_relaxed);
    meta_->deleted_head[t] = next;
    if (next == kNullPm) {
      meta_->deleted_tail[t] = kNullPm;
    }
    ctx.TouchStore(&meta_->deleted_head[t], sizeof(PmOffset));
    // Off the list now; clear the listed bit so a future delete re-appends.
    header->flags.fetch_and(~kTupleListed, std::memory_order_release);
    if (revived) {
      continue;
    }
    if (on_reclaim_) {
      on_reclaim_(ctx, header->key, head);
    }
    return head;
  }
}

PmOffset TupleHeap::AllocateFresh(ThreadContext& ctx) {
  const uint32_t t = ctx.thread_id();
  PmOffset page = meta_->heap_current[t];
  if (page != kNullPm) {
    const PmOffset slot = arena_->AllocFromPage(page, meta_->slot_size, kCacheLineSize);
    if (slot != kNullPm) {
      return slot;
    }
  }
  // Current page exhausted (or absent): chain a fresh page.
  const PmOffset fresh = arena_->AllocPage(PagePurpose::kTupleHeap, t, meta_->id);
  if (fresh == kNullPm) {
    return kNullPm;
  }
  if (page == kNullPm) {
    meta_->heap_head[t] = fresh;
  } else {
    arena_->Ptr<PageHeader>(page)->next_page = fresh;
    ctx.TouchStore(arena_->Ptr<PageHeader>(page), sizeof(PageHeader));
  }
  meta_->heap_current[t] = fresh;
  ctx.TouchStore(&meta_->heap_current[t], sizeof(PmOffset));
  return arena_->AllocFromPage(fresh, meta_->slot_size, kCacheLineSize);
}

void TupleHeap::ForEachSlot(const std::function<void(PmOffset, TupleHeader*)>& visit) const {
  for (uint32_t t = 0; t < kMaxThreads; ++t) {
    PmOffset page = meta_->heap_head[t];
    while (page != kNullPm) {
      auto* page_header = arena_->Ptr<PageHeader>(page);
      const uint64_t used = page_header->used_bytes.load(std::memory_order_acquire);
      for (uint64_t off = kPageDataStart; off + meta_->slot_size <= used;
           off += meta_->slot_size) {
        const PmOffset slot = page + off;
        TupleHeader* header = arena_->Ptr<TupleHeader>(slot);
        if ((header->flags.load(std::memory_order_acquire) & kTupleValid) != 0) {
          visit(slot, header);
        }
      }
      page = page_header->next_page;
    }
  }
}

uint64_t TupleHeap::CountSlots() const {
  uint64_t n = 0;
  for (uint32_t t = 0; t < kMaxThreads; ++t) {
    PmOffset page = meta_->heap_head[t];
    while (page != kNullPm) {
      auto* page_header = arena_->Ptr<PageHeader>(page);
      const uint64_t used = page_header->used_bytes.load(std::memory_order_acquire);
      if (used > kPageDataStart) {
        n += (used - kPageDataStart) / meta_->slot_size;
      }
      page = page_header->next_page;
    }
  }
  return n;
}

}  // namespace falcon
