// Schema construction helpers over the POD catalog metadata.
//
// Tables have a u64 primary key (stored in the tuple header) plus fixed-size
// byte columns. Column layout is computed at table-creation time and stored
// in the persistent catalog so it survives restarts.

#ifndef SRC_STORAGE_SCHEMA_H_
#define SRC_STORAGE_SCHEMA_H_

#include <cstdint>
#include <cstring>
#include <string_view>

#include "src/pmem/catalog.h"

namespace falcon {

// Builder used when creating a table; the result is copied into a TableMeta.
class SchemaBuilder {
 public:
  explicit SchemaBuilder(std::string_view name) {
    const size_t n = name.size() < kMaxTableNameLen ? name.size() : kMaxTableNameLen;
    std::memcpy(name_, name.data(), n);
    name_[n] = '\0';
  }

  // Adds a fixed-size column; returns its column id.
  uint32_t AddColumn(uint32_t size) {
    columns_[count_].size = size;
    columns_[count_].offset = data_size_;
    data_size_ += size;
    return count_++;
  }

  // Convenience for word-sized columns.
  uint32_t AddU64() { return AddColumn(sizeof(uint64_t)); }

  const char* name() const { return name_; }
  uint32_t column_count() const { return count_; }
  uint32_t data_size() const { return data_size_; }
  const ColumnMeta* columns() const { return columns_; }

 private:
  char name_[kMaxTableNameLen + 1] = {};
  ColumnMeta columns_[kMaxColumns] = {};
  uint32_t count_ = 0;
  uint32_t data_size_ = 0;
};

// Rounds a tuple slot (header + data) to an NVM-friendly size: multiples of
// the cache line, and multiples of a full 256B media block once the slot
// spans more than one block — so hinted flushes of one tuple cover whole
// blocks and merge without read-modify-write (paper §4.4).
constexpr uint64_t ComputeSlotSize(uint64_t header_size, uint64_t data_size) {
  const uint64_t raw = header_size + data_size;
  const uint64_t line_rounded = (raw + kCacheLineSize - 1) / kCacheLineSize * kCacheLineSize;
  if (line_rounded <= kNvmBlockSize) {
    return line_rounded;
  }
  return (raw + kNvmBlockSize - 1) / kNvmBlockSize * kNvmBlockSize;
}

}  // namespace falcon

#endif  // SRC_STORAGE_SCHEMA_H_
