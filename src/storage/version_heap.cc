#include "src/storage/version_heap.h"

#include <cstdlib>
#include <new>

namespace falcon {

VersionHeap::~VersionHeap() { DropAll(); }

Version* VersionHeap::Allocate(uint32_t data_size) {
  void* mem = std::malloc(sizeof(Version) + data_size);
  if (mem == nullptr) {
    throw std::bad_alloc();
  }
  auto* version = new (mem) Version();
  version->data_size = data_size;
  live_bytes_ += sizeof(Version) + data_size;
  ++allocated_total_;
  return version;
}

void VersionHeap::Enqueue(Version* version) { queue_.push_back(version); }

size_t VersionHeap::Gc(uint64_t min_active_tid) {
  ++gc_runs_;
  size_t recycled = 0;
  while (!queue_.empty() && queue_.front()->end_ts < min_active_tid) {
    Free(queue_.front());
    queue_.pop_front();
    ++recycled;
  }
  recycled_total_ += recycled;
  return recycled;
}

void VersionHeap::DropAll() {
  for (Version* version : queue_) {
    Free(version);
  }
  queue_.clear();
}

void VersionHeap::Free(Version* version) {
  live_bytes_ -= sizeof(Version) + version->data_size;
  std::free(version);
}

}  // namespace falcon
