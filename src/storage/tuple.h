// Tuple layout in the NVM tuple heap (paper Figure 5): a 64B header holding
// the concurrency-control metadata, delete flag, and version-chain pointer,
// followed by the fixed-size data area.

#ifndef SRC_STORAGE_TUPLE_H_
#define SRC_STORAGE_TUPLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/common/constants.h"
#include "src/pmem/arena.h"

namespace falcon {

// Bits of TupleHeader::flags.
inline constexpr uint64_t kTupleValid = 1ull << 0;      // slot holds an initialized tuple
inline constexpr uint64_t kTupleDeleted = 1ull << 1;    // delete flag (§5.4)
inline constexpr uint64_t kTupleCommitted = 1ull << 2;  // out-of-place: writer committed
// Out-of-place: a newer version superseded this one. Current-path reads and
// writes that land here (via a stale index observation) must abort; only
// snapshot readers may traverse superseded versions.
inline constexpr uint64_t kTupleSuperseded = 1ull << 3;
// The tuple is chained into a thread's deleted list. Distinct from
// kTupleDeleted: a revived tombstone clears the delete flag but stays listed
// until TryReclaim drops it, and a second delete of such a tuple must NOT
// append it again (a double append corrupts the chain).
inline constexpr uint64_t kTupleListed = 1ull << 4;

struct TupleHeader {
  // CC-dependent word: 2PL lock word, or write_ts with a lock bit for
  // TO/OCC (§5.2.1, "CC Metadata Field" table in Figure 5).
  std::atomic<uint64_t> cc_word{};
  // Read timestamp, used by the TO family only.
  std::atomic<uint64_t> read_ts{};
  // Primary key (indexes store key -> tuple offset; the key is duplicated
  // here so heap scans can rebuild DRAM indexes, as ZenS recovery must).
  uint64_t key = 0;
  // kTuple* flag bits.
  std::atomic<uint64_t> flags{};
  // Out-of-place engines: PmOffset of the previous version (chain walked by
  // snapshot readers).
  std::atomic<uint64_t> prev{};
  // In-place MVCC: generation-tagged DRAM pointer to the newest old version
  // (chain lives in the DRAM version heap, §5.2.3). Stale after a crash;
  // the generation tag makes stale values read as null.
  std::atomic<uint64_t> version_head{};
  // TID of the transaction that deleted this tuple (reclamation check).
  uint64_t delete_ts = 0;
  // Next entry in the owning thread's deleted list (distinct from `prev` so
  // retiring an out-of-place version never clobbers its version chain).
  std::atomic<uint64_t> delete_next{};
};
static_assert(sizeof(TupleHeader) == kCacheLineSize, "header must be exactly one line");

inline std::byte* TupleData(TupleHeader* header) {
  return reinterpret_cast<std::byte*>(header) + sizeof(TupleHeader);
}
inline const std::byte* TupleData(const TupleHeader* header) {
  return reinterpret_cast<const std::byte*>(header) + sizeof(TupleHeader);
}

// --- Generation-tagged DRAM pointers -------------------------------------
//
// DRAM addresses stored in NVM become garbage after a crash. Tagging them
// with the arena generation (incremented on every recovery) makes pre-crash
// values harmlessly decode to null, so recovery does not need to scan the
// heap to clear them. x86-64 user pointers fit in 48 bits; 16 bits remain
// for the tag.

inline constexpr uint64_t kPtrBits = 48;
inline constexpr uint64_t kPtrMask = (1ull << kPtrBits) - 1;

inline uint64_t PackTaggedPtr(uint64_t generation, const void* ptr) {
  return ((generation & 0xffff) << kPtrBits) | (reinterpret_cast<uint64_t>(ptr) & kPtrMask);
}

template <typename T>
T* UnpackTaggedPtr(uint64_t generation, uint64_t word) {
  if ((word >> kPtrBits) != (generation & 0xffff)) {
    return nullptr;
  }
  return reinterpret_cast<T*>(word & kPtrMask);
}

}  // namespace falcon

#endif  // SRC_STORAGE_TUPLE_H_
