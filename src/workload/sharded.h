// Sharded workload drivers over the Database facade (src/db/database.h).
//
// ShardedYcsb: the YCSB table hash-partitioned across shards with a
// configurable fraction of two-key read-modify-write transactions forced to
// span two shards, exercising the 2PC commit path under a tunable rate.
//
// ShardedTpcc: a compact TPC-C subset (warehouse, district, customer, stock,
// order) whose keys pack the warehouse id in the top bits; per-table route
// shifts colocate each warehouse's rows on one shard, so only the standard
// remote accesses (1% remote stock in NewOrderLite, 15% remote customer in
// PaymentLite) cross shards — the TPC-C sharding story from the literature.

#ifndef SRC_WORKLOAD_SHARDED_H_
#define SRC_WORKLOAD_SHARDED_H_

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/db/database.h"

namespace falcon {

// ---- ShardedYcsb ---------------------------------------------------------

struct ShardedYcsbConfig {
  uint64_t record_count = 65536;
  uint32_t field_count = 10;
  uint32_t field_size = 100;
  uint32_t read_pct = 50;         // single-key full reads
  uint32_t cross_shard_pct = 10;  // two-key RMW spanning two shards
  uint32_t max_attempts = 64;     // CC-abort retries before giving up
};

class ShardedYcsb {
 public:
  // Creates the table on every shard (fresh databases only).
  ShardedYcsb(Database* db, ShardedYcsbConfig config);

  // Attaches to an existing table after reopen; null if absent.
  static std::unique_ptr<ShardedYcsb> Attach(Database* db, ShardedYcsbConfig config);

  // Loads rows [begin, end) through the given session (one txn per row:
  // every load commit is single-shard).
  void LoadRange(uint32_t session, uint64_t begin, uint64_t end);

  // Runs one transaction of the mix to completion; returns true on commit.
  bool RunOne(uint32_t session, Rng& rng);

  TableId table() const { return table_; }
  const ShardedYcsbConfig& config() const { return config_; }

 private:
  ShardedYcsb(Database* db, ShardedYcsbConfig config, TableId table);

  void FillRow(std::byte* row, uint64_t key) const;
  bool TxnRead(uint32_t session, uint64_t key);
  bool TxnRmw(uint32_t session, Rng& rng, uint64_t key);
  bool TxnCrossShardRmw(uint32_t session, Rng& rng, uint64_t k1, uint64_t k2);

  Database* db_;
  ShardedYcsbConfig config_;
  TableId table_ = 0;
  uint32_t data_size_ = 0;
};

// ---- ShardedTpcc ---------------------------------------------------------

struct ShardedTpccConfig {
  uint32_t warehouses = 4;
  uint32_t districts_per_warehouse = 10;
  uint32_t customers_per_district = 64;
  uint32_t items = 1000;  // stock rows per warehouse
  uint32_t order_lines = 5;
  uint32_t remote_stock_pct = 1;      // NewOrderLite: line supplied remotely
  uint32_t remote_customer_pct = 15;  // PaymentLite: remote customer
  uint32_t max_attempts = 64;
};

enum ShardedTpccTxnType : int {
  kNewOrderLite = 0,
  kPaymentLite = 1,
};

inline constexpr const char* kShardedTpccTxnTypeNames[2] = {"new_order_lite",
                                                            "payment_lite"};

inline std::vector<std::string> ShardedTpccTxnNames() {
  return {kShardedTpccTxnTypeNames, kShardedTpccTxnTypeNames + 2};
}

class ShardedTpcc {
 public:
  // Creates the tables on every shard and registers the warehouse-colocating
  // route shifts (fresh databases only).
  ShardedTpcc(Database* db, ShardedTpccConfig config);

  // Attaches after reopen: re-finds the table ids and re-registers the route
  // shifts (routing is DRAM-only policy, not persisted). Null if absent.
  static std::unique_ptr<ShardedTpcc> Attach(Database* db, ShardedTpccConfig config);

  // Loads warehouses [first, last] (1-based, inclusive) via `session`. Every
  // load commit is single-shard (warehouse colocation).
  void LoadWarehouses(uint32_t session, uint32_t first, uint32_t last);

  // Runs one transaction of the 50/50 mix; returns its type. `*committed`
  // reports whether it committed within the retry budget.
  ShardedTpccTxnType RunOne(uint32_t session, Rng& rng, bool* committed);

  bool NewOrderLite(uint32_t session, Rng& rng);
  bool PaymentLite(uint32_t session, Rng& rng);

  const ShardedTpccConfig& config() const { return config_; }

  // Consistency probe: sum of district next_o_id counters minus the loaded
  // base equals the number of committed NewOrderLite transactions.
  uint64_t TotalNextOrderIds(uint32_t session);

  // Table ids (exposed for tests).
  TableId warehouse_ = 0, district_ = 0, customer_ = 0, stock_ = 0, order_ = 0;

 private:
  // Key packing: warehouse id in the top bits, so a route shift of the low
  // field width makes ShardOf a pure function of the warehouse.
  static constexpr uint32_t kDistrictShift = 4;   // <= 16 districts
  static constexpr uint32_t kCustomerShift = 16;  // district + <= 4096 customers
  static constexpr uint32_t kStockShift = 20;     // <= 1M items
  static constexpr uint32_t kOrderShift = 28;     // district + <= 16M orders

  ShardedTpcc(Database* db, ShardedTpccConfig config, bool create);

  uint64_t DistrictKey(uint64_t w, uint64_t d) const {
    return (w << kDistrictShift) | d;
  }
  uint64_t CustomerKey(uint64_t w, uint64_t d, uint64_t c) const {
    return (w << kCustomerShift) | (d << 12) | c;
  }
  uint64_t StockKey(uint64_t w, uint64_t i) const { return (w << kStockShift) | i; }
  uint64_t OrderKey(uint64_t w, uint64_t d, uint64_t o) const {
    return (w << kOrderShift) | (d << 24) | o;
  }

  uint64_t HomeWarehouse(uint32_t session) const {
    return 1 + session % config_.warehouses;
  }
  uint64_t RandomOtherWarehouse(Rng& rng, uint64_t home) const;

  void RegisterRouteShifts();

  // Reads column `col` (u64), adds `delta`, writes it back.
  Status BumpColumn(DbTxn& txn, TableId table, uint64_t key, uint32_t col,
                    uint64_t delta);

  Database* db_;
  ShardedTpccConfig config_;
};

// Column indices (schemas live in sharded.cc and must match).
struct ShardedWarehouseCol {
  enum : uint32_t { kYtd = 0 };
};
struct ShardedDistrictCol {
  enum : uint32_t { kYtd = 0, kNextOid = 1 };
};
struct ShardedCustomerCol {
  enum : uint32_t { kBalance = 0, kYtdPayment = 1, kPaymentCnt = 2 };
};
struct ShardedStockCol {
  enum : uint32_t { kQuantity = 0, kYtd = 1, kRemoteCnt = 2 };
};
struct ShardedOrderCol {
  enum : uint32_t { kCustomer = 0, kLineCount = 1 };
};

}  // namespace falcon

#endif  // SRC_WORKLOAD_SHARDED_H_
