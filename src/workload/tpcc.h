// TPC-C workload (paper §6.1): 9 tables, 5 transaction types with the
// standard mix (NewOrder 45%, Payment 43%, OrderStatus/Delivery/StockLevel
// 4% each). Composite keys are bit-packed into u64 so ordered tables
// (ORDER, NEW-ORDER, ORDER-LINE) support the range scans OrderStatus,
// Delivery, and StockLevel need.
//
// Simplifications (documented in DESIGN.md): customer lookup is by id only
// (no last-name secondary index), and the customer row carries a
// "last_order" column maintained by NewOrder so OrderStatus can find the
// most recent order without a customer->order index.

#ifndef SRC_WORKLOAD_TPCC_H_
#define SRC_WORKLOAD_TPCC_H_

#include <array>
#include <memory>
#include <vector>

#include "src/core/batch.h"
#include "src/core/engine.h"

namespace falcon {

struct TpccConfig {
  uint32_t warehouses = 4;
  uint32_t districts_per_warehouse = 10;
  uint32_t customers_per_district = 512;
  uint32_t items = 10000;  // paper: 100,000
  uint32_t initial_orders_per_district = 64;
  // Per-transaction parameters.
  uint32_t min_order_lines = 5;
  uint32_t max_order_lines = 15;
  uint32_t remote_warehouse_pct = 1;
  uint32_t invalid_item_pct = 1;  // NewOrder rollback rate (TPC-C 2.4.1.4)
};

// Per-transaction-type counters.
struct TpccStats {
  uint64_t committed[5] = {};
  uint64_t aborted[5] = {};

  void Merge(const TpccStats& other) {
    for (int i = 0; i < 5; ++i) {
      committed[i] += other.committed[i];
      aborted[i] += other.aborted[i];
    }
  }
  uint64_t TotalCommitted() const {
    uint64_t n = 0;
    for (const uint64_t c : committed) {
      n += c;
    }
    return n;
  }
};

enum TpccTxnType : int {
  kNewOrder = 0,
  kPayment = 1,
  kOrderStatus = 2,
  kDelivery = 3,
  kStockLevel = 4,
};

inline constexpr const char* kTpccTxnTypeNames[5] = {
    "new_order", "payment", "order_status", "delivery", "stock_level"};

// Type-name list in TpccTxnType order, shaped for RunBenchTyped.
inline std::vector<std::string> TpccTxnNames() {
  return {kTpccTxnTypeNames, kTpccTxnTypeNames + 5};
}

class TpccWorkload {
 public:
  // Creates all 9 tables in a fresh engine.
  TpccWorkload(Engine* engine, TpccConfig config);

  // Loads the initial database. Call LoadSlice from each worker in
  // parallel (warehouses are partitioned across workers), and LoadItems
  // once from any single worker.
  void LoadItems(Worker& worker);
  void LoadWarehouseSlice(Worker& worker, uint32_t first_wh, uint32_t last_wh);

  // Runs one transaction of the standard mix; returns its type. `committed`
  // reports whether it committed (CC aborts are retried by the caller).
  TpccTxnType RunOne(Worker& worker, Rng& rng, bool* committed);

  // Individual transactions (also used by targeted benches/tests).
  bool NewOrder(Worker& worker, Rng& rng);
  bool Payment(Worker& worker, Rng& rng);
  bool OrderStatus(Worker& worker, Rng& rng);
  bool Delivery(Worker& worker, Rng& rng);
  bool StockLevel(Worker& worker, Rng& rng);

  const TpccConfig& config() const { return config_; }

  // Consistency check: sum of district next_o_id increments equals the
  // number of committed NewOrder transactions (+ initial orders).
  uint64_t TotalNextOrderIds(Worker& worker);

  // Table ids (exposed for tests).
  TableId warehouse_, district_, customer_, history_, order_, new_order_, order_line_, item_,
      stock_;

 private:
  // --- key packing ---------------------------------------------------------
  static constexpr uint64_t kDistrictBits = 4;    // <= 16 districts
  static constexpr uint64_t kCustomerBits = 12;   // <= 4096 customers/district
  static constexpr uint64_t kOrderBits = 24;      // <= 16M orders/district
  static constexpr uint64_t kOrderLineBits = 4;   // <= 16 lines/order
  static constexpr uint64_t kItemBits = 20;       // <= 1M items

  uint64_t DistrictKey(uint64_t w, uint64_t d) const { return (w << kDistrictBits) | d; }
  uint64_t CustomerKey(uint64_t w, uint64_t d, uint64_t c) const {
    return (DistrictKey(w, d) << kCustomerBits) | c;
  }
  uint64_t OrderKey(uint64_t w, uint64_t d, uint64_t o) const {
    return (DistrictKey(w, d) << kOrderBits) | o;
  }
  uint64_t OrderLineKey(uint64_t w, uint64_t d, uint64_t o, uint64_t ol) const {
    return (OrderKey(w, d, o) << kOrderLineBits) | ol;
  }
  uint64_t StockKey(uint64_t w, uint64_t i) const { return (w << kItemBits) | i; }

  friend class NewOrderFrame;

  uint64_t RandomWarehouse(Rng& rng) const { return 1 + rng.NextBounded(config_.warehouses); }
  uint64_t RandomDistrict(Rng& rng) const {
    return 1 + rng.NextBounded(config_.districts_per_warehouse);
  }
  uint64_t RandomCustomer(Rng& rng) const {
    return 1 + rng.NextBounded(config_.customers_per_district);
  }
  uint64_t RandomItem(Rng& rng) const { return 1 + rng.NextBounded(config_.items); }

  void LoadDistrict(Worker& worker, uint64_t w, uint64_t d);

  Engine* engine_;
  TpccConfig config_;
  std::atomic<uint64_t> history_seq_{0};
};

// Column indices (schema layout lives in tpcc.cc and must match).
struct WarehouseCol {
  enum : uint32_t { kTax = 0, kYtd = 1, kName = 2, kAddress = 3 };
};
struct DistrictCol {
  enum : uint32_t { kTax = 0, kYtd = 1, kNextOid = 2, kName = 3, kAddress = 4 };
};
struct CustomerCol {
  enum : uint32_t {
    kBalance = 0,
    kYtdPayment = 1,
    kPaymentCnt = 2,
    kDeliveryCnt = 3,
    kLastOrder = 4,
    kData = 5,
  };
};
struct OrderCol {
  enum : uint32_t { kCustomer = 0, kEntryDate = 1, kCarrier = 2, kLineCount = 3, kAllLocal = 4 };
};
struct OrderLineCol {
  enum : uint32_t {
    kItem = 0,
    kSupplyWarehouse = 1,
    kDeliveryDate = 2,
    kQuantity = 3,
    kAmount = 4,
    kDistInfo = 5,
  };
};
struct StockCol {
  enum : uint32_t { kQuantity = 0, kYtd = 1, kOrderCnt = 2, kRemoteCnt = 3, kData = 4 };
};
struct ItemCol {
  enum : uint32_t { kPrice = 0, kName = 1, kData = 2 };
};
struct HistoryCol {
  enum : uint32_t { kAmount = 0, kWarehouse = 1, kDistrict = 2, kCustomer = 3, kData = 4 };
};

// Resumable New-Order transaction for Worker::RunBatch. Reset() pre-generates
// the full order plan (district, customer, every line's item/warehouse/
// quantity, the 1% rollback roll) from the thread's Rng, so CC-conflict
// retries replay the exact same transaction — matching RunToCompletion in
// the serial driver. Yield boundaries: after the header (warehouse/district/
// customer + order inserts), after each order line (each line touches a
// random stock tuple — the NVM-miss hot spot), and before commit.
class NewOrderFrame final : public TxnFrame {
 public:
  explicit NewOrderFrame(TpccWorkload* workload);

  // Pre-generates the next order. `worker` picks the home warehouse the
  // same way the serial driver does (worker id modulo warehouses).
  void Reset(Worker& worker, Rng& rng);

  // result(): kNewOrder on commit, ~kNewOrder on abort/give-up.
  bool Step(Worker& worker) override;

 private:
  enum class Stage : uint8_t { kHeader, kLine, kCommit };
  struct Line {
    uint64_t item;
    uint64_t supply_w;
    uint64_t quantity;
  };
  static constexpr uint32_t kMaxAttempts = 64;  // mirrors RunToCompletion

  Status StepHeader(Worker& worker);
  Status StepLine();
  Status StepCommit();

  TpccWorkload* workload_;
  Stage stage_ = Stage::kHeader;
  uint64_t w_ = 0, d_ = 0, c_ = 0;
  bool rollback_ = false;
  std::vector<Line> lines_;
  uint64_t order_id_ = 0;
  uint32_t line_idx_ = 0;
  uint32_t attempts_ = 0;
  bool committed_ = false;
  std::vector<std::byte> order_row_, no_row_, line_row_;
};

// Per-thread frame pool feeding `txn_count` New-Order transactions through
// up to `batch_size` concurrently live frames.
class NewOrderFrameSource final : public FrameSource {
 public:
  NewOrderFrameSource(TpccWorkload* workload, Rng* rng, uint64_t txn_count,
                      uint32_t batch_size);

  TxnFrame* Next(Worker& worker) override;
  void Done(Worker& worker, TxnFrame* frame, uint64_t begin_ns, uint64_t end_ns) override;

 private:
  TpccWorkload* workload_;
  Rng* rng_;
  uint64_t remaining_;
  std::vector<std::unique_ptr<NewOrderFrame>> pool_;
  std::vector<NewOrderFrame*> free_;
};

}  // namespace falcon

#endif  // SRC_WORKLOAD_TPCC_H_
