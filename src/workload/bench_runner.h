// Multi-threaded benchmark runner over the simulated clock.
//
// Throughput is computed on SIMULATED time (see DESIGN.md §2): each worker
// accumulates per-operation costs on its own clock, media writes accumulate
// device service time, and the elapsed time of a run is
//
//   max( slowest worker clock,  device busy time / min(channels, threads) )
//
// which yields both CPU-bound and NVM-bandwidth-bound regimes — the source
// of the paper's scalability shapes (Figures 11 and 12).

#ifndef SRC_WORKLOAD_BENCH_RUNNER_H_
#define SRC_WORKLOAD_BENCH_RUNNER_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/histogram.h"
#include "src/core/engine.h"

namespace falcon {

struct BenchResult {
  uint64_t commits = 0;
  // Failed run_txn attempts, as observed by the bench loop. One logical
  // transaction that internally retries N times before giving up counts once
  // here but N times in txn_aborts below.
  uint64_t attempt_aborts = 0;
  // Txn::Abort invocations inside the engine during the measured window,
  // including internal retries that eventually committed. Always >= the
  // abort attempts visible to the bench loop.
  uint64_t txn_aborts = 0;
  double sim_seconds = 0;
  double mtxn_per_s = 0;
  double avg_us = 0;        // mean simulated latency per committed txn
  uint64_t p95_ns = 0;
  DeviceStats device;       // media traffic during the measured window
  double write_amp = 0;
  // Engine-wide metrics diff over the measured window (see src/obs/metrics.h).
  MetricsSnapshot metrics;
  // Commit-latency percentiles: [0] is always "all"; RunBenchTyped appends
  // one entry per transaction type. Feed this to MaybeAppendMetricsJson.
  std::vector<LatencySummary> latency;

  double AbortRate() const {
    const uint64_t total = commits + attempt_aborts;
    return total == 0 ? 0.0
                      : static_cast<double>(attempt_aborts) / static_cast<double>(total);
  }
};

// Runs `txns_per_thread` transactions on each of `threads` workers.
// `run_txn(worker, thread_id, i)` returns the committed transaction's type
// index into `type_names` (a value past the end still counts as a commit but
// lands only in the "all" histogram), or a negative value on abort. Worker
// clocks and device stats are reset before the run. When tracing is enabled
// on the engine, a Perfetto dump is written at the end of the run (see
// MaybeDumpPerfetto).
inline BenchResult RunBenchTyped(
    Engine& engine, uint32_t threads, uint64_t txns_per_thread,
    const std::vector<std::string>& type_names,
    const std::function<int(Worker&, uint32_t, uint64_t)>& run_txn) {
  NvmDevice& device = *engine.device();
  // Start from a quiescent state: dirty lines left by loading (e.g. index
  // buckets that selective-flush engines never clwb) belong to the load
  // phase, not the measured window.
  for (uint32_t t = 0; t < threads; ++t) {
    engine.worker(t).ctx().cache().WritebackAll();
    engine.worker(t).ResetStats();
  }
  device.DrainAll();
  device.ResetStats();
  const MetricsSnapshot before = engine.SnapshotMetrics();

  std::vector<std::thread> pool;
  // Per-thread tallies are written once at thread exit; counting into
  // thread-local accumulators keeps the measured loop free of false sharing
  // on adjacent array slots.
  std::vector<uint64_t> commits(threads, 0);
  std::vector<uint64_t> aborts(threads, 0);
  std::vector<Histogram> latencies(threads);
  const size_t types = type_names.size();
  // [thread][type], merged after the join like the "all" histograms.
  std::vector<std::vector<Histogram>> typed_latencies(threads,
                                                      std::vector<Histogram>(types));
  pool.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      Worker& worker = engine.worker(t);
      uint64_t local_commits = 0;
      uint64_t local_aborts = 0;
      Histogram local_latencies;
      std::vector<Histogram> local_typed(types);
      for (uint64_t i = 0; i < txns_per_thread; ++i) {
        const uint64_t before = worker.ctx().sim_ns();
        const int type = run_txn(worker, t, i);
        if (type >= 0) {
          ++local_commits;
          const uint64_t lat = worker.ctx().sim_ns() - before;
          local_latencies.Record(lat);
          if (static_cast<size_t>(type) < types) {
            local_typed[static_cast<size_t>(type)].Record(lat);
          }
        } else {
          ++local_aborts;
        }
      }
      commits[t] = local_commits;
      aborts[t] = local_aborts;
      latencies[t] = local_latencies;
      typed_latencies[t] = std::move(local_typed);
    });
  }
  for (auto& th : pool) {
    th.join();
  }
  // Steady-state accounting: every line still dirty in a cache is data the
  // engine deferred to "eventual eviction" — it WILL reach the media. Without
  // this, short runs make no-flush configurations look free.
  for (uint32_t t = 0; t < threads; ++t) {
    engine.worker(t).ctx().cache().WritebackAll();
  }
  device.DrainAll();

  BenchResult result;
  result.metrics = DiffMetrics(before, engine.SnapshotMetrics());
  result.txn_aborts = result.metrics.txn_aborts;
  uint64_t max_ns = 0;
  Histogram merged;
  for (uint32_t t = 0; t < threads; ++t) {
    result.commits += commits[t];
    result.attempt_aborts += aborts[t];
    max_ns = std::max(max_ns, engine.worker(t).ctx().sim_ns());
    merged.Merge(latencies[t]);
  }
  result.device = device.stats();
  result.write_amp = result.device.WriteAmplification();

  const uint32_t channels =
      std::min<uint32_t>(engine.config().cost_params.device_channels, threads);
  const double device_s =
      static_cast<double>(result.device.busy_ns) / std::max(1u, channels) / 1e9;
  result.sim_seconds = std::max(static_cast<double>(max_ns) / 1e9, device_s);
  if (result.sim_seconds > 0) {
    result.mtxn_per_s = static_cast<double>(result.commits) / result.sim_seconds / 1e6;
  }
  result.avg_us = merged.Mean() / 1000.0;
  result.p95_ns = merged.Percentile(95);

  result.latency.push_back(SummarizeHistogram("all", merged));
  for (size_t k = 0; k < types; ++k) {
    Histogram h;
    for (uint32_t t = 0; t < threads; ++t) {
      h.Merge(typed_latencies[t][k]);
    }
    result.latency.push_back(SummarizeHistogram(type_names[k], h));
  }

  if (engine.tracing_enabled()) {
    MaybeDumpPerfetto(engine.tracer(), "falcon_trace.json");
  }
  return result;
}

// Boolean-commit convenience wrapper: every commit lands in the "all"
// latency bucket only.
inline BenchResult RunBench(
    Engine& engine, uint32_t threads, uint64_t txns_per_thread,
    const std::function<bool(Worker&, uint32_t, uint64_t)>& run_txn) {
  return RunBenchTyped(engine, threads, txns_per_thread, {},
                       [&run_txn](Worker& worker, uint32_t t, uint64_t i) {
                         return run_txn(worker, t, i) ? 0 : -1;
                       });
}

}  // namespace falcon

#endif  // SRC_WORKLOAD_BENCH_RUNNER_H_
