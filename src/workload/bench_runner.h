// Multi-threaded benchmark runner over the simulated clock.
//
// Throughput is computed on SIMULATED time (see DESIGN.md §2): each worker
// accumulates per-operation costs on its own clock, media writes accumulate
// device service time, and the elapsed time of a run is
//
//   max( slowest worker clock,  device busy time / min(channels, threads) )
//
// which yields both CPU-bound and NVM-bandwidth-bound regimes — the source
// of the paper's scalability shapes (Figures 11 and 12).

#ifndef SRC_WORKLOAD_BENCH_RUNNER_H_
#define SRC_WORKLOAD_BENCH_RUNNER_H_

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/histogram.h"
#include "src/core/batch.h"
#include "src/core/engine.h"

namespace falcon {

// Strict parser for positive-integer tuning knobs. Accepts only all-digit
// strings: returns nullopt for empty, non-numeric, negative (strtoull would
// silently wrap "-3" to a huge value) and zero inputs. A genuine positive
// value above `max_value` clamps to `max_value` (including out-of-range
// digit strings).
inline std::optional<uint32_t> ParsePositiveKnob(const char* text, uint32_t max_value) {
  if (text == nullptr || text[0] == '\0') {
    return std::nullopt;
  }
  for (const char* q = text; *q != '\0'; ++q) {
    if (*q < '0' || *q > '9') {
      return std::nullopt;  // rejects "-3", "abc", "4x", " 4"
    }
  }
  errno = 0;
  const unsigned long long parsed = std::strtoull(text, nullptr, 10);
  if (parsed == 0) {
    return std::nullopt;  // "0", "000"
  }
  if (errno == ERANGE || parsed > max_value) {
    return max_value;
  }
  return static_cast<uint32_t>(parsed);
}

// Reads env knob `name` as a positive integer. Unset or empty returns
// `fallback`; a malformed value (zero, negative, non-numeric) is a hard
// error — benches must not silently run a different configuration than the
// one the caller asked for.
inline uint32_t PositiveKnobFromEnv(const char* name, uint32_t max_value,
                                    uint32_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') {
    return fallback;
  }
  const std::optional<uint32_t> parsed = ParsePositiveKnob(v, max_value);
  if (!parsed.has_value()) {
    std::fprintf(stderr,
                 "error: %s=\"%s\" is not a positive integer (expected 1..%u)\n",
                 name, v, max_value);
    std::exit(2);
  }
  return *parsed;
}

// FALCON_BATCH: in-flight transactions per worker for batch-aware bench
// binaries. Unset selects the serial path; values are clamped to
// Worker::RunBatch's 64-frame ceiling; malformed values are a hard error.
inline uint32_t BatchSizeFromEnv() {
  return PositiveKnobFromEnv("FALCON_BATCH", 64, 1);
}

// FALCON_SHARDS: shard (engine) count for Database-level benches. Unset
// returns `fallback` (0 = "run the bench's default sweep").
inline uint32_t ShardCountFromEnv(uint32_t fallback = 0) {
  return PositiveKnobFromEnv("FALCON_SHARDS", 64, fallback);
}

struct BenchResult {
  uint64_t commits = 0;
  // Failed run_txn attempts, as observed by the bench loop. One logical
  // transaction that internally retries N times before giving up counts once
  // here but N times in txn_aborts below.
  uint64_t attempt_aborts = 0;
  // Txn::Abort invocations inside the engine during the measured window,
  // including internal retries that eventually committed. Always >= the
  // abort attempts visible to the bench loop.
  uint64_t txn_aborts = 0;
  double sim_seconds = 0;
  double mtxn_per_s = 0;
  double avg_us = 0;        // mean simulated latency per committed txn
  uint64_t p95_ns = 0;
  DeviceStats device;       // media traffic during the measured window
  double write_amp = 0;
  // Engine-wide metrics diff over the measured window (see src/obs/metrics.h).
  MetricsSnapshot metrics;
  // Commit-latency percentiles: [0] is always "all"; RunBenchTyped appends
  // one entry per transaction type. Feed this to MaybeAppendMetricsJson.
  std::vector<LatencySummary> latency;

  double AbortRate() const {
    const uint64_t total = commits + attempt_aborts;
    return total == 0 ? 0.0
                      : static_cast<double>(attempt_aborts) / static_cast<double>(total);
  }
};

// Runs `txns_per_thread` transactions on each of `threads` workers.
// `run_txn(worker, thread_id, i)` returns the committed transaction's type
// index into `type_names` (a value past the end still counts as a commit but
// lands only in the "all" histogram), or a negative value on abort. An abort
// return of ~type (bitwise NOT, so type 0 aborts as -1) attributes the abort
// to that type's latency summary. Worker clocks and device stats are reset
// before the run. When tracing is enabled on the engine, a Perfetto dump is
// written at the end of the run (see MaybeDumpPerfetto).
inline BenchResult RunBenchTyped(
    Engine& engine, uint32_t threads, uint64_t txns_per_thread,
    const std::vector<std::string>& type_names,
    const std::function<int(Worker&, uint32_t, uint64_t)>& run_txn) {
  NvmDevice& device = *engine.device();
  // Start from a quiescent state: dirty lines left by loading (e.g. index
  // buckets that selective-flush engines never clwb) belong to the load
  // phase, not the measured window. Trace rings reset with the stats so a
  // Perfetto dump never contains load-phase events.
  for (uint32_t t = 0; t < threads; ++t) {
    engine.worker(t).ctx().cache().WritebackAll();
    engine.worker(t).ResetStats();
  }
  if (engine.tracing_enabled()) {
    engine.tracer().ClearAll();
  }
  device.DrainAll();
  device.ResetStats();
  const MetricsSnapshot before = engine.SnapshotMetrics();

  std::vector<std::thread> pool;
  // Per-thread tallies are written once at thread exit; counting into
  // thread-local accumulators keeps the measured loop free of false sharing
  // on adjacent array slots.
  std::vector<uint64_t> commits(threads, 0);
  std::vector<uint64_t> aborts(threads, 0);
  std::vector<Histogram> latencies(threads);
  const size_t types = type_names.size();
  // [thread][type], merged after the join like the "all" histograms.
  std::vector<std::vector<Histogram>> typed_latencies(threads,
                                                      std::vector<Histogram>(types));
  std::vector<std::vector<uint64_t>> typed_aborts(threads,
                                                  std::vector<uint64_t>(types, 0));
  pool.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      Worker& worker = engine.worker(t);
      uint64_t local_commits = 0;
      uint64_t local_aborts = 0;
      Histogram local_latencies;
      std::vector<Histogram> local_typed(types);
      std::vector<uint64_t> local_typed_aborts(types, 0);
      for (uint64_t i = 0; i < txns_per_thread; ++i) {
        const uint64_t txn_start = worker.ctx().sim_ns();
        const int type = run_txn(worker, t, i);
        if (type >= 0) {
          ++local_commits;
          const uint64_t lat = worker.ctx().sim_ns() - txn_start;
          local_latencies.Record(lat);
          if (static_cast<size_t>(type) < types) {
            local_typed[static_cast<size_t>(type)].Record(lat);
          }
        } else {
          ++local_aborts;
          // ~type recovers the attempted type from the abort return.
          if (static_cast<size_t>(~type) < types) {
            ++local_typed_aborts[static_cast<size_t>(~type)];
          }
        }
      }
      commits[t] = local_commits;
      aborts[t] = local_aborts;
      latencies[t] = local_latencies;
      typed_latencies[t] = std::move(local_typed);
      typed_aborts[t] = std::move(local_typed_aborts);
    });
  }
  for (auto& th : pool) {
    th.join();
  }
  // Steady-state accounting: every line still dirty in a cache is data the
  // engine deferred to "eventual eviction" — it WILL reach the media. Without
  // this, short runs make no-flush configurations look free.
  for (uint32_t t = 0; t < threads; ++t) {
    engine.worker(t).ctx().cache().WritebackAll();
  }
  device.DrainAll();

  BenchResult result;
  result.metrics = DiffMetrics(before, engine.SnapshotMetrics());
  result.txn_aborts = result.metrics.txn_aborts;
  uint64_t max_ns = 0;
  Histogram merged;
  for (uint32_t t = 0; t < threads; ++t) {
    result.commits += commits[t];
    result.attempt_aborts += aborts[t];
    max_ns = std::max(max_ns, engine.worker(t).ctx().sim_ns());
    merged.Merge(latencies[t]);
  }
  result.device = device.stats();
  result.write_amp = result.device.WriteAmplification();

  const uint32_t channels =
      std::min<uint32_t>(engine.config().cost_params.device_channels, threads);
  const double device_s =
      static_cast<double>(result.device.busy_ns) / std::max(1u, channels) / 1e9;
  result.sim_seconds = std::max(static_cast<double>(max_ns) / 1e9, device_s);
  if (result.sim_seconds > 0) {
    result.mtxn_per_s = static_cast<double>(result.commits) / result.sim_seconds / 1e6;
  }
  result.avg_us = merged.Mean() / 1000.0;
  result.p95_ns = merged.Percentile(95);

  result.latency.push_back(SummarizeHistogram("all", merged));
  result.latency.back().aborts = result.attempt_aborts;
  for (size_t k = 0; k < types; ++k) {
    Histogram h;
    uint64_t k_aborts = 0;
    for (uint32_t t = 0; t < threads; ++t) {
      h.Merge(typed_latencies[t][k]);
      k_aborts += typed_aborts[t][k];
    }
    result.latency.push_back(SummarizeHistogram(type_names[k], h));
    result.latency.back().aborts = k_aborts;
  }

  if (engine.tracing_enabled()) {
    MaybeDumpPerfetto(engine.tracer(), "falcon_trace.json");
  }
  return result;
}

// Boolean-commit convenience wrapper: every commit lands in the "all"
// latency bucket only.
inline BenchResult RunBench(
    Engine& engine, uint32_t threads, uint64_t txns_per_thread,
    const std::function<bool(Worker&, uint32_t, uint64_t)>& run_txn) {
  return RunBenchTyped(engine, threads, txns_per_thread, {},
                       [&run_txn](Worker& worker, uint32_t t, uint64_t i) {
                         return run_txn(worker, t, i) ? 0 : -1;
                       });
}

namespace bench_internal {

// Wraps a workload FrameSource to tally commits/aborts/latencies from each
// finished frame's result() (>= 0: committed type; < 0: ~type abort).
// Latencies are measured on the batch timeline (admission to finish).
class TallyingFrameSource final : public FrameSource {
 public:
  TallyingFrameSource(FrameSource& inner, size_t types)
      : typed_latencies(types), typed_aborts(types, 0), inner_(inner) {}

  TxnFrame* Next(Worker& worker) override { return inner_.Next(worker); }

  void Done(Worker& worker, TxnFrame* frame, uint64_t begin_ns, uint64_t end_ns) override {
    const int r = frame->result();
    if (r >= 0) {
      ++commits;
      latencies.Record(end_ns - begin_ns);
      if (static_cast<size_t>(r) < typed_latencies.size()) {
        typed_latencies[static_cast<size_t>(r)].Record(end_ns - begin_ns);
      }
    } else {
      ++aborts;
      if (static_cast<size_t>(~r) < typed_aborts.size()) {
        ++typed_aborts[static_cast<size_t>(~r)];
      }
    }
    inner_.Done(worker, frame, begin_ns, end_ns);
  }

  uint64_t commits = 0;
  uint64_t aborts = 0;
  Histogram latencies;
  std::vector<Histogram> typed_latencies;
  std::vector<uint64_t> typed_aborts;

 private:
  FrameSource& inner_;
};

}  // namespace bench_internal

// Batched counterpart of RunBenchTyped: each worker drives its FrameSource
// through Worker::RunBatch with `batch_size` transactions in flight, so NVM
// stalls overlap sibling compute. `make_source(worker, thread)` builds the
// per-thread source (which bounds its own transaction count).
//
// Throughput uses the overlap-aware batch timeline: the elapsed time of a
// run is max(slowest worker's BatchRunStats::elapsed_ns, device busy time /
// channels) — device service time is never discounted by the overlap.
inline BenchResult RunBenchBatchedTyped(
    Engine& engine, uint32_t threads, uint32_t batch_size,
    const std::vector<std::string>& type_names,
    const std::function<std::unique_ptr<FrameSource>(Worker&, uint32_t)>& make_source) {
  NvmDevice& device = *engine.device();
  for (uint32_t t = 0; t < threads; ++t) {
    engine.worker(t).ctx().cache().WritebackAll();
    engine.worker(t).ResetStats();
  }
  if (engine.tracing_enabled()) {
    engine.tracer().ClearAll();
  }
  device.DrainAll();
  device.ResetStats();
  const MetricsSnapshot before = engine.SnapshotMetrics();

  const size_t types = type_names.size();
  std::vector<std::thread> pool;
  std::vector<uint64_t> commits(threads, 0);
  std::vector<uint64_t> aborts(threads, 0);
  std::vector<uint64_t> elapsed(threads, 0);
  std::vector<Histogram> latencies(threads);
  std::vector<std::vector<Histogram>> typed_latencies(threads,
                                                      std::vector<Histogram>(types));
  std::vector<std::vector<uint64_t>> typed_aborts(threads,
                                                  std::vector<uint64_t>(types, 0));
  pool.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      Worker& worker = engine.worker(t);
      std::unique_ptr<FrameSource> source = make_source(worker, t);
      bench_internal::TallyingFrameSource tally(*source, types);
      const BatchRunStats stats = worker.RunBatch(batch_size, tally);
      commits[t] = tally.commits;
      aborts[t] = tally.aborts;
      elapsed[t] = stats.elapsed_ns;
      latencies[t] = std::move(tally.latencies);
      typed_latencies[t] = std::move(tally.typed_latencies);
      typed_aborts[t] = std::move(tally.typed_aborts);
    });
  }
  for (auto& th : pool) {
    th.join();
  }
  for (uint32_t t = 0; t < threads; ++t) {
    engine.worker(t).ctx().cache().WritebackAll();
  }
  device.DrainAll();

  BenchResult result;
  result.metrics = DiffMetrics(before, engine.SnapshotMetrics());
  result.txn_aborts = result.metrics.txn_aborts;
  uint64_t max_ns = 0;
  Histogram merged;
  for (uint32_t t = 0; t < threads; ++t) {
    result.commits += commits[t];
    result.attempt_aborts += aborts[t];
    max_ns = std::max(max_ns, elapsed[t]);
    merged.Merge(latencies[t]);
  }
  result.device = device.stats();
  result.write_amp = result.device.WriteAmplification();

  const uint32_t channels =
      std::min<uint32_t>(engine.config().cost_params.device_channels, threads);
  const double device_s =
      static_cast<double>(result.device.busy_ns) / std::max(1u, channels) / 1e9;
  result.sim_seconds = std::max(static_cast<double>(max_ns) / 1e9, device_s);
  if (result.sim_seconds > 0) {
    result.mtxn_per_s = static_cast<double>(result.commits) / result.sim_seconds / 1e6;
  }
  result.avg_us = merged.Mean() / 1000.0;
  result.p95_ns = merged.Percentile(95);

  result.latency.push_back(SummarizeHistogram("all", merged));
  result.latency.back().aborts = result.attempt_aborts;
  for (size_t k = 0; k < types; ++k) {
    Histogram h;
    uint64_t k_aborts = 0;
    for (uint32_t t = 0; t < threads; ++t) {
      h.Merge(typed_latencies[t][k]);
      k_aborts += typed_aborts[t][k];
    }
    result.latency.push_back(SummarizeHistogram(type_names[k], h));
    result.latency.back().aborts = k_aborts;
  }

  if (engine.tracing_enabled()) {
    MaybeDumpPerfetto(engine.tracer(), "falcon_trace.json");
  }
  return result;
}

// Untyped batched wrapper.
inline BenchResult RunBenchBatched(
    Engine& engine, uint32_t threads, uint32_t batch_size,
    const std::function<std::unique_ptr<FrameSource>(Worker&, uint32_t)>& make_source) {
  return RunBenchBatchedTyped(engine, threads, batch_size, {}, make_source);
}

}  // namespace falcon

#endif  // SRC_WORKLOAD_BENCH_RUNNER_H_
