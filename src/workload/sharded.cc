#include "src/workload/sharded.h"

#include <cstring>

namespace falcon {

// ---- ShardedYcsb ---------------------------------------------------------

ShardedYcsb::ShardedYcsb(Database* db, ShardedYcsbConfig config)
    : db_(db), config_(config) {
  SchemaBuilder schema("sharded_usertable");
  for (uint32_t f = 0; f < config_.field_count; ++f) {
    schema.AddColumn(config_.field_size);
  }
  table_ = db_->CreateTable(schema, IndexKind::kHash);
  data_size_ = static_cast<uint32_t>(db_->engine(0).TupleDataSize(table_));
}

ShardedYcsb::ShardedYcsb(Database* db, ShardedYcsbConfig config, TableId table)
    : db_(db), config_(config), table_(table) {
  data_size_ = static_cast<uint32_t>(db_->engine(0).TupleDataSize(table_));
}

std::unique_ptr<ShardedYcsb> ShardedYcsb::Attach(Database* db,
                                                 ShardedYcsbConfig config) {
  const auto table = db->FindTableId("sharded_usertable");
  if (!table.has_value()) {
    return nullptr;
  }
  return std::unique_ptr<ShardedYcsb>(new ShardedYcsb(db, config, *table));
}

void ShardedYcsb::FillRow(std::byte* row, uint64_t key) const {
  uint64_t acc = Mix64(key);
  for (uint32_t i = 0; i < data_size_; i += sizeof(uint64_t)) {
    const size_t n = std::min<size_t>(sizeof(uint64_t), data_size_ - i);
    std::memcpy(row + i, &acc, n);
    acc = Mix64(acc);
  }
}

void ShardedYcsb::LoadRange(uint32_t session, uint64_t begin, uint64_t end) {
  std::vector<std::byte> row(data_size_);
  for (uint64_t key = begin; key < end; ++key) {
    FillRow(row.data(), key);
    for (;;) {
      DbTxn txn = db_->Begin(session);
      const Status s = txn.Insert(table_, key, row.data());
      if (s == Status::kOk && txn.Commit() == Status::kOk) {
        break;
      }
      if (s == Status::kDuplicate) {
        break;  // reloaded after recovery
      }
      txn.Abort();
    }
  }
}

bool ShardedYcsb::TxnRead(uint32_t session, uint64_t key) {
  std::vector<std::byte> buf(data_size_);
  for (uint32_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    DbTxn txn = db_->Begin(session);
    if (txn.Read(table_, key, buf.data()) == Status::kOk &&
        txn.Commit() == Status::kOk) {
      return true;
    }
    txn.Abort();
  }
  return false;
}

bool ShardedYcsb::TxnRmw(uint32_t session, Rng& rng, uint64_t key) {
  std::vector<std::byte> buf(data_size_);
  const uint64_t stamp = rng.Next();
  for (uint32_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    DbTxn txn = db_->Begin(session);
    if (txn.Read(table_, key, buf.data()) != Status::kOk) {
      txn.Abort();
      continue;
    }
    std::memcpy(buf.data(), &stamp, sizeof(stamp));
    if (txn.UpdateFull(table_, key, buf.data()) == Status::kOk &&
        txn.Commit() == Status::kOk) {
      return true;
    }
    txn.Abort();
  }
  return false;
}

bool ShardedYcsb::TxnCrossShardRmw(uint32_t session, Rng& rng, uint64_t k1,
                                   uint64_t k2) {
  std::vector<std::byte> buf(data_size_);
  const uint64_t stamp = rng.Next();
  for (uint32_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    DbTxn txn = db_->Begin(session);
    bool ok = true;
    for (const uint64_t key : {k1, k2}) {
      if (txn.Read(table_, key, buf.data()) != Status::kOk) {
        ok = false;
        break;
      }
      std::memcpy(buf.data(), &stamp, sizeof(stamp));
      if (txn.UpdateFull(table_, key, buf.data()) != Status::kOk) {
        ok = false;
        break;
      }
    }
    if (ok && txn.Commit() == Status::kOk) {
      return true;
    }
    txn.Abort();
  }
  return false;
}

bool ShardedYcsb::RunOne(uint32_t session, Rng& rng) {
  const uint64_t roll = rng.NextBounded(100);
  const uint64_t k1 = rng.NextBounded(config_.record_count);
  if (roll < config_.cross_shard_pct && db_->shards() > 1) {
    // Force the pair onto two shards: re-roll the second key a few times.
    uint64_t k2 = k1;
    for (uint32_t tries = 0; tries < 16; ++tries) {
      k2 = rng.NextBounded(config_.record_count);
      if (db_->ShardOf(table_, k2) != db_->ShardOf(table_, k1)) {
        break;
      }
    }
    return TxnCrossShardRmw(session, rng, k1, k2);
  }
  if (roll < config_.cross_shard_pct + config_.read_pct) {
    return TxnRead(session, k1);
  }
  return TxnRmw(session, rng, k1);
}

// ---- ShardedTpcc ---------------------------------------------------------

ShardedTpcc::ShardedTpcc(Database* db, ShardedTpccConfig config)
    : ShardedTpcc(db, config, /*create=*/true) {}

ShardedTpcc::ShardedTpcc(Database* db, ShardedTpccConfig config, bool create)
    : db_(db), config_(config) {
  if (create) {
    SchemaBuilder warehouse("s_warehouse");
    warehouse.AddColumn(8);  // ytd
    SchemaBuilder district("s_district");
    district.AddColumn(8);  // ytd
    district.AddColumn(8);  // next_oid
    SchemaBuilder customer("s_customer");
    customer.AddColumn(8);  // balance
    customer.AddColumn(8);  // ytd_payment
    customer.AddColumn(8);  // payment_cnt
    SchemaBuilder stock("s_stock");
    stock.AddColumn(8);  // quantity
    stock.AddColumn(8);  // ytd
    stock.AddColumn(8);  // remote_cnt
    SchemaBuilder order("s_order");
    order.AddColumn(8);  // customer
    order.AddColumn(8);  // line_count
    warehouse_ = db_->CreateTable(warehouse, IndexKind::kHash);
    district_ = db_->CreateTable(district, IndexKind::kHash);
    customer_ = db_->CreateTable(customer, IndexKind::kHash);
    stock_ = db_->CreateTable(stock, IndexKind::kHash);
    order_ = db_->CreateTable(order, IndexKind::kHash);
  }
  RegisterRouteShifts();
}

std::unique_ptr<ShardedTpcc> ShardedTpcc::Attach(Database* db,
                                                 ShardedTpccConfig config) {
  std::unique_ptr<ShardedTpcc> w(new ShardedTpcc(db, config, /*create=*/false));
  const auto warehouse = db->FindTableId("s_warehouse");
  const auto district = db->FindTableId("s_district");
  const auto customer = db->FindTableId("s_customer");
  const auto stock = db->FindTableId("s_stock");
  const auto order = db->FindTableId("s_order");
  if (!warehouse || !district || !customer || !stock || !order) {
    return nullptr;
  }
  w->warehouse_ = *warehouse;
  w->district_ = *district;
  w->customer_ = *customer;
  w->stock_ = *stock;
  w->order_ = *order;
  w->RegisterRouteShifts();
  return w;
}

void ShardedTpcc::RegisterRouteShifts() {
  // Shifting the low field bits away leaves the warehouse id, so every row
  // of a warehouse routes to one shard.
  db_->SetRouteShift(warehouse_, 0);
  db_->SetRouteShift(district_, kDistrictShift);
  db_->SetRouteShift(customer_, kCustomerShift);
  db_->SetRouteShift(stock_, kStockShift);
  db_->SetRouteShift(order_, kOrderShift);
}

uint64_t ShardedTpcc::RandomOtherWarehouse(Rng& rng, uint64_t home) const {
  if (config_.warehouses <= 1) {
    return home;
  }
  uint64_t w = 1 + rng.NextBounded(config_.warehouses - 1);
  if (w >= home) {
    ++w;
  }
  return w;
}

void ShardedTpcc::LoadWarehouses(uint32_t session, uint32_t first, uint32_t last) {
  const uint64_t zero = 0;
  auto insert_one = [&](TableId table, uint64_t key, const void* row) {
    for (;;) {
      DbTxn txn = db_->Begin(session);
      const Status s = txn.Insert(table, key, row);
      if (s == Status::kOk && txn.Commit() == Status::kOk) {
        return;
      }
      if (s == Status::kDuplicate) {
        return;  // reloaded after recovery
      }
      txn.Abort();
    }
  };
  for (uint64_t w = first; w <= last; ++w) {
    insert_one(warehouse_, w, &zero);
    for (uint64_t d = 1; d <= config_.districts_per_warehouse; ++d) {
      const uint64_t district_row[2] = {0, 1};  // ytd, next_oid
      insert_one(district_, DistrictKey(w, d), district_row);
      for (uint64_t c = 1; c <= config_.customers_per_district; ++c) {
        const uint64_t customer_row[3] = {0, 0, 0};
        insert_one(customer_, CustomerKey(w, d, c), customer_row);
      }
    }
    for (uint64_t i = 1; i <= config_.items; ++i) {
      const uint64_t stock_row[3] = {100, 0, 0};  // quantity, ytd, remote_cnt
      insert_one(stock_, StockKey(w, i), stock_row);
    }
  }
}

Status ShardedTpcc::BumpColumn(DbTxn& txn, TableId table, uint64_t key,
                               uint32_t col, uint64_t delta) {
  uint64_t value = 0;
  Status s = txn.ReadColumn(table, key, col, &value);
  if (s != Status::kOk) {
    return s;
  }
  value += delta;
  return txn.UpdateColumn(table, key, col, &value);
}

bool ShardedTpcc::NewOrderLite(uint32_t session, Rng& rng) {
  const uint64_t w = HomeWarehouse(session);
  const uint64_t d = 1 + rng.NextBounded(config_.districts_per_warehouse);
  const uint64_t c = 1 + rng.NextBounded(config_.customers_per_district);
  // Pre-roll the order plan so retries replay the same transaction.
  struct Line {
    uint64_t item;
    uint64_t supply_w;
  };
  std::vector<Line> lines(config_.order_lines);
  for (Line& line : lines) {
    line.item = 1 + rng.NextBounded(config_.items);
    line.supply_w = rng.NextBounded(100) < config_.remote_stock_pct
                        ? RandomOtherWarehouse(rng, w)
                        : w;
  }
  for (uint32_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    DbTxn txn = db_->Begin(session);
    uint64_t next_oid = 0;
    if (txn.ReadColumn(district_, DistrictKey(w, d), ShardedDistrictCol::kNextOid,
                       &next_oid) != Status::kOk) {
      txn.Abort();
      continue;
    }
    const uint64_t bumped = next_oid + 1;
    if (txn.UpdateColumn(district_, DistrictKey(w, d), ShardedDistrictCol::kNextOid,
                         &bumped) != Status::kOk) {
      txn.Abort();
      continue;
    }
    const uint64_t order_row[2] = {c, config_.order_lines};
    if (txn.Insert(order_, OrderKey(w, d, next_oid), order_row) != Status::kOk) {
      txn.Abort();
      continue;
    }
    bool ok = true;
    for (const Line& line : lines) {
      const uint64_t key = StockKey(line.supply_w, line.item);
      uint64_t quantity = 0;
      if (txn.ReadColumn(stock_, key, ShardedStockCol::kQuantity, &quantity) !=
          Status::kOk) {
        ok = false;
        break;
      }
      const uint64_t updated = quantity >= 10 ? quantity - 5 : quantity + 86;
      if (txn.UpdateColumn(stock_, key, ShardedStockCol::kQuantity, &updated) !=
          Status::kOk) {
        ok = false;
        break;
      }
      if (line.supply_w != w &&
          BumpColumn(txn, stock_, key, ShardedStockCol::kRemoteCnt, 1) !=
              Status::kOk) {
        ok = false;
        break;
      }
    }
    if (ok && txn.Commit() == Status::kOk) {
      return true;
    }
    txn.Abort();
  }
  return false;
}

bool ShardedTpcc::PaymentLite(uint32_t session, Rng& rng) {
  const uint64_t w = HomeWarehouse(session);
  const uint64_t d = 1 + rng.NextBounded(config_.districts_per_warehouse);
  const uint64_t c = 1 + rng.NextBounded(config_.customers_per_district);
  const uint64_t c_w = rng.NextBounded(100) < config_.remote_customer_pct
                           ? RandomOtherWarehouse(rng, w)
                           : w;
  const uint64_t amount = 1 + rng.NextBounded(5000);
  for (uint32_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    DbTxn txn = db_->Begin(session);
    if (BumpColumn(txn, warehouse_, w, ShardedWarehouseCol::kYtd, amount) !=
            Status::kOk ||
        BumpColumn(txn, district_, DistrictKey(w, d), ShardedDistrictCol::kYtd,
                   amount) != Status::kOk ||
        BumpColumn(txn, customer_, CustomerKey(c_w, d, c),
                   ShardedCustomerCol::kBalance, amount) != Status::kOk ||
        BumpColumn(txn, customer_, CustomerKey(c_w, d, c),
                   ShardedCustomerCol::kPaymentCnt, 1) != Status::kOk) {
      txn.Abort();
      continue;
    }
    if (txn.Commit() == Status::kOk) {
      return true;
    }
    txn.Abort();
  }
  return false;
}

ShardedTpccTxnType ShardedTpcc::RunOne(uint32_t session, Rng& rng,
                                       bool* committed) {
  if (rng.NextBounded(2) == 0) {
    *committed = NewOrderLite(session, rng);
    return kNewOrderLite;
  }
  *committed = PaymentLite(session, rng);
  return kPaymentLite;
}

uint64_t ShardedTpcc::TotalNextOrderIds(uint32_t session) {
  uint64_t total = 0;
  for (uint64_t w = 1; w <= config_.warehouses; ++w) {
    for (uint64_t d = 1; d <= config_.districts_per_warehouse; ++d) {
      for (;;) {
        DbTxn txn = db_->Begin(session, /*read_only=*/false);
        uint64_t next_oid = 0;
        if (txn.ReadColumn(district_, DistrictKey(w, d),
                           ShardedDistrictCol::kNextOid, &next_oid) == Status::kOk &&
            txn.Commit() == Status::kOk) {
          total += next_oid;
          break;
        }
        txn.Abort();
      }
    }
  }
  return total;
}

}  // namespace falcon
