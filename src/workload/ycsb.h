// YCSB workload driver (Cooper et al., SoCC '10), configured as in the
// paper's §6.1: one table, u64 keys, 10 columns x 100B (~1KB tuples),
// uniform or Zipfian(0.99) key choice, full-tuple reads and updates.
//
// Core workloads:
//   A: 50% read / 50% update          (update-heavy)
//   B: 95% read /  5% update          (read-heavy)
//   C: 100% read                      (read-only)
//   D: 95% read-latest / 5% insert
//   E: 95% short scan / 5% insert     (needs a B+tree table)
//   F: 50% read / 50% read-modify-write

#ifndef SRC_WORKLOAD_YCSB_H_
#define SRC_WORKLOAD_YCSB_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/common/zipf.h"
#include "src/core/batch.h"
#include "src/core/engine.h"

namespace falcon {

struct YcsbConfig {
  uint64_t record_count = 100000;
  uint32_t field_count = 10;
  uint32_t field_size = 100;
  char workload = 'A';  // 'A'..'F'
  bool zipfian = false;
  double theta = 0.99;
  uint32_t scan_max_len = 100;  // E
};

// Per-thread generator state.
class YcsbThreadState {
 public:
  YcsbThreadState(const YcsbConfig& config, uint32_t thread_id, uint32_t thread_count,
                  uint64_t seed);

  uint64_t NextKey(uint64_t current_records);
  uint64_t NextInsertKey();

  Rng& rng() { return rng_; }

 private:
  const YcsbConfig& config_;
  uint32_t thread_id_;
  uint32_t thread_count_;
  Rng rng_;
  std::unique_ptr<ZipfianGenerator> zipf_;
  uint64_t insert_cursor_ = 0;
};

class YcsbWorkload {
 public:
  // Creates the table in `engine` (fresh engines only).
  YcsbWorkload(Engine* engine, YcsbConfig config);

  // Attaches to an existing table (after recovery); null if absent.
  static std::unique_ptr<YcsbWorkload> Attach(Engine* engine, YcsbConfig config);

  // Loads rows [begin, end) on the given worker.
  void LoadRange(Worker& worker, uint64_t begin, uint64_t end);

  // Runs one transaction; returns true if it committed.
  bool RunOne(Worker& worker, YcsbThreadState& state);

  TableId table() const { return table_; }
  const YcsbConfig& config() const { return config_; }
  uint64_t approx_records() const {
    return records_.load(std::memory_order_relaxed);
  }

 private:
  friend class YcsbFrame;

  YcsbWorkload(Engine* engine, YcsbConfig config, TableId table);

  void FillRow(std::byte* row, uint64_t key) const;

  bool TxnRead(Worker& worker, uint64_t key);
  bool TxnUpdate(Worker& worker, YcsbThreadState& state, uint64_t key);
  bool TxnReadModifyWrite(Worker& worker, YcsbThreadState& state, uint64_t key);
  bool TxnInsert(Worker& worker, YcsbThreadState& state);
  bool TxnScan(Worker& worker, YcsbThreadState& state, uint64_t key);

  Engine* engine_;
  YcsbConfig config_;
  TableId table_ = 0;
  uint32_t data_size_ = 0;
  std::atomic<uint64_t> records_{0};
};

// One resumable YCSB transaction for Worker::RunBatch. Reset() pre-rolls
// everything the transaction needs from the thread's generator (operation
// mix roll, key, update image, scan length), so Step() consumes no shared
// state and the frame replays deterministically regardless of how its
// slices interleave with siblings. Yield boundaries sit between the access
// phase and commit (and between read and write-back for RMW), which is
// where the NVM-miss and flush/fence stalls happen.
class YcsbFrame final : public TxnFrame {
 public:
  explicit YcsbFrame(YcsbWorkload* workload);

  // Prepares the next transaction of the mix. The frame must be finished
  // (no open Txn).
  void Reset(YcsbThreadState& state);

  // result(): 0 on commit, ~0 on abort (YCSB transactions are untyped).
  bool Step(Worker& worker) override;

 private:
  enum class Op : uint8_t { kRead, kUpdate, kReadModifyWrite, kInsert, kScan };

  // Resolves the frame as aborted; rolls back any open transaction.
  bool FinishAborted();
  // Commits the open transaction and resolves the frame.
  bool FinishCommit(bool count_insert);

  YcsbWorkload* workload_;
  Op op_ = Op::kRead;
  uint8_t stage_ = 0;
  uint64_t key_ = 0;
  uint64_t rmw_seed_ = 0;
  uint64_t scan_len_ = 0;
  std::vector<std::byte> row_;
};

// Per-thread frame pool feeding Worker::RunBatch `txn_count` YCSB
// transactions through up to `batch_size` concurrently live frames.
class YcsbFrameSource final : public FrameSource {
 public:
  YcsbFrameSource(YcsbWorkload* workload, YcsbThreadState* state, uint64_t txn_count,
                  uint32_t batch_size);

  TxnFrame* Next(Worker& worker) override;
  void Done(Worker& worker, TxnFrame* frame, uint64_t begin_ns, uint64_t end_ns) override;

 private:
  YcsbWorkload* workload_;
  YcsbThreadState* state_;
  uint64_t remaining_;
  std::vector<std::unique_ptr<YcsbFrame>> pool_;
  std::vector<YcsbFrame*> free_;
};

}  // namespace falcon

#endif  // SRC_WORKLOAD_YCSB_H_
