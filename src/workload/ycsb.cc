#include "src/workload/ycsb.h"

#include <cstring>
#include <vector>

namespace falcon {

YcsbThreadState::YcsbThreadState(const YcsbConfig& config, uint32_t thread_id,
                                 uint32_t thread_count, uint64_t seed)
    : config_(config), thread_id_(thread_id), thread_count_(thread_count), rng_(seed) {
  if (config_.zipfian) {
    zipf_ = std::make_unique<ZipfianGenerator>(config_.record_count, config_.theta,
                                               seed ^ 0x9e3779b97f4a7c15ull);
  }
}

uint64_t YcsbThreadState::NextKey(uint64_t current_records) {
  if (config_.workload == 'D') {
    // Read-latest: cluster around the most recently inserted records.
    const uint64_t back = rng_.NextBounded(100);
    return current_records > back ? current_records - 1 - back : 0;
  }
  if (zipf_ != nullptr) {
    return zipf_->NextScrambled();
  }
  return rng_.NextBounded(config_.record_count);
}

uint64_t YcsbThreadState::NextInsertKey() {
  // Disjoint per-thread key streams above the loaded range.
  const uint64_t k = config_.record_count + insert_cursor_ * thread_count_ + thread_id_;
  ++insert_cursor_;
  return k;
}

YcsbWorkload::YcsbWorkload(Engine* engine, YcsbConfig config)
    : engine_(engine), config_(config) {
  SchemaBuilder schema("usertable");
  for (uint32_t f = 0; f < config_.field_count; ++f) {
    schema.AddColumn(config_.field_size);
  }
  // Workload E scans by key order; other workloads use hashing (the paper
  // wraps Dash for point workloads and NBTree where scans are needed).
  const IndexKind kind = config_.workload == 'E' ? IndexKind::kBTree : IndexKind::kHash;
  table_ = engine_->CreateTable(schema, kind);
  data_size_ = static_cast<uint32_t>(engine_->TupleDataSize(table_));
  records_.store(config_.record_count, std::memory_order_relaxed);
}

YcsbWorkload::YcsbWorkload(Engine* engine, YcsbConfig config, TableId table)
    : engine_(engine), config_(config), table_(table) {
  data_size_ = static_cast<uint32_t>(engine_->TupleDataSize(table_));
  records_.store(config_.record_count, std::memory_order_relaxed);
}

std::unique_ptr<YcsbWorkload> YcsbWorkload::Attach(Engine* engine, YcsbConfig config) {
  const auto table = engine->FindTableId("usertable");
  if (!table.has_value()) {
    return nullptr;
  }
  return std::unique_ptr<YcsbWorkload>(new YcsbWorkload(engine, config, *table));
}

void YcsbWorkload::FillRow(std::byte* row, uint64_t key) const {
  // Deterministic, key-derived content so integrity checks can recompute it.
  uint64_t acc = Mix64(key);
  for (uint32_t i = 0; i < data_size_; i += sizeof(uint64_t)) {
    const size_t n = std::min<size_t>(sizeof(uint64_t), data_size_ - i);
    std::memcpy(row + i, &acc, n);
    acc = Mix64(acc);
  }
}

void YcsbWorkload::LoadRange(Worker& worker, uint64_t begin, uint64_t end) {
  std::vector<std::byte> row(data_size_);
  for (uint64_t key = begin; key < end; ++key) {
    FillRow(row.data(), key);
    for (;;) {
      Txn txn = worker.Begin();
      const Status s = txn.Insert(table_, key, row.data());
      if (s == Status::kOk && txn.Commit() == Status::kOk) {
        break;
      }
      if (s == Status::kDuplicate) {
        break;  // reloaded after recovery
      }
    }
  }
}

bool YcsbWorkload::RunOne(Worker& worker, YcsbThreadState& state) {
  const uint64_t roll = state.rng().NextBounded(100);
  const uint64_t key = state.NextKey(records_.load(std::memory_order_relaxed));
  switch (config_.workload) {
    case 'A':
      return roll < 50 ? TxnRead(worker, key) : TxnUpdate(worker, state, key);
    case 'B':
      return roll < 95 ? TxnRead(worker, key) : TxnUpdate(worker, state, key);
    case 'C':
      return TxnRead(worker, key);
    case 'D':
      return roll < 95 ? TxnRead(worker, key) : TxnInsert(worker, state);
    case 'E':
      return roll < 95 ? TxnScan(worker, state, key) : TxnInsert(worker, state);
    case 'F':
      return roll < 50 ? TxnRead(worker, key) : TxnReadModifyWrite(worker, state, key);
    default:
      return false;
  }
}

bool YcsbWorkload::TxnRead(Worker& worker, uint64_t key) {
  std::vector<std::byte> row(data_size_);
  Txn txn = worker.Begin();
  if (txn.Read(table_, key, row.data()) == Status::kAborted) {
    return false;
  }
  return txn.Commit() == Status::kOk;
}

bool YcsbWorkload::TxnUpdate(Worker& worker, YcsbThreadState& state, uint64_t key) {
  // The paper's configuration updates all ten fields (§6.2.3: "we chose a
  // configuration in which all ten fields get updated").
  std::vector<std::byte> row(data_size_);
  FillRow(row.data(), key ^ state.rng().Next());
  Txn txn = worker.Begin();
  if (txn.UpdateFull(table_, key, row.data()) != Status::kOk) {
    return false;
  }
  return txn.Commit() == Status::kOk;
}

bool YcsbWorkload::TxnReadModifyWrite(Worker& worker, YcsbThreadState& state, uint64_t key) {
  std::vector<std::byte> row(data_size_);
  Txn txn = worker.Begin();
  const Status rs = txn.Read(table_, key, row.data());
  if (rs != Status::kOk) {
    if (rs != Status::kNotFound) {
      return false;
    }
    txn.Abort();
    return false;
  }
  // Modify every field based on the read value (idempotent redo: the new
  // value is recorded, not the delta — §5.2.2).
  for (uint32_t i = 0; i + sizeof(uint64_t) <= data_size_; i += config_.field_size) {
    uint64_t v = 0;
    std::memcpy(&v, row.data() + i, sizeof(v));
    v = Mix64(v + state.rng().Next());
    std::memcpy(row.data() + i, &v, sizeof(v));
  }
  if (txn.UpdateFull(table_, key, row.data()) != Status::kOk) {
    return false;
  }
  return txn.Commit() == Status::kOk;
}

bool YcsbWorkload::TxnInsert(Worker& worker, YcsbThreadState& state) {
  const uint64_t key = state.NextInsertKey();
  std::vector<std::byte> row(data_size_);
  FillRow(row.data(), key);
  Txn txn = worker.Begin();
  if (txn.Insert(table_, key, row.data()) != Status::kOk) {
    return false;
  }
  if (txn.Commit() != Status::kOk) {
    return false;
  }
  records_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool YcsbWorkload::TxnScan(Worker& worker, YcsbThreadState& state, uint64_t key) {
  const uint64_t len = 1 + state.rng().NextBounded(config_.scan_max_len);
  Txn txn = worker.Begin();
  size_t seen = 0;
  const Status s = txn.Scan(table_, key, UINT64_MAX, len,
                            [&seen](uint64_t, const std::byte*) { ++seen; });
  if (s != Status::kOk) {
    return false;
  }
  return txn.Commit() == Status::kOk;
}

// ---- Batched frames ----------------------------------------------------------

YcsbFrame::YcsbFrame(YcsbWorkload* workload)
    : workload_(workload), row_(workload->data_size_) {}

void YcsbFrame::Reset(YcsbThreadState& state) {
  assert(!has_txn());
  stage_ = 0;
  set_result(0);
  const YcsbConfig& cfg = workload_->config_;
  const uint64_t roll = state.rng().NextBounded(100);
  key_ = state.NextKey(workload_->records_.load(std::memory_order_relaxed));
  switch (cfg.workload) {
    case 'A':
      op_ = roll < 50 ? Op::kRead : Op::kUpdate;
      break;
    case 'B':
      op_ = roll < 95 ? Op::kRead : Op::kUpdate;
      break;
    case 'C':
      op_ = Op::kRead;
      break;
    case 'D':
      op_ = roll < 95 ? Op::kRead : Op::kInsert;
      break;
    case 'E':
      op_ = roll < 95 ? Op::kScan : Op::kInsert;
      break;
    case 'F':
      op_ = roll < 50 ? Op::kRead : Op::kReadModifyWrite;
      break;
    default:
      op_ = Op::kRead;
      break;
  }
  switch (op_) {
    case Op::kUpdate:
      workload_->FillRow(row_.data(), key_ ^ state.rng().Next());
      break;
    case Op::kReadModifyWrite:
      rmw_seed_ = state.rng().Next();
      break;
    case Op::kInsert:
      key_ = state.NextInsertKey();
      workload_->FillRow(row_.data(), key_);
      break;
    case Op::kScan:
      scan_len_ = 1 + state.rng().NextBounded(cfg.scan_max_len);
      break;
    case Op::kRead:
      break;
  }
}

bool YcsbFrame::FinishAborted() {
  if (has_txn()) {
    txn().Abort();  // no-op when the engine already aborted internally
    EndTxn();
  }
  set_result(~0);
  return true;
}

bool YcsbFrame::FinishCommit(bool count_insert) {
  const Status s = txn().Commit();
  EndTxn();
  if (s != Status::kOk) {
    set_result(~0);
    return true;
  }
  if (count_insert) {
    workload_->records_.fetch_add(1, std::memory_order_relaxed);
  }
  set_result(0);
  return true;
}

bool YcsbFrame::Step(Worker& worker) {
  const TableId table = workload_->table_;
  switch (op_) {
    case Op::kRead:
      if (stage_ == 0) {
        Txn& txn = BeginTxn(worker);
        // Mirrors TxnRead: a kNotFound read still commits.
        if (txn.Read(table, key_, row_.data()) == Status::kAborted) {
          return FinishAborted();
        }
        stage_ = 1;
        return false;
      }
      return FinishCommit(false);

    case Op::kUpdate:
      if (stage_ == 0) {
        Txn& txn = BeginTxn(worker);
        if (txn.UpdateFull(table, key_, row_.data()) != Status::kOk) {
          return FinishAborted();
        }
        stage_ = 1;
        return false;
      }
      return FinishCommit(false);

    case Op::kReadModifyWrite:
      if (stage_ == 0) {
        Txn& txn = BeginTxn(worker);
        if (txn.Read(table, key_, row_.data()) != Status::kOk) {
          return FinishAborted();
        }
        stage_ = 1;
        return false;
      }
      if (stage_ == 1) {
        // Modify every field based on the read value (idempotent redo, as
        // in TxnReadModifyWrite, but driven by the pre-rolled seed).
        uint64_t chain = rmw_seed_;
        const uint32_t field = workload_->config_.field_size;
        for (uint32_t i = 0; i + sizeof(uint64_t) <= workload_->data_size_; i += field) {
          uint64_t v = 0;
          std::memcpy(&v, row_.data() + i, sizeof(v));
          chain = Mix64(chain);
          v = Mix64(v + chain);
          std::memcpy(row_.data() + i, &v, sizeof(v));
        }
        if (txn().UpdateFull(table, key_, row_.data()) != Status::kOk) {
          return FinishAborted();
        }
        stage_ = 2;
        return false;
      }
      return FinishCommit(false);

    case Op::kInsert:
      if (stage_ == 0) {
        Txn& txn = BeginTxn(worker);
        if (txn.Insert(table, key_, row_.data()) != Status::kOk) {
          return FinishAborted();
        }
        stage_ = 1;
        return false;
      }
      return FinishCommit(true);

    case Op::kScan:
      if (stage_ == 0) {
        Txn& txn = BeginTxn(worker);
        size_t seen = 0;
        if (txn.Scan(table, key_, UINT64_MAX, scan_len_,
                     [&seen](uint64_t, const std::byte*) { ++seen; }) != Status::kOk) {
          return FinishAborted();
        }
        stage_ = 1;
        return false;
      }
      return FinishCommit(false);
  }
  return FinishAborted();  // unreachable
}

YcsbFrameSource::YcsbFrameSource(YcsbWorkload* workload, YcsbThreadState* state,
                                 uint64_t txn_count, uint32_t batch_size)
    : workload_(workload), state_(state), remaining_(txn_count) {
  if (batch_size == 0) {
    batch_size = 1;
  }
  pool_.reserve(batch_size);
  free_.reserve(batch_size);
  for (uint32_t i = 0; i < batch_size; ++i) {
    pool_.push_back(std::make_unique<YcsbFrame>(workload_));
    free_.push_back(pool_.back().get());
  }
}

TxnFrame* YcsbFrameSource::Next(Worker& worker) {
  (void)worker;
  if (remaining_ == 0 || free_.empty()) {
    return nullptr;
  }
  --remaining_;
  YcsbFrame* frame = free_.back();
  free_.pop_back();
  frame->Reset(*state_);
  return frame;
}

void YcsbFrameSource::Done(Worker& worker, TxnFrame* frame, uint64_t begin_ns,
                           uint64_t end_ns) {
  (void)worker;
  (void)begin_ns;
  (void)end_ns;
  free_.push_back(static_cast<YcsbFrame*>(frame));
}

}  // namespace falcon
