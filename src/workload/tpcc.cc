#include "src/workload/tpcc.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <set>
#include <vector>

namespace falcon {

namespace {

// Retries a transaction body until it commits. The body returns kOk
// (committed), kAborted (retry), or another status (give up -> false).
template <typename Body>
bool RunToCompletion(Worker& worker, Body&& body, int max_attempts = 64) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const Status s = body();
    if (s == Status::kOk) {
      return true;
    }
    if (s != Status::kAborted) {
      return false;
    }
  }
  return false;
}

// Shorthand: abort-and-bubble on a CC conflict, give up on anything else.
#define TPCC_TRY(expr)                 \
  do {                                 \
    const Status _s = (expr);          \
    if (_s != Status::kOk) {           \
      if (_s == Status::kAborted) {    \
        return Status::kAborted;       \
      }                                \
      txn.Abort();                     \
      return Status::kInvalidArgument; \
    }                                  \
  } while (0)

}  // namespace

TpccWorkload::TpccWorkload(Engine* engine, TpccConfig config)
    : engine_(engine), config_(config) {
  {
    SchemaBuilder s("warehouse");
    s.AddU64();        // tax (fixed-point cents)
    s.AddU64();        // ytd
    s.AddColumn(10);   // name
    s.AddColumn(71);   // address
    warehouse_ = engine_->CreateTable(s, IndexKind::kHash);
  }
  {
    SchemaBuilder s("district");
    s.AddU64();        // tax
    s.AddU64();        // ytd
    s.AddU64();        // next_o_id
    s.AddColumn(10);   // name
    s.AddColumn(71);   // address
    district_ = engine_->CreateTable(s, IndexKind::kHash);
  }
  {
    SchemaBuilder s("customer");
    s.AddU64();        // balance (signed, stored biased)
    s.AddU64();        // ytd_payment
    s.AddU64();        // payment_cnt
    s.AddU64();        // delivery_cnt
    s.AddU64();        // last_order (simplification, see header)
    s.AddColumn(416);  // name/address/credit/data
    customer_ = engine_->CreateTable(s, IndexKind::kHash);
  }
  {
    SchemaBuilder s("history");
    s.AddU64();        // amount
    s.AddU64();        // warehouse
    s.AddU64();        // district
    s.AddU64();        // customer
    s.AddColumn(24);   // data
    history_ = engine_->CreateTable(s, IndexKind::kHash);
  }
  {
    SchemaBuilder s("orders");
    s.AddU64();  // customer
    s.AddU64();  // entry date
    s.AddU64();  // carrier
    s.AddU64();  // line count
    s.AddU64();  // all local
    order_ = engine_->CreateTable(s, IndexKind::kBTree);
  }
  {
    SchemaBuilder s("new_order");
    s.AddU64();  // placeholder payload
    new_order_ = engine_->CreateTable(s, IndexKind::kBTree);
  }
  {
    SchemaBuilder s("order_line");
    s.AddU64();       // item
    s.AddU64();       // supply warehouse
    s.AddU64();       // delivery date (0 = undelivered)
    s.AddU64();       // quantity
    s.AddU64();       // amount
    s.AddColumn(24);  // dist info
    order_line_ = engine_->CreateTable(s, IndexKind::kBTree);
  }
  {
    SchemaBuilder s("item");
    s.AddU64();       // price
    s.AddColumn(24);  // name
    s.AddColumn(50);  // data
    item_ = engine_->CreateTable(s, IndexKind::kHash);
  }
  {
    SchemaBuilder s("stock");
    s.AddU64();       // quantity
    s.AddU64();       // ytd
    s.AddU64();       // order_cnt
    s.AddU64();       // remote_cnt
    s.AddColumn(50);  // data
    stock_ = engine_->CreateTable(s, IndexKind::kHash);
  }
}

// ---- Loading ---------------------------------------------------------------

void TpccWorkload::LoadItems(Worker& worker) {
  std::vector<std::byte> row(engine_->TupleDataSize(item_));
  Rng rng(42);
  for (uint64_t i = 1; i <= config_.items; ++i) {
    std::memset(row.data(), 0, row.size());
    const uint64_t price = 100 + rng.NextBounded(9900);  // cents
    std::memcpy(row.data(), &price, sizeof(price));
    Txn txn = worker.Begin();
    txn.Insert(item_, i, row.data());
    txn.Commit();
  }
}

void TpccWorkload::LoadWarehouseSlice(Worker& worker, uint32_t first_wh, uint32_t last_wh) {
  Rng rng(7 + first_wh);
  std::vector<std::byte> wh_row(engine_->TupleDataSize(warehouse_));
  std::vector<std::byte> stock_row(engine_->TupleDataSize(stock_));

  for (uint64_t w = first_wh; w <= last_wh; ++w) {
    std::memset(wh_row.data(), 0, wh_row.size());
    const uint64_t tax = rng.NextBounded(2000);  // 0..20% in basis points
    std::memcpy(wh_row.data(), &tax, sizeof(tax));
    {
      Txn txn = worker.Begin();
      txn.Insert(warehouse_, w, wh_row.data());
      txn.Commit();
    }
    for (uint64_t i = 1; i <= config_.items; ++i) {
      std::memset(stock_row.data(), 0, stock_row.size());
      const uint64_t quantity = 10 + rng.NextBounded(91);
      std::memcpy(stock_row.data(), &quantity, sizeof(quantity));
      Txn txn = worker.Begin();
      txn.Insert(stock_, StockKey(w, i), stock_row.data());
      txn.Commit();
    }
    for (uint64_t d = 1; d <= config_.districts_per_warehouse; ++d) {
      LoadDistrict(worker, w, d);
    }
  }
}

void TpccWorkload::LoadDistrict(Worker& worker, uint64_t w, uint64_t d) {
  Rng rng(static_cast<uint64_t>(w) * 131 + d);
  {
    std::vector<std::byte> row(engine_->TupleDataSize(district_));
    std::memset(row.data(), 0, row.size());
    const uint64_t tax = rng.NextBounded(2000);
    const uint64_t next_o_id = config_.initial_orders_per_district + 1;
    std::memcpy(row.data(), &tax, sizeof(tax));
    std::memcpy(row.data() + 16, &next_o_id, sizeof(next_o_id));
    Txn txn = worker.Begin();
    txn.Insert(district_, DistrictKey(w, d), row.data());
    txn.Commit();
  }
  // Customers (balance stored biased by +1B so it never goes "negative").
  {
    std::vector<std::byte> row(engine_->TupleDataSize(customer_));
    for (uint64_t c = 1; c <= config_.customers_per_district; ++c) {
      std::memset(row.data(), 0, row.size());
      const uint64_t balance = 1'000'000'000ull;
      std::memcpy(row.data(), &balance, sizeof(balance));
      Txn txn = worker.Begin();
      txn.Insert(customer_, CustomerKey(w, d, c), row.data());
      txn.Commit();
    }
  }
  // Initial orders with order lines; the most recent third sit in NEW-ORDER.
  std::vector<std::byte> order_row(engine_->TupleDataSize(order_));
  std::vector<std::byte> line_row(engine_->TupleDataSize(order_line_));
  std::vector<std::byte> no_row(engine_->TupleDataSize(new_order_));
  for (uint64_t o = 1; o <= config_.initial_orders_per_district; ++o) {
    const uint64_t customer = RandomCustomer(rng);
    const uint64_t line_count =
        config_.min_order_lines + rng.NextBounded(config_.max_order_lines -
                                                  config_.min_order_lines + 1);
    std::memset(order_row.data(), 0, order_row.size());
    std::memcpy(order_row.data(), &customer, sizeof(customer));
    const uint64_t carrier = rng.NextBounded(10) + 1;
    std::memcpy(order_row.data() + 16, &carrier, sizeof(carrier));
    std::memcpy(order_row.data() + 24, &line_count, sizeof(line_count));

    Txn txn = worker.Begin();
    txn.Insert(order_, OrderKey(w, d, o), order_row.data());
    for (uint64_t ol = 1; ol <= line_count; ++ol) {
      std::memset(line_row.data(), 0, line_row.size());
      const uint64_t item = RandomItem(rng);
      std::memcpy(line_row.data(), &item, sizeof(item));
      std::memcpy(line_row.data() + 8, &w, sizeof(w));
      const uint64_t delivered = o + 1;
      std::memcpy(line_row.data() + 16, &delivered, sizeof(delivered));
      txn.Insert(order_line_, OrderLineKey(w, d, o, ol), line_row.data());
    }
    if (o > config_.initial_orders_per_district * 2 / 3) {
      std::memset(no_row.data(), 0, no_row.size());
      txn.Insert(new_order_, OrderKey(w, d, o), no_row.data());
    }
    txn.Commit();
  }
}

// ---- Transactions ------------------------------------------------------------

TpccTxnType TpccWorkload::RunOne(Worker& worker, Rng& rng, bool* committed) {
  const uint64_t roll = rng.NextBounded(100);
  TpccTxnType type;
  if (roll < 45) {
    type = kNewOrder;
  } else if (roll < 88) {
    type = kPayment;
  } else if (roll < 92) {
    type = kOrderStatus;
  } else if (roll < 96) {
    type = kDelivery;
  } else {
    type = kStockLevel;
  }
  bool ok = false;
  switch (type) {
    case kNewOrder:
      ok = NewOrder(worker, rng);
      break;
    case kPayment:
      ok = Payment(worker, rng);
      break;
    case kOrderStatus:
      ok = OrderStatus(worker, rng);
      break;
    case kDelivery:
      ok = Delivery(worker, rng);
      break;
    case kStockLevel:
      ok = StockLevel(worker, rng);
      break;
  }
  if (committed != nullptr) {
    *committed = ok;
  }
  return type;
}

bool TpccWorkload::NewOrder(Worker& worker, Rng& rng) {
  const uint64_t w = 1 + (worker.id() % config_.warehouses);
  const uint64_t d = RandomDistrict(rng);
  const uint64_t c = RandomCustomer(rng);
  const uint64_t line_count = config_.min_order_lines +
                              rng.NextBounded(config_.max_order_lines -
                                              config_.min_order_lines + 1);
  // Pre-generate the order lines so retries replay the same transaction.
  struct Line {
    uint64_t item;
    uint64_t supply_w;
    uint64_t quantity;
  };
  std::vector<Line> lines(line_count);
  bool rollback = false;
  for (auto& line : lines) {
    line.item = RandomItem(rng);
    line.supply_w = w;
    if (config_.warehouses > 1 && rng.NextBounded(100) < config_.remote_warehouse_pct) {
      do {
        line.supply_w = RandomWarehouse(rng);
      } while (line.supply_w == w);
    }
    line.quantity = 1 + rng.NextBounded(10);
  }
  if (rng.NextBounded(100) < config_.invalid_item_pct) {
    rollback = true;  // TPC-C 1% rollback via unused item id
  }

  return RunToCompletion(worker, [&]() -> Status {
    Txn txn = worker.Begin();
    uint64_t w_tax = 0;
    TPCC_TRY(txn.ReadColumn(warehouse_, w, WarehouseCol::kTax, &w_tax));

    uint64_t next_o_id = 0;
    TPCC_TRY(txn.ReadColumn(district_, DistrictKey(w, d), DistrictCol::kNextOid, &next_o_id));
    const uint64_t bumped = next_o_id + 1;
    TPCC_TRY(txn.UpdateColumn(district_, DistrictKey(w, d), DistrictCol::kNextOid, &bumped));

    uint64_t balance = 0;
    TPCC_TRY(txn.ReadColumn(customer_, CustomerKey(w, d, c), CustomerCol::kBalance, &balance));

    if (rollback) {
      // Simulated invalid-item abort (user-initiated rollback).
      txn.Abort();
      return Status::kInvalidArgument;
    }

    const uint64_t o = next_o_id;
    std::vector<std::byte> order_row(engine_->TupleDataSize(order_), std::byte{0});
    std::memcpy(order_row.data(), &c, sizeof(c));
    const uint64_t entry = o;
    std::memcpy(order_row.data() + 8, &entry, sizeof(entry));
    std::memcpy(order_row.data() + 24, &line_count, sizeof(line_count));
    TPCC_TRY(txn.Insert(order_, OrderKey(w, d, o), order_row.data()));

    std::vector<std::byte> no_row(engine_->TupleDataSize(new_order_), std::byte{0});
    TPCC_TRY(txn.Insert(new_order_, OrderKey(w, d, o), no_row.data()));

    std::vector<std::byte> line_row(engine_->TupleDataSize(order_line_));
    for (uint64_t ol = 0; ol < line_count; ++ol) {
      const Line& line = lines[ol];
      uint64_t price = 0;
      TPCC_TRY(txn.ReadColumn(item_, line.item, ItemCol::kPrice, &price));

      const uint64_t stock_key = StockKey(line.supply_w, line.item);
      uint64_t quantity = 0;
      TPCC_TRY(txn.ReadColumn(stock_, stock_key, StockCol::kQuantity, &quantity));
      const uint64_t new_quantity =
          quantity >= line.quantity + 10 ? quantity - line.quantity : quantity + 91 - line.quantity;
      TPCC_TRY(txn.UpdateColumn(stock_, stock_key, StockCol::kQuantity, &new_quantity));
      uint64_t ytd = 0;
      TPCC_TRY(txn.ReadColumn(stock_, stock_key, StockCol::kYtd, &ytd));
      ytd += line.quantity;
      TPCC_TRY(txn.UpdateColumn(stock_, stock_key, StockCol::kYtd, &ytd));

      std::memset(line_row.data(), 0, line_row.size());
      std::memcpy(line_row.data(), &line.item, sizeof(uint64_t));
      std::memcpy(line_row.data() + 8, &line.supply_w, sizeof(uint64_t));
      std::memcpy(line_row.data() + 24, &line.quantity, sizeof(uint64_t));
      const uint64_t amount = price * line.quantity;
      std::memcpy(line_row.data() + 32, &amount, sizeof(uint64_t));
      TPCC_TRY(txn.Insert(order_line_, OrderLineKey(w, d, o, ol + 1), line_row.data()));
    }

    TPCC_TRY(txn.UpdateColumn(customer_, CustomerKey(w, d, c), CustomerCol::kLastOrder, &o));
    return txn.Commit();
  });
}

bool TpccWorkload::Payment(Worker& worker, Rng& rng) {
  const uint64_t w = 1 + (worker.id() % config_.warehouses);
  const uint64_t d = RandomDistrict(rng);
  // 15%: customer pays through a remote warehouse/district (TPC-C 2.5.1.2).
  uint64_t c_w = w;
  uint64_t c_d = d;
  if (config_.warehouses > 1 && rng.NextBounded(100) < 15) {
    do {
      c_w = RandomWarehouse(rng);
    } while (c_w == w);
    c_d = RandomDistrict(rng);
  }
  const uint64_t c = RandomCustomer(rng);
  const uint64_t amount = 100 + rng.NextBounded(499900);  // cents

  return RunToCompletion(worker, [&]() -> Status {
    Txn txn = worker.Begin();
    uint64_t w_ytd = 0;
    TPCC_TRY(txn.ReadColumn(warehouse_, w, WarehouseCol::kYtd, &w_ytd));
    w_ytd += amount;
    TPCC_TRY(txn.UpdateColumn(warehouse_, w, WarehouseCol::kYtd, &w_ytd));

    uint64_t d_ytd = 0;
    TPCC_TRY(txn.ReadColumn(district_, DistrictKey(w, d), DistrictCol::kYtd, &d_ytd));
    d_ytd += amount;
    TPCC_TRY(txn.UpdateColumn(district_, DistrictKey(w, d), DistrictCol::kYtd, &d_ytd));

    const uint64_t c_key = CustomerKey(c_w, c_d, c);
    uint64_t balance = 0;
    uint64_t ytd_payment = 0;
    uint64_t payment_cnt = 0;
    TPCC_TRY(txn.ReadColumn(customer_, c_key, CustomerCol::kBalance, &balance));
    TPCC_TRY(txn.ReadColumn(customer_, c_key, CustomerCol::kYtdPayment, &ytd_payment));
    TPCC_TRY(txn.ReadColumn(customer_, c_key, CustomerCol::kPaymentCnt, &payment_cnt));
    balance -= amount;
    ytd_payment += amount;
    ++payment_cnt;
    TPCC_TRY(txn.UpdateColumn(customer_, c_key, CustomerCol::kBalance, &balance));
    TPCC_TRY(txn.UpdateColumn(customer_, c_key, CustomerCol::kYtdPayment, &ytd_payment));
    TPCC_TRY(txn.UpdateColumn(customer_, c_key, CustomerCol::kPaymentCnt, &payment_cnt));

    std::vector<std::byte> h_row(engine_->TupleDataSize(history_), std::byte{0});
    std::memcpy(h_row.data(), &amount, sizeof(amount));
    std::memcpy(h_row.data() + 8, &w, sizeof(w));
    std::memcpy(h_row.data() + 16, &d, sizeof(d));
    std::memcpy(h_row.data() + 24, &c, sizeof(c));
    const uint64_t h_key = (static_cast<uint64_t>(worker.id()) << 40) |
                           history_seq_.fetch_add(1, std::memory_order_relaxed);
    TPCC_TRY(txn.Insert(history_, h_key, h_row.data()));
    return txn.Commit();
  });
}

bool TpccWorkload::OrderStatus(Worker& worker, Rng& rng) {
  const uint64_t w = 1 + (worker.id() % config_.warehouses);
  const uint64_t d = RandomDistrict(rng);
  const uint64_t c = RandomCustomer(rng);

  return RunToCompletion(worker, [&]() -> Status {
    Txn txn = worker.Begin(/*read_only=*/true);
    uint64_t last_order = 0;
    const Status rs =
        txn.ReadColumn(customer_, CustomerKey(w, d, c), CustomerCol::kLastOrder, &last_order);
    if (rs == Status::kAborted) {
      return Status::kAborted;
    }
    if (rs != Status::kOk || last_order == 0) {
      return txn.Commit();  // customer has no orders yet
    }
    uint64_t carrier = 0;
    const Status os =
        txn.ReadColumn(order_, OrderKey(w, d, last_order), OrderCol::kCarrier, &carrier);
    if (os == Status::kAborted) {
      return Status::kAborted;
    }
    if (os == Status::kOk) {
      uint64_t lines_seen = 0;
      const Status ss = txn.Scan(order_line_, OrderLineKey(w, d, last_order, 0),
                                 OrderLineKey(w, d, last_order, 15), 16,
                                 [&lines_seen](uint64_t, const std::byte*) { ++lines_seen; });
      if (ss == Status::kAborted) {
        return Status::kAborted;
      }
    }
    return txn.Commit();
  });
}

bool TpccWorkload::Delivery(Worker& worker, Rng& rng) {
  const uint64_t w = 1 + (worker.id() % config_.warehouses);
  const uint64_t carrier = 1 + rng.NextBounded(10);

  return RunToCompletion(worker, [&]() -> Status {
    Txn txn = worker.Begin();
    for (uint64_t d = 1; d <= config_.districts_per_warehouse; ++d) {
      // Oldest undelivered order for this district.
      uint64_t oldest = 0;
      const Status ss =
          txn.Scan(new_order_, OrderKey(w, d, 0), OrderKey(w, d, (1 << kOrderBits) - 1), 1,
                   [&](uint64_t key, const std::byte*) {
                     oldest = key & ((1ull << kOrderBits) - 1);
                   });
      if (ss == Status::kAborted) {
        return Status::kAborted;
      }
      if (oldest == 0) {
        continue;  // district fully delivered
      }
      TPCC_TRY(txn.Delete(new_order_, OrderKey(w, d, oldest)));

      uint64_t customer = 0;
      TPCC_TRY(txn.ReadColumn(order_, OrderKey(w, d, oldest), OrderCol::kCustomer, &customer));
      TPCC_TRY(txn.UpdateColumn(order_, OrderKey(w, d, oldest), OrderCol::kCarrier, &carrier));

      uint64_t total = 0;
      std::vector<uint64_t> line_keys;
      const Status ls = txn.Scan(order_line_, OrderLineKey(w, d, oldest, 0),
                                 OrderLineKey(w, d, oldest, 15), 16,
                                 [&](uint64_t key, const std::byte* row) {
                                   uint64_t amount = 0;
                                   std::memcpy(&amount, row + 32, sizeof(amount));
                                   total += amount;
                                   line_keys.push_back(key);
                                 });
      if (ls == Status::kAborted) {
        return Status::kAborted;
      }
      const uint64_t now = oldest + 1;
      for (const uint64_t key : line_keys) {
        TPCC_TRY(txn.UpdateColumn(order_line_, key, OrderLineCol::kDeliveryDate, &now));
      }

      const uint64_t c_key = CustomerKey(w, d, customer);
      uint64_t balance = 0;
      uint64_t delivery_cnt = 0;
      TPCC_TRY(txn.ReadColumn(customer_, c_key, CustomerCol::kBalance, &balance));
      TPCC_TRY(txn.ReadColumn(customer_, c_key, CustomerCol::kDeliveryCnt, &delivery_cnt));
      balance += total;
      ++delivery_cnt;
      TPCC_TRY(txn.UpdateColumn(customer_, c_key, CustomerCol::kBalance, &balance));
      TPCC_TRY(txn.UpdateColumn(customer_, c_key, CustomerCol::kDeliveryCnt, &delivery_cnt));
    }
    return txn.Commit();
  });
}

bool TpccWorkload::StockLevel(Worker& worker, Rng& rng) {
  const uint64_t w = 1 + (worker.id() % config_.warehouses);
  const uint64_t d = RandomDistrict(rng);
  const uint64_t threshold = 10 + rng.NextBounded(11);  // 10..20

  return RunToCompletion(worker, [&]() -> Status {
    Txn txn = worker.Begin(/*read_only=*/true);
    uint64_t next_o_id = 0;
    const Status ds =
        txn.ReadColumn(district_, DistrictKey(w, d), DistrictCol::kNextOid, &next_o_id);
    if (ds != Status::kOk) {
      return ds == Status::kAborted ? Status::kAborted : txn.Commit();
    }
    const uint64_t from = next_o_id > 20 ? next_o_id - 20 : 1;
    std::set<uint64_t> items;
    const Status ss = txn.Scan(order_line_, OrderLineKey(w, d, from, 0),
                               OrderLineKey(w, d, next_o_id, 15), 400,
                               [&items](uint64_t, const std::byte* row) {
                                 uint64_t item = 0;
                                 std::memcpy(&item, row, sizeof(item));
                                 items.insert(item);
                               });
    if (ss == Status::kAborted) {
      return Status::kAborted;
    }
    uint64_t low = 0;
    for (const uint64_t item : items) {
      uint64_t quantity = 0;
      const Status qs = txn.ReadColumn(stock_, StockKey(w, item), StockCol::kQuantity, &quantity);
      if (qs == Status::kAborted) {
        return Status::kAborted;
      }
      if (qs == Status::kOk && quantity < threshold) {
        ++low;
      }
    }
    return txn.Commit();
  });
}

// ---- Batched New-Order frames ------------------------------------------------

NewOrderFrame::NewOrderFrame(TpccWorkload* workload)
    : workload_(workload),
      order_row_(workload->engine_->TupleDataSize(workload->order_)),
      no_row_(workload->engine_->TupleDataSize(workload->new_order_)),
      line_row_(workload->engine_->TupleDataSize(workload->order_line_)) {}

void NewOrderFrame::Reset(Worker& worker, Rng& rng) {
  assert(!has_txn());
  const TpccConfig& cfg = workload_->config_;
  stage_ = Stage::kHeader;
  line_idx_ = 0;
  attempts_ = 0;
  committed_ = false;
  set_result(0);
  w_ = 1 + (worker.id() % cfg.warehouses);
  d_ = workload_->RandomDistrict(rng);
  c_ = workload_->RandomCustomer(rng);
  const uint64_t line_count =
      cfg.min_order_lines + rng.NextBounded(cfg.max_order_lines - cfg.min_order_lines + 1);
  lines_.resize(line_count);
  for (Line& line : lines_) {
    line.item = workload_->RandomItem(rng);
    line.supply_w = w_;
    if (cfg.warehouses > 1 && rng.NextBounded(100) < cfg.remote_warehouse_pct) {
      do {
        line.supply_w = workload_->RandomWarehouse(rng);
      } while (line.supply_w == w_);
    }
    line.quantity = 1 + rng.NextBounded(10);
  }
  rollback_ = rng.NextBounded(100) < cfg.invalid_item_pct;
}

Status NewOrderFrame::StepHeader(Worker& worker) {
  TpccWorkload& wl = *workload_;
  Txn& txn = BeginTxn(worker);
  uint64_t w_tax = 0;
  TPCC_TRY(txn.ReadColumn(wl.warehouse_, w_, WarehouseCol::kTax, &w_tax));

  uint64_t next_o_id = 0;
  TPCC_TRY(txn.ReadColumn(wl.district_, wl.DistrictKey(w_, d_), DistrictCol::kNextOid,
                          &next_o_id));
  const uint64_t bumped = next_o_id + 1;
  TPCC_TRY(txn.UpdateColumn(wl.district_, wl.DistrictKey(w_, d_), DistrictCol::kNextOid,
                            &bumped));

  uint64_t balance = 0;
  TPCC_TRY(txn.ReadColumn(wl.customer_, wl.CustomerKey(w_, d_, c_), CustomerCol::kBalance,
                          &balance));

  if (rollback_) {
    // Simulated invalid-item abort (user-initiated rollback) — not retried.
    txn.Abort();
    return Status::kInvalidArgument;
  }

  order_id_ = next_o_id;
  const uint64_t line_count = lines_.size();
  std::fill(order_row_.begin(), order_row_.end(), std::byte{0});
  std::memcpy(order_row_.data(), &c_, sizeof(c_));
  std::memcpy(order_row_.data() + 8, &order_id_, sizeof(order_id_));
  std::memcpy(order_row_.data() + 24, &line_count, sizeof(line_count));
  TPCC_TRY(txn.Insert(wl.order_, wl.OrderKey(w_, d_, order_id_), order_row_.data()));

  std::fill(no_row_.begin(), no_row_.end(), std::byte{0});
  TPCC_TRY(txn.Insert(wl.new_order_, wl.OrderKey(w_, d_, order_id_), no_row_.data()));

  stage_ = lines_.empty() ? Stage::kCommit : Stage::kLine;
  return Status::kOk;
}

Status NewOrderFrame::StepLine() {
  TpccWorkload& wl = *workload_;
  Txn& txn = this->txn();
  const Line& line = lines_[line_idx_];
  uint64_t price = 0;
  TPCC_TRY(txn.ReadColumn(wl.item_, line.item, ItemCol::kPrice, &price));

  const uint64_t stock_key = wl.StockKey(line.supply_w, line.item);
  uint64_t quantity = 0;
  TPCC_TRY(txn.ReadColumn(wl.stock_, stock_key, StockCol::kQuantity, &quantity));
  const uint64_t new_quantity = quantity >= line.quantity + 10
                                    ? quantity - line.quantity
                                    : quantity + 91 - line.quantity;
  TPCC_TRY(txn.UpdateColumn(wl.stock_, stock_key, StockCol::kQuantity, &new_quantity));
  uint64_t ytd = 0;
  TPCC_TRY(txn.ReadColumn(wl.stock_, stock_key, StockCol::kYtd, &ytd));
  ytd += line.quantity;
  TPCC_TRY(txn.UpdateColumn(wl.stock_, stock_key, StockCol::kYtd, &ytd));

  std::fill(line_row_.begin(), line_row_.end(), std::byte{0});
  std::memcpy(line_row_.data(), &line.item, sizeof(uint64_t));
  std::memcpy(line_row_.data() + 8, &line.supply_w, sizeof(uint64_t));
  std::memcpy(line_row_.data() + 24, &line.quantity, sizeof(uint64_t));
  const uint64_t amount = price * line.quantity;
  std::memcpy(line_row_.data() + 32, &amount, sizeof(uint64_t));
  TPCC_TRY(txn.Insert(wl.order_line_, wl.OrderLineKey(w_, d_, order_id_, line_idx_ + 1),
                      line_row_.data()));

  if (++line_idx_ == lines_.size()) {
    stage_ = Stage::kCommit;
  }
  return Status::kOk;
}

Status NewOrderFrame::StepCommit() {
  TpccWorkload& wl = *workload_;
  Txn& txn = this->txn();
  TPCC_TRY(txn.UpdateColumn(wl.customer_, wl.CustomerKey(w_, d_, c_), CustomerCol::kLastOrder,
                            &order_id_));
  const Status s = txn.Commit();
  if (s == Status::kOk) {
    committed_ = true;
  }
  return s;
}

bool NewOrderFrame::Step(Worker& worker) {
  Status s = Status::kOk;
  switch (stage_) {
    case Stage::kHeader:
      s = StepHeader(worker);
      break;
    case Stage::kLine:
      s = StepLine();
      break;
    case Stage::kCommit:
      s = StepCommit();
      break;
  }
  if (s == Status::kOk) {
    if (committed_) {
      EndTxn();
      set_result(kNewOrder);
      return true;
    }
    return false;  // yield; siblings may run before the next stage
  }
  if (has_txn()) {
    txn().Abort();  // no-op when the engine already rolled back
    EndTxn();
  }
  if (s == Status::kAborted && ++attempts_ < kMaxAttempts) {
    // CC conflict: replay the SAME pre-generated plan from the top, exactly
    // like RunToCompletion in the serial driver.
    stage_ = Stage::kHeader;
    line_idx_ = 0;
    return false;
  }
  set_result(~kNewOrder);
  return true;
}

NewOrderFrameSource::NewOrderFrameSource(TpccWorkload* workload, Rng* rng,
                                         uint64_t txn_count, uint32_t batch_size)
    : workload_(workload), rng_(rng), remaining_(txn_count) {
  if (batch_size == 0) {
    batch_size = 1;
  }
  pool_.reserve(batch_size);
  free_.reserve(batch_size);
  for (uint32_t i = 0; i < batch_size; ++i) {
    pool_.push_back(std::make_unique<NewOrderFrame>(workload_));
    free_.push_back(pool_.back().get());
  }
}

TxnFrame* NewOrderFrameSource::Next(Worker& worker) {
  if (remaining_ == 0 || free_.empty()) {
    return nullptr;
  }
  --remaining_;
  NewOrderFrame* frame = free_.back();
  free_.pop_back();
  frame->Reset(worker, *rng_);
  return frame;
}

void NewOrderFrameSource::Done(Worker& worker, TxnFrame* frame, uint64_t begin_ns,
                               uint64_t end_ns) {
  (void)worker;
  (void)begin_ns;
  (void)end_ns;
  free_.push_back(static_cast<NewOrderFrame*>(frame));
}

uint64_t TpccWorkload::TotalNextOrderIds(Worker& worker) {
  uint64_t total = 0;
  for (uint64_t w = 1; w <= config_.warehouses; ++w) {
    for (uint64_t d = 1; d <= config_.districts_per_warehouse; ++d) {
      for (;;) {
        Txn txn = worker.Begin();
        uint64_t next_o_id = 0;
        if (txn.ReadColumn(district_, DistrictKey(w, d), DistrictCol::kNextOid, &next_o_id) ==
                Status::kOk &&
            txn.Commit() == Status::kOk) {
          total += next_o_id;
          break;
        }
      }
    }
  }
  return total;
}

}  // namespace falcon
