#include "src/obs/metrics.h"

#include <cstdlib>

namespace falcon {

namespace {

// Scalar fields, in MetricsSnapshot declaration order. The region arrays are
// appended below with one named entry per region.
#define FALCON_METRIC_FIELDS(X)            \
  X(commits, kCounter)                     \
  X(txn_aborts, kCounter)                  \
  X(reads, kCounter)                       \
  X(writes, kCounter)                      \
  X(aborts_user, kCounter)                 \
  X(aborts_lock_conflict, kCounter)        \
  X(aborts_ts_order, kCounter)             \
  X(aborts_occ_validation, kCounter)       \
  X(aborts_log_overflow, kCounter)         \
  X(aborts_other, kCounter)                \
  X(execute_ns, kCounter)                  \
  X(log_append_ns, kCounter)               \
  X(commit_flush_ns, kCounter)             \
  X(hint_flush_ns, kCounter)               \
  X(version_gc_ns, kCounter)               \
  X(sim_ns_total, kCounter)                \
  X(sim_ns_max, kCounter)                  \
  X(hot_hits, kCounter)                    \
  X(hot_misses, kCounter)                  \
  X(hot_evictions, kCounter)               \
  X(hot_inserts, kCounter)                 \
  X(hot_size, kGauge)                      \
  X(hot_capacity, kGauge)                  \
  X(log_slots_opened, kCounter)            \
  X(log_wraps, kCounter)                   \
  X(log_appends, kCounter)                 \
  X(log_append_overflows, kCounter)        \
  X(log_bytes_appended, kCounter)          \
  X(log_free_slots, kGauge)                \
  X(log_payload_high_water, kGauge)        \
  X(versions_allocated, kCounter)          \
  X(versions_recycled, kCounter)           \
  X(version_gc_runs, kCounter)             \
  X(versions_queued, kGauge)               \
  X(version_live_bytes, kGauge)            \
  X(cache_hits, kCounter)                  \
  X(cache_misses, kCounter)                \
  X(cache_dirty_evictions, kCounter)       \
  X(cache_clwb_writebacks, kCounter)       \
  X(cache_sfences, kCounter)               \
  X(device_line_writes, kCounter)          \
  X(device_media_writes, kCounter)         \
  X(device_media_reads, kCounter)          \
  X(device_full_drains, kCounter)          \
  X(device_partial_drains, kCounter)       \
  X(device_busy_ns, kCounter)

// Stable names for the expanded region arrays (indexed by MediaRegion).
const char* const kRegionLineWriteNames[kMediaRegionCount] = {
    "device_line_writes_other",        "device_line_writes_log",
    "device_line_writes_tuple_heap",   "device_line_writes_index",
    "device_line_writes_version_heap",
};
const char* const kRegionMediaWriteNames[kMediaRegionCount] = {
    "device_media_writes_other",        "device_media_writes_log",
    "device_media_writes_tuple_heap",   "device_media_writes_index",
    "device_media_writes_version_heap",
};

void StoreMetric(MetricsSnapshot* snapshot, const MetricField& field, uint64_t value) {
  std::memcpy(reinterpret_cast<char*>(snapshot) + field.offset, &value, sizeof(value));
}

}  // namespace

const std::vector<MetricField>& MetricFieldTable() {
  static const std::vector<MetricField> table = [] {
    std::vector<MetricField> t;
#define X(field, kind) \
  t.push_back({#field, offsetof(MetricsSnapshot, field), MetricKind::kind});
    FALCON_METRIC_FIELDS(X)
#undef X
    for (size_t r = 0; r < kMediaRegionCount; ++r) {
      t.push_back({kRegionLineWriteNames[r],
                   offsetof(MetricsSnapshot, device_region_line_writes) + r * sizeof(uint64_t),
                   MetricKind::kCounter});
    }
    for (size_t r = 0; r < kMediaRegionCount; ++r) {
      t.push_back({kRegionMediaWriteNames[r],
                   offsetof(MetricsSnapshot, device_region_media_writes) + r * sizeof(uint64_t),
                   MetricKind::kCounter});
    }
    return t;
  }();
  return table;
}

MetricsSnapshot DiffMetrics(const MetricsSnapshot& before, const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const MetricField& field : MetricFieldTable()) {
    const uint64_t b = MetricValue(before, field);
    const uint64_t a = MetricValue(after, field);
    if (field.kind == MetricKind::kCounter) {
      StoreMetric(&delta, field, a >= b ? a - b : 0);
    } else {
      StoreMetric(&delta, field, a);
    }
  }
  return delta;
}

std::string MetricsJsonLine(const char* label, const MetricsSnapshot& snapshot) {
  std::string out = "{\"label\":\"";
  // Labels are code-controlled identifiers; escape just enough to stay valid.
  for (const char* p = label; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') {
      out.push_back('\\');
    }
    out.push_back(*p);
  }
  out += "\",\"metrics\":{";
  bool first = true;
  char buf[32];
  for (const MetricField& field : MetricFieldTable()) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out.push_back('"');
    out += field.name;
    out += "\":";
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(MetricValue(snapshot, field)));
    out += buf;
  }
  out += "}}";
  return out;
}

void WriteMetricsJson(std::FILE* out, const char* label, const MetricsSnapshot& snapshot) {
  const std::string line = MetricsJsonLine(label, snapshot);
  std::fwrite(line.data(), 1, line.size(), out);
  std::fputc('\n', out);
}

bool AppendMetricsJson(const char* path, const char* label, const MetricsSnapshot& snapshot) {
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) {
    return false;
  }
  WriteMetricsJson(f, label, snapshot);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

void MaybeAppendMetricsJson(const char* label, const MetricsSnapshot& snapshot) {
  const char* path = std::getenv("FALCON_METRICS_JSON");
  if (path == nullptr || path[0] == '\0') {
    return;
  }
  AppendMetricsJson(path, label, snapshot);
}

}  // namespace falcon
