#include "src/obs/metrics.h"

#include <cstdlib>

namespace falcon {

namespace {

// Scalar fields, in MetricsSnapshot declaration order. The region arrays are
// appended below with one named entry per region.
#define FALCON_METRIC_FIELDS(X)            \
  X(commits, kCounter)                     \
  X(txn_aborts, kCounter)                  \
  X(reads, kCounter)                       \
  X(writes, kCounter)                      \
  X(aborts_user, kCounter)                 \
  X(aborts_lock_conflict, kCounter)        \
  X(aborts_ts_order, kCounter)             \
  X(aborts_occ_validation, kCounter)       \
  X(aborts_log_overflow, kCounter)         \
  X(aborts_other, kCounter)                \
  X(execute_ns, kCounter)                  \
  X(log_append_ns, kCounter)               \
  X(commit_flush_ns, kCounter)             \
  X(hint_flush_ns, kCounter)               \
  X(version_gc_ns, kCounter)               \
  X(sim_ns_total, kCounter)                \
  X(sim_ns_max, kCounter)                  \
  X(batch_slices, kCounter)                \
  X(batch_switches, kCounter)              \
  X(batch_stall_ns, kCounter)              \
  X(batch_hidden_stall_ns, kCounter)       \
  X(batch_idle_ns, kCounter)               \
  X(batch_inflight_ns, kCounter)           \
  X(twopc_prepares, kCounter)              \
  X(twopc_commits, kCounter)               \
  X(twopc_aborts, kCounter)                \
  X(hot_hits, kCounter)                    \
  X(hot_misses, kCounter)                  \
  X(hot_evictions, kCounter)               \
  X(hot_inserts, kCounter)                 \
  X(hot_size, kGauge)                      \
  X(hot_capacity, kGauge)                  \
  X(log_slots_opened, kCounter)            \
  X(log_wraps, kCounter)                   \
  X(log_appends, kCounter)                 \
  X(log_append_overflows, kCounter)        \
  X(log_bytes_appended, kCounter)          \
  X(log_free_slots, kGauge)                \
  X(log_payload_high_water, kGauge)        \
  X(versions_allocated, kCounter)          \
  X(versions_recycled, kCounter)           \
  X(version_gc_runs, kCounter)             \
  X(versions_queued, kGauge)               \
  X(version_live_bytes, kGauge)            \
  X(cache_hits, kCounter)                  \
  X(cache_misses, kCounter)                \
  X(cache_dirty_evictions, kCounter)       \
  X(cache_clwb_writebacks, kCounter)       \
  X(cache_sfences, kCounter)               \
  X(device_line_writes, kCounter)          \
  X(device_media_writes, kCounter)         \
  X(device_media_reads, kCounter)          \
  X(device_full_drains, kCounter)          \
  X(device_partial_drains, kCounter)       \
  X(device_busy_ns, kCounter)

// Stable names for the expanded region arrays (indexed by MediaRegion).
const char* const kRegionLineWriteNames[kMediaRegionCount] = {
    "device_line_writes_other",        "device_line_writes_log",
    "device_line_writes_tuple_heap",   "device_line_writes_index",
    "device_line_writes_version_heap",
};
const char* const kRegionMediaWriteNames[kMediaRegionCount] = {
    "device_media_writes_other",        "device_media_writes_log",
    "device_media_writes_tuple_heap",   "device_media_writes_index",
    "device_media_writes_version_heap",
};

void StoreMetric(MetricsSnapshot* snapshot, const MetricField& field, uint64_t value) {
  std::memcpy(reinterpret_cast<char*>(snapshot) + field.offset, &value, sizeof(value));
}

}  // namespace

const std::vector<MetricField>& MetricFieldTable() {
  static const std::vector<MetricField> table = [] {
    std::vector<MetricField> t;
#define X(field, kind) \
  t.push_back({#field, offsetof(MetricsSnapshot, field), MetricKind::kind});
    FALCON_METRIC_FIELDS(X)
#undef X
    for (size_t r = 0; r < kMediaRegionCount; ++r) {
      t.push_back({kRegionLineWriteNames[r],
                   offsetof(MetricsSnapshot, device_region_line_writes) + r * sizeof(uint64_t),
                   MetricKind::kCounter});
    }
    for (size_t r = 0; r < kMediaRegionCount; ++r) {
      t.push_back({kRegionMediaWriteNames[r],
                   offsetof(MetricsSnapshot, device_region_media_writes) + r * sizeof(uint64_t),
                   MetricKind::kCounter});
    }
    return t;
  }();
  return table;
}

MetricsSnapshot DiffMetrics(const MetricsSnapshot& before, const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const MetricField& field : MetricFieldTable()) {
    const uint64_t b = MetricValue(before, field);
    const uint64_t a = MetricValue(after, field);
    if (field.kind == MetricKind::kCounter) {
      StoreMetric(&delta, field, a >= b ? a - b : 0);
    } else {
      StoreMetric(&delta, field, a);
    }
  }
  return delta;
}

std::string SanitizeLabelPart(std::string_view part) {
  std::string out;
  out.reserve(part.size());
  bool pending_sep = false;
  for (const char c : part) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (ok) {
      if (pending_sep && !out.empty()) {
        out.push_back('_');
      }
      pending_sep = false;
      out.push_back(c);
    } else {
      pending_sep = true;  // collapse runs; trim via the !out.empty() guard
    }
  }
  return out;
}

std::string BenchLabel(std::string_view bench, std::string_view config, uint32_t threads) {
  std::string out = SanitizeLabelPart(bench);
  out.push_back('/');
  // Sanitize each '/'-separated subpart of the config so intentional
  // hierarchy survives while everything else is normalized.
  size_t start = 0;
  bool first = true;
  while (start <= config.size()) {
    const size_t slash = config.find('/', start);
    const size_t end = slash == std::string_view::npos ? config.size() : slash;
    const std::string part = SanitizeLabelPart(config.substr(start, end - start));
    if (!part.empty()) {
      if (!first) {
        out.push_back('/');
      }
      first = false;
      out += part;
    }
    if (slash == std::string_view::npos) {
      break;
    }
    start = slash + 1;
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "/%ut", threads);
  out += buf;
  return out;
}

namespace {

// Full JSON string escaping: quote, backslash, and all control characters.
void AppendJsonEscaped(std::string* out, const char* s) {
  for (const char* p = s; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
        break;
    }
  }
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  *out += buf;
}

}  // namespace

std::string MetricsJsonLine(const char* label, const MetricsSnapshot& snapshot,
                            const std::vector<LatencySummary>& latency) {
  std::string out = "{\"schema_version\":";
  AppendU64(&out, kMetricsSchemaVersion);
  out += ",\"label\":\"";
  AppendJsonEscaped(&out, label);
  out += "\",\"metrics\":{";
  bool first = true;
  for (const MetricField& field : MetricFieldTable()) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out.push_back('"');
    out += field.name;
    out += "\":";
    AppendU64(&out, MetricValue(snapshot, field));
  }
  out += "}";
  if (!latency.empty()) {
    out += ",\"latency\":{";
    first = true;
    for (const LatencySummary& s : latency) {
      if (!first) {
        out.push_back(',');
      }
      first = false;
      out.push_back('"');
      AppendJsonEscaped(&out, s.name.c_str());
      out += "\":{\"count\":";
      AppendU64(&out, s.count);
      out += ",\"aborts\":";
      AppendU64(&out, s.aborts);
      out += ",\"p50_ns\":";
      AppendU64(&out, s.p50_ns);
      out += ",\"p95_ns\":";
      AppendU64(&out, s.p95_ns);
      out += ",\"p99_ns\":";
      AppendU64(&out, s.p99_ns);
      out += ",\"max_ns\":";
      AppendU64(&out, s.max_ns);
      out += "}";
    }
    out += "}";
  }
  out += "}";
  return out;
}

void WriteMetricsJson(std::FILE* out, const char* label, const MetricsSnapshot& snapshot,
                      const std::vector<LatencySummary>& latency) {
  const std::string line = MetricsJsonLine(label, snapshot, latency);
  std::fwrite(line.data(), 1, line.size(), out);
  std::fputc('\n', out);
}

bool AppendMetricsJson(const char* path, const char* label, const MetricsSnapshot& snapshot,
                       const std::vector<LatencySummary>& latency) {
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) {
    return false;
  }
  WriteMetricsJson(f, label, snapshot, latency);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

void MaybeAppendMetricsJson(const char* label, const MetricsSnapshot& snapshot,
                            const std::vector<LatencySummary>& latency) {
  const char* path = std::getenv("FALCON_METRICS_JSON");
  if (path == nullptr || path[0] == '\0') {
    return;
  }
  AppendMetricsJson(path, label, snapshot, latency);
}

}  // namespace falcon
