#include "src/obs/trace.h"

#include <cinttypes>
#include <cstdlib>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/sim/nvm_device.h"

namespace falcon {

namespace {

// Mirrors CrashStepKindName in src/core/engine.h (obs cannot include core;
// keep the two tables in sync).
const char* CrashKindName(uint64_t kind) {
  static const char* const kNames[] = {"none",        "log_append", "index_install",
                                       "commit_mark", "tuple_apply", "flush",
                                       "slot_release"};
  return kind < sizeof(kNames) / sizeof(kNames[0]) ? kNames[kind] : "?";
}

const char* RegionName(uint64_t region) {
  return region < kMediaRegionCount
             ? MediaRegionName(static_cast<MediaRegion>(region))
             : "?";
}

const char* PhaseName(uint64_t phase) {
  return phase < kSimPhaseCount ? SimPhaseName(static_cast<SimPhase>(phase)) : "?";
}

const char* ReasonName(uint64_t reason) {
  return reason < kAbortReasonCount ? AbortReasonName(static_cast<AbortReason>(reason))
                                    : "?";
}

double ToUs(uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

}  // namespace

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kNone: return "none";
    case TraceEventKind::kTxnBegin: return "txn_begin";
    case TraceEventKind::kTxnCommit: return "txn_commit";
    case TraceEventKind::kTxnAbort: return "txn_abort";
    case TraceEventKind::kPhaseEnd: return "phase";
    case TraceEventKind::kReadStall: return "read_stall";
    case TraceEventKind::kFlushStall: return "flush_stall";
    case TraceEventKind::kLockAcquire: return "lock_acquire";
    case TraceEventKind::kLockConflict: return "lock_conflict";
    case TraceEventKind::kTsConflict: return "ts_conflict";
    case TraceEventKind::kOccConflict: return "occ_conflict";
    case TraceEventKind::kLogWrap: return "log_wrap";
    case TraceEventKind::kLogOverflow: return "log_overflow";
    case TraceEventKind::kCacheFlush: return "cache_flush";
    case TraceEventKind::kCrashFired: return "crash_fired";
    case TraceEventKind::kFrameSwitch: return "frame_switch";
    case TraceEventKind::kFrameResume: return "frame_resume";
  }
  return "?";
}

bool Tracer::EnabledByEnv() {
  const char* v = std::getenv("FALCON_TRACE");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

size_t Tracer::CapacityFromEnv() {
  const char* v = std::getenv("FALCON_TRACE_EVENTS");
  if (v == nullptr || v[0] == '\0') {
    return kDefaultCapacity;
  }
  const unsigned long long parsed = std::strtoull(v, nullptr, 10);
  return parsed == 0 ? kDefaultCapacity : static_cast<size_t>(parsed);
}

void Tracer::Enable(uint32_t threads, size_t capacity_per_thread) {
  if (rings_.size() == threads) {
    return;
  }
  if (capacity_per_thread == 0) {
    capacity_per_thread = CapacityFromEnv();
  }
  rings_.clear();
  rings_.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) {
    rings_.push_back(std::make_unique<TraceRing>(t, capacity_per_thread));
  }
}

void Tracer::DumpPerfetto(std::FILE* out) const {
  std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", out);
  bool first = true;
  auto sep = [&] {
    if (!first) {
      std::fputc(',', out);
    }
    first = false;
  };
  std::vector<TraceEvent> events;
  for (const auto& ring : rings_) {
    sep();
    std::fprintf(out,
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%u,"
                 "\"args\":{\"name\":\"worker-%u\"}}",
                 ring->thread(), ring->thread());
    ring->Snapshot(&events);
    for (const TraceEvent& e : events) {
      const auto kind = static_cast<TraceEventKind>(e.kind);
      sep();
      switch (kind) {
        case TraceEventKind::kTxnCommit:
          std::fprintf(out,
                       "{\"name\":\"txn\",\"cat\":\"txn\",\"ph\":\"X\",\"ts\":%.3f,"
                       "\"dur\":%.3f,\"pid\":0,\"tid\":%u,\"args\":{\"txn\":%" PRIu64 "}}",
                       ToUs(e.a), ToUs(e.ts - e.a), e.thread, e.txn);
          break;
        case TraceEventKind::kTxnAbort:
          std::fprintf(out,
                       "{\"name\":\"txn_abort\",\"cat\":\"txn\",\"ph\":\"X\",\"ts\":%.3f,"
                       "\"dur\":%.3f,\"pid\":0,\"tid\":%u,\"args\":{\"txn\":%" PRIu64
                       ",\"reason\":\"%s\"}}",
                       ToUs(e.a), ToUs(e.ts - e.a), e.thread, e.txn, ReasonName(e.b));
          break;
        case TraceEventKind::kPhaseEnd:
          std::fprintf(out,
                       "{\"name\":\"%s\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":%.3f,"
                       "\"dur\":%.3f,\"pid\":0,\"tid\":%u,\"args\":{\"txn\":%" PRIu64 "}}",
                       PhaseName(e.a), ToUs(e.b), ToUs(e.ts - e.b), e.thread, e.txn);
          break;
        case TraceEventKind::kReadStall:
        case TraceEventKind::kFlushStall:
          std::fprintf(out,
                       "{\"name\":\"%s\",\"cat\":\"stall\",\"ph\":\"i\",\"s\":\"t\","
                       "\"ts\":%.3f,\"pid\":0,\"tid\":%u,\"args\":{\"txn\":%" PRIu64
                       ",\"region\":\"%s\",\"ns\":%" PRIu64 "}}",
                       TraceEventKindName(kind), ToUs(e.ts), e.thread, e.txn,
                       RegionName(e.a), e.b);
          break;
        case TraceEventKind::kCrashFired:
          std::fprintf(out,
                       "{\"name\":\"crash_fired\",\"cat\":\"crash\",\"ph\":\"i\","
                       "\"s\":\"g\",\"ts\":%.3f,\"pid\":0,\"tid\":%u,"
                       "\"args\":{\"txn\":%" PRIu64 ",\"kind\":\"%s\",\"step\":%" PRIu64
                       "}}",
                       ToUs(e.ts), e.thread, e.txn, CrashKindName(e.a), e.b);
          break;
        case TraceEventKind::kTxnBegin:
          std::fprintf(out,
                       "{\"name\":\"txn_begin\",\"cat\":\"txn\",\"ph\":\"i\",\"s\":\"t\","
                       "\"ts\":%.3f,\"pid\":0,\"tid\":%u,\"args\":{\"txn\":%" PRIu64
                       ",\"read_only\":%" PRIu64 "}}",
                       ToUs(e.ts), e.thread, e.txn, e.a);
          break;
        default:
          std::fprintf(out,
                       "{\"name\":\"%s\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\","
                       "\"ts\":%.3f,\"pid\":0,\"tid\":%u,\"args\":{\"txn\":%" PRIu64
                       ",\"a\":%" PRIu64 ",\"b\":%" PRIu64 "}}",
                       TraceEventKindName(kind), ToUs(e.ts), e.thread, e.txn, e.a, e.b);
          break;
      }
    }
  }
  std::fputs("]}\n", out);
}

bool Tracer::DumpPerfettoFile(const char* path) const {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    return false;
  }
  DumpPerfetto(out);
  const bool ok = std::ferror(out) == 0;
  std::fclose(out);
  return ok;
}

void Tracer::DumpFlightRecorder(std::FILE* out, size_t last_n) const {
  std::vector<TraceEvent> events;
  for (const auto& ring : rings_) {
    ring->Snapshot(&events, last_n);
    std::fprintf(out, "== thread %u: %zu events shown (emitted %" PRIu64
                      ", dropped %" PRIu64 ") ==\n",
                 ring->thread(), events.size(), ring->total(), ring->dropped());
    for (const TraceEvent& e : events) {
      const auto kind = static_cast<TraceEventKind>(e.kind);
      std::fprintf(out, "  [%12" PRIu64 " ns] txn=%-8" PRIu64 " %-13s ", e.ts, e.txn,
                   TraceEventKindName(kind));
      switch (kind) {
        case TraceEventKind::kTxnBegin:
          std::fprintf(out, "read_only=%" PRIu64, e.a);
          break;
        case TraceEventKind::kTxnCommit:
        case TraceEventKind::kTxnAbort:
          std::fprintf(out, "begin=%" PRIu64 " dur=%" PRIu64 " ns", e.a, e.ts - e.a);
          if (kind == TraceEventKind::kTxnAbort) {
            std::fprintf(out, " reason=%s", ReasonName(e.b));
          }
          break;
        case TraceEventKind::kPhaseEnd:
          std::fprintf(out, "%s dur=%" PRIu64 " ns", PhaseName(e.a), e.ts - e.b);
          break;
        case TraceEventKind::kReadStall:
        case TraceEventKind::kFlushStall:
          std::fprintf(out, "region=%s cost=%" PRIu64 " ns", RegionName(e.a), e.b);
          break;
        case TraceEventKind::kLockAcquire:
          std::fprintf(out, "tuple=0x%" PRIx64 " %s", e.a, e.b != 0 ? "write" : "read");
          break;
        case TraceEventKind::kLockConflict:
        case TraceEventKind::kTsConflict:
        case TraceEventKind::kOccConflict:
          std::fprintf(out, "tuple=0x%" PRIx64 " holder=0x%" PRIx64, e.a, e.b);
          break;
        case TraceEventKind::kLogWrap:
          std::fprintf(out, "wrap=%" PRIu64 " slots=%" PRIu64, e.a, e.b);
          break;
        case TraceEventKind::kLogOverflow:
          std::fprintf(out, "need=%" PRIu64 " B capacity=%" PRIu64 " B", e.a, e.b);
          break;
        case TraceEventKind::kCacheFlush:
          std::fprintf(out, "lines=%" PRIu64 " cost=%" PRIu64 " ns", e.a, e.b);
          break;
        case TraceEventKind::kCrashFired:
          std::fprintf(out, "kind=%s step=%" PRIu64, CrashKindName(e.a), e.b);
          break;
        case TraceEventKind::kFrameSwitch:
          std::fprintf(out, "slot %" PRIu64 " -> %" PRIu64, e.a, e.b);
          break;
        case TraceEventKind::kFrameResume:
          std::fprintf(out, "slot=%" PRIu64 " slice=%" PRIu64, e.a, e.b);
          break;
        default:
          std::fprintf(out, "a=%" PRIu64 " b=%" PRIu64, e.a, e.b);
          break;
      }
      std::fputc('\n', out);
    }
  }
}

bool Tracer::DumpFlightRecorderFile(const char* path, size_t last_n) const {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    return false;
  }
  DumpFlightRecorder(out, last_n);
  const bool ok = std::ferror(out) == 0;
  std::fclose(out);
  return ok;
}

bool MaybeDumpPerfetto(const Tracer& tracer, const char* fallback_path) {
  if (!tracer.enabled()) {
    return false;
  }
  const char* path = std::getenv("FALCON_TRACE_OUT");
  if (path == nullptr || path[0] == '\0') {
    path = fallback_path;
  }
  if (!tracer.DumpPerfettoFile(path)) {
    std::fprintf(stderr, "trace: failed to write %s\n", path);
    return false;
  }
  std::fprintf(stderr, "trace: wrote %s (open in ui.perfetto.dev)\n", path);
  return true;
}

}  // namespace falcon
