// Per-transaction flight recorder: an allocation-free, per-thread binary
// trace of engine events on the simulated clock.
//
// Design:
//  - One TraceRing per worker thread, single writer, fixed capacity
//    (power of two, allocated once at enable time). Emit() is a handful of
//    plain stores plus one release store of the head index; it charges ZERO
//    simulated time and touches no modeled memory, so enabling tracing never
//    changes device totals or simulated throughput — only wall clock.
//  - Disabled mode is a null TraceRing pointer at every instrumentation
//    site: one predictable branch on the hot path, nothing else. Defining
//    FALCON_TRACE_COMPILED_OUT compiles even that branch down to a constant.
//  - Runtime enable: setting FALCON_TRACE=1 in the environment makes every
//    Engine construct its rings (FALCON_TRACE_EVENTS overrides the per-
//    thread capacity). Tests and the crash-sweep harness call
//    Engine::EnableTracing() directly.
//  - Readers (exporters) run after the writer quiesced (threads joined).
//    The head index is release/acquire so a post-join Snapshot() is exact;
//    concurrent snapshots of a live ring are not supported.
//
// Exporters:
//  - Tracer::DumpPerfetto writes Chrome trace_event JSON that loads directly
//    in ui.perfetto.dev (txns and phases as duration spans, stalls and
//    conflicts as instants).
//  - Tracer::DumpFlightRecorder writes the last N events of every thread as
//    a readable text timeline — the crash-sweep harness dumps one whenever
//    the shadow-table oracle fails.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <type_traits>
#include <vector>

namespace falcon {

#if defined(FALCON_TRACE_COMPILED_OUT)
inline constexpr bool kTraceCompiled = false;
#else
inline constexpr bool kTraceCompiled = true;
#endif

// Event taxonomy. The two payload words `a` and `b` are kind-specific.
enum class TraceEventKind : uint32_t {
  kNone = 0,
  kTxnBegin,      // a = 1 when read-only
  kTxnCommit,     // a = begin sim_ns (the commit event closes the txn span)
  kTxnAbort,      // a = begin sim_ns, b = AbortReason
  kPhaseEnd,      // a = SimPhase, b = start sim_ns (mirrors PhaseTimer)
  kReadStall,     // a = MediaRegion, b = charged ns (load cost >= a miss)
  kFlushStall,    // a = MediaRegion, b = charged ns (clwb writeback)
  kLockAcquire,   // a = tuple PmOffset, b = 1 write / 0 read
  kLockConflict,  // a = tuple PmOffset, b = holder's CC word (wounding side);
                  //     event's txn field is the wounded transaction
  kTsConflict,    // a = tuple PmOffset, b = conflicting timestamp
  kOccConflict,   // a = tuple PmOffset, b = observed timestamp at validation
  kLogWrap,       // a = wrap ordinal, b = slot count
  kLogOverflow,   // a = bytes needed, b = slot payload capacity
  kCacheFlush,    // a = lines written back (SemanticCache), b = charged ns
  kCrashFired,    // a = CrashStepKind, b = 1-based step ordinal
  kFrameSwitch,   // a = from slot, b = to slot (batched execution)
  kFrameResume,   // a = slot resumed, b = slices this frame has run
};
inline constexpr size_t kTraceEventKindCount = 17;

const char* TraceEventKindName(TraceEventKind kind);

// Fixed-size POD record; 40 bytes so a 64Ki-event ring is 2.5MB per thread.
struct TraceEvent {
  uint64_t ts = 0;    // simulated ns at emission
  uint64_t txn = 0;   // tid of the transaction open on the thread (0 = none)
  uint64_t a = 0;
  uint64_t b = 0;
  uint32_t thread = 0;
  uint32_t kind = 0;  // TraceEventKind
};
static_assert(std::is_trivially_copyable_v<TraceEvent>);
static_assert(sizeof(TraceEvent) == 40);

// Single-writer ring buffer of TraceEvents. The owning worker thread emits;
// anyone may Snapshot() after the writer has quiesced (e.g. joined).
class TraceRing {
 public:
  TraceRing(uint32_t thread, size_t capacity) : thread_(thread) {
    size_t cap = 1;
    while (cap < capacity) {
      cap <<= 1;
    }
    events_.resize(cap);
    mask_ = cap - 1;
  }

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  // Records one event. Never allocates, never blocks, charges no simulated
  // time. Oldest events are overwritten once the ring is full.
  void Emit(TraceEventKind kind, uint64_t ts, uint64_t a = 0, uint64_t b = 0) {
    if (!kTraceCompiled) {
      return;
    }
    const uint64_t head = head_.load(std::memory_order_relaxed);
    TraceEvent& e = events_[head & mask_];
    e.ts = ts;
    e.txn = current_txn_;
    e.a = a;
    e.b = b;
    e.thread = thread_;
    e.kind = static_cast<uint32_t>(kind);
    head_.store(head + 1, std::memory_order_release);
  }

  // The transaction id subsequent events are attributed to. Set by the Txn
  // constructor and cleared on commit/abort, so deep emitters (ThreadContext,
  // LogWindow) need no transaction plumbing.
  void set_current_txn(uint64_t tid) { current_txn_ = tid; }
  uint64_t current_txn() const { return current_txn_; }

  // Discards all retained events (measured-window reset: benchmark runners
  // clear the rings after warmup so dumps contain no load-phase events).
  // Only valid while the owning thread is quiesced.
  void Clear() {
    head_.store(0, std::memory_order_release);
    current_txn_ = 0;
  }

  uint32_t thread() const { return thread_; }
  size_t capacity() const { return events_.size(); }
  // Events emitted over the ring's lifetime (>= capacity means wrapped).
  uint64_t total() const { return head_.load(std::memory_order_acquire); }
  uint64_t dropped() const {
    const uint64_t t = total();
    return t > events_.size() ? t - events_.size() : 0;
  }

  // Copies the last min(last_n, total, capacity) events in chronological
  // order (last_n == 0 means "all retained"). Only valid once the writer
  // has quiesced.
  void Snapshot(std::vector<TraceEvent>* out, size_t last_n = 0) const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    uint64_t n = std::min<uint64_t>(head, events_.size());
    if (last_n != 0) {
      n = std::min<uint64_t>(n, last_n);
    }
    out->clear();
    out->reserve(n);
    for (uint64_t i = head - n; i != head; ++i) {
      out->push_back(events_[i & mask_]);
    }
  }

 private:
  uint32_t thread_;
  uint64_t current_txn_ = 0;
  size_t mask_ = 0;
  std::atomic<uint64_t> head_{0};
  std::vector<TraceEvent> events_;
};

// Owns one ring per worker thread and the exporters.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 64 * 1024;  // events per thread

  // True when FALCON_TRACE is set to anything but "" or "0".
  static bool EnabledByEnv();
  // FALCON_TRACE_EVENTS (events per thread) or kDefaultCapacity.
  static size_t CapacityFromEnv();

  // Allocates one ring per thread. capacity_per_thread == 0 reads the
  // environment. Idempotent for a matching thread count.
  void Enable(uint32_t threads, size_t capacity_per_thread = 0);

  bool enabled() const { return !rings_.empty(); }
  uint32_t thread_count() const { return static_cast<uint32_t>(rings_.size()); }

  // Clears every ring (see TraceRing::Clear). All writers must be quiesced.
  void ClearAll() {
    for (auto& ring : rings_) {
      ring->Clear();
    }
  }
  TraceRing* ring(uint32_t thread) { return rings_[thread].get(); }
  const TraceRing* ring(uint32_t thread) const { return rings_[thread].get(); }

  // Chrome/Perfetto trace_event JSON ({"traceEvents":[...]}); open the file
  // in ui.perfetto.dev or chrome://tracing.
  void DumpPerfetto(std::FILE* out) const;
  bool DumpPerfettoFile(const char* path) const;

  // Readable per-thread timeline of the last `last_n` events of every
  // thread (0 = everything retained).
  void DumpFlightRecorder(std::FILE* out, size_t last_n = 0) const;
  bool DumpFlightRecorderFile(const char* path, size_t last_n = 0) const;

 private:
  std::vector<std::unique_ptr<TraceRing>> rings_;
};

// Bench hook: when `tracer` is enabled, writes Perfetto JSON to
// $FALCON_TRACE_OUT (or `fallback_path` when unset) and prints the path.
// Returns true when a file was written.
bool MaybeDumpPerfetto(const Tracer& tracer, const char* fallback_path);

}  // namespace falcon

#endif  // SRC_OBS_TRACE_H_
