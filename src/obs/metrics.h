// Engine-wide observability layer: per-thread, allocation-free counters with
// a snapshot / diff API and a uniform JSON export.
//
// Design:
//  - Counters are bumped at the source as plain uint64 fields owned by one
//    thread (WorkerStats, LogWindow, HotTupleSet, VersionHeap) or as
//    single-writer relaxed atomics (DeviceCounterBlock), so the transaction
//    hot path never allocates and never touches a shared counter line.
//  - MetricsSnapshot is a flat, standard-layout struct of uint64 values. A
//    single static field table (name, offset, kind) drives iteration,
//    diffing, and JSON serialization, so adding a counter is one struct
//    field plus one table line.
//  - Diff semantics: kCounter fields subtract (saturating at zero, so a
//    mid-window reset cannot produce absurd values); kGauge fields report
//    the "after" value (sizes, capacities, high-water marks).
//
// Benchmarks measure a window as
//   before = engine.SnapshotMetrics();  ...run...;
//   window = DiffMetrics(before, engine.SnapshotMetrics());
// and export it with WriteMetricsJson / MaybeAppendMetricsJson (the latter
// appends one JSON line to $FALCON_METRICS_JSON when that variable is set,
// giving every bench_* binary and example the same machine-readable dump).

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/histogram.h"
#include "src/obs/trace.h"
#include "src/sim/cache_model.h"
#include "src/sim/nvm_device.h"

namespace falcon {

// Why a transaction aborted (counted once per Txn::Abort, at the source).
enum class AbortReason : uint8_t {
  kUser = 0,        // explicit Txn::Abort() by the application
  kLockConflict,    // no-wait lock acquisition failed (2PL/TO lock, OCC
                    // execution-time read of a locked word)
  kTsOrder,         // TO timestamp-order violation (read/write from the past)
  kOccValidation,   // OCC commit-phase validation failed (write lock, write
                    // version check, or read-set re-validation)
  kLogOverflow,     // write set outgrew the log-window slot (§5.5 ①)
  kOther,           // allocation failure, superseded head, retry exhaustion
};
inline constexpr size_t kAbortReasonCount = 6;

inline const char* AbortReasonName(AbortReason reason) {
  switch (reason) {
    case AbortReason::kUser: return "user";
    case AbortReason::kLockConflict: return "lock_conflict";
    case AbortReason::kTsOrder: return "ts_order";
    case AbortReason::kOccValidation: return "occ_validation";
    case AbortReason::kLogOverflow: return "log_overflow";
    case AbortReason::kOther: return "other";
  }
  return "?";
}

// Where simulated time goes. kExecute is derived at snapshot time as the
// worker clock minus the instrumented phases; the others are measured with
// PhaseTimer scopes on the commit path.
enum class SimPhase : uint8_t {
  kExecute = 0,
  kLogAppend,     // OpenSlot + Append (redo buffering)
  kCommitFlush,   // MarkCommitted + slot Release (commit durability)
  kHintFlush,     // hinted clwb of touched tuples (D2)
  kVersionGc,     // old-version recycling
};
inline constexpr size_t kSimPhaseCount = 5;

inline const char* SimPhaseName(SimPhase phase) {
  switch (phase) {
    case SimPhase::kExecute: return "execute";
    case SimPhase::kLogAppend: return "log_append";
    case SimPhase::kCommitFlush: return "commit_flush";
    case SimPhase::kHintFlush: return "hint_flush";
    case SimPhase::kVersionGc: return "version_gc";
  }
  return "?";
}

// Per-worker counters, owned and written by exactly one thread. Bumps are
// plain increments on thread-private memory — the hot path stays
// allocation-free and share-free.
struct WorkerStats {
  uint64_t commits = 0;
  // One per Txn::Abort call, including aborts inside workload-level retry
  // loops. Benchmark runners additionally count attempt_aborts (failed
  // run_txn attempts); the two differ whenever workloads retry internally.
  uint64_t txn_aborts = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t aborts_by_reason[kAbortReasonCount] = {};
  // Simulated ns by phase; [kExecute] is filled in at snapshot time.
  uint64_t phase_ns[kSimPhaseCount] = {};
  // Batched execution (Worker::RunBatch); all zero on the serial path.
  uint64_t batch_slices = 0;       // frame steps accounted on the BatchClock
  uint64_t batch_switches = 0;     // steps that resumed a different frame
  uint64_t batch_stall_ns = 0;     // stall time charged (hidden or not)
  uint64_t batch_hidden_stall_ns = 0;  // stall overlapped by sibling compute
  uint64_t batch_idle_ns = 0;      // stall time no sibling could cover
  uint64_t batch_inflight_ns = 0;  // ∫ active-frames dt (occupancy weight)
  // Two-phase commit participation (cross-shard transactions through the
  // Database facade, src/db); all zero for single-shard workloads.
  uint64_t twopc_prepares = 0;  // Prepare2pc durably marked a slot PREPARED
  uint64_t twopc_commits = 0;   // prepared branches that committed
  uint64_t twopc_aborts = 0;    // prepared branches rolled back
};

// Accumulates the simulated-time delta of its scope into a phase counter.
// With a trace ring the scope is additionally emitted as a kPhaseEnd event,
// so Perfetto timelines mirror the phase breakdown exactly.
class PhaseTimer {
 public:
  PhaseTimer(const uint64_t& clock, uint64_t* acc) : clock_(clock), acc_(acc), start_(clock) {}
  PhaseTimer(const uint64_t& clock, uint64_t* acc, TraceRing* trace, SimPhase phase)
      : clock_(clock), acc_(acc), start_(clock), trace_(trace), phase_(phase) {}
  ~PhaseTimer() {
    *acc_ += clock_ - start_;
    if (trace_ != nullptr) {
      trace_->Emit(TraceEventKind::kPhaseEnd, clock_, static_cast<uint64_t>(phase_), start_);
    }
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  const uint64_t& clock_;
  uint64_t* acc_;
  uint64_t start_;
  TraceRing* trace_ = nullptr;
  SimPhase phase_ = SimPhase::kExecute;
};

// One engine-wide snapshot: worker counters summed across workers, plus
// component and device totals. Flat uint64 fields only — the field table
// below indexes into it by offset.
struct MetricsSnapshot {
  // Worker aggregate.
  uint64_t commits = 0;
  uint64_t txn_aborts = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t aborts_user = 0;
  uint64_t aborts_lock_conflict = 0;
  uint64_t aborts_ts_order = 0;
  uint64_t aborts_occ_validation = 0;
  uint64_t aborts_log_overflow = 0;
  uint64_t aborts_other = 0;

  // Simulated-time breakdown, summed over workers.
  uint64_t execute_ns = 0;
  uint64_t log_append_ns = 0;
  uint64_t commit_flush_ns = 0;
  uint64_t hint_flush_ns = 0;
  uint64_t version_gc_ns = 0;
  uint64_t sim_ns_total = 0;  // sum of worker clocks
  uint64_t sim_ns_max = 0;    // slowest worker clock (drives sim_seconds)

  // Batched execution (Worker::RunBatch), summed over workers. Zero unless
  // a batch ran; hidden_stall accounts for the batch-vs-serial speedup.
  uint64_t batch_slices = 0;
  uint64_t batch_switches = 0;
  uint64_t batch_stall_ns = 0;
  uint64_t batch_hidden_stall_ns = 0;
  uint64_t batch_idle_ns = 0;
  uint64_t batch_inflight_ns = 0;

  // Two-phase commit (Database facade, src/db), summed over workers.
  uint64_t twopc_prepares = 0;
  uint64_t twopc_commits = 0;
  uint64_t twopc_aborts = 0;

  // Hot tuple tracking (D2), summed over workers.
  uint64_t hot_hits = 0;
  uint64_t hot_misses = 0;
  uint64_t hot_evictions = 0;
  uint64_t hot_inserts = 0;
  uint64_t hot_size = 0;      // gauge
  uint64_t hot_capacity = 0;  // gauge

  // Log windows (D1), summed over workers.
  uint64_t log_slots_opened = 0;
  uint64_t log_wraps = 0;  // cursor wrapped back to slot 0
  uint64_t log_appends = 0;
  uint64_t log_append_overflows = 0;
  uint64_t log_bytes_appended = 0;
  uint64_t log_free_slots = 0;           // gauge: current occupancy complement
  uint64_t log_payload_high_water = 0;   // gauge: max payload bytes in a slot

  // Version heaps (MVCC), summed over workers.
  uint64_t versions_allocated = 0;
  uint64_t versions_recycled = 0;
  uint64_t version_gc_runs = 0;
  uint64_t versions_queued = 0;      // gauge
  uint64_t version_live_bytes = 0;   // gauge

  // CPU cache models, summed over workers.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_dirty_evictions = 0;
  uint64_t cache_clwb_writebacks = 0;
  uint64_t cache_sfences = 0;

  // Device totals (all threads + retired blocks).
  uint64_t device_line_writes = 0;
  uint64_t device_media_writes = 0;
  uint64_t device_media_reads = 0;
  uint64_t device_full_drains = 0;
  uint64_t device_partial_drains = 0;
  uint64_t device_busy_ns = 0;
  // Source-attributed traffic, indexed by MediaRegion. The D1 invariant is
  // device_region_media_writes[kRegionLog] == 0 for eADR small-window logs.
  uint64_t device_region_line_writes[kMediaRegionCount] = {};
  uint64_t device_region_media_writes[kMediaRegionCount] = {};
};

enum class MetricKind : uint8_t {
  kCounter,  // monotone; diff subtracts
  kGauge,    // instantaneous; diff keeps the "after" value
};

struct MetricField {
  const char* name;
  size_t offset;  // byte offset of the uint64 within MetricsSnapshot
  MetricKind kind;
};

// The full field inventory, in declaration order (region arrays expanded to
// one named field per region).
const std::vector<MetricField>& MetricFieldTable();

inline uint64_t MetricValue(const MetricsSnapshot& snapshot, const MetricField& field) {
  uint64_t v;
  std::memcpy(&v, reinterpret_cast<const char*>(&snapshot) + field.offset, sizeof(v));
  return v;
}

// Window delta: counters subtract (saturating), gauges take `after`.
MetricsSnapshot DiffMetrics(const MetricsSnapshot& before, const MetricsSnapshot& after);

// Percentile summary of one latency histogram (per txn type, or "all").
// `aborts` counts failed attempts of the same type — latencies are recorded
// for committed attempts only, so the abort count rides alongside rather
// than inside the histogram.
struct LatencySummary {
  std::string name;
  uint64_t count = 0;
  uint64_t aborts = 0;
  uint64_t p50_ns = 0;
  uint64_t p95_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t max_ns = 0;
};

inline LatencySummary SummarizeHistogram(std::string name, const Histogram& hist) {
  LatencySummary s;
  s.name = std::move(name);
  s.count = hist.count();
  if (s.count > 0) {
    s.p50_ns = hist.Percentile(50);
    s.p95_ns = hist.Percentile(95);
    s.p99_ns = hist.Percentile(99);
    s.max_ns = hist.max();
  }
  return s;
}

// Bumped whenever the metrics JSON shape changes. v2 added schema_version
// itself, full label escaping, and the optional "latency" section. v3 added
// the batch_* metrics, the per-type "aborts" count in "latency", and the
// twopc_* counters (new fields only — still v3; tools/metrics_compare.py
// flags one-sided fields instead of silently skipping them).
inline constexpr int kMetricsSchemaVersion = 3;

// Normalizes one path segment of a metrics label: every character outside
// [A-Za-z0-9._-] becomes '_', runs collapse, edges are trimmed. Keeps
// human-chosen names (engine labels with spaces/parens) machine-friendly.
std::string SanitizeLabelPart(std::string_view part);

// The uniform bench label: "<bench>/<config>/<threads>t", each part
// sanitized. `config` may itself contain '/'-separated subparts.
std::string BenchLabel(std::string_view bench, std::string_view config, uint32_t threads);

// One JSON object on a single line:
//   {"schema_version":2,"label":...,"metrics":{...}[,"latency":{...}]}
// The label is fully escaped (quotes, backslashes, control characters).
std::string MetricsJsonLine(const char* label, const MetricsSnapshot& snapshot,
                            const std::vector<LatencySummary>& latency = {});
void WriteMetricsJson(std::FILE* out, const char* label, const MetricsSnapshot& snapshot,
                      const std::vector<LatencySummary>& latency = {});

// Appends one JSON line to `path`; returns false on I/O failure.
bool AppendMetricsJson(const char* path, const char* label, const MetricsSnapshot& snapshot,
                       const std::vector<LatencySummary>& latency = {});

// Uniform bench/example hook: appends to $FALCON_METRICS_JSON when set.
void MaybeAppendMetricsJson(const char* label, const MetricsSnapshot& snapshot,
                            const std::vector<LatencySummary>& latency = {});

}  // namespace falcon

#endif  // SRC_OBS_METRICS_H_
