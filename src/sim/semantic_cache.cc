#include "src/sim/semantic_cache.h"

#include <algorithm>

namespace falcon {

namespace {

uintptr_t LineBase(uintptr_t addr) { return addr & ~(kCacheLineSize - 1); }

}  // namespace

SemanticCache::LineBuf& SemanticCache::GetOrFill(uintptr_t line_addr) {
  auto it = lines_.find(line_addr);
  if (it != lines_.end()) {
    lru_.erase(it->second.lru_pos);
    lru_.push_front(line_addr);
    it->second.lru_pos = lru_.begin();
    return it->second;
  }
  EvictIfNeeded();
  LineBuf& buf = lines_[line_addr];
  std::memcpy(buf.data.data(), reinterpret_cast<const void*>(line_addr), kCacheLineSize);
  lru_.push_front(line_addr);
  buf.lru_pos = lru_.begin();
  return buf;
}

void SemanticCache::WritebackAndErase(uintptr_t line_addr) {
  auto it = lines_.find(line_addr);
  if (it == lines_.end()) {
    return;
  }
  std::memcpy(reinterpret_cast<void*>(line_addr), it->second.data.data(), kCacheLineSize);
  lru_.erase(it->second.lru_pos);
  lines_.erase(it);
}

void SemanticCache::EvictIfNeeded() {
  while (lines_.size() >= max_lines_) {
    // Hardware eviction persists the line in both ADR and eADR modes — the
    // danger on ADR is only the lines that have NOT yet been evicted.
    WritebackAndErase(lru_.back());
  }
}

void SemanticCache::Store(void* dst, const void* src, size_t len) {
  auto dst_addr = reinterpret_cast<uintptr_t>(dst);
  const auto* src_bytes = static_cast<const std::byte*>(src);
  size_t done = 0;
  while (done < len) {
    const uintptr_t line = LineBase(dst_addr + done);
    const size_t offset = (dst_addr + done) - line;
    const size_t chunk = std::min(kCacheLineSize - offset, len - done);
    LineBuf& buf = GetOrFill(line);
    std::memcpy(buf.data.data() + offset, src_bytes + done, chunk);
    done += chunk;
  }
}

void SemanticCache::Load(void* dst, const void* src, size_t len) {
  auto src_addr = reinterpret_cast<uintptr_t>(src);
  auto* dst_bytes = static_cast<std::byte*>(dst);
  size_t done = 0;
  while (done < len) {
    const uintptr_t line = LineBase(src_addr + done);
    const size_t offset = (src_addr + done) - line;
    const size_t chunk = std::min(kCacheLineSize - offset, len - done);
    auto it = lines_.find(line);
    if (it != lines_.end()) {
      std::memcpy(dst_bytes + done, it->second.data.data() + offset, chunk);
    } else {
      std::memcpy(dst_bytes + done, reinterpret_cast<const void*>(line + offset), chunk);
    }
    done += chunk;
  }
}

void SemanticCache::EmitFlush(size_t lines_written) {
  if (trace_ != nullptr && lines_written > 0) {
    trace_->Emit(TraceEventKind::kCacheFlush, ++trace_seq_, lines_written, 0);
  }
}

void SemanticCache::Clwb(void* addr, size_t len) {
  const auto base = reinterpret_cast<uintptr_t>(addr);
  const uintptr_t first = LineBase(base);
  const uintptr_t last = LineBase(base + (len == 0 ? 0 : len - 1));
  size_t written = 0;
  for (uintptr_t line = first; line <= last; line += kCacheLineSize) {
    written += lines_.count(line);
    WritebackAndErase(line);
  }
  EmitFlush(written);
}

bool SemanticCache::IsDirty(const void* addr) const {
  return lines_.count(LineBase(reinterpret_cast<uintptr_t>(addr))) != 0;
}

void SemanticCache::ForEachDirtyLine(const std::function<void(uintptr_t)>& fn) const {
  for (const uintptr_t line : lru_) {
    fn(line);
  }
}

void SemanticCache::CrashAdr() {
  // Dirty cached data never reached the persistence domain: it is lost.
  lines_.clear();
  lru_.clear();
}

void SemanticCache::CrashEadr() {
  // The eADR flush domain includes the cache: hardware writes everything
  // back on power failure.
  const size_t written = lines_.size();
  while (!lru_.empty()) {
    WritebackAndErase(lru_.back());
  }
  EmitFlush(written);
}

}  // namespace falcon
