// Simulated byte-addressable NVM device with an XPBuffer write-combining
// model (paper §3.2, Figure 2).
//
// The device owns a DRAM-backed arena that plays the role of the persistent
// media image. Under eADR a power failure flushes the CPU caches, so the
// arena contents at any instant are exactly the state recovery would see;
// crash tests therefore simply reopen an engine over the same arena.
//
// Performance modeling: cache models (src/sim/cache_model.h) report every
// line write that reaches the device (clwb or dirty eviction) through
// LineWrite(). The XPBuffer model groups line writes into 256B media blocks.
// A block whose four lines all arrive while it is buffered drains as a single
// media write; a partially filled block drains as a media read plus a media
// write (read-modify-write amplification — the granularity mismatch the
// paper's hinted flush design targets).

#ifndef SRC_SIM_NVM_DEVICE_H_
#define SRC_SIM_NVM_DEVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/constants.h"
#include "src/common/latch.h"
#include "src/sim/cost_model.h"

namespace falcon {

// Source attribution for device traffic: which arena region a line write or
// media drain landed in. Regions are tagged page-granular by the arena's
// allocator (log area vs. tuple heap vs. index), which turns claims like
// D1's "logging causes zero NVM media writes" into directly assertable
// counter invariants instead of whole-device guesses.
enum MediaRegion : uint8_t {
  kRegionOther = 0,  // superblock / untagged pages
  kRegionLog,
  kRegionTupleHeap,
  kRegionIndex,
  kRegionVersionHeap,
};
inline constexpr size_t kMediaRegionCount = 5;

inline const char* MediaRegionName(MediaRegion region) {
  switch (region) {
    case kRegionOther: return "other";
    case kRegionLog: return "log";
    case kRegionTupleHeap: return "tuple_heap";
    case kRegionIndex: return "index";
    case kRegionVersionHeap: return "version_heap";
  }
  return "?";
}

// Media-traffic counters. All fields are cumulative since construction.
struct DeviceStats {
  uint64_t line_writes = 0;     // 64B line writes received from caches
  uint64_t media_writes = 0;    // 256B block writes to the media
  uint64_t media_reads = 0;     // 256B block reads caused by partial drains
  uint64_t full_drains = 0;     // blocks drained with all 4 lines merged
  uint64_t partial_drains = 0;  // blocks drained read-modify-write
  uint64_t busy_ns = 0;         // total media service time
  // Per-region splits of line_writes / media_writes (indexed by MediaRegion).
  uint64_t region_line_writes[kMediaRegionCount] = {};
  uint64_t region_media_writes[kMediaRegionCount] = {};

  DeviceStats& operator+=(const DeviceStats& o) {
    line_writes += o.line_writes;
    media_writes += o.media_writes;
    media_reads += o.media_reads;
    full_drains += o.full_drains;
    partial_drains += o.partial_drains;
    busy_ns += o.busy_ns;
    for (size_t r = 0; r < kMediaRegionCount; ++r) {
      region_line_writes[r] += o.region_line_writes[r];
      region_media_writes[r] += o.region_media_writes[r];
    }
    return *this;
  }

  // Bytes of application line writes vs bytes moved on the media.
  double WriteAmplification() const {
    const uint64_t app = line_writes * kCacheLineSize;
    const uint64_t media = (media_writes + media_reads) * kNvmBlockSize;
    return app == 0 ? 0.0 : static_cast<double>(media) / static_cast<double>(app);
  }
};

// Per-thread delta counters, registered with the device. Each block has a
// single writer (its owning simulation thread), so increments are plain
// load+store with relaxed atomics: the hot loop never touches a cache line
// shared with another thread. stats() readers see values at most one
// increment stale, which is fine for reporting.
struct alignas(kCacheLineSize) DeviceCounterBlock {
  std::atomic<uint64_t> line_writes{0};
  std::atomic<uint64_t> media_writes{0};
  std::atomic<uint64_t> media_reads{0};
  std::atomic<uint64_t> full_drains{0};
  std::atomic<uint64_t> partial_drains{0};
  std::atomic<uint64_t> busy_ns{0};
  std::atomic<uint64_t> region_line_writes[kMediaRegionCount] = {};
  std::atomic<uint64_t> region_media_writes[kMediaRegionCount] = {};

  // Single-writer increment: no RMW, no lock prefix.
  static void Bump(std::atomic<uint64_t>& c, uint64_t v = 1) {
    c.store(c.load(std::memory_order_relaxed) + v, std::memory_order_relaxed);
  }

  DeviceStats Snapshot() const {
    DeviceStats s;
    s.line_writes = line_writes.load(std::memory_order_relaxed);
    s.media_writes = media_writes.load(std::memory_order_relaxed);
    s.media_reads = media_reads.load(std::memory_order_relaxed);
    s.full_drains = full_drains.load(std::memory_order_relaxed);
    s.partial_drains = partial_drains.load(std::memory_order_relaxed);
    s.busy_ns = busy_ns.load(std::memory_order_relaxed);
    for (size_t r = 0; r < kMediaRegionCount; ++r) {
      s.region_line_writes[r] = region_line_writes[r].load(std::memory_order_relaxed);
      s.region_media_writes[r] = region_media_writes[r].load(std::memory_order_relaxed);
    }
    return s;
  }

  void Zero() {
    line_writes.store(0, std::memory_order_relaxed);
    media_writes.store(0, std::memory_order_relaxed);
    media_reads.store(0, std::memory_order_relaxed);
    full_drains.store(0, std::memory_order_relaxed);
    partial_drains.store(0, std::memory_order_relaxed);
    busy_ns.store(0, std::memory_order_relaxed);
    for (size_t r = 0; r < kMediaRegionCount; ++r) {
      region_line_writes[r].store(0, std::memory_order_relaxed);
      region_media_writes[r].store(0, std::memory_order_relaxed);
    }
  }
};

class NvmDevice {
 public:
  // Creates a device with `capacity` bytes of media, rounded up to a page.
  // `xpbuffer_blocks` is the total number of 256B slots in the write buffer
  // (Optane's XPBuffer is ~16KB per DIMM).
  // `drain_age` bounds buffer residency: a block untouched for that many
  // subsequent line writes (per shard) drains to the media. This models the
  // controller writing blocks out within a short window, so only line writes
  // that arrive close together merge - without it, repeatedly flushed hot
  // blocks would coalesce forever and hot tuple tracking (D2) would have
  // nothing to save. 0 = auto: scales with buffer capacity (a larger
  // XPBuffer lets blocks linger longer, the Section 5.5 mitigation).
  explicit NvmDevice(size_t capacity, const CostParams& params = {},
                     uint32_t xpbuffer_blocks = 384, uint64_t drain_age = 0);

  static constexpr uint64_t kDrainAge = 8;
  ~NvmDevice();

  NvmDevice(const NvmDevice&) = delete;
  NvmDevice& operator=(const NvmDevice&) = delete;

  std::byte* base() { return base_; }
  const std::byte* base() const { return base_; }
  size_t capacity() const { return capacity_; }
  const CostParams& params() const { return params_; }

  // True if `addr` points into the simulated persistent arena.
  bool Contains(const void* addr) const {
    const auto* p = static_cast<const std::byte*>(addr);
    return p >= base_ && p < base_ + capacity_;
  }

  // A 64B line write arrived at the device (clwb completion or cache
  // eviction). `line_addr` must be line-aligned and inside the arena.
  // When `local` is non-null, the counters for this write (and any drains it
  // triggers) accumulate into that per-thread block instead of the shard's
  // shared counters, so the hot path touches no shared counter lines.
  void LineWrite(uintptr_t line_addr, DeviceCounterBlock* local = nullptr);

  // A cache-miss read of a line. Only used for stats; the latency is charged
  // by the cache model.
  void LineRead(uintptr_t line_addr);

  // Drains every buffered block (e.g. before reading final stats).
  void DrainAll();

  // Tags `pages` pages starting at page index `first_page` with a traffic
  // region; subsequent line writes / drains in that range count into the
  // per-region splits. Called by the arena's page allocator. Tags are
  // DRAM-side metadata: they persist across simulated crashes (the device
  // object survives engine reopen) but not across device re-creation.
  void TagRegion(uint64_t first_page, uint64_t pages, MediaRegion region);

  // Region of a 256B media block (page-granular lookup).
  MediaRegion RegionOf(uint64_t block_index) const {
    const uint64_t page = block_index * kNvmBlockSize / kPageSize;
    return static_cast<MediaRegion>(page_region_[page].load(std::memory_order_relaxed));
  }

  // Region of an arbitrary address; kRegionOther for DRAM-side pointers
  // outside the arena. Used by the trace layer to tag stalls.
  MediaRegion RegionOfAddr(const void* addr) const {
    if (!Contains(addr)) {
      return kRegionOther;
    }
    const uint64_t offset = static_cast<const std::byte*>(addr) - base_;
    return RegionOf(offset / kNvmBlockSize);
  }

  // Registers a per-thread counter block. The block must stay registered (or
  // be unregistered) before it is destroyed; Unregister folds its counts into
  // the device's retired total so stats() stays cumulative.
  void RegisterCounters(DeviceCounterBlock* block);
  void UnregisterCounters(DeviceCounterBlock* block);

  // Snapshot of the cumulative stats: per-shard counters plus every
  // registered per-thread block plus retired blocks (consistent enough for
  // reporting; quiesce writers for exact totals).
  DeviceStats stats() const;

  // Resets all counters, including registered per-thread blocks (not the
  // arena or buffered state). Callers should quiesce writer threads first.
  void ResetStats();

 private:
  struct BufferedBlock {
    uint64_t block_index = 0;  // arena offset / 256
    uint64_t last_touch = 0;   // shard write tick of the last line arrival
    uint8_t line_mask = 0;     // which of the 4 lines have arrived
    uint32_t lru_prev = 0;
    uint32_t lru_next = 0;
    bool valid = false;
  };

  // The XPBuffer is sharded to keep multi-threaded simulation scalable; each
  // shard is an LRU-ordered set of 256B block slots.
  struct Shard {
    SpinLatch latch;
    std::vector<BufferedBlock> slots;
    std::vector<uint32_t> free_slots;
    DeviceStats stats;         // plain counters, mutated under `latch` only
    uint64_t write_ticks = 0;  // line writes seen; drives age-based draining
    // Intrusive LRU list head/tail over slot indexes; UINT32_MAX when empty.
    uint32_t lru_head = UINT32_MAX;
    uint32_t lru_tail = UINT32_MAX;
    // Last slot served: consecutive line writes usually land in the same
    // 256B block, so this skips the table probe. Validated against the
    // slot's `valid` flag and block index before use.
    uint32_t mru_slot = UINT32_MAX;
    // Open-addressed map from block_index to slot, sized 2x slot count.
    std::vector<uint32_t> table;

    uint32_t Lookup(uint64_t block_index) const;
    void Insert(uint64_t block_index, uint32_t slot);
    void Erase(uint64_t block_index);
    void LruPushFront(uint32_t slot);
    void LruUnlink(uint32_t slot);
  };

  Shard& ShardFor(uint64_t block_index) {
    return *shards_[block_index & (shards_.size() - 1)];
  }

  // Drains one block: full blocks cost one media write, partial blocks a
  // read-modify-write. Caller holds the shard latch. Counters go to `local`
  // when non-null, else to the shard's counters.
  void DrainBlock(Shard& shard, uint32_t slot, DeviceCounterBlock* local);

  std::byte* base_ = nullptr;
  size_t capacity_ = 0;
  CostParams params_;
  uint64_t drain_age_ = kDrainAge;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Page -> MediaRegion map. Atomics because the tagging thread (allocator)
  // races benignly with draining threads reading regions; both sides relaxed.
  std::unique_ptr<std::atomic<uint8_t>[]> page_region_;

  // Registry of per-thread counter blocks; retired_ keeps the counts of
  // blocks that unregistered so totals stay cumulative.
  mutable std::mutex registry_mu_;
  std::vector<DeviceCounterBlock*> blocks_;
  DeviceStats retired_;
};

}  // namespace falcon

#endif  // SRC_SIM_NVM_DEVICE_H_
