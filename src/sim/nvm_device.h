// Simulated byte-addressable NVM device with an XPBuffer write-combining
// model (paper §3.2, Figure 2).
//
// The device owns a DRAM-backed arena that plays the role of the persistent
// media image. Under eADR a power failure flushes the CPU caches, so the
// arena contents at any instant are exactly the state recovery would see;
// crash tests therefore simply reopen an engine over the same arena.
//
// Performance modeling: cache models (src/sim/cache_model.h) report every
// line write that reaches the device (clwb or dirty eviction) through
// LineWrite(). The XPBuffer model groups line writes into 256B media blocks.
// A block whose four lines all arrive while it is buffered drains as a single
// media write; a partially filled block drains as a media read plus a media
// write (read-modify-write amplification — the granularity mismatch the
// paper's hinted flush design targets).

#ifndef SRC_SIM_NVM_DEVICE_H_
#define SRC_SIM_NVM_DEVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/constants.h"
#include "src/common/latch.h"
#include "src/sim/cost_model.h"

namespace falcon {

// Media-traffic counters. All fields are cumulative since construction.
struct DeviceStats {
  uint64_t line_writes = 0;     // 64B line writes received from caches
  uint64_t media_writes = 0;    // 256B block writes to the media
  uint64_t media_reads = 0;     // 256B block reads caused by partial drains
  uint64_t full_drains = 0;     // blocks drained with all 4 lines merged
  uint64_t partial_drains = 0;  // blocks drained read-modify-write
  uint64_t busy_ns = 0;         // total media service time

  // Bytes of application line writes vs bytes moved on the media.
  double WriteAmplification() const {
    const uint64_t app = line_writes * kCacheLineSize;
    const uint64_t media = (media_writes + media_reads) * kNvmBlockSize;
    return app == 0 ? 0.0 : static_cast<double>(media) / static_cast<double>(app);
  }
};

class NvmDevice {
 public:
  // Creates a device with `capacity` bytes of media, rounded up to a page.
  // `xpbuffer_blocks` is the total number of 256B slots in the write buffer
  // (Optane's XPBuffer is ~16KB per DIMM).
  // `drain_age` bounds buffer residency: a block untouched for that many
  // subsequent line writes (per shard) drains to the media. This models the
  // controller writing blocks out within a short window, so only line writes
  // that arrive close together merge - without it, repeatedly flushed hot
  // blocks would coalesce forever and hot tuple tracking (D2) would have
  // nothing to save. 0 = auto: scales with buffer capacity (a larger
  // XPBuffer lets blocks linger longer, the Section 5.5 mitigation).
  explicit NvmDevice(size_t capacity, const CostParams& params = {},
                     uint32_t xpbuffer_blocks = 384, uint64_t drain_age = 0);

  static constexpr uint64_t kDrainAge = 8;
  ~NvmDevice();

  NvmDevice(const NvmDevice&) = delete;
  NvmDevice& operator=(const NvmDevice&) = delete;

  std::byte* base() { return base_; }
  const std::byte* base() const { return base_; }
  size_t capacity() const { return capacity_; }
  const CostParams& params() const { return params_; }

  // True if `addr` points into the simulated persistent arena.
  bool Contains(const void* addr) const {
    const auto* p = static_cast<const std::byte*>(addr);
    return p >= base_ && p < base_ + capacity_;
  }

  // A 64B line write arrived at the device (clwb completion or cache
  // eviction). `line_addr` must be line-aligned and inside the arena.
  void LineWrite(uintptr_t line_addr);

  // A cache-miss read of a line. Only used for stats; the latency is charged
  // by the cache model.
  void LineRead(uintptr_t line_addr);

  // Drains every buffered block (e.g. before reading final stats).
  void DrainAll();

  // Snapshot of the cumulative stats (consistent enough for reporting).
  DeviceStats stats() const;

  // Resets all counters (not the arena or buffered state).
  void ResetStats();

 private:
  struct BufferedBlock {
    uint64_t block_index = 0;  // arena offset / 256
    uint64_t last_touch = 0;   // shard write tick of the last line arrival
    uint8_t line_mask = 0;     // which of the 4 lines have arrived
    uint32_t lru_prev = 0;
    uint32_t lru_next = 0;
    bool valid = false;
  };

  // The XPBuffer is sharded to keep multi-threaded simulation scalable; each
  // shard is an LRU-ordered set of 256B block slots.
  struct Shard {
    SpinLatch latch;
    std::vector<BufferedBlock> slots;
    std::vector<uint32_t> free_slots;
    uint64_t write_ticks = 0;  // line writes seen; drives age-based draining
    // Intrusive LRU list head/tail over slot indexes; UINT32_MAX when empty.
    uint32_t lru_head = UINT32_MAX;
    uint32_t lru_tail = UINT32_MAX;
    // Open-addressed map from block_index to slot, sized 2x slot count.
    std::vector<uint32_t> table;

    uint32_t Lookup(uint64_t block_index) const;
    void Insert(uint64_t block_index, uint32_t slot);
    void Erase(uint64_t block_index);
    void LruPushFront(uint32_t slot);
    void LruUnlink(uint32_t slot);
  };

  Shard& ShardFor(uint64_t block_index) {
    return *shards_[block_index & (shards_.size() - 1)];
  }

  // Drains one block: full blocks cost one media write, partial blocks a
  // read-modify-write. Caller holds the shard latch.
  void DrainBlock(Shard& shard, uint32_t slot);

  std::byte* base_ = nullptr;
  size_t capacity_ = 0;
  CostParams params_;
  uint64_t drain_age_ = kDrainAge;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> line_writes_{0};
  std::atomic<uint64_t> media_writes_{0};
  std::atomic<uint64_t> media_reads_{0};
  std::atomic<uint64_t> full_drains_{0};
  std::atomic<uint64_t> partial_drains_{0};
  std::atomic<uint64_t> busy_ns_{0};
};

}  // namespace falcon

#endif  // SRC_SIM_NVM_DEVICE_H_
