// Simulated-time cost parameters for the NVM + persistent-cache model.
//
// Absolute values are calibrated to public Optane PMem measurements (Yang et
// al., FAST '20; Gugnani et al., VLDB '21) so that simulated throughputs land
// in the same order of magnitude as the paper's testbed. The benchmark
// *shapes* (engine ordering, crossovers) depend only on the relative costs of
// cache traffic vs NVM media traffic, which these parameters express.

#ifndef SRC_SIM_COST_MODEL_H_
#define SRC_SIM_COST_MODEL_H_

#include <cstdint>

namespace falcon {

struct CostParams {
  // CPU-side costs, charged to the issuing thread's simulated clock (ns).
  uint64_t cache_hit_ns = 2;        // load/store that hits in cache
  uint64_t dram_miss_ns = 80;       // cache-miss load served by DRAM
  uint64_t nvm_miss_ns = 300;       // random cache-miss load served by NVM
  // Follow-up misses of a contiguous span overlap in the memory system
  // (prefetch + bank parallelism): charged at bandwidth, not latency.
  uint64_t dram_seq_line_ns = 8;
  uint64_t nvm_seq_line_ns = 40;
  // Store misses are posted: the store buffer hides the write-allocate fill,
  // so stores are charged bandwidth-like costs, never the full miss latency.
  uint64_t dram_store_miss_ns = 4;
  uint64_t nvm_store_miss_ns = 12;
  uint64_t store_issue_ns = 1;      // per-line store issue cost
  uint64_t clwb_issue_ns = 4;       // clwb is asynchronous; issue cost only
  uint64_t sfence_ns = 8;          // fence/drain cost
  uint64_t eviction_ns = 4;         // CPU-side cost of a dirty-line writeback

  // Device-side media service times, accumulated on the device busy clock.
  uint64_t media_write_ns = 160;    // one 256B 3D-XPoint block write
  uint64_t media_read_ns = 120;     // one 256B 3D-XPoint block read

  // Number of independent media channels (interleaved DIMMs). Device busy
  // time is divided by min(channels, worker threads) when computing elapsed
  // simulated time.
  uint32_t device_channels = 6;

  // Fixed CPU overheads charged by the engine (parsing, dispatch, ...).
  uint64_t txn_overhead_ns = 150;  // per transaction begin/commit bookkeeping
  uint64_t op_overhead_ns = 80;    // per engine operation
};

// Geometry of the per-thread simulated cache (default: 2MB, 16-way, 64B
// lines — one Xeon Gold 5320 L2 slice plus a share of L3).
struct CacheGeometry {
  uint32_t sets = 2048;
  uint32_t ways = 16;

  uint64_t capacity_bytes() const { return static_cast<uint64_t>(sets) * ways * 64; }
};

}  // namespace falcon

#endif  // SRC_SIM_COST_MODEL_H_
