// Data-buffering cache used to demonstrate ADR vs eADR crash semantics
// (paper §3.1).
//
// Unlike CacheModel (tags only), SemanticCache holds the actual bytes of
// dirty lines, so a simulated power failure can have real consequences:
//
//   * CrashAdr():  dirty lines are discarded — their contents never reach the
//                  persistent image. This is what makes explicit clwb+sfence
//                  mandatory on ADR platforms.
//   * CrashEadr(): dirty lines are flushed by "hardware" — the persistent
//                  image equals the program's view. This is the property the
//                  small log window relies on.
//
// SemanticCache is single-threaded and used by tests and the crash_recovery
// example; the multi-threaded engine data path uses CacheModel.

#ifndef SRC_SIM_SEMANTIC_CACHE_H_
#define SRC_SIM_SEMANTIC_CACHE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <list>
#include <unordered_map>

#include "src/common/constants.h"
#include "src/obs/trace.h"

namespace falcon {

class SemanticCache {
 public:
  // `max_lines` caps resident dirty lines; overflow evicts LRU lines, which
  // — like real hardware in either mode — writes them to the backing memory.
  explicit SemanticCache(size_t max_lines = 4096) : max_lines_(max_lines) {}

  // Writes `len` bytes from `src` to `dst` through the cache: the bytes land
  // in buffered lines, NOT in backing memory.
  void Store(void* dst, const void* src, size_t len);

  // Reads `len` bytes into `dst`, seeing buffered lines where present.
  void Load(void* dst, const void* src, size_t len);

  // Writes back (and keeps clean) every buffered line covering the range.
  void Clwb(void* addr, size_t len);

  // Power failure on an ADR platform: all buffered dirty lines are lost.
  void CrashAdr();

  // Power failure on an eADR platform: hardware flushes the cache.
  void CrashEadr();

  size_t dirty_lines() const { return lines_.size(); }

  // True when the line containing `addr` is buffered (i.e. would be lost by
  // CrashAdr). Lets crash tests assert which lines are at risk.
  bool IsDirty(const void* addr) const;

  // Calls `fn` with the base address of every buffered line, most recently
  // used first.
  void ForEachDirtyLine(const std::function<void(uintptr_t)>& fn) const;

  // Optional flight recorder: Clwb and the crash writeback paths emit
  // kCacheFlush events (payload a = lines written back). SemanticCache has
  // no simulated clock, so event timestamps are a local sequence number.
  void set_trace(TraceRing* trace) { trace_ = trace; }

 private:
  struct LineBuf {
    std::array<std::byte, kCacheLineSize> data;
    std::list<uintptr_t>::iterator lru_pos;
  };

  LineBuf& GetOrFill(uintptr_t line_addr);
  void WritebackAndErase(uintptr_t line_addr);
  void EvictIfNeeded();

  void EmitFlush(size_t lines_written);

  size_t max_lines_;
  std::unordered_map<uintptr_t, LineBuf> lines_;
  std::list<uintptr_t> lru_;  // front = most recent
  TraceRing* trace_ = nullptr;
  uint64_t trace_seq_ = 0;  // stand-in timestamp (no simulated clock here)
};

}  // namespace falcon

#endif  // SRC_SIM_SEMANTIC_CACHE_H_
