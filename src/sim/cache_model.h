// Per-thread set-associative CPU cache model.
//
// The model tracks tags and dirty bits only — application data always lives
// in its real memory (the NVM arena or DRAM heap objects). The model's job is
// to decide which accesses hit, when dirty lines are evicted to the NVM
// device, and what each operation costs on the thread's simulated clock.
//
// This is the single hottest code in the simulator (every engine memory touch
// runs a set lookup), so the lookup is tuned for the host: a direct-mapped
// hint table short-circuits the way scan for recently touched lines, each
// slot packs its tag and LRU stamp into one 16-byte record (the validate
// and the recency update share a host cache line), and the set index is a
// mask (not a divide) when the set count is a power of two. None of this
// changes modeled behavior — hits, misses, evictions, and costs are
// identical to the straightforward implementation.
//
// Persistence semantics under eADR are exact without buffering data: a crash
// flushes caches, so the arena contents already equal the persistent image.
// For ADR semantics (dirty lines lost on crash) see
// src/sim/semantic_cache.h, which buffers real line data.

#ifndef SRC_SIM_CACHE_MODEL_H_
#define SRC_SIM_CACHE_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/common/constants.h"
#include "src/sim/cost_model.h"
#include "src/sim/nvm_device.h"

namespace falcon {

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t dirty_evictions = 0;  // dirty NVM lines pushed to the device
  uint64_t clwb_writebacks = 0;  // dirty lines written back by clwb
  uint64_t sfences = 0;
};

class CacheModel {
 public:
  // `device` may be nullptr for a pure-DRAM model (no NVM traffic possible).
  CacheModel(NvmDevice* device, CacheGeometry geometry, CostParams params);

  CacheModel(const CacheModel&) = delete;
  CacheModel& operator=(const CacheModel&) = delete;
  CacheModel(CacheModel&&) = default;

  // Routes device counter increments into a per-thread block (see
  // DeviceCounterBlock). nullptr (the default) uses the device's shard
  // counters. The block must outlive the model.
  void set_counter_block(DeviceCounterBlock* block) { counters_ = block; }

  // Store of `len` bytes at `addr`; marks the covered lines dirty. Returns
  // the simulated cost in ns. Inlined fast path: most engine touches cover a
  // single already-resident line.
  uint64_t OnStore(uintptr_t addr, size_t len) {
    const uint64_t line_tag = addr / kCacheLineSize;
    if (len != 0 && (addr + len - 1) / kCacheLineSize == line_tag) {
      const uint32_t slot = hint_[line_tag & hint_mask_];
      LineSlot& ls = lines_[slot];
      if (ls.tag == line_tag) {
        ++stats_.hits;
        ls.last_use = ++use_clock_;
        dirty_[slot] = 1;
        return params_.cache_hit_ns + params_.store_issue_ns;
      }
    }
    return OnStoreSlow(addr, len);
  }

  // Load of `len` bytes at `addr`. Misses cost DRAM or NVM latency depending
  // on whether the line is inside the device arena.
  uint64_t OnLoad(uintptr_t addr, size_t len) {
    const uint64_t line_tag = addr / kCacheLineSize;
    if (len != 0 && (addr + len - 1) / kCacheLineSize == line_tag) {
      const uint32_t slot = hint_[line_tag & hint_mask_];
      LineSlot& ls = lines_[slot];
      if (ls.tag == line_tag) {
        ++stats_.hits;
        ls.last_use = ++use_clock_;
        return params_.cache_hit_ns;
      }
    }
    return OnLoadSlow(addr, len);
  }

  // clwb over the covered lines: dirty lines are written back to the device
  // (and stay resident, clean). clwb is asynchronous, so only the issue cost
  // is charged to the thread.
  uint64_t Clwb(uintptr_t addr, size_t len);

  // Store fence.
  uint64_t Sfence();

  // Writes back every dirty NVM line (used when a simulated thread retires,
  // approximating its lines' eventual natural eviction) and flushes the
  // eviction pool.
  void WritebackAll();

  // Drops all lines without writeback (test helper: simulates a cold cache).
  void InvalidateAll();

  // True if the line containing `addr` is currently resident.
  bool IsResident(uintptr_t addr) const;
  // True if the line containing `addr` is resident and dirty.
  bool IsDirty(uintptr_t addr) const;

  const CacheStats& stats() const { return stats_; }
  const CacheGeometry& geometry() const { return geometry_; }

 private:
  // An invalid way holds this tag; no real line address reaches 2^64/64, so
  // the validity check folds into the tag compare.
  static constexpr uint64_t kInvalidTag = UINT64_MAX;

  // One cache line's record. Tag and LRU stamp stay adjacent so a hit's
  // validate-then-stamp touches a single host cache line.
  struct LineSlot {
    uint64_t tag = kInvalidTag;
    uint64_t last_use = 0;
  };

  // Index of the first slot of `line_tag`'s set in the SoA arrays.
  size_t SetBase(uint64_t line_tag) const {
    const uint64_t set =
        sets_pow2_ ? (line_tag & set_mask_) : (line_tag % geometry_.sets);
    return static_cast<size_t>(set) * geometry_.ways;
  }

  // Fixed-trip-count scan the compiler can fully unroll: the whole row is
  // compared branchlessly, then the match is selected. Tags are unique
  // within a set (and the probe tag is never kInvalidTag), so at most one
  // way matches.
  template <uint32_t kWays>
  static uint32_t FindWayFixed(const LineSlot* row, uint64_t line_tag) {
    uint32_t found = UINT32_MAX;
    for (uint32_t w = 0; w < kWays; ++w) {
      if (row[w].tag == line_tag) {
        found = w;
      }
    }
    return found;
  }

  // Returns the way index of `line_tag` within the set starting at `base`,
  // or UINT32_MAX. Kept in the header so the hot callers inline the whole
  // dispatch; the way count is fixed per model, so the switch predicts
  // perfectly.
  uint32_t FindWay(size_t base, uint64_t line_tag) const {
    const LineSlot* row = lines_.data() + base;
    const uint32_t ways = geometry_.ways;
    switch (ways) {
      case 16:
        return FindWayFixed<16>(row, line_tag);
      case 8:
        return FindWayFixed<8>(row, line_tag);
      case 4:
        return FindWayFixed<4>(row, line_tag);
      case 2:
        return FindWayFixed<2>(row, line_tag);
      default:
        break;
    }
    for (uint32_t w = 0; w < ways; ++w) {
      if (row[w].tag == line_tag) {
        return w;
      }
    }
    return UINT32_MAX;
  }

  uint64_t OnStoreSlow(uintptr_t addr, size_t len);
  uint64_t OnLoadSlow(uintptr_t addr, size_t len);

  // Slot of `line_tag` if resident, else SIZE_MAX. Consults the hint table
  // first (exact: a tag maps to one set, so tags_[slot] == line_tag is
  // authoritative wherever the hint points), falling back to the way scan
  // and refreshing the hint.
  size_t FindSlotHinted(uint64_t line_tag) {
    const size_t h = static_cast<size_t>(line_tag & hint_mask_);
    const uint32_t hinted = hint_[h];
    if (lines_[hinted].tag == line_tag) {
      return hinted;
    }
    const size_t base = SetBase(line_tag);
    const uint32_t way = FindWay(base, line_tag);
    if (way == UINT32_MAX) {
      return SIZE_MAX;
    }
    hint_[h] = static_cast<uint32_t>(base + way);
    return base + way;
  }

  // Touches one line for store/load; returns its cost. `prev_missed` tracks
  // whether the previous line of the same span missed (sequential misses
  // overlap in the memory system and cost bandwidth, not latency).
  uint64_t TouchLine(uint64_t line_tag, bool is_store, bool* prev_missed);

  // Evicts the LRU way of the set at `base` to make room; writes back if
  // dirty + NVM. Returns the freed way index.
  uint32_t EvictVictim(size_t base);

  void WritebackLineAddr(uint64_t line_tag);

  // Natural (capacity) evictions leave the cache in an order the program
  // cannot control (§4.4: "there is no direct mechanism in modern CPUs to
  // control the cache line eviction order"). A small randomizing pool
  // decorrelates adjacent evicted lines before they reach the device, so
  // un-flushed neighbors rarely merge — the write amplification clwb's
  // hinted ordering avoids.
  void PoolEvictedLine(uintptr_t line_addr);
  void FlushEvictionPool();

  static constexpr size_t kEvictionPoolSize = 256;

  NvmDevice* device_;
  CacheGeometry geometry_;
  CostParams params_;
  DeviceCounterBlock* counters_ = nullptr;

  // Line table, set-major: slot = set * ways + way. Dirty bits live in a
  // dense side array so LineSlot stays a 16-byte power of two.
  std::vector<LineSlot> lines_;
  std::vector<uint8_t> dirty_;

  uint64_t set_mask_ = 0;
  bool sets_pow2_ = false;

  // Direct-mapped hint table: hint_[tag & hint_mask_] is the slot where that
  // tag was last seen. Hints are advisory — every use validates against
  // tags_ — so stale entries are harmless and eviction needs no upkeep.
  std::vector<uint32_t> hint_;
  uint64_t hint_mask_ = 0;

  std::vector<uintptr_t> eviction_pool_;
  uint64_t pool_rng_ = 0x9e3779b97f4a7c15ull;
  uint64_t use_clock_ = 0;
  CacheStats stats_;
};

}  // namespace falcon

#endif  // SRC_SIM_CACHE_MODEL_H_
