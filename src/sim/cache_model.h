// Per-thread set-associative CPU cache model.
//
// The model tracks tags and dirty bits only — application data always lives
// in its real memory (the NVM arena or DRAM heap objects). The model's job is
// to decide which accesses hit, when dirty lines are evicted to the NVM
// device, and what each operation costs on the thread's simulated clock.
//
// Persistence semantics under eADR are exact without buffering data: a crash
// flushes caches, so the arena contents already equal the persistent image.
// For ADR semantics (dirty lines lost on crash) see
// src/sim/semantic_cache.h, which buffers real line data.

#ifndef SRC_SIM_CACHE_MODEL_H_
#define SRC_SIM_CACHE_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/common/constants.h"
#include "src/sim/cost_model.h"
#include "src/sim/nvm_device.h"

namespace falcon {

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t dirty_evictions = 0;  // dirty NVM lines pushed to the device
  uint64_t clwb_writebacks = 0;  // dirty lines written back by clwb
  uint64_t sfences = 0;
};

class CacheModel {
 public:
  // `device` may be nullptr for a pure-DRAM model (no NVM traffic possible).
  CacheModel(NvmDevice* device, CacheGeometry geometry, CostParams params);

  CacheModel(const CacheModel&) = delete;
  CacheModel& operator=(const CacheModel&) = delete;
  CacheModel(CacheModel&&) = default;

  // Store of `len` bytes at `addr`; marks the covered lines dirty. Returns
  // the simulated cost in ns.
  uint64_t OnStore(uintptr_t addr, size_t len);

  // Load of `len` bytes at `addr`. Misses cost DRAM or NVM latency depending
  // on whether the line is inside the device arena.
  uint64_t OnLoad(uintptr_t addr, size_t len);

  // clwb over the covered lines: dirty lines are written back to the device
  // (and stay resident, clean). clwb is asynchronous, so only the issue cost
  // is charged to the thread.
  uint64_t Clwb(uintptr_t addr, size_t len);

  // Store fence.
  uint64_t Sfence();

  // Writes back every dirty NVM line (used when a simulated thread retires,
  // approximating its lines' eventual natural eviction) and flushes the
  // eviction pool.
  void WritebackAll();

  // Drops all lines without writeback (test helper: simulates a cold cache).
  void InvalidateAll();

  // True if the line containing `addr` is currently resident.
  bool IsResident(uintptr_t addr) const;
  // True if the line containing `addr` is resident and dirty.
  bool IsDirty(uintptr_t addr) const;

  const CacheStats& stats() const { return stats_; }
  const CacheGeometry& geometry() const { return geometry_; }

 private:
  struct Line {
    uint64_t tag = 0;       // line address (addr / 64)
    uint64_t last_use = 0;  // LRU timestamp
    bool valid = false;
    bool dirty = false;
  };

  // Returns the way index of `line_tag` in its set, or UINT32_MAX.
  uint32_t FindWay(const Line* set, uint64_t line_tag) const;

  // Touches one line for store/load; returns its cost. `prev_missed` tracks
  // whether the previous line of the same span missed (sequential misses
  // overlap in the memory system and cost bandwidth, not latency).
  uint64_t TouchLine(uint64_t line_tag, bool is_store, bool* prev_missed);

  // Evicts the LRU way of `set` to make room; writes back if dirty + NVM.
  uint32_t EvictVictim(Line* set);

  void WritebackLine(const Line& line);

  // Natural (capacity) evictions leave the cache in an order the program
  // cannot control (§4.4: "there is no direct mechanism in modern CPUs to
  // control the cache line eviction order"). A small randomizing pool
  // decorrelates adjacent evicted lines before they reach the device, so
  // un-flushed neighbors rarely merge — the write amplification clwb's
  // hinted ordering avoids.
  void PoolEvictedLine(uintptr_t line_addr);
  void FlushEvictionPool();

  static constexpr size_t kEvictionPoolSize = 256;

  NvmDevice* device_;
  CacheGeometry geometry_;
  CostParams params_;
  std::vector<Line> lines_;  // sets * ways, set-major
  std::vector<uintptr_t> eviction_pool_;
  uint64_t pool_rng_ = 0x9e3779b97f4a7c15ull;
  uint64_t use_clock_ = 0;
  CacheStats stats_;
};

}  // namespace falcon

#endif  // SRC_SIM_CACHE_MODEL_H_
