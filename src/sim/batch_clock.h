// Overlap-aware per-worker clock for batched transaction execution.
//
// A worker running a batch of N resumable transaction frames interleaves
// them on ONE simulated core: compute slices serialize (the core does one
// thing at a time), but a frame's stall (NVM miss, fence drain) overlaps
// with sibling frames' compute. The BatchClock schedules the per-slice
// (compute, stall) aggregates reported by ThreadContext stall capture onto
// that single-core timeline.
//
// Model, per accounted slice for frame `slot`:
//
//   start        = max(core_free, ready[slot])   // core busy OR frame stalled
//   idle        += start - core_free             // nobody runnable: core idles
//   core_free    = start + compute               // compute serializes
//   ready[slot]  = core_free + stall             // stall runs in the background
//
// A stall therefore only costs elapsed time when no sibling has compute to
// run (it surfaces as idle, or as the tail after the last compute). Device
// busy time is NOT modeled here and never discounted: NvmDevice accrues the
// full media occupancy for every access regardless of what the core
// overlaps, exactly as in serial mode.
//
// With a single frame (batch_size = 1) the model degenerates to the serial
// clock: every slice starts at ready[0], idle absorbs exactly the stalls,
// and elapsed == sum(compute + stall) == hidden_stall_ns of zero.
//
// Determinism: PickNext is a pure function of the accounted costs (min
// ready time, ties prefer the current frame, then the lowest slot index),
// so batched execution replays identically for identical inputs — which the
// crash-sweep harness relies on.

#ifndef SRC_SIM_BATCH_CLOCK_H_
#define SRC_SIM_BATCH_CLOCK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace falcon {

class BatchClock {
 public:
  explicit BatchClock(uint32_t slots) : ready_(slots, 0) {}

  uint32_t slots() const { return static_cast<uint32_t>(ready_.size()); }

  // Marks `slot` runnable now (a fresh frame admitted into the batch).
  void Admit(uint32_t slot) { ready_[slot] = core_free_; }

  // Accounts one executed slice for `slot`. Returns the simulated time at
  // which the slice's compute finished (the frame-switch boundary).
  uint64_t Account(uint32_t slot, uint64_t compute_ns, uint64_t stall_ns,
                   uint32_t active_frames) {
    const uint64_t start = ready_[slot] > core_free_ ? ready_[slot] : core_free_;
    idle_ns_ += start - core_free_;
    inflight_weighted_ns_ += static_cast<uint64_t>(active_frames) * (start - core_free_);
    core_free_ = start + compute_ns;
    inflight_weighted_ns_ += static_cast<uint64_t>(active_frames) * compute_ns;
    ready_[slot] = core_free_ + stall_ns;
    serial_ns_ += compute_ns + stall_ns;
    stall_ns_ += stall_ns;
    if (ready_[slot] > last_finish_) {
      last_finish_ = ready_[slot];
    }
    return core_free_;
  }

  // Completion time of the frame occupying `slot` (its last slice's compute
  // end plus any trailing stall, e.g. the commit fence).
  uint64_t FinishTime(uint32_t slot) const { return ready_[slot]; }

  // Next slot to run among `active` (bitmask over slots): the one whose
  // stall resolves earliest. Ties prefer `current` (avoid a gratuitous
  // switch), then the lowest index. Returns slots() when `active` is empty.
  uint32_t PickNext(uint64_t active_mask, uint32_t current) const {
    uint32_t best = slots();
    uint64_t best_ready = ~uint64_t{0};
    for (uint32_t s = 0; s < slots(); ++s) {
      if ((active_mask & (uint64_t{1} << s)) == 0) {
        continue;
      }
      const uint64_t r = ready_[s];
      if (r < best_ready || (r == best_ready && s == current && best != current)) {
        best = s;
        best_ready = r;
      }
    }
    return best;
  }

  // Batch-timeline elapsed time: the core's last busy instant or the last
  // frame's stall resolution, whichever is later.
  uint64_t Elapsed() const {
    return core_free_ > last_finish_ ? core_free_ : last_finish_;
  }

  // Total charged time as the serial path would have summed it.
  uint64_t SerialNs() const { return serial_ns_; }
  // Total stall time charged (hidden or not).
  uint64_t StallNs() const { return stall_ns_; }
  // Core-idle time: stall intervals no sibling could cover.
  uint64_t IdleNs() const { return idle_ns_; }
  // Stall time that overlapped sibling work instead of elapsing:
  //   serial - elapsed = stall - idle - tail.
  uint64_t HiddenStallNs() const {
    const uint64_t e = Elapsed();
    return serial_ns_ > e ? serial_ns_ - e : 0;
  }
  // Integral of (active frames) over core-busy+idle time; divide by
  // Elapsed() for mean batch occupancy.
  uint64_t InflightWeightedNs() const { return inflight_weighted_ns_; }

 private:
  std::vector<uint64_t> ready_;
  uint64_t core_free_ = 0;
  uint64_t last_finish_ = 0;
  uint64_t serial_ns_ = 0;
  uint64_t stall_ns_ = 0;
  uint64_t idle_ns_ = 0;
  uint64_t inflight_weighted_ns_ = 0;
};

}  // namespace falcon

#endif  // SRC_SIM_BATCH_CLOCK_H_
