// Per-worker-thread simulation context: the simulated clock, the thread's
// private cache model, and convenience primitives that perform a real memory
// operation and charge its modeled cost in one call.
//
// Every engine-side memory touch goes through one of these primitives so the
// simulated clock and NVM media traffic faithfully reflect the access
// pattern.

#ifndef SRC_SIM_THREAD_CONTEXT_H_
#define SRC_SIM_THREAD_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <cstring>

#include "src/common/rng.h"
#include "src/obs/trace.h"
#include "src/sim/cache_model.h"
#include "src/sim/nvm_device.h"

namespace falcon {

class ThreadContext {
 public:
  ThreadContext(uint32_t thread_id, NvmDevice* device, CacheGeometry geometry = {},
                CostParams params = {})
      : thread_id_(thread_id), params_(params), device_(device),
        cache_(device, geometry, params) {
    if (device_ != nullptr) {
      // All device traffic from this thread counts into a thread-private
      // block, so the hot path never bounces a shared counter line.
      device_->RegisterCounters(&counters_);
      cache_.set_counter_block(&counters_);
    }
  }

  ~ThreadContext() {
    if (device_ != nullptr) {
      // Folds the block's counts into the device's retired total.
      device_->UnregisterCounters(&counters_);
    }
  }

  // The device holds a pointer to counters_; the context must not move.
  ThreadContext(const ThreadContext&) = delete;
  ThreadContext& operator=(const ThreadContext&) = delete;

  uint32_t thread_id() const { return thread_id_; }
  uint64_t sim_ns() const { return sim_ns_; }
  // Stable reference to the clock, for RAII phase timers.
  const uint64_t& sim_ns_ref() const { return sim_ns_; }
  CacheModel& cache() { return cache_; }
  const CacheModel& cache() const { return cache_; }
  Rng& rng() { return rng_; }

  // Copies `len` bytes from `src` to `dst` and charges store cost for the
  // destination lines. Store issue is bandwidth-like (fire-and-forget into
  // the store buffer), so it counts as compute for stall capture.
  void Store(void* dst, const void* src, size_t len) {
    std::memcpy(dst, src, len);
    Charge(cache_.OnStore(reinterpret_cast<uintptr_t>(dst), len), /*stall=*/false);
  }

  // Writes an 8-byte value with release semantics (for persistent state
  // flags read by recovery and by concurrent readers).
  void StoreRelease64(uint64_t* dst, uint64_t value) {
    reinterpret_cast<std::atomic<uint64_t>*>(dst)->store(value, std::memory_order_release);
    Charge(cache_.OnStore(reinterpret_cast<uintptr_t>(dst), sizeof(uint64_t)),
           /*stall=*/false);
  }

  // Copies `len` bytes from `src` to `dst` and charges load cost for the
  // source lines. A load that misses to DRAM or NVM is a dependent stall:
  // the core has nothing to do until the line arrives.
  void Load(void* dst, const void* src, size_t len) {
    std::memcpy(dst, src, len);
    const uint64_t cost = cache_.OnLoad(reinterpret_cast<uintptr_t>(src), len);
    const bool stall = cost >= params_.dram_miss_ns;
    Charge(cost, stall);
    if (trace_ != nullptr && stall) {
      EmitStall(TraceEventKind::kReadStall, src, cost);
    }
  }

  // Charges load cost for `len` bytes at `src` without copying (the caller
  // reads through a typed pointer).
  void TouchLoad(const void* src, size_t len) {
    const uint64_t cost = cache_.OnLoad(reinterpret_cast<uintptr_t>(src), len);
    const bool stall = cost >= params_.dram_miss_ns;
    Charge(cost, stall);
    if (trace_ != nullptr && stall) {
      EmitStall(TraceEventKind::kReadStall, src, cost);
    }
  }

  // Charges store cost without copying (caller already wrote, e.g. via CAS).
  void TouchStore(const void* dst, size_t len) {
    Charge(cache_.OnStore(reinterpret_cast<uintptr_t>(dst), len), /*stall=*/false);
  }

  // Issues clwb over [addr, addr+len). Clwb issue itself is asynchronous
  // (the drain wait is the following sfence), so it counts as compute.
  void Clwb(const void* addr, size_t len) {
    const uint64_t cost = cache_.Clwb(reinterpret_cast<uintptr_t>(addr), len);
    Charge(cost, /*stall=*/false);
    if (trace_ != nullptr && cost > 0) {
      EmitStall(TraceEventKind::kFlushStall, addr, cost);
    }
  }

  // The fence waits for outstanding flushes/stores to drain: a stall.
  void Sfence() { Charge(cache_.Sfence(), /*stall=*/true); }

  // Charges fixed CPU work (parsing, hashing, ...) to the simulated clock.
  void Work(uint64_t ns) { Charge(ns, /*stall=*/false); }

  // Resets the simulated clock (benchmark warmup boundaries).
  void ResetClock() { sim_ns_ = 0; }

  // --- Stall capture (batched execution) ---------------------------------
  //
  // When enabled, every cost charged to the clock is also classified as
  // either compute (the core is busy) or stall (the core waits on the memory
  // system: a DRAM/NVM miss or a fence drain) and accumulated into a slice.
  // Worker::RunBatch drains the slice after each frame step and feeds it to
  // the overlap-aware BatchClock. Disabled (the default) this costs one
  // predictable branch per primitive; sim_ns_ itself always advances by the
  // full cost either way, so the serial clock is unaffected.
  void EnableStallCapture(bool on) {
    capture_ = on;
    slice_compute_ns_ = 0;
    slice_stall_ns_ = 0;
  }
  bool stall_capture_enabled() const { return capture_; }

  // Returns and zeroes the accumulated slice.
  void TakeSlice(uint64_t* compute_ns, uint64_t* stall_ns) {
    *compute_ns = slice_compute_ns_;
    *stall_ns = slice_stall_ns_;
    slice_compute_ns_ = 0;
    slice_stall_ns_ = 0;
  }

  // Flight-recorder ring for this thread (null = tracing disabled, which
  // costs one predictable branch per primitive). Trace emission charges no
  // simulated time and touches no modeled memory, so enabling tracing never
  // perturbs the clock or the device counters.
  void set_trace(TraceRing* trace) { trace_ = trace; }
  TraceRing* trace() const { return trace_; }

 private:
  // Single funnel for every cost charged to the clock: advances sim_ns_ and,
  // when capture is on, banks the cost into the current slice by class.
  void Charge(uint64_t cost, bool stall) {
    sim_ns_ += cost;
    if (capture_) {
      (stall ? slice_stall_ns_ : slice_compute_ns_) += cost;
    }
  }

  void EmitStall(TraceEventKind kind, const void* addr, uint64_t cost) {
    const MediaRegion region =
        device_ != nullptr ? device_->RegionOfAddr(addr) : kRegionOther;
    trace_->Emit(kind, sim_ns_, static_cast<uint64_t>(region), cost);
  }

  uint32_t thread_id_;
  CostParams params_;
  NvmDevice* device_;
  DeviceCounterBlock counters_;
  CacheModel cache_;
  uint64_t sim_ns_ = 0;
  Rng rng_;
  TraceRing* trace_ = nullptr;
  bool capture_ = false;
  uint64_t slice_compute_ns_ = 0;
  uint64_t slice_stall_ns_ = 0;
};

}  // namespace falcon

#endif  // SRC_SIM_THREAD_CONTEXT_H_
