#include "src/sim/nvm_device.h"

#include <sys/mman.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>

#include "src/common/rng.h"

namespace falcon {

namespace {

constexpr uint32_t kNumShards = 8;
constexpr uint32_t kNoSlot = UINT32_MAX;
constexpr uint64_t kEmptyKey = UINT64_MAX;

size_t RoundUpToPage(size_t bytes) { return (bytes + kPageSize - 1) / kPageSize * kPageSize; }

}  // namespace

NvmDevice::NvmDevice(size_t capacity, const CostParams& params, uint32_t xpbuffer_blocks,
                     uint64_t drain_age)
    : capacity_(RoundUpToPage(capacity)), params_(params) {
  // Residency scales with buffer size (a 4x buffer holds blocks ~4x longer).
  drain_age_ = drain_age != 0 ? drain_age : std::max<uint64_t>(2, xpbuffer_blocks / 48);
  void* mem = mmap(nullptr, capacity_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (mem == MAP_FAILED) {
    throw std::bad_alloc();
  }
  base_ = static_cast<std::byte*>(mem);

  const uint64_t pages = capacity_ / kPageSize;
  page_region_ = std::make_unique<std::atomic<uint8_t>[]>(pages);
  for (uint64_t p = 0; p < pages; ++p) {
    page_region_[p].store(kRegionOther, std::memory_order_relaxed);
  }

  const uint32_t slots_per_shard = std::max<uint32_t>(4, xpbuffer_blocks / kNumShards);
  shards_.reserve(kNumShards);
  for (uint32_t i = 0; i < kNumShards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->slots.resize(slots_per_shard);
    shard->free_slots.reserve(slots_per_shard);
    for (uint32_t s = 0; s < slots_per_shard; ++s) {
      shard->free_slots.push_back(slots_per_shard - 1 - s);
    }
    // Open-addressed table with power-of-two size >= 2x slots.
    uint32_t table_size = 4;
    while (table_size < slots_per_shard * 2) {
      table_size <<= 1;
    }
    shard->table.assign(table_size, kNoSlot);
    shards_.push_back(std::move(shard));
  }
}

NvmDevice::~NvmDevice() {
  if (base_ != nullptr) {
    munmap(base_, capacity_);
  }
}

uint32_t NvmDevice::Shard::Lookup(uint64_t block_index) const {
  const size_t mask = table.size() - 1;
  size_t pos = Mix64(block_index) & mask;
  for (size_t probes = 0; probes < table.size(); ++probes) {
    const uint32_t slot = table[pos];
    if (slot == kNoSlot) {
      return kNoSlot;
    }
    if (slots[slot].valid && slots[slot].block_index == block_index) {
      return slot;
    }
    pos = (pos + 1) & mask;
  }
  return kNoSlot;
}

void NvmDevice::Shard::Insert(uint64_t block_index, uint32_t slot) {
  const size_t mask = table.size() - 1;
  size_t pos = Mix64(block_index) & mask;
  while (table[pos] != kNoSlot && slots[table[pos]].valid) {
    pos = (pos + 1) & mask;
  }
  table[pos] = slot;
}

void NvmDevice::Shard::Erase(uint64_t block_index) {
  // Deletion from linear probing requires re-inserting the rest of the
  // cluster; the table is tiny so the cost is negligible.
  const size_t mask = table.size() - 1;
  size_t pos = Mix64(block_index) & mask;
  while (table[pos] != kNoSlot) {
    const uint32_t slot = table[pos];
    if (slots[slot].valid && slots[slot].block_index == block_index) {
      break;
    }
    pos = (pos + 1) & mask;
  }
  if (table[pos] == kNoSlot) {
    return;
  }
  table[pos] = kNoSlot;
  // Rehash the remainder of the probe cluster.
  size_t next = (pos + 1) & mask;
  while (table[next] != kNoSlot) {
    const uint32_t slot = table[next];
    table[next] = kNoSlot;
    if (slots[slot].valid) {
      Insert(slots[slot].block_index, slot);
    }
    next = (next + 1) & mask;
  }
}

void NvmDevice::Shard::LruPushFront(uint32_t slot) {
  slots[slot].lru_prev = kNoSlot;
  slots[slot].lru_next = lru_head;
  if (lru_head != kNoSlot) {
    slots[lru_head].lru_prev = slot;
  }
  lru_head = slot;
  if (lru_tail == kNoSlot) {
    lru_tail = slot;
  }
}

void NvmDevice::Shard::LruUnlink(uint32_t slot) {
  const uint32_t prev = slots[slot].lru_prev;
  const uint32_t next = slots[slot].lru_next;
  if (prev != kNoSlot) {
    slots[prev].lru_next = next;
  } else {
    lru_head = next;
  }
  if (next != kNoSlot) {
    slots[next].lru_prev = prev;
  } else {
    lru_tail = prev;
  }
}

void NvmDevice::DrainBlock(Shard& shard, uint32_t slot, DeviceCounterBlock* local) {
  BufferedBlock& block = shard.slots[slot];
  const bool full = block.line_mask == (1u << kLinesPerBlock) - 1;
  const MediaRegion region = RegionOf(block.block_index);
  uint64_t service = params_.media_write_ns;
  if (local != nullptr) {
    DeviceCounterBlock::Bump(local->media_writes);
    DeviceCounterBlock::Bump(local->region_media_writes[region]);
    if (full) {
      DeviceCounterBlock::Bump(local->full_drains);
    } else {
      // Partial block: the XPController must fetch the 256B block from the
      // media, merge the arrived lines, and write it back (Figure 2, W1).
      DeviceCounterBlock::Bump(local->media_reads);
      DeviceCounterBlock::Bump(local->partial_drains);
      service += params_.media_read_ns;
    }
    DeviceCounterBlock::Bump(local->busy_ns, service);
  } else {
    ++shard.stats.media_writes;
    ++shard.stats.region_media_writes[region];
    if (full) {
      ++shard.stats.full_drains;
    } else {
      ++shard.stats.media_reads;
      ++shard.stats.partial_drains;
      service += params_.media_read_ns;
    }
    shard.stats.busy_ns += service;
  }

  shard.Erase(block.block_index);
  shard.LruUnlink(slot);
  block.valid = false;
  block.line_mask = 0;
  shard.free_slots.push_back(slot);
}

void NvmDevice::LineWrite(uintptr_t line_addr, DeviceCounterBlock* local) {
  const uint64_t offset = line_addr - reinterpret_cast<uintptr_t>(base_);
  const uint64_t block_index = offset / kNvmBlockSize;
  const auto line_in_block = static_cast<uint8_t>((offset / kCacheLineSize) % kLinesPerBlock);

  const MediaRegion region = RegionOf(block_index);
  if (local != nullptr) {
    // Thread-private block: no shared cache line touched for the count.
    DeviceCounterBlock::Bump(local->line_writes);
    DeviceCounterBlock::Bump(local->region_line_writes[region]);
  }

  Shard& shard = ShardFor(block_index);
  std::lock_guard<SpinLatch> guard(shard.latch);
  if (local == nullptr) {
    ++shard.stats.line_writes;
    ++shard.stats.region_line_writes[region];
  }

  // Age-based drain: bounded buffer residency (see kDrainAge). The LRU tail
  // is the least recently touched block; drain every one that has sat idle
  // past the age limit.
  ++shard.write_ticks;
  while (shard.lru_tail != kNoSlot &&
         shard.write_ticks - shard.slots[shard.lru_tail].last_touch > drain_age_) {
    DrainBlock(shard, shard.lru_tail, local);
  }

  uint32_t slot;
  if (shard.mru_slot != kNoSlot && shard.slots[shard.mru_slot].valid &&
      shard.slots[shard.mru_slot].block_index == block_index) {
    slot = shard.mru_slot;
  } else {
    slot = shard.Lookup(block_index);
  }
  if (slot == kNoSlot) {
    if (shard.free_slots.empty()) {
      // Buffer full: evict the least recently touched block. Under heavy
      // multi-threaded traffic this is what breaks merging (paper §6.4:
      // "cache thrashing in the underlying cache layer within the NVM
      // module").
      DrainBlock(shard, shard.lru_tail, local);
    }
    slot = shard.free_slots.back();
    shard.free_slots.pop_back();
    BufferedBlock& block = shard.slots[slot];
    block.block_index = block_index;
    block.line_mask = 0;
    block.valid = true;
    shard.Insert(block_index, slot);
    shard.LruPushFront(slot);
  } else if (shard.lru_head != slot) {
    shard.LruUnlink(slot);
    shard.LruPushFront(slot);
  }

  shard.mru_slot = slot;
  BufferedBlock& block = shard.slots[slot];
  block.last_touch = shard.write_ticks;
  block.line_mask |= static_cast<uint8_t>(1u << line_in_block);
  if (block.line_mask == (1u << kLinesPerBlock) - 1) {
    // All four lines merged: drain immediately as one full media write.
    DrainBlock(shard, slot, local);
  }
}

void NvmDevice::LineRead(uintptr_t line_addr) {
  (void)line_addr;
  // Reads bypass the XPBuffer in this model; latency is charged by the cache
  // model, and read traffic does not contribute to write amplification.
}

void NvmDevice::DrainAll() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<SpinLatch> guard(shard.latch);
    while (shard.lru_head != kNoSlot) {
      DrainBlock(shard, shard.lru_head, /*local=*/nullptr);
    }
  }
}

void NvmDevice::TagRegion(uint64_t first_page, uint64_t pages, MediaRegion region) {
  const uint64_t page_count = capacity_ / kPageSize;
  for (uint64_t p = first_page; p < first_page + pages && p < page_count; ++p) {
    page_region_[p].store(static_cast<uint8_t>(region), std::memory_order_relaxed);
  }
}

void NvmDevice::RegisterCounters(DeviceCounterBlock* block) {
  std::lock_guard<std::mutex> guard(registry_mu_);
  blocks_.push_back(block);
}

void NvmDevice::UnregisterCounters(DeviceCounterBlock* block) {
  std::lock_guard<std::mutex> guard(registry_mu_);
  for (size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i] == block) {
      retired_ += block->Snapshot();
      blocks_.erase(blocks_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

DeviceStats NvmDevice::stats() const {
  DeviceStats s;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<SpinLatch> guard(shard.latch);
    s += shard.stats;
  }
  std::lock_guard<std::mutex> guard(registry_mu_);
  for (const DeviceCounterBlock* block : blocks_) {
    s += block->Snapshot();
  }
  s += retired_;
  return s;
}

void NvmDevice::ResetStats() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<SpinLatch> guard(shard.latch);
    shard.stats = DeviceStats{};
  }
  std::lock_guard<std::mutex> guard(registry_mu_);
  for (DeviceCounterBlock* block : blocks_) {
    block->Zero();
  }
  retired_ = DeviceStats{};
}

}  // namespace falcon
