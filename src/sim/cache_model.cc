#include "src/sim/cache_model.h"

#include <algorithm>
#include <vector>

#include "src/common/rng.h"

namespace falcon {

namespace {

constexpr uint32_t kNoWay = UINT32_MAX;

uint64_t LineTagOf(uintptr_t addr) { return addr / kCacheLineSize; }

// Number of lines covered by [addr, addr + len).
uint64_t LinesCovered(uintptr_t addr, size_t len) {
  if (len == 0) {
    return 0;
  }
  const uint64_t first = LineTagOf(addr);
  const uint64_t last = LineTagOf(addr + len - 1);
  return last - first + 1;
}

}  // namespace

CacheModel::CacheModel(NvmDevice* device, CacheGeometry geometry, CostParams params)
    : device_(device), geometry_(geometry), params_(params) {
  const size_t n = static_cast<size_t>(geometry_.sets) * geometry_.ways;
  lines_.assign(n, LineSlot{});
  dirty_.assign(n, 0);
  sets_pow2_ = geometry_.sets != 0 && (geometry_.sets & (geometry_.sets - 1)) == 0;
  set_mask_ = sets_pow2_ ? geometry_.sets - 1 : 0;
  // Hint table: power-of-two size covering every slot once (capped so a
  // huge model does not double its footprint). All-zero is a valid initial
  // state — slot 0 starts with kInvalidTag, and lookups validate anyway.
  size_t hint_size = 64;
  while (hint_size < n && hint_size < (size_t{1} << 20)) {
    hint_size <<= 1;
  }
  hint_.assign(hint_size, 0);
  hint_mask_ = hint_size - 1;
}


void CacheModel::WritebackLineAddr(uint64_t line_tag) {
  // clwb path: the program flushed this line deliberately, so it reaches the
  // device in program order (mergeable with its neighbors).
  const uintptr_t addr = line_tag * kCacheLineSize;
  if (device_ != nullptr && device_->Contains(reinterpret_cast<const void*>(addr))) {
    device_->LineWrite(addr, counters_);
  }
  // Dirty DRAM lines write back to DRAM; that traffic is not modeled.
}

void CacheModel::PoolEvictedLine(uintptr_t line_addr) {
  if (device_ == nullptr || !device_->Contains(reinterpret_cast<const void*>(line_addr))) {
    return;
  }
  eviction_pool_.push_back(line_addr);
  if (eviction_pool_.size() >= kEvictionPoolSize) {
    // Release a random pooled line: eviction order is uncontrollable. The
    // pool holds exactly kEvictionPoolSize entries here (it never grows
    // past the threshold), so the mask is the same as a modulo.
    static_assert((kEvictionPoolSize & (kEvictionPoolSize - 1)) == 0);
    const uint64_t pick = SplitMix64(pool_rng_) & (kEvictionPoolSize - 1);
    std::swap(eviction_pool_[pick], eviction_pool_.back());
    device_->LineWrite(eviction_pool_.back(), counters_);
    eviction_pool_.pop_back();
  }
}

void CacheModel::FlushEvictionPool() {
  for (const uintptr_t addr : eviction_pool_) {
    device_->LineWrite(addr, counters_);
  }
  eviction_pool_.clear();
}

uint32_t CacheModel::EvictVictim(size_t base) {
  uint32_t victim = 0;
  uint64_t oldest = UINT64_MAX;
  for (uint32_t w = 0; w < geometry_.ways; ++w) {
    if (lines_[base + w].tag == kInvalidTag) {
      return w;
    }
    if (lines_[base + w].last_use < oldest) {
      oldest = lines_[base + w].last_use;
      victim = w;
    }
  }
  if (dirty_[base + victim] != 0) {
    ++stats_.dirty_evictions;
    PoolEvictedLine(lines_[base + victim].tag * kCacheLineSize);
  }
  lines_[base + victim].tag = kInvalidTag;
  return victim;
}

uint64_t CacheModel::TouchLine(uint64_t line_tag, bool is_store, bool* prev_missed) {
  size_t slot = FindSlotHinted(line_tag);
  uint64_t cost = 0;
  if (slot != SIZE_MAX) {
    ++stats_.hits;
    cost = params_.cache_hit_ns;
    *prev_missed = false;
  } else {
    ++stats_.misses;
    const uintptr_t addr = line_tag * kCacheLineSize;
    const bool nvm =
        device_ != nullptr && device_->Contains(reinterpret_cast<const void*>(addr));
    // Loads: the first miss of a span pays full latency; follow-up misses
    // of contiguous lines overlap in the memory system and cost bandwidth.
    // Stores: posted through the store buffer, so the write-allocate fill
    // never stalls the thread for the full latency.
    if (is_store) {
      cost = nvm ? params_.nvm_store_miss_ns : params_.dram_store_miss_ns;
    } else if (*prev_missed) {
      cost = nvm ? params_.nvm_seq_line_ns : params_.dram_seq_line_ns;
    } else {
      cost = nvm ? params_.nvm_miss_ns : params_.dram_miss_ns;
    }
    *prev_missed = true;
    const size_t base = SetBase(line_tag);
    const uint32_t way = EvictVictim(base);
    slot = base + way;
    lines_[slot].tag = line_tag;
    dirty_[slot] = 0;
    hint_[line_tag & hint_mask_] = static_cast<uint32_t>(slot);
  }
  lines_[slot].last_use = ++use_clock_;
  if (is_store) {
    dirty_[slot] = 1;
    cost += params_.store_issue_ns;
  }
  return cost;
}

uint64_t CacheModel::OnStoreSlow(uintptr_t addr, size_t len) {
  const uint64_t first = LineTagOf(addr);
  const uint64_t n = LinesCovered(addr, len);
  uint64_t cost = 0;
  // Hint-hit leading lines: same bookkeeping as TouchLine's hit path with
  // the dispatch hoisted out of the loop. Most spans are fully resident.
  uint64_t i = 0;
  for (; i < n; ++i) {
    const uint64_t tag = first + i;
    const uint32_t s = hint_[tag & hint_mask_];
    LineSlot& ls = lines_[s];
    if (ls.tag != tag) {
      break;
    }
    ++stats_.hits;
    ls.last_use = ++use_clock_;
    dirty_[s] = 1;
    cost += params_.cache_hit_ns + params_.store_issue_ns;
  }
  bool prev_missed = false;
  for (; i < n; ++i) {
    cost += TouchLine(first + i, /*is_store=*/true, &prev_missed);
  }
  return cost;
}

uint64_t CacheModel::OnLoadSlow(uintptr_t addr, size_t len) {
  const uint64_t first = LineTagOf(addr);
  const uint64_t n = LinesCovered(addr, len);
  uint64_t cost = 0;
  uint64_t i = 0;
  for (; i < n; ++i) {
    const uint64_t tag = first + i;
    const uint32_t s = hint_[tag & hint_mask_];
    LineSlot& ls = lines_[s];
    if (ls.tag != tag) {
      break;
    }
    ++stats_.hits;
    ls.last_use = ++use_clock_;
    cost += params_.cache_hit_ns;
  }
  bool prev_missed = false;
  for (; i < n; ++i) {
    cost += TouchLine(first + i, /*is_store=*/false, &prev_missed);
  }
  return cost;
}

uint64_t CacheModel::Clwb(uintptr_t addr, size_t len) {
  const uint64_t first = LineTagOf(addr);
  const uint64_t n = LinesCovered(addr, len);
  uint64_t cost = 0;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t line_tag = first + i;
    const size_t slot = FindSlotHinted(line_tag);
    cost += params_.clwb_issue_ns;
    if (slot != SIZE_MAX && dirty_[slot] != 0) {
      ++stats_.clwb_writebacks;
      WritebackLineAddr(line_tag);
      // clwb retains the line in cache in a clean state.
      dirty_[slot] = 0;
    }
  }
  return cost;
}

uint64_t CacheModel::Sfence() {
  ++stats_.sfences;
  return params_.sfence_ns;
}

void CacheModel::WritebackAll() {
  // Orderly drain (shutdown / steady-state accounting): co-resident dirty
  // lines of the same block leave together, so they merge. Mid-run capacity
  // evictions still go through the randomizing pool — that is where the
  // uncontrollable-order penalty genuinely applies.
  FlushEvictionPool();
  std::vector<uint64_t> dirty_tags;
  for (size_t i = 0; i < lines_.size(); ++i) {
    if (lines_[i].tag != kInvalidTag && dirty_[i] != 0) {
      dirty_tags.push_back(lines_[i].tag);
      dirty_[i] = 0;
    }
  }
  std::sort(dirty_tags.begin(), dirty_tags.end());
  for (const uint64_t tag : dirty_tags) {
    WritebackLineAddr(tag);
  }
}

void CacheModel::InvalidateAll() {
  eviction_pool_.clear();
  for (LineSlot& ls : lines_) {
    ls.tag = kInvalidTag;
  }
  std::fill(dirty_.begin(), dirty_.end(), uint8_t{0});
}

bool CacheModel::IsResident(uintptr_t addr) const {
  const uint64_t line_tag = LineTagOf(addr);
  return FindWay(SetBase(line_tag), line_tag) != kNoWay;
}

bool CacheModel::IsDirty(uintptr_t addr) const {
  const uint64_t line_tag = LineTagOf(addr);
  const size_t base = SetBase(line_tag);
  const uint32_t way = FindWay(base, line_tag);
  return way != kNoWay && dirty_[base + way] != 0;
}

}  // namespace falcon
