#include "src/sim/cache_model.h"

#include <algorithm>
#include <vector>

#include "src/common/rng.h"

namespace falcon {

namespace {

constexpr uint32_t kNoWay = UINT32_MAX;

uint64_t LineTagOf(uintptr_t addr) { return addr / kCacheLineSize; }

// Number of lines covered by [addr, addr + len).
uint64_t LinesCovered(uintptr_t addr, size_t len) {
  if (len == 0) {
    return 0;
  }
  const uint64_t first = LineTagOf(addr);
  const uint64_t last = LineTagOf(addr + len - 1);
  return last - first + 1;
}

}  // namespace

CacheModel::CacheModel(NvmDevice* device, CacheGeometry geometry, CostParams params)
    : device_(device), geometry_(geometry), params_(params) {
  lines_.resize(static_cast<size_t>(geometry_.sets) * geometry_.ways);
}

uint32_t CacheModel::FindWay(const Line* set, uint64_t line_tag) const {
  for (uint32_t w = 0; w < geometry_.ways; ++w) {
    if (set[w].valid && set[w].tag == line_tag) {
      return w;
    }
  }
  return kNoWay;
}

void CacheModel::WritebackLine(const Line& line) {
  // clwb path: the program flushed this line deliberately, so it reaches the
  // device in program order (mergeable with its neighbors).
  const uintptr_t addr = line.tag * kCacheLineSize;
  if (device_ != nullptr && device_->Contains(reinterpret_cast<const void*>(addr))) {
    device_->LineWrite(addr);
  }
  // Dirty DRAM lines write back to DRAM; that traffic is not modeled.
}

void CacheModel::PoolEvictedLine(uintptr_t line_addr) {
  if (device_ == nullptr || !device_->Contains(reinterpret_cast<const void*>(line_addr))) {
    return;
  }
  eviction_pool_.push_back(line_addr);
  if (eviction_pool_.size() >= kEvictionPoolSize) {
    // Release a random pooled line: eviction order is uncontrollable.
    const uint64_t pick = SplitMix64(pool_rng_) % eviction_pool_.size();
    std::swap(eviction_pool_[pick], eviction_pool_.back());
    device_->LineWrite(eviction_pool_.back());
    eviction_pool_.pop_back();
  }
}

void CacheModel::FlushEvictionPool() {
  for (const uintptr_t addr : eviction_pool_) {
    device_->LineWrite(addr);
  }
  eviction_pool_.clear();
}

uint32_t CacheModel::EvictVictim(Line* set) {
  uint32_t victim = 0;
  uint64_t oldest = UINT64_MAX;
  for (uint32_t w = 0; w < geometry_.ways; ++w) {
    if (!set[w].valid) {
      return w;
    }
    if (set[w].last_use < oldest) {
      oldest = set[w].last_use;
      victim = w;
    }
  }
  if (set[victim].dirty) {
    ++stats_.dirty_evictions;
    PoolEvictedLine(set[victim].tag * kCacheLineSize);
  }
  set[victim].valid = false;
  return victim;
}

uint64_t CacheModel::TouchLine(uint64_t line_tag, bool is_store, bool* prev_missed) {
  Line* set = &lines_[static_cast<size_t>(line_tag % geometry_.sets) * geometry_.ways];
  uint32_t way = FindWay(set, line_tag);
  uint64_t cost = 0;
  if (way != kNoWay) {
    ++stats_.hits;
    cost = params_.cache_hit_ns;
    *prev_missed = false;
  } else {
    ++stats_.misses;
    const uintptr_t addr = line_tag * kCacheLineSize;
    const bool nvm =
        device_ != nullptr && device_->Contains(reinterpret_cast<const void*>(addr));
    // Loads: the first miss of a span pays full latency; follow-up misses
    // of contiguous lines overlap in the memory system and cost bandwidth.
    // Stores: posted through the store buffer, so the write-allocate fill
    // never stalls the thread for the full latency.
    if (is_store) {
      cost = nvm ? params_.nvm_store_miss_ns : params_.dram_store_miss_ns;
    } else if (*prev_missed) {
      cost = nvm ? params_.nvm_seq_line_ns : params_.dram_seq_line_ns;
    } else {
      cost = nvm ? params_.nvm_miss_ns : params_.dram_miss_ns;
    }
    *prev_missed = true;
    way = EvictVictim(set);
    set[way].tag = line_tag;
    set[way].valid = true;
    set[way].dirty = false;
  }
  set[way].last_use = ++use_clock_;
  if (is_store) {
    set[way].dirty = true;
    cost += params_.store_issue_ns;
  }
  return cost;
}

uint64_t CacheModel::OnStore(uintptr_t addr, size_t len) {
  const uint64_t first = LineTagOf(addr);
  const uint64_t n = LinesCovered(addr, len);
  uint64_t cost = 0;
  bool prev_missed = false;
  for (uint64_t i = 0; i < n; ++i) {
    cost += TouchLine(first + i, /*is_store=*/true, &prev_missed);
  }
  return cost;
}

uint64_t CacheModel::OnLoad(uintptr_t addr, size_t len) {
  const uint64_t first = LineTagOf(addr);
  const uint64_t n = LinesCovered(addr, len);
  uint64_t cost = 0;
  bool prev_missed = false;
  for (uint64_t i = 0; i < n; ++i) {
    cost += TouchLine(first + i, /*is_store=*/false, &prev_missed);
  }
  return cost;
}

uint64_t CacheModel::Clwb(uintptr_t addr, size_t len) {
  const uint64_t first = LineTagOf(addr);
  const uint64_t n = LinesCovered(addr, len);
  uint64_t cost = 0;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t line_tag = first + i;
    Line* set = &lines_[static_cast<size_t>(line_tag % geometry_.sets) * geometry_.ways];
    const uint32_t way = FindWay(set, line_tag);
    cost += params_.clwb_issue_ns;
    if (way != kNoWay && set[way].dirty) {
      ++stats_.clwb_writebacks;
      WritebackLine(set[way]);
      // clwb retains the line in cache in a clean state.
      set[way].dirty = false;
    }
  }
  return cost;
}

uint64_t CacheModel::Sfence() {
  ++stats_.sfences;
  return params_.sfence_ns;
}

void CacheModel::WritebackAll() {
  // Orderly drain (shutdown / steady-state accounting): co-resident dirty
  // lines of the same block leave together, so they merge. Mid-run capacity
  // evictions still go through the randomizing pool — that is where the
  // uncontrollable-order penalty genuinely applies.
  FlushEvictionPool();
  std::vector<uint64_t> dirty_tags;
  for (auto& line : lines_) {
    if (line.valid && line.dirty) {
      dirty_tags.push_back(line.tag);
      line.dirty = false;
    }
  }
  std::sort(dirty_tags.begin(), dirty_tags.end());
  for (const uint64_t tag : dirty_tags) {
    Line ordered;
    ordered.tag = tag;
    WritebackLine(ordered);
  }
}

void CacheModel::InvalidateAll() {
  eviction_pool_.clear();
  for (auto& line : lines_) {
    line.valid = false;
    line.dirty = false;
  }
}

bool CacheModel::IsResident(uintptr_t addr) const {
  const uint64_t line_tag = LineTagOf(addr);
  const Line* set = &lines_[static_cast<size_t>(line_tag % geometry_.sets) * geometry_.ways];
  return FindWay(set, line_tag) != kNoWay;
}

bool CacheModel::IsDirty(uintptr_t addr) const {
  const uint64_t line_tag = LineTagOf(addr);
  const Line* set = &lines_[static_cast<size_t>(line_tag % geometry_.sets) * geometry_.ways];
  const uint32_t way = FindWay(set, line_tag);
  return way != kNoWay && set[way].dirty;
}

}  // namespace falcon
