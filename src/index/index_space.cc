#include <mutex>

#include "src/index/index.h"
#include "src/pmem/catalog.h"

namespace falcon {

IndexHandle NvmIndexSpace::Alloc(ThreadContext& ctx, size_t bytes, size_t align) {
  std::lock_guard<SpinLatch> guard(latch_);
  if (bytes > kPageSize - kPageDataStart) {
    // Oversized object (e.g. a large hash directory): dedicated contiguous
    // pages, data starting block-aligned after the first page's header.
    const uint64_t pages = (bytes + kPageDataStart + kPageSize - 1) / kPageSize;
    const PmOffset off =
        arena_->AllocContiguousPages(pages, PagePurpose::kIndex, ctx.thread_id(), 0);
    if (off == kNullPm) {
      return kNullHandle;
    }
    ctx.TouchStore(arena_->Ptr<void>(off + kPageDataStart), bytes);
    return off + kPageDataStart;
  }
  if (current_page_ != kNullPm) {
    const PmOffset off = arena_->AllocFromPage(current_page_, bytes, align);
    if (off != kNullPm) {
      ctx.TouchStore(arena_->Ptr<void>(off), bytes);
      return off;
    }
  }
  current_page_ = arena_->AllocPage(PagePurpose::kIndex, ctx.thread_id(), /*table_id=*/0);
  if (current_page_ == kNullPm) {
    return kNullHandle;
  }
  const PmOffset off = arena_->AllocFromPage(current_page_, bytes, align);
  if (off != kNullPm) {
    ctx.TouchStore(arena_->Ptr<void>(off), bytes);
  }
  return off;
}

DramIndexSpace::~DramIndexSpace() {
  for (std::byte* chunk : chunks_) {
    ::operator delete[](chunk, std::align_val_t{kNvmBlockSize});
  }
}

IndexHandle DramIndexSpace::Alloc(ThreadContext& ctx, size_t bytes, size_t align) {
  std::lock_guard<SpinLatch> guard(latch_);
  const size_t aligned_used = (chunk_used_ + align - 1) / align * align;
  if (aligned_used + bytes > kChunkBytes || chunks_.empty()) {
    if (bytes > kChunkBytes) {
      return kNullHandle;
    }
    auto* chunk = static_cast<std::byte*>(
        ::operator new[](kChunkBytes, std::align_val_t{kNvmBlockSize}));
    chunks_.push_back(chunk);
    chunk_used_ = bytes;
    ctx.TouchStore(chunk, bytes);
    return reinterpret_cast<IndexHandle>(chunk);
  }
  std::byte* out = chunks_.back() + aligned_used;
  chunk_used_ = aligned_used + bytes;
  ctx.TouchStore(out, bytes);
  return reinterpret_cast<IndexHandle>(out);
}

}  // namespace falcon
