#include "src/index/hash_index.h"

#include <cstring>
#include <mutex>

#include "src/common/rng.h"

namespace falcon {

namespace {

// The bucket seqlock publishes through `version` (acquire/release): a reader
// that raced a writer discards what it read when the version check fails.
// The racing field accesses themselves still have to be atomic for that to
// be defined behavior (and ThreadSanitizer-clean), so every field a lockless
// reader may observe mid-write goes through these relaxed accessors.
template <typename T>
T SeqLoad(const T& field) {
  return std::atomic_ref<const T>(field).load(std::memory_order_relaxed);
}

template <typename T>
void SeqStore(T& field, T value) {
  std::atomic_ref<T>(field).store(value, std::memory_order_relaxed);
}

}  // namespace

HashIndex::HashIndex(IndexSpace* space, ThreadContext& ctx) : space_(space) {
  root_ = space_->Alloc(ctx, sizeof(Root), alignof(Root));
  auto* r = root();
  r->size.store(0, std::memory_order_relaxed);

  const IndexHandle dir_handle =
      space_->Alloc(ctx, DirectoryBytes(kHashInitialDepth), kCacheLineSize);
  auto* dir = space_->As<Directory>(dir_handle);
  dir->global_depth = kHashInitialDepth;
  for (uint64_t i = 0; i < (1ull << kHashInitialDepth); ++i) {
    const IndexHandle bucket = AllocBucket(ctx, kHashInitialDepth);
    dir->buckets[i] = bucket;
  }
  r->directory.store(dir_handle, std::memory_order_release);
}

HashIndex::HashIndex(IndexSpace* space, IndexHandle root_handle)
    : space_(space), root_(root_handle) {}

IndexHandle HashIndex::AllocBucket(ThreadContext& ctx, uint32_t local_depth) {
  const IndexHandle handle = space_->Alloc(ctx, sizeof(Bucket), kNvmBlockSize);
  if (handle == kNullHandle) {
    return kNullHandle;
  }
  auto* bucket = space_->As<Bucket>(handle);
  bucket->version.store(0, std::memory_order_relaxed);
  bucket->count = 0;
  bucket->local_depth = local_depth;
  return handle;
}

HashIndex::Location HashIndex::Locate(ThreadContext& ctx, uint64_t hash) const {
  Location loc;
  loc.dir = root()->directory.load(std::memory_order_acquire);
  auto* dir = space_->As<Directory>(loc.dir);
  ctx.TouchLoad(dir, sizeof(Directory));
  loc.slot = SlotFor(hash, dir->global_depth);
  // Acquire pairs with the release repoint in SplitBucket: a reader that
  // sees a fresh sibling handle must also see the sibling's contents.
  loc.bucket = std::atomic_ref<const IndexHandle>(dir->buckets[loc.slot])
                   .load(std::memory_order_acquire);
  ctx.TouchLoad(&dir->buckets[loc.slot], sizeof(IndexHandle));
  return loc;
}

bool HashIndex::StillMapped(const Location& loc) const {
  if (root()->directory.load(std::memory_order_acquire) != loc.dir) {
    return false;
  }
  auto* dir = space_->As<Directory>(loc.dir);
  return SeqLoad(dir->buckets[loc.slot]) == loc.bucket;
}

uint32_t HashIndex::LockBucket(Bucket* bucket) {
  for (;;) {
    uint32_t v = bucket->version.load(std::memory_order_acquire);
    if ((v & 1u) == 0 &&
        bucket->version.compare_exchange_weak(v, v + 1, std::memory_order_acquire)) {
      return v;
    }
  }
}

void HashIndex::UnlockBucket(Bucket* bucket) {
  bucket->version.fetch_add(1, std::memory_order_release);
}

void HashIndex::MaybeFlush(ThreadContext& ctx, const void* addr, size_t len) {
  if (flush_writes_ && space_->persistent()) {
    ctx.Sfence();
    ctx.Clwb(addr, len);
  }
}

PmOffset HashIndex::Lookup(ThreadContext& ctx, uint64_t key) {
  const uint64_t hash = Mix64(key);
  for (;;) {
    const Location loc = Locate(ctx, hash);
    auto* bucket = space_->As<Bucket>(loc.bucket);
    const uint32_t v1 = bucket->version.load(std::memory_order_acquire);
    if ((v1 & 1u) != 0) {
      continue;  // writer active
    }
    PmOffset result = kNullPm;
    const uint32_t count = SeqLoad(bucket->count);
    ctx.TouchLoad(bucket, sizeof(Bucket));
    for (uint32_t i = 0; i < count && i < kHashBucketEntries; ++i) {
      if (SeqLoad(bucket->entries[i].key) == key) {
        result = SeqLoad(bucket->entries[i].value);
        break;
      }
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (bucket->version.load(std::memory_order_acquire) == v1 && StillMapped(loc)) {
      return result;
    }
  }
}

Status HashIndex::Insert(ThreadContext& ctx, uint64_t key, PmOffset value) {
  const uint64_t hash = Mix64(key);
  for (;;) {
    const Location loc = Locate(ctx, hash);
    auto* bucket = space_->As<Bucket>(loc.bucket);
    LockBucket(bucket);
    if (!StillMapped(loc)) {
      UnlockBucket(bucket);
      continue;
    }
    for (uint32_t i = 0; i < bucket->count; ++i) {
      if (bucket->entries[i].key == key) {
        UnlockBucket(bucket);
        return Status::kDuplicate;
      }
    }
    if (bucket->count < kHashBucketEntries) {
      SeqStore(bucket->entries[bucket->count].key, key);
      SeqStore(bucket->entries[bucket->count].value, value);
      SeqStore(bucket->count, bucket->count + 1);
      ctx.TouchStore(bucket, sizeof(Bucket));
      MaybeFlush(ctx, bucket, sizeof(Bucket));
      UnlockBucket(bucket);
      root()->size.fetch_add(1, std::memory_order_relaxed);
      return Status::kOk;
    }
    UnlockBucket(bucket);
    const Status split_status = SplitBucket(ctx, hash);
    if (!IsOk(split_status)) {
      return split_status;
    }
  }
}

Status HashIndex::Update(ThreadContext& ctx, uint64_t key, PmOffset value) {
  const uint64_t hash = Mix64(key);
  for (;;) {
    const Location loc = Locate(ctx, hash);
    auto* bucket = space_->As<Bucket>(loc.bucket);
    LockBucket(bucket);
    if (!StillMapped(loc)) {
      UnlockBucket(bucket);
      continue;
    }
    for (uint32_t i = 0; i < bucket->count; ++i) {
      if (bucket->entries[i].key == key) {
        SeqStore(bucket->entries[i].value, value);
        ctx.TouchStore(&bucket->entries[i], sizeof(Entry));
        MaybeFlush(ctx, &bucket->entries[i], sizeof(Entry));
        UnlockBucket(bucket);
        return Status::kOk;
      }
    }
    UnlockBucket(bucket);
    return Status::kNotFound;
  }
}

Status HashIndex::Remove(ThreadContext& ctx, uint64_t key) {
  const uint64_t hash = Mix64(key);
  for (;;) {
    const Location loc = Locate(ctx, hash);
    auto* bucket = space_->As<Bucket>(loc.bucket);
    LockBucket(bucket);
    if (!StillMapped(loc)) {
      UnlockBucket(bucket);
      continue;
    }
    for (uint32_t i = 0; i < bucket->count; ++i) {
      if (bucket->entries[i].key == key) {
        SeqStore(bucket->entries[i].key, bucket->entries[bucket->count - 1].key);
        SeqStore(bucket->entries[i].value, bucket->entries[bucket->count - 1].value);
        SeqStore(bucket->count, bucket->count - 1);
        ctx.TouchStore(bucket, sizeof(Bucket));
        MaybeFlush(ctx, bucket, sizeof(Bucket));
        UnlockBucket(bucket);
        root()->size.fetch_sub(1, std::memory_order_relaxed);
        return Status::kOk;
      }
    }
    UnlockBucket(bucket);
    return Status::kNotFound;
  }
}

Status HashIndex::SplitBucket(ThreadContext& ctx, uint64_t hash) {
  std::lock_guard<SpinLatch> resize_guard(resize_latch_);

  // Re-locate under the latch; another thread may already have split.
  Location loc = Locate(ctx, hash);
  auto* bucket = space_->As<Bucket>(loc.bucket);
  LockBucket(bucket);
  if (!StillMapped(loc) || bucket->count < kHashBucketEntries) {
    UnlockBucket(bucket);
    return Status::kOk;  // progress happened elsewhere; caller retries
  }

  auto* dir = space_->As<Directory>(loc.dir);
  if (bucket->local_depth == dir->global_depth) {
    // Double the directory: allocate a new one with every entry duplicated,
    // then atomically swap the root pointer. The old directory is retired
    // (never reused — readers may still be traversing it).
    const uint64_t new_depth = dir->global_depth + 1;
    const IndexHandle new_dir_handle =
        space_->Alloc(ctx, DirectoryBytes(new_depth), kCacheLineSize);
    if (new_dir_handle == kNullHandle) {
      UnlockBucket(bucket);
      return Status::kNoSpace;
    }
    auto* new_dir = space_->As<Directory>(new_dir_handle);
    new_dir->global_depth = new_depth;
    for (uint64_t i = 0; i < (1ull << dir->global_depth); ++i) {
      new_dir->buckets[2 * i] = dir->buckets[i];
      new_dir->buckets[2 * i + 1] = dir->buckets[i];
    }
    ctx.TouchStore(new_dir, DirectoryBytes(new_depth));
    MaybeFlush(ctx, new_dir, DirectoryBytes(new_depth));
    root()->directory.store(new_dir_handle, std::memory_order_release);
    loc.dir = new_dir_handle;
    loc.slot = SlotFor(hash, new_depth);
    dir = new_dir;
  }

  // Split: entries whose next depth bit is 1 move to the sibling.
  const uint32_t old_depth = bucket->local_depth;
  const IndexHandle sibling_handle = AllocBucket(ctx, old_depth + 1);
  if (sibling_handle == kNullHandle) {
    UnlockBucket(bucket);
    return Status::kNoSpace;
  }
  auto* sibling = space_->As<Bucket>(sibling_handle);
  bucket->local_depth = old_depth + 1;

  // The sibling is unpublished until the directory repoint below, so plain
  // stores to it are fine; the old bucket stays visible to lockless readers
  // throughout the split and needs the seqlock accessors.
  uint32_t kept = 0;
  for (uint32_t i = 0; i < bucket->count; ++i) {
    const Entry entry{bucket->entries[i].key, bucket->entries[i].value};
    const uint64_t entry_hash = Mix64(entry.key);
    const bool to_sibling = ((entry_hash >> (63 - old_depth)) & 1u) != 0;
    if (to_sibling) {
      sibling->entries[sibling->count++] = entry;
    } else {
      SeqStore(bucket->entries[kept].key, entry.key);
      SeqStore(bucket->entries[kept].value, entry.value);
      ++kept;
    }
  }
  SeqStore(bucket->count, kept);
  ctx.TouchStore(bucket, sizeof(Bucket));
  ctx.TouchStore(sibling, sizeof(Bucket));
  MaybeFlush(ctx, bucket, sizeof(Bucket));
  MaybeFlush(ctx, sibling, sizeof(Bucket));

  // Repoint the directory entries in the bucket's range whose bit at
  // position old_depth (from the top) is 1.
  const uint64_t depth_gap = dir->global_depth - old_depth;
  const uint64_t range_start = (loc.slot >> depth_gap) << depth_gap;
  const uint64_t range_size = 1ull << depth_gap;
  for (uint64_t i = 0; i < range_size; ++i) {
    if ((i >> (depth_gap - 1)) & 1u) {
      std::atomic_ref<IndexHandle>(dir->buckets[range_start + i])
          .store(sibling_handle, std::memory_order_release);
    }
  }
  ctx.TouchStore(&dir->buckets[range_start], range_size * sizeof(IndexHandle));
  MaybeFlush(ctx, &dir->buckets[range_start], range_size * sizeof(IndexHandle));

  UnlockBucket(bucket);
  return Status::kOk;
}

Status HashIndex::Scan(ThreadContext& ctx, uint64_t start_key, uint64_t end_key, size_t limit,
                       std::vector<IndexEntry>& out) {
  (void)ctx;
  (void)start_key;
  (void)end_key;
  (void)limit;
  (void)out;
  // Hash indexes have no key order (paper: NBTree is used where TPC-C needs
  // scans).
  return Status::kInvalidArgument;
}

void HashIndex::Recover(ThreadContext& ctx) {
  // Mirrors Dash's Recovery(): structural state is already persistent; only
  // latch bits left by in-flight writers need clearing.
  const IndexHandle dir_handle = root()->directory.load(std::memory_order_acquire);
  auto* dir = space_->As<Directory>(dir_handle);
  ctx.TouchLoad(dir, sizeof(Directory));
  uint64_t entries = 0;
  IndexHandle prev = kNullHandle;
  for (uint64_t i = 0; i < (1ull << dir->global_depth); ++i) {
    const IndexHandle handle = dir->buckets[i];
    if (handle == prev) {
      continue;  // contiguous duplicate pointers (local depth < global)
    }
    prev = handle;
    auto* bucket = space_->As<Bucket>(handle);
    const uint32_t v = bucket->version.load(std::memory_order_relaxed);
    if ((v & 1u) != 0) {
      bucket->version.store(v + 1, std::memory_order_relaxed);
      ctx.TouchStore(bucket, sizeof(uint32_t));
    }
    entries += bucket->count;
  }
  root()->size.store(entries, std::memory_order_relaxed);
}

uint64_t HashIndex::Size() const { return root()->size.load(std::memory_order_relaxed); }

}  // namespace falcon
