#include "src/index/art_index.h"

#include <cstring>
#include <mutex>

namespace falcon {

namespace {

// Seqlock helpers (writers always hold the structural latch, so plain
// lock/unlock suffices — the version only guards readers).
uint32_t StableVersion(const std::atomic<uint32_t>& version) {
  for (;;) {
    const uint32_t v = version.load(std::memory_order_acquire);
    if ((v & 1u) == 0) {
      return v;
    }
  }
}

struct NodeLock {
  explicit NodeLock(std::atomic<uint32_t>& version) : version_(version) {
    version_.fetch_add(1, std::memory_order_acquire);
  }
  ~NodeLock() { version_.fetch_add(1, std::memory_order_release); }
  std::atomic<uint32_t>& version_;
};

}  // namespace

ArtIndex::ArtIndex(IndexSpace* space, ThreadContext& ctx) : space_(space) {
  root_ = space_->Alloc(ctx, sizeof(Root), alignof(Root));
  auto* r = root();
  r->node.store(kNullHandle, std::memory_order_relaxed);
  r->size.store(0, std::memory_order_release);
}

ArtIndex::ArtIndex(IndexSpace* space, IndexHandle root_handle)
    : space_(space), root_(root_handle) {}

IndexHandle ArtIndex::AllocLeaf(ThreadContext& ctx, uint64_t key, uint64_t value) {
  const IndexHandle h = space_->Alloc(ctx, sizeof(Leaf), kCacheLineSize);
  if (h == kNullHandle) {
    return kNullHandle;
  }
  auto* leaf = space_->As<Leaf>(h);
  leaf->header.version.store(0, std::memory_order_relaxed);
  leaf->header.type = static_cast<uint8_t>(NodeType::kLeaf);
  leaf->header.prefix_len = 0;
  leaf->header.count = 0;
  leaf->key = key;
  leaf->value = value;
  return h;
}

IndexHandle ArtIndex::AllocNode(ThreadContext& ctx, NodeType type) {
  size_t bytes = 0;
  switch (type) {
    case NodeType::kN4:
      bytes = sizeof(Node4);
      break;
    case NodeType::kN16:
      bytes = sizeof(Node16);
      break;
    case NodeType::kN48:
      bytes = sizeof(Node48);
      break;
    case NodeType::kN256:
      bytes = sizeof(Node256);
      break;
    case NodeType::kLeaf:
      return kNullHandle;
  }
  const IndexHandle h = space_->Alloc(ctx, bytes, kCacheLineSize);
  if (h == kNullHandle) {
    return kNullHandle;
  }
  std::memset(space_->Ptr(h), 0, bytes);
  auto* header = Header(h);
  header->type = static_cast<uint8_t>(type);
  return h;
}

IndexHandle ArtIndex::FindChild(const NodeHeader* node, uint8_t byte) const {
  switch (static_cast<NodeType>(node->type)) {
    case NodeType::kN4: {
      const auto* n = reinterpret_cast<const Node4*>(node);
      for (uint16_t i = 0; i < node->count; ++i) {
        if (n->keys[i] == byte) {
          return n->children[i];
        }
      }
      return kNullHandle;
    }
    case NodeType::kN16: {
      const auto* n = reinterpret_cast<const Node16*>(node);
      for (uint16_t i = 0; i < node->count; ++i) {
        if (n->keys[i] == byte) {
          return n->children[i];
        }
      }
      return kNullHandle;
    }
    case NodeType::kN48: {
      const auto* n = reinterpret_cast<const Node48*>(node);
      const uint8_t slot = n->index[byte];
      return slot == 0 ? kNullHandle : n->children[slot - 1];
    }
    case NodeType::kN256: {
      const auto* n = reinterpret_cast<const Node256*>(node);
      return n->children[byte];
    }
    case NodeType::kLeaf:
      return kNullHandle;
  }
  return kNullHandle;
}

IndexHandle ArtIndex::AddChild(ThreadContext& ctx, IndexHandle node_handle, uint8_t byte,
                               IndexHandle child) {
  NodeHeader* header = Header(node_handle);
  const auto type = static_cast<NodeType>(header->type);

  // Grow when full: copy into the next-larger layout. The old node is
  // retired in place (readers mid-traversal still see a consistent, merely
  // stale, view and re-validate against the parent).
  const uint16_t capacity =
      type == NodeType::kN4 ? 4 : type == NodeType::kN16 ? 16 : type == NodeType::kN48 ? 48 : 256;
  if (header->count == capacity && type != NodeType::kN256) {
    const NodeType next = type == NodeType::kN4    ? NodeType::kN16
                          : type == NodeType::kN16 ? NodeType::kN48
                                                   : NodeType::kN256;
    const IndexHandle grown_handle = AllocNode(ctx, next);
    if (grown_handle == kNullHandle) {
      return kNullHandle;
    }
    NodeHeader* grown = Header(grown_handle);
    grown->prefix_len = header->prefix_len;
    std::memcpy(grown->prefix, header->prefix, sizeof(header->prefix));
    // Re-insert every existing child into the larger node.
    for (uint32_t b = 0; b < 256; ++b) {
      const IndexHandle existing = FindChild(header, static_cast<uint8_t>(b));
      if (existing != kNullHandle) {
        AddChild(ctx, grown_handle, static_cast<uint8_t>(b), existing);
      }
    }
    AddChild(ctx, grown_handle, byte, child);
    ctx.TouchStore(grown, sizeof(Node256));
    MaybeFlush(ctx, grown, sizeof(Node256));
    return grown_handle;
  }

  NodeLock lock(header->version);
  switch (type) {
    case NodeType::kN4: {
      auto* n = space_->As<Node4>(node_handle);
      n->keys[header->count] = byte;
      n->children[header->count] = child;
      break;
    }
    case NodeType::kN16: {
      auto* n = space_->As<Node16>(node_handle);
      n->keys[header->count] = byte;
      n->children[header->count] = child;
      break;
    }
    case NodeType::kN48: {
      auto* n = space_->As<Node48>(node_handle);
      uint8_t slot = 0;
      while (n->children[slot] != kNullHandle) {
        ++slot;
      }
      n->children[slot] = child;
      n->index[byte] = static_cast<uint8_t>(slot + 1);
      break;
    }
    case NodeType::kN256: {
      auto* n = space_->As<Node256>(node_handle);
      n->children[byte] = child;
      break;
    }
    case NodeType::kLeaf:
      return kNullHandle;
  }
  ++header->count;
  ctx.TouchStore(header, kCacheLineSize);
  MaybeFlush(ctx, header, kCacheLineSize);
  return node_handle;
}

void ArtIndex::ReplaceChild(ThreadContext& ctx, NodeHeader* node, uint8_t byte,
                            IndexHandle child) {
  NodeLock lock(node->version);
  switch (static_cast<NodeType>(node->type)) {
    case NodeType::kN4: {
      auto* n = reinterpret_cast<Node4*>(node);
      for (uint16_t i = 0; i < node->count; ++i) {
        if (n->keys[i] == byte) {
          n->children[i] = child;
        }
      }
      break;
    }
    case NodeType::kN16: {
      auto* n = reinterpret_cast<Node16*>(node);
      for (uint16_t i = 0; i < node->count; ++i) {
        if (n->keys[i] == byte) {
          n->children[i] = child;
        }
      }
      break;
    }
    case NodeType::kN48: {
      auto* n = reinterpret_cast<Node48*>(node);
      n->children[n->index[byte] - 1] = child;
      break;
    }
    case NodeType::kN256: {
      auto* n = reinterpret_cast<Node256*>(node);
      n->children[byte] = child;
      break;
    }
    case NodeType::kLeaf:
      break;
  }
  ctx.TouchStore(node, kCacheLineSize);
  MaybeFlush(ctx, node, kCacheLineSize);
}

void ArtIndex::RemoveChild(ThreadContext& ctx, NodeHeader* node, uint8_t byte) {
  NodeLock lock(node->version);
  switch (static_cast<NodeType>(node->type)) {
    case NodeType::kN4: {
      auto* n = reinterpret_cast<Node4*>(node);
      for (uint16_t i = 0; i < node->count; ++i) {
        if (n->keys[i] == byte) {
          n->keys[i] = n->keys[node->count - 1];
          n->children[i] = n->children[node->count - 1];
          break;
        }
      }
      break;
    }
    case NodeType::kN16: {
      auto* n = reinterpret_cast<Node16*>(node);
      for (uint16_t i = 0; i < node->count; ++i) {
        if (n->keys[i] == byte) {
          n->keys[i] = n->keys[node->count - 1];
          n->children[i] = n->children[node->count - 1];
          break;
        }
      }
      break;
    }
    case NodeType::kN48: {
      auto* n = reinterpret_cast<Node48*>(node);
      n->children[n->index[byte] - 1] = kNullHandle;
      n->index[byte] = 0;
      break;
    }
    case NodeType::kN256: {
      auto* n = reinterpret_cast<Node256*>(node);
      n->children[byte] = kNullHandle;
      break;
    }
    case NodeType::kLeaf:
      break;
  }
  --node->count;
  ctx.TouchStore(node, kCacheLineSize);
  MaybeFlush(ctx, node, kCacheLineSize);
}

IndexHandle ArtIndex::FindLeaf(ThreadContext& ctx, uint64_t key) const {
  for (int attempt = 0; attempt < 64; ++attempt) {
    IndexHandle h = root()->node.load(std::memory_order_acquire);
    uint32_t depth = 0;
    bool restart = false;
    while (h != kNullHandle) {
      NodeHeader* header = Header(h);
      const uint32_t v = StableVersion(header->version);
      ctx.TouchLoad(header, kCacheLineSize);
      if (static_cast<NodeType>(header->type) == NodeType::kLeaf) {
        auto* leaf = space_->As<Leaf>(h);
        const uint64_t leaf_key = leaf->key;
        if (header->version.load(std::memory_order_acquire) != v) {
          restart = true;
          break;
        }
        return leaf_key == key ? h : kNullHandle;
      }
      // Prefix check.
      bool mismatch = false;
      const uint8_t plen = header->prefix_len;
      for (uint8_t i = 0; i < plen; ++i) {
        if (header->prefix[i] != KeyByte(key, depth + i)) {
          mismatch = true;
          break;
        }
      }
      const uint8_t byte = KeyByte(key, depth + plen);
      const IndexHandle child = mismatch ? kNullHandle : FindChild(header, byte);
      if (header->version.load(std::memory_order_acquire) != v) {
        restart = true;
        break;
      }
      if (mismatch || child == kNullHandle) {
        return kNullHandle;
      }
      depth += plen + 1;
      h = child;
    }
    if (!restart) {
      return kNullHandle;
    }
  }
  return kNullHandle;
}

PmOffset ArtIndex::Lookup(ThreadContext& ctx, uint64_t key) {
  const IndexHandle h = FindLeaf(ctx, key);
  if (h == kNullHandle) {
    return kNullPm;
  }
  auto* leaf = space_->As<Leaf>(h);
  for (;;) {
    const uint32_t v = StableVersion(leaf->header.version);
    const uint64_t value = leaf->value;
    if (leaf->header.version.load(std::memory_order_acquire) == v) {
      return value;
    }
  }
}

Status ArtIndex::Insert(ThreadContext& ctx, uint64_t key, PmOffset value) {
  std::lock_guard<SpinLatch> guard(smo_latch_);

  IndexHandle h = root()->node.load(std::memory_order_acquire);
  if (h == kNullHandle) {
    const IndexHandle leaf = AllocLeaf(ctx, key, value);
    if (leaf == kNullHandle) {
      return Status::kNoSpace;
    }
    root()->node.store(leaf, std::memory_order_release);
    root()->size.fetch_add(1, std::memory_order_relaxed);
    return Status::kOk;
  }

  NodeHeader* parent = nullptr;
  uint8_t parent_byte = 0;
  uint32_t depth = 0;

  for (;;) {
    NodeHeader* header = Header(h);
    ctx.TouchLoad(header, kCacheLineSize);

    if (static_cast<NodeType>(header->type) == NodeType::kLeaf) {
      auto* leaf = space_->As<Leaf>(h);
      if (leaf->key == key) {
        return Status::kDuplicate;
      }
      // Split: a new N4 covering the common bytes of the two keys.
      uint32_t common = depth;
      while (common < 8 && KeyByte(leaf->key, common) == KeyByte(key, common)) {
        ++common;
      }
      const IndexHandle split_handle = AllocNode(ctx, NodeType::kN4);
      const IndexHandle new_leaf = AllocLeaf(ctx, key, value);
      if (split_handle == kNullHandle || new_leaf == kNullHandle) {
        return Status::kNoSpace;
      }
      NodeHeader* split = Header(split_handle);
      split->prefix_len = static_cast<uint8_t>(common - depth);
      for (uint32_t i = depth; i < common; ++i) {
        split->prefix[i - depth] = KeyByte(key, i);
      }
      AddChild(ctx, split_handle, KeyByte(leaf->key, common), h);
      AddChild(ctx, split_handle, KeyByte(key, common), new_leaf);
      if (parent == nullptr) {
        root()->node.store(split_handle, std::memory_order_release);
      } else {
        ReplaceChild(ctx, parent, parent_byte, split_handle);
      }
      root()->size.fetch_add(1, std::memory_order_relaxed);
      return Status::kOk;
    }

    // Prefix divergence: split the compressed path.
    const uint8_t plen = header->prefix_len;
    uint8_t diverge = plen;
    for (uint8_t i = 0; i < plen; ++i) {
      if (header->prefix[i] != KeyByte(key, depth + i)) {
        diverge = i;
        break;
      }
    }
    if (diverge < plen) {
      const IndexHandle split_handle = AllocNode(ctx, NodeType::kN4);
      const IndexHandle new_leaf = AllocLeaf(ctx, key, value);
      if (split_handle == kNullHandle || new_leaf == kNullHandle) {
        return Status::kNoSpace;
      }
      NodeHeader* split = Header(split_handle);
      split->prefix_len = diverge;
      std::memcpy(split->prefix, header->prefix, diverge);
      const uint8_t old_edge = header->prefix[diverge];
      // Copy-on-write truncation: readers may be standing on the old node
      // with a stale depth, so it must never change. The split points at a
      // clone whose prefix starts past the divergence point; the original
      // is retired untouched.
      const IndexHandle truncated = CloneTruncated(ctx, h, diverge);
      if (truncated == kNullHandle) {
        return Status::kNoSpace;
      }
      AddChild(ctx, split_handle, old_edge, truncated);
      AddChild(ctx, split_handle, KeyByte(key, depth + diverge), new_leaf);
      if (parent == nullptr) {
        root()->node.store(split_handle, std::memory_order_release);
      } else {
        ReplaceChild(ctx, parent, parent_byte, split_handle);
      }
      root()->size.fetch_add(1, std::memory_order_relaxed);
      return Status::kOk;
    }

    depth += plen;
    const uint8_t byte = KeyByte(key, depth);
    const IndexHandle child = FindChild(header, byte);
    if (child == kNullHandle) {
      const IndexHandle new_leaf = AllocLeaf(ctx, key, value);
      if (new_leaf == kNullHandle) {
        return Status::kNoSpace;
      }
      const IndexHandle updated = AddChild(ctx, h, byte, new_leaf);
      if (updated == kNullHandle) {
        return Status::kNoSpace;
      }
      if (updated != h) {  // the node grew: repoint the parent
        if (parent == nullptr) {
          root()->node.store(updated, std::memory_order_release);
        } else {
          ReplaceChild(ctx, parent, parent_byte, updated);
        }
      }
      root()->size.fetch_add(1, std::memory_order_relaxed);
      return Status::kOk;
    }
    parent = header;
    parent_byte = byte;
    depth += 1;
    h = child;
  }
}

IndexHandle ArtIndex::CloneTruncated(ThreadContext& ctx, IndexHandle old_handle,
                                     uint8_t diverge) {
  NodeHeader* old_header = Header(old_handle);
  const auto type = static_cast<NodeType>(old_header->type);
  size_t bytes = 0;
  switch (type) {
    case NodeType::kN4:
      bytes = sizeof(Node4);
      break;
    case NodeType::kN16:
      bytes = sizeof(Node16);
      break;
    case NodeType::kN48:
      bytes = sizeof(Node48);
      break;
    case NodeType::kN256:
      bytes = sizeof(Node256);
      break;
    case NodeType::kLeaf:
      return kNullHandle;
  }
  const IndexHandle clone_handle = space_->Alloc(ctx, bytes, kCacheLineSize);
  if (clone_handle == kNullHandle) {
    return kNullHandle;
  }
  std::memcpy(space_->Ptr(clone_handle), space_->Ptr(old_handle), bytes);
  NodeHeader* clone = Header(clone_handle);
  clone->version.store(0, std::memory_order_relaxed);
  const uint8_t remaining = static_cast<uint8_t>(old_header->prefix_len - diverge - 1);
  std::memmove(clone->prefix, clone->prefix + diverge + 1, remaining);
  clone->prefix_len = remaining;
  ctx.TouchStore(clone, bytes);
  MaybeFlush(ctx, clone, bytes);
  return clone_handle;
}

Status ArtIndex::Update(ThreadContext& ctx, uint64_t key, PmOffset value) {
  const IndexHandle h = FindLeaf(ctx, key);
  if (h == kNullHandle) {
    return Status::kNotFound;
  }
  auto* leaf = space_->As<Leaf>(h);
  NodeLock lock(leaf->header.version);
  leaf->value = value;
  ctx.TouchStore(&leaf->value, sizeof(uint64_t));
  MaybeFlush(ctx, &leaf->value, sizeof(uint64_t));
  return Status::kOk;
}

Status ArtIndex::Remove(ThreadContext& ctx, uint64_t key) {
  std::lock_guard<SpinLatch> guard(smo_latch_);
  IndexHandle h = root()->node.load(std::memory_order_acquire);
  NodeHeader* parent = nullptr;
  uint8_t parent_byte = 0;
  uint32_t depth = 0;
  while (h != kNullHandle) {
    NodeHeader* header = Header(h);
    ctx.TouchLoad(header, kCacheLineSize);
    if (static_cast<NodeType>(header->type) == NodeType::kLeaf) {
      auto* leaf = space_->As<Leaf>(h);
      if (leaf->key != key) {
        return Status::kNotFound;
      }
      if (parent == nullptr) {
        root()->node.store(kNullHandle, std::memory_order_release);
      } else {
        RemoveChild(ctx, parent, parent_byte);
      }
      root()->size.fetch_sub(1, std::memory_order_relaxed);
      return Status::kOk;
    }
    const uint8_t plen = header->prefix_len;
    for (uint8_t i = 0; i < plen; ++i) {
      if (header->prefix[i] != KeyByte(key, depth + i)) {
        return Status::kNotFound;
      }
    }
    depth += plen;
    const uint8_t byte = KeyByte(key, depth);
    const IndexHandle child = FindChild(header, byte);
    if (child == kNullHandle) {
      return Status::kNotFound;
    }
    parent = header;
    parent_byte = byte;
    depth += 1;
    h = child;
  }
  return Status::kNotFound;
}

bool ArtIndex::CollectRange(ThreadContext& ctx, IndexHandle node_handle, uint64_t start_key,
                            uint64_t end_key, size_t limit,
                            std::vector<IndexEntry>& out) const {
  if (node_handle == kNullHandle) {
    return true;
  }
  NodeHeader* header = Header(node_handle);
  ctx.TouchLoad(header, kCacheLineSize);
  if (static_cast<NodeType>(header->type) == NodeType::kLeaf) {
    auto* leaf = space_->As<Leaf>(node_handle);
    if (leaf->key > end_key) {
      return false;  // in-order traversal: everything after is larger too
    }
    if (leaf->key >= start_key) {
      out.push_back(IndexEntry{leaf->key, leaf->value});
      if (out.size() >= limit) {
        return false;
      }
    }
    return true;
  }
  // Children in ascending byte order => ascending key order.
  for (uint32_t b = 0; b < 256; ++b) {
    const IndexHandle child = FindChild(header, static_cast<uint8_t>(b));
    if (child != kNullHandle &&
        !CollectRange(ctx, child, start_key, end_key, limit, out)) {
      return false;
    }
  }
  return true;
}

Status ArtIndex::Scan(ThreadContext& ctx, uint64_t start_key, uint64_t end_key, size_t limit,
                      std::vector<IndexEntry>& out) {
  // Simplification vs RoART: scans serialize with structural changes.
  std::lock_guard<SpinLatch> guard(smo_latch_);
  CollectRange(ctx, root()->node.load(std::memory_order_acquire), start_key, end_key, limit,
               out);
  return Status::kOk;
}

void ArtIndex::ClearLocks(ThreadContext& ctx, IndexHandle node_handle) {
  if (node_handle == kNullHandle) {
    return;
  }
  NodeHeader* header = Header(node_handle);
  const uint32_t v = header->version.load(std::memory_order_relaxed);
  if ((v & 1u) != 0) {
    header->version.store(v + 1, std::memory_order_relaxed);
    ctx.TouchStore(header, sizeof(uint32_t));
  }
  if (static_cast<NodeType>(header->type) == NodeType::kLeaf) {
    return;
  }
  for (uint32_t b = 0; b < 256; ++b) {
    ClearLocks(ctx, FindChild(header, static_cast<uint8_t>(b)));
  }
}

void ArtIndex::Recover(ThreadContext& ctx) {
  const IndexHandle node = root()->node.load(std::memory_order_acquire);
  ClearLocks(ctx, node);
  // Recount entries (the size counter may be stale after a crash).
  std::vector<IndexEntry> all;
  CollectRange(ctx, node, 0, UINT64_MAX, SIZE_MAX, all);
  root()->size.store(all.size(), std::memory_order_relaxed);
}

uint64_t ArtIndex::Size() const { return root()->size.load(std::memory_order_relaxed); }

void ArtIndex::MaybeFlush(ThreadContext& ctx, const void* addr, size_t len) {
  if (flush_writes_ && space_->persistent()) {
    ctx.Sfence();
    ctx.Clwb(addr, len);
  }
}

}  // namespace falcon
