#include "src/index/btree_index.h"

#include <cstring>
#include <mutex>
#include <vector>

namespace falcon {

BTreeIndex::BTreeIndex(IndexSpace* space, ThreadContext& ctx) : space_(space) {
  root_ = space_->Alloc(ctx, sizeof(Root), alignof(Root));
  auto* r = root();
  r->size.store(0, std::memory_order_relaxed);
  const IndexHandle leaf = AllocNode(ctx, /*level=*/0);
  r->node.store(leaf, std::memory_order_release);
}

BTreeIndex::BTreeIndex(IndexSpace* space, IndexHandle root_handle)
    : space_(space), root_(root_handle) {}

IndexHandle BTreeIndex::AllocNode(ThreadContext& ctx, uint16_t level) {
  const IndexHandle handle = space_->Alloc(ctx, sizeof(Node), kNvmBlockSize);
  if (handle == kNullHandle) {
    return kNullHandle;
  }
  Node* node = NodeAt(handle);
  node->version.store(0, std::memory_order_relaxed);
  node->count = 0;
  node->level = level;
  node->next = kNullHandle;
  return handle;
}

uint32_t BTreeIndex::StableVersion(const Node* node) {
  for (;;) {
    const uint32_t v = node->version.load(std::memory_order_acquire);
    if ((v & 1u) == 0) {
      return v;
    }
  }
}

bool BTreeIndex::TryLock(Node* node, uint32_t expected) {
  uint32_t e = expected;
  return node->version.compare_exchange_strong(e, expected + 1, std::memory_order_acquire);
}

void BTreeIndex::Unlock(Node* node) { node->version.fetch_add(1, std::memory_order_release); }

uint32_t BTreeIndex::LowerBound(const Node* node, uint64_t key) {
  uint32_t lo = 0;
  uint32_t hi = node->count;
  while (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    if (node->entries[mid].key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint32_t BTreeIndex::RouteSlot(const Node* node, uint64_t key) {
  const uint32_t lb = LowerBound(node, key);
  if (lb < node->count && node->entries[lb].key == key) {
    return lb;
  }
  return lb == 0 ? 0 : lb - 1;
}

BTreeIndex::LeafRef BTreeIndex::DescendToLeaf(ThreadContext& ctx, uint64_t key) const {
  for (;;) {
    IndexHandle handle = root()->node.load(std::memory_order_acquire);
    Node* node = NodeAt(handle);
    uint32_t version = StableVersion(node);
    bool restart = false;
    while (node->level > 0) {
      const uint32_t slot = RouteSlot(node, key);
      const IndexHandle child = node->entries[slot].value;
      ctx.TouchLoad(node, sizeof(Node));
      Node* child_node = NodeAt(child);
      const uint32_t child_version = StableVersion(child_node);
      // Re-validate the parent only after the child's version is pinned;
      // otherwise a split completing between the two reads could leave us on
      // a leaf that no longer covers `key` (classic OLC hand-over-hand).
      if (node->version.load(std::memory_order_acquire) != version) {
        restart = true;
        break;
      }
      handle = child;
      node = child_node;
      version = child_version;
    }
    if (!restart) {
      return LeafRef{handle, version};
    }
  }
}

PmOffset BTreeIndex::Lookup(ThreadContext& ctx, uint64_t key) {
  for (;;) {
    const LeafRef ref = DescendToLeaf(ctx, key);
    Node* leaf = NodeAt(ref.handle);
    const uint32_t lb = LowerBound(leaf, key);
    PmOffset result = kNullPm;
    if (lb < leaf->count && leaf->entries[lb].key == key) {
      result = leaf->entries[lb].value;
    }
    ctx.TouchLoad(leaf, sizeof(Node));
    std::atomic_thread_fence(std::memory_order_acquire);
    if (leaf->version.load(std::memory_order_acquire) == ref.version) {
      return result;
    }
  }
}

Status BTreeIndex::MutateLeaf(ThreadContext& ctx, uint64_t key, PmOffset value,
                              MutateKind kind) {
  for (;;) {
    const LeafRef ref = DescendToLeaf(ctx, key);
    Node* leaf = NodeAt(ref.handle);
    if (!TryLock(leaf, ref.version)) {
      continue;  // leaf changed under us; re-descend
    }
    const uint32_t lb = LowerBound(leaf, key);
    const bool found = lb < leaf->count && leaf->entries[lb].key == key;

    switch (kind) {
      case MutateKind::kInsert: {
        if (found) {
          Unlock(leaf);
          return Status::kDuplicate;
        }
        if (leaf->count == kBTreeFanout) {
          Unlock(leaf);
          const Status split = SplitForKey(ctx, key);
          if (!IsOk(split)) {
            return split;
          }
          continue;
        }
        std::memmove(&leaf->entries[lb + 1], &leaf->entries[lb],
                     (leaf->count - lb) * sizeof(Entry));
        leaf->entries[lb] = Entry{key, value};
        ++leaf->count;
        ctx.TouchStore(leaf, sizeof(Node));
        MaybeFlush(ctx, leaf, sizeof(Node));
        Unlock(leaf);
        root()->size.fetch_add(1, std::memory_order_relaxed);
        return Status::kOk;
      }
      case MutateKind::kUpdate: {
        if (!found) {
          Unlock(leaf);
          return Status::kNotFound;
        }
        leaf->entries[lb].value = value;
        ctx.TouchStore(&leaf->entries[lb], sizeof(Entry));
        MaybeFlush(ctx, &leaf->entries[lb], sizeof(Entry));
        Unlock(leaf);
        return Status::kOk;
      }
      case MutateKind::kRemove: {
        if (!found) {
          Unlock(leaf);
          return Status::kNotFound;
        }
        std::memmove(&leaf->entries[lb], &leaf->entries[lb + 1],
                     (leaf->count - lb - 1) * sizeof(Entry));
        --leaf->count;
        ctx.TouchStore(leaf, sizeof(Node));
        MaybeFlush(ctx, leaf, sizeof(Node));
        Unlock(leaf);
        root()->size.fetch_sub(1, std::memory_order_relaxed);
        return Status::kOk;
      }
    }
  }
}

Status BTreeIndex::Insert(ThreadContext& ctx, uint64_t key, PmOffset value) {
  return MutateLeaf(ctx, key, value, MutateKind::kInsert);
}

Status BTreeIndex::Update(ThreadContext& ctx, uint64_t key, PmOffset value) {
  return MutateLeaf(ctx, key, value, MutateKind::kUpdate);
}

Status BTreeIndex::Remove(ThreadContext& ctx, uint64_t key) {
  return MutateLeaf(ctx, key, kNullPm, MutateKind::kRemove);
}

Status BTreeIndex::SplitForKey(ThreadContext& ctx, uint64_t key) {
  std::lock_guard<SpinLatch> smo_guard(smo_latch_);

  // Inner nodes only change under smo_latch_, which we hold, so the path
  // collected below is stable except for the leaf itself.
  for (;;) {
    std::vector<IndexHandle> path;
    IndexHandle handle = root()->node.load(std::memory_order_acquire);
    Node* node = NodeAt(handle);
    while (true) {
      path.push_back(handle);
      if (node->level == 0) {
        break;
      }
      handle = node->entries[RouteSlot(node, key)].value;
      ctx.TouchLoad(node, sizeof(Node));
      node = NodeAt(handle);
    }

    Node* leaf = NodeAt(path.back());
    const uint32_t leaf_version = StableVersion(leaf);
    if (!TryLock(leaf, leaf_version)) {
      continue;
    }
    if (leaf->count < kBTreeFanout) {
      Unlock(leaf);
      return Status::kOk;  // another writer already made room
    }

    // Split the leaf: upper half moves to a new right sibling.
    const IndexHandle sibling_handle = AllocNode(ctx, /*level=*/0);
    if (sibling_handle == kNullHandle) {
      Unlock(leaf);
      return Status::kNoSpace;
    }
    Node* sibling = NodeAt(sibling_handle);
    const uint32_t keep = leaf->count / 2;
    sibling->count = leaf->count - keep;
    std::memcpy(sibling->entries, &leaf->entries[keep], sibling->count * sizeof(Entry));
    sibling->next = leaf->next;
    leaf->next = sibling_handle;
    leaf->count = static_cast<uint16_t>(keep);
    ctx.TouchStore(leaf, sizeof(Node));
    ctx.TouchStore(sibling, sizeof(Node));
    MaybeFlush(ctx, sibling, sizeof(Node));
    MaybeFlush(ctx, leaf, sizeof(Node));
    Unlock(leaf);

    // Promote separators bottom-up. Inner nodes are write-locked while
    // modified so concurrent readers retry.
    uint64_t sep_key = sibling->entries[0].key;
    IndexHandle sep_child = sibling_handle;
    for (size_t i = path.size(); i-- > 1;) {
      Node* parent = NodeAt(path[i - 1]);
      const uint32_t pv = StableVersion(parent);
      TryLock(parent, pv);  // cannot fail: inner nodes only change under smo

      if (parent->count < kBTreeFanout) {
        const uint32_t pos = LowerBound(parent, sep_key);
        std::memmove(&parent->entries[pos + 1], &parent->entries[pos],
                     (parent->count - pos) * sizeof(Entry));
        parent->entries[pos] = Entry{sep_key, sep_child};
        ++parent->count;
        ctx.TouchStore(parent, sizeof(Node));
        MaybeFlush(ctx, parent, sizeof(Node));
        Unlock(parent);
        return Status::kOk;
      }

      // Parent is full: split it, then keep promoting.
      const IndexHandle psib_handle = AllocNode(ctx, parent->level);
      if (psib_handle == kNullHandle) {
        Unlock(parent);
        return Status::kNoSpace;
      }
      Node* psib = NodeAt(psib_handle);
      const uint32_t pkeep = parent->count / 2;
      psib->count = parent->count - pkeep;
      std::memcpy(psib->entries, &parent->entries[pkeep], psib->count * sizeof(Entry));
      parent->count = static_cast<uint16_t>(pkeep);
      const uint64_t promoted = psib->entries[0].key;

      Node* target = sep_key < promoted ? parent : psib;
      const uint32_t pos = LowerBound(target, sep_key);
      std::memmove(&target->entries[pos + 1], &target->entries[pos],
                   (target->count - pos) * sizeof(Entry));
      target->entries[pos] = Entry{sep_key, sep_child};
      ++target->count;
      ctx.TouchStore(parent, sizeof(Node));
      ctx.TouchStore(psib, sizeof(Node));
      MaybeFlush(ctx, psib, sizeof(Node));
      MaybeFlush(ctx, parent, sizeof(Node));
      Unlock(parent);

      sep_key = promoted;
      sep_child = psib_handle;
    }

    // The root itself split: grow the tree by one level.
    Node* old_root = NodeAt(path[0]);
    const IndexHandle new_root_handle = AllocNode(ctx, static_cast<uint16_t>(old_root->level + 1));
    if (new_root_handle == kNullHandle) {
      return Status::kNoSpace;
    }
    Node* new_root = NodeAt(new_root_handle);
    new_root->count = 2;
    new_root->entries[0] = Entry{0, path[0]};  // -inf sentinel for the left child
    new_root->entries[1] = Entry{sep_key, sep_child};
    ctx.TouchStore(new_root, sizeof(Node));
    MaybeFlush(ctx, new_root, sizeof(Node));
    root()->node.store(new_root_handle, std::memory_order_release);
    return Status::kOk;
  }
}

Status BTreeIndex::Scan(ThreadContext& ctx, uint64_t start_key, uint64_t end_key, size_t limit,
                        std::vector<IndexEntry>& out) {
  uint64_t cursor = start_key;
  LeafRef ref = DescendToLeaf(ctx, cursor);
  while (out.size() < limit) {
    Node* leaf = NodeAt(ref.handle);
    // Snapshot the leaf under its seqlock.
    Entry local[kBTreeFanout];
    const uint32_t count = leaf->count;
    std::memcpy(local, leaf->entries, sizeof(local));
    const IndexHandle next = leaf->next;
    ctx.TouchLoad(leaf, sizeof(Node));
    std::atomic_thread_fence(std::memory_order_acquire);
    if (leaf->version.load(std::memory_order_acquire) != ref.version) {
      ref = DescendToLeaf(ctx, cursor);  // leaf changed: re-position
      continue;
    }
    for (uint32_t i = 0; i < count && i < kBTreeFanout; ++i) {
      if (local[i].key < cursor) {
        continue;
      }
      if (local[i].key > end_key) {
        return Status::kOk;
      }
      out.push_back(IndexEntry{local[i].key, local[i].value});
      if (out.size() == limit) {
        return Status::kOk;
      }
      cursor = local[i].key + 1;
    }
    if (next == kNullHandle) {
      return Status::kOk;
    }
    ref = LeafRef{next, StableVersion(NodeAt(next))};
  }
  return Status::kOk;
}

void BTreeIndex::Recover(ThreadContext& ctx) {
  // Clear any latch bits left by in-flight writers (BFS over the tree) and
  // recount entries via the leaf chain. The tree is orders of magnitude
  // smaller than the tuple heap, so this stays within the paper's
  // millisecond recovery budget.
  std::vector<IndexHandle> frontier{root()->node.load(std::memory_order_acquire)};
  IndexHandle leftmost = frontier[0];
  while (!frontier.empty()) {
    std::vector<IndexHandle> next_level;
    for (const IndexHandle handle : frontier) {
      Node* node = NodeAt(handle);
      const uint32_t v = node->version.load(std::memory_order_relaxed);
      if ((v & 1u) != 0) {
        node->version.store(v + 1, std::memory_order_relaxed);
        ctx.TouchStore(node, sizeof(uint32_t));
      }
      if (node->level > 0) {
        for (uint32_t i = 0; i < node->count; ++i) {
          next_level.push_back(node->entries[i].value);
        }
        if (handle == leftmost && node->count > 0) {
          // Track the leftmost spine to find the head of the leaf chain.
        }
      }
    }
    if (!next_level.empty()) {
      leftmost = next_level[0];
    }
    frontier = std::move(next_level);
  }

  uint64_t entries = 0;
  IndexHandle handle = leftmost;
  while (handle != kNullHandle) {
    Node* leaf = NodeAt(handle);
    ctx.TouchLoad(leaf, sizeof(Node));
    entries += leaf->count;
    handle = leaf->next;
  }
  root()->size.store(entries, std::memory_order_relaxed);
}

uint64_t BTreeIndex::Size() const { return root()->size.load(std::memory_order_relaxed); }

void BTreeIndex::MaybeFlush(ThreadContext& ctx, const void* addr, size_t len) {
  if (flush_writes_ && space_->persistent()) {
    ctx.Sfence();
    ctx.Clwb(addr, len);
  }
}

}  // namespace falcon
