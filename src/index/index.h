// Index abstraction (paper §5.1 "Index"): u64 key -> tuple offset maps that
// can live either in NVM (instant recovery, the Falcon default) or in DRAM
// (faster, but must be rebuilt by a heap scan after a crash — the ZenS
// configuration).
//
// Two implementations are provided, mirroring the paper's choices:
//   * HashIndex  — Dash-style extendible hashing with 256B buckets
//   * BTreeIndex — NBTree-style B+tree with linked leaves and range scans
//
// Placement is factored out through IndexSpace, so the same data-structure
// code runs over NVM arena pages or malloc'd DRAM.

#ifndef SRC_INDEX_INDEX_H_
#define SRC_INDEX_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/latch.h"
#include "src/common/status.h"
#include "src/pmem/arena.h"
#include "src/sim/thread_context.h"

namespace falcon {

// Allocation handle inside an IndexSpace. 0 is null. For NVM spaces the
// handle is a PmOffset; for DRAM spaces it is the object address.
using IndexHandle = uint64_t;
inline constexpr IndexHandle kNullHandle = 0;

// Node allocator for index structures. Thread safe. Freed nodes are not
// recycled (index nodes are only retired on splits, a negligible volume).
class IndexSpace {
 public:
  virtual ~IndexSpace() = default;

  // Allocates `bytes` aligned to `align`; returns kNullHandle on exhaustion.
  virtual IndexHandle Alloc(ThreadContext& ctx, size_t bytes, size_t align) = 0;
  virtual void* Ptr(IndexHandle handle) const = 0;

  // True if allocations live in the persistent arena.
  virtual bool persistent() const = 0;

  // Handle translation runs on every node visit of every index operation,
  // so the concrete spaces (both of which map handles linearly: NVM is
  // arena base + offset, DRAM is identity) publish their base address and
  // As() skips the virtual dispatch. Ptr() remains the general path.
  template <typename T>
  T* As(IndexHandle handle) const {
    if (linear_) {
      return handle == kNullHandle ? nullptr
                                   : reinterpret_cast<T*>(linear_base_ + handle);
    }
    return static_cast<T*>(Ptr(handle));
  }

 protected:
  uintptr_t linear_base_ = 0;
  bool linear_ = false;
};

// Allocates index nodes from dedicated NVM arena pages.
class NvmIndexSpace final : public IndexSpace {
 public:
  explicit NvmIndexSpace(NvmArena* arena) : arena_(arena) {
    linear_base_ = reinterpret_cast<uintptr_t>(arena_->device()->base());
    linear_ = true;
  }

  IndexHandle Alloc(ThreadContext& ctx, size_t bytes, size_t align) override;
  void* Ptr(IndexHandle handle) const override { return arena_->Ptr<void>(handle); }
  bool persistent() const override { return true; }

 private:
  NvmArena* arena_;
  SpinLatch latch_;
  PmOffset current_page_ = kNullPm;
};

// Allocates index nodes from DRAM chunks owned by the space.
class DramIndexSpace final : public IndexSpace {
 public:
  DramIndexSpace() { linear_ = true; }  // handles are object addresses
  ~DramIndexSpace() override;

  DramIndexSpace(const DramIndexSpace&) = delete;
  DramIndexSpace& operator=(const DramIndexSpace&) = delete;

  IndexHandle Alloc(ThreadContext& ctx, size_t bytes, size_t align) override;
  void* Ptr(IndexHandle handle) const override { return reinterpret_cast<void*>(handle); }
  bool persistent() const override { return false; }

 private:
  static constexpr size_t kChunkBytes = 8ull << 20;

  SpinLatch latch_;
  std::vector<std::byte*> chunks_;
  size_t chunk_used_ = kChunkBytes;  // forces a chunk on first alloc
};

// One scan result entry.
struct IndexEntry {
  uint64_t key = 0;
  PmOffset value = kNullPm;
};

class Index {
 public:
  virtual ~Index() = default;

  // Inserts key -> value. kDuplicate if the key exists.
  virtual Status Insert(ThreadContext& ctx, uint64_t key, PmOffset value) = 0;

  // Returns the value for key, or kNullPm.
  virtual PmOffset Lookup(ThreadContext& ctx, uint64_t key) = 0;

  // Replaces the value of an existing key (out-of-place engines repoint the
  // index at the new version on every update). kNotFound if absent.
  virtual Status Update(ThreadContext& ctx, uint64_t key, PmOffset value) = 0;

  // Removes the key. kNotFound if absent.
  virtual Status Remove(ThreadContext& ctx, uint64_t key) = 0;

  // Collects up to `limit` entries with key in [start_key, end_key],
  // ascending. kInvalidArgument for index types without ordered scans.
  virtual Status Scan(ThreadContext& ctx, uint64_t start_key, uint64_t end_key, size_t limit,
                      std::vector<IndexEntry>& out) = 0;

  // Post-crash fixup for persistent indexes (clear latches). DRAM indexes
  // are instead rebuilt by the recovery manager via heap scan.
  virtual void Recover(ThreadContext& ctx) = 0;

  // Number of keys currently indexed (approximate under concurrency).
  virtual uint64_t Size() const = 0;

  virtual bool persistent() const = 0;

  // When true, every index write is followed by a hinted flush — matching
  // the paper's "All Flush" baselines. No-op for DRAM placements.
  void set_flush_writes(bool flush) { flush_writes_ = flush; }
  bool flush_writes() const { return flush_writes_; }

 protected:
  bool flush_writes_ = false;
};

}  // namespace falcon

#endif  // SRC_INDEX_INDEX_H_
