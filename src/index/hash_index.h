// Dash-style extendible hash index (Lu et al., VLDB '20), simplified.
//
// Buckets are exactly one 256B NVM media block — the amplification-aware
// node sizing the paper cites (§3.2: "256 bytes for a node in B+tree or hash
// bucket"). A directory of bucket handles indexed by the top global_depth
// hash bits grows by doubling; full buckets split by local depth.
//
// Concurrency: per-bucket seqlocks (odd version = write-locked) give
// lock-free reads with validation; splits and directory doubling serialize
// on a resize latch. Readers re-verify the directory mapping after reading a
// bucket, so they can never act on a bucket that moved under them.
//
// Persistence: with an NvmIndexSpace every node lives in the arena, so the
// index recovers instantly after a crash (Recover() only clears latch bits,
// mirroring Dash's Recovery()).

#ifndef SRC_INDEX_HASH_INDEX_H_
#define SRC_INDEX_HASH_INDEX_H_

#include <atomic>

#include "src/index/index.h"

namespace falcon {

inline constexpr uint32_t kHashBucketEntries = 15;
inline constexpr uint32_t kHashInitialDepth = 4;

class HashIndex final : public Index {
 public:
  // Creates a fresh index in `space`. `ctx` is only used for cost charging.
  HashIndex(IndexSpace* space, ThreadContext& ctx);

  // Attaches to an existing index whose root block is at `root` (used when
  // re-opening a persistent index after a crash).
  HashIndex(IndexSpace* space, IndexHandle root);

  // Handle of the root block, stable for the index's lifetime; persistent
  // engines store it in TableMeta::index_root.
  IndexHandle root_handle() const { return root_; }

  Status Insert(ThreadContext& ctx, uint64_t key, PmOffset value) override;
  PmOffset Lookup(ThreadContext& ctx, uint64_t key) override;
  Status Update(ThreadContext& ctx, uint64_t key, PmOffset value) override;
  Status Remove(ThreadContext& ctx, uint64_t key) override;
  Status Scan(ThreadContext& ctx, uint64_t start_key, uint64_t end_key, size_t limit,
              std::vector<IndexEntry>& out) override;
  void Recover(ThreadContext& ctx) override;
  uint64_t Size() const override;
  bool persistent() const override { return space_->persistent(); }

 private:
  struct Entry {
    uint64_t key;
    uint64_t value;
  };

  // One 256B bucket. `version` is a seqlock; `count` entries are valid.
  struct Bucket {
    std::atomic<uint32_t> version;
    uint32_t count;
    uint32_t local_depth;
    uint32_t pad;
    Entry entries[kHashBucketEntries];
  };
  static_assert(sizeof(Bucket) == kNvmBlockSize);

  struct Directory {
    uint64_t global_depth;
    uint64_t pad;
    // 2^global_depth bucket handles follow.
    IndexHandle buckets[1];
  };

  struct Root {
    std::atomic<IndexHandle> directory;
    std::atomic<uint64_t> size;
  };

  static uint64_t SlotFor(uint64_t hash, uint64_t depth) {
    return depth == 0 ? 0 : hash >> (64 - depth);
  }
  static size_t DirectoryBytes(uint64_t depth) {
    return sizeof(Directory) + (((1ull << depth) - 1) * sizeof(IndexHandle));
  }

  Root* root() const { return space_->As<Root>(root_); }

  // Locates the bucket for `hash` and returns {dir_handle, slot, bucket
  // handle}. Charges directory access costs.
  struct Location {
    IndexHandle dir;
    uint64_t slot;
    IndexHandle bucket;
  };
  Location Locate(ThreadContext& ctx, uint64_t hash) const;

  // True if `loc` still maps to the same bucket (validated after reads and
  // after taking a bucket lock).
  bool StillMapped(const Location& loc) const;

  // Spin-locks the bucket's seqlock; returns the pre-lock (even) version.
  static uint32_t LockBucket(Bucket* bucket);
  static void UnlockBucket(Bucket* bucket);

  IndexHandle AllocBucket(ThreadContext& ctx, uint32_t local_depth);

  // Splits the bucket at `loc` (retried by the caller afterwards). Takes the
  // resize latch; doubles the directory first when local == global depth.
  Status SplitBucket(ThreadContext& ctx, uint64_t hash);

  void MaybeFlush(ThreadContext& ctx, const void* addr, size_t len);

  IndexSpace* space_;
  IndexHandle root_ = kNullHandle;
  SpinLatch resize_latch_;
};

}  // namespace falcon

#endif  // SRC_INDEX_HASH_INDEX_H_
