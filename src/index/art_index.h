// RoART-style persistent Adaptive Radix Tree (Ma et al., FAST '21),
// simplified. The paper lists ART as another index family that fits Falcon's
// architecture (§5.1: "Other indexes [22, 39] are also possible under
// Falcon's architecture") because in-place tuple updates never change the
// indexed address.
//
// Keys are u64, traversed big-endian so in-order traversal yields ascending
// key order (enabling range scans). Nodes use the classic adaptive layouts
// (N4 / N16 / N48 / N256) with pessimistic path compression (the full prefix
// bytes are stored inline — at 8-byte keys the prefix always fits).
//
// Concurrency: per-node seqlocks for optimistic reads (same discipline as
// the B+tree); all structural modifications (insert/remove/grow) serialize
// on a tree-level latch. Point lookups are latch-free; scans take the
// structural latch (documented simplification vs RoART).

#ifndef SRC_INDEX_ART_INDEX_H_
#define SRC_INDEX_ART_INDEX_H_

#include <atomic>

#include "src/index/index.h"

namespace falcon {

class ArtIndex final : public Index {
 public:
  ArtIndex(IndexSpace* space, ThreadContext& ctx);
  ArtIndex(IndexSpace* space, IndexHandle root);

  IndexHandle root_handle() const { return root_; }

  Status Insert(ThreadContext& ctx, uint64_t key, PmOffset value) override;
  PmOffset Lookup(ThreadContext& ctx, uint64_t key) override;
  Status Update(ThreadContext& ctx, uint64_t key, PmOffset value) override;
  Status Remove(ThreadContext& ctx, uint64_t key) override;
  Status Scan(ThreadContext& ctx, uint64_t start_key, uint64_t end_key, size_t limit,
              std::vector<IndexEntry>& out) override;
  void Recover(ThreadContext& ctx) override;
  uint64_t Size() const override;
  bool persistent() const override { return space_->persistent(); }

 private:
  enum class NodeType : uint8_t { kN4 = 0, kN16 = 1, kN48 = 2, kN256 = 3, kLeaf = 4 };

  // Common node header. `version` is a seqlock (odd = locked).
  struct NodeHeader {
    std::atomic<uint32_t> version;
    uint8_t type;         // NodeType
    uint8_t prefix_len;   // compressed path bytes below the parent edge
    uint16_t count;       // populated children
    uint8_t prefix[8];
  };

  struct Leaf {
    NodeHeader header;
    uint64_t key;
    uint64_t value;
  };

  struct Node4 {
    NodeHeader header;
    uint8_t keys[4];
    IndexHandle children[4];
  };

  struct Node16 {
    NodeHeader header;
    uint8_t keys[16];
    IndexHandle children[16];
  };

  struct Node48 {
    NodeHeader header;
    uint8_t index[256];  // byte -> child slot + 1 (0 = absent)
    IndexHandle children[48];
  };

  struct Node256 {
    NodeHeader header;
    IndexHandle children[256];
  };

  struct Root {
    std::atomic<IndexHandle> node;  // kNullHandle for an empty tree
    std::atomic<uint64_t> size;
  };

  Root* root() const { return space_->As<Root>(root_); }
  NodeHeader* Header(IndexHandle h) const { return space_->As<NodeHeader>(h); }

  static uint8_t KeyByte(uint64_t key, uint32_t depth) {
    return static_cast<uint8_t>(key >> (56 - depth * 8));
  }

  IndexHandle AllocLeaf(ThreadContext& ctx, uint64_t key, uint64_t value);
  IndexHandle AllocNode(ThreadContext& ctx, NodeType type);

  // Child lookup within one inner node; kNullHandle if absent.
  IndexHandle FindChild(const NodeHeader* node, uint8_t byte) const;

  // Adds a child, growing the node if full. Returns the (possibly new)
  // handle of the node; kNullHandle on allocation failure. Caller holds the
  // structural latch.
  IndexHandle AddChild(ThreadContext& ctx, IndexHandle node_handle, uint8_t byte,
                       IndexHandle child);

  // Replaces the child for `byte`; the entry must exist.
  void ReplaceChild(ThreadContext& ctx, NodeHeader* node, uint8_t byte, IndexHandle child);

  // Removes the child entry for `byte` (no node shrinking; see header note).
  void RemoveChild(ThreadContext& ctx, NodeHeader* node, uint8_t byte);

  // Copy-on-write prefix truncation for path splits: clones `old_handle`
  // with its prefix shifted past byte `diverge` (readers standing on the
  // original must never observe a prefix change).
  IndexHandle CloneTruncated(ThreadContext& ctx, IndexHandle old_handle, uint8_t diverge);

  // Latch-free descent for Lookup; returns the leaf handle or kNullHandle.
  IndexHandle FindLeaf(ThreadContext& ctx, uint64_t key) const;

  // In-order traversal helper for Scan. Caller holds the structural latch.
  bool CollectRange(ThreadContext& ctx, IndexHandle node_handle, uint64_t start_key,
                    uint64_t end_key, size_t limit, std::vector<IndexEntry>& out) const;

  void ClearLocks(ThreadContext& ctx, IndexHandle node_handle);

  void MaybeFlush(ThreadContext& ctx, const void* addr, size_t len);

  IndexSpace* space_;
  IndexHandle root_ = kNullHandle;
  SpinLatch smo_latch_;
};

}  // namespace falcon

#endif  // SRC_INDEX_ART_INDEX_H_
