// NBTree-style persistent B+tree (Zhang et al., VLDB '22), simplified.
//
// Nodes are 512B (two NVM media blocks), leaves are chained for range scans
// (needed by TPC-C OrderStatus/Delivery, paper §5.1: "We also implement scan
// operations for NBTree"). Readers use optimistic seqlock validation and
// never block; leaf-local writers lock only the leaf; structural changes
// (splits, root growth) serialize on an SMO latch.
//
// Simplifications vs NBTree, documented in DESIGN.md: no node merging on
// delete (leaves may become empty but remain chained), and split crash
// consistency relies on the engine injecting crashes at transaction
// boundaries rather than NBTree's log-free split protocol.

#ifndef SRC_INDEX_BTREE_INDEX_H_
#define SRC_INDEX_BTREE_INDEX_H_

#include <atomic>

#include "src/index/index.h"

namespace falcon {

inline constexpr uint32_t kBTreeFanout = 30;

class BTreeIndex final : public Index {
 public:
  // Creates a fresh (empty) tree in `space`.
  BTreeIndex(IndexSpace* space, ThreadContext& ctx);

  // Attaches to an existing tree rooted at `root` (post-crash re-open).
  BTreeIndex(IndexSpace* space, IndexHandle root);

  IndexHandle root_handle() const { return root_; }

  Status Insert(ThreadContext& ctx, uint64_t key, PmOffset value) override;
  PmOffset Lookup(ThreadContext& ctx, uint64_t key) override;
  Status Update(ThreadContext& ctx, uint64_t key, PmOffset value) override;
  Status Remove(ThreadContext& ctx, uint64_t key) override;
  Status Scan(ThreadContext& ctx, uint64_t start_key, uint64_t end_key, size_t limit,
              std::vector<IndexEntry>& out) override;
  void Recover(ThreadContext& ctx) override;
  uint64_t Size() const override;
  bool persistent() const override { return space_->persistent(); }

 private:
  struct Entry {
    uint64_t key;
    uint64_t value;  // tuple offset (leaf) or child handle (inner)
  };

  // 512B node. `version` is a seqlock (odd = write-locked). Inner nodes
  // route key K to the child of the largest separator <= K; entries[0].key
  // acts as a -inf sentinel for the leftmost child.
  struct Node {
    std::atomic<uint32_t> version;
    uint16_t count;
    uint16_t level;    // 0 = leaf
    IndexHandle next;  // right sibling (leaves only)
    uint64_t pad[2];
    Entry entries[kBTreeFanout];
  };
  static_assert(sizeof(Node) == 2 * kNvmBlockSize);

  struct Root {
    std::atomic<IndexHandle> node;
    std::atomic<uint64_t> size;
  };

  Root* root() const { return space_->As<Root>(root_); }
  Node* NodeAt(IndexHandle handle) const { return space_->As<Node>(handle); }

  IndexHandle AllocNode(ThreadContext& ctx, uint16_t level);

  // Stable (validated) read of a node's version; spins past writers.
  static uint32_t StableVersion(const Node* node);

  // Tries to move the seqlock from `expected` (even) to locked; false if the
  // node changed since the caller observed `expected`.
  static bool TryLock(Node* node, uint32_t expected);
  static void Unlock(Node* node);

  // Index of the child covering `key` in inner node `node`.
  static uint32_t RouteSlot(const Node* node, uint64_t key);

  // Position of the first entry with entry.key >= key.
  static uint32_t LowerBound(const Node* node, uint64_t key);

  // Optimistic descent to the leaf covering `key`. Returns {handle, version}
  // of the leaf; retries internally until a consistent path is observed.
  struct LeafRef {
    IndexHandle handle;
    uint32_t version;
  };
  LeafRef DescendToLeaf(ThreadContext& ctx, uint64_t key) const;

  // Leaf-local mutation: calls `mutate(leaf)` with the leaf write-locked,
  // provided the leaf has room (for inserts). Splits on demand.
  enum class MutateKind { kInsert, kUpdate, kRemove };
  Status MutateLeaf(ThreadContext& ctx, uint64_t key, PmOffset value, MutateKind kind);

  // Splits the leaf covering `key` (and any full ancestors). Serialized by
  // smo_latch_. The caller retries its leaf operation afterwards.
  Status SplitForKey(ThreadContext& ctx, uint64_t key);

  void MaybeFlush(ThreadContext& ctx, const void* addr, size_t len);

  IndexSpace* space_;
  IndexHandle root_ = kNullHandle;
  SpinLatch smo_latch_;
};

}  // namespace falcon

#endif  // SRC_INDEX_BTREE_INDEX_H_
