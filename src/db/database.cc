#include "src/db/database.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace falcon {

// ---- Database ------------------------------------------------------------

Database::Database(const DatabaseConfig& cfg) {
  assert(cfg.shards >= 1);
  owned_devices_.reserve(cfg.shards);
  for (uint32_t s = 0; s < cfg.shards; ++s) {
    owned_devices_.push_back(std::make_unique<NvmDevice>(
        cfg.device_bytes_per_shard, cfg.engine.cost_params));
    devices_.push_back(owned_devices_.back().get());
  }
  Open(cfg);
}

Database::Database(const DatabaseConfig& cfg, std::vector<NvmDevice*> devices)
    : devices_(std::move(devices)) {
  assert(devices_.size() == cfg.shards);
  Open(cfg);
}

Database::~Database() = default;

void Database::Open(const DatabaseConfig& cfg) {
  sessions_ = cfg.sessions;
  engines_.reserve(devices_.size());
  if (devices_.size() == 1) {
    // Single shard: the legacy constructor path, including immediate
    // recovery — device traffic stays byte-identical to a bare Engine.
    engines_.push_back(
        std::make_unique<Engine>(devices_[0], cfg.engine, cfg.sessions));
    return;
  }
  for (NvmDevice* dev : devices_) {
    engines_.push_back(std::make_unique<Engine>(dev, cfg.engine, cfg.sessions,
                                                /*defer_recovery=*/true));
  }
  // Resolve prepared-but-undecided 2PC slots before any engine replays:
  // commit iff the coordinator shard holds a durable commit decision for the
  // global transaction id, otherwise presumed abort. (Engines that formatted
  // fresh are not deferred and hold no prepared slots.)
  for (auto& engine : engines_) {
    if (!engine->open_deferred()) {
      continue;
    }
    for (const PreparedTwoPcSlot& p : engine->ScanPreparedTwoPc()) {
      const bool commit = p.has_marker && p.coordinator < engines_.size() &&
                          engines_[p.coordinator]->FindTwoPcCommitDecision(p.gid);
      engine->ResolveTwoPcSlot(p, commit);
    }
  }
  for (auto& engine : engines_) {
    engine->FinishOpen();
  }
}

TableId Database::CreateTable(const SchemaBuilder& schema, IndexKind index_kind) {
  TableId id = kInvalidTable;
  for (size_t s = 0; s < engines_.size(); ++s) {
    const TableId t = engines_[s]->CreateTable(schema, index_kind);
    if (s == 0) {
      id = t;
    } else {
      // Tables are created in lockstep on every shard, so ids agree.
      assert(t == id && "shard catalogs diverged");
      (void)t;
    }
    if (t == kInvalidTable) {
      return kInvalidTable;
    }
  }
  if (id != kInvalidTable && id >= route_shift_.size()) {
    route_shift_.resize(id + 1, 0);
  }
  return id;
}

std::optional<TableId> Database::FindTableId(std::string_view name) const {
  return engines_[0]->FindTableId(name);
}

void Database::SetRouteShift(TableId table, uint32_t shift) {
  if (table >= route_shift_.size()) {
    route_shift_.resize(table + 1, 0);
  }
  route_shift_[table] = shift;
}

bool Database::recovered() const {
  for (const auto& engine : engines_) {
    if (engine->recovery_report().recovered) {
      return true;
    }
  }
  return false;
}

MetricsSnapshot Database::SnapshotMetrics() const {
  MetricsSnapshot total = engines_[0]->SnapshotMetrics();
  for (size_t s = 1; s < engines_.size(); ++s) {
    const MetricsSnapshot shard = engines_[s]->SnapshotMetrics();
    for (const MetricField& field : MetricFieldTable()) {
      const uint64_t sum = MetricValue(total, field) + MetricValue(shard, field);
      std::memcpy(reinterpret_cast<char*>(&total) + field.offset, &sum,
                  sizeof(sum));
    }
    // Shards run concurrently: wall-clock is the slowest worker anywhere,
    // not the sum of the per-shard maxima.
    total.sim_ns_max = std::max(total.sim_ns_max - shard.sim_ns_max,
                                shard.sim_ns_max);
  }
  return total;
}

// ---- DbTxn ---------------------------------------------------------------

DbTxn::DbTxn(Database* db, uint32_t session, bool read_only)
    : db_(db), session_(session), read_only_(read_only), branches_(db->shards()) {}

DbTxn::~DbTxn() {
  // ~Txn rolls back branches still active; frozen or committed branches were
  // already destroyed.
  for (BranchSlot& slot : branches_) {
    DestroyBranch(slot);
  }
}

Txn& DbTxn::Branch(uint32_t shard) {
  BranchSlot& slot = branches_[shard];
  if (!slot.open) {
    Worker& worker = db_->engine(shard).worker(session_);
    ::new (static_cast<void*>(slot.storage))
        Txn(&worker, &worker.scratch_, read_only_);
    slot.open = true;
  }
  return *std::launder(reinterpret_cast<Txn*>(slot.storage));
}

Txn* DbTxn::BranchIfOpen(uint32_t shard) {
  BranchSlot& slot = branches_[shard];
  if (!slot.open) {
    return nullptr;
  }
  return std::launder(reinterpret_cast<Txn*>(slot.storage));
}

void DbTxn::DestroyBranch(BranchSlot& slot) {
  if (!slot.open) {
    return;
  }
  std::launder(reinterpret_cast<Txn*>(slot.storage))->~Txn();
  slot.open = false;
}

void DbTxn::AbortAll() {
  for (BranchSlot& slot : branches_) {
    DestroyBranch(slot);  // ~Txn aborts active branches
  }
  active_ = false;
}

void DbTxn::DestroyAll() {
  for (BranchSlot& slot : branches_) {
    DestroyBranch(slot);
  }
}

uint32_t DbTxn::branches_open() const {
  uint32_t n = 0;
  for (const BranchSlot& slot : branches_) {
    n += slot.open ? 1 : 0;
  }
  return n;
}

Status DbTxn::Read(TableId table, uint64_t key, void* out) {
  return Branch(db_->ShardOf(table, key)).Read(table, key, out);
}

Status DbTxn::ReadColumn(TableId table, uint64_t key, uint32_t column, void* out) {
  return Branch(db_->ShardOf(table, key)).ReadColumn(table, key, column, out);
}

Status DbTxn::UpdateColumn(TableId table, uint64_t key, uint32_t column,
                           const void* value) {
  return Branch(db_->ShardOf(table, key)).UpdateColumn(table, key, column, value);
}

Status DbTxn::UpdatePartial(TableId table, uint64_t key, uint32_t offset,
                            uint32_t len, const void* value) {
  return Branch(db_->ShardOf(table, key))
      .UpdatePartial(table, key, offset, len, value);
}

Status DbTxn::UpdateFull(TableId table, uint64_t key, const void* value) {
  return Branch(db_->ShardOf(table, key)).UpdateFull(table, key, value);
}

Status DbTxn::Insert(TableId table, uint64_t key, const void* data) {
  return Branch(db_->ShardOf(table, key)).Insert(table, key, data);
}

Status DbTxn::Delete(TableId table, uint64_t key) {
  return Branch(db_->ShardOf(table, key)).Delete(table, key);
}

Status DbTxn::Scan(TableId table, uint64_t start_key, uint64_t end_key,
                   size_t limit,
                   const std::function<void(uint64_t, const std::byte*)>& visit) {
  if (db_->shards() == 1) {
    return Branch(0).Scan(table, start_key, end_key, limit, visit);
  }
  // Hash partitioning scatters a key range over every shard: scan them all,
  // merge in key order, truncate to the limit.
  struct Row {
    uint64_t key;
    std::vector<std::byte> data;
  };
  std::vector<Row> rows;
  const uint64_t data_size = db_->engine(0).TupleDataSize(table);
  for (uint32_t shard = 0; shard < db_->shards(); ++shard) {
    const Status st = Branch(shard).Scan(
        table, start_key, end_key, limit,
        [&rows, data_size](uint64_t key, const std::byte* data) {
          rows.push_back(Row{key, std::vector<std::byte>(data, data + data_size)});
        });
    if (st != Status::kOk) {
      return st;
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.key < b.key; });
  if (rows.size() > limit) {
    rows.resize(limit);
  }
  for (const Row& row : rows) {
    visit(row.key, row.data.data());
  }
  return Status::kOk;
}

Status DbTxn::Commit() {
  if (!active_) {
    return Status::kAborted;
  }
  active_ = false;

  // Partition the open branches. A branch a prior operation left inactive
  // cannot happen (operations never self-abort), but guard anyway.
  std::vector<uint32_t> write_shards;
  std::vector<uint32_t> readonly_shards;
  for (uint32_t shard = 0; shard < db_->shards(); ++shard) {
    Txn* txn = BranchIfOpen(shard);
    if (txn == nullptr) {
      continue;
    }
    if (!txn->active_) {
      AbortAll();
      return Status::kAborted;
    }
    if (txn->write_set_.empty()) {
      readonly_shards.push_back(shard);
    } else {
      write_shards.push_back(shard);
    }
  }

  if (write_shards.size() <= 1) {
    // At most one shard has writes: the branch's own commit protocol is the
    // whole story (this is the M = 1 byte-identical path).
    if (!write_shards.empty()) {
      const Status st = Branch(write_shards[0]).Commit();
      if (st != Status::kOk) {
        AbortAll();  // the write branch already rolled back; drop the rest
        return st;
      }
    }
    for (const uint32_t shard : readonly_shards) {
      Branch(shard).Commit();  // empty write set: cannot fail
    }
    DestroyAll();
    return Status::kOk;
  }

  // Two-phase commit. Coordinator = lowest write shard; the global id folds
  // the coordinator shard into its branch tid so any shard's recovery can
  // find the decision slot.
  const uint32_t coord = write_shards[0];
  Txn& coord_txn = Branch(coord);
  const uint64_t gid = (coord_txn.tid() << 8) | coord;

  // Phase one: participants prepare first, coordinator last. A failure
  // anywhere aborts every branch (prepared participants roll back under
  // presumed abort).
  for (size_t i = 1; i < write_shards.size(); ++i) {
    if (Branch(write_shards[i]).Prepare2pc(gid, coord) != Status::kOk) {
      AbortAll();
      return Status::kAborted;
    }
  }
  if (coord_txn.Prepare2pc(gid, coord) != Status::kOk) {
    AbortAll();
    return Status::kAborted;
  }

  // Phase two. The coordinator's durable COMMITTED mark is the commit point:
  // every participant is prepared, so recovery on either side of this store
  // agrees with the outcome.
  coord_txn.MarkDecidedCommit();
  for (size_t i = 1; i < write_shards.size(); ++i) {
    Txn& txn = Branch(write_shards[i]);
    txn.MarkDecidedCommit();
    txn.FinishCommitPrepared();
  }
  for (const uint32_t shard : readonly_shards) {
    Branch(shard).Commit();
  }
  // The coordinator applies and frees its slot only after every participant
  // committed: while any participant is still prepared, the decision record
  // must stay findable.
  coord_txn.FinishCommitPrepared();
  DestroyAll();
  return Status::kOk;
}

void DbTxn::Abort() {
  AbortAll();
}

void DbTxn::Freeze() {
  for (BranchSlot& slot : branches_) {
    if (!slot.open) {
      continue;
    }
    Txn* txn = std::launder(reinterpret_cast<Txn*>(slot.storage));
    // Detach without rollback: the crash already froze engine state, and the
    // scratch arena must be reusable for the post-reopen inspection txns.
    txn->active_ = false;
    txn->scratch_->in_use = false;
    DestroyBranch(slot);
  }
  active_ = false;
}

}  // namespace falcon
