// The Database facade: a thin front door over one or more Engine instances.
//
// A Database hash-partitions every table across M independent engines
// ("shards"), each with its own simulated NVM device, arenas, log windows
// and metrics. Sessions are the unit of client concurrency: session i owns
// worker i of every shard, so a session's transactions never contend with
// another session's over scratch state.
//
// Transactions run through DbTxn, which lazily opens one engine-level Txn
// branch per shard the transaction touches. A transaction whose writes land
// on a single shard commits through the branch's normal Commit() — with
// M = 1 that path is byte-identical to driving the Engine directly. A
// transaction with writes on several shards commits with two-phase commit
// layered on the per-engine commit protocol:
//
//   1. every non-coordinator write branch prepares (durable log append with
//      a kPrepare2pc marker entry + slot state PREPARED),
//   2. the coordinator (lowest write shard) prepares,
//   3. the coordinator's MarkDecidedCommit flips its slot to COMMITTED —
//      that single durable store is the transaction's commit point,
//   4. participants learn the decision, mark COMMITTED and apply,
//   5. read-only branches commit (cannot fail — empty write set),
//   6. the coordinator applies and frees its slot last, so the decision
//      record stays durable while any participant is still prepared.
//
// Recovery (M > 1): engines open with recovery deferred, prepared slots are
// resolved against the coordinator shard's durable decision (presumed abort
// when none is found), then each engine runs its normal replay.

#ifndef SRC_DB_DATABASE_H_
#define SRC_DB_DATABASE_H_

#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <string_view>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/core/config.h"
#include "src/core/engine.h"
#include "src/obs/metrics.h"
#include "src/sim/nvm_device.h"

namespace falcon {

struct DatabaseConfig {
  EngineConfig engine;
  uint32_t shards = 1;    // independent Engine instances (M)
  uint32_t sessions = 1;  // workers per engine; session i = worker i everywhere
  // Capacity of each shard's simulated device (owning constructor only).
  uint64_t device_bytes_per_shard = 256ull << 20;
};

class Database;

// A cross-shard transaction handle. Lives on one session; not thread safe.
// Mirrors the Txn API: operations return Status and never abort the
// transaction themselves — on kAborted the caller calls Abort() (or Commit(),
// which will fail) exactly as with a raw Txn.
class DbTxn {
 public:
  DbTxn(DbTxn&&) = delete;
  DbTxn(const DbTxn&) = delete;
  DbTxn& operator=(const DbTxn&) = delete;
  DbTxn& operator=(DbTxn&&) = delete;

  // Dropped while still active: every open branch rolls back.
  ~DbTxn();

  Status Read(TableId table, uint64_t key, void* out);
  Status ReadColumn(TableId table, uint64_t key, uint32_t column, void* out);
  Status UpdateColumn(TableId table, uint64_t key, uint32_t column, const void* value);
  Status UpdatePartial(TableId table, uint64_t key, uint32_t offset, uint32_t len,
                       const void* value);
  Status UpdateFull(TableId table, uint64_t key, const void* value);
  Status Insert(TableId table, uint64_t key, const void* data);
  Status Delete(TableId table, uint64_t key);

  // Ordered scan (B+tree tables). With several shards the per-shard results
  // are merged in key order and truncated to `limit` before visiting.
  Status Scan(TableId table, uint64_t start_key, uint64_t end_key, size_t limit,
              const std::function<void(uint64_t, const std::byte*)>& visit);

  // Commits every branch: single-write-shard transactions take the branch's
  // normal commit path, multi-shard ones run 2PC (see file comment). On
  // kAborted every branch has rolled back.
  Status Commit();

  // Explicit abort: rolls back every open branch.
  void Abort();

  // Crash-harness hook: detaches every open branch without rolling back,
  // leaving engine state exactly as the simulated power failure froze it.
  void Freeze();

  bool active() const { return active_; }
  // Shards this transaction has opened a branch on (test introspection).
  uint32_t branches_open() const;

 private:
  friend class Database;

  DbTxn(Database* db, uint32_t session, bool read_only);

  // Engine-level Txn branches, lazily constructed per shard. Txn is
  // immovable, so branches live in placement-new storage that never moves
  // (the vector is sized once at construction).
  struct BranchSlot {
    alignas(alignof(Txn)) unsigned char storage[sizeof(Txn)];
    bool open = false;
  };

  Txn& Branch(uint32_t shard);
  Txn* BranchIfOpen(uint32_t shard);
  void DestroyBranch(BranchSlot& slot);
  // Rolls back and destroys every open branch; deactivates the handle.
  void AbortAll();
  // Destroys every open branch without rollback (post-commit cleanup).
  void DestroyAll();

  Database* db_;
  uint32_t session_;
  bool read_only_;
  bool active_ = true;
  std::vector<BranchSlot> branches_;
};

class Database {
 public:
  // Owns the devices: creates `cfg.shards` fresh simulated devices of
  // `cfg.device_bytes_per_shard` each.
  explicit Database(const DatabaseConfig& cfg);

  // Runs over caller-owned devices (crash tests reopen the same devices).
  // devices.size() must equal cfg.shards. Devices already holding a
  // formatted arena are recovered; with M > 1 prepared 2PC slots are
  // resolved against the coordinator shard's decision first.
  Database(const DatabaseConfig& cfg, std::vector<NvmDevice*> devices);

  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Creates the table on every shard (same schema everywhere) and returns
  // the common table id; kInvalidTable on failure.
  TableId CreateTable(const SchemaBuilder& schema, IndexKind index_kind);

  std::optional<TableId> FindTableId(std::string_view name) const;

  // Routing: keys are pre-shifted by the table's route shift, then hashed.
  // A route shift of s colocates keys sharing their top bits above bit s
  // (e.g. TPC-C keys packing the warehouse id high colocate per warehouse).
  // Route shifts are DRAM-only routing policy, not persisted — workloads
  // re-register them after reopen.
  void SetRouteShift(TableId table, uint32_t shift);

  uint32_t ShardOf(TableId table, uint64_t key) const {
    if (engines_.size() == 1) {
      return 0;
    }
    const uint32_t shift =
        table < route_shift_.size() ? route_shift_[table] : 0;
    return static_cast<uint32_t>(Mix64(key >> shift) % engines_.size());
  }

  DbTxn Begin(uint32_t session, bool read_only = false) {
    return DbTxn(this, session, read_only);
  }

  uint32_t shards() const { return static_cast<uint32_t>(engines_.size()); }
  uint32_t sessions() const { return sessions_; }
  Engine& engine(uint32_t shard) { return *engines_[shard]; }
  const Engine& engine(uint32_t shard) const { return *engines_[shard]; }
  const EngineConfig& config() const { return engines_[0]->config(); }

  // True when any shard's open ran recovery (vs a fresh format).
  bool recovered() const;

  // Field-wise sum of every shard's snapshot (sim_ns_max takes the max:
  // shards run concurrently, so the slowest worker anywhere drives time).
  MetricsSnapshot SnapshotMetrics() const;

 private:
  void Open(const DatabaseConfig& cfg);

  std::vector<std::unique_ptr<NvmDevice>> owned_devices_;
  std::vector<NvmDevice*> devices_;
  std::vector<std::unique_ptr<Engine>> engines_;
  uint32_t sessions_ = 1;
  std::vector<uint32_t> route_shift_;  // indexed by TableId; default 0
};

}  // namespace falcon

#endif  // SRC_DB_DATABASE_H_
