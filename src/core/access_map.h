// Per-transaction access-set index: a small open-addressed hash map from
// tuple offset to {held-lock index, pending-write chain head/tail}.
//
// The transaction hot path asks three questions about every tuple it
// touches — "do I hold its lock?", "is it in my write set?", "which of my
// write entries overlay it?" — and a TPC-C New-Order transaction asks them
// ~50 times. Linear scans of the lock/write vectors make the transaction
// quadratic in its access count; this map answers each in O(1) and chains
// same-tuple write entries by index so read-own-writes replays only that
// tuple's entries.
//
// The map is owned by the Worker's scratch arena and cleared (not freed) at
// Begin(). Clearing bumps a generation stamp instead of rewriting the slot
// array, so Begin() costs O(1) no matter how large the table has grown.

#ifndef SRC_CORE_ACCESS_MAP_H_
#define SRC_CORE_ACCESS_MAP_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/pmem/arena.h"

namespace falcon {

class AccessMap {
 public:
  static constexpr uint32_t kNone = UINT32_MAX;

  struct Entry {
    PmOffset tuple = kNullPm;
    uint32_t lock_idx = kNone;    // index into the txn's lock vector
    uint32_t write_head = kNone;  // first write entry for this tuple
    uint32_t write_tail = kNone;  // last write entry (chain append point)
    uint32_t gen = 0;             // slot is live iff gen == map generation
  };

  AccessMap() { slots_.resize(kInitialSlots); }

  // Lookup without insertion; nullptr when the tuple was never accessed.
  // The pointer is invalidated by the next Intern().
  Entry* Find(PmOffset tuple) {
    const size_t mask = slots_.size() - 1;
    size_t pos = Mix64(tuple) & mask;
    for (;;) {
      Entry& e = slots_[pos];
      if (e.gen != gen_) {
        return nullptr;
      }
      if (e.tuple == tuple) {
        return &e;
      }
      pos = (pos + 1) & mask;
    }
  }

  const Entry* Find(PmOffset tuple) const {
    return const_cast<AccessMap*>(this)->Find(tuple);
  }

  // Find-or-insert. The reference is invalidated by the next Intern().
  Entry& Intern(PmOffset tuple) {
    if ((used_ + 1) * 2 > slots_.size()) {
      Grow();
    }
    const size_t mask = slots_.size() - 1;
    size_t pos = Mix64(tuple) & mask;
    for (;;) {
      Entry& e = slots_[pos];
      if (e.gen != gen_) {
        e = Entry{tuple, kNone, kNone, kNone, gen_};
        ++used_;
        return e;
      }
      if (e.tuple == tuple) {
        return e;
      }
      pos = (pos + 1) & mask;
    }
  }

  // Forgets every entry but keeps (bounded) capacity: one transaction with a
  // huge access set must not leave every later transaction probing an
  // oversized table.
  void Clear() {
    high_water_ = used_ > high_water_ ? used_ : high_water_;
    if (slots_.size() > kShrinkSlots && used_ * 8 < slots_.size()) {
      slots_.assign(kShrinkSlots, Entry{});
      gen_ = 1;
    } else if (++gen_ == 0) {
      // Generation wrapped: stale slots could alias the new stamp, so pay
      // for one real wipe (once per 2^32 transactions).
      std::fill(slots_.begin(), slots_.end(), Entry{});
      gen_ = 1;
    }
    used_ = 0;
  }

  size_t size() const { return used_; }
  size_t high_water() const { return high_water_; }

 private:
  static constexpr size_t kInitialSlots = 64;   // covers ~32 accesses
  static constexpr size_t kShrinkSlots = 1024;  // probe-length / memory cap

  void Grow() {
    std::vector<Entry> old = std::move(slots_);
    slots_.assign(old.size() * 2, Entry{});
    const size_t mask = slots_.size() - 1;
    for (const Entry& e : old) {
      if (e.gen != gen_) {
        continue;
      }
      size_t pos = Mix64(e.tuple) & mask;
      while (slots_[pos].gen == gen_) {
        pos = (pos + 1) & mask;
      }
      slots_[pos] = e;
    }
  }

  std::vector<Entry> slots_;
  size_t used_ = 0;
  size_t high_water_ = 0;
  uint32_t gen_ = 1;  // slots start at gen 0 == empty
};

}  // namespace falcon

#endif  // SRC_CORE_ACCESS_MAP_H_
