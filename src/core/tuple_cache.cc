#include "src/core/tuple_cache.h"

#include <cstring>
#include <mutex>

#include "src/common/rng.h"

namespace falcon {

TupleCache::TupleCache(size_t slots, uint32_t max_data) : max_data_(max_data) {
  size_t n = 1;
  while (n < slots) {
    n <<= 1;
  }
  mask_ = n - 1;
  slots_ = std::vector<Slot>(n);
}

TupleCache::Slot& TupleCache::SlotFor(uint64_t table, uint64_t key) {
  return slots_[Mix64(key * 31 + table) & mask_];
}

bool TupleCache::Lookup(ThreadContext& ctx, uint64_t table, uint64_t key, uint64_t version_ts,
                        void* out, uint32_t size) {
  if (size > max_data_) {
    return false;
  }
  Slot& slot = SlotFor(table, key);
  for (int attempt = 0; attempt < 3; ++attempt) {
    const uint32_t v1 = slot.version.load(std::memory_order_acquire);
    if ((v1 & 1u) != 0) {
      continue;
    }
    if (!slot.valid || slot.table != table || slot.key != key || slot.size != size ||
        slot.version_ts != version_ts) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    std::memcpy(out, slot.data.get(), size);
    ctx.TouchLoad(slot.data.get(), size);  // DRAM-latency read
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.version.load(std::memory_order_acquire) == v1) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void TupleCache::Fill(ThreadContext& ctx, uint64_t table, uint64_t key, uint64_t version_ts,
                      const void* data, uint32_t size) {
  if (size > max_data_) {
    return;
  }
  Slot& slot = SlotFor(table, key);
  std::lock_guard<SpinLatch> guard(slot.write_latch);
  if (slot.valid && slot.table == table && slot.key == key && slot.version_ts > version_ts) {
    return;  // never roll a cached tuple back to an older version
  }
  slot.version.fetch_add(1, std::memory_order_acquire);  // odd: writers active
  if (slot.data == nullptr) {
    slot.data = std::make_unique<std::byte[]>(max_data_);
  }
  slot.table = table;
  slot.key = key;
  slot.version_ts = version_ts;
  slot.size = size;
  slot.valid = true;
  std::memcpy(slot.data.get(), data, size);
  ctx.TouchStore(slot.data.get(), size);
  slot.version.fetch_add(1, std::memory_order_release);
}

void TupleCache::Invalidate(ThreadContext& ctx, uint64_t table, uint64_t key) {
  Slot& slot = SlotFor(table, key);
  std::lock_guard<SpinLatch> guard(slot.write_latch);
  if (!slot.valid || slot.table != table || slot.key != key) {
    return;
  }
  slot.version.fetch_add(1, std::memory_order_acquire);
  slot.valid = false;
  ctx.TouchStore(&slot.valid, sizeof(bool));
  slot.version.fetch_add(1, std::memory_order_release);
}

void TupleCache::Clear() {
  for (Slot& slot : slots_) {
    std::lock_guard<SpinLatch> guard(slot.write_latch);
    slot.version.fetch_add(1, std::memory_order_acquire);
    slot.valid = false;
    slot.version.fetch_add(1, std::memory_order_release);
  }
}

}  // namespace falcon
