#include "src/core/engine.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "src/cc/locks.h"
#include "src/index/art_index.h"
#include "src/index/btree_index.h"
#include "src/index/hash_index.h"
#include "src/storage/table.h"

namespace falcon {

namespace {

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

// ---- Worker ---------------------------------------------------------------

Worker::Worker(Engine* engine, uint32_t id, PmOffset log_base)
    : engine_(engine),
      id_(id),
      ctx_(id, engine->device(), engine->config().cache_geometry, engine->config().cost_params),
      hot_(engine->config().hot_tuple_capacity),
      versions_(engine->config().version_gc_threshold) {
  const EngineConfig& cfg = engine->config();
  const bool flush_log = LogIsFlushed(cfg.log_mode);
  // Log-free (out-of-place) engines still keep a small slot per thread: the
  // commit record plus explicit delete entries (deletes have no replacement
  // version in the heap for recovery to find).
  const uint64_t slot_bytes =
      cfg.log_mode == LogMode::kNone ? kCacheLineSize * 8 : cfg.log_slot_bytes;
  const uint32_t slots = cfg.log_mode == LogMode::kNone
                             ? std::max(4u, cfg.batch_size + 1)
                             : cfg.EffectiveLogSlots();
  log_ = std::make_unique<LogWindow>(&engine->arena(), log_base, slots, slot_bytes, flush_log);
}

Txn Worker::Begin(bool read_only) { return Txn(this, &scratch_, read_only); }

void Worker::PublishTid(uint64_t tid) {
  active_frame_tids_.push_back(tid);
  engine_->active_tids_.Publish(id_, active_frame_tids_.front());
}

void Worker::RetireTid(uint64_t tid) {
  for (size_t i = 0; i < active_frame_tids_.size(); ++i) {
    if (active_frame_tids_[i] == tid) {
      active_frame_tids_.erase(active_frame_tids_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  if (active_frame_tids_.empty()) {
    engine_->active_tids_.Clear(id_);
  } else {
    engine_->active_tids_.Publish(id_, active_frame_tids_.front());
  }
}

void Worker::ResetStats() {
  stats_ = WorkerStats{};
  ctx_.ResetClock();
  log_->ResetStats();
  hot_.ResetStats();
  versions_.ResetStats();
}

// ---- Engine lifecycle -----------------------------------------------------

Engine::Engine(NvmDevice* device, EngineConfig config, uint32_t workers, bool defer_recovery)
    : device_(device),
      config_(std::move(config)),
      arena_(NvmArena::IsFormatted(*device) ? NvmArena::Open(device) : NvmArena::Format(device)) {
  if (config_.index_placement == IndexPlacement::kNvm) {
    index_space_ = std::make_unique<NvmIndexSpace>(&arena_);
  } else {
    index_space_ = std::make_unique<DramIndexSpace>();
  }
  Superblock* sb = GetSuperblock(arena_);
  if (sb->worker_count == 0) {
    FormatFresh(workers);
  } else if (defer_recovery) {
    // Database-layer 2PC resolution runs between now and FinishOpen(); no
    // tables or workers exist until then.
    open_deferred_ = true;
    deferred_workers_ = workers;
  } else {
    OpenExisting(workers);
  }
  if (!open_deferred_ && Tracer::EnabledByEnv()) {
    EnableTracing();
  }
}

void Engine::FinishOpen() {
  if (!open_deferred_) {
    return;
  }
  open_deferred_ = false;
  OpenExisting(deferred_workers_);
  if (Tracer::EnabledByEnv()) {
    EnableTracing();
  }
}

void Engine::EnableTracing(size_t capacity_per_thread) {
  tracer_.Enable(worker_count(), capacity_per_thread);
  for (uint32_t t = 0; t < worker_count(); ++t) {
    workers_[t]->set_trace(tracer_.ring(t));
  }
}

Engine::~Engine() = default;

// Per-worker log-slot geometry. Must mirror the Worker constructor.
namespace {
struct SlotGeometry {
  uint32_t slots;
  uint64_t slot_bytes;
};

SlotGeometry SlotGeometryFor(const EngineConfig& cfg) {
  const uint64_t slot_bytes =
      cfg.log_mode == LogMode::kNone ? kCacheLineSize * 8 : cfg.log_slot_bytes;
  const uint32_t slots = cfg.log_mode == LogMode::kNone
                             ? std::max(4u, cfg.batch_size + 1)
                             : cfg.EffectiveLogSlots();
  return {slots, slot_bytes};
}
}  // namespace

// Bytes of one worker's log region given the engine configuration.
static uint64_t LogRegionBytes(const EngineConfig& cfg) {
  const SlotGeometry geo = SlotGeometryFor(cfg);
  return LogWindow::RegionBytes(geo.slots, geo.slot_bytes);
}

// ---- Two-phase commit resolution (pre-recovery, Database layer) ------------
//
// These walk the raw log regions straight off the superblock so they work on
// a deferred-open engine, before AttachWorkers/AttachTable ran. Resolution
// must happen before replay: out-of-place recovery's winner scan would
// otherwise classify a prepared transaction's versions as losers and
// tombstone them, making a post-replay commit decision unapplyable.

std::vector<PreparedTwoPcSlot> Engine::ScanPreparedTwoPc() const {
  std::vector<PreparedTwoPcSlot> out;
  Superblock* sb = GetSuperblock(arena_);
  const SlotGeometry geo = SlotGeometryFor(config_);
  for (uint32_t t = 0; t < sb->worker_count; ++t) {
    for (uint32_t s = 0; s < geo.slots; ++s) {
      auto* slot = arena_.Ptr<LogSlotHeader>(sb->log_windows[t] +
                                             static_cast<uint64_t>(s) * geo.slot_bytes);
      if (static_cast<SlotState>(slot->state.load(std::memory_order_acquire)) !=
          SlotState::kPrepared) {
        continue;
      }
      PreparedTwoPcSlot p;
      p.worker = t;
      p.slot = s;
      p.tid = slot->tid;
      const std::byte* payload = LogWindow::SlotPayload(slot);
      uint64_t pos = 0;
      for (uint64_t e = 0; e < slot->entry_count; ++e) {
        LogEntryHeader entry;
        std::memcpy(&entry, payload + pos, sizeof(entry));
        pos += sizeof(entry) + entry.len;
        if (entry.table_id == kInvalidTable &&
            static_cast<LogOpKind>(entry.kind) == LogOpKind::kPrepare2pc) {
          p.gid = entry.key;
          p.coordinator = entry.offset;
          p.has_marker = true;
        }
      }
      out.push_back(p);
    }
  }
  return out;
}

bool Engine::FindTwoPcCommitDecision(uint64_t gid) const {
  Superblock* sb = GetSuperblock(arena_);
  const SlotGeometry geo = SlotGeometryFor(config_);
  for (uint32_t t = 0; t < sb->worker_count; ++t) {
    for (uint32_t s = 0; s < geo.slots; ++s) {
      auto* slot = arena_.Ptr<LogSlotHeader>(sb->log_windows[t] +
                                             static_cast<uint64_t>(s) * geo.slot_bytes);
      if (static_cast<SlotState>(slot->state.load(std::memory_order_acquire)) !=
          SlotState::kCommitted) {
        continue;
      }
      const std::byte* payload = LogWindow::SlotPayload(slot);
      uint64_t pos = 0;
      for (uint64_t e = 0; e < slot->entry_count; ++e) {
        LogEntryHeader entry;
        std::memcpy(&entry, payload + pos, sizeof(entry));
        pos += sizeof(entry) + entry.len;
        if (entry.table_id == kInvalidTable &&
            static_cast<LogOpKind>(entry.kind) == LogOpKind::kPrepare2pc &&
            entry.key == gid) {
          return true;
        }
      }
    }
  }
  return false;
}

void Engine::ResolveTwoPcSlot(const PreparedTwoPcSlot& p, bool commit) {
  Superblock* sb = GetSuperblock(arena_);
  const SlotGeometry geo = SlotGeometryFor(config_);
  auto* slot = arena_.Ptr<LogSlotHeader>(sb->log_windows[p.worker] +
                                         static_cast<uint64_t>(p.slot) * geo.slot_bytes);
  slot->state.store(
      static_cast<uint64_t>(commit ? SlotState::kCommitted : SlotState::kUncommitted),
      std::memory_order_release);
}

void Engine::FormatFresh(uint32_t workers) {
  Superblock* sb = GetSuperblock(arena_);
  sb->worker_count = workers;
  lock_gen_ = sb->generation.load(std::memory_order_relaxed);

  ThreadContext setup_ctx(0, device_, config_.cache_geometry, config_.cost_params);
  const uint64_t region = LogRegionBytes(config_);
  for (uint32_t t = 0; t < workers; ++t) {
    const uint64_t pages = (region + kPageDataStart + kPageSize - 1) / kPageSize;
    const PmOffset base = arena_.AllocContiguousPages(pages, PagePurpose::kLogWindow, t, 0);
    sb->log_windows[t] = base + kPageDataStart;
    // Zero the slot headers so every slot starts kFree.
    std::memset(arena_.Ptr<void>(sb->log_windows[t]), 0, region);
  }
  AttachWorkers(workers);
}

void Engine::OpenExisting(uint32_t workers) {
  const auto t_start = std::chrono::steady_clock::now();
  RecoveryReport report;
  report.recovered = true;

  Superblock* sb = GetSuperblock(arena_);
  if (sb->worker_count != workers) {
    // Recovery must reuse the pre-crash log-region layout.
    workers = static_cast<uint32_t>(sb->worker_count);
  }
  lock_gen_ = sb->generation.fetch_add(1, std::memory_order_acq_rel) + 1;

  ThreadContext ctx(0, device_, config_.cache_geometry, config_.cost_params);

  // Stage 1: catalog + in-DRAM structures (tables, heaps, workers).
  auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < sb->table_count; ++i) {
    if (sb->tables[i].in_use != 0) {
      AttachTable(&sb->tables[i], ctx, /*fresh=*/false);
    }
  }
  AttachWorkers(workers);

  // Restart the TID clock above every pre-crash timestamp by scanning the
  // log slots (paper §5.2.1 footnote 2: "Falcon recovers monotonic
  // increasing timestamps by scanning the logs").
  uint64_t floor = sb->max_committed_tid.load(std::memory_order_relaxed);
  for (uint32_t t = 0; t < workers; ++t) {
    LogWindow& log = *workers_[t]->log_;
    for (uint32_t s = 0; s < log.slot_count(); ++s) {
      floor = std::max(floor, log.SlotAt(s)->tid);
    }
  }
  tid_gen_.Reset(floor);
  report.catalog_ms = ElapsedMs(t0);

  // Stage 2: persistent index recovery (instant for Dash/NBTree-style).
  t0 = std::chrono::steady_clock::now();
  if (config_.index_placement == IndexPlacement::kNvm) {
    for (auto& table : tables_) {
      table.index->Recover(ctx);
    }
  }
  report.index_ms = ElapsedMs(t0);

  // Stage 3: log replay (in-place) or heap reconciliation (out-of-place).
  t0 = std::chrono::steady_clock::now();
  if (config_.update_mode == UpdateMode::kInPlace) {
    RecoverInPlace(ctx, report);
  } else {
    RecoverOutOfPlace(ctx, report);
  }
  report.replay_ms = ElapsedMs(t0);

  // Stage 4: DRAM indexes must be rebuilt from a full heap scan — the
  // recovery cost the paper's ZenS comparison highlights (§6.5).
  t0 = std::chrono::steady_clock::now();
  if (config_.index_placement == IndexPlacement::kDram) {
    RebuildDramIndexes(ctx, report);
  }
  report.rebuild_ms = ElapsedMs(t0);

  // Stage 5: reconcile the per-thread deleted lists (§5.4). O(list length),
  // not a heap scan, so the Falcon configurations keep tuples_scanned == 0.
  ReconcileDeletedLists(ctx, report);

  sb->max_committed_tid.store(floor, std::memory_order_relaxed);
  report.total_ms = ElapsedMs(t_start);
  recovery_report_ = report;
}

void Engine::AttachWorkers(uint32_t workers) {
  Superblock* sb = GetSuperblock(arena_);
  workers_.clear();
  workers_.reserve(workers);
  for (uint32_t t = 0; t < workers; ++t) {
    workers_.push_back(std::unique_ptr<Worker>(new Worker(this, t, sb->log_windows[t])));
  }
}

void Engine::AttachTable(TableMeta* meta, ThreadContext& ctx, bool fresh) {
  TableRuntime runtime;
  runtime.meta = meta;
  runtime.heap = std::make_unique<TupleHeap>(&arena_, meta);

  // Reclamation hooks: a tombstone is not reusable while a reviving
  // transaction holds its lock, and its stale index entry is removed right
  // before the slot is recycled.
  const bool two_pl = BaseScheme(config_.cc) == CcScheme::k2pl;
  runtime.heap->SetReclaimHooks(
      [this, two_pl](const TupleHeader* header) {
        const uint64_t word = header->cc_word.load(std::memory_order_acquire);
        if (two_pl) {
          const uint64_t norm = Normalize2pl(word, lock_gen_);
          return (norm & (k2plWriteBit | k2plReaderMask)) != 0;
        }
        return IsLockedTs(word);
      },
      [this, id = meta->id](ThreadContext& hook_ctx, uint64_t key, PmOffset offset) {
        Index& index = *tables_[id].index;
        if (index.Lookup(hook_ctx, key) == offset) {
          index.Remove(hook_ctx, key);
        }
      });

  const auto kind = static_cast<IndexKind>(meta->index_kind);
  const bool persistent = config_.index_placement == IndexPlacement::kNvm;
  if (kind == IndexKind::kBTree) {
    if (persistent && !fresh) {
      runtime.index = std::make_unique<BTreeIndex>(index_space_.get(),
                                                   static_cast<IndexHandle>(meta->index_root));
    } else {
      auto index = std::make_unique<BTreeIndex>(index_space_.get(), ctx);
      if (persistent) {
        meta->index_root = index->root_handle();
      }
      runtime.index = std::move(index);
    }
  } else if (kind == IndexKind::kArt) {
    if (persistent && !fresh) {
      runtime.index = std::make_unique<ArtIndex>(index_space_.get(),
                                                 static_cast<IndexHandle>(meta->index_root));
    } else {
      auto index = std::make_unique<ArtIndex>(index_space_.get(), ctx);
      if (persistent) {
        meta->index_root = index->root_handle();
      }
      runtime.index = std::move(index);
    }
  } else {
    if (persistent && !fresh) {
      runtime.index = std::make_unique<HashIndex>(index_space_.get(),
                                                  static_cast<IndexHandle>(meta->index_root));
    } else {
      auto index = std::make_unique<HashIndex>(index_space_.get(), ctx);
      if (persistent) {
        meta->index_root = index->root_handle();
      }
      runtime.index = std::move(index);
    }
  }
  runtime.index->set_flush_writes(config_.flush_policy == FlushPolicy::kAll);

  if (config_.use_tuple_cache) {
    // (Re)create the cache sized for the largest tuple across all tables.
    // Tables are created during setup, before transactions run, so the
    // recreation never races workers.
    uint64_t largest = meta->tuple_data_size;
    for (const auto& t : tables_) {
      if (t.meta != nullptr) {
        largest = std::max(largest, t.meta->tuple_data_size);
      }
    }
    tuple_cache_ =
        std::make_unique<TupleCache>(config_.tuple_cache_slots, static_cast<uint32_t>(largest));
  }

  const auto id = static_cast<TableId>(meta->id);
  if (tables_.size() <= id) {
    tables_.resize(id + 1);
  }
  tables_[id] = std::move(runtime);
}

TableId Engine::CreateTable(const SchemaBuilder& schema, IndexKind index_kind) {
  TableMeta* meta = falcon::CreateTable(arena_, schema, index_kind);
  if (meta == nullptr) {
    return kInvalidTable;  // catalog full or duplicate name
  }
  ThreadContext ctx(0, device_, config_.cache_geometry, config_.cost_params);
  AttachTable(meta, ctx, /*fresh=*/true);
  return meta->id;
}

std::optional<TableId> Engine::FindTableId(std::string_view name) const {
  Superblock* sb = GetSuperblock(arena_);
  for (uint64_t i = 0; i < sb->table_count; ++i) {
    if (sb->tables[i].in_use != 0 && name == sb->tables[i].name) {
      return sb->tables[i].id;
    }
  }
  return std::nullopt;
}

uint64_t Engine::MinActiveTid() const {
  return active_tids_.MinActive(tid_gen_.UpperBound());
}

WorkerStats Engine::AggregateStats() const {
  WorkerStats total;
  for (const auto& worker : workers_) {
    const WorkerStats& ws = worker->stats();
    total.commits += ws.commits;
    total.txn_aborts += ws.txn_aborts;
    total.reads += ws.reads;
    total.writes += ws.writes;
    for (size_t r = 0; r < kAbortReasonCount; ++r) {
      total.aborts_by_reason[r] += ws.aborts_by_reason[r];
    }
    for (size_t p = 0; p < kSimPhaseCount; ++p) {
      total.phase_ns[p] += ws.phase_ns[p];
    }
    total.batch_slices += ws.batch_slices;
    total.batch_switches += ws.batch_switches;
    total.batch_stall_ns += ws.batch_stall_ns;
    total.batch_hidden_stall_ns += ws.batch_hidden_stall_ns;
    total.batch_idle_ns += ws.batch_idle_ns;
    total.batch_inflight_ns += ws.batch_inflight_ns;
    total.twopc_prepares += ws.twopc_prepares;
    total.twopc_commits += ws.twopc_commits;
    total.twopc_aborts += ws.twopc_aborts;
  }
  return total;
}

MetricsSnapshot Engine::SnapshotMetrics() const {
  MetricsSnapshot s;
  for (const auto& worker : workers_) {
    const WorkerStats& ws = worker->stats();
    s.commits += ws.commits;
    s.txn_aborts += ws.txn_aborts;
    s.reads += ws.reads;
    s.writes += ws.writes;
    s.aborts_user += ws.aborts_by_reason[static_cast<size_t>(AbortReason::kUser)];
    s.aborts_lock_conflict +=
        ws.aborts_by_reason[static_cast<size_t>(AbortReason::kLockConflict)];
    s.aborts_ts_order += ws.aborts_by_reason[static_cast<size_t>(AbortReason::kTsOrder)];
    s.aborts_occ_validation +=
        ws.aborts_by_reason[static_cast<size_t>(AbortReason::kOccValidation)];
    s.aborts_log_overflow +=
        ws.aborts_by_reason[static_cast<size_t>(AbortReason::kLogOverflow)];
    s.aborts_other += ws.aborts_by_reason[static_cast<size_t>(AbortReason::kOther)];

    const uint64_t clock = worker->ctx_.sim_ns();
    const uint64_t log_append = ws.phase_ns[static_cast<size_t>(SimPhase::kLogAppend)];
    const uint64_t commit_flush = ws.phase_ns[static_cast<size_t>(SimPhase::kCommitFlush)];
    const uint64_t hint_flush = ws.phase_ns[static_cast<size_t>(SimPhase::kHintFlush)];
    const uint64_t version_gc = ws.phase_ns[static_cast<size_t>(SimPhase::kVersionGc)];
    const uint64_t instrumented = log_append + commit_flush + hint_flush + version_gc;
    s.log_append_ns += log_append;
    s.commit_flush_ns += commit_flush;
    s.hint_flush_ns += hint_flush;
    s.version_gc_ns += version_gc;
    // Execute time is everything the worker clock accumulated outside the
    // instrumented commit phases.
    s.execute_ns += clock > instrumented ? clock - instrumented : 0;
    s.sim_ns_total += clock;
    s.sim_ns_max = std::max(s.sim_ns_max, clock);

    s.batch_slices += ws.batch_slices;
    s.batch_switches += ws.batch_switches;
    s.batch_stall_ns += ws.batch_stall_ns;
    s.batch_hidden_stall_ns += ws.batch_hidden_stall_ns;
    s.batch_idle_ns += ws.batch_idle_ns;
    s.batch_inflight_ns += ws.batch_inflight_ns;

    s.twopc_prepares += ws.twopc_prepares;
    s.twopc_commits += ws.twopc_commits;
    s.twopc_aborts += ws.twopc_aborts;

    const HotTupleSetStats& hs = worker->hot_.stats();
    s.hot_hits += hs.hits;
    s.hot_misses += hs.misses;
    s.hot_evictions += hs.evictions;
    s.hot_inserts += hs.inserts;
    s.hot_size += worker->hot_.size();
    s.hot_capacity += worker->hot_.capacity();

    const LogWindowStats& ls = worker->log_->stats();
    s.log_slots_opened += ls.slots_opened;
    s.log_wraps += ls.wraps;
    s.log_appends += ls.appends;
    s.log_append_overflows += ls.append_overflows;
    s.log_bytes_appended += ls.bytes_appended;
    s.log_free_slots += worker->log_->FreeSlotCount();
    s.log_payload_high_water = std::max(s.log_payload_high_water, ls.payload_high_water);

    s.versions_allocated += worker->versions_.allocated_total();
    s.versions_recycled += worker->versions_.recycled_total();
    s.version_gc_runs += worker->versions_.gc_runs();
    s.versions_queued += worker->versions_.queued();
    s.version_live_bytes += worker->versions_.live_bytes();

    const CacheStats& cs = worker->ctx_.cache().stats();
    s.cache_hits += cs.hits;
    s.cache_misses += cs.misses;
    s.cache_dirty_evictions += cs.dirty_evictions;
    s.cache_clwb_writebacks += cs.clwb_writebacks;
    s.cache_sfences += cs.sfences;
  }

  const DeviceStats ds = device_->stats();
  s.device_line_writes = ds.line_writes;
  s.device_media_writes = ds.media_writes;
  s.device_media_reads = ds.media_reads;
  s.device_full_drains = ds.full_drains;
  s.device_partial_drains = ds.partial_drains;
  s.device_busy_ns = ds.busy_ns;
  for (size_t r = 0; r < kMediaRegionCount; ++r) {
    s.device_region_line_writes[r] = ds.region_line_writes[r];
    s.device_region_media_writes[r] = ds.region_media_writes[r];
  }
  return s;
}

// ---- Recovery: in-place (log replay, §5.3) --------------------------------

void Engine::RecoverInPlace(ThreadContext& ctx, RecoveryReport& report) {
  const bool nvm_index = config_.index_placement == IndexPlacement::kNvm;

  // Collect every non-free slot and replay committed ones in TID order so
  // overlapping writes from different threads re-apply in serialization
  // order.
  struct PendingSlot {
    uint64_t tid;
    LogSlotHeader* slot;
    bool committed;
  };
  std::vector<PendingSlot> pending;
  for (auto& worker : workers_) {
    LogWindow& log = *worker->log_;
    for (uint32_t s = 0; s < log.slot_count(); ++s) {
      LogSlotHeader* slot = log.SlotAt(s);
      const auto state = static_cast<SlotState>(slot->state.load(std::memory_order_acquire));
      if (state == SlotState::kCommitted) {
        pending.push_back({slot->tid, slot, true});
      } else if (state == SlotState::kUncommitted) {
        pending.push_back({slot->tid, slot, false});
      } else if (state == SlotState::kPrepared) {
        // Presumed abort: a prepared slot whose coordinator decided commit
        // was already patched to kCommitted by the Database layer before
        // this replay; anything still prepared rolls back.
        pending.push_back({slot->tid, slot, false});
      }
    }
  }
  std::sort(pending.begin(), pending.end(),
            [](const PendingSlot& a, const PendingSlot& b) { return a.tid < b.tid; });

  for (const PendingSlot& p : pending) {
    LogSlotHeader* slot = p.slot;
    std::byte* payload = LogWindow::SlotPayload(slot);
    uint64_t pos = 0;
    for (uint64_t e = 0; e < slot->entry_count; ++e) {
      LogEntryHeader entry;
      std::memcpy(&entry, payload + pos, sizeof(entry));
      ctx.TouchLoad(payload + pos, sizeof(entry) + entry.len);
      const std::byte* value = payload + pos + sizeof(entry);
      pos += sizeof(entry) + entry.len;

      if (entry.table_id == kInvalidTable) {
        continue;  // 2PC marker entry: metadata only, no tuple effect
      }

      TableRuntime& table = tables_[entry.table_id];
      TupleHeader* header = table.heap->Header(entry.tuple);

      const bool two_pl = config_.cc == CcScheme::k2pl || config_.cc == CcScheme::kMv2pl;

      if (p.committed) {
        // Skip entries a LATER, fully-released transaction already
        // overwrote: its slot is gone (freed at commit end), so replaying
        // this older entry would regress the tuple to a stale image. The
        // tuple's write timestamp tells us who wrote last.
        const uint64_t tuple_ts =
            two_pl ? header->read_ts.load(std::memory_order_relaxed)
                   : TsOf(header->cc_word.load(std::memory_order_relaxed));
        if (tuple_ts > slot->tid) {
          continue;
        }
        switch (static_cast<LogOpKind>(entry.kind)) {
          case LogOpKind::kUpdate:
            ctx.Store(TupleData(header) + entry.offset, value, entry.len);
            break;
          case LogOpKind::kInsert:
            if (entry.len > 0) {
              // Tombstone revival: the crashed apply may have died before
              // installing the new image or clearing the delete flag —
              // restore both from the logged payload.
              ctx.Store(TupleData(header), value, entry.len);
              header->flags.fetch_and(~kTupleDeleted, std::memory_order_relaxed);
            }
            // Fresh inserts persisted their data at execution time (eADR);
            // just make sure the index reaches the tuple.
            if (nvm_index && table.index->Lookup(ctx, entry.key) != entry.tuple) {
              table.index->Insert(ctx, entry.key, entry.tuple);
            }
            break;
          case LogOpKind::kDelete:
            if ((header->flags.load(std::memory_order_relaxed) & kTupleDeleted) == 0) {
              table.heap->MarkDeleted(ctx, entry.tuple, slot->tid);
            }
            if (nvm_index) {
              table.index->Remove(ctx, entry.key);
            }
            break;
          case LogOpKind::kPrepare2pc:
            break;  // unreachable: markers were skipped above
        }
        // Clear the lock and stamp the committing TID (replaying "clears the
        // lock bits", §6.5). 2PL generations make its locks self-clearing;
        // the TO/OCC word carries the write timestamp.
        if (two_pl) {
          header->read_ts.store(slot->tid, std::memory_order_relaxed);
        } else {
          header->cc_word.store(slot->tid & kCcTsMask, std::memory_order_relaxed);
        }
        ctx.TouchStore(header, sizeof(TupleHeader));
      } else {
        // Uncommitted: tuples are untouched (redo-only logging); undo the
        // execution-time side effects of inserts and clear lock bits.
        if (static_cast<LogOpKind>(entry.kind) == LogOpKind::kInsert) {
          if (entry.len == 0) {
            // Fresh insert: unlink from the index and retire the slot. A
            // revival (len > 0) changed nothing at execution time — its
            // tombstone stays indexed and listed; only its lock needs
            // clearing below.
            if (nvm_index && table.index->Lookup(ctx, entry.key) == entry.tuple) {
              table.index->Remove(ctx, entry.key);
            }
            if ((header->flags.load(std::memory_order_relaxed) & kTupleDeleted) == 0) {
              table.heap->MarkDeleted(ctx, entry.tuple, /*delete_tid=*/0);
            }
          }
          // Inserts are born locked (and revivals lock their tombstone): a
          // lock bit left on a deleted-list entry would block reclamation
          // forever. 2PL words self-clear via the generation bump.
          const uint64_t w = header->cc_word.load(std::memory_order_relaxed);
          if (!two_pl && IsLockedTs(w)) {
            header->cc_word.store(TsOf(w), std::memory_order_relaxed);
            ctx.TouchStore(header, sizeof(uint64_t));
          }
        } else {
          const uint64_t w = header->cc_word.load(std::memory_order_relaxed);
          if (!two_pl && IsLockedTs(w)) {
            header->cc_word.store(TsOf(w), std::memory_order_relaxed);
            ctx.TouchStore(header, sizeof(uint64_t));
          }
        }
      }
    }
    if (p.committed) {
      ++report.slots_replayed;
    } else {
      ++report.slots_discarded;
    }
    slot->state.store(static_cast<uint64_t>(SlotState::kFree), std::memory_order_release);
  }
}

// ---- Recovery: out-of-place (heap reconciliation) --------------------------

void Engine::RecoverOutOfPlace(ThreadContext& ctx, RecoveryReport& report) {
  // Commit records: a transaction is committed iff its versions carry the
  // committed flag, or its TID appears in a slot marked COMMITTED. Deletes
  // ride in the commit slot as explicit entries (a delete leaves no
  // replacement version in the heap for the scan below to find), so they
  // are collected here and replayed after the winner scan.
  struct PendingDelete {
    uint64_t tid;
    uint64_t table_id;
    uint64_t key;
  };
  std::unordered_set<uint64_t> committed_tids;
  std::vector<PendingDelete> deletes;
  for (auto& worker : workers_) {
    LogWindow& log = *worker->log_;
    for (uint32_t s = 0; s < log.slot_count(); ++s) {
      LogSlotHeader* slot = log.SlotAt(s);
      const auto state = static_cast<SlotState>(slot->state.load(std::memory_order_acquire));
      if (state == SlotState::kCommitted) {
        committed_tids.insert(slot->tid);
        const std::byte* payload = LogWindow::SlotPayload(slot);
        uint64_t pos = 0;
        for (uint64_t e = 0; e < slot->entry_count; ++e) {
          LogEntryHeader entry;
          std::memcpy(&entry, payload + pos, sizeof(entry));
          ctx.TouchLoad(payload + pos, sizeof(entry));
          pos += sizeof(entry) + entry.len;
          if (static_cast<LogOpKind>(entry.kind) == LogOpKind::kDelete) {
            deletes.push_back({slot->tid, entry.table_id, entry.key});
          }
        }
        ++report.slots_replayed;
      } else if (state == SlotState::kUncommitted || state == SlotState::kPrepared) {
        // kPrepared: presumed abort (any coordinator-decided commit was
        // patched to kCommitted before this pass). The transaction's
        // versions carry no committed flag and its TID is not in
        // committed_tids, so the winner scan below discards them.
        ++report.slots_discarded;
      }
      slot->state.store(static_cast<uint64_t>(SlotState::kFree), std::memory_order_release);
    }
  }

  const bool nvm_index = config_.index_placement == IndexPlacement::kNvm;
  for (auto& table : tables_) {
    if (table.meta == nullptr) {
      continue;
    }
    // Latest committed version per key (the scan the paper times at 9.4s for
    // ZenS on a 256GB heap).
    struct Winner {
      PmOffset tuple;
      uint64_t ts;
    };
    std::unordered_map<uint64_t, Winner> winners;
    std::vector<PmOffset> losers;
    table.heap->ForEachSlot([&](PmOffset offset, TupleHeader* header) {
      ++report.tuples_scanned;
      ctx.TouchLoad(header, sizeof(TupleHeader));
      const uint64_t flags = header->flags.load(std::memory_order_relaxed);
      if ((flags & kTupleDeleted) != 0) {
        // Old version already retired — but a crashed transaction may have
        // locked the tombstone (a revival insert locks the old head during
        // validation). Strip the stale lock bit, keeping ts + retired bit,
        // or post-recovery optimistic readers abort forever. (2PL lock words
        // self-clear via the generation bump.)
        const uint64_t stale = header->cc_word.load(std::memory_order_relaxed);
        if (BaseScheme(config_.cc) != CcScheme::k2pl && IsLockedTs(stale)) {
          header->cc_word.store(stale & ~kCcLockBit, std::memory_order_relaxed);
          ctx.TouchStore(header, sizeof(uint64_t));
        }
        return;
      }
      const uint64_t word = header->cc_word.load(std::memory_order_relaxed);
      const uint64_t ts = BaseScheme(config_.cc) == CcScheme::k2pl
                              ? header->read_ts.load(std::memory_order_relaxed)
                              : TsOf(word);
      const bool committed =
          (flags & kTupleCommitted) != 0 || committed_tids.count(ts) != 0;
      if (!committed) {
        losers.push_back(offset);
        return;
      }
      const auto it = winners.find(header->key);
      if (it == winners.end()) {
        winners.emplace(header->key, Winner{offset, ts});
      } else if (ts > it->second.ts) {
        losers.push_back(it->second.tuple);
        it->second = Winner{offset, ts};
      } else {
        losers.push_back(offset);
      }
    });

    for (const PmOffset loser : losers) {
      TupleHeader* header = table.heap->Header(loser);
      if (nvm_index && table.index->Lookup(ctx, header->key) == loser) {
        // The index still points at a discarded version (e.g. an insert
        // whose transaction never committed): repoint or remove it.
        const auto it = winners.find(header->key);
        if (it != winners.end()) {
          table.index->Update(ctx, header->key, it->second.tuple);
        } else {
          table.index->Remove(ctx, header->key);
        }
      }
      // Born-locked insert losers keep their lock bit past the crash; a
      // locked head of the deleted list blocks reclamation forever. (2PL
      // lock words self-clear via the generation bump.)
      const uint64_t word = header->cc_word.load(std::memory_order_relaxed);
      if (BaseScheme(config_.cc) != CcScheme::k2pl && IsLockedTs(word)) {
        header->cc_word.store(TsOf(word), std::memory_order_relaxed);
        ctx.TouchStore(header, sizeof(uint64_t));
      }
      if ((header->flags.load(std::memory_order_relaxed) & kTupleDeleted) == 0) {
        table.heap->MarkDeleted(ctx, loser, /*delete_tid=*/0);
      }
    }
    for (auto& [key, winner] : winners) {
      TupleHeader* header = table.heap->Header(winner.tuple);
      if (BaseScheme(config_.cc) == CcScheme::k2pl) {
        header->read_ts.store(winner.ts, std::memory_order_relaxed);
        header->cc_word.store(0, std::memory_order_relaxed);  // stale gen = unlocked
      } else {
        header->cc_word.store(winner.ts, std::memory_order_relaxed);
      }
      header->flags.fetch_or(kTupleCommitted, std::memory_order_relaxed);
      ctx.TouchStore(header, sizeof(TupleHeader));
      if (nvm_index) {
        if (table.index->Update(ctx, key, winner.tuple) == Status::kNotFound) {
          table.index->Insert(ctx, key, winner.tuple);
        }
      }
    }

    // Replay committed deletes: tombstone the winner unless a later
    // committed transaction re-created the key (its version outranks the
    // delete). A key with no winner is already dead — the delete's apply
    // completed before the crash.
    for (const PendingDelete& d : deletes) {
      if (d.table_id != table.meta->id) {
        continue;
      }
      const auto it = winners.find(d.key);
      if (it == winners.end() || it->second.ts > d.tid) {
        continue;
      }
      TupleHeader* header = table.heap->Header(it->second.tuple);
      if ((header->flags.load(std::memory_order_relaxed) & kTupleDeleted) == 0) {
        table.heap->MarkDeleted(ctx, it->second.tuple, d.tid);
      }
    }
  }
}

void Engine::ReconcileDeletedLists(ThreadContext& ctx, RecoveryReport& report) {
  for (auto& table : tables_) {
    if (table.meta == nullptr) {
      continue;
    }
    // Cycle bound: a well-formed list can never exceed the slot count.
    const uint64_t bound = table.heap->CountSlots() + 1;
    for (uint32_t t = 0; t < kMaxThreads; ++t) {
      PmOffset prev = kNullPm;
      PmOffset cur = table.meta->deleted_head[t];
      uint64_t walked = 0;
      while (cur != kNullPm) {
        TupleHeader* header = table.heap->Header(cur);
        ctx.TouchLoad(header, sizeof(TupleHeader));
        if (++walked > bound ||
            (header->flags.load(std::memory_order_relaxed) & kTupleValid) == 0) {
          // Torn link (MarkDeleted died between its stores) or a cycle:
          // truncate at the last good entry. Entries past the tear leak
          // until a future delete re-lists them — safe, never reused early.
          if (prev == kNullPm) {
            table.meta->deleted_head[t] = kNullPm;
          } else {
            table.heap->Header(prev)->delete_next.store(kNullPm, std::memory_order_relaxed);
            ctx.TouchStore(table.heap->Header(prev), sizeof(uint64_t));
          }
          break;
        }
        ++report.deleted_entries;
        prev = cur;
        cur = header->delete_next.load(std::memory_order_relaxed);
      }
      // The tail pointer is updated last in MarkDeleted, so a crash can
      // leave it one entry behind; recompute it from the walk.
      table.meta->deleted_tail[t] = prev;
      ctx.TouchStore(&table.meta->deleted_tail[t], sizeof(PmOffset));
    }
  }
}

void Engine::RebuildDramIndexes(ThreadContext& ctx, RecoveryReport& report) {
  const bool out_of_place = config_.update_mode == UpdateMode::kOutOfPlace;
  for (auto& table : tables_) {
    if (table.meta == nullptr) {
      continue;
    }
    table.heap->ForEachSlot([&](PmOffset offset, TupleHeader* header) {
      ++report.tuples_scanned;
      ctx.TouchLoad(header, sizeof(TupleHeader));
      const uint64_t flags = header->flags.load(std::memory_order_relaxed);
      if ((flags & kTupleDeleted) != 0) {
        return;
      }
      if (out_of_place && (flags & kTupleCommitted) == 0) {
        return;
      }
      table.index->Insert(ctx, header->key, offset);
    });
  }
}

}  // namespace falcon
