#include "src/core/batch.h"

#include <vector>

#include "src/sim/batch_clock.h"

namespace falcon {

namespace {

// RunBatch may unwind through a frame Step (TxnCrashed from the crash
// injector); stall capture must not stay enabled on the worker afterwards.
struct CaptureGuard {
  ThreadContext& ctx;
  explicit CaptureGuard(ThreadContext& c) : ctx(c) { ctx.EnableStallCapture(true); }
  ~CaptureGuard() { ctx.EnableStallCapture(false); }
};

}  // namespace

BatchRunStats Worker::RunBatch(uint32_t batch_size, FrameSource& source) {
  if (batch_size == 0) {
    batch_size = 1;
  }
  if (batch_size > 64) {
    batch_size = 64;  // BatchClock::PickNext uses a 64-bit active mask
  }

  BatchClock clock(batch_size);
  std::vector<TxnFrame*> frames(batch_size, nullptr);
  std::vector<uint64_t> begin_ns(batch_size, 0);
  std::vector<uint64_t> slices_run(batch_size, 0);
  uint64_t active_mask = 0;
  uint32_t active_count = 0;
  BatchRunStats out;

  CaptureGuard guard(ctx_);

  for (uint32_t s = 0; s < batch_size; ++s) {
    TxnFrame* f = source.Next(*this);
    if (f == nullptr) {
      break;
    }
    frames[s] = f;
    clock.Admit(s);
    begin_ns[s] = clock.FinishTime(s);
    active_mask |= uint64_t{1} << s;
    ++active_count;
  }

  uint32_t current = UINT32_MAX;
  while (active_mask != 0) {
    const uint32_t s = clock.PickNext(active_mask, current);
    if (current != UINT32_MAX && s != current) {
      ++out.switches;
      if (trace_ != nullptr) {
        trace_->Emit(TraceEventKind::kFrameSwitch, ctx_.sim_ns(), current, s);
        if (slices_run[s] > 0) {
          trace_->Emit(TraceEventKind::kFrameResume, ctx_.sim_ns(), s, slices_run[s]);
        }
      }
    }
    current = s;
    if (trace_ != nullptr) {
      trace_->set_current_txn(frames[s]->current_tid());
    }
    const bool done = frames[s]->Step(*this);
    uint64_t compute = 0;
    uint64_t stall = 0;
    ctx_.TakeSlice(&compute, &stall);
    clock.Account(s, compute, stall, active_count);
    ++slices_run[s];
    ++out.slices;
    if (done) {
      source.Done(*this, frames[s], begin_ns[s], clock.FinishTime(s));
      ++out.frames;
      frames[s] = nullptr;
      TxnFrame* next = source.Next(*this);
      if (next != nullptr) {
        frames[s] = next;
        clock.Admit(s);
        begin_ns[s] = clock.FinishTime(s);
        slices_run[s] = 0;
      } else {
        active_mask &= ~(uint64_t{1} << s);
        --active_count;
        current = UINT32_MAX;  // the slot is gone; the next pick is a switch
      }
    }
  }

  out.elapsed_ns = clock.Elapsed();
  out.serial_ns = clock.SerialNs();
  out.stall_ns = clock.StallNs();
  out.hidden_stall_ns = clock.HiddenStallNs();
  out.idle_ns = clock.IdleNs();
  out.inflight_weighted_ns = clock.InflightWeightedNs();

  stats_.batch_slices += out.slices;
  stats_.batch_switches += out.switches;
  stats_.batch_stall_ns += out.stall_ns;
  stats_.batch_hidden_stall_ns += out.hidden_stall_ns;
  stats_.batch_idle_ns += out.idle_ns;
  stats_.batch_inflight_ns += out.inflight_weighted_ns;
  return out;
}

}  // namespace falcon
