// Engine configuration knobs and the named presets from the paper's engine
// comparison (Table 1 and Figure 10).

#ifndef SRC_CORE_CONFIG_H_
#define SRC_CORE_CONFIG_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/cc/cc_scheme.h"
#include "src/common/constants.h"
#include "src/sim/cost_model.h"

namespace falcon {

enum class UpdateMode : uint8_t {
  kInPlace,     // redo-log then modify the tuple (Falcon, Inp)
  kOutOfPlace,  // log-free: a new version in the heap is the update (Outp, ZenS)
};

enum class LogMode : uint8_t {
  kSmallWindow,  // D1: tiny per-thread circular window, never flushed (needs
                 // eADR; stays cache-resident so logging causes no NVM writes)
  kNvmFlushed,   // conventional large per-thread redo region, clwb+sfence
                 // before commit (Inp)
  kNvmNoFlush,   // large region with the clwbs removed: correct under eADR
                 // but log lines evict at the cache's whim (Inp (No Flush))
  kNone,         // log-free (out-of-place engines)
};

constexpr bool LogIsFlushed(LogMode m) { return m == LogMode::kNvmFlushed; }
constexpr bool LogIsSmallWindow(LogMode m) { return m == LogMode::kSmallWindow; }

enum class FlushPolicy : uint8_t {
  kNone,       // no clwb on data; rely on cache eviction ("No Flush")
  kAll,        // hinted flush of every touched tuple ("All Flush")
  kSelective,  // D2: hinted flush unless the tuple is hot (Falcon)
};

enum class IndexPlacement : uint8_t {
  kNvm,   // persistent index, instant recovery
  kDram,  // faster, rebuilt by heap scan on recovery
};

struct EngineConfig {
  std::string name = "Falcon";
  UpdateMode update_mode = UpdateMode::kInPlace;
  LogMode log_mode = LogMode::kSmallWindow;
  FlushPolicy flush_policy = FlushPolicy::kSelective;
  IndexPlacement index_placement = IndexPlacement::kNvm;
  CcScheme cc = CcScheme::kOcc;
  // ZenS: DRAM Met-Cache holding hot tuple copies + their CC metadata.
  bool use_tuple_cache = false;

  uint32_t log_window_slots = kLogWindowSlots;
  // Slot count for the conventional (large) log region used by kNvmFlushed /
  // kNvmNoFlush; sized so the region cycles far outside the CPU cache.
  uint32_t large_log_slots = 64;
  uint64_t log_slot_bytes = kLogSlotBytes;

  // In-flight transaction frames per worker (Worker::RunBatch). 1 = serial
  // execution, the historical path.
  uint32_t batch_size = 1;

  uint32_t EffectiveLogSlots() const {
    const uint32_t base =
        log_mode == LogMode::kSmallWindow ? log_window_slots : large_log_slots;
    // Every in-flight frame can hold one open slot, plus one so commit's
    // slot release never blocks the window. batch_size = 1 never changes
    // the base geometry (all presets have base >= 2).
    return base > batch_size + 1 ? base : batch_size + 1;
  }
  size_t hot_tuple_capacity = kHotTupleCapacity;
  size_t tuple_cache_slots = 1 << 16;
  size_t version_gc_threshold = kVersionQueueGcThreshold;

  CacheGeometry cache_geometry;
  CostParams cost_params;

  // ---- Named presets (paper Table 1 / Figure 10) --------------------------

  static EngineConfig Falcon(CcScheme cc = CcScheme::kOcc) {
    EngineConfig c;
    c.name = "Falcon";
    c.cc = cc;
    return c;
  }

  static EngineConfig FalconNoFlush(CcScheme cc = CcScheme::kOcc) {
    EngineConfig c = Falcon(cc);
    c.name = "Falcon (No Flush)";
    c.flush_policy = FlushPolicy::kNone;
    return c;
  }

  static EngineConfig FalconAllFlush(CcScheme cc = CcScheme::kOcc) {
    EngineConfig c = Falcon(cc);
    c.name = "Falcon (All Flush)";
    c.flush_policy = FlushPolicy::kAll;
    return c;
  }

  static EngineConfig FalconDramIndex(CcScheme cc = CcScheme::kOcc) {
    EngineConfig c = Falcon(cc);
    c.name = "Falcon (DRAM Index)";
    c.index_placement = IndexPlacement::kDram;
    return c;
  }

  // Pure in-place baseline: conventional flushed redo log + flush-all data.
  static EngineConfig Inp(CcScheme cc = CcScheme::kOcc) {
    EngineConfig c;
    c.name = "Inp";
    c.cc = cc;
    c.log_mode = LogMode::kNvmFlushed;
    c.flush_policy = FlushPolicy::kAll;
    return c;
  }

  static EngineConfig InpNoFlush(CcScheme cc = CcScheme::kOcc) {
    EngineConfig c = Inp(cc);
    c.name = "Inp (No Flush)";
    // No clwb anywhere: the (large) log region and the data are left to
    // cache evictions. Correct under eADR only.
    c.log_mode = LogMode::kNvmNoFlush;
    c.flush_policy = FlushPolicy::kNone;
    return c;
  }

  static EngineConfig InpSmallLogWindow(CcScheme cc = CcScheme::kOcc) {
    EngineConfig c = Inp(cc);
    c.name = "Inp (Small Log Window)";
    c.log_mode = LogMode::kSmallWindow;
    return c;
  }

  static EngineConfig InpHotTupleTracking(CcScheme cc = CcScheme::kOcc) {
    EngineConfig c = Inp(cc);
    c.name = "Inp (Hot Tuple Tracking)";
    c.flush_policy = FlushPolicy::kSelective;
    return c;
  }

  // Pure out-of-place baseline: log-free, NVM index, flush-all.
  static EngineConfig Outp(CcScheme cc = CcScheme::kOcc) {
    EngineConfig c;
    c.name = "Outp";
    c.cc = cc;
    c.update_mode = UpdateMode::kOutOfPlace;
    c.log_mode = LogMode::kNone;
    c.flush_policy = FlushPolicy::kAll;
    return c;
  }

  // Re-implementation of Zen's storage engine (paper §6.2.1): out-of-place,
  // DRAM index, DRAM tuple cache.
  static EngineConfig ZenS(CcScheme cc = CcScheme::kOcc) {
    EngineConfig c = Outp(cc);
    c.name = "ZenS";
    c.index_placement = IndexPlacement::kDram;
    c.use_tuple_cache = true;
    return c;
  }

  static EngineConfig ZenSNoFlush(CcScheme cc = CcScheme::kOcc) {
    EngineConfig c = ZenS(cc);
    c.name = "ZenS (No Flush)";
    c.flush_policy = FlushPolicy::kNone;
    return c;
  }
};

}  // namespace falcon

#endif  // SRC_CORE_CONFIG_H_
