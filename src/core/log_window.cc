#include "src/core/log_window.h"

#include <cstring>

namespace falcon {

bool LogWindow::OpenSlot(ThreadContext& ctx, uint64_t tid, LogCursor& cursor) {
  for (uint32_t probes = 0; probes < slots_; ++probes) {
    cursor_ = (cursor_ + 1) % slots_;
    if (cursor_ == 0) {
      ++stats_.wraps;
      if (trace_ != nullptr) {
        trace_->Emit(TraceEventKind::kLogWrap, ctx.sim_ns(), stats_.wraps, slots_);
      }
    }
    LogSlotHeader* slot = SlotAt(cursor_);
    // Plain host-side probe, not a modeled load: the worker owns this window
    // and tracks slot states in its own cache. In-flight sibling frames may
    // still hold slots kUncommitted; skip those.
    if (static_cast<SlotState>(slot->state.load(std::memory_order_relaxed)) !=
        SlotState::kFree) {
      continue;
    }
    ++stats_.slots_opened;
    cursor.slot = cursor_;
    cursor.write_pos = 0;
    slot->tid = tid;
    slot->bytes = 0;
    slot->entry_count = 0;
    // State last: a torn crash before this store leaves the previous state
    // (kFree), which recovery correctly ignores.
    slot->state.store(static_cast<uint64_t>(SlotState::kUncommitted),
                      std::memory_order_release);
    ctx.TouchStore(slot, sizeof(LogSlotHeader));
    return true;
  }
  return false;  // every slot held by an in-flight transaction
}

bool LogWindow::Append(ThreadContext& ctx, LogCursor& cursor, uint64_t table_id,
                       uint64_t key, PmOffset tuple, LogOpKind kind, uint32_t offset,
                       uint32_t len, const void* payload) {
  const uint64_t need = sizeof(LogEntryHeader) + len;
  if (sizeof(LogSlotHeader) + cursor.write_pos + need > slot_bytes_) {
    ++stats_.append_overflows;
    if (trace_ != nullptr) {
      trace_->Emit(TraceEventKind::kLogOverflow, ctx.sim_ns(), need,
                   slot_bytes_ - sizeof(LogSlotHeader));
    }
    return false;
  }
  LogSlotHeader* slot = SlotAt(cursor.slot);
  std::byte* dst = SlotPayload(slot) + cursor.write_pos;
  LogEntryHeader entry;
  entry.table_id = table_id;
  entry.key = key;
  entry.tuple = tuple;
  entry.kind = static_cast<uint32_t>(kind);
  entry.offset = offset;
  entry.len = len;
  ctx.Store(dst, &entry, sizeof(entry));
  if (len > 0) {
    ctx.Store(dst + sizeof(entry), payload, len);
  }
  cursor.write_pos += need;
  ++stats_.appends;
  stats_.bytes_appended += need;
  if (cursor.write_pos > stats_.payload_high_water) {
    stats_.payload_high_water = cursor.write_pos;
  }
  slot->bytes = cursor.write_pos;
  ++slot->entry_count;
  ctx.TouchStore(slot, sizeof(LogSlotHeader));
  return true;
}

void LogWindow::MarkCommitted(ThreadContext& ctx, const LogCursor& cursor) {
  LogSlotHeader* slot = SlotAt(cursor.slot);
  if (flush_to_nvm_) {
    // Conventional protocol: persist the log body, fence, then persist the
    // commit state. Two explicit NVM round trips per transaction — exactly
    // the overhead D1 removes.
    ctx.Clwb(slot, sizeof(LogSlotHeader) + slot->bytes);
    ctx.Sfence();
    slot->state.store(static_cast<uint64_t>(SlotState::kCommitted), std::memory_order_release);
    ctx.TouchStore(slot, sizeof(uint64_t));
    ctx.Clwb(slot, kCacheLineSize);
    ctx.Sfence();
  } else {
    // eADR: the log bytes are persistent wherever they are. Only ordering
    // (log body before state) is needed, which sfence provides (§1: "memory
    // fence instructions, such as sfence, are still needed").
    ctx.Sfence();
    slot->state.store(static_cast<uint64_t>(SlotState::kCommitted), std::memory_order_release);
    ctx.TouchStore(slot, sizeof(uint64_t));
    ctx.Sfence();
  }
}

void LogWindow::MarkPrepared(ThreadContext& ctx, const LogCursor& cursor) {
  LogSlotHeader* slot = SlotAt(cursor.slot);
  if (flush_to_nvm_) {
    ctx.Clwb(slot, sizeof(LogSlotHeader) + slot->bytes);
    ctx.Sfence();
    slot->state.store(static_cast<uint64_t>(SlotState::kPrepared), std::memory_order_release);
    ctx.TouchStore(slot, sizeof(uint64_t));
    ctx.Clwb(slot, kCacheLineSize);
    ctx.Sfence();
  } else {
    ctx.Sfence();
    slot->state.store(static_cast<uint64_t>(SlotState::kPrepared), std::memory_order_release);
    ctx.TouchStore(slot, sizeof(uint64_t));
    ctx.Sfence();
  }
}

void LogWindow::Release(ThreadContext& ctx, const LogCursor& cursor) {
  LogSlotHeader* slot = SlotAt(cursor.slot);
  slot->state.store(static_cast<uint64_t>(SlotState::kFree), std::memory_order_release);
  ctx.TouchStore(slot, sizeof(uint64_t));
}

}  // namespace falcon
