#include "src/core/log_window.h"

#include <cstring>

namespace falcon {

void LogWindow::OpenSlot(ThreadContext& ctx, uint64_t tid) {
  cursor_ = (cursor_ + 1) % slots_;
  ++stats_.slots_opened;
  if (cursor_ == 0) {
    ++stats_.wraps;
    if (trace_ != nullptr) {
      trace_->Emit(TraceEventKind::kLogWrap, ctx.sim_ns(), stats_.wraps, slots_);
    }
  }
  write_pos_ = 0;
  LogSlotHeader* slot = current_slot();
  slot->tid = tid;
  slot->bytes = 0;
  slot->entry_count = 0;
  // State last: a torn crash before this store leaves the previous state
  // (kFree), which recovery correctly ignores.
  slot->state.store(static_cast<uint64_t>(SlotState::kUncommitted), std::memory_order_release);
  ctx.TouchStore(slot, sizeof(LogSlotHeader));
}

bool LogWindow::Append(ThreadContext& ctx, uint64_t table_id, uint64_t key, PmOffset tuple,
                       LogOpKind kind, uint32_t offset, uint32_t len, const void* payload) {
  const uint64_t need = sizeof(LogEntryHeader) + len;
  if (sizeof(LogSlotHeader) + write_pos_ + need > slot_bytes_) {
    ++stats_.append_overflows;
    if (trace_ != nullptr) {
      trace_->Emit(TraceEventKind::kLogOverflow, ctx.sim_ns(), need,
                   slot_bytes_ - sizeof(LogSlotHeader));
    }
    return false;
  }
  std::byte* dst = SlotPayload(current_slot()) + write_pos_;
  LogEntryHeader entry;
  entry.table_id = table_id;
  entry.key = key;
  entry.tuple = tuple;
  entry.kind = static_cast<uint32_t>(kind);
  entry.offset = offset;
  entry.len = len;
  ctx.Store(dst, &entry, sizeof(entry));
  if (len > 0) {
    ctx.Store(dst + sizeof(entry), payload, len);
  }
  write_pos_ += need;
  ++stats_.appends;
  stats_.bytes_appended += need;
  if (write_pos_ > stats_.payload_high_water) {
    stats_.payload_high_water = write_pos_;
  }
  LogSlotHeader* slot = current_slot();
  slot->bytes = write_pos_;
  ++slot->entry_count;
  ctx.TouchStore(slot, sizeof(LogSlotHeader));
  return true;
}

void LogWindow::MarkCommitted(ThreadContext& ctx) {
  LogSlotHeader* slot = current_slot();
  if (flush_to_nvm_) {
    // Conventional protocol: persist the log body, fence, then persist the
    // commit state. Two explicit NVM round trips per transaction — exactly
    // the overhead D1 removes.
    ctx.Clwb(slot, sizeof(LogSlotHeader) + slot->bytes);
    ctx.Sfence();
    slot->state.store(static_cast<uint64_t>(SlotState::kCommitted), std::memory_order_release);
    ctx.TouchStore(slot, sizeof(uint64_t));
    ctx.Clwb(slot, kCacheLineSize);
    ctx.Sfence();
  } else {
    // eADR: the log bytes are persistent wherever they are. Only ordering
    // (log body before state) is needed, which sfence provides (§1: "memory
    // fence instructions, such as sfence, are still needed").
    ctx.Sfence();
    slot->state.store(static_cast<uint64_t>(SlotState::kCommitted), std::memory_order_release);
    ctx.TouchStore(slot, sizeof(uint64_t));
    ctx.Sfence();
  }
}

void LogWindow::Release(ThreadContext& ctx) {
  LogSlotHeader* slot = current_slot();
  slot->state.store(static_cast<uint64_t>(SlotState::kFree), std::memory_order_release);
  ctx.TouchStore(slot, sizeof(uint64_t));
}

}  // namespace falcon
