// DRAM tuple cache for the ZenS re-implementation (paper §6.2.1: "ZenS ...
// uses an in-DRAM index and a buffer pool for tuple cache"; Zen's Met-Cache,
// §7). Read hits serve tuple data at DRAM latency instead of NVM latency.
//
// Direct-mapped over (table, key) with per-slot seqlocks: readers copy and
// validate; writers latch. Capacity misses simply overwrite the slot.

#ifndef SRC_CORE_TUPLE_CACHE_H_
#define SRC_CORE_TUPLE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/latch.h"
#include "src/sim/thread_context.h"

namespace falcon {

class TupleCache {
 public:
  // `slots` is rounded up to a power of two. `max_data` caps cached tuple
  // size; larger tuples bypass the cache.
  TupleCache(size_t slots, uint32_t max_data);

  // Copies the cached data for (table, key) into `out` (exactly `size`
  // bytes) if the cached copy carries exactly `version_ts` — the caller's
  // validated view of the tuple. The exact-version match keeps the cache
  // coherent with CC validation: serving an older (or newer) copy than the
  // version the transaction validated against would break serializability.
  bool Lookup(ThreadContext& ctx, uint64_t table, uint64_t key, uint64_t version_ts, void* out,
              uint32_t size);

  // Installs the cache entry (read-miss fill or update apply) tagged with
  // the data's version. Never overwrites a newer version with an older one.
  void Fill(ThreadContext& ctx, uint64_t table, uint64_t key, uint64_t version_ts,
            const void* data, uint32_t size);

  // Drops the entry for (table, key) if cached (delete path).
  void Invalidate(ThreadContext& ctx, uint64_t table, uint64_t key);

  void Clear();

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    std::atomic<uint32_t> version{0};  // seqlock: odd = being written
    SpinLatch write_latch;
    bool valid = false;
    uint64_t table = 0;
    uint64_t key = 0;
    uint64_t version_ts = 0;
    uint32_t size = 0;
    std::unique_ptr<std::byte[]> data;
  };

  Slot& SlotFor(uint64_t table, uint64_t key);

  size_t mask_;
  uint32_t max_data_;
  std::vector<Slot> slots_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace falcon

#endif  // SRC_CORE_TUPLE_CACHE_H_
