// The Falcon OLTP engine (paper §5) and its comparison configurations.
//
// One Engine instance owns a simulated NVM device's arena: catalog, tuple
// heaps, (optionally NVM-resident) indexes, and the per-thread log regions.
// Worker objects are per-thread sessions; Txn is the transaction handle.
//
// Typical use:
//
//   NvmDevice dev(1ull << 30);
//   Engine engine(&dev, EngineConfig::Falcon(CcScheme::kOcc), /*workers=*/4);
//   TableId t = engine.CreateTable(schema, IndexKind::kHash);
//   Worker& w = engine.worker(0);
//   Txn txn = w.Begin();
//   txn.Insert(t, key, data);
//   if (txn.Commit() != Status::kOk) { /* retry */ }
//
// Crash testing: construct an Engine over a device that already holds a
// formatted arena and it recovers automatically (replaying the small log
// windows, re-attaching or rebuilding indexes); see RecoveryReport.

#ifndef SRC_CORE_ENGINE_H_
#define SRC_CORE_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/cc/cc_scheme.h"
#include "src/cc/tid.h"
#include "src/core/access_map.h"
#include "src/core/config.h"
#include "src/core/hot_tuple_set.h"
#include "src/core/log_window.h"
#include "src/core/tuple_cache.h"
#include "src/index/index.h"
#include "src/obs/metrics.h"
#include "src/pmem/catalog.h"
#include "src/sim/thread_context.h"
#include "src/storage/schema.h"
#include "src/storage/tuple_heap.h"
#include "src/storage/version_heap.h"

namespace falcon {

using TableId = uint64_t;
inline constexpr TableId kInvalidTable = UINT64_MAX;

// Test-only crash injection points inside Commit() (§5.3 scenarios). When the
// engine's crash hook fires at one of these points, Commit throws
// TxnCrashed, freezing all engine state exactly as a power failure under
// eADR would.
enum class CrashPoint : uint8_t {
  kNone = 0,
  kBeforeCommitMark,  // write set logged but state still UNCOMMITTED
  kAfterCommitMark,   // state = COMMITTED, tuples not yet modified
  kMidApply,          // some tuples modified, some not
  kAfterApply,        // all modified, locks possibly still held
};

// Classification of the persistence-relevant events the step-counter crash
// API (Engine::ArmCrashAtStep) counts. Every event that moves durable state
// forward passes through exactly one of these, so a sweep over step numbers
// crashes a workload at every distinct persistence step.
enum class CrashStepKind : uint8_t {
  kNone = 0,
  kLogAppend,     // a write-set entry became durable in the txn's log slot
  kIndexInstall,  // a fresh insert became reachable through the index
  kPrepareMark,   // about to flip the slot state to PREPARED (2PC phase one)
  kCommitMark,    // about to flip the slot state to COMMITTED
  kTupleApply,    // about to apply one write-set entry to the heap
  kFlush,         // about to flush one applied tuple (selective persistence)
  kSlotRelease,   // about to free the log slot (post-commit)
};

inline const char* CrashStepKindName(CrashStepKind kind) {
  switch (kind) {
    case CrashStepKind::kNone: return "none";
    case CrashStepKind::kLogAppend: return "log-append";
    case CrashStepKind::kIndexInstall: return "index-install";
    case CrashStepKind::kPrepareMark: return "prepare-mark";
    case CrashStepKind::kCommitMark: return "commit-mark";
    case CrashStepKind::kTupleApply: return "tuple-apply";
    case CrashStepKind::kFlush: return "flush";
    case CrashStepKind::kSlotRelease: return "slot-release";
  }
  return "?";
}

// A step before kCommitMark fired means the victim transaction was never
// acknowledged: recovery must roll the whole write set back. From
// kCommitMark's own throw onward the slot is still UNCOMMITTED (the mark
// step fires *before* the state flip), so the boundary between all-old and
// all-new outcomes is: kind <= kCommitMark ⇒ all-old, kind > ⇒ all-new.
// kPrepareMark sits below kCommitMark: a crash during 2PC phase one leaves
// the coordinator undecided, so presumed abort rolls the transaction back on
// every shard — all-old.
inline bool CrashStepPrecedesCommit(CrashStepKind kind) {
  return kind <= CrashStepKind::kCommitMark;
}

// 2PC refinement of the same boundary. The single-shard rule holds verbatim
// on the coordinator (its kCommitMark throw fires before the decision flips),
// but a *participant* only reaches its own kCommitMark after the coordinator's
// decision is already durable — the Database commit protocol marks the
// coordinator first — so on a participant the decision precedes the crash
// from kCommitMark onward: every participant step >= kCommitMark is all-new.
// (Read-only branches fire no steps at all: an empty write set commits
// without touching durable state.)
inline bool CrashStepPrecedesTwoPcDecision(CrashStepKind kind, bool on_coordinator) {
  return on_coordinator ? kind <= CrashStepKind::kCommitMark
                        : kind < CrashStepKind::kCommitMark;
}

struct TxnCrashed {
  CrashPoint point = CrashPoint::kNone;
  CrashStepKind kind = CrashStepKind::kNone;  // set by step-counter crashes
  uint64_t step = 0;                          // 1-based step that fired
};

// Shared crash-injection state. Two modes:
//  - named points (legacy): one-shot CrashPoint consumed by the first commit
//    that passes it;
//  - step counter: every persistence-relevant event increments a global
//    counter, and the thread whose fetch_add lands exactly on the armed step
//    throws. fetch_add hands out unique step numbers, so even with many
//    committers racing, TxnCrashed fires in exactly one thread.
// Counting mode (Arm with crash disabled) measures how many steps a workload
// produces so a sweep can enumerate 1..N.
class CrashInjector {
 public:
  void ArmPoint(CrashPoint point) {
    point_.store(static_cast<uint8_t>(point), std::memory_order_release);
  }

  // Arms a crash at the `step`-th persistence event from now (1-based).
  void ArmStep(uint64_t step) {
    counter_.store(0, std::memory_order_relaxed);
    armed_step_.store(step, std::memory_order_release);
  }

  // Counting mode: events are numbered but never crash.
  void BeginCount() { ArmStep(0); }

  void Disarm() {
    point_.store(0, std::memory_order_release);
    armed_step_.store(UINT64_MAX, std::memory_order_release);
  }

  uint64_t StepsCounted() const { return counter_.load(std::memory_order_acquire); }

  // Returns true iff this thread is the unique winner of `point`.
  bool ConsumePoint(CrashPoint point) {
    if (point_.load(std::memory_order_relaxed) != static_cast<uint8_t>(point)) {
      return false;
    }
    return point_.exchange(0, std::memory_order_acq_rel) == static_cast<uint8_t>(point);
  }

  // Numbers one persistence event. Returns the step number if this event is
  // the armed one (crash!), 0 otherwise. Disarmed (armed == UINT64_MAX)
  // skips the fetch_add entirely so the production hot path stays one relaxed
  // load.
  uint64_t ConsumeStep() {
    if (armed_step_.load(std::memory_order_relaxed) == UINT64_MAX) {
      return 0;
    }
    const uint64_t n = counter_.fetch_add(1, std::memory_order_relaxed) + 1;
    return n == armed_step_.load(std::memory_order_relaxed) ? n : 0;
  }

 private:
  std::atomic<uint8_t> point_{0};
  std::atomic<uint64_t> armed_step_{UINT64_MAX};  // UINT64_MAX = disarmed
  std::atomic<uint64_t> counter_{0};
};

struct RecoveryReport {
  bool recovered = false;        // false when the arena was freshly formatted
  double catalog_ms = 0;         // re-open catalog + in-DRAM structures
  double index_ms = 0;           // persistent-index Recover() calls
  double replay_ms = 0;          // log replay / undo (in-place engines)
  double rebuild_ms = 0;         // heap scan + DRAM index rebuild (if needed)
  double total_ms = 0;
  uint64_t slots_replayed = 0;   // committed write sets re-applied
  uint64_t slots_discarded = 0;  // uncommitted write sets undone/ignored
  uint64_t tuples_scanned = 0;   // heap-scan recovery work (ZenS path)
  uint64_t deleted_entries = 0;  // deleted-list entries reconciled (§5.4)
};

// WorkerStats (commits / txn_aborts / reads / writes / abort taxonomy /
// phase breakdown) lives in src/obs/metrics.h with the rest of the
// observability layer.

class Engine;
class Worker;
class TxnFrame;
class FrameSource;
struct BatchRunStats;
class DbTxn;  // src/db/database.h: cross-shard transaction handle

// A transaction handle. Not thread safe; lives on one worker.
class Txn {
 public:
  // Not movable or copyable: C++17 guaranteed elision covers `Txn t =
  // worker.Begin();`, and a second live handle could double-rollback.
  Txn(Txn&&) = delete;
  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;
  Txn& operator=(Txn&&) = delete;

  // A transaction dropped while still active rolls back.
  ~Txn() {
    if (active_) {
      Abort();
    }
  }

  // Reads the whole tuple data for `key` into `out` (tuple_data_size bytes).
  Status Read(TableId table, uint64_t key, void* out);

  // Reads one column.
  Status ReadColumn(TableId table, uint64_t key, uint32_t column, void* out);

  // Overwrites one column.
  Status UpdateColumn(TableId table, uint64_t key, uint32_t column, const void* value);

  // Overwrites an arbitrary byte range of the tuple data.
  Status UpdatePartial(TableId table, uint64_t key, uint32_t offset, uint32_t len,
                       const void* value);

  // Overwrites the whole tuple data.
  Status UpdateFull(TableId table, uint64_t key, const void* value);

  // Inserts a new tuple. kDuplicate if the key exists.
  Status Insert(TableId table, uint64_t key, const void* data);

  // Deletes the tuple (delete-flag + deferred reclamation, §5.4).
  Status Delete(TableId table, uint64_t key);

  // Ordered scan (B+tree tables only): visits tuples with key in
  // [start_key, end_key], ascending, up to `limit`. The visitor gets the key
  // and the tuple data snapshot.
  Status Scan(TableId table, uint64_t start_key, uint64_t end_key, size_t limit,
              const std::function<void(uint64_t, const std::byte*)>& visit);

  // Two-phase commit epilogue per Algorithm 1. On kAborted all effects are
  // rolled back and the caller may retry.
  Status Commit();

  // Explicit abort; releases locks and the log slot.
  void Abort();

  uint64_t tid() const { return tid_; }
  bool read_only() const { return read_only_; }
  bool prepared() const { return prepared_; }

 private:
  friend class Worker;
  friend class TxnFrame;
  friend class DbTxn;

  struct ReadEntry {
    TupleHeader* header;
    uint64_t observed;  // cc_word snapshot (OCC validation)
    PmOffset tuple;     // offset of the tuple (access-map key)
  };

  struct LockEntry {
    TupleHeader* header;
    bool write;               // 2PL: read vs write lock; TO/OCC always write
    uint64_t restore_ts = 0;  // TO/OCC: pre-lock timestamp for abort
  };

  struct WriteEntry {
    TableId table;
    uint64_t key;
    PmOffset tuple;       // target (in-place) or current head (out-of-place)
    LogOpKind kind;
    uint32_t offset;
    uint32_t len;
    uint64_t payload_pos;  // byte offset of payload inside the log slot
    uint64_t observed;     // cc_word snapshot at op time (OCC)
    PmOffset new_version;  // out-of-place: freshly written version
    // Next write entry for the same tuple (access-map chain); the overlay
    // for read-own-writes replays exactly this chain, in program order.
    uint32_t next_same = AccessMap::kNone;
  };

  // Worker-owned scratch arena for the access sets: Begin() clears instead
  // of reallocating, with capacity pre-reserved from a running high-water
  // mark, so steady-state transactions perform no heap allocation.
  struct Scratch {
    std::vector<ReadEntry> read_set;
    std::vector<WriteEntry> write_set;
    std::vector<LockEntry> locks;
    AccessMap amap;
    std::vector<std::byte> column_buf;  // ReadColumn whole-tuple staging
    std::vector<std::byte> scan_buf;    // Scan row staging
    std::vector<IndexEntry> scan_entries;
    uint32_t scan_depth = 0;  // >0: a Scan visitor is live; nested Scans
                              // fall back to local buffers
    size_t read_hw = 0;
    size_t write_hw = 0;
    size_t locks_hw = 0;
    bool in_use = false;  // one active transaction per worker

    void BeginTxn() {
      read_hw = std::max(read_hw, read_set.size());
      write_hw = std::max(write_hw, write_set.size());
      locks_hw = std::max(locks_hw, locks.size());
      read_set.clear();
      write_set.clear();
      locks.clear();
      amap.Clear();
      read_set.reserve(read_hw);
      write_set.reserve(write_hw);
      locks.reserve(locks_hw);
    }
  };

  // `scratch` is the access-set arena the transaction runs on: the worker's
  // own arena for serial execution, a frame's private arena for batched
  // execution (several transactions in flight on one worker).
  Txn(Worker* worker, Scratch* scratch, bool read_only);

  // Resolves key -> tuple offset via the table's index.
  PmOffset Lookup(TableId table, uint64_t key);

  // CC-checked stable read of tuple data into out (nullptr = presence only).
  Status ReadTuple(TableId table, uint64_t key, PmOffset tuple, void* out);

  // Raw data copy, optionally served by the ZenS DRAM tuple cache.
  void ReadTupleData(TableId table, uint64_t key, TupleHeader* header, void* out,
                     uint32_t data_size);

  // Multi-version snapshot read for read-only transactions.
  Status ReadSnapshot(TableId table, uint64_t key, PmOffset tuple, void* out);

  // Common write-intent path: CC admission + redo buffering.
  Status WriteIntent(TableId table, uint64_t key, LogOpKind kind, uint32_t offset,
                     uint32_t len, const void* value);

  // Out-of-place: writes the new version into the heap at execution time.
  Status OutOfPlaceIntent(TableId table, uint64_t key, PmOffset tuple, LogOpKind kind,
                          uint32_t offset, uint32_t len, const void* value, uint64_t observed,
                          bool allow_reclaim = true);

  // CC admission for a write (locks for 2PL/TO, observation for OCC).
  Status AdmitWrite(PmOffset tuple, TupleHeader* header, uint64_t* observed_out);

  Status CommitInPlace();
  Status CommitOutOfPlace();

  // Commit-path building blocks, shared with the 2PC path below. They are
  // verbatim extractions from CommitInPlace/CommitOutOfPlace: same ctx
  // charges in the same order, so single-shard commits stay byte-identical.
  Status OccValidate();               // lock write set + revalidate read set
  void ApplyInPlace();                // apply + flush + unlock + slot release
  void ApplyOutOfPlace();
  void FinishCommitBookkeeping();     // retire tid, bump commits, GC, trace

  // Two-phase commit participant API (driven by DbTxn, src/db/database.h).
  // Prepare2pc validates exactly like Commit would, appends a kPrepare2pc
  // marker entry carrying {gid, coordinator shard}, and durably flips the
  // slot to PREPARED — locks and the slot stay held. MarkDecidedCommit flips
  // PREPARED -> COMMITTED (the decision record; on the coordinator this is
  // the whole transaction's commit point). FinishCommitPrepared applies the
  // write set and runs the normal post-commit bookkeeping. Abort() works
  // unchanged on a prepared branch (presumed abort: slot -> FREE).
  Status Prepare2pc(uint64_t gid, uint32_t coordinator_shard);
  void MarkDecidedCommit();
  Status FinishCommitPrepared();

  // Copies the pre-image into the DRAM version heap and links the chain.
  void CreateDramVersion(TableId table, TupleHeader* header);

  // Installs write_ts = tid and releases the tuple (Algorithm 1 line 5).
  void FinalizeTuple(PmOffset tuple, TupleHeader* header);

  // Out-of-place apply helpers: stamp a committed version / retire the
  // superseded head while preserving its creation timestamp.
  void StampCommitted(TupleHeader* header);
  void RetireOldVersion(PmOffset tuple, TupleHeader* header, bool superseded);

  // The tuple's commit timestamp under the current scheme.
  uint64_t WriteTsOf(TupleHeader* header) const;

  bool EnsureSlot();

  // O(1) access-set queries via the per-transaction map (keyed by tuple
  // offset, which identifies the header uniquely across all heaps).
  LockEntry* FindLock(PmOffset tuple);
  bool WriteSetContains(PmOffset tuple) const;
  // -1 when this txn has no pending write on the tuple, otherwise the
  // LogOpKind of the last one. Own-txn visibility: a pending insert revives
  // a tombstone (the physical delete flag clears only at apply), and a
  // pending delete kills a physically-live tuple.
  int LastPendingWriteKind(PmOffset tuple) const;

  // Records locks_.back() / write_set_.back() in the access map.
  void RegisterLock(PmOffset tuple);
  void RegisterWrite(PmOffset tuple);

  // Drops the tuple's lock entry (if any) so rollback won't touch it again.
  void ForgetLock(PmOffset tuple);

  // Stamps the reason the in-flight abort will be attributed to and returns
  // kAborted, so failure sites read `return Fail(AbortReason::k...)`. The
  // stamp is consumed (and reset) by Abort().
  Status Fail(AbortReason reason) {
    next_abort_reason_ = reason;
    return Status::kAborted;
  }

  // Fail() for CC conflicts: additionally records a conflict edge in the
  // flight recorder (wounded txn = this one, `holder` = the CC word / ts of
  // the wounding side observed at the conflict).
  Status FailConflict(AbortReason reason, PmOffset tuple, uint64_t holder);

  void ReleaseLocks();
  void MaybeCrash(CrashPoint point);
  // Step-counter crash hook: numbers one persistence event of kind `kind`
  // and throws TxnCrashed{kNone, kind, step} if it is the armed step.
  void CrashStep(CrashStepKind kind);

  // Overlays this txn's pending writes of `tuple` onto `buf` (read-own-writes).
  void OverlayPendingWrites(PmOffset tuple, std::byte* buf, uint32_t data_size);

  Worker* worker_;
  Scratch* scratch_;  // access-set arena this txn runs on
  uint64_t tid_;
  bool read_only_;
  bool active_ = true;
  bool slot_open_ = false;
  bool prepared_ = false;  // 2PC: Prepare2pc succeeded, awaiting decision
  LogCursor log_cursor_;  // open log slot handle (valid while slot_open_)
  // Simulated begin time, captured only when tracing (closes the txn span).
  uint64_t trace_begin_ns_ = 0;
  // Attribution for the next Abort(): failure sites stamp it via Fail();
  // an un-stamped abort is a user abort.
  AbortReason next_abort_reason_ = AbortReason::kUser;
  // Access-set storage lives in the worker's scratch arena (see Scratch).
  std::vector<ReadEntry>& read_set_;
  std::vector<WriteEntry>& write_set_;
  std::vector<LockEntry>& locks_;  // 2PL locks / TO write locks held
  AccessMap& amap_;
};

// Per-thread session: simulation context, small log window, hot tuple set,
// version heap.
class Worker {
 public:
  Txn Begin(bool read_only = false);

  // Batched execution (src/core/batch.h): runs frames pulled from `source`
  // with up to `batch_size` in flight, interleaving them at simulated stall
  // boundaries on the overlap-aware BatchClock. batch_size = 1 degenerates
  // to serial execution with identical device traffic.
  BatchRunStats RunBatch(uint32_t batch_size, FrameSource& source);

  ThreadContext& ctx() { return ctx_; }
  uint32_t id() const { return id_; }
  Engine* engine() { return engine_; }
  LogWindow& log() { return *log_; }  // test/harness introspection
  const WorkerStats& stats() const { return stats_; }
  void ResetStats();

 private:
  friend class Engine;
  friend class Txn;
  friend class TxnFrame;
  friend class DbTxn;

  Worker(Engine* engine, uint32_t id, PmOffset log_base);

  // Active-TID bookkeeping that tolerates several in-flight transactions on
  // this worker. TIDs are handed out monotonically per worker, so the front
  // of the list is always the oldest — the one the global table must
  // publish for the GC horizon.
  void PublishTid(uint64_t tid);
  void RetireTid(uint64_t tid);

  // Wires this worker's flight-recorder ring through every emitter it owns.
  void set_trace(TraceRing* trace) {
    trace_ = trace;
    ctx_.set_trace(trace);
    log_->set_trace(trace);
  }

  Engine* engine_;
  uint32_t id_;
  ThreadContext ctx_;
  std::unique_ptr<LogWindow> log_;
  HotTupleSet hot_;
  VersionHeap versions_;
  WorkerStats stats_;
  Txn::Scratch scratch_;  // reused access-set storage (one live serial txn)
  // In-flight TIDs, oldest first (TIDs are per-worker monotone).
  std::vector<uint64_t> active_frame_tids_;
  TraceRing* trace_ = nullptr;  // null = tracing disabled
};

// One prepared-but-undecided 2PC slot found in a crashed engine's log
// regions before recovery ran (see Engine::ScanPreparedTwoPc).
struct PreparedTwoPcSlot {
  uint32_t worker = 0;
  uint32_t slot = 0;
  uint64_t tid = 0;
  uint64_t gid = 0;          // global transaction id (marker entry's key)
  uint32_t coordinator = 0;  // coordinator shard (marker entry's offset)
  bool has_marker = false;   // marker entry parsed successfully
};

class Engine {
 public:
  // Formats a fresh database on `device`, or — if the device already holds a
  // formatted arena — opens it and runs recovery (§5.3).
  //
  // `defer_recovery` (Database layer): when the device holds a formatted
  // arena, skip recovery for now — the caller inspects and resolves prepared
  // 2PC slots first (ScanPreparedTwoPc / ResolveTwoPcSlot) and then calls
  // FinishOpen() to run the normal open + replay. A fresh device formats
  // immediately and FinishOpen() is a no-op.
  Engine(NvmDevice* device, EngineConfig config, uint32_t workers,
         bool defer_recovery = false);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Creates a table (fresh databases only; tables are re-attached on open).
  // Returns kInvalidTable when the catalog is full or the name is taken.
  TableId CreateTable(const SchemaBuilder& schema, IndexKind index_kind);

  // Looks up a table id by name (after recovery).
  std::optional<TableId> FindTableId(std::string_view name) const;

  Worker& worker(uint32_t id) { return *workers_[id]; }
  uint32_t worker_count() const { return static_cast<uint32_t>(workers_.size()); }

  const EngineConfig& config() const { return config_; }
  NvmArena& arena() { return arena_; }
  NvmDevice* device() { return device_; }
  const RecoveryReport& recovery_report() const { return recovery_report_; }

  // Deferred-open protocol (see the constructor). The scan/resolve calls
  // below work on a deferred engine: they walk the raw log regions straight
  // off the superblock, before any tables or workers are attached.
  bool open_deferred() const { return open_deferred_; }
  void FinishOpen();

  // Every slot still in state kPrepared, with its 2PC marker entry parsed.
  std::vector<PreparedTwoPcSlot> ScanPreparedTwoPc() const;

  // True iff some slot in state kCommitted carries a kPrepare2pc marker for
  // `gid` — i.e. this engine (as coordinator) durably decided commit.
  // Decided-and-fully-applied transactions release their slot, so a freed
  // slot never matches; presumed abort covers that case because the
  // coordinator only frees its slot after every participant has committed.
  bool FindTwoPcCommitDecision(uint64_t gid) const;

  // Patches one prepared slot to kCommitted (commit) or kUncommitted
  // (abort) so the normal recovery pass replays or discards it.
  void ResolveTwoPcSlot(const PreparedTwoPcSlot& slot, bool commit);

  uint64_t TupleDataSize(TableId table) const { return tables_[table].meta->tuple_data_size; }
  const TableMeta& table_meta(TableId table) const { return *tables_[table].meta; }
  Index& table_index(TableId table) { return *tables_[table].index; }
  TupleHeap& table_heap(TableId table) { return *tables_[table].heap; }

  // Oldest in-flight TID (GC horizon).
  uint64_t MinActiveTid() const;

  // Test hook: the next time any commit passes `point`, throw TxnCrashed.
  // Exactly one thread fires (atomic exchange on the armed point).
  void ArmCrashPoint(CrashPoint point) { crash_.ArmPoint(point); }

  // Test hook: crash at the `step`-th persistence-relevant event from now
  // (1-based; log append, index install, commit mark, tuple apply, flush,
  // slot release). Exactly one thread fires even under concurrency.
  void ArmCrashAtStep(uint64_t step) { crash_.ArmStep(step); }

  // Counting mode: number every persistence event without crashing, so a
  // sweep can read CrashStepsCounted() and then enumerate 1..N.
  void BeginCrashStepCount() { crash_.BeginCount(); }
  uint64_t CrashStepsCounted() const { return crash_.StepsCounted(); }

  void DisarmCrash() { crash_.Disarm(); }

  // Sums the basic worker counters (commits / txn_aborts / reads / writes /
  // abort taxonomy / phase breakdown) across workers.
  WorkerStats AggregateStats() const;

  // One engine-wide metrics snapshot: aggregated worker counters, component
  // stats (hot tuple sets, log windows, version heaps, cache models) and the
  // device totals. Non-destructive — does not drain the XPBuffer or reset
  // anything; diff two snapshots (DiffMetrics) to measure a window.
  MetricsSnapshot SnapshotMetrics() const;

  // Allocates one flight-recorder ring per worker and wires it through every
  // emitter (Txn, ThreadContext, LogWindow). Called automatically at
  // construction when FALCON_TRACE is set; tests and the crash-sweep harness
  // call it directly. capacity_per_thread == 0 reads FALCON_TRACE_EVENTS.
  void EnableTracing(size_t capacity_per_thread = 0);
  bool tracing_enabled() const { return tracer_.enabled(); }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

 private:
  friend class Txn;
  friend class Worker;

  struct TableRuntime {
    TableMeta* meta = nullptr;
    std::unique_ptr<TupleHeap> heap;
    std::unique_ptr<Index> index;
  };

  void FormatFresh(uint32_t workers);
  void OpenExisting(uint32_t workers);
  void AttachWorkers(uint32_t workers);
  void AttachTable(TableMeta* meta, ThreadContext& ctx, bool fresh);

  // Recovery stages (§5.3).
  void RecoverInPlace(ThreadContext& ctx, RecoveryReport& report);
  void RecoverOutOfPlace(ThreadContext& ctx, RecoveryReport& report);
  void RebuildDramIndexes(ThreadContext& ctx, RecoveryReport& report);
  // Walks every table's per-thread deleted lists, truncating at the first
  // torn link (a crash can die between MarkDeleted's flag store and the
  // predecessor/tail updates), and recomputes the tails. O(list length).
  void ReconcileDeletedLists(ThreadContext& ctx, RecoveryReport& report);

  // Current 8-bit lock generation (stale 2PL lock words decode as free).
  uint64_t lock_generation() const { return lock_gen_; }

  NvmDevice* device_;
  EngineConfig config_;
  NvmArena arena_;
  std::vector<TableRuntime> tables_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<IndexSpace> index_space_;
  std::unique_ptr<TupleCache> tuple_cache_;
  TidGenerator tid_gen_;
  ActiveTidTable active_tids_;
  uint64_t lock_gen_ = 1;
  CrashInjector crash_;
  RecoveryReport recovery_report_;
  Tracer tracer_;
  bool open_deferred_ = false;       // constructor deferred OpenExisting
  uint32_t deferred_workers_ = 0;    // worker count requested at construction
};

}  // namespace falcon

#endif  // SRC_CORE_ENGINE_H_
