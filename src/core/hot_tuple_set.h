// Hot tuple tracking (paper D2, §4.4): a small per-thread LRU of tuple
// offsets. Tuples found in the set are NOT hint-flushed at commit — repeated
// updates to hot tuples coalesce in the (persistent) cache instead of being
// written to NVM over and over. Tuples missing from the set are flushed and
// then cached (Algorithm 1, lines 9-11).

#ifndef SRC_CORE_HOT_TUPLE_SET_H_
#define SRC_CORE_HOT_TUPLE_SET_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/pmem/arena.h"

namespace falcon {

class HotTupleSet {
 public:
  explicit HotTupleSet(size_t capacity) : capacity_(capacity) {}

  // True if `tuple` is tracked as hot. Refreshes its recency.
  bool Contains(PmOffset tuple) {
    const auto it = map_.find(tuple);
    if (it == map_.end()) {
      return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }

  // Starts tracking `tuple`, evicting the coldest entry if full.
  void Cache(PmOffset tuple) {
    const auto it = map_.find(tuple);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    if (map_.size() >= capacity_) {
      map_.erase(lru_.back());
      lru_.pop_back();
    }
    lru_.push_front(tuple);
    map_[tuple] = lru_.begin();
  }

  void Clear() {
    map_.clear();
    lru_.clear();
  }

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  std::list<PmOffset> lru_;
  std::unordered_map<PmOffset, std::list<PmOffset>::iterator> map_;
};

}  // namespace falcon

#endif  // SRC_CORE_HOT_TUPLE_SET_H_
