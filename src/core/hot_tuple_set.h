// Hot tuple tracking (paper D2, §4.4): a small per-thread LRU of tuple
// offsets. Tuples found in the set are NOT hint-flushed at commit — repeated
// updates to hot tuples coalesce in the (persistent) cache instead of being
// written to NVM over and over. Tuples missing from the set are flushed and
// then cached (Algorithm 1, lines 9-11).
//
// Runs on the commit path of every flushing transaction, so it is built like
// the device's XPBuffer shard: a fixed slot array with an intrusive LRU list
// and an open-addressed index, allocating only at construction. (The obvious
// std::list + std::unordered_map pairing costs two node allocations per
// cached tuple — measurable in the commit profile.)

#ifndef SRC_CORE_HOT_TUPLE_SET_H_
#define SRC_CORE_HOT_TUPLE_SET_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/pmem/arena.h"

namespace falcon {

// Tracking effectiveness counters. Single-writer (the owning worker).
struct HotTupleSetStats {
  uint64_t hits = 0;       // Contains() found the tuple (flush skipped)
  uint64_t misses = 0;     // Contains() missed (tuple gets flushed + cached)
  uint64_t evictions = 0;  // cold entry pushed out by Cache() at capacity
  uint64_t inserts = 0;    // new tuples admitted by Cache()
};

class HotTupleSet {
 public:
  explicit HotTupleSet(size_t capacity) : capacity_(capacity) {
    slots_.resize(capacity_);
    free_head_ = kNone;
    for (size_t i = capacity_; i-- > 0;) {
      slots_[i].next = free_head_;
      free_head_ = static_cast<uint32_t>(i);
    }
    size_t table_size = 4;
    while (table_size < capacity_ * 2) {
      table_size <<= 1;
    }
    table_.assign(table_size, kNone);
  }

  // True if `tuple` is tracked as hot. Refreshes its recency.
  bool Contains(PmOffset tuple) {
    const uint32_t slot = Lookup(tuple);
    if (slot == kNone) {
      ++stats_.misses;
      return false;
    }
    ++stats_.hits;
    MoveToFront(slot);
    return true;
  }

  // Membership query without recency refresh or hit/miss accounting (for
  // tests and diagnostics; the commit path uses Contains).
  bool ContainsQuiet(PmOffset tuple) const { return Lookup(tuple) != kNone; }

  // Starts tracking `tuple`, evicting the coldest entry if full.
  void Cache(PmOffset tuple) {
    if (capacity_ == 0) {
      return;
    }
    const uint32_t existing = Lookup(tuple);
    if (existing != kNone) {
      MoveToFront(existing);
      return;
    }
    if (size_ >= capacity_) {
      const uint32_t victim = lru_tail_;
      Unlink(victim);
      Erase(slots_[victim].tuple);
      slots_[victim].next = free_head_;
      free_head_ = victim;
      --size_;
      ++stats_.evictions;
    }
    const uint32_t slot = free_head_;
    free_head_ = slots_[slot].next;
    slots_[slot].tuple = tuple;
    PushFront(slot);
    Insert(tuple, slot);
    ++size_;
    ++stats_.inserts;
  }

  void Clear() {
    std::fill(table_.begin(), table_.end(), kNone);
    free_head_ = kNone;
    for (size_t i = capacity_; i-- > 0;) {
      slots_[i].next = free_head_;
      free_head_ = static_cast<uint32_t>(i);
    }
    lru_head_ = kNone;
    lru_tail_ = kNone;
    size_ = 0;
  }

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }

  const HotTupleSetStats& stats() const { return stats_; }
  void ResetStats() { stats_ = HotTupleSetStats{}; }

 private:
  static constexpr uint32_t kNone = UINT32_MAX;

  struct Node {
    PmOffset tuple = kNullPm;
    uint32_t prev = kNone;
    uint32_t next = kNone;
  };

  uint32_t Lookup(PmOffset tuple) const {
    const size_t mask = table_.size() - 1;
    size_t pos = Mix64(tuple) & mask;
    while (table_[pos] != kNone) {
      if (slots_[table_[pos]].tuple == tuple) {
        return table_[pos];
      }
      pos = (pos + 1) & mask;
    }
    return kNone;
  }

  void Insert(PmOffset tuple, uint32_t slot) {
    const size_t mask = table_.size() - 1;
    size_t pos = Mix64(tuple) & mask;
    while (table_[pos] != kNone) {
      pos = (pos + 1) & mask;
    }
    table_[pos] = slot;
  }

  void Erase(PmOffset tuple) {
    // Linear-probing deletion: drop the entry, then re-insert the remainder
    // of its probe cluster (the table is small, so this stays cheap).
    const size_t mask = table_.size() - 1;
    size_t pos = Mix64(tuple) & mask;
    while (table_[pos] != kNone && slots_[table_[pos]].tuple != tuple) {
      pos = (pos + 1) & mask;
    }
    if (table_[pos] == kNone) {
      return;
    }
    table_[pos] = kNone;
    size_t next = (pos + 1) & mask;
    while (table_[next] != kNone) {
      const uint32_t slot = table_[next];
      table_[next] = kNone;
      Insert(slots_[slot].tuple, slot);
      next = (next + 1) & mask;
    }
  }

  void PushFront(uint32_t slot) {
    slots_[slot].prev = kNone;
    slots_[slot].next = lru_head_;
    if (lru_head_ != kNone) {
      slots_[lru_head_].prev = slot;
    }
    lru_head_ = slot;
    if (lru_tail_ == kNone) {
      lru_tail_ = slot;
    }
  }

  void Unlink(uint32_t slot) {
    const uint32_t prev = slots_[slot].prev;
    const uint32_t next = slots_[slot].next;
    if (prev != kNone) {
      slots_[prev].next = next;
    } else {
      lru_head_ = next;
    }
    if (next != kNone) {
      slots_[next].prev = prev;
    } else {
      lru_tail_ = prev;
    }
  }

  void MoveToFront(uint32_t slot) {
    if (lru_head_ == slot) {
      return;
    }
    Unlink(slot);
    PushFront(slot);
  }

  size_t capacity_;
  size_t size_ = 0;
  std::vector<Node> slots_;
  std::vector<uint32_t> table_;
  uint32_t free_head_ = kNone;
  uint32_t lru_head_ = kNone;
  uint32_t lru_tail_ = kNone;
  HotTupleSetStats stats_;
};

}  // namespace falcon

#endif  // SRC_CORE_HOT_TUPLE_SET_H_
