// Transaction execution paths: CC admission, redo buffering in the small
// log window, Algorithm 1 commit (in-place) and the log-free out-of-place
// commit, snapshot reads, and rollback.

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/cc/locks.h"
#include "src/core/engine.h"

namespace falcon {

namespace {

inline uint64_t* PhaseAcc(WorkerStats& stats, SimPhase phase) {
  return &stats.phase_ns[static_cast<size_t>(phase)];
}

}  // namespace

Txn::Txn(Worker* worker, Scratch* scratch, bool read_only)
    : worker_(worker),
      scratch_(scratch),
      read_only_(read_only),
      read_set_(scratch->read_set),
      write_set_(scratch->write_set),
      locks_(scratch->locks),
      amap_(scratch->amap) {
  // One live transaction per arena: serial execution recycles the worker's
  // own scratch; batched frames each bring their own.
  assert(!scratch_->in_use && "one active Txn per scratch arena");
  scratch_->BeginTxn();
  scratch_->in_use = true;
  Engine* engine = worker_->engine_;
  tid_ = engine->tid_gen_.Next(worker_->id_);
  // Publish before any access: the GC horizon must cover us (§5.4).
  worker_->PublishTid(tid_);
  worker_->ctx_.Work(engine->config().cost_params.txn_overhead_ns);
  if (TraceRing* tr = worker_->trace_; tr != nullptr) {
    tr->set_current_txn(tid_);
    trace_begin_ns_ = worker_->ctx_.sim_ns();
    tr->Emit(TraceEventKind::kTxnBegin, trace_begin_ns_, read_only_ ? 1 : 0);
  }
}

PmOffset Txn::Lookup(TableId table, uint64_t key) {
  return worker_->engine_->table_index(table).Lookup(worker_->ctx_, key);
}

void Txn::MaybeCrash(CrashPoint point) {
  if (worker_->engine_->crash_.ConsumePoint(point)) {
    // Freeze the transaction: the exception unwinds through the Txn's
    // destructor, which must NOT roll back — a power failure leaves state
    // exactly as-is, and that is what recovery is tested against. The TID
    // stays published on purpose (the frozen txn is still "in flight").
    active_ = false;
    scratch_->in_use = false;
    throw TxnCrashed{point};
  }
}

void Txn::CrashStep(CrashStepKind kind) {
  const uint64_t step = worker_->engine_->crash_.ConsumeStep();
  if (step != 0) {
    // Same freeze-in-place semantics as MaybeCrash: no rollback on unwind.
    active_ = false;
    scratch_->in_use = false;
    if (TraceRing* tr = worker_->trace_; tr != nullptr) {
      tr->Emit(TraceEventKind::kCrashFired, worker_->ctx_.sim_ns(),
               static_cast<uint64_t>(kind), step);
    }
    throw TxnCrashed{CrashPoint::kNone, kind, step};
  }
}

Status Txn::FailConflict(AbortReason reason, PmOffset tuple, uint64_t holder) {
  if (TraceRing* tr = worker_->trace_; tr != nullptr) {
    TraceEventKind kind = TraceEventKind::kLockConflict;
    if (reason == AbortReason::kTsOrder) {
      kind = TraceEventKind::kTsConflict;
    } else if (reason == AbortReason::kOccValidation) {
      kind = TraceEventKind::kOccConflict;
    }
    tr->Emit(kind, worker_->ctx_.sim_ns(), tuple, holder);
  }
  return Fail(reason);
}

// ---- O(1) access-set tracking ----------------------------------------------
//
// Every query below is a single probe of the per-transaction access map
// (keyed by tuple offset, which identifies the header uniquely across all
// heaps because offsets are arena-global).

Txn::LockEntry* Txn::FindLock(PmOffset tuple) {
  AccessMap::Entry* e = amap_.Find(tuple);
  if (e == nullptr || e->lock_idx == AccessMap::kNone) {
    return nullptr;
  }
  return &locks_[e->lock_idx];
}

void Txn::RegisterLock(PmOffset tuple) {
  amap_.Intern(tuple).lock_idx = static_cast<uint32_t>(locks_.size() - 1);
  if (TraceRing* tr = worker_->trace_; tr != nullptr) {
    tr->Emit(TraceEventKind::kLockAcquire, worker_->ctx_.sim_ns(), tuple,
             locks_.back().write ? 1 : 0);
  }
}

void Txn::RegisterWrite(PmOffset tuple) {
  const auto idx = static_cast<uint32_t>(write_set_.size() - 1);
  AccessMap::Entry& e = amap_.Intern(tuple);
  if (e.write_head == AccessMap::kNone) {
    e.write_head = idx;
  } else {
    write_set_[e.write_tail].next_same = idx;
  }
  e.write_tail = idx;
}

void Txn::ForgetLock(PmOffset tuple) {
  AccessMap::Entry* e = amap_.Find(tuple);
  if (e != nullptr && e->lock_idx != AccessMap::kNone) {
    locks_[e->lock_idx].header = nullptr;
  }
}

// ---- Reads ------------------------------------------------------------------

Status Txn::Read(TableId table, uint64_t key, void* out) {
  Engine* engine = worker_->engine_;
  if (!active_) {
    return Status::kAborted;
  }
  worker_->ctx_.Work(engine->config().cost_params.op_overhead_ns);
  const PmOffset tuple = Lookup(table, key);
  if (tuple == kNullPm) {
    return Status::kNotFound;
  }
  if (read_only_ && IsMultiVersion(engine->config().cc)) {
    return ReadSnapshot(table, key, tuple, out);
  }
  const Status s = ReadTuple(table, key, tuple, out);
  if (s == Status::kAborted) {
    Abort();
  }
  ++worker_->stats_.reads;
  return s;
}

Status Txn::ReadColumn(TableId table, uint64_t key, uint32_t column, void* out) {
  Engine* engine = worker_->engine_;
  const TableMeta& meta = engine->table_meta(table);
  if (column >= meta.column_count) {
    return Status::kInvalidArgument;
  }
  // Column reads go through the whole-tuple path with a scratch buffer: the
  // simulated cost of the extra bytes is what distinguishes columnar access
  // patterns, and it is charged by Load() below either way. For the large
  // tuples used in §6.4 a stack buffer would not do; reuse a worker scratch.
  std::vector<std::byte>& scratch = scratch_->column_buf;
  scratch.resize(meta.tuple_data_size);
  const Status s = Read(table, key, scratch.data());
  if (s != Status::kOk) {
    return s;
  }
  std::memcpy(out, scratch.data() + meta.columns[column].offset, meta.columns[column].size);
  return Status::kOk;
}

Status Txn::ReadTuple(TableId table, uint64_t key, PmOffset tuple, void* out) {
  Engine* engine = worker_->engine_;
  ThreadContext& ctx = worker_->ctx_;
  TupleHeap& heap = engine->table_heap(table);
  TupleHeader* header = heap.Header(tuple);
  const auto data_size = static_cast<uint32_t>(engine->table_meta(table).tuple_data_size);
  const CcScheme scheme = BaseScheme(engine->config().cc);
  const uint64_t gen = engine->lock_generation();

  // One map probe answers both hot-path questions: do we hold the tuple's
  // lock, and is it already in our write set (own inserts are born locked)?
  const AccessMap::Entry* access = amap_.Find(tuple);
  const bool have_lock = access != nullptr && access->lock_idx != AccessMap::kNone;
  const bool pending_write = access != nullptr && access->write_head != AccessMap::kNone;

  switch (scheme) {
    case CcScheme::k2pl: {
      if (!have_lock && !pending_write) {
        if (!TryLockRead2pl(header->cc_word, gen)) {
          // No-wait (§5.2.1); the conflict edge names the last writer.
          return FailConflict(AbortReason::kLockConflict, tuple,
                              ConflictHolder2pl(header->cc_word.load(std::memory_order_relaxed),
                                                gen, header->read_ts.load(std::memory_order_relaxed)));
        }
        ctx.TouchStore(&header->cc_word, sizeof(uint64_t));
        locks_.push_back(LockEntry{header, /*write=*/false});
        RegisterLock(tuple);
      }
      if (header->key != key) {
        return Status::kNotFound;  // slot recycled under a stale index read
      }
      const uint64_t flags_2pl = header->flags.load(std::memory_order_acquire);
      if ((flags_2pl & kTupleSuperseded) != 0) {
        return Fail(AbortReason::kOther);  // stale head: a newer version exists
      }
      const int pending_2pl = pending_write ? LastPendingWriteKind(tuple) : -1;
      if (pending_2pl == static_cast<int>(LogOpKind::kDelete) ||
          (pending_2pl < 0 && (flags_2pl & kTupleDeleted) != 0)) {
        return Status::kNotFound;  // deleted — physically, or by our own write
      }
      if (out != nullptr) {
        ReadTupleData(table, key, header, out, data_size);
        OverlayPendingWrites(tuple, static_cast<std::byte*>(out), data_size);
      }
      return Status::kOk;
    }
    case CcScheme::kTo:
    case CcScheme::kOcc: {
      const bool mine = have_lock || pending_write;
      uint64_t observed = 0;
      for (int attempt = 0;; ++attempt) {
        observed = header->cc_word.load(std::memory_order_acquire);
        if (IsLockedTs(observed) && !mine) {
          // Writer in its commit window: no-wait.
          return FailConflict(AbortReason::kLockConflict, tuple, TsOf(observed));
        }
        if (scheme == CcScheme::kTo && TsOf(observed) > tid_) {
          // We would read from our future.
          return FailConflict(AbortReason::kTsOrder, tuple, TsOf(observed));
        }
        const uint64_t cur_flags = header->flags.load(std::memory_order_acquire);
        if ((cur_flags & kTupleSuperseded) != 0 && !mine) {
          return Fail(AbortReason::kOther);  // stale head: a newer version exists
        }
        const int pending_to = pending_write ? LastPendingWriteKind(tuple) : -1;
        if (header->key != key || pending_to == static_cast<int>(LogOpKind::kDelete) ||
            (pending_to < 0 && (cur_flags & kTupleDeleted) != 0)) {
          if (scheme == CcScheme::kOcc && !mine) {
            read_set_.push_back(ReadEntry{header, observed, tuple});
          }
          return Status::kNotFound;
        }
        if (out != nullptr) {
          ReadTupleData(table, key, header, out, data_size);
        }
        std::atomic_thread_fence(std::memory_order_acquire);
        if (mine || header->cc_word.load(std::memory_order_acquire) == observed) {
          break;
        }
        if (attempt >= 8) {
          return Fail(AbortReason::kOther);  // unstable word: retries exhausted
        }
      }
      if (scheme == CcScheme::kTo) {
        AdvanceReadTs(header->read_ts, tid_);
        ctx.TouchStore(&header->read_ts, sizeof(uint64_t));
      } else if (!mine) {
        read_set_.push_back(ReadEntry{header, observed, tuple});
      }
      if (out != nullptr) {
        OverlayPendingWrites(tuple, static_cast<std::byte*>(out), data_size);
      }
      return Status::kOk;
    }
    default:
      return Status::kInternal;
  }
}

void Txn::ReadTupleData(TableId table, uint64_t key, TupleHeader* header, void* out,
                        uint32_t data_size) {
  Engine* engine = worker_->engine_;
  ThreadContext& ctx = worker_->ctx_;
  TupleCache* cache = engine->tuple_cache_.get();
  if (cache == nullptr) {
    ctx.Load(out, TupleData(header), data_size);
    return;
  }
  // The cache is coherent by version: a hit requires the cached copy to
  // carry exactly the write timestamp the caller is validating against.
  const uint64_t version_ts = WriteTsOf(header);
  if (cache->Lookup(ctx, table, key, version_ts, out, data_size)) {
    // ZenS: hot data served from DRAM; the header access above already paid
    // the (unavoidable) NVM metadata cost.
    return;
  }
  ctx.Load(out, TupleData(header), data_size);
  // Only cache quiescent data: a locked word means a writer is mid-commit.
  if (!IsLockedTs(header->cc_word.load(std::memory_order_acquire))) {
    cache->Fill(ctx, table, key, version_ts, out, data_size);
  }
}

Status Txn::ReadSnapshot(TableId table, uint64_t key, PmOffset tuple, void* out) {
  Engine* engine = worker_->engine_;
  ThreadContext& ctx = worker_->ctx_;
  TupleHeap& heap = engine->table_heap(table);
  const auto data_size = static_cast<uint32_t>(engine->table_meta(table).tuple_data_size);
  const uint64_t gen = engine->lock_generation();
  const bool two_pl = BaseScheme(engine->config().cc) == CcScheme::k2pl;

  if (engine->config().update_mode == UpdateMode::kOutOfPlace) {
    // Version chain lives in the NVM heap via `prev` offsets. A chained slot
    // can be reclaimed and rewritten mid-walk, so every observation is
    // validated after the copy; on any inconsistency the walk restarts from
    // a fresh index lookup.
    for (int attempt = 0; attempt < 16; ++attempt) {
      PmOffset cur = attempt == 0 ? tuple : engine->table_index(table).Lookup(ctx, key);
      if (cur == kNullPm) {
        return Status::kNotFound;
      }
      bool restart = false;
      while (cur != kNullPm) {
        TupleHeader* header = heap.Header(cur);
        ctx.TouchLoad(header, sizeof(TupleHeader));
        if (header->key != key) {
          restart = true;  // chained slot was reclaimed and reused
          break;
        }
        const uint64_t word = header->cc_word.load(std::memory_order_acquire);
        const uint64_t flags = header->flags.load(std::memory_order_acquire);
        const bool locked =
            two_pl ? (Normalize2pl(word, gen) & k2plWriteBit) != 0 : IsLockedTs(word);
        const uint64_t version_ts =
            two_pl ? header->read_ts.load(std::memory_order_acquire) : TsOf(word);
        if ((flags & kTupleCommitted) != 0 && !locked && version_ts <= tid_) {
          if ((flags & kTupleDeleted) != 0 && header->delete_ts <= tid_) {
            return Status::kNotFound;
          }
          ctx.Load(out, TupleData(header), data_size);
          std::atomic_thread_fence(std::memory_order_acquire);
          if (header->cc_word.load(std::memory_order_acquire) != word ||
              header->flags.load(std::memory_order_acquire) != flags) {
            restart = true;  // version mutated under the copy
            break;
          }
          return Status::kOk;
        }
        cur = header->prev.load(std::memory_order_acquire);
      }
      if (!restart) {
        return Status::kNotFound;
      }
    }
    return Status::kAborted;
  }

  // In-place: old versions live in the DRAM version heap (§5.2.3, Figure 6).
  TupleHeader* header = heap.Header(tuple);
  if (header->key != key) {
    return Status::kNotFound;  // slot recycled under a stale index read
  }
  for (int attempt = 0; attempt < 64; ++attempt) {
    const uint64_t word = header->cc_word.load(std::memory_order_acquire);
    ctx.TouchLoad(header, sizeof(TupleHeader));
    const bool locked =
        two_pl ? (Normalize2pl(word, gen) & k2plWriteBit) != 0 : IsLockedTs(word);
    const uint64_t write_ts =
        two_pl ? header->read_ts.load(std::memory_order_acquire) : TsOf(word);
    const uint64_t flags = header->flags.load(std::memory_order_acquire);

    if (!locked && write_ts <= tid_) {
      // The tuple itself is in our snapshot.
      if ((flags & kTupleDeleted) != 0 && header->delete_ts <= tid_) {
        return Status::kNotFound;
      }
      ctx.Load(out, TupleData(header), data_size);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (header->cc_word.load(std::memory_order_acquire) == word) {
        return Status::kOk;
      }
      continue;  // writer slipped in during the copy
    }

    // Walk the version chain for the newest version inside the snapshot
    // (Figure 6: the transaction at TS=6 selects TupleA.V3 with begin 5).
    const uint64_t head_word = header->version_head.load(std::memory_order_acquire);
    const Version* v = UnpackTaggedPtr<Version>(engine->lock_generation(), head_word);
    while (v != nullptr && v->begin_ts > tid_) {
      v = v->prev;
    }
    if (v != nullptr) {
      std::memcpy(out, v->data(), data_size);
      ctx.TouchLoad(v->data(), data_size);  // DRAM-latency read
      return Status::kOk;
    }
    if (!locked) {
      // write_ts > tid and no covering version: the tuple was created after
      // our snapshot began.
      return Status::kNotFound;
    }
    // Writer mid-commit: its pre-image version will appear momentarily.
  }
  return Status::kAborted;
}

bool Txn::WriteSetContains(PmOffset tuple) const {
  const AccessMap::Entry* e = amap_.Find(tuple);
  return e != nullptr && e->write_head != AccessMap::kNone;
}

int Txn::LastPendingWriteKind(PmOffset tuple) const {
  const AccessMap::Entry* e = amap_.Find(tuple);
  if (e == nullptr || e->write_tail == AccessMap::kNone) {
    return -1;
  }
  return static_cast<int>(write_set_[e->write_tail].kind);
}

void Txn::OverlayPendingWrites(PmOffset tuple, std::byte* buf, uint32_t data_size) {
  // Replays exactly this tuple's write entries (chained by index, in program
  // order) onto the freshly read image — read-own-writes in O(k) where k is
  // the number of writes to THIS tuple, not the whole write set.
  const AccessMap::Entry* e = amap_.Find(tuple);
  if (e == nullptr || e->write_head == AccessMap::kNone) {
    return;
  }
  Engine* engine = worker_->engine_;
  const bool out_of_place = engine->config().update_mode == UpdateMode::kOutOfPlace;
  for (uint32_t i = e->write_head; i != AccessMap::kNone; i = write_set_[i].next_same) {
    const WriteEntry& w = write_set_[i];
    if (out_of_place) {
      if ((w.kind == LogOpKind::kUpdate || w.kind == LogOpKind::kInsert) &&
          w.new_version != kNullPm) {
        TupleHeader* nh = engine->table_heap(w.table).Header(w.new_version);
        std::memcpy(buf, TupleData(nh), data_size);
      }
    } else if (w.kind == LogOpKind::kUpdate || w.kind == LogOpKind::kInsert) {
      // kInsert covers tombstone revival: the full image lives in the log
      // until apply, while the heap still holds the deleted tuple's bytes.
      const std::byte* payload =
          LogWindow::SlotPayload(worker_->log_->SlotAt(log_cursor_.slot)) + w.payload_pos;
      std::memcpy(buf + w.offset, payload, w.len);
    }
  }
}

// ---- Writes -----------------------------------------------------------------

Status Txn::UpdateColumn(TableId table, uint64_t key, uint32_t column, const void* value) {
  const TableMeta& meta = worker_->engine_->table_meta(table);
  if (column >= meta.column_count) {
    return Status::kInvalidArgument;
  }
  return UpdatePartial(table, key, meta.columns[column].offset, meta.columns[column].size,
                       value);
}

Status Txn::UpdateFull(TableId table, uint64_t key, const void* value) {
  return UpdatePartial(table, key, 0,
                       static_cast<uint32_t>(worker_->engine_->table_meta(table).tuple_data_size),
                       value);
}

Status Txn::UpdatePartial(TableId table, uint64_t key, uint32_t offset, uint32_t len,
                          const void* value) {
  return WriteIntent(table, key, LogOpKind::kUpdate, offset, len, value);
}

Status Txn::Delete(TableId table, uint64_t key) {
  return WriteIntent(table, key, LogOpKind::kDelete, 0, 0, nullptr);
}

bool Txn::EnsureSlot() {
  if (slot_open_) {
    return true;
  }
  // Can fail only when sibling in-flight frames hold every slot; the window
  // is sized batch_size + 1 so this is an overload signal, not the norm.
  if (!worker_->log_->OpenSlot(worker_->ctx_, tid_, log_cursor_)) {
    return false;
  }
  slot_open_ = true;
  return true;
}

Status Txn::AdmitWrite(PmOffset tuple, TupleHeader* header, uint64_t* observed_out) {
  // CC admission for a write to an existing tuple. On success, 2PL/TO hold
  // the tuple lock; OCC records the observed version for validation.
  Engine* engine = worker_->engine_;
  ThreadContext& ctx = worker_->ctx_;
  const CcScheme scheme = BaseScheme(engine->config().cc);
  const uint64_t gen = engine->lock_generation();
  const AccessMap::Entry* access = amap_.Find(tuple);
  LockEntry* held = access != nullptr && access->lock_idx != AccessMap::kNone
                        ? &locks_[access->lock_idx]
                        : nullptr;
  const bool pending =  // e.g. our own fresh insert
      access != nullptr && access->write_head != AccessMap::kNone;

  switch (scheme) {
    case CcScheme::k2pl: {
      if (pending || (held != nullptr && held->write)) {
        return Status::kOk;
      }
      if (held != nullptr) {
        if (!TryUpgrade2pl(header->cc_word, gen)) {
          return FailConflict(AbortReason::kLockConflict, tuple,
                              ConflictHolder2pl(header->cc_word.load(std::memory_order_relaxed),
                                                gen, header->read_ts.load(std::memory_order_relaxed)));
        }
        held->write = true;
      } else {
        if (!TryLockWrite2pl(header->cc_word, gen)) {
          return FailConflict(AbortReason::kLockConflict, tuple,
                              ConflictHolder2pl(header->cc_word.load(std::memory_order_relaxed),
                                                gen, header->read_ts.load(std::memory_order_relaxed)));
        }
        locks_.push_back(LockEntry{header, /*write=*/true});
        RegisterLock(tuple);
      }
      ctx.TouchStore(&header->cc_word, sizeof(uint64_t));
      *observed_out = header->read_ts.load(std::memory_order_acquire);  // old write_ts
      return Status::kOk;
    }
    case CcScheme::kTo: {
      if (pending || held != nullptr) {
        *observed_out = held != nullptr ? held->restore_ts : 0;
        return Status::kOk;
      }
      uint64_t pre_ts = 0;
      if (!TryLockTs(header->cc_word, &pre_ts)) {
        return FailConflict(AbortReason::kLockConflict, tuple, TsOf(pre_ts));
      }
      ctx.TouchStore(&header->cc_word, sizeof(uint64_t));
      const uint64_t read_ts = header->read_ts.load(std::memory_order_acquire);
      if (TsOf(pre_ts) > tid_ || read_ts > tid_) {
        // A younger transaction already read or wrote this tuple.
        UnlockRestoreTs(header->cc_word, pre_ts);
        return FailConflict(AbortReason::kTsOrder, tuple, std::max(TsOf(pre_ts), read_ts));
      }
      locks_.push_back(LockEntry{header, /*write=*/true, pre_ts});
      RegisterLock(tuple);
      *observed_out = pre_ts;
      return Status::kOk;
    }
    case CcScheme::kOcc: {
      // Reuse the first observation for repeated writes to the same tuple
      // (including our own fresh inserts, which are born locked).
      if (pending) {
        *observed_out = write_set_[access->write_head].observed;
        return Status::kOk;
      }
      const uint64_t word = header->cc_word.load(std::memory_order_acquire);
      if (IsLockedTs(word)) {
        return FailConflict(AbortReason::kLockConflict, tuple, TsOf(word));
      }
      *observed_out = word;
      return Status::kOk;
    }
    default:
      return Status::kInternal;
  }
}

Status Txn::WriteIntent(TableId table, uint64_t key, LogOpKind kind, uint32_t offset,
                        uint32_t len, const void* value) {
  Engine* engine = worker_->engine_;
  ThreadContext& ctx = worker_->ctx_;
  if (!active_) {
    return Status::kAborted;
  }
  if (read_only_) {
    return Status::kInvalidArgument;
  }
  ctx.Work(engine->config().cost_params.op_overhead_ns);

  const PmOffset tuple = Lookup(table, key);
  if (tuple == kNullPm) {
    return Status::kNotFound;
  }
  TupleHeap& heap = engine->table_heap(table);
  TupleHeader* header = heap.Header(tuple);
  ctx.TouchLoad(header, sizeof(TupleHeader));

  if (header->key != key) {
    return Status::kNotFound;  // slot recycled under a stale index read
  }
  uint64_t observed = 0;
  const Status admit = AdmitWrite(tuple, header, &observed);
  if (admit != Status::kOk) {
    Abort();
    return Status::kAborted;
  }
  const uint64_t post_flags = header->flags.load(std::memory_order_acquire);
  if ((post_flags & kTupleSuperseded) != 0) {
    Fail(AbortReason::kOther);
    Abort();  // stale head: a newer version exists; retry from the index
    return Status::kAborted;
  }
  if (header->key != key) {
    return Status::kNotFound;
  }
  // Own-txn visibility: a pending insert revives the tombstone even though
  // the physical delete flag clears only at apply; a pending delete makes a
  // physically-live tuple dead to us.
  const int pending_kind = LastPendingWriteKind(tuple);
  if (pending_kind == static_cast<int>(LogOpKind::kDelete) ||
      (pending_kind < 0 && (post_flags & kTupleDeleted) != 0)) {
    return Status::kNotFound;
  }

  if (engine->config().update_mode == UpdateMode::kOutOfPlace) {
    return OutOfPlaceIntent(table, key, tuple, kind, offset, len, value, observed);
  }

  uint64_t payload_pos = 0;
  {
    PhaseTimer timer(ctx.sim_ns_ref(), PhaseAcc(worker_->stats_, SimPhase::kLogAppend),
                     worker_->trace_, SimPhase::kLogAppend);
    if (!EnsureSlot()) {
      Fail(AbortReason::kLogOverflow);
      Abort();
      return Status::kAborted;
    }
    payload_pos = LogWindow::NextPayloadPos(log_cursor_);
    if (!worker_->log_->Append(ctx, log_cursor_, table, key, tuple, kind, offset, len,
                               value)) {
      // Redo log larger than a window slot: the §5.5 limitation.
      Fail(AbortReason::kLogOverflow);
      Abort();
      return Status::kNoSpace;
    }
  }
  write_set_.push_back(WriteEntry{table, key, tuple, kind, offset, len, payload_pos, observed,
                                  kNullPm});
  RegisterWrite(tuple);
  ++worker_->stats_.writes;
  CrashStep(CrashStepKind::kLogAppend);
  return Status::kOk;
}

Status Txn::OutOfPlaceIntent(TableId table, uint64_t key, PmOffset tuple, LogOpKind kind,
                             uint32_t offset, uint32_t len, const void* value,
                             uint64_t observed, bool allow_reclaim) {
  Engine* engine = worker_->engine_;
  ThreadContext& ctx = worker_->ctx_;
  TupleHeap& heap = engine->table_heap(table);
  const auto data_size = static_cast<uint32_t>(engine->table_meta(table).tuple_data_size);

  if (kind == LogOpKind::kDelete) {
    // Unlike updates — whose freshly written version IS the log — a delete
    // leaves nothing in the heap for recovery to find, so it must ride in
    // the commit slot as an explicit entry. Otherwise a crash after the
    // commit mark but before the apply loop silently loses an acknowledged
    // delete.
    {
      PhaseTimer timer(ctx.sim_ns_ref(), PhaseAcc(worker_->stats_, SimPhase::kLogAppend),
                     worker_->trace_, SimPhase::kLogAppend);
      if (!EnsureSlot()) {
        Fail(AbortReason::kLogOverflow);
        Abort();
        return Status::kAborted;
      }
      if (!worker_->log_->Append(ctx, log_cursor_, table, key, tuple, kind, 0, 0,
                                 nullptr)) {
        Fail(AbortReason::kLogOverflow);
        Abort();
        return Status::kNoSpace;
      }
    }
    // If this txn already staged a replacement version for the key, the
    // delete tombstones that version (the old head is retired by the
    // update's own apply step; marking it deleted twice would corrupt the
    // deleted list).
    PmOffset pending = kNullPm;
    if (const AccessMap::Entry* access = amap_.Find(tuple); access != nullptr) {
      for (uint32_t i = access->write_head; i != AccessMap::kNone;
           i = write_set_[i].next_same) {
        if (write_set_[i].kind == LogOpKind::kUpdate) {
          pending = write_set_[i].new_version;
        }
      }
    }
    write_set_.push_back(
        WriteEntry{table, key, tuple, kind, 0, 0, 0, observed, pending});
    RegisterWrite(tuple);
    ++worker_->stats_.writes;
    CrashStep(CrashStepKind::kLogAppend);
    return Status::kOk;
  }

  // Repeated update of the same tuple: overlay onto the pending version
  // (found via the tuple's write chain in the access map).
  if (const AccessMap::Entry* access = amap_.Find(tuple); access != nullptr) {
    for (uint32_t i = access->write_head; i != AccessMap::kNone; i = write_set_[i].next_same) {
      WriteEntry& w = write_set_[i];
      if (w.kind == LogOpKind::kUpdate) {
        TupleHeader* nh = heap.Header(w.new_version);
        ctx.Store(TupleData(nh) + offset, value, len);
        CrashStep(CrashStepKind::kLogAppend);
        return Status::kOk;
      }
    }
  }

  // Log-as-data: write the new version into the heap now; its commit flag
  // stays clear until the commit record persists. Revivals must not reclaim
  // (their predecessor sits at the head of this thread's deleted list).
  const PmOffset fresh = heap.Allocate(ctx, key, allow_reclaim ? engine->MinActiveTid() : 0);
  if (fresh == kNullPm) {
    Fail(AbortReason::kOther);
    Abort();
    return Status::kNoSpace;
  }
  TupleHeader* nh = heap.Header(fresh);
  nh->cc_word.store(tid_ & kCcTsMask, std::memory_order_relaxed);
  // Mirror the creator TID in read_ts too: 2PL keeps its write timestamp
  // there, and recovery matches versions to commit records by this value.
  nh->read_ts.store(tid_, std::memory_order_relaxed);
  nh->prev.store(tuple, std::memory_order_relaxed);
  ctx.TouchStore(nh, sizeof(TupleHeader));

  TupleHeader* oh = heap.Header(tuple);
  if (offset != 0 || len != data_size) {
    // Partial update: out-of-place must copy the whole old tuple first —
    // the write amplification the paper calls out for TPC-C (§6.2.2).
    ctx.Load(TupleData(nh), TupleData(oh), data_size);
  }
  ctx.Store(TupleData(nh) + offset, value, len);

  write_set_.push_back(
      WriteEntry{table, key, tuple, kind, offset, len, 0, observed, fresh});
  RegisterWrite(tuple);
  ++worker_->stats_.writes;
  CrashStep(CrashStepKind::kLogAppend);
  return Status::kOk;
}

Status Txn::Insert(TableId table, uint64_t key, const void* data) {
  Engine* engine = worker_->engine_;
  ThreadContext& ctx = worker_->ctx_;
  if (!active_) {
    return Status::kAborted;
  }
  if (read_only_) {
    return Status::kInvalidArgument;
  }
  ctx.Work(engine->config().cost_params.op_overhead_ns);

  TupleHeap& heap = engine->table_heap(table);
  const auto data_size = static_cast<uint32_t>(engine->table_meta(table).tuple_data_size);
  const CcScheme scheme = BaseScheme(engine->config().cc);

  // A still-indexed tombstone (deleted, not yet reclaimed) is revived in
  // place under regular CC rather than re-allocated, so the index never
  // needs an entry swap.
  const PmOffset existing = Lookup(table, key);
  if (existing != kNullPm) {
    TupleHeader* tombstone = heap.Header(existing);
    ctx.TouchLoad(tombstone, sizeof(TupleHeader));
    if (tombstone->key != key ||
        (tombstone->flags.load(std::memory_order_acquire) & kTupleDeleted) == 0) {
      return Status::kDuplicate;
    }
    uint64_t observed = 0;
    if (AdmitWrite(existing, tombstone, &observed) != Status::kOk) {
      Abort();
      return Status::kAborted;
    }
    const uint64_t ts_flags = tombstone->flags.load(std::memory_order_acquire);
    if (tombstone->key != key || (ts_flags & kTupleDeleted) == 0 ||
        (ts_flags & kTupleSuperseded) != 0) {
      Fail(AbortReason::kOther);
      Abort();  // revived, superseded, or recycled while we were admitting
      return Status::kAborted;
    }
    if (engine->config().update_mode == UpdateMode::kOutOfPlace) {
      // Revival is a regular out-of-place update whose predecessor happens
      // to be a tombstone: the new version supersedes it at commit.
      return OutOfPlaceIntent(table, key, existing, LogOpKind::kUpdate, 0, data_size, data,
                              observed, /*allow_reclaim=*/false);
    }
    uint64_t payload_pos = 0;
    {
      PhaseTimer timer(ctx.sim_ns_ref(), PhaseAcc(worker_->stats_, SimPhase::kLogAppend),
                     worker_->trace_, SimPhase::kLogAppend);
      if (!EnsureSlot()) {
        Fail(AbortReason::kLogOverflow);
        Abort();
        return Status::kAborted;
      }
      payload_pos = LogWindow::NextPayloadPos(log_cursor_);
      if (!worker_->log_->Append(ctx, log_cursor_, table, key, existing, LogOpKind::kInsert,
                                 0, data_size, data)) {
        Fail(AbortReason::kLogOverflow);
        Abort();
        return Status::kNoSpace;
      }
    }
    write_set_.push_back(WriteEntry{table, key, existing, LogOpKind::kInsert, 0, data_size,
                                    payload_pos, observed, kNullPm});
    RegisterWrite(existing);
    ++worker_->stats_.writes;
    CrashStep(CrashStepKind::kLogAppend);
    return Status::kOk;
  }

  const PmOffset fresh = heap.Allocate(ctx, key, engine->MinActiveTid());
  if (fresh == kNullPm) {
    Fail(AbortReason::kOther);
    Abort();
    return Status::kNoSpace;
  }
  TupleHeader* header = heap.Header(fresh);
  // The tuple is born locked so concurrent transactions cannot read it
  // before commit.
  if (scheme == CcScheme::k2pl) {
    header->cc_word.store(((engine->lock_generation() & 0xff) << k2plGenShift) | k2plWriteBit,
                          std::memory_order_relaxed);
  } else {
    // Locked, with the creator TID as the timestamp: out-of-place recovery
    // matches in-flight versions against commit records by this value.
    header->cc_word.store(kCcLockBit | (tid_ & kCcTsMask), std::memory_order_relaxed);
  }
  // Creator TID, used as the 2PL write timestamp.
  header->read_ts.store(tid_, std::memory_order_relaxed);
  ctx.Store(TupleData(header), data, data_size);

  // Log before exposing via the index: an UNCOMMITTED slot entry is what
  // recovery uses to undo the index insertion.
  if (engine->config().log_mode != LogMode::kNone) {
    PhaseTimer timer(ctx.sim_ns_ref(), PhaseAcc(worker_->stats_, SimPhase::kLogAppend),
                     worker_->trace_, SimPhase::kLogAppend);
    if (!EnsureSlot()) {
      heap.MarkDeleted(ctx, fresh, /*delete_tid=*/0);
      Fail(AbortReason::kLogOverflow);
      Abort();
      return Status::kAborted;
    }
    if (!worker_->log_->Append(ctx, log_cursor_, table, key, fresh, LogOpKind::kInsert, 0, 0,
                               nullptr)) {
      heap.MarkDeleted(ctx, fresh, /*delete_tid=*/0);
      Fail(AbortReason::kLogOverflow);
      Abort();
      return Status::kNoSpace;
    }
    CrashStep(CrashStepKind::kLogAppend);
  }

  const Status inserted = engine->table_index(table).Insert(ctx, key, fresh);
  if (inserted != Status::kOk) {
    heap.MarkDeleted(ctx, fresh, /*delete_tid=*/0);
    return inserted;  // kDuplicate: the transaction may continue
  }
  // len == 0 marks a fresh insert; revivals carry len == data_size.
  write_set_.push_back(WriteEntry{table, key, fresh, LogOpKind::kInsert, 0, 0, 0, 0, kNullPm});
  RegisterWrite(fresh);
  ++worker_->stats_.writes;
  CrashStep(CrashStepKind::kIndexInstall);
  return Status::kOk;
}

Status Txn::Scan(TableId table, uint64_t start_key, uint64_t end_key, size_t limit,
                 const std::function<void(uint64_t, const std::byte*)>& visit) {
  Engine* engine = worker_->engine_;
  if (!active_) {
    return Status::kAborted;
  }
  worker_->ctx_.Work(engine->config().cost_params.op_overhead_ns);
  // Entry list and row buffer come from the txn's scratch arena so repeated
  // scans allocate nothing. A visitor that issues a nested Scan would alias
  // the scratch, so nested scans fall back to local storage.
  Scratch& scratch = *scratch_;
  const bool nested = scratch.scan_depth > 0;
  struct DepthGuard {
    uint32_t& depth;
    explicit DepthGuard(uint32_t& d) : depth(d) { ++depth; }
    ~DepthGuard() { --depth; }
  } depth_guard(scratch.scan_depth);
  std::vector<IndexEntry> local_entries;
  std::vector<IndexEntry>& entries = nested ? local_entries : scratch.scan_entries;
  entries.clear();
  const Status s =
      engine->table_index(table).Scan(worker_->ctx_, start_key, end_key, limit, entries);
  if (s != Status::kOk) {
    return s;
  }
  const auto data_size = engine->table_meta(table).tuple_data_size;
  std::vector<std::byte> local_buf;
  std::vector<std::byte>& buf = nested ? local_buf : scratch.scan_buf;
  buf.resize(data_size);
  // Visitor-driven read-set growth: each visited tuple may append one OCC
  // read entry, so reserve once up front instead of growing mid-scan.
  read_set_.reserve(read_set_.size() + entries.size());
  for (const IndexEntry& entry : entries) {
    Status rs;
    if (read_only_ && IsMultiVersion(engine->config().cc)) {
      rs = ReadSnapshot(table, entry.key, entry.value, buf.data());
    } else {
      rs = ReadTuple(table, entry.key, entry.value, buf.data());
    }
    if (rs == Status::kAborted) {
      Abort();
      return Status::kAborted;
    }
    if (rs == Status::kNotFound) {
      continue;  // deleted or out of snapshot
    }
    ++worker_->stats_.reads;
    visit(entry.key, buf.data());
  }
  return Status::kOk;
}

// ---- Commit -----------------------------------------------------------------

Status Txn::Commit() {
  Engine* engine = worker_->engine_;
  if (!active_) {
    return Status::kAborted;
  }
  worker_->ctx_.Work(engine->config().cost_params.txn_overhead_ns);

  Status result;
  if (engine->config().update_mode == UpdateMode::kInPlace) {
    result = CommitInPlace();
  } else {
    result = CommitOutOfPlace();
  }
  if (result != Status::kOk) {
    return result;
  }

  FinishCommitBookkeeping();
  return Status::kOk;
}

void Txn::FinishCommitBookkeeping() {
  Engine* engine = worker_->engine_;
  active_ = false;
  scratch_->in_use = false;
  worker_->RetireTid(tid_);
  ++worker_->stats_.commits;

  // Lazily maintain the persistent TID high-water mark (recovery floor).
  if ((worker_->stats_.commits & 0xff) == 0) {
    Superblock* sb = GetSuperblock(engine->arena());
    uint64_t cur = sb->max_committed_tid.load(std::memory_order_relaxed);
    while (cur < tid_ &&
           !sb->max_committed_tid.compare_exchange_weak(cur, tid_, std::memory_order_relaxed)) {
    }
  }

  // Opportunistic old-version recycling (§5.4): worker threads do their own
  // GC; no dedicated recycler.
  if (worker_->versions_.NeedsGc()) {
    PhaseTimer timer(worker_->ctx_.sim_ns_ref(),
                     PhaseAcc(worker_->stats_, SimPhase::kVersionGc),
                     worker_->trace_, SimPhase::kVersionGc);
    worker_->versions_.Gc(engine->MinActiveTid());
  }
  if (TraceRing* tr = worker_->trace_; tr != nullptr) {
    tr->Emit(TraceEventKind::kTxnCommit, worker_->ctx_.sim_ns(), trace_begin_ns_);
    tr->set_current_txn(0);
  }
}

uint64_t Txn::WriteTsOf(TupleHeader* header) const {
  const CcScheme scheme = BaseScheme(worker_->engine_->config().cc);
  return scheme == CcScheme::k2pl ? header->read_ts.load(std::memory_order_acquire)
                                  : TsOf(header->cc_word.load(std::memory_order_acquire));
}

void Txn::CreateDramVersion(TableId table, TupleHeader* header) {
  // Copy the pre-image into the DRAM version heap and link it at the chain
  // head (§5.2.3). Caller holds the tuple's write latch/lock.
  Engine* engine = worker_->engine_;
  ThreadContext& ctx = worker_->ctx_;
  const auto data_size = static_cast<uint32_t>(engine->table_meta(table).tuple_data_size);
  const uint64_t gen = engine->lock_generation();

  Version* version = worker_->versions_.Allocate(data_size);
  version->begin_ts = WriteTsOf(header);
  version->end_ts = tid_;
  version->prev =
      UnpackTaggedPtr<Version>(gen, header->version_head.load(std::memory_order_acquire));
  std::memcpy(version->data(), TupleData(header), data_size);
  ctx.TouchLoad(TupleData(header), data_size);
  ctx.TouchStore(version->data(), data_size);
  header->version_head.store(PackTaggedPtr(gen, version), std::memory_order_release);
  ctx.TouchStore(&header->version_head, sizeof(uint64_t));
  worker_->versions_.Enqueue(version);
}

void Txn::FinalizeTuple(PmOffset tuple, TupleHeader* header) {
  // Install write_ts = tid and release the tuple (Algorithm 1 line 5).
  Engine* engine = worker_->engine_;
  const CcScheme scheme = BaseScheme(engine->config().cc);
  if (scheme == CcScheme::k2pl) {
    header->read_ts.store(tid_, std::memory_order_release);  // write_ts slot for 2PL
    UnlockWrite2pl(header->cc_word, engine->lock_generation());
  } else {
    UnlockWithTs(header->cc_word, tid_);
  }
  worker_->ctx_.TouchStore(header, sizeof(uint64_t) * 2);
  // Drop from the held-locks list so rollback won't touch it again.
  ForgetLock(tuple);
}

// OCC validation phase (lock write set, then verify the read set). Shared
// by both update modes and the 2PC prepare path; a no-op for non-OCC
// schemes. On failure the transaction is already aborted.
Status Txn::OccValidate() {
  Engine* engine = worker_->engine_;
  ThreadContext& ctx = worker_->ctx_;
  if (BaseScheme(engine->config().cc) != CcScheme::kOcc) {
    return Status::kOk;
  }
  for (WriteEntry& w : write_set_) {
    if (w.kind == LogOpKind::kInsert && w.len == 0) {
      continue;  // fresh inserts are born locked; revivals validate below
    }
    TupleHeader* header = engine->table_heap(w.table).Header(w.tuple);
    if (FindLock(w.tuple) != nullptr) {
      continue;  // already locked for an earlier entry
    }
    uint64_t pre_ts = 0;
    if (!TryLockTs(header->cc_word, &pre_ts)) {
      FailConflict(AbortReason::kOccValidation, w.tuple, TsOf(pre_ts));
      Abort();
      return Status::kAborted;
    }
    ctx.TouchStore(&header->cc_word, sizeof(uint64_t));
    locks_.push_back(LockEntry{header, /*write=*/true, pre_ts});
    RegisterLock(w.tuple);
    // Raw-word comparison: a set retired bit is a real change (the
    // version was superseded since we observed it).
    if (pre_ts != w.observed) {
      FailConflict(AbortReason::kOccValidation, w.tuple, TsOf(pre_ts));
      Abort();
      return Status::kAborted;
    }
  }
  for (const ReadEntry& r : read_set_) {
    const uint64_t now = r.header->cc_word.load(std::memory_order_acquire);
    ctx.TouchLoad(r.header, sizeof(uint64_t));
    if (now == r.observed) {
      continue;
    }
    // Locked by us with an unchanged timestamp is still valid.
    if (IsLockedTs(now) && TsOf(now) == TsOf(r.observed) &&
        FindLock(r.tuple) != nullptr) {
      continue;
    }
    FailConflict(AbortReason::kOccValidation, r.tuple, TsOf(now));
    Abort();
    return Status::kAborted;
  }
  return Status::kOk;
}

Status Txn::CommitInPlace() {
  ThreadContext& ctx = worker_->ctx_;

  if (write_set_.empty()) {
    ReleaseLocks();
    if (slot_open_) {
      worker_->log_->Release(ctx, log_cursor_);
    }
    return Status::kOk;
  }

  if (OccValidate() != Status::kOk) {
    return Status::kAborted;
  }

  MaybeCrash(CrashPoint::kBeforeCommitMark);
  CrashStep(CrashStepKind::kCommitMark);

  // Commit point: the write-set state flips to COMMITTED in the (persistent-
  // by-eADR) log window (Algorithm 1 line 2).
  {
    PhaseTimer timer(ctx.sim_ns_ref(), PhaseAcc(worker_->stats_, SimPhase::kCommitFlush),
                     worker_->trace_, SimPhase::kCommitFlush);
    worker_->log_->MarkCommitted(ctx, log_cursor_);
  }

  MaybeCrash(CrashPoint::kAfterCommitMark);

  ApplyInPlace();
  return Status::kOk;
}

// Apply phase (Algorithm 1 lines 3-6): in-place updates, versions for MV,
// per-tuple release; then the selective flush, lock release and slot
// release. Runs after the commit (or 2PC decision) mark.
void Txn::ApplyInPlace() {
  Engine* engine = worker_->engine_;
  ThreadContext& ctx = worker_->ctx_;
  const EngineConfig& cfg = engine->config();
  const bool mv = IsMultiVersion(cfg.cc);

  const size_t n = write_set_.size();
  for (size_t i = 0; i < n; ++i) {
    CrashStep(CrashStepKind::kTupleApply);
    WriteEntry& w = write_set_[i];
    TupleHeap& heap = engine->table_heap(w.table);
    TupleHeader* header = heap.Header(w.tuple);

    // First/last write for this tuple in program order, straight from the
    // access map's per-tuple chain endpoints.
    const AccessMap::Entry* access = amap_.Find(w.tuple);
    const bool first_for_tuple = access->write_head == static_cast<uint32_t>(i);
    const bool last_for_tuple = access->write_tail == static_cast<uint32_t>(i);

    if (mv && first_for_tuple && w.kind != LogOpKind::kInsert) {
      CreateDramVersion(w.table, header);
    }

    switch (w.kind) {
      case LogOpKind::kUpdate: {
        const std::byte* payload =
            LogWindow::SlotPayload(worker_->log_->SlotAt(log_cursor_.slot)) + w.payload_pos;
        ctx.Store(TupleData(header) + w.offset, payload, w.len);
        if (engine->tuple_cache_ != nullptr) {
          engine->tuple_cache_->Invalidate(ctx, w.table, w.key);
        }
        break;
      }
      case LogOpKind::kInsert:
        if (w.len > 0) {
          // Tombstone revival: install the new image and clear the flag.
          const std::byte* payload =
              LogWindow::SlotPayload(worker_->log_->SlotAt(log_cursor_.slot)) + w.payload_pos;
          ctx.Store(TupleData(header), payload, w.len);
          header->flags.fetch_and(~kTupleDeleted, std::memory_order_release);
          ctx.TouchStore(&header->flags, sizeof(uint64_t));
          if (engine->tuple_cache_ != nullptr) {
            engine->tuple_cache_->Invalidate(ctx, w.table, w.key);
          }
        }
        break;  // fresh inserts wrote their data at execution time
      case LogOpKind::kDelete:
        // The index entry stays: tombstones remain reachable so snapshot
        // readers can traverse their version chains; the entry is removed
        // when the slot is reclaimed (§5.4). The flag guard keeps a
        // double-delete in one transaction from enqueueing the slot twice.
        if ((header->flags.load(std::memory_order_acquire) & kTupleDeleted) == 0) {
          heap.MarkDeleted(ctx, w.tuple, tid_);
        }
        if (engine->tuple_cache_ != nullptr) {
          engine->tuple_cache_->Invalidate(ctx, w.table, w.key);
        }
        break;
      case LogOpKind::kPrepare2pc:
        break;  // markers are appended directly, never via the write set
    }

    if (last_for_tuple) {
      FinalizeTuple(w.tuple, header);
    }
    if (i == 0) {
      MaybeCrash(CrashPoint::kMidApply);
    }
  }

  MaybeCrash(CrashPoint::kAfterApply);

  // Algorithm 1 line 7: order the in-place updates before the flush hints.
  ctx.Sfence();

  // Selective data flush (Algorithm 1 lines 8-11 / D2).
  if (cfg.flush_policy != FlushPolicy::kNone) {
    PhaseTimer timer(ctx.sim_ns_ref(), PhaseAcc(worker_->stats_, SimPhase::kHintFlush),
                     worker_->trace_, SimPhase::kHintFlush);
    for (size_t i = 0; i < n; ++i) {
      const WriteEntry& w = write_set_[i];
      if (amap_.Find(w.tuple)->write_head != static_cast<uint32_t>(i)) {
        continue;  // only the first entry per tuple issues the hinted flush
      }
      if (cfg.flush_policy == FlushPolicy::kSelective && worker_->hot_.Contains(w.tuple)) {
        continue;  // hot tuples are never manually flushed
      }
      CrashStep(CrashStepKind::kFlush);
      TupleHeader* header = engine->table_heap(w.table).Header(w.tuple);
      // Hinted flush: <sfence + clwbs> over the contiguous tuple lines lets
      // the XPBuffer merge them into full 256B writes (§4.4).
      switch (w.kind) {
        case LogOpKind::kUpdate:
          ctx.Clwb(header, sizeof(TupleHeader));
          ctx.Clwb(TupleData(header) + w.offset, w.len);
          break;
        case LogOpKind::kInsert:
          ctx.Clwb(header, engine->table_meta(w.table).slot_size);
          break;
        case LogOpKind::kDelete:
          ctx.Clwb(header, sizeof(TupleHeader));
          break;
        case LogOpKind::kPrepare2pc:
          break;  // never in a write set
      }
      if (cfg.flush_policy == FlushPolicy::kSelective) {
        worker_->hot_.Cache(w.tuple);
      }
    }
  }

  ReleaseLocks();  // remaining 2PL read locks
  if (slot_open_) {
    CrashStep(CrashStepKind::kSlotRelease);
    PhaseTimer timer(ctx.sim_ns_ref(), PhaseAcc(worker_->stats_, SimPhase::kCommitFlush),
                     worker_->trace_, SimPhase::kCommitFlush);
    worker_->log_->Release(ctx, log_cursor_);
  }
}

void Txn::StampCommitted(TupleHeader* header) {
  // Installs write_ts = tid with the word unlocked, per scheme.
  Engine* engine = worker_->engine_;
  if (BaseScheme(engine->config().cc) == CcScheme::k2pl) {
    header->read_ts.store(tid_, std::memory_order_release);
    header->cc_word.store((engine->lock_generation() & 0xff) << k2plGenShift,
                          std::memory_order_release);
  } else {
    header->cc_word.store(tid_ & kCcTsMask, std::memory_order_release);
  }
  worker_->ctx_.TouchStore(header, sizeof(uint64_t) * 2);
}

void Txn::RetireOldVersion(PmOffset tuple, TupleHeader* header, bool superseded) {
  // Unlocks the retired head while PRESERVING its creation timestamp —
  // snapshot readers still need it for visibility (§5.2.3). The retired bit
  // (or the 2PL unlock) changes the word so concurrent optimistic readers
  // fail validation. `superseded` is set only when a replacement version
  // took over the index entry (updates); delete tombstones stay reachable
  // and answer kNotFound via the delete flag instead.
  Engine* engine = worker_->engine_;
  if (superseded) {
    header->flags.fetch_or(kTupleSuperseded, std::memory_order_release);
  }
  if (BaseScheme(engine->config().cc) == CcScheme::k2pl) {
    UnlockWrite2pl(header->cc_word, engine->lock_generation());
  } else {
    const uint64_t word = header->cc_word.load(std::memory_order_acquire);
    header->cc_word.store(TsOf(word) | kCcRetiredBit, std::memory_order_release);
  }
  worker_->ctx_.TouchStore(header, sizeof(uint64_t) * 2);
  ForgetLock(tuple);
}

Status Txn::CommitOutOfPlace() {
  ThreadContext& ctx = worker_->ctx_;

  if (write_set_.empty()) {
    ReleaseLocks();
    return Status::kOk;
  }

  // OCC validation (on the *old* tuple headers readers see).
  if (OccValidate() != Status::kOk) {
    return Status::kAborted;
  }

  // Commit record: one tiny per-thread slot {tid, COMMITTED} — the log-free
  // protocol (Zen-style). Versions become "committed" when either their
  // flag is set or this record names their TID.
  if (!slot_open_) {
    if (!worker_->log_->OpenSlot(ctx, tid_, log_cursor_)) {
      Fail(AbortReason::kLogOverflow);
      Abort();
      return Status::kAborted;
    }
    slot_open_ = true;
  }

  MaybeCrash(CrashPoint::kBeforeCommitMark);
  CrashStep(CrashStepKind::kCommitMark);

  {
    PhaseTimer timer(ctx.sim_ns_ref(), PhaseAcc(worker_->stats_, SimPhase::kCommitFlush),
                     worker_->trace_, SimPhase::kCommitFlush);
    worker_->log_->MarkCommitted(ctx, log_cursor_);
  }

  MaybeCrash(CrashPoint::kAfterCommitMark);

  ApplyOutOfPlace();
  return Status::kOk;
}

// Apply: flag versions committed, repoint the index, retire old versions;
// then flush the new versions, release locks and the commit-record slot.
// Runs after the commit (or 2PC decision) mark.
void Txn::ApplyOutOfPlace() {
  Engine* engine = worker_->engine_;
  ThreadContext& ctx = worker_->ctx_;
  const EngineConfig& cfg = engine->config();

  const size_t n = write_set_.size();
  for (size_t i = 0; i < n; ++i) {
    CrashStep(CrashStepKind::kTupleApply);
    WriteEntry& w = write_set_[i];
    TupleHeap& heap = engine->table_heap(w.table);

    switch (w.kind) {
      case LogOpKind::kUpdate: {
        TupleHeader* nh = heap.Header(w.new_version);
        nh->flags.fetch_or(kTupleCommitted, std::memory_order_release);
        StampCommitted(nh);
        engine->table_index(w.table).Update(ctx, w.key, w.new_version);
        if (engine->tuple_cache_ != nullptr) {
          TupleHeader* data_header = heap.Header(w.new_version);
          engine->tuple_cache_->Fill(
              ctx, w.table, w.key, tid_, TupleData(data_header),
              static_cast<uint32_t>(engine->table_meta(w.table).tuple_data_size));
        }
        // The old head becomes an old version; retire it for reclamation
        // once no snapshot can need it. A revived tombstone predecessor is
        // already on the deleted list.
        TupleHeader* oh = heap.Header(w.tuple);
        RetireOldVersion(w.tuple, oh, /*superseded=*/true);
        if ((oh->flags.load(std::memory_order_acquire) & kTupleDeleted) == 0) {
          heap.MarkDeleted(ctx, w.tuple, tid_);
        }
        break;
      }
      case LogOpKind::kInsert: {
        TupleHeader* nh = heap.Header(w.tuple);
        nh->flags.fetch_or(kTupleCommitted, std::memory_order_release);
        StampCommitted(nh);
        break;
      }
      case LogOpKind::kDelete: {
        if (w.new_version != kNullPm) {
          // This txn also staged a replacement version for the key; the
          // update's apply step retired the old head, so the delete
          // tombstones the (already index-visible) new version instead.
          TupleHeader* nh = heap.Header(w.new_version);
          RetireOldVersion(w.new_version, nh, /*superseded=*/false);
          if ((nh->flags.load(std::memory_order_acquire) & kTupleDeleted) == 0) {
            heap.MarkDeleted(ctx, w.new_version, tid_);
          }
        } else {
          // The head keeps its creation timestamp (snapshots older than the
          // delete must still see it); deletion visibility comes from the
          // flag + delete_ts.
          TupleHeader* oh = heap.Header(w.tuple);
          RetireOldVersion(w.tuple, oh, /*superseded=*/false);
          if ((oh->flags.load(std::memory_order_acquire) & kTupleDeleted) == 0) {
            heap.MarkDeleted(ctx, w.tuple, tid_);
          }
        }
        if (engine->tuple_cache_ != nullptr) {
          engine->tuple_cache_->Invalidate(ctx, w.table, w.key);
        }
        break;
      }
      case LogOpKind::kPrepare2pc:
        break;  // never in a write set
    }
    if (i == 0) {
      MaybeCrash(CrashPoint::kMidApply);
    }
  }

  MaybeCrash(CrashPoint::kAfterApply);

  ctx.Sfence();
  if (cfg.flush_policy != FlushPolicy::kNone) {
    // Whole new versions flush as contiguous runs — out-of-place's one
    // advantage on full-tuple updates (§6.2.3).
    PhaseTimer timer(ctx.sim_ns_ref(), PhaseAcc(worker_->stats_, SimPhase::kHintFlush),
                     worker_->trace_, SimPhase::kHintFlush);
    for (const WriteEntry& w : write_set_) {
      CrashStep(CrashStepKind::kFlush);
      const PmOffset target = w.kind == LogOpKind::kUpdate ? w.new_version : w.tuple;
      TupleHeader* header = engine->table_heap(w.table).Header(target);
      ctx.Clwb(header, engine->table_meta(w.table).slot_size);
    }
  }

  ReleaseLocks();
  if (slot_open_) {
    CrashStep(CrashStepKind::kSlotRelease);
    PhaseTimer timer(ctx.sim_ns_ref(), PhaseAcc(worker_->stats_, SimPhase::kCommitFlush),
                     worker_->trace_, SimPhase::kCommitFlush);
    worker_->log_->Release(ctx, log_cursor_);
  }
}

// ---- Two-phase commit (Database layer, src/db) -------------------------------

// Phase one: validate exactly as Commit would, then durably mark the slot
// PREPARED instead of COMMITTED. The marker entry records the global txn id
// and the coordinator shard so a crashed shard can resolve the branch at
// reopen. Locks and the slot survive until the decision.
Status Txn::Prepare2pc(uint64_t gid, uint32_t coordinator_shard) {
  Engine* engine = worker_->engine_;
  ThreadContext& ctx = worker_->ctx_;
  if (!active_) {
    return Status::kAborted;
  }
  ctx.Work(engine->config().cost_params.txn_overhead_ns);

  if (write_set_.empty()) {
    // Nothing to decide on this shard; the branch votes yes trivially and
    // the decision/apply steps below degrade to lock release.
    prepared_ = true;
    return Status::kOk;
  }

  if (OccValidate() != Status::kOk) {
    return Status::kAborted;
  }

  // Out-of-place engines open their commit-record slot here (in-place
  // engines already hold one: the write set lives in it).
  if (!slot_open_) {
    if (!worker_->log_->OpenSlot(ctx, tid_, log_cursor_)) {
      Fail(AbortReason::kLogOverflow);
      Abort();
      return Status::kAborted;
    }
    slot_open_ = true;
  }

  {
    PhaseTimer timer(ctx.sim_ns_ref(), PhaseAcc(worker_->stats_, SimPhase::kLogAppend),
                     worker_->trace_, SimPhase::kLogAppend);
    if (!worker_->log_->Append(ctx, log_cursor_, kInvalidTable, gid, kNullPm,
                               LogOpKind::kPrepare2pc, coordinator_shard, 0, nullptr)) {
      Fail(AbortReason::kLogOverflow);
      Abort();
      return Status::kAborted;
    }
  }
  CrashStep(CrashStepKind::kLogAppend);

  CrashStep(CrashStepKind::kPrepareMark);
  {
    PhaseTimer timer(ctx.sim_ns_ref(), PhaseAcc(worker_->stats_, SimPhase::kCommitFlush),
                     worker_->trace_, SimPhase::kCommitFlush);
    worker_->log_->MarkPrepared(ctx, log_cursor_);
  }
  prepared_ = true;
  ++worker_->stats_.twopc_prepares;
  return Status::kOk;
}

// The decision record: PREPARED -> COMMITTED. On the coordinator branch
// this flip is the whole cross-shard transaction's commit point.
void Txn::MarkDecidedCommit() {
  if (!slot_open_) {
    return;  // trivially-prepared branch (empty write set): nothing durable
  }
  ThreadContext& ctx = worker_->ctx_;
  CrashStep(CrashStepKind::kCommitMark);
  PhaseTimer timer(ctx.sim_ns_ref(), PhaseAcc(worker_->stats_, SimPhase::kCommitFlush),
                   worker_->trace_, SimPhase::kCommitFlush);
  worker_->log_->MarkCommitted(ctx, log_cursor_);
}

// Phase two (commit): apply the write set and run the normal post-commit
// bookkeeping. Must follow MarkDecidedCommit on the same branch.
Status Txn::FinishCommitPrepared() {
  Engine* engine = worker_->engine_;
  if (engine->config().update_mode == UpdateMode::kInPlace) {
    ApplyInPlace();
  } else {
    ApplyOutOfPlace();
  }
  ++worker_->stats_.twopc_commits;
  FinishCommitBookkeeping();
  return Status::kOk;
}

// ---- Abort / rollback --------------------------------------------------------

void Txn::ReleaseLocks() {
  Engine* engine = worker_->engine_;
  const CcScheme scheme = BaseScheme(engine->config().cc);
  const uint64_t gen = engine->lock_generation();
  for (LockEntry& lock : locks_) {
    if (lock.header == nullptr) {
      continue;  // finalized during apply
    }
    if (scheme == CcScheme::k2pl) {
      if (lock.write) {
        UnlockWrite2pl(lock.header->cc_word, gen);
      } else {
        UnlockRead2pl(lock.header->cc_word);
      }
    } else {
      UnlockRestoreTs(lock.header->cc_word, lock.restore_ts);
    }
    worker_->ctx_.TouchStore(&lock.header->cc_word, sizeof(uint64_t));
    lock.header = nullptr;
  }
  locks_.clear();
}

void Txn::Abort() {
  if (!active_) {
    return;
  }
  Engine* engine = worker_->engine_;
  ThreadContext& ctx = worker_->ctx_;

  // Undo execution-time side effects (inserts exposed via the index, and
  // out-of-place versions already written to the heap).
  for (const WriteEntry& w : write_set_) {
    TupleHeap& heap = engine->table_heap(w.table);
    if (w.kind == LogOpKind::kInsert && w.len == 0) {
      // Fresh insert: unlink it from the index and retire the slot. A
      // revival (len > 0) changed nothing at execution time; releasing its
      // tombstone lock below is the whole rollback.
      if (engine->table_index(w.table).Lookup(ctx, w.key) == w.tuple) {
        engine->table_index(w.table).Remove(ctx, w.key);
      }
      heap.MarkDeleted(ctx, w.tuple, /*delete_tid=*/0);
      // Its born-locked state dies with the slot (reinitialized on reuse).
      ForgetLock(w.tuple);
    } else if (w.new_version != kNullPm) {
      // Guarded: an update and a delete of the same key share new_version.
      TupleHeader* nh = heap.Header(w.new_version);
      if ((nh->flags.load(std::memory_order_acquire) & kTupleDeleted) == 0) {
        heap.MarkDeleted(ctx, w.new_version, /*delete_tid=*/0);
      }
    }
  }
  ReleaseLocks();
  if (slot_open_) {
    worker_->log_->Release(ctx, log_cursor_);
  }
  active_ = false;
  scratch_->in_use = false;
  worker_->RetireTid(tid_);
  ++worker_->stats_.txn_aborts;
  ++worker_->stats_.aborts_by_reason[static_cast<size_t>(next_abort_reason_)];
  if (prepared_) {
    // A prepared branch rolled back: presumed abort (peer shard failed to
    // prepare, or the coordinator decided abort).
    ++worker_->stats_.twopc_aborts;
    prepared_ = false;
  }
  if (TraceRing* tr = worker_->trace_; tr != nullptr) {
    tr->Emit(TraceEventKind::kTxnAbort, ctx.sim_ns(), trace_begin_ns_,
             static_cast<uint64_t>(next_abort_reason_));
    tr->set_current_txn(0);
  }
  next_abort_reason_ = AbortReason::kUser;
}

}  // namespace falcon
