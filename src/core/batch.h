// Intra-worker batched transaction execution (ROADMAP: "batched /
// interleaved transaction execution to hide NVM stalls").
//
// A TxnFrame is a hand-rolled resumable transaction: a state machine whose
// Step() runs the transaction up to its next natural yield boundary and
// returns true when the transaction has finished (committed or given up).
// No C++20 coroutines in the engine core — frames are plain virtual
// dispatch over explicit state, so they stay allocation-free and
// crash-sweep deterministic.
//
// Worker::RunBatch keeps up to N frames in flight. After every Step it
// drains the ThreadContext stall-capture slice (compute vs stall ns) and
// feeds it to the BatchClock (src/sim/batch_clock.h), which schedules the
// frames on one simulated core: a frame's NVM-miss or fence stall overlaps
// sibling frames' compute, so the batch timeline is shorter than the serial
// sum. Device busy time is never discounted — media occupancy accrues in
// full exactly as in serial mode.
//
// Conflicts between in-flight siblings are safe by construction: every CC
// scheme in src/cc/ is no-wait (TryLock failure aborts the requester), so a
// frame blocked on a sibling's lock aborts-and-retries instead of waiting,
// and a worker can never deadlock against itself. A retry slice charges
// compute, which pushes the retrier's ready time past the holder's, so the
// scheduler always lets the holder progress (no livelock).

#ifndef SRC_CORE_BATCH_H_
#define SRC_CORE_BATCH_H_

#include <cassert>
#include <cstdint>
#include <new>

#include "src/core/engine.h"

namespace falcon {

// Aggregate result of one Worker::RunBatch call, on the batch timeline.
struct BatchRunStats {
  uint64_t elapsed_ns = 0;       // overlap-aware batch timeline length
  uint64_t serial_ns = 0;        // what the serial clock charged (sum)
  uint64_t frames = 0;           // frames completed
  uint64_t slices = 0;           // Step() calls accounted
  uint64_t switches = 0;         // slices that resumed a different frame
  uint64_t stall_ns = 0;         // total stall time charged
  uint64_t hidden_stall_ns = 0;  // stall time overlapped by sibling compute
  uint64_t idle_ns = 0;          // stall time nobody could cover
  uint64_t inflight_weighted_ns = 0;  // ∫ active-frames dt (occupancy)
};

// A resumable transaction frame. Subclasses own their workload state
// (pre-rolled keys, op index, retry counter) and drive one Txn through the
// protected handle below. The frame, not the worker, owns the access-set
// scratch arena, so several frames coexist on one worker.
class TxnFrame {
 public:
  virtual ~TxnFrame() { DestroyTxn(); }

  // Runs the transaction to its next yield boundary. Returns true when the
  // frame is finished (no Txn left open). RunBatch calls Step repeatedly;
  // between two Steps of the same frame, sibling frames may run.
  virtual bool Step(Worker& worker) = 0;

  // Workload-defined completion code (e.g. txn type, or ~type on abort).
  int result() const { return result_; }

  // TID of the open transaction, 0 if none (trace attribution).
  uint64_t current_tid() const { return has_txn_ ? txn_ptr()->tid() : 0; }
  bool has_txn() const { return has_txn_; }

  // Crash-harness hook: drop the transaction handle WITHOUT rollback,
  // mirroring what a power failure leaves behind. After a sibling frame
  // throws TxnCrashed, the engine state must stay frozen; destroying a
  // frame normally would roll its open transaction back.
  void Freeze() {
    if (has_txn_) {
      txn_ptr()->active_ = false;
      txn_ptr()->scratch_->in_use = false;
      DestroyTxn();
    }
  }

 protected:
  TxnFrame() = default;
  TxnFrame(const TxnFrame&) = delete;
  TxnFrame& operator=(const TxnFrame&) = delete;

  // Opens a transaction in this frame's storage. C++17 guaranteed elision
  // constructs the (immovable) Txn directly in place.
  Txn& BeginTxn(Worker& worker, bool read_only = false) {
    assert(!has_txn_);
    Txn* t = ::new (static_cast<void*>(storage_)) Txn(&worker, &scratch_, read_only);
    has_txn_ = true;
    return *t;
  }

  // Destroys the handle after Commit()/Abort() resolved it.
  void EndTxn() { DestroyTxn(); }

  Txn& txn() {
    assert(has_txn_);
    return *txn_ptr();
  }

  void set_result(int r) { result_ = r; }

 private:
  Txn* txn_ptr() const {
    return const_cast<Txn*>(reinterpret_cast<const Txn*>(storage_));
  }

  void DestroyTxn() {
    if (has_txn_) {
      txn_ptr()->~Txn();
      has_txn_ = false;
    }
  }

  alignas(Txn) unsigned char storage_[sizeof(Txn)];
  Txn::Scratch scratch_;
  bool has_txn_ = false;
  int result_ = 0;
};

// Supplies frames to Worker::RunBatch and takes them back when finished.
// The source owns frame storage (it may recycle a fixed pool).
class FrameSource {
 public:
  virtual ~FrameSource() = default;

  // Next frame to admit, or nullptr when the workload is exhausted. The
  // returned frame must be reset (no open Txn, fresh workload state).
  virtual TxnFrame* Next(Worker& worker) = 0;

  // `frame` finished (its last Step returned true). begin/end are on the
  // batch timeline: admission time and the frame's last stall resolution.
  virtual void Done(Worker& worker, TxnFrame* frame, uint64_t begin_ns,
                    uint64_t end_ns) {
    (void)worker;
    (void)frame;
    (void)begin_ns;
    (void)end_ns;
  }
};

}  // namespace falcon

#endif  // SRC_CORE_BATCH_H_
