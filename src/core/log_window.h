// The small log window (paper D1, §4.3) and its conventional large-log
// cousin, unified: a per-thread circular array of redo-log slots living at
// NVM addresses.
//
// One slot holds the write set of one transaction:
//
//   SlotHeader { state, tid, bytes, entry_count }
//   entry*     { table_id, key, tuple (PmOffset), kind, offset, len, payload }
//
// The slot state drives recovery (paper §5.2.2, Algorithm 1):
//   kFree / kUncommitted -> the transaction never committed; tuples are
//                           untouched; discard.
//   kCommitted           -> replay every entry (entries are idempotent
//                           by construction: they record absolute values).
//
// Falcon's configuration (3 slots x 16KB) keeps the whole window inside the
// CPU cache: the circular reuse gives the lines enough temporal locality
// that they are never evicted, so logging generates zero NVM media writes
// while remaining persistent under eADR.

#ifndef SRC_CORE_LOG_WINDOW_H_
#define SRC_CORE_LOG_WINDOW_H_

#include <atomic>
#include <cstdint>

#include "src/pmem/arena.h"
#include "src/pmem/catalog.h"
#include "src/sim/thread_context.h"

namespace falcon {

enum class SlotState : uint64_t {
  kFree = 0,
  kUncommitted = 1,
  kCommitted = 2,
  // Two-phase commit participant state: the slot is durable and the
  // transaction's fate belongs to its coordinator. Standalone recovery
  // treats it as uncommitted (presumed abort); the Database layer resolves
  // it against the coordinator's decision record before replay.
  kPrepared = 3,
};

enum class LogOpKind : uint32_t {
  kUpdate = 0,  // overwrite [offset, offset+len) of the tuple data
  kInsert = 1,  // full tuple image; replay re-links the index
  kDelete = 2,  // raise the delete flag; replay re-removes from the index
  // 2PC marker entry (table_id == kInvalidTable, len == 0): key carries the
  // global transaction id, offset carries the coordinator shard. Recovery
  // replay skips it; pre-replay resolution parses it.
  kPrepare2pc = 3,
};

struct LogSlotHeader {
  std::atomic<uint64_t> state{};  // SlotState
  uint64_t tid = 0;
  uint64_t bytes = 0;  // payload bytes used (entries, excluding this header)
  uint64_t entry_count = 0;
};
static_assert(sizeof(LogSlotHeader) == 32);

struct LogEntryHeader {
  uint64_t table_id = 0;
  uint64_t key = 0;
  PmOffset tuple = kNullPm;
  uint32_t kind = 0;    // LogOpKind
  uint32_t offset = 0;  // byte offset within the tuple data area
  uint32_t len = 0;     // payload length
  uint32_t pad = 0;
  // `len` payload bytes follow.
};
static_assert(sizeof(LogEntryHeader) == 40);

// Per-window counters: slot occupancy / wrap behaviour and append traffic.
// Single-writer (the owning worker thread), plain uint64 bumps.
struct LogWindowStats {
  uint64_t slots_opened = 0;
  uint64_t wraps = 0;  // cursor wrapped back to slot 0
  uint64_t appends = 0;
  uint64_t append_overflows = 0;  // Append refused: slot full (§5.5 ①)
  uint64_t bytes_appended = 0;
  uint64_t payload_high_water = 0;  // max payload bytes seen in one slot
};

// Volatile handle to one open slot: which slot a transaction writes and how
// many payload bytes it has appended there. Each in-flight transaction frame
// owns its own cursor, so a batched worker can hold several slots open at
// once; serial execution simply has one live cursor at a time.
struct LogCursor {
  uint32_t slot = 0;
  uint64_t write_pos = 0;  // payload bytes appended in the open slot
};

// View over one thread's log region. The region itself is NVM (allocated at
// engine creation and registered in the catalog); this class is a volatile
// cursor over it.
class LogWindow {
 public:
  // `base` points at the thread's log region: `slots` slots of `slot_bytes`
  // (each beginning with a LogSlotHeader).
  LogWindow(NvmArena* arena, PmOffset base, uint32_t slots, uint64_t slot_bytes,
            bool flush_to_nvm)
      : arena_(arena),
        base_(base),
        slots_(slots),
        slot_bytes_(slot_bytes),
        flush_to_nvm_(flush_to_nvm) {}

  // Total bytes required for a region with these parameters.
  static uint64_t RegionBytes(uint32_t slots, uint64_t slot_bytes) {
    return static_cast<uint64_t>(slots) * slot_bytes;
  }

  // Opens the next free slot for a transaction: state <- kUncommitted,
  // cursor filled in. Probes at most one full revolution starting after the
  // last opened slot; returns false when every slot is held by an in-flight
  // transaction (the caller aborts). Serial execution releases each slot
  // before opening the next, so the first probe always succeeds and the
  // rotation is byte-identical to the historical single-cursor path.
  bool OpenSlot(ThreadContext& ctx, uint64_t tid, LogCursor& cursor);

  // Appends one redo entry; returns false if the slot cannot fit it (the
  // caller aborts the transaction — the paper's stated limitation §5.5 ①).
  bool Append(ThreadContext& ctx, LogCursor& cursor, uint64_t table_id, uint64_t key,
              PmOffset tuple, LogOpKind kind, uint32_t offset, uint32_t len,
              const void* payload);

  // Durably marks the slot committed. For flushed logs this issues
  // clwb+sfence over the written bytes first (the conventional protocol);
  // for window logs persistence comes from eADR and only an sfence is
  // needed for ordering (§4.3).
  void MarkCommitted(ThreadContext& ctx, const LogCursor& cursor);

  // Durably marks the slot prepared (2PC phase one). Same durability dance
  // as MarkCommitted — the prepared mark must be recoverable so a restarted
  // shard can ask its coordinator for the verdict.
  void MarkPrepared(ThreadContext& ctx, const LogCursor& cursor);

  // Marks the slot free again (after apply, or on abort).
  void Release(ThreadContext& ctx, const LogCursor& cursor);

  // Payload-relative offset where the next Append's value bytes will land
  // (call before Append; used for read-own-writes overlays).
  static uint64_t NextPayloadPos(const LogCursor& cursor) {
    return cursor.write_pos + sizeof(LogEntryHeader);
  }

  uint32_t slot_count() const { return slots_; }
  uint64_t slot_bytes() const { return slot_bytes_; }

  // Number of slots currently in state kFree. After recovery (or clean
  // shutdown) every slot must be free; the crash-sweep harness asserts this.
  uint32_t FreeSlotCount() const {
    uint32_t n = 0;
    for (uint32_t i = 0; i < slots_; ++i) {
      if (static_cast<SlotState>(SlotAt(i)->state.load(std::memory_order_acquire)) ==
          SlotState::kFree) {
        ++n;
      }
    }
    return n;
  }

  LogSlotHeader* SlotAt(uint32_t i) const {
    return arena_->Ptr<LogSlotHeader>(base_ + static_cast<uint64_t>(i) * slot_bytes_);
  }

  // Payload area of a slot.
  static std::byte* SlotPayload(LogSlotHeader* slot) {
    return reinterpret_cast<std::byte*>(slot) + sizeof(LogSlotHeader);
  }

  const LogWindowStats& stats() const { return stats_; }
  void ResetStats() { stats_ = LogWindowStats{}; }

  // Flight-recorder ring (null = tracing disabled). Wrap and overflow events
  // carry no simulated-time cost.
  void set_trace(TraceRing* trace) { trace_ = trace; }

 private:
  NvmArena* arena_;
  PmOffset base_;
  uint32_t slots_;
  uint64_t slot_bytes_;
  bool flush_to_nvm_;
  uint32_t cursor_ = 0;  // last opened slot; OpenSlot probes from cursor_ + 1
  LogWindowStats stats_;
  TraceRing* trace_ = nullptr;
};

}  // namespace falcon

#endif  // SRC_CORE_LOG_WINDOW_H_
