#include "src/pmem/arena.h"

#include <cstring>

#include "src/pmem/catalog.h"

namespace falcon {

NvmArena NvmArena::Format(NvmDevice* device) {
  NvmArena arena(device);
  auto* sb = GetSuperblock(arena);
  std::memset(static_cast<void*>(sb), 0, sizeof(Superblock));
  sb->version = kArenaVersion;
  sb->next_free_page.store(kSuperblockPages, std::memory_order_relaxed);
  sb->generation.store(1, std::memory_order_relaxed);
  // The magic is written last so a half-formatted arena is not "formatted".
  sb->magic = kArenaMagic;
  return arena;
}

NvmArena NvmArena::Open(NvmDevice* device) {
  NvmArena arena(device);
  return arena;
}

bool NvmArena::IsFormatted(const NvmDevice& device) {
  const auto* sb = reinterpret_cast<const Superblock*>(device.base());
  return sb->magic == kArenaMagic && sb->version == kArenaVersion;
}

PmOffset NvmArena::AllocPage(PagePurpose purpose, uint32_t owner_thread, uint64_t table_id) {
  return AllocContiguousPages(1, purpose, owner_thread, table_id);
}

namespace {

// PagePurpose -> device traffic region (source attribution for media stats).
MediaRegion RegionForPurpose(PagePurpose purpose) {
  switch (purpose) {
    case PagePurpose::kTupleHeap: return kRegionTupleHeap;
    case PagePurpose::kLogWindow: return kRegionLog;
    case PagePurpose::kIndex: return kRegionIndex;
    case PagePurpose::kVersionHeap: return kRegionVersionHeap;
    case PagePurpose::kFree: break;
  }
  return kRegionOther;
}

}  // namespace

PmOffset NvmArena::AllocContiguousPages(uint64_t count, PagePurpose purpose,
                                        uint32_t owner_thread, uint64_t table_id) {
  auto* sb = GetSuperblock(*this);
  const uint64_t page_index = sb->next_free_page.fetch_add(count, std::memory_order_relaxed);
  if (page_index + count > page_capacity()) {
    sb->next_free_page.fetch_sub(count, std::memory_order_relaxed);
    return kNullPm;
  }
  device_->TagRegion(page_index, count, RegionForPurpose(purpose));
  const PmOffset offset = page_index * kPageSize;
  auto* header = Ptr<PageHeader>(offset);
  header->purpose = static_cast<uint64_t>(purpose);
  header->owner_thread = owner_thread;
  header->table_id = table_id;
  header->next_page = kNullPm;
  // The first allocation slot starts line-aligned after the header.
  header->used_bytes.store(kPageDataStart, std::memory_order_relaxed);
  return offset;
}

PmOffset NvmArena::AllocFromPage(PmOffset page_offset, uint64_t bytes, uint64_t align) {
  auto* header = Ptr<PageHeader>(page_offset);
  uint64_t used = header->used_bytes.load(std::memory_order_relaxed);
  for (;;) {
    const uint64_t aligned = (used + align - 1) / align * align;
    if (aligned + bytes > kPageSize) {
      return kNullPm;
    }
    if (header->used_bytes.compare_exchange_weak(used, aligned + bytes,
                                                 std::memory_order_relaxed)) {
      return page_offset + aligned;
    }
  }
}

uint64_t NvmArena::pages_allocated() const {
  return GetSuperblock(*this)->next_free_page.load(std::memory_order_relaxed);
}

}  // namespace falcon
