// The persistent catalog (paper §5.1): database metadata stored at offset 0
// of the arena — table schemas, per-thread tuple-heap page chains, deleted
// lists, index roots, and the per-thread small-log-window locations. The
// catalog is the first thing recovery reads.

#ifndef SRC_PMEM_CATALOG_H_
#define SRC_PMEM_CATALOG_H_

#include <atomic>
#include <cstdint>

#include "src/common/constants.h"
#include "src/pmem/arena.h"

namespace falcon {

inline constexpr uint64_t kArenaMagic = 0xfa1c0d6e4dbull;  // "falcon-eadr-db"
inline constexpr uint64_t kArenaVersion = 1;
inline constexpr uint32_t kMaxTables = 16;
inline constexpr uint32_t kMaxColumns = 24;
inline constexpr uint32_t kMaxTableNameLen = 31;

// First usable byte inside a page (keeps tuple slots 256B-aligned so hinted
// flushes can merge into full media blocks).
inline constexpr uint64_t kPageDataStart = kNvmBlockSize;

// Byte offset of the superblock within the arena.
inline constexpr PmOffset kSuperblockOffset = 0;

// Fixed-size byte column. All schema information is POD so the catalog can
// live directly in NVM.
struct ColumnMeta {
  uint32_t size = 0;    // bytes
  uint32_t offset = 0;  // byte offset inside the tuple data area
};

// Which index implementation a table uses (set at table creation).
enum class IndexKind : uint64_t {
  kNone = 0,
  kHash = 1,   // Dash-style extendible hashing (point lookups)
  kBTree = 2,  // NBTree-style B+tree (point + range)
  kArt = 3,    // RoART-style adaptive radix tree (point + range)
};

struct TableMeta {
  char name[kMaxTableNameLen + 1] = {};
  uint64_t id = 0;
  uint64_t in_use = 0;
  uint64_t tuple_data_size = 0;  // bytes of user data per tuple
  uint64_t slot_size = 0;        // header + data, rounded for alignment
  uint64_t column_count = 0;
  ColumnMeta columns[kMaxColumns] = {};

  uint64_t index_kind = 0;      // IndexKind
  PmOffset index_root = kNullPm;  // root of the NVM index (if any)

  // Per-thread tuple-heap page chains (pages are dedicated to threads,
  // paper §5.1 "NVM Space Management").
  PmOffset heap_head[kMaxThreads] = {};
  PmOffset heap_current[kMaxThreads] = {};

  // Per-thread deleted-tuple lists (paper §5.4): append at tail, reclaim
  // from head; entries are naturally sorted by delete timestamp.
  PmOffset deleted_head[kMaxThreads] = {};
  PmOffset deleted_tail[kMaxThreads] = {};

  std::atomic<uint64_t> approx_tuple_count{};
};

struct Superblock {
  uint64_t magic = 0;
  uint64_t version = 0;
  std::atomic<uint64_t> next_free_page{};
  // Incremented on every recovery. DRAM pointers stored in NVM (version
  // chain heads) are tagged with the generation; a stale tag reads as null.
  std::atomic<uint64_t> generation{};
  // High-water mark of committed TIDs, maintained lazily so recovery can
  // restart the TID clock above every pre-crash timestamp (§5.2.1 fn 2).
  std::atomic<uint64_t> max_committed_tid{};
  uint64_t table_count = 0;
  uint64_t worker_count = 0;
  // Per-thread small log windows (or conventional NVM log regions for the
  // volatile-cache baselines).
  PmOffset log_windows[kMaxThreads] = {};
  uint64_t clean_shutdown = 0;
  TableMeta tables[kMaxTables];
};

static_assert(sizeof(Superblock) < kPageSize, "superblock must fit in one page");

// The superblock lives at offset 0, which Ptr() treats as null; resolve it
// directly from the device base instead.
inline Superblock* GetSuperblock(const NvmArena& arena) {
  return reinterpret_cast<Superblock*>(arena.device()->base());
}

}  // namespace falcon

#endif  // SRC_PMEM_CATALOG_H_
