// NVM space management (paper §5.1): the arena divides the simulated NVM
// device into 2MB pages handed out by an atomic bump allocator whose cursor
// lives in the persistent superblock, so allocation state survives crashes.
//
// Persistent data structures refer to each other with arena-relative byte
// offsets (PmOffset), never raw pointers: offsets stay valid across
// (simulated) restarts. Offset 0 is the superblock and doubles as the null
// offset.

#ifndef SRC_PMEM_ARENA_H_
#define SRC_PMEM_ARENA_H_

#include <atomic>
#include <cstdint>

#include "src/common/constants.h"
#include "src/common/status.h"
#include "src/sim/nvm_device.h"

namespace falcon {

// Arena-relative byte offset of a persistent object. 0 == null (offset 0 is
// the superblock, which nothing else may point to).
using PmOffset = uint64_t;
inline constexpr PmOffset kNullPm = 0;

// Header at the start of every allocated page.
struct PageHeader {
  uint64_t purpose = 0;      // PagePurpose
  uint64_t owner_thread = 0;
  uint64_t table_id = 0;
  PmOffset next_page = kNullPm;        // chain of pages with the same role
  std::atomic<uint64_t> used_bytes{};  // bump cursor within this page
};
static_assert(sizeof(PageHeader) == 40);

enum class PagePurpose : uint64_t {
  kFree = 0,
  kTupleHeap = 1,
  kLogWindow = 2,
  kIndex = 3,
  kVersionHeap = 4,  // only used when versions are placed in NVM (Outp/ZenS)
};

class NvmArena {
 public:
  // Formats a fresh arena over `device` (writes the superblock) or re-opens
  // an existing one. `device` must outlive the arena.
  static NvmArena Format(NvmDevice* device);
  static NvmArena Open(NvmDevice* device);

  // True if `device` holds a formatted arena (magic matches).
  static bool IsFormatted(const NvmDevice& device);

  NvmDevice* device() const { return device_; }

  // Translates a persistent offset to a live pointer (and back).
  template <typename T>
  T* Ptr(PmOffset offset) const {
    return offset == kNullPm ? nullptr : reinterpret_cast<T*>(device_->base() + offset);
  }
  PmOffset Offset(const void* ptr) const {
    return ptr == nullptr
               ? kNullPm
               : static_cast<PmOffset>(static_cast<const std::byte*>(ptr) - device_->base());
  }

  // Allocates one 2MB page; returns its offset or kNullPm when full. The
  // page header is initialized; the body is zero (fresh mmap) or stale (if
  // recycled — pages are never recycled in this implementation).
  PmOffset AllocPage(PagePurpose purpose, uint32_t owner_thread, uint64_t table_id);

  // Allocates `count` physically contiguous pages (for objects larger than
  // one page, e.g. big hash directories). Only the first page gets a header.
  PmOffset AllocContiguousPages(uint64_t count, PagePurpose purpose, uint32_t owner_thread,
                                uint64_t table_id);

  // Bump-allocates `bytes` (aligned to `align`) from the page at
  // `page_offset`. Returns kNullPm if the page cannot fit the request.
  PmOffset AllocFromPage(PmOffset page_offset, uint64_t bytes, uint64_t align);

  // Total pages handed out so far (including the superblock page).
  uint64_t pages_allocated() const;
  uint64_t page_capacity() const { return device_->capacity() / kPageSize; }

  // Offset of the first byte after the superblock area.
  static constexpr PmOffset kSuperblockPages = 1;

 private:
  explicit NvmArena(NvmDevice* device) : device_(device) {}

  NvmDevice* device_;
};

}  // namespace falcon

#endif  // SRC_PMEM_ARENA_H_
