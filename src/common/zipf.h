// Zipfian key-distribution generator following the YCSB reference
// implementation (Gray et al., "Quickly generating billion-record synthetic
// databases", SIGMOD '94). Used for the paper's Zipfian(theta = 0.99) YCSB
// workloads (§6.1).

#ifndef SRC_COMMON_ZIPF_H_
#define SRC_COMMON_ZIPF_H_

#include <cmath>
#include <cstdint>

#include "src/common/rng.h"

namespace falcon {

class ZipfianGenerator {
 public:
  // Generates values in [0, item_count) with skew `theta` (0 < theta < 1).
  ZipfianGenerator(uint64_t item_count, double theta = 0.99, uint64_t seed = 1)
      : items_(item_count), theta_(theta), rng_(seed) {
    zetan_ = Zeta(item_count, theta);
    zeta2theta_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(items_), 1.0 - theta_)) /
           (1.0 - zeta2theta_ / zetan_);
  }

  uint64_t Next() {
    const double u = rng_.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    const double frac = eta_ * u - eta_ + 1.0;
    const auto rank = static_cast<uint64_t>(static_cast<double>(items_) * std::pow(frac, alpha_));
    return rank >= items_ ? items_ - 1 : rank;
  }

  // Scrambled variant: spreads the hot ranks across the key space so that hot
  // keys are not physically adjacent (matches YCSB's ScrambledZipfian).
  uint64_t NextScrambled() { return Mix64(Next()) % items_; }

  uint64_t item_count() const { return items_; }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t items_;
  double theta_;
  double zetan_;
  double zeta2theta_;
  double alpha_;
  double eta_;
  Rng rng_;
};

}  // namespace falcon

#endif  // SRC_COMMON_ZIPF_H_
