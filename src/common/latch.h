// Minimal spin latches for short critical sections in the simulator.
// Engine-level concurrency control does NOT use these; tuple locks live in
// NVM tuple metadata (src/cc). These latches protect simulator-internal
// shared state such as XPBuffer shards.

#ifndef SRC_COMMON_LATCH_H_
#define SRC_COMMON_LATCH_H_

#include <atomic>

namespace falcon {

// Test-and-test-and-set spin latch. Satisfies the Lockable requirements so it
// works with std::lock_guard.
class SpinLatch {
 public:
  SpinLatch() = default;
  SpinLatch(const SpinLatch&) = delete;
  SpinLatch& operator=(const SpinLatch&) = delete;

  void lock() {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      while (flag_.load(std::memory_order_relaxed)) {
        // Spin on a cached read until the lock looks free.
      }
    }
  }

  bool try_lock() { return !flag_.exchange(true, std::memory_order_acquire); }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace falcon

#endif  // SRC_COMMON_LATCH_H_
