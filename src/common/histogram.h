// Log-bucketed latency histogram for benchmark reporting (avg / percentiles).
// Single-writer; merge histograms from multiple threads with Merge().

#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <array>
#include <cstdint>

namespace falcon {

// Records uint64 samples (nanoseconds in practice) into 2x-geometric buckets
// with 16 linear sub-buckets each, giving ~6% relative error on percentiles.
class Histogram {
 public:
  static constexpr int kExponents = 40;   // covers up to ~2^40 ns
  static constexpr int kSubBuckets = 16;  // linear sub-buckets per exponent

  void Record(uint64_t value) {
    ++count_;
    sum_ += value;
    if (value > max_) {
      max_ = value;
    }
    ++buckets_[BucketFor(value)];
  }

  void Merge(const Histogram& other) {
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) {
      max_ = other.max_;
    }
    for (size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
  }

  uint64_t count() const { return count_; }
  uint64_t max() const { return max_; }
  double Mean() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_; }

  // Returns an upper bound on the p-th percentile. p is clamped to [0, 100]:
  // p <= 0 reports the first non-empty bucket's bound, p >= 100 the exact
  // recorded maximum (the saturation bucket's nominal bound can sit below a
  // huge max, so the bucket scan alone is not an upper bound there).
  uint64_t Percentile(double p) const {
    if (count_ == 0) {
      return 0;
    }
    if (p >= 100.0) {
      return max_;
    }
    if (p < 0.0) {
      p = 0.0;
    }
    const auto target = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_ - 1)) + 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen >= target) {
        if (i == buckets_.size() - 1) {
          return max_;  // saturation bucket: its nominal bound may undershoot
        }
        // Every sample is <= max_, so the tighter of the two still bounds.
        return UpperBoundFor(i) < max_ ? UpperBoundFor(i) : max_;
      }
    }
    return max_;
  }

  void Reset() { *this = Histogram{}; }

 private:
  static size_t BucketFor(uint64_t value) {
    if (value < kSubBuckets) {
      return static_cast<size_t>(value);
    }
    const int msb = 63 - __builtin_clzll(value);
    const int exponent = msb - 3;  // first 16 values are handled above (2^4)
    const auto sub = static_cast<size_t>((value >> exponent) & (kSubBuckets - 1));
    const size_t index = static_cast<size_t>(exponent) * kSubBuckets + sub;
    return index < kExponents * kSubBuckets ? index : kExponents * kSubBuckets - 1;
  }

  static uint64_t UpperBoundFor(size_t bucket) {
    if (bucket < kSubBuckets) {
      return bucket;
    }
    // For bucket = exponent * 16 + sub (sub in [8, 15]), the bucket holds all
    // values v with (v >> exponent) == sub, i.e. v < (sub + 1) << exponent.
    const size_t exponent = bucket / kSubBuckets;
    const uint64_t sub = bucket % kSubBuckets;
    return ((sub + 1) << exponent) - 1;
  }

  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
  std::array<uint64_t, kExponents * kSubBuckets> buckets_ = {};
};

}  // namespace falcon

#endif  // SRC_COMMON_HISTOGRAM_H_
