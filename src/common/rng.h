// Fast deterministic pseudo-random number generation (xoshiro256** and
// splitmix64). Workload generators need speed and reproducibility; <random>'s
// mersenne twister is unnecessarily heavy for that.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

namespace falcon {

// splitmix64: used to seed the main generator and for cheap hash mixing.
constexpr uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Mixes a 64-bit value into a well-distributed hash (stateless splitmix64).
constexpr uint64_t Mix64(uint64_t x) {
  uint64_t s = x;
  return SplitMix64(s);
}

// xoshiro256**: small, fast, high-quality PRNG. Not thread safe; create one
// per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x2545f4914f6cdd1dull) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t NextRange(uint64_t lo, uint64_t hi) { return lo + NextBounded(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4] = {};
};

}  // namespace falcon

#endif  // SRC_COMMON_RNG_H_
