// Lightweight status codes used on engine hot paths instead of exceptions.

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cstdint>
#include <string_view>

namespace falcon {

// Result of a storage or transaction operation.
enum class Status : uint8_t {
  kOk = 0,
  // The transaction must abort (lock conflict, validation failure, ...).
  kAborted,
  // The requested key does not exist (or is delete-flagged).
  kNotFound,
  // The key already exists (insert conflict).
  kDuplicate,
  // Out of space in the arena / page / log slot.
  kNoSpace,
  // The argument is malformed (bad column id, oversized value, ...).
  kInvalidArgument,
  // Internal invariant violation; indicates a bug.
  kInternal,
};

constexpr bool IsOk(Status s) { return s == Status::kOk; }

constexpr std::string_view StatusString(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kAborted:
      return "aborted";
    case Status::kNotFound:
      return "not found";
    case Status::kDuplicate:
      return "duplicate";
    case Status::kNoSpace:
      return "no space";
    case Status::kInvalidArgument:
      return "invalid argument";
    case Status::kInternal:
      return "internal error";
  }
  return "unknown";
}

}  // namespace falcon

#endif  // SRC_COMMON_STATUS_H_
