// Global constants shared by the simulator and the engine.
//
// The values mirror the hardware the paper evaluates on (Intel Optane PMem in
// eADR mode on Xeon Gold 5320); see DESIGN.md §2 for the substitution notes.

#ifndef SRC_COMMON_CONSTANTS_H_
#define SRC_COMMON_CONSTANTS_H_

#include <cstddef>
#include <cstdint>

namespace falcon {

// CPU cache line size in bytes (§3.2 of the paper: "typically 64B").
inline constexpr size_t kCacheLineSize = 64;

// Optane media access granularity in bytes (§3.2: "256B in Intel Optane NVM").
inline constexpr size_t kNvmBlockSize = 256;

// Cache lines per NVM media block.
inline constexpr size_t kLinesPerBlock = kNvmBlockSize / kCacheLineSize;

// Page size used by the NVM space manager (§5.1: "pages (2MB each)").
inline constexpr size_t kPageSize = 2ul * 1024 * 1024;

// Maximum number of worker threads an engine instance supports. The TID
// layout reserves 8 bits for the thread id (§5.2.1 footnote 2).
inline constexpr uint32_t kMaxThreads = 256;

// Number of transactions a small log window holds slots for (§4.3: "a small
// number (2~3) of transactions").
inline constexpr uint32_t kLogWindowSlots = 3;

// Default capacity of one small-log-window slot in bytes. Three slots of 16KB
// per thread keeps the aggregate window footprint well below the simulated L2
// size for the default thread counts.
inline constexpr size_t kLogSlotBytes = 16 * 1024;

// Default capacity of the per-thread hot tuple LRU (D2, hot tuple tracking).
inline constexpr size_t kHotTupleCapacity = 64;

// Per-thread version-queue length that triggers old-version recycling (§5.4).
inline constexpr size_t kVersionQueueGcThreshold = 256;

}  // namespace falcon

#endif  // SRC_COMMON_CONSTANTS_H_
