#!/usr/bin/env python3
"""Compare two Falcon metrics dumps and fail on regressions.

Accepts either side in any of these shapes:

  * bench_hotpath-style JSON: an object with a "scenarios" array (fresh run)
    or the committed BENCH_hotpath.json with "baseline"/"after" arrays (the
    "after" column is used). Records are keyed "name/scheme/<threads>t" and
    numeric fields are flattened ("device.line_writes", ...).
  * metrics JSONL as written by $FALCON_METRICS_JSON: one
    {"schema_version":N,"label":...,"metrics":{...},"latency":{...}} object
    per line, keyed by label, with metrics and latency fields flattened
    ("metrics.commits", "latency.all.p99_ns", ...).

Records present on only one side are reported as coverage (the comparison
runs over the shared records). Within a shared record, a field in scope
(after --only/--ignore) that exists on only ONE side is an error by default:
schema drift (e.g. a v2 dump missing the v3 batch_* and abort-count fields)
must be visible, not silently skipped. --allow-missing-fields downgrades
one-sided fields to a warning, for deliberate cross-version comparisons.
A schema_version mismatch between the two files is always reported.

Exit status is 1 when any compared field regresses beyond --tolerance
percent (or differs at all for --exact prefixes), or when one-sided fields
were found without --allow-missing-fields; 0 otherwise.

Typical CI use — device counters of the hot-path bench are deterministic, so
they must match the committed reference exactly:

  python3 tools/metrics_compare.py BENCH_hotpath.json fresh.json \
      --only device. --exact device.

`--self-test` runs the tool against synthesized v2/v3 records and exercises
every verdict (pass, regression, exact mismatch, one-sided field, missing
record); CI runs it before trusting any real comparison.
"""

import argparse
import json
import os
import sys
import tempfile


def flatten(prefix, value, out):
    if isinstance(value, dict):
        for k, v in value.items():
            flatten(f"{prefix}{k}.", v, out)
    elif isinstance(value, (int, float)) and not isinstance(value, bool):
        out[prefix[:-1]] = value


def scenario_key(rec):
    name = rec.get("name", "?")
    scheme = rec.get("scheme", "?")
    threads = rec.get("threads", "?")
    return f"{name}/{scheme}/{threads}t"


def load_records(path):
    """Returns ({record_key: {field: number}}, {schema_version, ...})."""
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    records = {}
    versions = set()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    rows = None
    if isinstance(doc, dict):
        rows = doc.get("after") or doc.get("scenarios") or doc.get("baseline")
        if not isinstance(rows, list) and not ("label" in doc or "metrics" in doc):
            raise SystemExit(f"{path}: no scenarios/after/baseline array")
    if isinstance(rows, list):
        for rec in rows:
            fields = {}
            flatten("", rec, fields)
            for drop in ("threads",):
                fields.pop(drop, None)
            records[scenario_key(rec)] = fields
        return records, versions
    # JSONL: one metrics object per line.
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            raise SystemExit(f"{path}:{lineno}: not JSON ({e})")
        if "schema_version" in rec:
            versions.add(rec["schema_version"])
        label = rec.get("label", f"line{lineno}")
        fields = {}
        flatten("metrics.", rec.get("metrics", {}), fields)
        flatten("latency.", rec.get("latency", {}), fields)
        records[label] = fields
    return records, versions


def compare_files(base_path, new_path, only=(), ignore=(), exact=(),
                  ignore_records=(), tolerance=5.0, allow_missing_fields=False,
                  out=sys.stdout):
    """Runs the comparison; returns the process exit status (0 or 1)."""
    base, base_versions = load_records(base_path)
    new, new_versions = load_records(new_path)
    if base_versions and new_versions and base_versions != new_versions:
        print(f"note: schema_version differs: {sorted(base_versions)} (base) vs "
              f"{sorted(new_versions)} (new); one-sided fields are expected",
              file=out)
    shared = sorted(k for k in set(base) & set(new)
                    if not any(k.startswith(p) for p in ignore_records))
    if not shared:
        print(f"FAIL: no common records between {base_path} and {new_path}",
              file=out)
        return 1

    def in_scope(field):
        if only and not any(field.startswith(p) for p in only):
            return False
        return not any(field.startswith(p) for p in ignore)

    failures = []
    one_sided = []
    compared = 0
    for key in shared:
        bf, nf = base[key], new[key]
        for field in sorted(f for f in set(bf) | set(nf) if in_scope(f)):
            if field not in bf or field not in nf:
                one_sided.append((key, field, "base" if field not in bf else "new"))
                continue
            b, n = bf[field], nf[field]
            compared += 1
            if any(field.startswith(p) for p in exact):
                if b != n:
                    failures.append((key, field, b, n, "exact"))
                continue
            denom = abs(b) if b != 0 else 1.0
            pct = 100.0 * abs(n - b) / denom
            if pct > tolerance:
                failures.append((key, field, b, n, f"{pct:.1f}%"))

    print(f"compared {compared} fields across {len(shared)} shared records "
          f"({len(base)} base, {len(new)} new)", file=out)
    for key, field, side in one_sided:
        verdict = "WARN" if allow_missing_fields else "FAIL"
        print(f"{verdict} {key} {field}: absent on the {side} side", file=out)
    for key, field, b, n, why in failures:
        print(f"FAIL {key} {field}: {b} -> {n} ({why}, tolerance {tolerance}%)",
              file=out)
    if one_sided and not allow_missing_fields:
        print("hint: pass --allow-missing-fields for deliberate cross-schema "
              "comparisons", file=out)
    if failures or (one_sided and not allow_missing_fields):
        return 1
    print("OK: within tolerance", file=out)
    return 0


# ---- self-test -------------------------------------------------------------

def _jsonl(*recs):
    return "\n".join(json.dumps(r) for r in recs) + "\n"


def _v3_record(label="bench/occ/4t", commits=1000, line_writes=500):
    return {
        "schema_version": 3,
        "label": label,
        "metrics": {
            "commits": commits,
            "txn_aborts": 8,
            "aborts_user": 3,
            "aborts_occ_validation": 5,
            "batch_slices": 40,
            "batch_stall_ns": 9000,
            "device": {"line_writes": line_writes},
        },
        "latency": {"all": {"p50_ns": 120, "p99_ns": 900, "aborts": 8}},
    }


def _v2_record(label="bench/occ/4t"):
    # Pre-batch, pre-abort-breakdown schema: no batch_* and no aborts_* keys.
    return {
        "schema_version": 2,
        "label": label,
        "metrics": {"commits": 1000, "txn_aborts": 8,
                    "device": {"line_writes": 500}},
        "latency": {"all": {"p50_ns": 120, "p99_ns": 900}},
    }


def self_test():
    cases = []

    def case(name, expect_rc, base, new, **kwargs):
        cases.append((name, expect_rc, base, new, kwargs))

    v3 = _jsonl(_v3_record())
    case("identical v3 dumps pass", 0, v3, v3)
    case("regression beyond tolerance fails", 1,
         v3, _jsonl(_v3_record(commits=800)), tolerance=5.0)
    case("drift within tolerance passes", 0,
         v3, _jsonl(_v3_record(commits=1010)), tolerance=5.0)
    case("exact prefix rejects off-by-one", 1,
         v3, _jsonl(_v3_record(line_writes=501)),
         exact=("metrics.device.",), tolerance=50.0)
    # The historical bug: a v2 dump lacks the v3 batch_* and abort-count
    # fields, and comparing intersections silently passed. One-sided fields
    # in scope must now fail...
    case("one-sided batch/abort fields fail by default", 1,
         _jsonl(_v2_record()), v3, only=("metrics.",))
    # ...unless the cross-schema comparison is deliberate.
    case("--allow-missing-fields downgrades to a warning", 0,
         _jsonl(_v2_record()), v3, only=("metrics.",),
         allow_missing_fields=True)
    # --only scoping keeps out-of-scope one-sided fields out of the verdict.
    case("out-of-scope one-sided fields are ignored", 0,
         _jsonl(_v2_record()), v3, only=("latency.all.p",))
    case("disjoint records fail", 1, v3, _jsonl(_v3_record(label="other/2t")))
    # Record-level exclusion: a known-nondeterministic record can be skipped
    # without loosening the comparison of the others.
    two_base = _jsonl(_v3_record(), _v3_record(label="bench/occ/8t"))
    two_new = _jsonl(_v3_record(), _v3_record(label="bench/occ/8t", commits=990))
    case("a drifting record fails without --ignore-records", 1,
         two_base, two_new, exact=("metrics.",))
    case("--ignore-records excludes the drifting record", 0,
         two_base, two_new, exact=("metrics.",),
         ignore_records=("bench/occ/8t",))
    # bench_hotpath-style documents still parse and compare.
    hotpath = json.dumps({"scenarios": [
        {"name": "hot", "scheme": "occ", "threads": 2,
         "device": {"line_writes": 77}}]})
    case("hotpath-style document passes against itself", 0, hotpath, hotpath,
         only=("device.",), exact=("device.",))

    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        for i, (name, expect_rc, base, new, kwargs) in enumerate(cases):
            base_path = os.path.join(tmp, f"base{i}.json")
            new_path = os.path.join(tmp, f"new{i}.json")
            with open(base_path, "w", encoding="utf-8") as f:
                f.write(base)
            with open(new_path, "w", encoding="utf-8") as f:
                f.write(new)
            with open(os.devnull, "w", encoding="utf-8") as devnull:
                rc = compare_files(base_path, new_path, out=devnull, **kwargs)
            verdict = "ok" if rc == expect_rc else "FAIL"
            print(f"self-test [{verdict}] {name} (rc={rc}, want {expect_rc})")
            failures += rc != expect_rc
    if failures:
        print(f"self-test: {failures}/{len(cases)} cases FAILED")
        return 1
    print(f"self-test: all {len(cases)} cases passed")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("base", nargs="?", help="reference dump")
    ap.add_argument("new", nargs="?", help="candidate dump")
    ap.add_argument("--tolerance", type=float, default=5.0,
                    help="max allowed relative change in percent (default 5)")
    ap.add_argument("--only", action="append", default=[],
                    help="compare only fields starting with this prefix (repeatable)")
    ap.add_argument("--ignore", action="append", default=[],
                    help="skip fields starting with this prefix (repeatable)")
    ap.add_argument("--exact", action="append", default=[],
                    help="fields starting with this prefix must match exactly (repeatable)")
    ap.add_argument("--ignore-records", action="append", default=[],
                    help="skip records whose key starts with this prefix, e.g. a "
                         "multi-threaded scenario whose counters are legitimately "
                         "nondeterministic (repeatable)")
    ap.add_argument("--allow-missing-fields", action="store_true",
                    help="report one-sided fields as warnings instead of failing "
                         "(for deliberate cross-schema comparisons)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in scenario suite and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.base is None or args.new is None:
        ap.error("base and new dumps are required (or use --self-test)")
    return compare_files(args.base, args.new, only=args.only, ignore=args.ignore,
                         exact=args.exact, ignore_records=args.ignore_records,
                         tolerance=args.tolerance,
                         allow_missing_fields=args.allow_missing_fields)


if __name__ == "__main__":
    sys.exit(main())
