#!/usr/bin/env python3
"""Compare two Falcon metrics dumps and fail on regressions.

Accepts either side in any of these shapes:

  * bench_hotpath-style JSON: an object with a "scenarios" array (fresh run)
    or the committed BENCH_hotpath.json with "baseline"/"after" arrays (the
    "after" column is used). Records are keyed "name/scheme/<threads>t" and
    numeric fields are flattened ("device.line_writes", ...).
  * metrics JSONL as written by $FALCON_METRICS_JSON: one
    {"schema_version":2,"label":...,"metrics":{...},"latency":{...}} object
    per line, keyed by label, with metrics and latency fields flattened
    ("metrics.commits", "latency.all.p99_ns", ...).

Only records and fields present on BOTH sides are compared; coverage is
printed so a silently-empty intersection is visible. Exit status is 1 when
any compared field regresses beyond --tolerance percent (or differs at all
for --exact prefixes), 0 otherwise.

Typical CI use — device counters of the hot-path bench are deterministic, so
they must match the committed reference exactly:

  python3 tools/metrics_compare.py BENCH_hotpath.json fresh.json \
      --only device. --exact device.
"""

import argparse
import json
import sys


def flatten(prefix, value, out):
    if isinstance(value, dict):
        for k, v in value.items():
            flatten(f"{prefix}{k}.", v, out)
    elif isinstance(value, (int, float)) and not isinstance(value, bool):
        out[prefix[:-1]] = value


def scenario_key(rec):
    name = rec.get("name", "?")
    scheme = rec.get("scheme", "?")
    threads = rec.get("threads", "?")
    return f"{name}/{scheme}/{threads}t"


def load_records(path):
    """Returns {record_key: {field: number}}."""
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    records = {}
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict):
        rows = doc.get("after") or doc.get("scenarios") or doc.get("baseline")
        if not isinstance(rows, list):
            raise SystemExit(f"{path}: no scenarios/after/baseline array")
        for rec in rows:
            fields = {}
            flatten("", rec, fields)
            for drop in ("threads",):
                fields.pop(drop, None)
            records[scenario_key(rec)] = fields
        return records
    # JSONL: one metrics object per line.
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            raise SystemExit(f"{path}:{lineno}: not JSON ({e})")
        label = rec.get("label", f"line{lineno}")
        fields = {}
        flatten("metrics.", rec.get("metrics", {}), fields)
        flatten("latency.", rec.get("latency", {}), fields)
        records[label] = fields
    return records


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("base", help="reference dump")
    ap.add_argument("new", help="candidate dump")
    ap.add_argument("--tolerance", type=float, default=5.0,
                    help="max allowed relative change in percent (default 5)")
    ap.add_argument("--only", action="append", default=[],
                    help="compare only fields starting with this prefix (repeatable)")
    ap.add_argument("--ignore", action="append", default=[],
                    help="skip fields starting with this prefix (repeatable)")
    ap.add_argument("--exact", action="append", default=[],
                    help="fields starting with this prefix must match exactly (repeatable)")
    args = ap.parse_args()

    base = load_records(args.base)
    new = load_records(args.new)
    shared = sorted(set(base) & set(new))
    if not shared:
        print(f"FAIL: no common records between {args.base} and {args.new}")
        return 1

    failures = []
    compared = 0
    for key in shared:
        for field in sorted(set(base[key]) & set(new[key])):
            if args.only and not any(field.startswith(p) for p in args.only):
                continue
            if any(field.startswith(p) for p in args.ignore):
                continue
            b, n = base[key][field], new[key][field]
            compared += 1
            if any(field.startswith(p) for p in args.exact):
                if b != n:
                    failures.append((key, field, b, n, "exact"))
                continue
            denom = abs(b) if b != 0 else 1.0
            pct = 100.0 * abs(n - b) / denom
            if pct > args.tolerance:
                failures.append((key, field, b, n, f"{pct:.1f}%"))

    print(f"compared {compared} fields across {len(shared)} shared records "
          f"({len(base)} base, {len(new)} new)")
    for key, field, b, n, why in failures:
        print(f"FAIL {key} {field}: {b} -> {n} ({why}, tolerance {args.tolerance}%)")
    if failures:
        return 1
    print("OK: within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
