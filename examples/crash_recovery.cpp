// Crash-recovery walkthrough:
//   1. why eADR changes the rules — the same unflushed store survives an
//      eADR power failure but is lost under ADR (SemanticCache demo, §3.1);
//   2. an engine-level crash mid-commit and Falcon's millisecond recovery,
//      vs ZenS's heap-scan recovery (§6.5).
//
//   ./build/examples/crash_recovery

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "src/sim/semantic_cache.h"
#include "src/workload/ycsb.h"

using namespace falcon;

static void DemoPersistenceDomains() {
  std::printf("== 1. ADR vs eADR semantics ==\n");
  alignas(64) static uint64_t nvm_image[16] = {};

  {
    SemanticCache cache;  // volatile-cache platform (ADR)
    const uint64_t value = 42;
    cache.Store(&nvm_image[0], &value, sizeof(value));
    cache.CrashAdr();
    std::printf("ADR:  store 42 without clwb, power failure -> image holds %lu (lost!)\n",
                nvm_image[0]);
  }
  {
    SemanticCache cache;  // persistent-cache platform (eADR)
    const uint64_t value = 42;
    cache.Store(&nvm_image[1], &value, sizeof(value));
    cache.CrashEadr();
    std::printf("eADR: store 42 without clwb, power failure -> image holds %lu (persistent)\n",
                nvm_image[1]);
  }
}

static void DemoEngineRecovery(const EngineConfig& base_config, const char* label) {
  NvmDevice device(1ull << 30);
  constexpr uint64_t kRows = 50000;

  YcsbConfig yc;
  yc.record_count = kRows;
  yc.field_count = 4;
  yc.field_size = 25;

  // Phase 1: populate, then crash in the middle of a commit.
  {
    Engine engine(&device, base_config, 2);
    YcsbWorkload workload(&engine, yc);
    workload.LoadRange(engine.worker(0), 0, kRows);

    engine.ArmCrashPoint(CrashPoint::kMidApply);
    try {
      Worker& w = engine.worker(0);
      Txn txn = w.Begin();
      const uint64_t v = 123456;
      txn.UpdateColumn(workload.table(), 7, 0, &v);
      txn.UpdateColumn(workload.table(), 8, 0, &v);
      txn.Commit();
      std::printf("unexpected: crash point did not fire\n");
    } catch (const TxnCrashed&) {
      // Power failure: under eADR the arena contents at this instant are
      // exactly the persistent image. Drop the engine without cleanup.
    }
  }

  // Phase 2: reopen over the same device -> automatic recovery.
  Engine engine(&device, base_config, 2);
  const RecoveryReport& report = engine.recovery_report();
  std::printf(
      "%-22s recovered in %7.3f ms  (catalog %.3f + index %.3f + replay %.3f + rebuild %.3f; "
      "%lu slots replayed, %lu discarded, %lu tuples scanned)\n",
      label, report.total_ms, report.catalog_ms, report.index_ms, report.replay_ms,
      report.rebuild_ms, report.slots_replayed, report.slots_discarded, report.tuples_scanned);

  // The committed-but-interrupted transaction must be complete.
  auto workload = YcsbWorkload::Attach(&engine, yc);
  Worker& w = engine.worker(0);
  Txn txn = w.Begin();
  uint64_t a = 0;
  uint64_t b = 0;
  txn.ReadColumn(workload->table(), 7, 0, &a);
  txn.ReadColumn(workload->table(), 8, 0, &b);
  txn.Commit();
  std::printf("%-22s post-recovery values: %lu / %lu (expected 123456 / 123456)\n", label, a,
              b);
  MaybeAppendMetricsJson(
      BenchLabel("example", std::string("crash_recovery/") + label, 2).c_str(),
      engine.SnapshotMetrics());
}

int main() {
  DemoPersistenceDomains();

  std::printf("\n== 2. Engine crash + recovery (50K rows) ==\n");
  // Falcon: replay bounded by the small log window; indexes recover in NVM.
  DemoEngineRecovery(EngineConfig::Falcon(CcScheme::kOcc), "Falcon");
  // ZenS: DRAM index must be rebuilt by scanning the whole tuple heap.
  DemoEngineRecovery(EngineConfig::ZenS(CcScheme::kOcc), "ZenS");
  return 0;
}
