// Engine shoot-out on YCSB-A: runs the same Zipfian update-heavy workload on
// Falcon, Inp, Outp, and ZenS and prints why Falcon wins — NVM media writes
// per transaction.
//
//   ./build/examples/ycsb_engine_compare [threads]

#include <cstdio>
#include <cstdlib>

#include "src/workload/bench_runner.h"
#include "src/workload/ycsb.h"

using namespace falcon;

static void RunEngine(const EngineConfig& config, uint32_t threads) {
  NvmDevice device(2ull << 30);
  Engine engine(&device, config, threads);

  YcsbConfig yc;
  yc.record_count = 200000;
  yc.field_count = 10;
  yc.field_size = 100;  // ~1KB tuples, as in the paper's YCSB setup
  yc.workload = 'A';
  yc.zipfian = true;

  YcsbWorkload workload(&engine, yc);
  {
    std::vector<std::thread> loaders;
    const uint64_t per = yc.record_count / threads;
    for (uint32_t t = 0; t < threads; ++t) {
      const uint64_t begin = t * per;
      const uint64_t end = t + 1 == threads ? yc.record_count : begin + per;
      loaders.emplace_back(
          [&, t, begin, end] { workload.LoadRange(engine.worker(t), begin, end); });
    }
    for (auto& th : loaders) {
      th.join();
    }
  }

  std::vector<YcsbThreadState> states;
  for (uint32_t t = 0; t < threads; ++t) {
    states.emplace_back(workload.config(), t, threads, 777 + t);
  }
  const BenchResult result = RunBench(engine, threads, 20000,
                                      [&](Worker& worker, uint32_t t, uint64_t) {
                                        return workload.RunOne(worker, states[t]);
                                      });

  std::printf("%-22s  %8.3f MTxn/s  | media writes/txn %6.2f | write amp %5.2fx\n",
              config.name.c_str(), result.mtxn_per_s,
              static_cast<double>(result.device.media_writes) /
                  static_cast<double>(std::max<uint64_t>(1, result.commits)),
              result.write_amp);
  MaybeAppendMetricsJson(
      BenchLabel("example", "ycsb_engine_compare/" + config.name, threads).c_str(),
      result.metrics, result.latency);
}

int main(int argc, char** argv) {
  const uint32_t threads = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 4;
  std::printf("YCSB-A, Zipfian(0.99), 1KB tuples, %u threads (simulated time)\n\n", threads);
  RunEngine(EngineConfig::Falcon(CcScheme::kOcc), threads);
  RunEngine(EngineConfig::FalconNoFlush(CcScheme::kOcc), threads);
  RunEngine(EngineConfig::FalconAllFlush(CcScheme::kOcc), threads);
  RunEngine(EngineConfig::Inp(CcScheme::kOcc), threads);
  RunEngine(EngineConfig::InpNoFlush(CcScheme::kOcc), threads);
  RunEngine(EngineConfig::Outp(CcScheme::kOcc), threads);
  RunEngine(EngineConfig::ZenS(CcScheme::kOcc), threads);
  return 0;
}
