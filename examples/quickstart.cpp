// Quickstart: create a Falcon engine on a simulated eADR NVM device, define
// a table, and run a few transactions.
//
//   cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <cstring>

#include "src/core/engine.h"

using namespace falcon;

int main() {
  // 1. A simulated NVM device: 256MB of "persistent" memory with an
  //    XPBuffer write-combining model and media-traffic accounting.
  NvmDevice device(256ull << 20);

  // 2. A Falcon engine: in-place updates, small log window, selective data
  //    flush, NVM-resident hash index, OCC. Two worker threads.
  Engine engine(&device, EngineConfig::Falcon(CcScheme::kOcc), /*workers=*/2);

  // 3. A table: u64 primary key + two columns.
  SchemaBuilder schema("accounts");
  const uint32_t kBalance = schema.AddU64();
  const uint32_t kNote = schema.AddColumn(24);
  const TableId accounts = engine.CreateTable(schema, IndexKind::kHash);

  Worker& worker = engine.worker(0);

  // 4. Insert a few rows.
  for (uint64_t id = 1; id <= 10; ++id) {
    struct Row {
      uint64_t balance;
      char note[24];
    } row = {100 * id, {}};
    std::snprintf(row.note, sizeof(row.note), "account-%lu", id);

    Txn txn = worker.Begin();
    if (txn.Insert(accounts, id, &row) != Status::kOk || txn.Commit() != Status::kOk) {
      std::printf("insert %lu failed\n", id);
      return 1;
    }
  }

  // 5. A read-modify-write transaction: transfer 50 from account 1 to 2.
  {
    Txn txn = worker.Begin();
    uint64_t from = 0;
    uint64_t to = 0;
    txn.ReadColumn(accounts, 1, kBalance, &from);
    txn.ReadColumn(accounts, 2, kBalance, &to);
    from -= 50;
    to += 50;
    txn.UpdateColumn(accounts, 1, kBalance, &from);
    txn.UpdateColumn(accounts, 2, kBalance, &to);
    if (txn.Commit() != Status::kOk) {
      std::printf("transfer aborted\n");
      return 1;
    }
  }

  // 6. Read it back.
  {
    Txn txn = worker.Begin(/*read_only=*/true);
    for (uint64_t id = 1; id <= 3; ++id) {
      uint64_t balance = 0;
      char note[24] = {};
      txn.ReadColumn(accounts, id, kBalance, &balance);
      txn.ReadColumn(accounts, id, kNote, note);
      std::printf("account %lu (%s): balance %lu\n", id, note, balance);
    }
    txn.Commit();
  }

  // 7. What did this cost on the (simulated) NVM?
  device.DrainAll();
  const DeviceStats stats = device.stats();
  std::printf(
      "\nNVM media traffic: %lu line writes -> %lu media writes, %lu media reads "
      "(write amplification %.2fx)\n",
      stats.line_writes, stats.media_writes, stats.media_reads, stats.WriteAmplification());
  std::printf("simulated time on worker 0: %.1f us\n",
              static_cast<double>(worker.ctx().sim_ns()) / 1000.0);

  // 8. The same numbers — and much more — through the metrics layer: one
  //    engine-wide snapshot, exportable as JSON (set FALCON_METRICS_JSON).
  const MetricsSnapshot metrics = engine.SnapshotMetrics();
  std::printf("metrics: commits=%llu log media writes=%llu tuple-heap media writes=%llu\n",
              static_cast<unsigned long long>(metrics.commits),
              static_cast<unsigned long long>(
                  metrics.device_region_media_writes[static_cast<size_t>(kRegionLog)]),
              static_cast<unsigned long long>(
                  metrics.device_region_media_writes[static_cast<size_t>(kRegionTupleHeap)]));
  MaybeAppendMetricsJson(BenchLabel("example", "quickstart", 1).c_str(), metrics);
  return 0;
}
