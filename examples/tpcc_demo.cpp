// TPC-C demo: loads a small TPC-C database and runs the standard mix on
// Falcon, printing per-transaction-type throughput and NVM media traffic.
//
//   ./build/examples/tpcc_demo [threads] [warehouses]

#include <cstdio>
#include <cstdlib>

#include "src/workload/bench_runner.h"
#include "src/workload/tpcc.h"

using namespace falcon;

int main(int argc, char** argv) {
  const uint32_t threads = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 4;
  const uint32_t warehouses = argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : threads;

  NvmDevice device(4ull << 30);
  Engine engine(&device, EngineConfig::Falcon(CcScheme::kOcc), threads);

  TpccConfig config;
  config.warehouses = warehouses;
  config.districts_per_warehouse = 10;
  config.customers_per_district = 256;
  config.items = 5000;
  config.initial_orders_per_district = 40;

  TpccWorkload workload(&engine, config);
  std::printf("loading TPC-C: %u warehouses, %u items...\n", warehouses, config.items);
  workload.LoadItems(engine.worker(0));
  {
    std::vector<std::thread> loaders;
    const uint32_t per = (warehouses + threads - 1) / threads;
    for (uint32_t t = 0; t < threads; ++t) {
      const uint32_t first = 1 + t * per;
      const uint32_t last = std::min(warehouses, first + per - 1);
      if (first > last) {
        continue;
      }
      loaders.emplace_back(
          [&, t, first, last] { workload.LoadWarehouseSlice(engine.worker(t), first, last); });
    }
    for (auto& th : loaders) {
      th.join();
    }
  }

  std::printf("running the standard mix on %u threads...\n", threads);
  std::vector<TpccStats> stats(threads);
  std::vector<Rng> rngs;
  for (uint32_t t = 0; t < threads; ++t) {
    rngs.emplace_back(1000 + t);
  }
  const BenchResult result =
      RunBenchTyped(engine, threads, /*txns_per_thread=*/20000, TpccTxnNames(),
                    [&](Worker& worker, uint32_t t, uint64_t) {
                      bool committed = false;
                      const TpccTxnType type = workload.RunOne(worker, rngs[t], &committed);
                      (committed ? stats[t].committed : stats[t].aborted)[type] += 1;
                      return committed ? static_cast<int>(type) : -1;
                    });

  TpccStats merged;
  for (const TpccStats& s : stats) {
    merged.Merge(s);
  }
  static const char* kNames[5] = {"NewOrder", "Payment", "OrderStatus", "Delivery",
                                  "StockLevel"};
  std::printf("\n%-12s %12s %10s\n", "txn type", "committed", "aborted");
  for (int i = 0; i < 5; ++i) {
    std::printf("%-12s %12lu %10lu\n", kNames[i], merged.committed[i], merged.aborted[i]);
  }
  std::printf(
      "\nthroughput: %.3f MTxn/s (simulated) | avg latency %.1f us | abort rate %.1f%%\n",
      result.mtxn_per_s, result.avg_us, result.AbortRate() * 100);
  std::printf("NVM: %lu media writes, %lu media reads, write amplification %.2fx\n",
              result.device.media_writes, result.device.media_reads, result.write_amp);
  std::printf("engine aborts incl. internal retries: %lu (bench-visible: %lu)\n",
              static_cast<unsigned long>(result.txn_aborts),
              static_cast<unsigned long>(result.attempt_aborts));
  MaybeAppendMetricsJson(BenchLabel("example", "tpcc_demo", threads).c_str(),
                         result.metrics, result.latency);
  return 0;
}
