// Shard-scaling bench: throughput of the Database facade as the shard count
// (independent engines, each with its own simulated device) grows.
//
// Each session drives worker i of every shard; transactions route by key
// hash, cross-shard writes commit with 2PC. A single shard saturates at one
// device's bandwidth and one engine's worker clocks; additional shards add
// both, so multi-shard throughput scales past a single engine's ceiling —
// minus the 2PC tax on cross-shard transactions.
//
// Output: one row per (workload, shard count) plus the uniform metrics JSON
// (set FALCON_METRICS_JSON). FALCON_SHARDS pins the shard count, otherwise
// the sweep runs M in {1, 2, 4}.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "src/db/database.h"
#include "src/workload/bench_runner.h"
#include "src/workload/sharded.h"

namespace falcon {
namespace {

// Each shard brings one engine's worth of cores: sessions scale with the
// shard count (16 per shard), while the total transaction count stays
// fixed. A single engine saturates its one device (6 channels) well below
// 16 sessions' compute under a write-heavy mix, so the M = 1 row is the
// one-engine ceiling and the multi-shard rows scale past it on both axes
// (M× devices, M× worker cores).
constexpr uint32_t kSessionsPerShard = 16;

struct ShardRunResult {
  uint64_t commits = 0;
  uint64_t attempts_failed = 0;
  double sim_seconds = 0;
  double cpu_seconds = 0;     // slowest session's summed branch clocks
  double device_seconds = 0;  // slowest shard device: busy / channels
  double mtxn_per_s = 0;
  MetricsSnapshot metrics;
};

// Quiesces caches/devices and zeroes every per-worker clock and stat.
void ResetAll(Database& db) {
  for (uint32_t m = 0; m < db.shards(); ++m) {
    Engine& engine = db.engine(m);
    for (uint32_t s = 0; s < db.sessions(); ++s) {
      engine.worker(s).ctx().cache().WritebackAll();
      engine.worker(s).ResetStats();
    }
    engine.device()->DrainAll();
    engine.device()->ResetStats();
  }
}

// Simulated elapsed time of a sharded run. A session's compute is serial
// across its per-shard branch clocks (sum over shards); sessions and devices
// run concurrently (max over sessions / shards).
void FillSimSeconds(Database& db, ShardRunResult* result) {
  uint64_t max_session_ns = 0;
  for (uint32_t s = 0; s < db.sessions(); ++s) {
    uint64_t session_ns = 0;
    for (uint32_t m = 0; m < db.shards(); ++m) {
      session_ns += db.engine(m).worker(s).ctx().sim_ns();
    }
    max_session_ns = std::max(max_session_ns, session_ns);
  }
  double device_s = 0;
  for (uint32_t m = 0; m < db.shards(); ++m) {
    const uint32_t channels = std::min<uint32_t>(
        db.engine(m).config().cost_params.device_channels, db.sessions());
    const DeviceStats stats = db.engine(m).device()->stats();
    device_s = std::max(device_s, static_cast<double>(stats.busy_ns) /
                                      std::max(1u, channels) / 1e9);
  }
  result->cpu_seconds = static_cast<double>(max_session_ns) / 1e9;
  result->device_seconds = device_s;
  result->sim_seconds = std::max(result->cpu_seconds, device_s);
}

ShardRunResult RunSessions(Database& db, uint64_t txns_per_session,
                           const std::function<bool(uint32_t, Rng&)>& run_one) {
  ResetAll(db);
  const MetricsSnapshot before = db.SnapshotMetrics();

  std::vector<uint64_t> commits(db.sessions(), 0);
  std::vector<uint64_t> failed(db.sessions(), 0);
  std::vector<std::thread> pool;
  pool.reserve(db.sessions());
  for (uint32_t s = 0; s < db.sessions(); ++s) {
    pool.emplace_back([&, s] {
      Rng rng(0x5eedull * (s + 1));
      uint64_t local_commits = 0;
      uint64_t local_failed = 0;
      for (uint64_t i = 0; i < txns_per_session; ++i) {
        if (run_one(s, rng)) {
          ++local_commits;
        } else {
          ++local_failed;
        }
      }
      commits[s] = local_commits;
      failed[s] = local_failed;
    });
  }
  for (auto& th : pool) {
    th.join();
  }
  for (uint32_t m = 0; m < db.shards(); ++m) {
    for (uint32_t s = 0; s < db.sessions(); ++s) {
      db.engine(m).worker(s).ctx().cache().WritebackAll();
    }
    db.engine(m).device()->DrainAll();
  }

  ShardRunResult result;
  result.metrics = DiffMetrics(before, db.SnapshotMetrics());
  for (uint32_t s = 0; s < db.sessions(); ++s) {
    result.commits += commits[s];
    result.attempts_failed += failed[s];
  }
  FillSimSeconds(db, &result);
  if (result.sim_seconds > 0) {
    result.mtxn_per_s =
        static_cast<double>(result.commits) / result.sim_seconds / 1e6;
  }
  return result;
}

// Runs `fn(session)` on every session concurrently (load parallelism).
void ForEachSession(uint32_t sessions, const std::function<void(uint32_t)>& fn) {
  std::vector<std::thread> pool;
  pool.reserve(sessions);
  for (uint32_t s = 0; s < sessions; ++s) {
    pool.emplace_back([&fn, s] { fn(s); });
  }
  for (auto& th : pool) {
    th.join();
  }
}

ShardRunResult RunYcsb(uint32_t shards, uint64_t total_txns) {
  DatabaseConfig cfg;
  cfg.engine = EngineConfig::Falcon(CcScheme::kOcc);
  cfg.shards = shards;
  cfg.sessions = kSessionsPerShard * shards;
  cfg.device_bytes_per_shard = 1ull << 30;
  Database db(cfg);
  ShardedYcsbConfig wl;
  wl.record_count = 65536;
  wl.cross_shard_pct = 10;
  wl.read_pct = 20;  // write-heavy: the device, not the CPU, is the limit
  ShardedYcsb ycsb(&db, wl);
  const uint64_t per_load = wl.record_count / cfg.sessions;
  ForEachSession(cfg.sessions, [&](uint32_t s) {
    const uint64_t begin = s * per_load;
    const uint64_t end = s + 1 == cfg.sessions ? wl.record_count : begin + per_load;
    ycsb.LoadRange(s, begin, end);
  });
  return RunSessions(db, total_txns / cfg.sessions, [&](uint32_t s, Rng& rng) {
    return ycsb.RunOne(s, rng);
  });
}

ShardRunResult RunTpcc(uint32_t shards, uint64_t total_txns) {
  DatabaseConfig cfg;
  cfg.engine = EngineConfig::Falcon(CcScheme::kOcc);
  cfg.shards = shards;
  cfg.sessions = kSessionsPerShard * shards;
  cfg.device_bytes_per_shard = 1ull << 30;
  Database db(cfg);
  ShardedTpccConfig wl;
  wl.warehouses = cfg.sessions;  // one home warehouse per session
  ShardedTpcc tpcc(&db, wl);
  ForEachSession(cfg.sessions, [&](uint32_t s) {
    tpcc.LoadWarehouses(s, s + 1, s + 1);
  });
  return RunSessions(db, total_txns / cfg.sessions, [&](uint32_t s, Rng& rng) {
    bool committed = false;
    tpcc.RunOne(s, rng, &committed);
    return committed;
  });
}

void PrintRow(const char* workload, uint32_t shards, const ShardRunResult& r,
              double base_mtps) {
  std::printf(
      "%-6s M=%u  commits=%-8" PRIu64 " Mtxn/s=%-8.3f sim_s=%-8.4f "
      "(cpu=%.4f dev=%.4f) 2pc_commits=%-7" PRIu64 " 2pc_aborts=%-5" PRIu64
      " speedup=%.2fx\n",
      workload, shards, r.commits, r.mtxn_per_s, r.sim_seconds, r.cpu_seconds,
      r.device_seconds, r.metrics.twopc_commits, r.metrics.twopc_aborts,
      base_mtps > 0 ? r.mtxn_per_s / base_mtps : 1.0);
}

}  // namespace
}  // namespace falcon

int main(int argc, char** argv) {
  using namespace falcon;
  uint64_t scale = 1;
  if (argc > 1) {
    const auto parsed = ParsePositiveKnob(argv[1], 1000000);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "usage: %s [scale]\n", argv[0]);
      return 2;
    }
    scale = *parsed;
  }
  std::vector<uint32_t> sweep;
  const uint32_t pinned = ShardCountFromEnv(0);
  if (pinned > 0) {
    sweep.push_back(pinned);
  } else {
    sweep = {1, 2, 4};
  }

  const uint64_t ycsb_txns = 320000 * scale;  // total, fixed across the sweep
  const uint64_t tpcc_txns = 128000 * scale;
  double ycsb_base = 0;
  double tpcc_base = 0;
  std::printf("shard scaling, %u sessions per shard, Falcon/OCC\n",
              kSessionsPerShard);
  for (const uint32_t m : sweep) {
    const uint32_t sessions = kSessionsPerShard * m;
    const ShardRunResult ycsb = RunYcsb(m, ycsb_txns);
    if (ycsb_base == 0) {
      ycsb_base = ycsb.mtxn_per_s;
    }
    PrintRow("ycsb", m, ycsb, ycsb_base);
    char label[64];
    std::snprintf(label, sizeof(label), "shard_scale/ycsb_m%u/%ut", m, sessions);
    MaybeAppendMetricsJson(label, ycsb.metrics, {});

    const ShardRunResult tpcc = RunTpcc(m, tpcc_txns);
    if (tpcc_base == 0) {
      tpcc_base = tpcc.mtxn_per_s;
    }
    PrintRow("tpcc", m, tpcc, tpcc_base);
    std::snprintf(label, sizeof(label), "shard_scale/tpcc_m%u/%ut", m, sessions);
    MaybeAppendMetricsJson(label, tpcc.metrics, {});
  }
  return 0;
}
