// Shared setup helpers for the benchmark binaries: engine + loaded workload,
// with scaled-down defaults (see EXPERIMENTS.md for the scaling notes).

#ifndef BENCH_FIXTURES_H_
#define BENCH_FIXTURES_H_

#include <memory>
#include <thread>
#include <vector>

#include "src/workload/bench_runner.h"
#include "src/workload/tpcc.h"
#include "src/workload/ycsb.h"

namespace falcon {

// Per-thread simulated cache for benchmarks: 256KB (256 sets x 16 ways).
// The dataset is scaled down ~1000x from the paper's 256GB, so the cache
// scales too — what matters is the regime: the small log window (48KB) and
// the hot tuple set fit; the cold working set does not.
inline CacheGeometry BenchCacheGeometry() { return CacheGeometry{.sets = 256, .ways = 16}; }

template <typename Config>
inline Config WithBenchCache(Config config) {
  config.cache_geometry = BenchCacheGeometry();
  return config;
}

// Default benchmark scale (paper testbed: 2048 warehouses / 256GB YCSB on
// 768GB Optane; here: laptop-scale, shape-preserving).
// The paper gives every thread its own home warehouse (2048 warehouses for
// 48 threads), so cross-warehouse contention comes only from the standard
// 1%/15% remote accesses. Benchmarks therefore default to one warehouse per
// worker, with per-warehouse content scaled down.
inline TpccConfig BenchTpccConfig(uint32_t warehouses = 48) {
  TpccConfig c;
  c.warehouses = warehouses;
  c.districts_per_warehouse = 10;
  c.customers_per_district = 64;
  c.items = 500;
  c.initial_orders_per_district = 10;
  return c;
}

struct TpccFixture {
  std::unique_ptr<NvmDevice> device;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<TpccWorkload> workload;

  static TpccFixture Create(const EngineConfig& config, uint32_t workers,
                            const TpccConfig& tpcc) {
    TpccFixture f;
    f.device = std::make_unique<NvmDevice>(6ull << 30);
    f.engine = std::make_unique<Engine>(f.device.get(), WithBenchCache(config), workers);
    f.workload = std::make_unique<TpccWorkload>(f.engine.get(), tpcc);
    f.workload->LoadItems(f.engine->worker(0));
    std::vector<std::thread> loaders;
    const uint32_t loader_threads = std::min(workers, tpcc.warehouses);
    const uint32_t per = (tpcc.warehouses + loader_threads - 1) / loader_threads;
    for (uint32_t t = 0; t < loader_threads; ++t) {
      const uint32_t first = 1 + t * per;
      const uint32_t last = std::min(tpcc.warehouses, first + per - 1);
      if (first > last) {
        continue;
      }
      loaders.emplace_back([&f, t, first, last] {
        f.workload->LoadWarehouseSlice(f.engine->worker(t), first, last);
      });
    }
    for (auto& th : loaders) {
      th.join();
    }
    return f;
  }
};

inline YcsbConfig BenchYcsbConfig(char workload, bool zipfian, uint64_t records = 50000) {
  YcsbConfig c;
  c.record_count = records;
  c.field_count = 10;
  c.field_size = 100;  // ~1KB tuples as in §6.1
  c.workload = workload;
  c.zipfian = zipfian;
  return c;
}

struct YcsbFixture {
  std::unique_ptr<NvmDevice> device;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<YcsbWorkload> workload;

  // `scaled_cache` applies the 256KB benchmark cache; Figure 12 instead
  // keeps the full-size per-thread cache because the experiment is exactly
  // about when the log window outgrows it.
  static YcsbFixture Create(const EngineConfig& config, uint32_t workers, const YcsbConfig& yc,
                            uint64_t device_bytes = 4ull << 30, bool scaled_cache = true) {
    YcsbFixture f;
    f.device = std::make_unique<NvmDevice>(device_bytes);
    f.engine = std::make_unique<Engine>(
        f.device.get(), scaled_cache ? WithBenchCache(config) : config, workers);
    f.workload = std::make_unique<YcsbWorkload>(f.engine.get(), yc);
    std::vector<std::thread> loaders;
    const uint64_t per = yc.record_count / workers;
    for (uint32_t t = 0; t < workers; ++t) {
      const uint64_t begin = t * per;
      const uint64_t end = t + 1 == workers ? yc.record_count : begin + per;
      loaders.emplace_back(
          [&f, t, begin, end] { f.workload->LoadRange(f.engine->worker(t), begin, end); });
    }
    for (auto& th : loaders) {
      th.join();
    }
    return f;
  }
};

// The engine lineup of Figures 7-9.
struct EngineEntry {
  const char* label;
  EngineConfig (*make)(CcScheme);
};

inline EngineConfig MakeFalcon(CcScheme cc) { return EngineConfig::Falcon(cc); }
inline EngineConfig MakeFalconDram(CcScheme cc) { return EngineConfig::FalconDramIndex(cc); }
inline EngineConfig MakeFalconAll(CcScheme cc) { return EngineConfig::FalconAllFlush(cc); }
inline EngineConfig MakeFalconNo(CcScheme cc) { return EngineConfig::FalconNoFlush(cc); }
inline EngineConfig MakeInp(CcScheme cc) { return EngineConfig::Inp(cc); }
inline EngineConfig MakeInpNo(CcScheme cc) { return EngineConfig::InpNoFlush(cc); }
inline EngineConfig MakeInpSlw(CcScheme cc) { return EngineConfig::InpSmallLogWindow(cc); }
inline EngineConfig MakeInpHtt(CcScheme cc) { return EngineConfig::InpHotTupleTracking(cc); }
inline EngineConfig MakeOutp(CcScheme cc) { return EngineConfig::Outp(cc); }
inline EngineConfig MakeZenS(CcScheme cc) { return EngineConfig::ZenS(cc); }
inline EngineConfig MakeZenSNo(CcScheme cc) { return EngineConfig::ZenSNoFlush(cc); }

// Figure 7/8/9 lineup (paper order).
inline const std::vector<EngineEntry>& PaperEngines() {
  static const std::vector<EngineEntry> engines = {
      {"Falcon (DRAM Index)", MakeFalconDram}, {"Falcon", MakeFalcon},
      {"Falcon (All Flush)", MakeFalconAll},   {"Falcon (No Flush)", MakeFalconNo},
      {"Inp", MakeInp},                        {"Outp", MakeOutp},
      {"ZenS (No Flush)", MakeZenSNo},         {"ZenS", MakeZenS},
  };
  return engines;
}

}  // namespace falcon

#endif  // BENCH_FIXTURES_H_
