// Figure 3: "Bandwidth for data stores w/wo clwbs."
//
// The paper's microbenchmark: generate a random aligned address, write 64B /
// 128B / 256B, repeat one million times — once with plain stores (cache
// evictions deliver the data to NVM in whatever order the replacement policy
// picks) and once with <store + clwbs> (adjacent lines are flushed together
// so the XPBuffer merges them into full 256B media writes).
//
// Paper result: clwb wins clearly at 256B and 128B because merged full-block
// writes avoid the read-modify-write amplification; at 64B both variants pay
// the partial-block penalty.

#include <cstdio>

#include "src/common/rng.h"
#include "src/sim/thread_context.h"

using namespace falcon;

namespace {

constexpr uint64_t kIterations = 1'000'000;
constexpr size_t kArenaBytes = 1ull << 30;

double RunCase(size_t write_bytes, bool use_clwb) {
  NvmDevice device(kArenaBytes);
  ThreadContext ctx(0, &device);
  Rng rng(12345);
  const uint64_t payload[32] = {};
  const uint64_t blocks = device.capacity() / kNvmBlockSize;

  for (uint64_t i = 0; i < kIterations; ++i) {
    // Random 256B-aligned address (the paper: "a random but aligned
    // address"), then write `write_bytes` contiguously.
    const uint64_t block = rng.NextBounded(blocks);
    std::byte* dst = device.base() + block * kNvmBlockSize;
    ctx.Store(dst, payload, write_bytes);
    if (use_clwb) {
      ctx.Sfence();
      ctx.Clwb(dst, write_bytes);  // one clwb per covered line
    }
  }
  // Let everything still cached reach the media (as the paper's run does by
  // writing far more than the cache holds).
  ctx.cache().WritebackAll();
  device.DrainAll();

  // Application bandwidth: bytes written / max(cpu time, device time).
  const double cpu_s = static_cast<double>(ctx.sim_ns()) / 1e9;
  const double dev_s = static_cast<double>(device.stats().busy_ns) /
                       device.params().device_channels / 1e9;
  const double seconds = cpu_s > dev_s ? cpu_s : dev_s;
  return static_cast<double>(kIterations * write_bytes) / seconds / 1e9;
}

}  // namespace

int main() {
  std::printf("=== Figure 3: bandwidth for data stores w/wo clwbs (simulated) ===\n");
  std::printf("%-8s %18s %22s\n", "size", "store+sfence GB/s", "store+clwb+sfence GB/s");
  for (const size_t bytes : {256u, 128u, 64u}) {
    const double no_clwb = RunCase(bytes, false);
    const double with_clwb = RunCase(bytes, true);
    std::printf("%-8zu %18.2f %22.2f\n", bytes, no_clwb, with_clwb);
  }
  std::printf(
      "\npaper shape: clwb >> store-only at 256B (merged full-block writes), advantage\n"
      "shrinking as the write no longer covers whole 256B media blocks.\n");
  return 0;
}
