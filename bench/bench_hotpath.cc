// Hot-path microbenchmark: HOST-CPU cost of the transaction execution path,
// measured in wall-clock ns/op (not simulated ns — software overhead is real
// time the paper's §6 says becomes the bottleneck once persistence is cheap).
//
// Scenarios:
//   read_only    - 16 point reads per transaction
//   update_heavy - 8 reads + 16 partial updates per transaction; also run at
//                  8 threads (partitioned keys, conflict-free) for aggregate
//                  commits/s
//   new_order    - TPC-C New-Order-shaped: district RMW + 15 x (item read,
//                  stock read, stock partial update, stock re-read) ~ 60
//                  accesses per transaction. This is the quadratic-pressure
//                  scenario for O(n) access-set tracking.
//
// Single-threaded scenarios also report DeviceStats totals so counter
// refactors can be checked for behavioral drift (totals must not change).
//
// Output: human-readable table on stdout + machine-readable JSON
// (BENCH_hotpath.json by default, or argv[1]).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/engine.h"
#include "src/workload/bench_runner.h"

namespace falcon {
namespace {

constexpr uint32_t kThreads = 8;
constexpr uint64_t kKeysPerThread = 4096;
constexpr uint32_t kTupleBytes = 64;
// District rows per worker for batched new_order (see MakeFixture).
constexpr uint64_t kDistrictSlots = 10;

struct ScenarioResult {
  std::string name;
  std::string scheme;
  uint32_t threads = 0;
  uint64_t txns = 0;
  uint64_t ops_per_txn = 0;
  uint64_t aborts = 0;
  double wall_s = 0;
  double ns_per_txn = 0;
  double ns_per_op = 0;
  double commits_per_s = 0;
  bool has_device = false;
  DeviceStats device;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

const char* SchemeName(CcScheme s) {
  switch (BaseScheme(s)) {
    case CcScheme::k2pl:
      return "2pl";
    case CcScheme::kTo:
      return "to";
    case CcScheme::kOcc:
      return "occ";
    default:
      return "?";
  }
}

struct Fixture {
  std::unique_ptr<NvmDevice> device;
  std::unique_ptr<Engine> engine;
  TableId item = kInvalidTable;
  TableId stock = kInvalidTable;
  TableId district = kInvalidTable;
};

Fixture MakeFixture(CcScheme scheme, uint32_t batch_size = 1) {
  Fixture f;
  f.device = std::make_unique<NvmDevice>(1ull << 30);
  EngineConfig config = EngineConfig::Falcon(scheme);
  config.cache_geometry = CacheGeometry{.sets = 256, .ways = 16};
  config.batch_size = batch_size;
  f.engine = std::make_unique<Engine>(f.device.get(), config, kThreads);

  const auto make_table = [&](const char* name) {
    SchemaBuilder schema(name);
    schema.AddU64();
    schema.AddU64();
    schema.AddColumn(kTupleBytes - 16);
    return f.engine->CreateTable(schema, IndexKind::kHash);
  };
  f.item = make_table("item");
  f.stock = make_table("stock");
  f.district = make_table("district");

  std::vector<std::byte> row(kTupleBytes, std::byte{0x5a});
  Worker& loader = f.engine->worker(0);
  for (uint64_t k = 0; k < kThreads * kKeysPerThread; ++k) {
    Txn txn = loader.Begin();
    (void)txn.Insert(f.item, k, row.data());
    (void)txn.Insert(f.stock, k, row.data());
    if (txn.Commit() != Status::kOk) {
      std::fprintf(stderr, "load failed at key %lu\n", static_cast<unsigned long>(k));
      std::exit(1);
    }
  }
  // The serial bodies pin one district row per thread. Batched execution
  // keeps several sibling transactions live per worker, so each worker gets
  // kDistrictSlots rows (picked by transaction index, like TPC-C's 10
  // districts) — otherwise every sibling would collide on the one row and
  // no-wait CC would abort the whole batch.
  const uint64_t district_rows =
      batch_size > 1 ? kThreads * kDistrictSlots : kThreads;
  for (uint64_t d = 0; d < district_rows; ++d) {
    Txn txn = loader.Begin();
    (void)txn.Insert(f.district, d, row.data());
    if (txn.Commit() != Status::kOk) {
      std::exit(1);
    }
  }
  return f;
}

void QuiesceForMeasurement(Fixture& f) {
  for (uint32_t t = 0; t < kThreads; ++t) {
    f.engine->worker(t).ctx().cache().WritebackAll();
    f.engine->worker(t).ResetStats();
  }
  f.device->DrainAll();
  f.device->ResetStats();
}

// One transaction body; returns committed and the access count on success.
using TxnBody = uint64_t (*)(const Fixture&, Worker&, uint32_t, uint64_t, uint64_t*);

uint64_t RunReadOnly(const Fixture& f, Worker& w, uint32_t thread, uint64_t i,
                     uint64_t* aborts) {
  const uint64_t base = thread * kKeysPerThread;
  std::byte buf[kTupleBytes];
  Txn txn = w.Begin();
  for (uint64_t j = 0; j < 16; ++j) {
    const uint64_t key = base + (i * 17 + j * 131) % kKeysPerThread;
    if (txn.Read(f.stock, key, buf) != Status::kOk) {
      txn.Abort();
      ++*aborts;
      return 0;
    }
  }
  if (txn.Commit() != Status::kOk) {
    ++*aborts;
    return 0;
  }
  return 16;
}

uint64_t RunUpdateHeavy(const Fixture& f, Worker& w, uint32_t thread, uint64_t i,
                        uint64_t* aborts) {
  const uint64_t base = thread * kKeysPerThread;
  std::byte buf[kTupleBytes];
  const uint64_t stamp = i;
  Txn txn = w.Begin();
  for (uint64_t j = 0; j < 8; ++j) {
    const uint64_t key = base + (i * 13 + j * 97) % kKeysPerThread;
    if (txn.Read(f.stock, key, buf) != Status::kOk) {
      txn.Abort();
      ++*aborts;
      return 0;
    }
  }
  for (uint64_t j = 0; j < 16; ++j) {
    const uint64_t key = base + (i * 29 + j * 61) % kKeysPerThread;
    const uint32_t offset = static_cast<uint32_t>((j % 7) * 8);
    if (txn.UpdatePartial(f.stock, key, offset, 8, &stamp) != Status::kOk) {
      txn.Abort();
      ++*aborts;
      return 0;
    }
  }
  if (txn.Commit() != Status::kOk) {
    ++*aborts;
    return 0;
  }
  return 24;
}

uint64_t RunNewOrder(const Fixture& f, Worker& w, uint32_t thread, uint64_t i,
                     uint64_t* aborts) {
  const uint64_t base = thread * kKeysPerThread;
  std::byte buf[kTupleBytes];
  const uint64_t stamp = i;
  uint64_t ops = 0;
  Txn txn = w.Begin();
  // District read-modify-write (the contended row in real New-Order; here
  // per-thread so the benchmark measures the software path, not aborts).
  if (txn.Read(f.district, thread, buf) != Status::kOk ||
      txn.UpdatePartial(f.district, thread, 0, 8, &stamp) != Status::kOk) {
    txn.Abort();
    ++*aborts;
    return 0;
  }
  ops += 2;
  for (uint64_t line = 0; line < 15; ++line) {
    const uint64_t key = base + (i * 37 + line * 211) % kKeysPerThread;
    if (txn.Read(f.item, key, buf) != Status::kOk ||
        txn.Read(f.stock, key, buf) != Status::kOk ||
        txn.UpdatePartial(f.stock, key, 8 * (line % 6), 8, &stamp) != Status::kOk ||
        txn.Read(f.stock, key, buf) != Status::kOk) {  // read-own-write overlay
      txn.Abort();
      ++*aborts;
      return 0;
    }
    ops += 4;
  }
  if (txn.Commit() != Status::kOk) {
    ++*aborts;
    return 0;
  }
  return ops;
}

// ---- Batched scenario frames (FALCON_BATCH > 1) -----------------------------
//
// Each frame replays exactly the ops of the serial body above, one access
// per Step(), so Worker::RunBatch can overlap one frame's NVM stalls with
// sibling frames' compute. The serial bodies stay the measured path at
// batch_size == 1 (and the CI device-counter pin runs that path).

class HotFrame : public TxnFrame {
 public:
  HotFrame(const Fixture& f, uint32_t thread) : f_(f), thread_(thread) {}

  void Reset(uint64_t i) {
    i_ = i;
    op_ = 0;
    ops_done_ = 0;
    set_result(0);
  }
  uint64_t ops_done() const { return ops_done_; }

 protected:
  bool FinishAborted() {
    if (has_txn()) {
      txn().Abort();
      EndTxn();
    }
    set_result(~0);
    return true;
  }
  bool FinishCommit(uint64_t ops) {
    const Status s = txn().Commit();
    EndTxn();
    if (s != Status::kOk) {
      set_result(~0);
      return true;
    }
    ops_done_ = ops;
    set_result(0);
    return true;
  }

  const Fixture& f_;
  uint32_t thread_;
  uint64_t i_ = 0;
  uint32_t op_ = 0;
  uint64_t ops_done_ = 0;
  std::byte buf_[kTupleBytes];
};

class ReadOnlyFrame final : public HotFrame {
 public:
  using HotFrame::HotFrame;
  bool Step(Worker& w) override {
    const uint64_t base = thread_ * kKeysPerThread;
    if (op_ == 0) {
      BeginTxn(w);
    }
    if (op_ < 16) {
      const uint64_t key = base + (i_ * 17 + op_ * 131) % kKeysPerThread;
      if (txn().Read(f_.stock, key, buf_) != Status::kOk) {
        return FinishAborted();
      }
      ++op_;
      return false;
    }
    return FinishCommit(16);
  }
};

class UpdateHeavyFrame final : public HotFrame {
 public:
  using HotFrame::HotFrame;
  bool Step(Worker& w) override {
    const uint64_t base = thread_ * kKeysPerThread;
    const uint64_t stamp = i_;
    if (op_ == 0) {
      BeginTxn(w);
    }
    if (op_ < 8) {
      const uint64_t key = base + (i_ * 13 + op_ * 97) % kKeysPerThread;
      if (txn().Read(f_.stock, key, buf_) != Status::kOk) {
        return FinishAborted();
      }
      ++op_;
      return false;
    }
    if (op_ < 24) {
      const uint64_t j = op_ - 8;
      const uint64_t key = base + (i_ * 29 + j * 61) % kKeysPerThread;
      const uint32_t offset = static_cast<uint32_t>((j % 7) * 8);
      if (txn().UpdatePartial(f_.stock, key, offset, 8, &stamp) != Status::kOk) {
        return FinishAborted();
      }
      ++op_;
      return false;
    }
    return FinishCommit(24);
  }
};

class NewOrderHotFrame final : public HotFrame {
 public:
  using HotFrame::HotFrame;
  bool Step(Worker& w) override {
    const uint64_t base = thread_ * kKeysPerThread;
    const uint64_t stamp = i_;
    if (op_ == 0) {
      // Per-transaction district slot: consecutive frame indices map to
      // distinct rows, so in-flight siblings rarely contend (kDistrictSlots
      // is coprime-ish with any sane batch size <= 8 consecutive indices).
      const uint64_t district = thread_ * kDistrictSlots + i_ % kDistrictSlots;
      Txn& txn = BeginTxn(w);
      if (txn.Read(f_.district, district, buf_) != Status::kOk ||
          txn.UpdatePartial(f_.district, district, 0, 8, &stamp) != Status::kOk) {
        return FinishAborted();
      }
      ++op_;
      return false;
    }
    if (op_ <= 15) {
      const uint64_t line = op_ - 1;
      const uint64_t key = base + (i_ * 37 + line * 211) % kKeysPerThread;
      Txn& t = txn();
      if (t.Read(f_.item, key, buf_) != Status::kOk ||
          t.Read(f_.stock, key, buf_) != Status::kOk ||
          t.UpdatePartial(f_.stock, key, 8 * (line % 6), 8, &stamp) != Status::kOk ||
          t.Read(f_.stock, key, buf_) != Status::kOk) {  // read-own-write overlay
        return FinishAborted();
      }
      ++op_;
      return false;
    }
    return FinishCommit(62);
  }
};

template <typename FrameT>
class HotFrameSource final : public FrameSource {
 public:
  HotFrameSource(const Fixture& f, uint32_t thread, uint64_t txns, uint32_t batch,
                 uint64_t* ops, uint64_t* aborts, Histogram* latencies)
      : txns_(txns), ops_(ops), aborts_(aborts), latencies_(latencies) {
    pool_.reserve(batch);
    free_.reserve(batch);
    for (uint32_t k = 0; k < batch; ++k) {
      pool_.push_back(std::make_unique<FrameT>(f, thread));
      free_.push_back(pool_.back().get());
    }
  }

  TxnFrame* Next(Worker&) override {
    if (next_i_ >= txns_ || free_.empty()) {
      return nullptr;
    }
    FrameT* frame = free_.back();
    free_.pop_back();
    frame->Reset(next_i_++);
    return frame;
  }

  void Done(Worker&, TxnFrame* frame, uint64_t begin_ns, uint64_t end_ns) override {
    auto* f = static_cast<FrameT*>(frame);
    if (f->result() >= 0) {
      *ops_ += f->ops_done();
      latencies_->Record(end_ns - begin_ns);
    } else {
      ++*aborts_;
    }
    free_.push_back(f);
  }

 private:
  uint64_t txns_;
  uint64_t next_i_ = 0;
  uint64_t* ops_;
  uint64_t* aborts_;
  Histogram* latencies_;
  std::vector<std::unique_ptr<FrameT>> pool_;
  std::vector<FrameT*> free_;
};

enum class FrameKind { kReadOnly, kUpdateHeavy, kNewOrder };

std::unique_ptr<FrameSource> MakeHotSource(FrameKind kind, const Fixture& f, uint32_t thread,
                                           uint64_t txns, uint32_t batch, uint64_t* ops,
                                           uint64_t* aborts, Histogram* latencies) {
  switch (kind) {
    case FrameKind::kReadOnly:
      return std::make_unique<HotFrameSource<ReadOnlyFrame>>(f, thread, txns, batch, ops,
                                                             aborts, latencies);
    case FrameKind::kUpdateHeavy:
      return std::make_unique<HotFrameSource<UpdateHeavyFrame>>(f, thread, txns, batch, ops,
                                                                aborts, latencies);
    case FrameKind::kNewOrder:
      return std::make_unique<HotFrameSource<NewOrderHotFrame>>(f, thread, txns, batch, ops,
                                                                aborts, latencies);
  }
  return nullptr;
}

ScenarioResult RunScenarioBatched(const char* name, CcScheme scheme, TxnBody body,
                                  FrameKind kind, uint32_t threads, uint64_t txns_per_thread,
                                  uint64_t warmup_per_thread, uint32_t batch) {
  Fixture f = MakeFixture(scheme, batch);

  // Warm up on the serial path (same bodies, same keys).
  uint64_t warm_aborts = 0;
  for (uint64_t i = 0; i < warmup_per_thread; ++i) {
    for (uint32_t t = 0; t < threads; ++t) {
      body(f, f.engine->worker(t), t, i, &warm_aborts);
    }
  }
  QuiesceForMeasurement(f);
  const MetricsSnapshot metrics_before = f.engine->SnapshotMetrics();

  std::vector<uint64_t> ops(threads, 0);
  std::vector<uint64_t> aborts(threads, 0);
  std::vector<Histogram> latencies(threads);
  const auto start = std::chrono::steady_clock::now();
  if (threads == 1) {
    auto source =
        MakeHotSource(kind, f, 0, txns_per_thread, batch, &ops[0], &aborts[0], &latencies[0]);
    f.engine->worker(0).RunBatch(batch, *source);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (uint32_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        auto source = MakeHotSource(kind, f, t, txns_per_thread, batch, &ops[t], &aborts[t],
                                    &latencies[t]);
        f.engine->worker(t).RunBatch(batch, *source);
      });
    }
    for (auto& th : pool) {
      th.join();
    }
  }
  const auto end = std::chrono::steady_clock::now();

  ScenarioResult r;
  r.name = name;
  r.scheme = SchemeName(scheme);
  r.threads = threads;
  r.txns = txns_per_thread * threads;
  r.wall_s = std::chrono::duration<double>(end - start).count();
  uint64_t total_ops = 0;
  for (uint32_t t = 0; t < threads; ++t) {
    total_ops += ops[t];
    r.aborts += aborts[t];
  }
  const uint64_t commits = r.txns - r.aborts;
  r.ops_per_txn = commits == 0 ? 0 : total_ops / std::max<uint64_t>(1, commits);
  r.ns_per_txn = r.txns == 0 ? 0 : r.wall_s * 1e9 / static_cast<double>(r.txns);
  r.ns_per_op = total_ops == 0 ? 0 : r.wall_s * 1e9 / static_cast<double>(total_ops);
  r.commits_per_s = r.wall_s == 0 ? 0 : static_cast<double>(commits) / r.wall_s;
  if (threads == 1) {
    for (uint32_t t = 0; t < kThreads; ++t) {
      f.engine->worker(t).ctx().cache().WritebackAll();
    }
    f.device->DrainAll();
    r.device = f.device->stats();
    r.has_device = true;
    for (uint32_t t = 0; t < kThreads; ++t) {
      const CacheStats& cs = f.engine->worker(t).ctx().cache().stats();
      r.cache_hits += cs.hits;
      r.cache_misses += cs.misses;
    }
  }
  Histogram merged;
  for (uint32_t t = 0; t < threads; ++t) {
    merged.Merge(latencies[t]);
  }
  MaybeAppendMetricsJson(
      BenchLabel("hotpath", std::string(name) + "/" + SchemeName(scheme), threads).c_str(),
      DiffMetrics(metrics_before, f.engine->SnapshotMetrics()),
      {SummarizeHistogram("all", merged)});
  if (f.engine->tracing_enabled()) {
    MaybeDumpPerfetto(f.engine->tracer(), "falcon_trace.json");
  }
  return r;
}

ScenarioResult RunScenario(const char* name, CcScheme scheme, TxnBody body, uint32_t threads,
                           uint64_t txns_per_thread, uint64_t warmup_per_thread) {
  Fixture f = MakeFixture(scheme);

  uint64_t warm_aborts = 0;
  for (uint64_t i = 0; i < warmup_per_thread; ++i) {
    for (uint32_t t = 0; t < threads; ++t) {
      body(f, f.engine->worker(t), t, i, &warm_aborts);
    }
  }
  QuiesceForMeasurement(f);
  const MetricsSnapshot metrics_before = f.engine->SnapshotMetrics();

  std::vector<uint64_t> ops(threads, 0);
  std::vector<uint64_t> aborts(threads, 0);
  std::vector<Histogram> latencies(threads);
  const auto start = std::chrono::steady_clock::now();
  if (threads == 1) {
    Worker& w = f.engine->worker(0);
    for (uint64_t i = 0; i < txns_per_thread; ++i) {
      const uint64_t before = w.ctx().sim_ns();
      const uint64_t done = body(f, w, 0, i, &aborts[0]);
      ops[0] += done;
      if (done != 0) {
        latencies[0].Record(w.ctx().sim_ns() - before);
      }
    }
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (uint32_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        Worker& w = f.engine->worker(t);
        for (uint64_t i = 0; i < txns_per_thread; ++i) {
          const uint64_t before = w.ctx().sim_ns();
          const uint64_t done = body(f, w, t, i, &aborts[t]);
          ops[t] += done;
          if (done != 0) {
            latencies[t].Record(w.ctx().sim_ns() - before);
          }
        }
      });
    }
    for (auto& th : pool) {
      th.join();
    }
  }
  const auto end = std::chrono::steady_clock::now();

  ScenarioResult r;
  r.name = name;
  r.scheme = SchemeName(scheme);
  r.threads = threads;
  r.txns = txns_per_thread * threads;
  r.wall_s = std::chrono::duration<double>(end - start).count();
  uint64_t total_ops = 0;
  for (uint32_t t = 0; t < threads; ++t) {
    total_ops += ops[t];
    r.aborts += aborts[t];
  }
  const uint64_t commits = r.txns - r.aborts;
  r.ops_per_txn = commits == 0 ? 0 : total_ops / std::max<uint64_t>(1, commits);
  r.ns_per_txn = r.txns == 0 ? 0 : r.wall_s * 1e9 / static_cast<double>(r.txns);
  r.ns_per_op = total_ops == 0 ? 0 : r.wall_s * 1e9 / static_cast<double>(total_ops);
  r.commits_per_s = r.wall_s == 0 ? 0 : static_cast<double>(commits) / r.wall_s;
  if (threads == 1) {
    // Deterministic single-threaded run: totals must be stable across
    // refactors of the device counters (no behavioral drift).
    for (uint32_t t = 0; t < kThreads; ++t) {
      f.engine->worker(t).ctx().cache().WritebackAll();
    }
    f.device->DrainAll();
    r.device = f.device->stats();
    r.has_device = true;
    for (uint32_t t = 0; t < kThreads; ++t) {
      const CacheStats& cs = f.engine->worker(t).ctx().cache().stats();
      r.cache_hits += cs.hits;
      r.cache_misses += cs.misses;
    }
  }
  Histogram merged;
  for (uint32_t t = 0; t < threads; ++t) {
    merged.Merge(latencies[t]);
  }
  MaybeAppendMetricsJson(
      BenchLabel("hotpath", std::string(name) + "/" + SchemeName(scheme), threads).c_str(),
      DiffMetrics(metrics_before, f.engine->SnapshotMetrics()),
      {SummarizeHistogram("all", merged)});
  if (f.engine->tracing_enabled()) {
    MaybeDumpPerfetto(f.engine->tracer(), "falcon_trace.json");
  }
  return r;
}

void PrintRow(const ScenarioResult& r) {
  std::printf("%-14s %-4s %2ut  txns=%-8lu ns/txn=%-9.1f ns/op=%-8.1f commits/s=%-12.0f "
              "aborts=%lu\n",
              r.name.c_str(), r.scheme.c_str(), r.threads, static_cast<unsigned long>(r.txns),
              r.ns_per_txn, r.ns_per_op, r.commits_per_s, static_cast<unsigned long>(r.aborts));
  if (r.has_device) {
    std::printf("    device: line_writes=%lu media_writes=%lu media_reads=%lu "
                "cache_hits=%lu cache_misses=%lu\n",
                static_cast<unsigned long>(r.device.line_writes),
                static_cast<unsigned long>(r.device.media_writes),
                static_cast<unsigned long>(r.device.media_reads),
                static_cast<unsigned long>(r.cache_hits),
                static_cast<unsigned long>(r.cache_misses));
  }
}

// Returns false when the file could not be opened or fully written (e.g. a
// full disk), so main() can exit nonzero instead of reporting success.
bool WriteJson(const char* path, const std::vector<ScenarioResult>& results) {
  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return false;
  }
  std::fprintf(out, "{\n  \"bench\": \"hotpath\",\n  \"unit\": \"wall_clock\",\n");
  std::fprintf(out, "  \"scenarios\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"scheme\": \"%s\", \"threads\": %u, \"txns\": %lu, "
                 "\"ops_per_txn\": %lu, \"aborts\": %lu, \"ns_per_txn\": %.1f, "
                 "\"ns_per_op\": %.1f, \"commits_per_s\": %.0f",
                 r.name.c_str(), r.scheme.c_str(), r.threads, static_cast<unsigned long>(r.txns),
                 static_cast<unsigned long>(r.ops_per_txn), static_cast<unsigned long>(r.aborts),
                 r.ns_per_txn, r.ns_per_op, r.commits_per_s);
    if (r.has_device) {
      std::fprintf(out,
                   ", \"device\": {\"line_writes\": %lu, \"media_writes\": %lu, "
                   "\"media_reads\": %lu}",
                   static_cast<unsigned long>(r.device.line_writes),
                   static_cast<unsigned long>(r.device.media_writes),
                   static_cast<unsigned long>(r.device.media_reads));
    }
    std::fprintf(out, "}%s\n", i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  const bool had_error = std::ferror(out) != 0;
  const bool close_ok = std::fclose(out) == 0;
  if (had_error || !close_ok) {
    std::fprintf(stderr, "write failed for %s\n", path);
    return false;
  }
  std::printf("wrote %s\n", path);
  return true;
}

}  // namespace
}  // namespace falcon

int main(int argc, char** argv) {
  using namespace falcon;
  const char* json_path = argc > 1 ? argv[1] : "BENCH_hotpath.json";
  uint64_t scale = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  if (scale == 0) {
    scale = 1;
  }

  const uint32_t batch = BatchSizeFromEnv();
  std::vector<ScenarioResult> results;
  if (batch <= 1) {
    results.push_back(
        RunScenario("read_only", CcScheme::kOcc, RunReadOnly, 1, 60000 * scale, 5000));
    results.push_back(
        RunScenario("update_heavy", CcScheme::kOcc, RunUpdateHeavy, 1, 40000 * scale, 4000));
    results.push_back(RunScenario("update_heavy", CcScheme::kOcc, RunUpdateHeavy, kThreads,
                                  20000 * scale, 2000));
    results.push_back(
        RunScenario("new_order", CcScheme::kOcc, RunNewOrder, 1, 20000 * scale, 2000));
    results.push_back(
        RunScenario("new_order", CcScheme::k2pl, RunNewOrder, 1, 20000 * scale, 2000));
    results.push_back(
        RunScenario("new_order", CcScheme::kTo, RunNewOrder, 1, 20000 * scale, 2000));
  } else {
    std::printf("FALCON_BATCH=%u: batched execution path (frames via Worker::RunBatch)\n",
                batch);
    results.push_back(RunScenarioBatched("read_only", CcScheme::kOcc, RunReadOnly,
                                         FrameKind::kReadOnly, 1, 60000 * scale, 5000, batch));
    results.push_back(RunScenarioBatched("update_heavy", CcScheme::kOcc, RunUpdateHeavy,
                                         FrameKind::kUpdateHeavy, 1, 40000 * scale, 4000,
                                         batch));
    results.push_back(RunScenarioBatched("update_heavy", CcScheme::kOcc, RunUpdateHeavy,
                                         FrameKind::kUpdateHeavy, kThreads, 20000 * scale,
                                         2000, batch));
    results.push_back(RunScenarioBatched("new_order", CcScheme::kOcc, RunNewOrder,
                                         FrameKind::kNewOrder, 1, 20000 * scale, 2000, batch));
    results.push_back(RunScenarioBatched("new_order", CcScheme::k2pl, RunNewOrder,
                                         FrameKind::kNewOrder, 1, 20000 * scale, 2000, batch));
    results.push_back(RunScenarioBatched("new_order", CcScheme::kTo, RunNewOrder,
                                         FrameKind::kNewOrder, 1, 20000 * scale, 2000, batch));
  }

  for (const ScenarioResult& r : results) {
    PrintRow(r);
  }
  return WriteJson(json_path, results) ? 0 : 1;
}
