// Ablations for the design knobs the paper calls out:
//
//  1. XPBuffer size (§5.5 ②: "Enlarging the XPBuffer size can also alleviate
//     this problem because the memory module has more space to merge cache
//     lines") — un-flushed eviction traffic vs buffer capacity.
//  2. Small-log-window slot count (§4.3: "2~3 transactions") — why not more:
//     a bigger window stops fitting in cache and starts leaking NVM writes.
//  3. Hot-tuple-set capacity (D2) — Zipfian media writes vs LRU size.

#include <cstdio>
#include <string>

#include "bench/fixtures.h"

using namespace falcon;

namespace {

// 1 — XPBuffer capacity vs write amplification of uncontrolled evictions.
void XpBufferAblation() {
  std::printf("--- XPBuffer size vs eviction write amplification ---\n");
  std::printf("%-14s %14s %12s\n", "buffer blocks", "amplification", "full drains%");
  for (const uint32_t blocks : {16u, 64u, 384u, 1536u, 6144u}) {
    NvmDevice device(1ull << 30, CostParams{}, blocks);
    ThreadContext ctx(0, &device, CacheGeometry{.sets = 256, .ways = 16});
    Rng rng(1);
    // Write whole 256B blocks at random addresses through the cache and let
    // evictions deliver them (no clwb).
    const uint64_t payload[32] = {};
    for (int i = 0; i < 200000; ++i) {
      const uint64_t block = rng.NextBounded(device.capacity() / kNvmBlockSize);
      ctx.Store(device.base() + block * kNvmBlockSize, payload, kNvmBlockSize);
    }
    ctx.cache().WritebackAll();
    device.DrainAll();
    const DeviceStats s = device.stats();
    std::printf("%-14u %14.2f %11.1f%%\n", blocks, s.WriteAmplification(),
                100.0 * static_cast<double>(s.full_drains) /
                    static_cast<double>(s.full_drains + s.partial_drains));
  }
}

// 2 — log window slot count: beyond a few slots the window outgrows the
// cache and logging starts writing to NVM again.
void WindowSlotsAblation() {
  std::printf("\n--- small-log-window slots vs logging NVM writes (YCSB-A) ---\n");
  std::printf("%-8s %12s %16s\n", "slots", "MTxn/s", "media wr/txn");
  for (const uint32_t slots : {2u, 3u, 8u, 32u, 128u}) {
    EngineConfig config = EngineConfig::Falcon(CcScheme::kOcc);
    config.log_window_slots = slots;
    YcsbFixture f = YcsbFixture::Create(config, 8, BenchYcsbConfig('A', false, 20000));
    std::vector<YcsbThreadState> states;
    for (uint32_t t = 0; t < 8; ++t) {
      states.emplace_back(f.workload->config(), t, 8, 10 + t);
    }
    const BenchResult r = RunBench(*f.engine, 8, 2000,
                                   [&](Worker& worker, uint32_t t, uint64_t) {
                                     return f.workload->RunOne(worker, states[t]);
                                   });
    std::printf("%-8u %12.3f %16.2f\n", slots, r.mtxn_per_s,
                static_cast<double>(r.device.media_writes) /
                    static_cast<double>(std::max<uint64_t>(1, r.commits)));
    MaybeAppendMetricsJson(
        BenchLabel("ablation", "log_slots_" + std::to_string(slots), 8).c_str(),
        r.metrics, r.latency);
  }
}

// 3 — hot tuple capacity under Zipfian: too small misses the hot set, too
// large defers cold tuples whose eviction amplifies.
void HotCapacityAblation() {
  std::printf("\n--- hot-tuple LRU capacity vs Zipfian media writes ---\n");
  std::printf("%-10s %12s %16s\n", "capacity", "MTxn/s", "media wr/txn");
  for (const size_t capacity : {0ul, 16ul, 64ul, 256ul, 2048ul}) {
    EngineConfig config = EngineConfig::Falcon(CcScheme::kOcc);
    config.hot_tuple_capacity = capacity == 0 ? 1 : capacity;  // ~0 = AllFlush-like
    if (capacity == 0) {
      config.flush_policy = FlushPolicy::kAll;
    }
    YcsbFixture f = YcsbFixture::Create(config, 8, BenchYcsbConfig('A', true, 20000));
    std::vector<YcsbThreadState> states;
    for (uint32_t t = 0; t < 8; ++t) {
      states.emplace_back(f.workload->config(), t, 8, 20 + t);
    }
    const BenchResult r = RunBench(*f.engine, 8, 2000,
                                   [&](Worker& worker, uint32_t t, uint64_t) {
                                     return f.workload->RunOne(worker, states[t]);
                                   });
    std::printf("%-10zu %12.3f %16.2f\n", capacity, r.mtxn_per_s,
                static_cast<double>(r.device.media_writes) /
                    static_cast<double>(std::max<uint64_t>(1, r.commits)));
    MaybeAppendMetricsJson(
        BenchLabel("ablation", "hot_capacity_" + std::to_string(capacity), 8).c_str(),
        r.metrics, r.latency);
  }
}

}  // namespace

int main() {
  std::printf("=== Ablations for §4.3 / §4.4 / §5.5 design knobs ===\n");
  XpBufferAblation();
  WindowSlotsAblation();
  HotCapacityAblation();
  return 0;
}
