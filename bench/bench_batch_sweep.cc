// Batch-size sweep: intra-worker batched execution on read-heavy YCSB.
//
// One worker runs the same transaction stream at batch sizes {1,2,4,8,16}.
// batch=1 uses the serial driver (the baseline semantics); batch>1 drives
// YcsbFrameSource through Worker::RunBatch, where a frame's NVM-miss and
// fence stalls are overlapped by sibling frames' compute on the
// overlap-aware BatchClock. With the default cost model (nvm_miss_ns=300 vs
// ~2ns cache hits), read-heavy YCSB is stall-dominated, so the sweep shows
// throughput climbing with batch size until the stall budget is fully
// hidden — the hidden-stall-ns column accounts for exactly the gain.
//
// Usage: bench_batch_sweep [txns=40000] [workload=B] [zipfian=0]
// Set FALCON_METRICS_JSON to append one metrics record per batch point.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/fixtures.h"

using namespace falcon;

int main(int argc, char** argv) {
  const uint64_t txns = argc > 1 ? static_cast<uint64_t>(std::atoll(argv[1])) : 40000;
  const char workload = argc > 2 ? argv[2][0] : 'B';
  const bool zipfian = argc > 3 && std::atoi(argv[3]) != 0;
  const uint32_t kBatches[] = {1, 2, 4, 8, 16};

  std::printf("=== Batch sweep: YCSB-%c %s, 1 worker, Falcon/OCC, nvm_miss_ns=%u ===\n",
              workload, zipfian ? "Zipfian(0.99)" : "Uniform",
              static_cast<unsigned>(CostParams{}.nvm_miss_ns));
  std::printf("%-6s %10s %9s %8s %14s %14s %11s\n", "batch", "MTxn/s", "speedup",
              "abort%", "hidden_stall_s", "idle_stall_s", "occupancy");

  double base_mtxn = 0;
  for (const uint32_t batch : kBatches) {
    EngineConfig config = EngineConfig::Falcon(CcScheme::kOcc);
    config.batch_size = batch;
    YcsbFixture f =
        YcsbFixture::Create(config, 1, BenchYcsbConfig(workload, zipfian));
    YcsbThreadState state(f.workload->config(), 0, 1, 31);

    BenchResult result;
    if (batch <= 1) {
      result = RunBench(*f.engine, 1, txns, [&](Worker& worker, uint32_t, uint64_t) {
        return f.workload->RunOne(worker, state);
      });
    } else {
      result = RunBenchBatched(*f.engine, 1, batch,
                               [&](Worker&, uint32_t) -> std::unique_ptr<FrameSource> {
                                 return std::make_unique<YcsbFrameSource>(
                                     f.workload.get(), &state, txns, batch);
                               });
    }

    if (batch == 1) {
      base_mtxn = result.mtxn_per_s;
    }
    const MetricsSnapshot& m = result.metrics;
    const double occupancy =
        m.batch_inflight_ns > 0 && m.batch_hidden_stall_ns + m.batch_idle_ns +
                                           m.batch_stall_ns + m.batch_inflight_ns >
                                       0
            ? static_cast<double>(m.batch_inflight_ns) /
                  std::max<double>(1.0, result.sim_seconds * 1e9)
            : 1.0;
    std::printf("%-6u %10.3f %8.2fx %8.2f %14.4f %14.4f %11.2f\n", batch,
                result.mtxn_per_s,
                base_mtxn > 0 ? result.mtxn_per_s / base_mtxn : 1.0,
                result.AbortRate() * 100,
                static_cast<double>(m.batch_hidden_stall_ns) / 1e9,
                static_cast<double>(m.batch_idle_ns) / 1e9, occupancy);
    std::fflush(stdout);

    const std::string config_label = std::string(1, workload) + "/" +
                                     (zipfian ? "zipf" : "uniform") + "/batch" +
                                     std::to_string(batch);
    MaybeAppendMetricsJson(BenchLabel("batch_sweep", config_label, 1).c_str(),
                           result.metrics, result.latency);
  }

  std::printf("\nexpected shape: speedup rises with batch size while hidden_stall_s\n"
              "absorbs the serial stall budget; it saturates once per-frame compute\n"
              "plus unhidden device time dominates (device busy time is never\n"
              "discounted by the overlap).\n");
  return 0;
}
