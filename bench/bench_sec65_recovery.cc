// §6.5 "Recovery": crash mid-commit, reopen, and time recovery — Falcon
// (catalog + instant NVM-index recovery + log-window replay; heap-size
// independent) vs ZenS (full heap scan to rebuild the DRAM index; time
// proportional to data size).
//
// Paper result: Falcon 3.276 ms total (1.272 catalog + 1.057 index + 0.97
// replay) on 256GB; ZenS 9.4 s. Here the absolute numbers shrink with the
// scaled-down heap; the scaling behavior is the reproduced result.

#include <cstdio>
#include <string>

#include "bench/fixtures.h"

using namespace falcon;

namespace {

RecoveryReport CrashAndMeasure(const EngineConfig& config, uint64_t rows) {
  NvmDevice device(8ull << 30);
  YcsbConfig yc;
  yc.record_count = rows;
  yc.field_count = 10;
  yc.field_size = 100;

  {
    Engine engine(&device, config, 4);
    YcsbWorkload workload(&engine, yc);
    std::vector<std::thread> loaders;
    for (uint32_t t = 0; t < 4; ++t) {
      const uint64_t per = rows / 4;
      const uint64_t begin = t * per;
      const uint64_t end = t == 3 ? rows : begin + per;
      loaders.emplace_back(
          [&, t, begin, end] { workload.LoadRange(engine.worker(t), begin, end); });
    }
    for (auto& th : loaders) {
      th.join();
    }
    // A little churn, then a crash in the middle of a commit (SIGKILL-style,
    // as in the paper's methodology).
    Worker& w = engine.worker(0);
    YcsbThreadState state(yc, 0, 1, 99);
    for (int i = 0; i < 200; ++i) {
      workload.RunOne(w, state);
    }
    engine.ArmCrashPoint(CrashPoint::kMidApply);
    try {
      std::vector<std::byte> row(engine.TupleDataSize(workload.table()), std::byte{1});
      Txn txn = w.Begin();
      txn.UpdateFull(workload.table(), 1, row.data());
      txn.UpdateFull(workload.table(), 2, row.data());
      txn.Commit();
    } catch (const TxnCrashed&) {
    }
  }

  Engine recovered(&device, config, 4);
  // Cumulative snapshot right after reopen: the device-region traffic here is
  // exactly the recovery work (catalog/index/log-window reads).
  MaybeAppendMetricsJson(
      BenchLabel("sec65", config.name + "/" + std::to_string(rows), 4).c_str(),
      recovered.SnapshotMetrics());
  return recovered.recovery_report();
}

// Recovery latency as a function of the write-set bytes outstanding at the
// crash. Arm kAfterCommitMark: the slot is COMMITTED but no tuple has been
// modified yet, so replay must re-apply the entire write set. Falcon's claim
// is that replay scales with the log window, not the heap — this curve is the
// log-window half of that statement.
struct ReplayPoint {
  uint64_t outstanding_bytes = 0;
  RecoveryReport report;
};

ReplayPoint CrashWithOutstandingWrites(const EngineConfig& base, uint64_t rows, uint32_t ops) {
  EngineConfig config = base;
  config.log_slot_bytes = 256 * 1024;  // a 64-op write set must fit one slot
  NvmDevice device(8ull << 30);
  YcsbConfig yc;
  yc.record_count = rows;
  yc.field_count = 10;
  yc.field_size = 100;

  ReplayPoint point;
  {
    Engine engine(&device, config, 4);
    YcsbWorkload workload(&engine, yc);
    std::vector<std::thread> loaders;
    for (uint32_t t = 0; t < 4; ++t) {
      const uint64_t per = rows / 4;
      const uint64_t begin = t * per;
      const uint64_t end = t == 3 ? rows : begin + per;
      loaders.emplace_back(
          [&, t, begin, end] { workload.LoadRange(engine.worker(t), begin, end); });
    }
    for (auto& th : loaders) {
      th.join();
    }
    Worker& w = engine.worker(0);
    const uint64_t row_bytes = engine.TupleDataSize(workload.table());
    std::vector<std::byte> row(row_bytes, std::byte{2});
    engine.ArmCrashPoint(CrashPoint::kAfterCommitMark);
    try {
      Txn txn = w.Begin();
      for (uint32_t i = 0; i < ops; ++i) {
        txn.UpdateFull(workload.table(), 1 + i, row.data());
      }
      txn.Commit();
    } catch (const TxnCrashed&) {
    }
    point.outstanding_bytes = static_cast<uint64_t>(ops) * row_bytes;
  }

  Engine recovered(&device, config, 4);
  point.report = recovered.recovery_report();
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const int scale = argc > 1 ? std::atoi(argv[1]) : 1;
  std::printf("=== Section 6.5: recovery time after a mid-commit crash (wall clock) ===\n");
  std::printf("%-10s %-8s %10s %10s %10s %10s %10s %12s\n", "engine", "rows", "total ms",
              "catalog", "index", "replay", "rebuild", "heap scanned");
  for (const uint64_t rows : {25000ull * scale, 50000ull * scale, 100000ull * scale}) {
    for (const bool zens : {false, true}) {
      const EngineConfig config =
          zens ? EngineConfig::ZenS(CcScheme::kOcc) : EngineConfig::Falcon(CcScheme::kOcc);
      const RecoveryReport r = CrashAndMeasure(config, rows);
      std::printf("%-10s %-8lu %10.3f %10.3f %10.3f %10.3f %10.3f %12lu\n",
                  zens ? "ZenS" : "Falcon", rows, r.total_ms, r.catalog_ms, r.index_ms,
                  r.replay_ms, r.rebuild_ms, r.tuples_scanned);
      std::fflush(stdout);
    }
  }
  std::printf(
      "\npaper shape: Falcon's recovery is flat in heap size (log-window replay only);\n"
      "ZenS's grows linearly with the heap (index rebuild scan). Paper: 3.3ms vs 9.4s\n"
      "at 256GB.\n");

  std::printf(
      "\n=== Recovery latency vs outstanding write-set bytes (crash after commit mark) ===\n");
  std::printf("%-10s %-6s %14s %10s %10s %8s %10s\n", "engine", "ops", "outstanding B",
              "replay ms", "total ms", "slots", "discarded");
  const uint64_t curve_rows = 25000ull * scale;
  for (const uint32_t ops : {1u, 4u, 16u, 64u}) {
    const ReplayPoint p = CrashWithOutstandingWrites(
        EngineConfig::Falcon(CcScheme::kOcc), curve_rows, ops);
    std::printf("%-10s %-6u %14lu %10.3f %10.3f %8lu %10lu\n", "Falcon", ops,
                p.outstanding_bytes, p.report.replay_ms, p.report.total_ms,
                p.report.slots_replayed, p.report.slots_discarded);
    std::fflush(stdout);
  }
  std::printf(
      "\npaper shape: replay grows with the bytes outstanding in the log window and with\n"
      "nothing else — the reason bounding the window bounds recovery.\n");
  return 0;
}
