// Figure 9: "YCSB-A..F throughput (48 threads, Uniform and Zipfian 0.99)" —
// all engines, OCC, full-tuple (10-field) updates.
//
// Paper shape (§6.2.3):
//   * Falcon / Falcon(All Flush) 1.7-2x over Inp under Uniform A/F (small
//     log window removes logging writes);
//   * under Zipfian, Falcon adds hot-tuple tracking: ~3.1x over Inp and
//     ~1.75x over Falcon(All Flush);
//   * flushes help under Uniform (+40% for Falcon/AllFlush/ZenS vs their
//     No-Flush variants) but hurt hot tuples under Zipfian;
//   * ZenS up to 1.24x over Outp; ZenS drops under Zipfian F (copy-on-write
//     of contended tuples).

#include <cstdio>
#include <cstring>

#include "bench/fixtures.h"

using namespace falcon;

int main(int argc, char** argv) {
  const uint32_t threads = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 48;
  const uint64_t txns_per_thread = argc > 2 ? static_cast<uint64_t>(std::atoi(argv[2])) : 250;
  const char* workloads = argc > 3 ? argv[3] : "ABCDEF";

  std::printf("=== Figure 9: YCSB throughput, %u threads, OCC (MTxn/s, simulated) ===\n",
              threads);
  for (const char* wl = workloads; *wl != '\0'; ++wl) {
    for (const bool zipf : {false, true}) {
      std::printf("\nYCSB-%c %s\n", *wl, zipf ? "Zipfian(0.99)" : "Uniform");
      std::printf("%-22s %10s %10s %14s\n", "engine", "MTxn/s", "abort%", "media wr/txn");
      for (const EngineEntry& entry : PaperEngines()) {
        YcsbFixture f = YcsbFixture::Create(entry.make(CcScheme::kOcc), threads,
                                            BenchYcsbConfig(*wl, zipf));
        std::vector<YcsbThreadState> states;
        for (uint32_t t = 0; t < threads; ++t) {
          states.emplace_back(f.workload->config(), t, threads, 31 + t);
        }
        const BenchResult result = RunBench(*f.engine, threads, txns_per_thread,
                                            [&](Worker& worker, uint32_t t, uint64_t) {
                                              return f.workload->RunOne(worker, states[t]);
                                            });
        std::printf("%-22s %10.3f %10.1f %14.2f\n", entry.label, result.mtxn_per_s,
                    result.AbortRate() * 100,
                    static_cast<double>(result.device.media_writes) /
                        static_cast<double>(std::max<uint64_t>(1, result.commits)));
        std::fflush(stdout);
        const std::string config = std::string(1, *wl) + "/" +
                                   (zipf ? "zipf" : "uniform") + "/" + entry.label;
        MaybeAppendMetricsJson(BenchLabel("fig09", config, threads).c_str(),
                               result.metrics, result.latency);
      }
    }
  }
  std::printf("\npaper reference (48 threads, MTxn/s): A/F Uniform: Falcon ~8-10, Inp ~4-5,\n"
              "Outp ~5-6, ZenS ~6-7; A/F Zipfian: Falcon ~14-18, Inp ~4-5, ZenS drops on F.\n");
  return 0;
}
