// Figure 7: "TPC-C throughput. (48 threads)" — all eight engines under
// 2PL, TO, OCC, MV2PL, MVTO, and MVOCC.
//
// Paper shape to reproduce (§6.2.2):
//   * Falcon > Falcon(All Flush) > Inp  (small log window + selective flush
//     add 10-14% over Inp)
//   * Falcon ~ Falcon(No Flush) on TPC-C (hinted flush matters little here)
//   * Falcon(DRAM Index) ~19-22% over Falcon
//   * ZenS 23-39% over Outp; ZenS > ZenS(No Flush)
//   * In-place beats out-of-place (partial-column updates amplify
//     out-of-place copies)
//   * Engines perform similarly across CC schemes; MV costs ZenS ~10%.

#include <cstdio>

#include "bench/fixtures.h"

using namespace falcon;

int main(int argc, char** argv) {
  const uint32_t threads = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 48;
  const uint64_t txns_per_thread = argc > 2 ? static_cast<uint64_t>(std::atoi(argv[2])) : 400;

  std::printf("=== Figure 7: TPC-C throughput, %u threads (MTxn/s, simulated) ===\n", threads);
  std::printf("%-22s", "engine");
  const CcScheme schemes[] = {CcScheme::k2pl,   CcScheme::kTo,   CcScheme::kOcc,
                              CcScheme::kMv2pl, CcScheme::kMvTo, CcScheme::kMvOcc};
  for (const CcScheme cc : schemes) {
    std::printf(" %8s", std::string(CcSchemeName(cc)).c_str());
  }
  std::printf("\n");

  for (const EngineEntry& entry : PaperEngines()) {
    std::printf("%-22s", entry.label);
    std::fflush(stdout);
    for (const CcScheme cc : schemes) {
      TpccFixture f = TpccFixture::Create(entry.make(cc), threads, BenchTpccConfig(threads));
      std::vector<Rng> rngs;
      for (uint32_t t = 0; t < threads; ++t) {
        rngs.emplace_back(900 + t);
      }
      const BenchResult result =
          RunBenchTyped(*f.engine, threads, txns_per_thread, TpccTxnNames(),
                        [&](Worker& worker, uint32_t t, uint64_t) {
                          bool committed = false;
                          const TpccTxnType type = f.workload->RunOne(worker, rngs[t], &committed);
                          return committed ? static_cast<int>(type) : ~static_cast<int>(type);
                        });
      std::printf(" %8.3f", result.mtxn_per_s);
      std::fflush(stdout);
      const std::string label = BenchLabel(
          "fig07", std::string(entry.label) + "/" + std::string(CcSchemeName(cc)), threads);
      MaybeAppendMetricsJson(label.c_str(), result.metrics, result.latency);
    }
    std::printf("\n");
  }
  std::printf("\npaper reference (48 threads, MTxn/s): Falcon ~0.65-0.75, Inp ~0.55-0.6,\n"
              "ZenS ~0.5-0.55, Outp ~0.4; ordering is the reproduced result.\n");
  return 0;
}
