// Figure 8: "TPC-C Latency. (48 threads, OCC)" — average and 95th-percentile
// simulated latency of NewOrder and Payment transactions for every engine.
//
// Paper shape: Falcon cuts latency 13-19% vs Inp; DRAM index cuts another
// 9-40%; ZenS beats Outp; removing flushes from ZenS *increases* latency.

#include <cstdio>

#include "bench/fixtures.h"
#include "src/common/histogram.h"

using namespace falcon;

int main(int argc, char** argv) {
  const uint32_t threads = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 48;
  const uint64_t txns_per_thread = argc > 2 ? static_cast<uint64_t>(std::atoi(argv[2])) : 400;

  std::printf("=== Figure 8: TPC-C latency, %u threads, OCC (simulated us) ===\n", threads);
  std::printf("%-22s %12s %12s %12s %12s\n", "engine", "NewOrder avg", "NewOrder p95",
              "Payment avg", "Payment p95");

  for (const EngineEntry& entry : PaperEngines()) {
    TpccFixture f = TpccFixture::Create(entry.make(CcScheme::kOcc), threads, BenchTpccConfig(threads));
    std::vector<Rng> rngs;
    std::vector<std::array<Histogram, 5>> latencies(threads);
    for (uint32_t t = 0; t < threads; ++t) {
      rngs.emplace_back(4200 + t);
    }
    const BenchResult result =
        RunBenchTyped(*f.engine, threads, txns_per_thread, TpccTxnNames(),
                      [&](Worker& worker, uint32_t t, uint64_t) {
                        const uint64_t before = worker.ctx().sim_ns();
                        bool committed = false;
                        const TpccTxnType type = f.workload->RunOne(worker, rngs[t], &committed);
                        if (!committed) {
                          return ~static_cast<int>(type);
                        }
                        latencies[t][type].Record(worker.ctx().sim_ns() - before);
                        return static_cast<int>(type);
                      });
    MaybeAppendMetricsJson(BenchLabel("fig08", entry.label, threads).c_str(),
                           result.metrics, result.latency);

    Histogram new_order;
    Histogram payment;
    for (uint32_t t = 0; t < threads; ++t) {
      new_order.Merge(latencies[t][kNewOrder]);
      payment.Merge(latencies[t][kPayment]);
    }
    std::printf("%-22s %12.1f %12.1f %12.1f %12.1f\n", entry.label,
                new_order.Mean() / 1000.0,
                static_cast<double>(new_order.Percentile(95)) / 1000.0,
                payment.Mean() / 1000.0,
                static_cast<double>(payment.Percentile(95)) / 1000.0);
    std::fflush(stdout);
  }
  std::printf("\npaper reference (us): NewOrder avg ~60-110, p95 ~100-190; Payment lower;\n"
              "Falcon < Inp, Falcon(DRAM Index) lowest of the Falcon family.\n");
  return 0;
}
