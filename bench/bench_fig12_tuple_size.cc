// Figure 12: "YCSB-A throughput with different tuple size (16 and 48
// threads, Uniform)" — Falcon vs Inp vs Outp as tuples grow from 64KB to
// 1MB.
//
// Paper shape (§6.4):
//   * the small-log-window advantage fades as the redo log outgrows the
//     cache (~512KB tuples): Falcon converges to Inp;
//   * out-of-place wins at large tuple sizes (log-free full-tuple writes);
//   * 16 threads beat 48 at large sizes — many concurrent writers thrash
//     the XPBuffer, breaking write combining.

#include <cstdio>
#include <string>
#include <utility>

#include "bench/fixtures.h"

using namespace falcon;

namespace {

struct SizePoint {
  uint32_t field_size;  // x16 fields
  uint64_t txns_per_thread;
};

BenchResult RunPoint(const EngineConfig& base, uint32_t threads, uint32_t tuple_kb,
                     uint64_t txns_per_thread) {
  EngineConfig config = base;
  // One full-tuple redo entry must fit a log slot (§5.5 limitation — this is
  // exactly the effect the figure demonstrates: larger slots no longer fit
  // the cache).
  config.log_slot_bytes = static_cast<uint64_t>(tuple_kb) * 1024 + 4096;
  config.log_window_slots = 2;  // paper §4.3: "a small number (2~3)"; 2 for big tuples

  YcsbConfig yc;
  yc.record_count = 64;
  yc.field_count = 16;
  yc.field_size = tuple_kb * 1024 / 16;
  yc.workload = 'A';
  yc.zipfian = false;

  YcsbFixture f = YcsbFixture::Create(config, threads, yc, /*device_bytes=*/10ull << 30,
                                      /*scaled_cache=*/false);
  std::vector<YcsbThreadState> states;
  for (uint32_t t = 0; t < threads; ++t) {
    states.emplace_back(f.workload->config(), t, threads, 555 + t);
  }
  return RunBench(*f.engine, threads, txns_per_thread,
                  [&](Worker& worker, uint32_t t, uint64_t) {
                    return f.workload->RunOne(worker, states[t]);
                  });
}

}  // namespace

int main() {
  const SizePoint sizes[] = {{64, 100}, {128, 50}, {256, 25}, {512, 14}, {1024, 8}};
  std::printf("=== Figure 12: YCSB-A Uniform throughput vs tuple size (KTxn/s) ===\n");
  std::printf("%-10s", "tuple");
  for (const char* engine : {"Falcon", "Inp", "Outp"}) {
    std::printf(" %10s-16 %10s-48", engine, engine);
  }
  std::printf("\n");

  for (const SizePoint& point : sizes) {
    std::printf("%6uKB  ", point.field_size);
    std::fflush(stdout);
    const std::pair<const char*, EngineConfig (*)(CcScheme)> engines[] = {
        {"Falcon", MakeFalcon}, {"Inp", MakeInp}, {"Outp", MakeOutp}};
    for (const auto& [name, make] : engines) {
      for (const uint32_t threads : {16u, 48u}) {
        const BenchResult r = RunPoint(make(CcScheme::kOcc), threads, point.field_size,
                                       point.txns_per_thread);
        std::printf(" %13.1f", r.mtxn_per_s * 1000.0);
        std::fflush(stdout);
        const std::string config =
            std::string(name) + "/" + std::to_string(point.field_size) + "KB";
        MaybeAppendMetricsJson(BenchLabel("fig12", config, threads).c_str(),
                               r.metrics, r.latency);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper shape: Falcon's edge over Inp shrinks with tuple size and vanishes near\n"
      "512KB; Outp overtakes at large sizes; 16 threads > 48 threads for large tuples\n"
      "(XPBuffer thrashing).\n");
  return 0;
}
