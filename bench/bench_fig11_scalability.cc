// Figures 10 + 11: the ablation lineup (Inp -> Inp(No Flush) / Inp(Small Log
// Window) / Inp(Hot Tuple Tracking) -> Falcon) scaled from 8 to 48 threads
// on TPC-C, YCSB-A Uniform, and YCSB-A Zipfian.
//
// Paper shape (§6.3):
//   (a) TPC-C: Inp > Inp(No Flush); Inp(HTT) > Inp (one hot Warehouse
//       tuple); Inp(SLW) > Inp(HTT); Falcon best.
//   (b) YCSB-A Uniform: no hot tuples -> Inp ~ Inp(HTT), Inp(SLW) ~ Falcon.
//   (c) YCSB-A Zipfian: Falcon 2.4x over Inp(HTT) at 48 threads.

#include <cstdio>
#include <cstring>

#include "bench/fixtures.h"

using namespace falcon;

namespace {

const std::vector<EngineEntry>& AblationEngines() {
  static const std::vector<EngineEntry> engines = {
      {"Inp", MakeInp},
      {"Inp (Small Log Window)", MakeInpSlw},
      {"Inp (No Flush)", MakeInpNo},
      {"Inp (Hot Tuple Tracking)", MakeInpHtt},
      {"Falcon", MakeFalcon},
  };
  return engines;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t txns_per_thread = argc > 1 ? static_cast<uint64_t>(std::atoi(argv[1])) : 300;
  const std::vector<uint32_t> thread_counts = {8, 16, 24, 32, 40, 48};
  constexpr uint32_t kMaxThreadsUsed = 48;

  std::printf("=== Figure 11: individual optimizations and scalability (MTxn/s) ===\n");

  for (const char* scenario : {"TPC-C", "YCSB-A Uniform", "YCSB-A Zipfian"}) {
    std::printf("\n--- %s ---\n%-26s", scenario, "engine \\ threads");
    for (const uint32_t n : thread_counts) {
      std::printf(" %7u", n);
    }
    std::printf("\n");

    for (const EngineEntry& entry : AblationEngines()) {
      std::printf("%-26s", entry.label);
      std::fflush(stdout);

      // One fixture per engine/scenario, loaded once; the thread sweep uses
      // worker subsets (simulated time is per-thread, so this is sound).
      const bool tpcc = std::strcmp(scenario, "TPC-C") == 0;
      const bool zipf = std::strcmp(scenario, "YCSB-A Zipfian") == 0;
      TpccFixture tf;
      YcsbFixture yf;
      if (tpcc) {
        tf = TpccFixture::Create(entry.make(CcScheme::kOcc), kMaxThreadsUsed,
                                 BenchTpccConfig());
      } else {
        yf = YcsbFixture::Create(entry.make(CcScheme::kOcc), kMaxThreadsUsed,
                                 BenchYcsbConfig('A', zipf));
      }

      for (const uint32_t threads : thread_counts) {
        BenchResult result;
        if (tpcc) {
          std::vector<Rng> rngs;
          for (uint32_t t = 0; t < threads; ++t) {
            rngs.emplace_back(7100 + t);
          }
          result = RunBench(*tf.engine, threads, txns_per_thread,
                            [&](Worker& worker, uint32_t t, uint64_t) {
                              bool committed = false;
                              tf.workload->RunOne(worker, rngs[t], &committed);
                              return committed;
                            });
        } else {
          std::vector<YcsbThreadState> states;
          for (uint32_t t = 0; t < threads; ++t) {
            states.emplace_back(yf.workload->config(), t, threads, 7300 + t);
          }
          result = RunBench(*yf.engine, threads, txns_per_thread,
                            [&](Worker& worker, uint32_t t, uint64_t) {
                              return yf.workload->RunOne(worker, states[t]);
                            });
        }
        std::printf(" %7.3f", result.mtxn_per_s);
        std::fflush(stdout);
        const std::string config = std::string(scenario) + "/" + entry.label;
        MaybeAppendMetricsJson(BenchLabel("fig11", config, threads).c_str(),
                               result.metrics, result.latency);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\npaper shape: all curves rise with threads; Falcon on top everywhere; SLW is the\n"
      "big win on TPC-C; HTT only matters under Zipfian; No Flush trails Inp on TPC-C.\n");
  return 0;
}
