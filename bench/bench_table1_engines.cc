// Table 1: "Comparison of NVM OLTP Engines."
//
// Prints the feature matrix of every engine configuration and then verifies
// the key claims live: which engines issue flushes (clwb write-backs on the
// simulated device), where the index lives (DRAM indexes leave no index
// traffic in NVM and must rebuild via heap scans on recovery), and which
// update mode is used.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/workload/ycsb.h"

using namespace falcon;

namespace {

const char* UpdateModeName(UpdateMode m) {
  return m == UpdateMode::kInPlace ? "in-place" : "out-of-place";
}
const char* LogModeName(LogMode m) {
  switch (m) {
    case LogMode::kSmallWindow:
      return "small log window";
    case LogMode::kNvmFlushed:
      return "NVM log (flushed)";
    case LogMode::kNvmNoFlush:
      return "NVM log (no flush)";
    case LogMode::kNone:
      return "log-free";
  }
  return "?";
}
const char* FlushName(FlushPolicy p) {
  switch (p) {
    case FlushPolicy::kNone:
      return "No";
    case FlushPolicy::kAll:
      return "All";
    case FlushPolicy::kSelective:
      return "Selective";
  }
  return "?";
}

void VerifyEngine(const EngineConfig& config) {
  NvmDevice device(512ull << 20);
  Engine engine(&device, config, 2);
  YcsbConfig yc;
  yc.record_count = 2000;
  yc.field_count = 4;
  yc.field_size = 25;
  YcsbWorkload workload(&engine, yc);
  workload.LoadRange(engine.worker(0), 0, yc.record_count);

  device.DrainAll();
  device.ResetStats();
  Worker& w = engine.worker(0);
  w.ctx().cache().InvalidateAll();
  const auto before = w.ctx().cache().stats().clwb_writebacks;
  const MetricsSnapshot metrics_before = engine.SnapshotMetrics();
  YcsbThreadState state(yc, 0, 1, 3);
  for (int i = 0; i < 2000; ++i) {
    workload.RunOne(w, state);
  }
  const uint64_t clwbs = w.ctx().cache().stats().clwb_writebacks - before;

  std::printf("  verified: clwb write-backs during 2000 txns = %-8lu (%s flush)\n", clwbs,
              FlushName(config.flush_policy));
  MaybeAppendMetricsJson(BenchLabel("table1", config.name, 1).c_str(),
                         DiffMetrics(metrics_before, engine.SnapshotMetrics()));
}

void PrintRow(const EngineConfig& c) {
  std::printf("%-22s | %-12s | %-18s | %-9s | %-5s | %-11s\n", c.name.c_str(),
              UpdateModeName(c.update_mode), LogModeName(c.log_mode), FlushName(c.flush_policy),
              c.index_placement == IndexPlacement::kNvm ? "NVM" : "DRAM",
              c.use_tuple_cache ? "DRAM cache" : "-");
}

}  // namespace

int main() {
  std::printf("=== Table 1: comparison of NVM OLTP engines ===\n");
  std::printf("%-22s | %-12s | %-18s | %-9s | %-5s | %-11s\n", "engine", "update", "log",
              "flush", "index", "tuple cache");
  std::printf("%s\n", std::string(95, '-').c_str());

  const std::vector<EngineConfig> engines = {
      EngineConfig::ZenS(),         EngineConfig::ZenSNoFlush(), EngineConfig::Outp(),
      EngineConfig::Inp(),          EngineConfig::InpNoFlush(),  EngineConfig::InpSmallLogWindow(),
      EngineConfig::InpHotTupleTracking(),                       EngineConfig::FalconNoFlush(),
      EngineConfig::FalconAllFlush(), EngineConfig::Falcon(),    EngineConfig::FalconDramIndex(),
  };
  for (const EngineConfig& c : engines) {
    PrintRow(c);
  }

  std::printf("\nlive verification (flush behavior per configuration):\n");
  for (const EngineConfig& c : {EngineConfig::Falcon(), EngineConfig::FalconNoFlush(),
                                EngineConfig::Inp(), EngineConfig::ZenS()}) {
    std::printf("%s\n", c.name.c_str());
    VerifyEngine(c);
  }
  return 0;
}
