// Sharded workload drivers (src/workload/sharded.h) over a small multi-shard
// Database: cross-shard YCSB transactions really run 2PC, TPC-C warehouse
// colocation keeps home-warehouse transactions single-shard, the district
// next_o_id consistency probe balances against committed NewOrderLite
// transactions, and Attach() re-binds both drivers after a reopen.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/workload/sharded.h"
#include "tests/harness/test_seed.h"

namespace falcon {
namespace {

constexpr uint64_t kDeviceBytes = 128ull << 20;

DatabaseConfig SmallDb(uint32_t shards, uint32_t sessions) {
  DatabaseConfig cfg;
  cfg.engine = EngineConfig::Falcon(CcScheme::kOcc);
  cfg.shards = shards;
  cfg.sessions = sessions;
  cfg.device_bytes_per_shard = kDeviceBytes;
  return cfg;
}

TEST(ShardedYcsbTest, CrossShardTransactionsRunTwoPc) {
  Database db(SmallDb(/*shards=*/2, /*sessions=*/1));
  ShardedYcsbConfig cfg;
  cfg.record_count = 512;
  cfg.cross_shard_pct = 50;
  cfg.read_pct = 25;
  ShardedYcsb ycsb(&db, cfg);
  ycsb.LoadRange(0, 0, cfg.record_count);

  const MetricsSnapshot before = db.SnapshotMetrics();
  Rng rng(test::TestSeed(0x5ca1e));
  uint64_t commits = 0;
  for (uint32_t i = 0; i < 200; ++i) {
    commits += ycsb.RunOne(0, rng) ? 1 : 0;
  }
  const MetricsSnapshot delta = DiffMetrics(before, db.SnapshotMetrics());

  EXPECT_EQ(commits, 200u) << "single-session mix should never exhaust retries";
  EXPECT_GT(delta.twopc_commits, 0u)
      << "a 50% cross-shard mix never exercised 2PC";
  EXPECT_EQ(delta.twopc_commits % 2, 0u)
      << "every 2PC transaction commits exactly two prepared branches";
  EXPECT_EQ(delta.twopc_aborts, 0u);
}

TEST(ShardedYcsbTest, AttachRebindsAfterReopen) {
  const DatabaseConfig cfg = SmallDb(/*shards=*/2, /*sessions=*/1);
  std::vector<std::unique_ptr<NvmDevice>> devices;
  std::vector<NvmDevice*> raw;
  for (uint32_t s = 0; s < cfg.shards; ++s) {
    devices.push_back(
        std::make_unique<NvmDevice>(cfg.device_bytes_per_shard, cfg.engine.cost_params));
    raw.push_back(devices.back().get());
  }
  ShardedYcsbConfig wl;
  wl.record_count = 128;
  {
    Database db(cfg, raw);
    ShardedYcsb ycsb(&db, wl);
    ycsb.LoadRange(0, 0, wl.record_count);
    for (uint32_t s = 0; s < cfg.shards; ++s) {
      db.engine(s).worker(0).ctx().cache().WritebackAll();
      db.engine(s).device()->DrainAll();
    }
  }
  Database db(cfg, raw);
  EXPECT_TRUE(db.recovered());
  std::unique_ptr<ShardedYcsb> ycsb = ShardedYcsb::Attach(&db, wl);
  ASSERT_NE(ycsb, nullptr);
  Rng rng(test::TestSeed(0xa77ac4));
  uint64_t commits = 0;
  for (uint32_t i = 0; i < 50; ++i) {
    commits += ycsb->RunOne(0, rng) ? 1 : 0;
  }
  EXPECT_EQ(commits, 50u);
}

class ShardedTpccTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kSessions = 2;

  ShardedTpccTest() : db_(SmallDb(/*shards=*/2, kSessions)) {
    cfg_.warehouses = 4;
    cfg_.districts_per_warehouse = 4;
    cfg_.customers_per_district = 16;
    cfg_.items = 64;
    tpcc_ = std::make_unique<ShardedTpcc>(&db_, cfg_);
    for (uint32_t w = 1; w <= cfg_.warehouses; ++w) {
      tpcc_->LoadWarehouses(/*session=*/0, w, w);
    }
  }

  Database db_;
  ShardedTpccConfig cfg_;
  std::unique_ptr<ShardedTpcc> tpcc_;
};

TEST_F(ShardedTpccTest, WarehouseColocationKeepsHomeTransactionsSingleShard) {
  // With remote accesses disabled, every NewOrderLite and PaymentLite touches
  // a single warehouse, and the per-table route shifts colocate all of that
  // warehouse's rows — so no transaction should ever pay for 2PC.
  cfg_.remote_stock_pct = 0;
  cfg_.remote_customer_pct = 0;
  const std::unique_ptr<ShardedTpcc> driver = ShardedTpcc::Attach(&db_, cfg_);
  ASSERT_NE(driver, nullptr);

  const MetricsSnapshot before = db_.SnapshotMetrics();
  Rng rng(test::TestSeed(0x79cc1));
  uint64_t commits = 0;
  for (uint32_t i = 0; i < 150; ++i) {
    bool committed = false;
    driver->RunOne(0, rng, &committed);
    commits += committed ? 1 : 0;
  }
  const MetricsSnapshot delta = DiffMetrics(before, db_.SnapshotMetrics());
  EXPECT_EQ(commits, 150u);
  EXPECT_EQ(delta.twopc_prepares, 0u)
      << "home-warehouse transactions crossed shards: colocation is broken";
}

TEST_F(ShardedTpccTest, RemoteAccessesCrossShardsWhenWarehousesDo) {
  // Remote accesses pick a different warehouse; whether that crosses a shard
  // depends on where the warehouses hash. Force remote on every transaction
  // and require 2PC iff at least two warehouses land on different shards.
  const auto wid = db_.FindTableId("s_warehouse");
  ASSERT_TRUE(wid.has_value());
  std::set<uint32_t> shards;
  for (uint64_t w = 1; w <= cfg_.warehouses; ++w) {
    shards.insert(db_.ShardOf(*wid, w));
  }
  if (shards.size() < 2) {
    GTEST_SKIP() << "all warehouses hashed to one shard for this config";
  }
  cfg_.remote_stock_pct = 100;
  cfg_.remote_customer_pct = 100;
  const std::unique_ptr<ShardedTpcc> driver = ShardedTpcc::Attach(&db_, cfg_);
  ASSERT_NE(driver, nullptr);

  const MetricsSnapshot before = db_.SnapshotMetrics();
  Rng rng(test::TestSeed(0x7e307e));
  for (uint32_t i = 0; i < 100; ++i) {
    bool committed = false;
    driver->RunOne(0, rng, &committed);
    EXPECT_TRUE(committed);
  }
  const MetricsSnapshot delta = DiffMetrics(before, db_.SnapshotMetrics());
  EXPECT_GT(delta.twopc_commits, 0u)
      << "forced remote accesses never produced a cross-shard commit";
}

TEST_F(ShardedTpccTest, NextOrderIdsBalanceCommittedNewOrders) {
  const uint64_t base = tpcc_->TotalNextOrderIds(0);
  EXPECT_EQ(base, uint64_t{cfg_.warehouses} * cfg_.districts_per_warehouse)
      << "every district loads with next_o_id = 1";

  Rng rng(test::TestSeed(0xba1a2ce));
  uint64_t new_orders = 0;
  for (uint32_t i = 0; i < 120; ++i) {
    bool committed = false;
    const ShardedTpccTxnType type = tpcc_->RunOne(i % kSessions, rng, &committed);
    if (committed && type == ShardedTpccTxnType::kNewOrderLite) {
      ++new_orders;
    }
  }
  EXPECT_GT(new_orders, 0u);
  EXPECT_EQ(tpcc_->TotalNextOrderIds(0) - base, new_orders)
      << "district next_o_id counters drifted from committed NewOrderLite count";
}

TEST(ShardedTpccReopenTest, AttachRestoresConsistencyAcrossReopen) {
  const DatabaseConfig cfg = SmallDb(/*shards=*/2, /*sessions=*/1);
  std::vector<std::unique_ptr<NvmDevice>> devices;
  std::vector<NvmDevice*> raw;
  for (uint32_t s = 0; s < cfg.shards; ++s) {
    devices.push_back(
        std::make_unique<NvmDevice>(cfg.device_bytes_per_shard, cfg.engine.cost_params));
    raw.push_back(devices.back().get());
  }
  ShardedTpccConfig wl;
  wl.warehouses = 2;
  wl.districts_per_warehouse = 4;
  wl.customers_per_district = 16;
  wl.items = 64;

  uint64_t next_oids_before = 0;
  {
    Database db(cfg, raw);
    ShardedTpcc tpcc(&db, wl);
    tpcc.LoadWarehouses(0, 1, wl.warehouses);
    Rng rng(test::TestSeed(0x0af7e2));
    for (uint32_t i = 0; i < 60; ++i) {
      bool committed = false;
      tpcc.RunOne(0, rng, &committed);
    }
    next_oids_before = tpcc.TotalNextOrderIds(0);
    for (uint32_t s = 0; s < cfg.shards; ++s) {
      db.engine(s).worker(0).ctx().cache().WritebackAll();
      db.engine(s).device()->DrainAll();
    }
  }

  Database db(cfg, raw);
  EXPECT_TRUE(db.recovered());
  std::unique_ptr<ShardedTpcc> tpcc = ShardedTpcc::Attach(&db, wl);
  ASSERT_NE(tpcc, nullptr);
  EXPECT_EQ(tpcc->TotalNextOrderIds(0), next_oids_before)
      << "district counters did not survive the reopen";
  Rng rng(test::TestSeed(0x0af7e3));
  bool committed = false;
  tpcc->RunOne(0, rng, &committed);
  EXPECT_TRUE(committed) << "driver wedged after Attach";
}

}  // namespace
}  // namespace falcon
