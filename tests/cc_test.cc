// Unit tests for concurrency-control primitives: TID generation, the active
// TID table, 2PL lock words with generation tagging, TO/OCC timestamp words.

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "src/cc/locks.h"
#include "src/cc/tid.h"

namespace falcon {
namespace {

TEST(TidGeneratorTest, UniqueAndMonotonePerThread) {
  TidGenerator gen;
  uint64_t prev = 0;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t tid = gen.Next(3);
    EXPECT_GT(tid, prev);
    EXPECT_EQ(tid & 0xff, 3u) << "thread id lives in the low byte (§5.2.1 fn 2)";
    prev = tid;
  }
}

TEST(TidGeneratorTest, DistinctAcrossThreads) {
  TidGenerator gen;
  std::vector<std::vector<uint64_t>> out(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 10000; ++i) {
        out[t].push_back(gen.Next(static_cast<uint32_t>(t)));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::set<uint64_t> all;
  for (const auto& v : out) {
    for (const uint64_t tid : v) {
      EXPECT_TRUE(all.insert(tid).second) << "duplicate TID";
    }
  }
}

TEST(TidGeneratorTest, FloorRestartsAboveEveryOldTid) {
  TidGenerator gen;
  uint64_t max_tid = 0;
  for (int i = 0; i < 100; ++i) {
    max_tid = gen.Next(7);
  }
  TidGenerator recovered(max_tid);
  EXPECT_GT(recovered.Next(0), max_tid) << "post-recovery TIDs must stay monotone";
  EXPECT_GE(gen.UpperBound(), max_tid);
}

TEST(ActiveTidTableTest, MinActiveTracksPublishedTids) {
  ActiveTidTable table;
  EXPECT_EQ(table.MinActive(999), 999u) << "idle table falls back";
  table.Publish(0, 50);
  table.Publish(1, 30);
  table.Publish(2, 70);
  EXPECT_EQ(table.MinActive(999), 30u);
  table.Clear(1);
  EXPECT_EQ(table.MinActive(999), 50u);
  table.Clear(0);
  table.Clear(2);
  EXPECT_EQ(table.MinActive(999), 999u);
}

TEST(Locks2plTest, WriteExcludesEverything) {
  std::atomic<uint64_t> word{0};
  const uint64_t gen = 1;
  ASSERT_TRUE(TryLockWrite2pl(word, gen));
  EXPECT_FALSE(TryLockWrite2pl(word, gen));
  EXPECT_FALSE(TryLockRead2pl(word, gen));
  UnlockWrite2pl(word, gen);
  EXPECT_TRUE(TryLockRead2pl(word, gen));
}

TEST(Locks2plTest, SharedReadersBlockWriters) {
  std::atomic<uint64_t> word{0};
  const uint64_t gen = 1;
  ASSERT_TRUE(TryLockRead2pl(word, gen));
  ASSERT_TRUE(TryLockRead2pl(word, gen));
  EXPECT_FALSE(TryLockWrite2pl(word, gen));
  UnlockRead2pl(word);
  EXPECT_FALSE(TryLockWrite2pl(word, gen)) << "one reader still holds";
  UnlockRead2pl(word);
  EXPECT_TRUE(TryLockWrite2pl(word, gen));
}

TEST(Locks2plTest, UpgradeOnlyForSoleReader) {
  std::atomic<uint64_t> word{0};
  const uint64_t gen = 1;
  ASSERT_TRUE(TryLockRead2pl(word, gen));
  ASSERT_TRUE(TryLockRead2pl(word, gen));
  EXPECT_FALSE(TryUpgrade2pl(word, gen)) << "two readers: no upgrade";
  UnlockRead2pl(word);
  EXPECT_TRUE(TryUpgrade2pl(word, gen));
  EXPECT_FALSE(TryLockRead2pl(word, gen)) << "upgraded to exclusive";
}

TEST(Locks2plTest, StaleGenerationDecodesAsUnlocked) {
  // The crash-recovery property: locks taken under generation 1 (readers
  // that died with the crash) are invisible under generation 2.
  std::atomic<uint64_t> word{0};
  ASSERT_TRUE(TryLockRead2pl(word, /*gen=*/1));
  ASSERT_TRUE(TryLockRead2pl(word, 1));
  EXPECT_FALSE(TryLockWrite2pl(word, 1));
  EXPECT_TRUE(TryLockWrite2pl(word, /*gen=*/2))
      << "post-recovery writers must not block on pre-crash read locks";
  UnlockWrite2pl(word, 2);
  ASSERT_TRUE(TryLockWrite2pl(word, 2));
  EXPECT_TRUE(TryLockWrite2pl(word, /*gen=*/3)) << "stale write lock also decodes as free";
}

TEST(Locks2plTest, ConcurrentReadersCountExactly) {
  std::atomic<uint64_t> word{0};
  const uint64_t gen = 5;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        while (!TryLockRead2pl(word, gen)) {
        }
        UnlockRead2pl(word);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(Normalize2pl(word.load(), gen) & k2plReaderMask, 0u);
  EXPECT_TRUE(TryLockWrite2pl(word, gen));
}

TEST(LocksTsTest, LockPreservesTimestamp) {
  std::atomic<uint64_t> word{12345};
  uint64_t pre = 0;
  ASSERT_TRUE(TryLockTs(word, &pre));
  EXPECT_EQ(pre, 12345u);
  EXPECT_TRUE(IsLockedTs(word.load()));
  EXPECT_EQ(TsOf(word.load()), 12345u);
  uint64_t again = 0;
  EXPECT_FALSE(TryLockTs(word, &again)) << "no-wait";
  UnlockWithTs(word, 999);
  EXPECT_FALSE(IsLockedTs(word.load()));
  EXPECT_EQ(TsOf(word.load()), 999u);
}

TEST(LocksTsTest, RestorePreservesRetiredBit) {
  std::atomic<uint64_t> word{777 | kCcRetiredBit};
  uint64_t pre = 0;
  ASSERT_TRUE(TryLockTs(word, &pre));
  UnlockRestoreTs(word, pre);
  EXPECT_EQ(word.load(), 777u | kCcRetiredBit);
  EXPECT_EQ(TsOf(word.load()), 777u) << "TsOf masks the retired bit";
}

TEST(LocksTsTest, AdvanceReadTsIsMonotoneMax) {
  std::atomic<uint64_t> read_ts{10};
  AdvanceReadTs(read_ts, 5);
  EXPECT_EQ(read_ts.load(), 10u);
  AdvanceReadTs(read_ts, 20);
  EXPECT_EQ(read_ts.load(), 20u);

  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < 10000; ++i) {
        AdvanceReadTs(read_ts, i * 8 + static_cast<uint64_t>(t));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(read_ts.load(), 9999u * 8 + 7);
}

TEST(LocksTsTest, MutualExclusionUnderContention) {
  std::atomic<uint64_t> word{0};
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        uint64_t pre = 0;
        while (!TryLockTs(word, &pre)) {
        }
        ++counter;
        UnlockRestoreTs(word, pre);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, 8 * 5000);
}

}  // namespace
}  // namespace falcon
