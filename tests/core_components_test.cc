// Unit tests for the core building blocks: the small log window, the hot
// tuple LRU (D2), the ZenS tuple cache, and the engine configuration
// presets (paper Table 1).

#include <gtest/gtest.h>

#include <cstring>

#include "src/core/config.h"
#include "src/core/hot_tuple_set.h"
#include "src/core/log_window.h"
#include "src/core/tuple_cache.h"
#include "src/pmem/catalog.h"

namespace falcon {
namespace {

// ---- LogWindow --------------------------------------------------------------

class LogWindowTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kSlots = 3;
  static constexpr uint64_t kSlotBytes = 4096;

  LogWindowTest()
      : dev_(64ul << 20),
        arena_(NvmArena::Format(&dev_)),
        ctx_(0, &dev_),
        base_(arena_.AllocPage(PagePurpose::kLogWindow, 0, 0) + kPageDataStart),
        log_(&arena_, base_, kSlots, kSlotBytes, /*flush_to_nvm=*/false) {
    std::memset(arena_.Ptr<void>(base_), 0, LogWindow::RegionBytes(kSlots, kSlotBytes));
  }

  NvmDevice dev_;
  NvmArena arena_;
  ThreadContext ctx_;
  PmOffset base_;
  LogWindow log_;
};

TEST_F(LogWindowTest, OpenSlotInitializesHeader) {
  LogCursor cur;
  ASSERT_TRUE(log_.OpenSlot(ctx_, /*tid=*/77, cur));
  LogSlotHeader* slot = log_.SlotAt(cur.slot);
  EXPECT_EQ(slot->tid, 77u);
  EXPECT_EQ(slot->bytes, 0u);
  EXPECT_EQ(slot->entry_count, 0u);
  EXPECT_EQ(static_cast<SlotState>(slot->state.load()), SlotState::kUncommitted);
}

TEST_F(LogWindowTest, AppendWritesEntryAndPayload) {
  LogCursor cur;
  ASSERT_TRUE(log_.OpenSlot(ctx_, 1, cur));
  const uint64_t payload = 0xabcdef;
  ASSERT_TRUE(log_.Append(ctx_, cur, /*table=*/2, /*key=*/9, /*tuple=*/0x1000,
                          LogOpKind::kUpdate, /*offset=*/16, /*len=*/8, &payload));
  LogSlotHeader* slot = log_.SlotAt(cur.slot);
  EXPECT_EQ(slot->entry_count, 1u);
  EXPECT_EQ(slot->bytes, sizeof(LogEntryHeader) + 8);

  LogEntryHeader entry;
  std::memcpy(&entry, LogWindow::SlotPayload(slot), sizeof(entry));
  EXPECT_EQ(entry.table_id, 2u);
  EXPECT_EQ(entry.key, 9u);
  EXPECT_EQ(entry.tuple, 0x1000u);
  EXPECT_EQ(entry.offset, 16u);
  EXPECT_EQ(entry.len, 8u);
  uint64_t stored = 0;
  std::memcpy(&stored, LogWindow::SlotPayload(slot) + sizeof(entry), 8);
  EXPECT_EQ(stored, payload);
}

TEST_F(LogWindowTest, AppendFailsWhenSlotFull) {
  // The §5.5 limitation: one transaction's redo must fit a slot.
  LogCursor cur;
  ASSERT_TRUE(log_.OpenSlot(ctx_, 1, cur));
  std::byte big[1024] = {};
  int appended = 0;
  while (log_.Append(ctx_, cur, 0, 0, 64, LogOpKind::kUpdate, 0, sizeof(big), big)) {
    ++appended;
  }
  EXPECT_EQ(appended, 3);  // 3 x (40 + 1024) fits in 4096 - 32; the 4th does not
}

TEST_F(LogWindowTest, WindowCyclesThroughSlots) {
  LogSlotHeader* seen[5];
  for (int i = 0; i < 5; ++i) {
    LogCursor cur;
    ASSERT_TRUE(log_.OpenSlot(ctx_, static_cast<uint64_t>(i + 1), cur));
    seen[i] = log_.SlotAt(cur.slot);
    log_.MarkCommitted(ctx_, cur);
    log_.Release(ctx_, cur);
  }
  EXPECT_NE(seen[0], seen[1]);
  EXPECT_NE(seen[1], seen[2]);
  EXPECT_EQ(seen[0], seen[3]) << "3-slot window must reuse slots circularly";
  EXPECT_EQ(seen[1], seen[4]);
}

TEST_F(LogWindowTest, CommitAndReleaseDriveSlotStates) {
  LogCursor cur;
  ASSERT_TRUE(log_.OpenSlot(ctx_, 5, cur));
  LogSlotHeader* slot = log_.SlotAt(cur.slot);
  log_.MarkCommitted(ctx_, cur);
  EXPECT_EQ(static_cast<SlotState>(slot->state.load()), SlotState::kCommitted);
  log_.Release(ctx_, cur);
  EXPECT_EQ(static_cast<SlotState>(slot->state.load()), SlotState::kFree);
}

TEST_F(LogWindowTest, OpenSlotFailsWhenAllSlotsBusy) {
  // Batched execution keeps several slots uncommitted at once; once the
  // window is exhausted the next open must fail rather than reuse a live
  // sibling's slot.
  LogCursor held[kSlots];
  for (uint32_t i = 0; i < kSlots; ++i) {
    ASSERT_TRUE(log_.OpenSlot(ctx_, i + 1, held[i]));
  }
  for (uint32_t i = 0; i < kSlots; ++i) {
    for (uint32_t j = i + 1; j < kSlots; ++j) {
      EXPECT_NE(held[i].slot, held[j].slot) << "concurrent opens must get distinct slots";
    }
  }
  LogCursor extra;
  EXPECT_FALSE(log_.OpenSlot(ctx_, 99, extra));
  // Releasing one slot makes exactly one open succeed again.
  log_.MarkCommitted(ctx_, held[1]);
  log_.Release(ctx_, held[1]);
  EXPECT_TRUE(log_.OpenSlot(ctx_, 100, extra));
  EXPECT_EQ(extra.slot, held[1].slot);
}

TEST_F(LogWindowTest, UnflushedWindowStaysOutOfNvm) {
  // D1's whole point: the cycling window generates no NVM media writes.
  std::byte payload[256] = {};
  for (int txn = 0; txn < 200; ++txn) {
    LogCursor cur;
    ASSERT_TRUE(log_.OpenSlot(ctx_, static_cast<uint64_t>(txn + 1), cur));
    for (int e = 0; e < 8; ++e) {
      ASSERT_TRUE(
          log_.Append(ctx_, cur, 0, e, 64, LogOpKind::kUpdate, 0, sizeof(payload), payload));
    }
    log_.MarkCommitted(ctx_, cur);
    log_.Release(ctx_, cur);
  }
  dev_.DrainAll();
  EXPECT_EQ(dev_.stats().media_writes, 0u)
      << "small log window must never reach the media while it fits in cache";
}

TEST_F(LogWindowTest, FlushedLogWritesThroughEveryCommit) {
  // The conventional (Inp) protocol: clwb + fence per commit -> media writes
  // proportional to logging volume.
  LogWindow flushed(&arena_, base_, kSlots, kSlotBytes, /*flush_to_nvm=*/true);
  std::byte payload[256] = {};
  for (int txn = 0; txn < 50; ++txn) {
    LogCursor cur;
    ASSERT_TRUE(flushed.OpenSlot(ctx_, static_cast<uint64_t>(txn + 1), cur));
    ASSERT_TRUE(
        flushed.Append(ctx_, cur, 0, 1, 64, LogOpKind::kUpdate, 0, sizeof(payload), payload));
    flushed.MarkCommitted(ctx_, cur);
    flushed.Release(ctx_, cur);
  }
  dev_.DrainAll();
  EXPECT_GT(dev_.stats().media_writes, 50u);
}

// ---- HotTupleSet -------------------------------------------------------------

TEST(HotTupleSetTest, ContainsAfterCache) {
  HotTupleSet hot(4);
  EXPECT_FALSE(hot.Contains(100));
  hot.Cache(100);
  EXPECT_TRUE(hot.Contains(100));
  EXPECT_EQ(hot.size(), 1u);
}

TEST(HotTupleSetTest, EvictsLruWhenFull) {
  HotTupleSet hot(3);
  hot.Cache(1);
  hot.Cache(2);
  hot.Cache(3);
  // Refresh 1 so 2 is the coldest.
  EXPECT_TRUE(hot.Contains(1));
  hot.Cache(4);
  EXPECT_TRUE(hot.Contains(1));
  EXPECT_FALSE(hot.Contains(2));
  EXPECT_TRUE(hot.Contains(3));
  EXPECT_TRUE(hot.Contains(4));
  EXPECT_EQ(hot.size(), 3u);
}

TEST(HotTupleSetTest, RecachingRefreshesRecency) {
  HotTupleSet hot(2);
  hot.Cache(1);
  hot.Cache(2);
  hot.Cache(1);  // refresh
  hot.Cache(3);  // evicts 2
  EXPECT_TRUE(hot.Contains(1));
  EXPECT_FALSE(hot.Contains(2));
}

TEST(HotTupleSetTest, ClearEmptiesTheSet) {
  HotTupleSet hot(8);
  for (uint64_t i = 0; i < 8; ++i) {
    hot.Cache(i);
  }
  hot.Clear();
  EXPECT_EQ(hot.size(), 0u);
  EXPECT_FALSE(hot.Contains(0));
}

// ---- TupleCache --------------------------------------------------------------

class TupleCacheTest : public ::testing::Test {
 protected:
  TupleCacheTest() : dev_(16ul << 20), ctx_(0, &dev_), cache_(64, 128) {}

  NvmDevice dev_;
  ThreadContext ctx_;
  TupleCache cache_;
};

TEST_F(TupleCacheTest, FillThenLookupSameVersion) {
  const char data[16] = "hello";
  char out[16] = {};
  EXPECT_FALSE(cache_.Lookup(ctx_, 1, 5, /*version_ts=*/10, out, sizeof(out)));
  cache_.Fill(ctx_, 1, 5, 10, data, sizeof(data));
  EXPECT_TRUE(cache_.Lookup(ctx_, 1, 5, 10, out, sizeof(out)));
  EXPECT_STREQ(out, "hello");
}

TEST_F(TupleCacheTest, VersionMismatchMisses) {
  const char data[16] = "v10";
  char out[16] = {};
  cache_.Fill(ctx_, 1, 5, 10, data, sizeof(data));
  EXPECT_FALSE(cache_.Lookup(ctx_, 1, 5, 11, out, sizeof(out)))
      << "a reader validating version 11 must not be served version 10";
  EXPECT_FALSE(cache_.Lookup(ctx_, 1, 5, 9, out, sizeof(out)));
}

TEST_F(TupleCacheTest, NeverRollsBackToOlderVersion) {
  const char newer[16] = "new";
  const char older[16] = "old";
  cache_.Fill(ctx_, 1, 5, 20, newer, sizeof(newer));
  cache_.Fill(ctx_, 1, 5, 10, older, sizeof(older));  // stale fill: ignored
  char out[16] = {};
  EXPECT_TRUE(cache_.Lookup(ctx_, 1, 5, 20, out, sizeof(out)));
  EXPECT_STREQ(out, "new");
}

TEST_F(TupleCacheTest, InvalidateRemovesEntry) {
  const char data[8] = "x";
  cache_.Fill(ctx_, 1, 5, 10, data, sizeof(data));
  cache_.Invalidate(ctx_, 1, 5);
  char out[8] = {};
  EXPECT_FALSE(cache_.Lookup(ctx_, 1, 5, 10, out, sizeof(out)));
}

TEST_F(TupleCacheTest, OversizedTuplesBypass) {
  std::vector<char> big(1024, 'a');
  cache_.Fill(ctx_, 1, 5, 10, big.data(), big.size());  // max_data is 128
  EXPECT_FALSE(cache_.Lookup(ctx_, 1, 5, 10, big.data(), big.size()));
}

TEST_F(TupleCacheTest, DistinctKeysCoexist) {
  for (uint64_t k = 0; k < 32; ++k) {
    const uint64_t v = k * 7;
    cache_.Fill(ctx_, 1, k, 10, &v, sizeof(v));
  }
  int hits = 0;
  for (uint64_t k = 0; k < 32; ++k) {
    uint64_t out = 0;
    if (cache_.Lookup(ctx_, 1, k, 10, &out, sizeof(out))) {
      EXPECT_EQ(out, k * 7);
      ++hits;
    }
  }
  EXPECT_GT(hits, 16) << "direct-mapped collisions should not wipe most entries";
  EXPECT_GT(cache_.hits(), 0u);
}

// ---- EngineConfig presets (Table 1) -------------------------------------------

TEST(EngineConfigTest, PresetsMatchTable1) {
  const EngineConfig falcon = EngineConfig::Falcon();
  EXPECT_EQ(falcon.update_mode, UpdateMode::kInPlace);
  EXPECT_EQ(falcon.log_mode, LogMode::kSmallWindow);
  EXPECT_EQ(falcon.flush_policy, FlushPolicy::kSelective);
  EXPECT_EQ(falcon.index_placement, IndexPlacement::kNvm);
  EXPECT_FALSE(falcon.use_tuple_cache);

  const EngineConfig inp = EngineConfig::Inp();
  EXPECT_EQ(inp.log_mode, LogMode::kNvmFlushed);
  EXPECT_EQ(inp.flush_policy, FlushPolicy::kAll);

  const EngineConfig inp_no_flush = EngineConfig::InpNoFlush();
  EXPECT_EQ(inp_no_flush.log_mode, LogMode::kNvmNoFlush);
  EXPECT_EQ(inp_no_flush.flush_policy, FlushPolicy::kNone);

  const EngineConfig zens = EngineConfig::ZenS();
  EXPECT_EQ(zens.update_mode, UpdateMode::kOutOfPlace);
  EXPECT_EQ(zens.log_mode, LogMode::kNone);
  EXPECT_EQ(zens.index_placement, IndexPlacement::kDram);
  EXPECT_TRUE(zens.use_tuple_cache);

  const EngineConfig outp = EngineConfig::Outp();
  EXPECT_EQ(outp.index_placement, IndexPlacement::kNvm);
  EXPECT_FALSE(outp.use_tuple_cache);

  // Figure 10's identities: Inp(SLW) = Inp + small window; Inp(HTT) = Inp +
  // selective flush; Falcon = both.
  const EngineConfig slw = EngineConfig::InpSmallLogWindow();
  EXPECT_EQ(slw.log_mode, LogMode::kSmallWindow);
  EXPECT_EQ(slw.flush_policy, FlushPolicy::kAll);
  const EngineConfig htt = EngineConfig::InpHotTupleTracking();
  EXPECT_EQ(htt.log_mode, LogMode::kNvmFlushed);
  EXPECT_EQ(htt.flush_policy, FlushPolicy::kSelective);
}

TEST(EngineConfigTest, EffectiveLogSlots) {
  EXPECT_EQ(EngineConfig::Falcon().EffectiveLogSlots(), kLogWindowSlots);
  EXPECT_EQ(EngineConfig::Inp().EffectiveLogSlots(), EngineConfig::Inp().large_log_slots);
  EXPECT_GT(EngineConfig::Inp().large_log_slots, kLogWindowSlots * 4)
      << "the conventional log region must dwarf the small window";
}

TEST(CcSchemeTest, BaseAndMvClassification) {
  EXPECT_TRUE(IsMultiVersion(CcScheme::kMv2pl));
  EXPECT_TRUE(IsMultiVersion(CcScheme::kMvTo));
  EXPECT_TRUE(IsMultiVersion(CcScheme::kMvOcc));
  EXPECT_FALSE(IsMultiVersion(CcScheme::kOcc));
  EXPECT_EQ(BaseScheme(CcScheme::kMv2pl), CcScheme::k2pl);
  EXPECT_EQ(BaseScheme(CcScheme::kMvTo), CcScheme::kTo);
  EXPECT_EQ(BaseScheme(CcScheme::kMvOcc), CcScheme::kOcc);
  EXPECT_EQ(BaseScheme(CcScheme::kTo), CcScheme::kTo);
  EXPECT_EQ(CcSchemeName(CcScheme::kMvTo), "MVTO");
}

}  // namespace
}  // namespace falcon
