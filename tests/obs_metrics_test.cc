// The observability layer (src/obs): snapshot/diff semantics, the field
// table, JSON export, the abort-reason taxonomy, the simulated-time phase
// breakdown, and the source-attributed device counters that make the paper's
// D1 claim ("zero log media writes under eADR") directly assertable.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <set>
#include <string>

#include "src/core/engine.h"

namespace falcon {
namespace {

constexpr uint64_t kRowBytes = 32;

void FillRow(std::byte* row, uint64_t seed) {
  std::memset(row, static_cast<int>(seed & 0x7f), kRowBytes);
  std::memcpy(row, &seed, sizeof(seed));
}

Status InsertRow(Worker& w, TableId table, uint64_t key, uint64_t seed) {
  std::byte row[kRowBytes];
  FillRow(row, seed);
  Txn txn = w.Begin();
  const Status s = txn.Insert(table, key, row);
  if (s != Status::kOk) {
    txn.Abort();
    return s;
  }
  return txn.Commit();
}

TableId MakeTable(Engine& engine, const char* name = "t") {
  SchemaBuilder schema(name);
  schema.AddU64();
  schema.AddColumn(24);
  return engine.CreateTable(schema, IndexKind::kHash);
}

// --- Field table invariants -------------------------------------------------

TEST(MetricFieldTable, CoversEveryFieldExactlyOnce) {
  const auto& table = MetricFieldTable();
  // MetricsSnapshot is all uint64 — the table must name each one exactly once.
  EXPECT_EQ(table.size() * sizeof(uint64_t), sizeof(MetricsSnapshot));

  std::set<std::string> names;
  std::set<size_t> offsets;
  for (const MetricField& f : table) {
    EXPECT_TRUE(names.insert(f.name).second) << "duplicate name " << f.name;
    EXPECT_TRUE(offsets.insert(f.offset).second) << "duplicate offset for " << f.name;
    EXPECT_LT(f.offset, sizeof(MetricsSnapshot));
    EXPECT_EQ(f.offset % sizeof(uint64_t), 0u);
  }
  // Spot-check that the region arrays were expanded into named fields.
  EXPECT_EQ(names.count("device_line_writes_log"), 1u);
  EXPECT_EQ(names.count("device_media_writes_log"), 1u);
  EXPECT_EQ(names.count("device_media_writes_tuple_heap"), 1u);
}

TEST(MetricFieldTable, MetricValueReadsByOffset) {
  MetricsSnapshot s;
  s.commits = 42;
  s.device_region_media_writes[static_cast<size_t>(kRegionLog)] = 7;
  for (const MetricField& f : MetricFieldTable()) {
    if (std::strcmp(f.name, "commits") == 0) {
      EXPECT_EQ(MetricValue(s, f), 42u);
    }
    if (std::strcmp(f.name, "device_media_writes_log") == 0) {
      EXPECT_EQ(MetricValue(s, f), 7u);
    }
  }
}

// --- Diff semantics ---------------------------------------------------------

TEST(DiffMetrics, CountersSubtractGaugesTakeAfter) {
  MetricsSnapshot before;
  MetricsSnapshot after;
  before.commits = 10;
  after.commits = 25;
  before.hot_size = 5;  // gauge
  after.hot_size = 3;
  const MetricsSnapshot diff = DiffMetrics(before, after);
  EXPECT_EQ(diff.commits, 15u);
  EXPECT_EQ(diff.hot_size, 3u);
}

TEST(DiffMetrics, CounterUnderflowSaturatesAtZero) {
  MetricsSnapshot before;
  MetricsSnapshot after;
  before.commits = 100;
  after.commits = 40;  // e.g. a reset happened mid-window
  EXPECT_EQ(DiffMetrics(before, after).commits, 0u);
}

// --- JSON export ------------------------------------------------------------

TEST(MetricsJson, LineContainsLabelAndEveryField) {
  MetricsSnapshot s;
  s.commits = 3;
  const std::string line = MetricsJsonLine("bench/\"quoted\"", s);
  EXPECT_NE(line.find("\"label\":\"bench/\\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(line.find("\"commits\":3"), std::string::npos);
  for (const MetricField& f : MetricFieldTable()) {
    EXPECT_NE(line.find(std::string("\"") + f.name + "\":"), std::string::npos) << f.name;
  }
  // Single line (WriteMetricsJson adds the newline), object-shaped.
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
}

TEST(MetricsJson, SchemaVersionAndEscaping) {
  MetricsSnapshot s;
  const std::string line = MetricsJsonLine("a\\b\n\tc\x01", s);
  EXPECT_NE(line.find("\"schema_version\":3"), std::string::npos);
  // Backslash, newline, tab, and raw control bytes all escape to valid JSON.
  EXPECT_NE(line.find("a\\\\b\\n\\tc\\u0001"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(MetricsJson, LatencySectionEmittedWhenProvided) {
  MetricsSnapshot s;
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) {
    h.Record(v * 1000);
  }
  const std::string line =
      MetricsJsonLine("l", s, {SummarizeHistogram("all", h), SummarizeHistogram("empty", {})});
  EXPECT_NE(line.find("\"latency\":{"), std::string::npos);
  EXPECT_NE(line.find("\"all\":{\"count\":100"), std::string::npos);
  EXPECT_NE(line.find("\"p50_ns\":"), std::string::npos);
  EXPECT_NE(line.find("\"p95_ns\":"), std::string::npos);
  EXPECT_NE(line.find("\"p99_ns\":"), std::string::npos);
  EXPECT_NE(line.find("\"max_ns\":"), std::string::npos);
  EXPECT_NE(line.find("\"empty\":{\"count\":0"), std::string::npos);
  // Without summaries the section is absent entirely.
  EXPECT_EQ(MetricsJsonLine("l", s).find("latency"), std::string::npos);
}

TEST(MetricsJson, SummarizeHistogramPercentilesOrdered) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  const LatencySummary sum = SummarizeHistogram("x", h);
  EXPECT_EQ(sum.count, 1000u);
  EXPECT_LE(sum.p50_ns, sum.p95_ns);
  EXPECT_LE(sum.p95_ns, sum.p99_ns);
  EXPECT_LE(sum.p99_ns, sum.max_ns);
  EXPECT_GT(sum.p50_ns, 0u);
}

TEST(MetricsJson, SanitizeLabelPartScrubsHostileBytes) {
  EXPECT_EQ(SanitizeLabelPart("Falcon (All Flush)"), "Falcon_All_Flush");
  EXPECT_EQ(SanitizeLabelPart("a b\tc"), "a_b_c");
  EXPECT_EQ(SanitizeLabelPart("ok-1.2_x"), "ok-1.2_x");
  EXPECT_EQ(SanitizeLabelPart("  edge  "), "edge");
  EXPECT_EQ(SanitizeLabelPart(""), "");
}

TEST(MetricsJson, BenchLabelUniformShape) {
  EXPECT_EQ(BenchLabel("fig07", "Falcon (DRAM Index)/OCC", 48),
            "fig07/Falcon_DRAM_Index/OCC/48t");
  EXPECT_EQ(BenchLabel("hotpath", "read_only/occ", 1), "hotpath/read_only/occ/1t");
}

TEST(MetricsJson, AppendWritesOneLinePerCall) {
  const char* path = "obs_metrics_test_append.json";
  std::remove(path);
  MetricsSnapshot s;
  ASSERT_TRUE(AppendMetricsJson(path, "a", s));
  ASSERT_TRUE(AppendMetricsJson(path, "b", s));
  std::FILE* in = std::fopen(path, "r");
  ASSERT_NE(in, nullptr);
  int lines = 0;
  int c;
  while ((c = std::fgetc(in)) != EOF) {
    if (c == '\n') {
      ++lines;
    }
  }
  std::fclose(in);
  std::remove(path);
  EXPECT_EQ(lines, 2);
}

// --- Abort-reason taxonomy --------------------------------------------------

TEST(AbortTaxonomy, UserAbortCountsAsUser) {
  NvmDevice dev(256ul * 1024 * 1024);
  Engine engine(&dev, EngineConfig::Falcon(CcScheme::kOcc), 1);
  const TableId t = MakeTable(engine);
  Worker& w = engine.worker(0);
  ASSERT_EQ(InsertRow(w, t, 1, 1), Status::kOk);
  {
    Txn txn = w.Begin();
    std::byte row[kRowBytes];
    FillRow(row, 2);
    ASSERT_EQ(txn.UpdateFull(t, 1, row), Status::kOk);
    txn.Abort();
  }
  const MetricsSnapshot s = engine.SnapshotMetrics();
  EXPECT_EQ(s.txn_aborts, 1u);
  EXPECT_EQ(s.aborts_user, 1u);
  EXPECT_EQ(s.aborts_lock_conflict + s.aborts_ts_order + s.aborts_occ_validation +
                s.aborts_log_overflow + s.aborts_other,
            0u);
}

TEST(AbortTaxonomy, TaxonomySumsToTxnAborts2pl) {
  // Two workers fighting over one row under no-wait 2PL: the loser's aborts
  // must be attributed (mostly kLockConflict) and the taxonomy must sum to
  // txn_aborts exactly.
  NvmDevice dev(256ul * 1024 * 1024);
  Engine engine(&dev, EngineConfig::Falcon(CcScheme::k2pl), 2);
  const TableId t = MakeTable(engine);
  ASSERT_EQ(InsertRow(engine.worker(0), t, 1, 1), Status::kOk);

  Worker& w0 = engine.worker(0);
  Worker& w1 = engine.worker(1);
  const uint64_t v = 9;
  // w0 holds a write lock on key 1 across w1's attempt.
  Txn holder = w0.Begin();
  ASSERT_EQ(holder.UpdatePartial(t, 1, 0, 8, &v), Status::kOk);
  {
    Txn loser = w1.Begin();
    EXPECT_EQ(loser.UpdatePartial(t, 1, 0, 8, &v), Status::kAborted);
  }
  ASSERT_EQ(holder.Commit(), Status::kOk);

  const MetricsSnapshot s = engine.SnapshotMetrics();
  EXPECT_GE(s.aborts_lock_conflict, 1u);
  EXPECT_EQ(s.aborts_user + s.aborts_lock_conflict + s.aborts_ts_order +
                s.aborts_occ_validation + s.aborts_log_overflow + s.aborts_other,
            s.txn_aborts);
}

TEST(AbortTaxonomy, OccValidationConflictAttributed) {
  // Classic OCC write-write race: both transactions observe the tuple, one
  // commits, the other fails commit-phase validation.
  NvmDevice dev(256ul * 1024 * 1024);
  Engine engine(&dev, EngineConfig::Falcon(CcScheme::kOcc), 2);
  const TableId t = MakeTable(engine);
  ASSERT_EQ(InsertRow(engine.worker(0), t, 1, 1), Status::kOk);

  const uint64_t v = 5;
  Txn a = engine.worker(0).Begin();
  Txn b = engine.worker(1).Begin();
  ASSERT_EQ(a.UpdatePartial(t, 1, 0, 8, &v), Status::kOk);
  ASSERT_EQ(b.UpdatePartial(t, 1, 0, 8, &v), Status::kOk);
  ASSERT_EQ(a.Commit(), Status::kOk);
  EXPECT_EQ(b.Commit(), Status::kAborted);

  const MetricsSnapshot s = engine.SnapshotMetrics();
  EXPECT_EQ(s.aborts_occ_validation, 1u);
  EXPECT_EQ(s.txn_aborts, 1u);
}

TEST(AbortTaxonomy, LogOverflowAttributed) {
  // A write set larger than one log slot must be refused by LogWindow::Append
  // and surface as kNoSpace + an aborts_log_overflow tick.
  NvmDevice dev(256ul * 1024 * 1024);
  EngineConfig config = EngineConfig::Falcon(CcScheme::kOcc);
  config.log_slot_bytes = 4096;
  Engine engine(&dev, config, 1);
  SchemaBuilder schema("wide");
  schema.AddU64();
  schema.AddColumn(8192 - 8);  // one full-tuple update cannot fit a 4KB slot
  const TableId t = engine.CreateTable(schema, IndexKind::kHash);
  Worker& w = engine.worker(0);

  std::vector<std::byte> row(8192, std::byte{1});
  {
    // Insert commits via the out-of-band path only if it fits; an 8KB redo
    // payload in a 4KB slot must overflow either at insert or update time.
    Txn txn = w.Begin();
    const Status insert_status = txn.Insert(t, 1, row.data());
    if (insert_status == Status::kOk) {
      (void)txn.Commit();
      Txn upd = w.Begin();
      EXPECT_EQ(upd.UpdateFull(t, 1, row.data()), Status::kNoSpace);
    } else {
      EXPECT_EQ(insert_status, Status::kNoSpace);
    }
  }
  const MetricsSnapshot s = engine.SnapshotMetrics();
  EXPECT_GE(s.aborts_log_overflow, 1u);
  EXPECT_GE(s.log_append_overflows, 1u);
}

// --- AggregateStats regression (satellite: WorkerStats::sim_ns removed) -----

TEST(AggregateStats, SumsWorkerCountersAndClockLivesInSnapshot) {
  NvmDevice dev(256ul * 1024 * 1024);
  Engine engine(&dev, EngineConfig::Falcon(CcScheme::kOcc), 2);
  const TableId t = MakeTable(engine);
  ASSERT_EQ(InsertRow(engine.worker(0), t, 1, 1), Status::kOk);
  ASSERT_EQ(InsertRow(engine.worker(1), t, 2, 2), Status::kOk);

  const WorkerStats agg = engine.AggregateStats();
  EXPECT_EQ(agg.commits,
            engine.worker(0).stats().commits + engine.worker(1).stats().commits);
  EXPECT_EQ(agg.writes,
            engine.worker(0).stats().writes + engine.worker(1).stats().writes);

  // Simulated time is not a WorkerStats field any more (the old sim_ns was
  // dead weight — never populated); the clock is reported by the snapshot.
  const MetricsSnapshot s = engine.SnapshotMetrics();
  const uint64_t c0 = engine.worker(0).ctx().sim_ns();
  const uint64_t c1 = engine.worker(1).ctx().sim_ns();
  EXPECT_EQ(s.sim_ns_total, c0 + c1);
  EXPECT_EQ(s.sim_ns_max, std::max(c0, c1));
  EXPECT_GT(s.sim_ns_max, 0u);
}

// --- Phase breakdown --------------------------------------------------------

TEST(PhaseBreakdown, CommitPhasesAccountedAndBoundedByClock) {
  NvmDevice dev(256ul * 1024 * 1024);
  Engine engine(&dev, EngineConfig::Falcon(CcScheme::kOcc), 1);
  const TableId t = MakeTable(engine);
  Worker& w = engine.worker(0);
  for (uint64_t k = 0; k < 64; ++k) {
    ASSERT_EQ(InsertRow(w, t, k, k), Status::kOk);
  }
  const uint64_t v = 1;
  for (uint64_t k = 0; k < 64; ++k) {
    Txn txn = w.Begin();
    ASSERT_EQ(txn.UpdatePartial(t, k, 0, 8, &v), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }

  const MetricsSnapshot s = engine.SnapshotMetrics();
  EXPECT_GT(s.log_append_ns, 0u);
  EXPECT_GT(s.commit_flush_ns, 0u);
  // Falcon selective-flushes cold tuples at commit.
  EXPECT_GT(s.hint_flush_ns, 0u);
  EXPECT_GT(s.execute_ns, 0u);
  EXPECT_EQ(s.execute_ns + s.log_append_ns + s.commit_flush_ns + s.hint_flush_ns +
                s.version_gc_ns,
            s.sim_ns_total);
}

// --- Version GC audit (satellite: prove the GC actually fires) --------------

TEST(VersionGc, GcRunsAndRecyclesUnderMvcc) {
  NvmDevice dev(256ul * 1024 * 1024);
  EngineConfig config = EngineConfig::Falcon(CcScheme::kMvOcc);
  config.version_gc_threshold = 8;  // recycle promptly so the test sees it
  Engine engine(&dev, config, 1);
  const TableId t = MakeTable(engine);
  Worker& w = engine.worker(0);
  ASSERT_EQ(InsertRow(w, t, 1, 1), Status::kOk);

  const uint64_t v = 3;
  for (int i = 0; i < 256; ++i) {
    Txn txn = w.Begin();
    ASSERT_EQ(txn.UpdatePartial(t, 1, 0, 8, &v), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }

  const MetricsSnapshot s = engine.SnapshotMetrics();
  EXPECT_GT(s.versions_allocated, 0u);
  EXPECT_GT(s.version_gc_runs, 0u);
  EXPECT_GT(s.versions_recycled, 0u);
  // Prompt GC keeps the queue near the threshold, not growing without bound.
  EXPECT_LE(s.versions_queued, 2 * config.version_gc_threshold);
  EXPECT_LE(s.versions_recycled, s.versions_allocated);
}

// --- D1 acceptance: source-attributed device traffic ------------------------

// Runs `updates` single-row-update transactions and returns the metrics
// snapshot after draining the XPBuffer. Deliberately does NOT force cache
// writeback: under eADR the persistent cache's content is durable, and
// force-evicting it is exactly what would fake log media traffic.
MetricsSnapshot RunUpdatesAndDrain(const EngineConfig& config, int updates) {
  NvmDevice dev(512ul * 1024 * 1024);
  Engine engine(&dev, config, 1);
  const TableId t = MakeTable(engine);
  Worker& w = engine.worker(0);
  for (uint64_t k = 0; k < 32; ++k) {
    EXPECT_EQ(InsertRow(w, t, k, k), Status::kOk);
  }
  const uint64_t v = 7;
  for (int i = 0; i < updates; ++i) {
    Txn txn = w.Begin();
    EXPECT_EQ(txn.UpdatePartial(t, static_cast<uint64_t>(i) % 32, 0, 8, &v), Status::kOk);
    EXPECT_EQ(txn.Commit(), Status::kOk);
  }
  dev.DrainAll();
  return engine.SnapshotMetrics();
}

TEST(RegionAttribution, FalconSmallWindowWritesZeroLogBytesToMedia) {
  // The paper's D1 claim, asserted from the source-attributed counters: the
  // 48KB per-thread log window stays resident in the (persistent) cache, so
  // logging causes zero NVM media writes — while a conventional flushed log
  // pushes every appended line to the media.
  const MetricsSnapshot falcon =
      RunUpdatesAndDrain(EngineConfig::Falcon(CcScheme::kOcc), 512);
  const MetricsSnapshot inp = RunUpdatesAndDrain(EngineConfig::Inp(CcScheme::kOcc), 512);

  const size_t log_region = static_cast<size_t>(kRegionLog);
  ASSERT_GT(falcon.log_appends, 0u);  // the log was exercised...
  EXPECT_EQ(falcon.device_region_media_writes[log_region], 0u)
      << "eADR small-window logging must not reach the media";
  EXPECT_GT(inp.device_region_media_writes[log_region], 0u)
      << "a flushed NVM log must reach the media";
  // Both engines do write tuple data to media (flush policies reach the heap).
  EXPECT_GT(inp.device_region_media_writes[static_cast<size_t>(kRegionTupleHeap)], 0u);
}

TEST(RegionAttribution, RegionTotalsAddUpToDeviceTotals) {
  const MetricsSnapshot s = RunUpdatesAndDrain(EngineConfig::Inp(CcScheme::kOcc), 256);
  uint64_t line_sum = 0;
  uint64_t media_sum = 0;
  for (size_t r = 0; r < kMediaRegionCount; ++r) {
    line_sum += s.device_region_line_writes[r];
    media_sum += s.device_region_media_writes[r];
  }
  EXPECT_EQ(line_sum, s.device_line_writes);
  EXPECT_EQ(media_sum, s.device_media_writes);
  // Traffic is attributed, not dumped into "other".
  EXPECT_GT(s.device_region_line_writes[static_cast<size_t>(kRegionLog)] +
                s.device_region_line_writes[static_cast<size_t>(kRegionTupleHeap)] +
                s.device_region_line_writes[static_cast<size_t>(kRegionIndex)],
            0u);
}

// --- Log-window occupancy counters ------------------------------------------

TEST(LogWindowMetrics, WrapsAndOccupancyReported) {
  NvmDevice dev(256ul * 1024 * 1024);
  Engine engine(&dev, EngineConfig::Falcon(CcScheme::kOcc), 1);
  const TableId t = MakeTable(engine);
  Worker& w = engine.worker(0);
  ASSERT_EQ(InsertRow(w, t, 1, 1), Status::kOk);
  const uint64_t v = 2;
  // More committed writers than slots forces the cursor to wrap.
  for (int i = 0; i < 16; ++i) {
    Txn txn = w.Begin();
    ASSERT_EQ(txn.UpdatePartial(t, 1, 0, 8, &v), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  const MetricsSnapshot s = engine.SnapshotMetrics();
  EXPECT_GE(s.log_slots_opened, 16u);
  EXPECT_GT(s.log_wraps, 0u);
  EXPECT_GT(s.log_bytes_appended, 0u);
  EXPECT_GT(s.log_payload_high_water, 0u);
  // Quiescent engine: every slot is free again.
  EXPECT_EQ(s.log_free_slots, engine.config().log_window_slots);
}

// --- Hot-tuple counters through the engine ----------------------------------

TEST(HotTupleMetrics, SelectiveFlushPopulatesHitMissCounters) {
  NvmDevice dev(256ul * 1024 * 1024);
  Engine engine(&dev, EngineConfig::Falcon(CcScheme::kOcc), 1);
  const TableId t = MakeTable(engine);
  Worker& w = engine.worker(0);
  ASSERT_EQ(InsertRow(w, t, 1, 1), Status::kOk);
  const uint64_t v = 4;
  for (int i = 0; i < 8; ++i) {
    Txn txn = w.Begin();
    ASSERT_EQ(txn.UpdatePartial(t, 1, 0, 8, &v), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  const MetricsSnapshot s = engine.SnapshotMetrics();
  // First committed update misses (tuple cold, gets cached); later ones hit.
  EXPECT_GE(s.hot_misses, 1u);
  EXPECT_GE(s.hot_hits, 1u);
  EXPECT_GE(s.hot_inserts, 1u);
  EXPECT_EQ(s.hot_size, 1u);
  EXPECT_EQ(s.hot_capacity, engine.config().hot_tuple_capacity);
}

}  // namespace
}  // namespace falcon
