// Abort-accounting invariants, swept across all six CC schemes and batch
// sizes {1, 4, 8}:
//
//   * the per-reason abort counters (aborts_user, aborts_lock_conflict,
//     aborts_ts_order, aborts_occ_validation, aborts_log_overflow,
//     aborts_other) partition txn_aborts — their sum matches exactly, never
//     over- or under-attributing an abort;
//   * txn_aborts >= attempt_aborts — the engine aborts at least once per
//     failed attempt the bench loop observed;
//   * the swept workloads genuinely abort (a vacuously-true invariant over
//     an abort-free run proves nothing).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/batch.h"
#include "src/workload/bench_runner.h"

namespace falcon {
namespace {

constexpr CcScheme kAllSchemes[] = {CcScheme::k2pl,   CcScheme::kTo,   CcScheme::kOcc,
                                    CcScheme::kMv2pl, CcScheme::kMvTo, CcScheme::kMvOcc};
constexpr uint32_t kBatchSizes[] = {1, 4, 8};
constexpr uint32_t kValueColumn = 1;

uint64_t SumAbortReasons(const MetricsSnapshot& m) {
  return m.aborts_user + m.aborts_lock_conflict + m.aborts_ts_order +
         m.aborts_occ_validation + m.aborts_log_overflow + m.aborts_other;
}

void CheckInvariants(const BenchResult& r, std::string_view where) {
  EXPECT_EQ(SumAbortReasons(r.metrics), r.metrics.txn_aborts)
      << where << ": per-reason abort counters must partition txn_aborts";
  EXPECT_EQ(r.txn_aborts, r.metrics.txn_aborts)
      << where << ": BenchResult and the metrics window disagree";
  EXPECT_GE(r.txn_aborts, r.attempt_aborts)
      << where << ": a failed attempt without an engine abort is impossible";
  EXPECT_GT(r.txn_aborts, 0u)
      << where << ": workload never aborted — the sweep is vacuous";
}

struct Fixture {
  std::unique_ptr<NvmDevice> device;
  std::unique_ptr<Engine> engine;
  TableId table = kInvalidTable;

  static Fixture Create(CcScheme cc, uint32_t workers, uint32_t batch_size,
                        uint64_t preload_keys) {
    Fixture f;
    f.device = std::make_unique<NvmDevice>(256ull << 20);
    EngineConfig config = EngineConfig::Falcon(cc);
    config.batch_size = batch_size;
    f.engine = std::make_unique<Engine>(f.device.get(), config, workers);
    SchemaBuilder schema("acct");
    schema.AddU64();  // column 0: key copy
    schema.AddU64();  // column 1: value
    f.table = f.engine->CreateTable(schema, IndexKind::kHash);
    Worker& w = f.engine->worker(0);
    for (uint64_t k = 0; k < preload_keys; ++k) {
      Txn txn = w.Begin();
      const uint64_t row[2] = {k, k * 100};
      EXPECT_EQ(txn.Insert(f.table, k, row), Status::kOk);
      EXPECT_EQ(txn.Commit(), Status::kOk);
    }
    return f;
  }
};

// Serial path: two workers hammer a four-key set (CC-induced aborts under
// every scheme) and every fifth transaction gives up voluntarily
// (aborts_user), so the partition always has at least one non-zero bucket.
TEST(AbortAccounting, SerialPartitionHoldsAcrossSchemes) {
  for (const CcScheme cc : kAllSchemes) {
    SCOPED_TRACE(CcSchemeName(cc));
    Fixture f = Fixture::Create(cc, /*workers=*/2, /*batch_size=*/1,
                                /*preload_keys=*/4);
    const BenchResult r =
        RunBench(*f.engine, 2, 300, [&](Worker& w, uint32_t t, uint64_t i) {
          Txn txn = w.Begin();
          const uint64_t v = t * 1000 + i;
          if (txn.UpdateColumn(f.table, i % 4, kValueColumn, &v) != Status::kOk) {
            txn.Abort();
            return false;
          }
          if (i % 5 == 4) {
            txn.Abort();  // simulated application-level give-up
            return false;
          }
          return txn.Commit() == Status::kOk;
        });
    CheckInvariants(r, CcSchemeName(cc));
    EXPECT_GT(r.metrics.aborts_user, 0u)
        << "the voluntary give-ups must land in aborts_user";
    EXPECT_GE(r.attempt_aborts, r.metrics.aborts_user)
        << "every voluntary give-up is also a failed attempt";
  }
}

// Batched frame: reads the one shared key, yields, updates it, yields, then
// commits — the read makes sibling collisions visible to every scheme,
// including OCC, whose validation would wave a blind write through. Every
// fourth frame gives up voluntarily instead of committing. Single attempt —
// a CC abort resolves the frame as aborted (~0).
class MixFrame final : public TxnFrame {
 public:
  MixFrame(TableId table, uint64_t key, uint64_t value, bool user_abort)
      : table_(table), key_(key), value_(value), user_abort_(user_abort) {}

  bool Step(Worker& worker) override {
    if (!has_txn()) {
      BeginTxn(worker);
      stage_ = 0;
    }
    Status s = Status::kOk;
    switch (stage_) {
      case 0: {
        uint64_t got = 0;
        s = txn().ReadColumn(table_, key_, kValueColumn, &got);
        break;
      }
      case 1:
        s = txn().UpdateColumn(table_, key_, kValueColumn, &value_);
        break;
      default: {
        if (user_abort_) {
          txn().Abort();
          EndTxn();
          set_result(~0);
          return true;
        }
        const Status cs = txn().Commit();
        EndTxn();
        set_result(cs == Status::kOk ? 0 : ~0);
        return true;
      }
    }
    if (s != Status::kOk) {
      if (has_txn()) {
        txn().Abort();
        EndTxn();
      }
      set_result(~0);
      return true;
    }
    ++stage_;
    return false;  // yield: siblings run between update and commit
  }

 private:
  TableId table_;
  uint64_t key_;
  uint64_t value_;
  bool user_abort_;
  int stage_ = 0;
};

class MixFrameSource final : public FrameSource {
 public:
  MixFrameSource(TableId table, uint64_t frames) : table_(table), frames_(frames) {}

  TxnFrame* Next(Worker&) override {
    if (issued_ >= frames_) {
      return nullptr;
    }
    const uint64_t i = issued_++;
    owned_.push_back(
        std::make_unique<MixFrame>(table_, /*key=*/0, 5000 + i, i % 4 == 3));
    return owned_.back().get();
  }

 private:
  TableId table_;
  uint64_t frames_;
  uint64_t issued_ = 0;
  std::vector<std::unique_ptr<MixFrame>> owned_;
};

// Batched path (Worker::RunBatch): the same partition and ordering
// invariants hold for batch sizes {1, 4, 8} under every scheme — including
// batch 1, where only the voluntary give-ups abort.
TEST(AbortAccounting, BatchedPartitionHoldsAcrossSchemesAndBatchSizes) {
  for (const CcScheme cc : kAllSchemes) {
    for (const uint32_t batch : kBatchSizes) {
      const std::string where =
          std::string(CcSchemeName(cc)) + " batch=" + std::to_string(batch);
      SCOPED_TRACE(where);
      Fixture f = Fixture::Create(cc, /*workers=*/1, batch, /*preload_keys=*/1);
      const BenchResult r = RunBenchBatched(
          *f.engine, /*threads=*/1, batch, [&](Worker&, uint32_t)
              -> std::unique_ptr<FrameSource> {
            return std::make_unique<MixFrameSource>(f.table, /*frames=*/64);
          });
      EXPECT_EQ(r.commits + r.attempt_aborts, 64u)
          << where << ": every frame must resolve exactly once";
      CheckInvariants(r, where);
      EXPECT_GT(r.metrics.aborts_user, 0u) << where;
      if (batch > 1) {
        EXPECT_GT(r.metrics.txn_aborts, r.metrics.aborts_user)
            << where << ": sibling conflicts on the shared key never "
            << "produced a CC abort";
      }
    }
  }
}

}  // namespace
}  // namespace falcon
