// Concurrency correctness: serializability invariants under multi-threaded
// contention for every CC scheme, MVCC snapshot isolation, and GC behavior.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/core/engine.h"
#include "tests/harness/test_seed.h"

namespace falcon {
namespace {

struct Param {
  const char* label;
  EngineConfig (*make)(CcScheme);
  CcScheme cc;
};

EngineConfig MakeFalcon(CcScheme cc) { return EngineConfig::Falcon(cc); }
EngineConfig MakeInp(CcScheme cc) { return EngineConfig::Inp(cc); }
EngineConfig MakeOutp(CcScheme cc) { return EngineConfig::Outp(cc); }
EngineConfig MakeZenS(CcScheme cc) { return EngineConfig::ZenS(cc); }

class ConcurrentEngineTest : public ::testing::TestWithParam<Param> {
 protected:
  static constexpr int kThreads = 4;
  static constexpr uint64_t kAccounts = 64;
  static constexpr uint64_t kInitialBalance = 1000;

  ConcurrentEngineTest() : dev_(1ul << 30) {
    engine_ = std::make_unique<Engine>(&dev_, GetParam().make(GetParam().cc), kThreads);
    SchemaBuilder schema("bank");
    schema.AddU64();  // balance
    table_ = engine_->CreateTable(schema, IndexKind::kHash);
    Worker& w = engine_->worker(0);
    for (uint64_t k = 0; k < kAccounts; ++k) {
      Txn txn = w.Begin();
      EXPECT_EQ(txn.Insert(table_, k, &kInitialBalance), Status::kOk);
      EXPECT_EQ(txn.Commit(), Status::kOk);
    }
  }

  uint64_t TotalBalance() {
    Worker& w = engine_->worker(0);
    for (;;) {
      Txn txn = w.Begin();
      uint64_t total = 0;
      bool ok = true;
      for (uint64_t k = 0; k < kAccounts; ++k) {
        uint64_t balance = 0;
        if (txn.ReadColumn(table_, k, 0, &balance) != Status::kOk) {
          ok = false;
          break;
        }
        total += balance;
      }
      if (ok && txn.Commit() == Status::kOk) {
        return total;
      }
    }
  }

  NvmDevice dev_;
  std::unique_ptr<Engine> engine_;
  TableId table_ = 0;
};

TEST_P(ConcurrentEngineTest, TransfersPreserveTotalBalance) {
  // Classic serializability smoke: random transfers between accounts; the
  // sum of balances is invariant under any serializable execution.
  constexpr int kTransfersPerThread = 3000;
  const uint64_t seed = test::TestSeed(7);
  FALCON_SCOPED_SEED(seed);
  std::vector<std::thread> threads;
  std::atomic<uint64_t> committed{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Worker& w = engine_->worker(static_cast<uint32_t>(t));
      Rng rng(seed + static_cast<uint64_t>(t) * 131);
      for (int i = 0; i < kTransfersPerThread; ++i) {
        const uint64_t from = rng.NextBounded(kAccounts);
        uint64_t to = rng.NextBounded(kAccounts);
        if (to == from) {
          to = (to + 1) % kAccounts;
        }
        const uint64_t amount = rng.NextBounded(10) + 1;

        Txn txn = w.Begin();
        uint64_t from_balance = 0;
        uint64_t to_balance = 0;
        if (txn.ReadColumn(table_, from, 0, &from_balance) != Status::kOk ||
            txn.ReadColumn(table_, to, 0, &to_balance) != Status::kOk) {
          continue;  // aborted by CC; Txn dtor rolled back
        }
        if (from_balance < amount) {
          txn.Abort();
          continue;
        }
        const uint64_t new_from = from_balance - amount;
        const uint64_t new_to = to_balance + amount;
        if (txn.UpdateColumn(table_, from, 0, &new_from) != Status::kOk ||
            txn.UpdateColumn(table_, to, 0, &new_to) != Status::kOk) {
          continue;
        }
        if (txn.Commit() == Status::kOk) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_GT(committed.load(), 100u) << "contention must not starve all progress";
  EXPECT_EQ(TotalBalance(), kAccounts * kInitialBalance)
      << "lost/duplicated money => serializability violation";
}

TEST_P(ConcurrentEngineTest, NoLostUpdatesOnSingleHotTuple) {
  // Every thread increments one hot counter; committed increments must all
  // be visible (lost updates are the classic non-serializable anomaly).
  constexpr int kIncrementsPerThread = 2000;
  std::vector<std::thread> threads;
  std::atomic<uint64_t> committed{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Worker& w = engine_->worker(static_cast<uint32_t>(t));
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        Txn txn = w.Begin();
        uint64_t value = 0;
        if (txn.ReadColumn(table_, 0, 0, &value) != Status::kOk) {
          continue;
        }
        // The paper requires idempotent redo entries: record the new value,
        // not the increment (§5.2.2).
        const uint64_t next = value + 1;
        if (txn.UpdateColumn(table_, 0, 0, &next) != Status::kOk) {
          continue;
        }
        if (txn.Commit() == Status::kOk) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  Worker& w = engine_->worker(0);
  Txn txn = w.Begin();
  uint64_t final_value = 0;
  ASSERT_EQ(txn.ReadColumn(table_, 0, 0, &final_value), Status::kOk);
  txn.Commit();
  EXPECT_EQ(final_value, kInitialBalance + committed.load());
}

TEST_P(ConcurrentEngineTest, ConcurrentInsertsOfDistinctKeys) {
  constexpr uint64_t kPerThread = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Worker& w = engine_->worker(static_cast<uint32_t>(t));
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t key = 1000 + static_cast<uint64_t>(t) * kPerThread + i;
        for (;;) {
          Txn txn = w.Begin();
          const uint64_t v = key;
          const Status s = txn.Insert(table_, key, &v);
          if (s == Status::kOk && txn.Commit() == Status::kOk) {
            break;
          }
          if (s == Status::kDuplicate) {
            ADD_FAILURE() << "key " << key << " duplicated";
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  Worker& w = engine_->worker(0);
  const uint64_t seed = test::TestSeed(3);
  FALCON_SCOPED_SEED(seed);
  Rng rng(seed);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t key = 1000 + rng.NextBounded(kThreads * kPerThread);
    Txn txn = w.Begin();
    uint64_t got = 0;
    ASSERT_EQ(txn.ReadColumn(table_, key, 0, &got), Status::kOk) << key;
    EXPECT_EQ(got, key);
    txn.Commit();
  }
}

TEST_P(ConcurrentEngineTest, ConcurrentInsertsOfSameKeyOneWinner) {
  constexpr uint64_t kContestedKeys = 200;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Worker& w = engine_->worker(static_cast<uint32_t>(t));
      for (uint64_t k = 0; k < kContestedKeys; ++k) {
        Txn txn = w.Begin();
        const uint64_t v = static_cast<uint64_t>(t);
        const Status s = txn.Insert(table_, 50000 + k, &v);
        if (s == Status::kOk && txn.Commit() == Status::kOk) {
          winners.fetch_add(1, std::memory_order_relaxed);
        } else if (s == Status::kOk) {
          // commit aborted; loser
        } else {
          txn.Abort();
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(winners.load(), static_cast<int>(kContestedKeys))
      << "exactly one insert per contested key must win";
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, ConcurrentEngineTest,
    ::testing::Values(Param{"Falcon_OCC", MakeFalcon, CcScheme::kOcc},
                      Param{"Falcon_2PL", MakeFalcon, CcScheme::k2pl},
                      Param{"Falcon_TO", MakeFalcon, CcScheme::kTo},
                      Param{"Falcon_MVOCC", MakeFalcon, CcScheme::kMvOcc},
                      Param{"Falcon_MV2PL", MakeFalcon, CcScheme::kMv2pl},
                      Param{"Falcon_MVTO", MakeFalcon, CcScheme::kMvTo},
                      Param{"Inp_OCC", MakeInp, CcScheme::kOcc},
                      Param{"Outp_OCC", MakeOutp, CcScheme::kOcc},
                      Param{"Outp_2PL", MakeOutp, CcScheme::k2pl},
                      Param{"ZenS_OCC", MakeZenS, CcScheme::kOcc},
                      Param{"ZenS_MVOCC", MakeZenS, CcScheme::kMvOcc}),
    [](const auto& info) { return std::string(info.param.label); });

// ---- MVCC snapshot isolation ------------------------------------------------

class MvccSnapshotTest : public ::testing::TestWithParam<Param> {
 protected:
  MvccSnapshotTest() : dev_(1ul << 30) {
    engine_ = std::make_unique<Engine>(&dev_, GetParam().make(GetParam().cc), 4);
    SchemaBuilder schema("t");
    schema.AddU64();
    schema.AddU64();
    table_ = engine_->CreateTable(schema, IndexKind::kHash);
  }

  NvmDevice dev_;
  std::unique_ptr<Engine> engine_;
  TableId table_ = 0;
};

TEST_P(MvccSnapshotTest, ReadOnlyTxnSeesConsistentPair) {
  // Writers keep the two columns equal in every committed state; read-only
  // snapshot readers must never observe a mixed pair, and must never block.
  Worker& w0 = engine_->worker(0);
  {
    Txn txn = w0.Begin();
    const uint64_t init[2] = {0, 0};
    ASSERT_EQ(txn.Insert(table_, 1, init), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Worker& w = engine_->worker(1);
    for (uint64_t round = 1; !stop.load(std::memory_order_relaxed); ++round) {
      Txn txn = w.Begin();
      const uint64_t pair[2] = {round, round};
      if (txn.UpdateFull(table_, 1, pair) == Status::kOk) {
        txn.Commit();
      }
    }
  });

  Worker& reader_worker = engine_->worker(2);
  int successful_reads = 0;
  for (int i = 0; i < 20000; ++i) {
    Txn ro = reader_worker.Begin(/*read_only=*/true);
    uint64_t pair[2] = {1, 2};
    const Status s = ro.Read(table_, 1, pair);
    if (s == Status::kOk) {
      ASSERT_EQ(pair[0], pair[1]) << "torn snapshot read";
      ++successful_reads;
    }
    ro.Commit();
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(successful_reads, 19000) << "snapshot reads must be (nearly) non-blocking";
}

TEST_P(MvccSnapshotTest, VersionChainServesOldSnapshot) {
  Worker& w = engine_->worker(0);
  {
    Txn txn = w.Begin();
    const uint64_t init[2] = {1, 1};
    ASSERT_EQ(txn.Insert(table_, 5, init), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  // Open the snapshot BEFORE the update commits.
  Txn ro = w.Begin(/*read_only=*/true);
  {
    Worker& w1 = engine_->worker(1);
    Txn txn = w1.Begin();
    const uint64_t next[2] = {2, 2};
    ASSERT_EQ(txn.UpdateFull(table_, 5, next), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  uint64_t pair[2] = {0, 0};
  ASSERT_EQ(ro.Read(table_, 5, pair), Status::kOk);
  EXPECT_EQ(pair[0], 1u) << "snapshot must see the pre-update version";
  ro.Commit();

  // A fresh transaction sees the new value.
  Txn txn = w.Begin(/*read_only=*/true);
  ASSERT_EQ(txn.Read(table_, 5, pair), Status::kOk);
  EXPECT_EQ(pair[0], 2u);
  txn.Commit();
}

TEST_P(MvccSnapshotTest, SnapshotMissesLaterInsertAndDelete) {
  Worker& w = engine_->worker(0);
  {
    Txn txn = w.Begin();
    const uint64_t init[2] = {7, 7};
    ASSERT_EQ(txn.Insert(table_, 10, init), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  Txn ro = w.Begin(/*read_only=*/true);
  {
    Worker& w1 = engine_->worker(1);
    Txn txn = w1.Begin();
    const uint64_t init[2] = {8, 8};
    ASSERT_EQ(txn.Insert(table_, 11, init), Status::kOk);
    ASSERT_EQ(txn.Delete(table_, 10), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  uint64_t pair[2];
  // Key 11 was born after the snapshot: invisible.
  EXPECT_EQ(ro.Read(table_, 11, pair), Status::kNotFound);
  // Key 10 was deleted after the snapshot: still visible.
  EXPECT_EQ(ro.Read(table_, 10, pair), Status::kOk);
  EXPECT_EQ(pair[0], 7u);
  ro.Commit();

  Txn now = w.Begin(/*read_only=*/true);
  EXPECT_EQ(now.Read(table_, 10, pair), Status::kNotFound);
  EXPECT_EQ(now.Read(table_, 11, pair), Status::kOk);
  now.Commit();
}

INSTANTIATE_TEST_SUITE_P(
    MvSchemes, MvccSnapshotTest,
    ::testing::Values(Param{"Falcon_MVOCC", MakeFalcon, CcScheme::kMvOcc},
                      Param{"Falcon_MV2PL", MakeFalcon, CcScheme::kMv2pl},
                      Param{"Falcon_MVTO", MakeFalcon, CcScheme::kMvTo},
                      Param{"Outp_MVOCC", MakeOutp, CcScheme::kMvOcc},
                      Param{"ZenS_MVOCC", MakeZenS, CcScheme::kMvOcc}),
    [](const auto& info) { return std::string(info.param.label); });

}  // namespace
}  // namespace falcon
