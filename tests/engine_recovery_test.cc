// Crash-recovery tests (paper §5.3): transactions are killed at injected
// crash points inside Commit(), the engine is reopened over the surviving
// arena (exactly the persistent image under eADR), and durability/atomicity
// are verified. Also covers recovery-path differences: Falcon's
// log-window-sized replay vs ZenS's full heap scan.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "src/core/engine.h"

namespace falcon {
namespace {

struct Param {
  const char* label;
  EngineConfig (*make)(CcScheme);
  CcScheme cc;
};

EngineConfig MakeFalcon(CcScheme cc) { return EngineConfig::Falcon(cc); }
EngineConfig MakeFalconDram(CcScheme cc) { return EngineConfig::FalconDramIndex(cc); }
EngineConfig MakeInp(CcScheme cc) { return EngineConfig::Inp(cc); }
EngineConfig MakeOutp(CcScheme cc) { return EngineConfig::Outp(cc); }
EngineConfig MakeZenS(CcScheme cc) { return EngineConfig::ZenS(cc); }

class RecoveryTest : public ::testing::TestWithParam<Param> {
 protected:
  static constexpr uint64_t kRows = 200;
  static constexpr int kWorkers = 2;

  RecoveryTest() : dev_(512ul * 1024 * 1024) { Open(); }

  void Open() {
    engine_ = std::make_unique<Engine>(&dev_, GetParam().make(GetParam().cc), kWorkers);
    if (!engine_->recovery_report().recovered) {
      SchemaBuilder schema("t");
      schema.AddU64();
      schema.AddU64();
      table_ = engine_->CreateTable(schema, IndexKind::kHash);
      Worker& w = engine_->worker(0);
      for (uint64_t k = 0; k < kRows; ++k) {
        Txn txn = w.Begin();
        const uint64_t row[2] = {k, 1000};
        ASSERT_EQ(txn.Insert(table_, k, row), Status::kOk);
        ASSERT_EQ(txn.Commit(), Status::kOk);
      }
    } else {
      table_ = *engine_->FindTableId("t");
    }
  }

  // Simulated power failure + restart: drop the engine (the arena lives in
  // the device, i.e. survives) and run recovery on re-open.
  void CrashAndRecover() {
    engine_.reset();
    Open();
    EXPECT_TRUE(engine_->recovery_report().recovered);
  }

  uint64_t ReadValue(uint64_t key) {
    Worker& w = engine_->worker(0);
    for (;;) {
      Txn txn = w.Begin();
      uint64_t value = 0;
      const Status s = txn.ReadColumn(table_, key, 1, &value);
      if (s == Status::kNotFound) {
        return UINT64_MAX;
      }
      if (s == Status::kOk && txn.Commit() == Status::kOk) {
        return value;
      }
    }
  }

  // Runs a txn updating columns of `keys` to `value`, crashing at `point`.
  // Returns true if the crash fired.
  bool UpdateCrashingAt(CrashPoint point, std::initializer_list<uint64_t> keys,
                        uint64_t value) {
    engine_->ArmCrashPoint(point);
    Worker& w = engine_->worker(0);
    try {
      Txn txn = w.Begin();
      for (const uint64_t key : keys) {
        if (txn.UpdateColumn(table_, key, 1, &value) != Status::kOk) {
          return false;
        }
      }
      txn.Commit();
      return false;  // crash did not fire
    } catch (const TxnCrashed& crashed) {
      EXPECT_EQ(crashed.point, point);
      return true;
    }
  }

  NvmDevice dev_;
  std::unique_ptr<Engine> engine_;
  TableId table_ = 0;
};

TEST_P(RecoveryTest, CleanRestartPreservesAllData) {
  CrashAndRecover();
  for (uint64_t k = 0; k < kRows; k += 17) {
    EXPECT_EQ(ReadValue(k), 1000u) << k;
  }
}

TEST_P(RecoveryTest, CommittedUpdatesSurviveRestart) {
  Worker& w = engine_->worker(0);
  for (uint64_t k = 0; k < 50; ++k) {
    Txn txn = w.Begin();
    const uint64_t v = 2000 + k;
    ASSERT_EQ(txn.UpdateColumn(table_, k, 1, &v), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  CrashAndRecover();
  for (uint64_t k = 0; k < 50; ++k) {
    EXPECT_EQ(ReadValue(k), 2000 + k);
  }
  EXPECT_EQ(ReadValue(60), 1000u);
}

TEST_P(RecoveryTest, CrashBeforeCommitMarkRollsBack) {
  ASSERT_TRUE(UpdateCrashingAt(CrashPoint::kBeforeCommitMark, {1, 2, 3}, 7777));
  CrashAndRecover();
  // The write set never reached COMMITTED: no tuple may show the update.
  EXPECT_EQ(ReadValue(1), 1000u);
  EXPECT_EQ(ReadValue(2), 1000u);
  EXPECT_EQ(ReadValue(3), 1000u);
  EXPECT_GE(engine_->recovery_report().slots_discarded, 1u);
}

TEST_P(RecoveryTest, CrashAfterCommitMarkReplaysAll) {
  ASSERT_TRUE(UpdateCrashingAt(CrashPoint::kAfterCommitMark, {1, 2, 3}, 8888));
  CrashAndRecover();
  // COMMITTED but unapplied: recovery must replay every update.
  EXPECT_EQ(ReadValue(1), 8888u);
  EXPECT_EQ(ReadValue(2), 8888u);
  EXPECT_EQ(ReadValue(3), 8888u);
}

TEST_P(RecoveryTest, CrashMidApplyCompletesTheTransaction) {
  ASSERT_TRUE(UpdateCrashingAt(CrashPoint::kMidApply, {4, 5, 6}, 9999));
  CrashAndRecover();
  // Some tuples were updated pre-crash, some not: replay is idempotent and
  // must complete the transaction, not halve it.
  EXPECT_EQ(ReadValue(4), 9999u);
  EXPECT_EQ(ReadValue(5), 9999u);
  EXPECT_EQ(ReadValue(6), 9999u);
}

TEST_P(RecoveryTest, CrashAfterApplyKeepsTheTransaction) {
  ASSERT_TRUE(UpdateCrashingAt(CrashPoint::kAfterApply, {7, 8}, 4444));
  CrashAndRecover();
  EXPECT_EQ(ReadValue(7), 4444u);
  EXPECT_EQ(ReadValue(8), 4444u);
}

TEST_P(RecoveryTest, TuplesAreWritableAfterEveryCrashPoint) {
  // Locks/latches left by the crashed transaction must not wedge the tuple.
  for (const CrashPoint point : {CrashPoint::kBeforeCommitMark, CrashPoint::kAfterCommitMark,
                                 CrashPoint::kMidApply, CrashPoint::kAfterApply}) {
    ASSERT_TRUE(UpdateCrashingAt(point, {10, 11}, 1234)) << static_cast<int>(point);
    CrashAndRecover();
    Worker& w = engine_->worker(0);
    Txn txn = w.Begin();
    const uint64_t v = 5555;
    ASSERT_EQ(txn.UpdateColumn(table_, 10, 1, &v), Status::kOk)
        << "tuple wedged after crash point " << static_cast<int>(point);
    ASSERT_EQ(txn.Commit(), Status::kOk);
    EXPECT_EQ(ReadValue(10), 5555u);
  }
}

TEST_P(RecoveryTest, CrashedInsertIsUndoneAndReinsertable) {
  engine_->ArmCrashPoint(CrashPoint::kBeforeCommitMark);
  Worker& w = engine_->worker(0);
  bool crashed = false;
  try {
    Txn txn = w.Begin();
    const uint64_t row[2] = {999, 999};
    ASSERT_EQ(txn.Insert(table_, 5000, row), Status::kOk);
    txn.Commit();
  } catch (const TxnCrashed&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);
  CrashAndRecover();
  EXPECT_EQ(ReadValue(5000), UINT64_MAX) << "uncommitted insert must vanish";
  // And the key is insertable again.
  Worker& w2 = engine_->worker(0);
  Txn txn = w2.Begin();
  const uint64_t row[2] = {1, 42};
  ASSERT_EQ(txn.Insert(table_, 5000, row), Status::kOk);
  ASSERT_EQ(txn.Commit(), Status::kOk);
  EXPECT_EQ(ReadValue(5000), 42u);
}

TEST_P(RecoveryTest, CommittedInsertSurvivesCrashAfterMark) {
  engine_->ArmCrashPoint(CrashPoint::kAfterCommitMark);
  Worker& w = engine_->worker(0);
  bool crashed = false;
  try {
    Txn txn = w.Begin();
    const uint64_t row[2] = {1, 777};
    ASSERT_EQ(txn.Insert(table_, 6000, row), Status::kOk);
    txn.Commit();
  } catch (const TxnCrashed&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);
  CrashAndRecover();
  EXPECT_EQ(ReadValue(6000), 777u) << "committed insert must be recovered";
}

TEST_P(RecoveryTest, CommittedDeleteSurvivesCrash) {
  {
    Worker& w = engine_->worker(0);
    Txn txn = w.Begin();
    ASSERT_EQ(txn.Delete(table_, 20), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  CrashAndRecover();
  EXPECT_EQ(ReadValue(20), UINT64_MAX);
  EXPECT_EQ(ReadValue(21), 1000u);
}

TEST_P(RecoveryTest, TidsStayMonotoneAcrossRestart) {
  Worker& w = engine_->worker(0);
  uint64_t last_tid = 0;
  {
    Txn txn = w.Begin();
    last_tid = txn.tid();
    const uint64_t v = 1;
    ASSERT_EQ(txn.UpdateColumn(table_, 0, 1, &v), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  CrashAndRecover();
  Txn txn = engine_->worker(0).Begin();
  EXPECT_GT(txn.tid(), last_tid) << "post-recovery TIDs must exceed pre-crash TIDs (§5.2.1)";
  txn.Commit();
}

TEST_P(RecoveryTest, BackToBackCrashes) {
  for (int round = 0; round < 4; ++round) {
    const auto point = static_cast<CrashPoint>(1 + (round % 4));
    const uint64_t value = 10000 + static_cast<uint64_t>(round);
    const bool fired = UpdateCrashingAt(point, {30, 31}, value);
    ASSERT_TRUE(fired);
    CrashAndRecover();
    const uint64_t got = ReadValue(30);
    if (point == CrashPoint::kBeforeCommitMark) {
      EXPECT_NE(got, value) << "round " << round;
    } else {
      EXPECT_EQ(got, value) << "round " << round;
    }
    EXPECT_EQ(ReadValue(30), ReadValue(31)) << "atomicity across crash, round " << round;
  }
}

TEST_P(RecoveryTest, RecoveryReportIsPopulated) {
  ASSERT_TRUE(UpdateCrashingAt(CrashPoint::kAfterCommitMark, {1}, 1));
  CrashAndRecover();
  const RecoveryReport& report = engine_->recovery_report();
  EXPECT_TRUE(report.recovered);
  EXPECT_GT(report.total_ms, 0.0);
  EXPECT_GE(report.slots_replayed, 1u);
  if (GetParam().make == MakeZenS || GetParam().make == MakeFalconDram) {
    EXPECT_GE(report.tuples_scanned, kRows) << "DRAM-index engines must scan the heap";
  }
  if (GetParam().make == MakeFalcon) {
    EXPECT_EQ(report.tuples_scanned, 0u) << "Falcon must not scan the heap (§5.3)";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, RecoveryTest,
    ::testing::Values(Param{"Falcon_OCC", MakeFalcon, CcScheme::kOcc},
                      Param{"Falcon_2PL", MakeFalcon, CcScheme::k2pl},
                      Param{"Falcon_TO", MakeFalcon, CcScheme::kTo},
                      Param{"Falcon_MVOCC", MakeFalcon, CcScheme::kMvOcc},
                      Param{"FalconDramIndex_OCC", MakeFalconDram, CcScheme::kOcc},
                      Param{"Inp_OCC", MakeInp, CcScheme::kOcc},
                      Param{"Outp_OCC", MakeOutp, CcScheme::kOcc},
                      Param{"ZenS_OCC", MakeZenS, CcScheme::kOcc},
                      Param{"ZenS_MVOCC", MakeZenS, CcScheme::kMvOcc}),
    [](const auto& info) { return std::string(info.param.label); });

TEST(RecoveryScalingTest, FalconReplayIsHeapSizeIndependent) {
  // §6.5: Falcon's recovery work tracks the (tiny) log window, not the heap;
  // ZenS's tracks the heap. Verify the *scaling*, not absolute times.
  for (const uint64_t rows : {1000u, 10000u}) {
    NvmDevice dev(1ul << 30);
    {
      Engine engine(&dev, EngineConfig::Falcon(CcScheme::kOcc), 2);
      SchemaBuilder schema("t");
      schema.AddU64();
      const TableId t = engine.CreateTable(schema, IndexKind::kHash);
      Worker& w = engine.worker(0);
      for (uint64_t k = 0; k < rows; ++k) {
        Txn txn = w.Begin();
        txn.Insert(t, k, &k);
        txn.Commit();
      }
    }
    Engine recovered(&dev, EngineConfig::Falcon(CcScheme::kOcc), 2);
    EXPECT_EQ(recovered.recovery_report().tuples_scanned, 0u);
  }

  // ZenS heap scan grows with the table.
  uint64_t scanned_small = 0;
  uint64_t scanned_large = 0;
  for (const uint64_t rows : {1000u, 10000u}) {
    NvmDevice dev(1ul << 30);
    {
      Engine engine(&dev, EngineConfig::ZenS(CcScheme::kOcc), 2);
      SchemaBuilder schema("t");
      schema.AddU64();
      const TableId t = engine.CreateTable(schema, IndexKind::kHash);
      Worker& w = engine.worker(0);
      for (uint64_t k = 0; k < rows; ++k) {
        Txn txn = w.Begin();
        txn.Insert(t, k, &k);
        txn.Commit();
      }
    }
    Engine recovered(&dev, EngineConfig::ZenS(CcScheme::kOcc), 2);
    (rows == 1000u ? scanned_small : scanned_large) =
        recovered.recovery_report().tuples_scanned;
  }
  EXPECT_GE(scanned_small, 1000u);
  EXPECT_GE(scanned_large, 10000u);
  EXPECT_GT(scanned_large, scanned_small * 5);
}

}  // namespace
}  // namespace falcon
