// Read-own-writes torture test: one transaction piles 50+ partial updates
// onto a single tuple (plus a second tuple as a decoy) and interleaves full
// and column reads, which must be byte-exact against a mirror buffer at every
// step. Exercises the per-tuple write-entry chain replay (OverlayPendingWrites)
// under every CC scheme, in both in-place and out-of-place update modes.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/core/engine.h"

namespace falcon {
namespace {

struct RowParam {
  const char* label;
  EngineConfig (*make)(CcScheme);
  CcScheme cc;
};

EngineConfig MakeInPlace(CcScheme cc) {
  EngineConfig config = EngineConfig::Falcon(cc);
  // 50+ partial updates log ~48B each; the default slot would overflow
  // mid-transaction, so give this stress test a roomy log slot.
  config.log_slot_bytes = 16 * 1024;
  return config;
}

EngineConfig MakeOutOfPlace(CcScheme cc) {
  EngineConfig config = EngineConfig::Outp(cc);
  config.log_slot_bytes = 16 * 1024;
  return config;
}

class ReadOwnWritesTest : public ::testing::TestWithParam<RowParam> {
 protected:
  static constexpr uint32_t kRowBytes = 256;
  static constexpr uint64_t kKey = 42;
  static constexpr uint64_t kDecoyKey = 43;

  ReadOwnWritesTest() : dev_(256ul * 1024 * 1024) {
    engine_ = std::make_unique<Engine>(&dev_, GetParam().make(GetParam().cc),
                                       /*workers=*/2);
    SchemaBuilder schema("blob");
    schema.AddU64();
    schema.AddColumn(kRowBytes - 8);
    table_ = engine_->CreateTable(schema, IndexKind::kHash);
  }

  void SeedRow(uint64_t key, std::byte fill) {
    std::byte row[kRowBytes];
    std::memset(row, static_cast<int>(fill), kRowBytes);
    Worker& w = engine_->worker(0);
    Txn txn = w.Begin();
    ASSERT_EQ(txn.Insert(table_, key, row), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }

  NvmDevice dev_;
  std::unique_ptr<Engine> engine_;
  TableId table_ = 0;
};

TEST_P(ReadOwnWritesTest, FiftyPartialUpdatesReadBackExactly) {
  SeedRow(kKey, std::byte{0x11});
  SeedRow(kDecoyKey, std::byte{0x22});

  std::byte mirror[kRowBytes];
  std::memset(mirror, 0x11, kRowBytes);
  std::byte decoy_mirror[kRowBytes];
  std::memset(decoy_mirror, 0x22, kRowBytes);

  Worker& w = engine_->worker(0);
  Txn txn = w.Begin();

  // 60 8-byte partial updates walking the row with a stride, re-touching the
  // same offsets several times so later chain entries overwrite earlier ones.
  for (uint32_t i = 0; i < 60; ++i) {
    const uint32_t offset = (i * 24) % (kRowBytes - 8);
    uint8_t patch[8];
    for (int b = 0; b < 8; ++b) {
      patch[b] = static_cast<uint8_t>(i * 7 + b);
    }
    ASSERT_EQ(txn.UpdatePartial(table_, kKey, offset, sizeof(patch), patch),
              Status::kOk)
        << "update " << i;
    std::memcpy(mirror + offset, patch, sizeof(patch));

    // Every few updates, poke the decoy tuple so the write set interleaves
    // entries of two tuples; its chain must not bleed into kKey's replay.
    if (i % 8 == 3) {
      uint8_t decoy_patch[4] = {static_cast<uint8_t>(i), 0xde, 0xc0, 0x01};
      const uint32_t decoy_off = (i * 12) % (kRowBytes - 4);
      ASSERT_EQ(txn.UpdatePartial(table_, kDecoyKey, decoy_off,
                                  sizeof(decoy_patch), decoy_patch),
                Status::kOk);
      std::memcpy(decoy_mirror + decoy_off, decoy_patch, sizeof(decoy_patch));
    }

    // Interleaved full read must observe every pending write so far.
    if (i % 5 == 0 || i == 59) {
      std::byte got[kRowBytes];
      ASSERT_EQ(txn.Read(table_, kKey, got), Status::kOk) << "read after " << i;
      ASSERT_EQ(std::memcmp(got, mirror, kRowBytes), 0)
          << "read-own-writes mismatch after update " << i;
    }
  }

  {
    std::byte got[kRowBytes];
    ASSERT_EQ(txn.Read(table_, kDecoyKey, got), Status::kOk);
    ASSERT_EQ(std::memcmp(got, decoy_mirror, kRowBytes), 0)
        << "decoy tuple saw another tuple's chain";
  }

  ASSERT_EQ(txn.Commit(), Status::kOk);

  // Committed state must equal the mirror, read from the other worker.
  Worker& w1 = engine_->worker(1);
  Txn check = w1.Begin();
  std::byte got[kRowBytes];
  ASSERT_EQ(check.Read(table_, kKey, got), Status::kOk);
  EXPECT_EQ(std::memcmp(got, mirror, kRowBytes), 0);
  ASSERT_EQ(check.Read(table_, kDecoyKey, got), Status::kOk);
  EXPECT_EQ(std::memcmp(got, decoy_mirror, kRowBytes), 0);
  ASSERT_EQ(check.Commit(), Status::kOk);
}

TEST_P(ReadOwnWritesTest, AbortDiscardsChainedUpdates) {
  SeedRow(kKey, std::byte{0x5a});

  Worker& w = engine_->worker(0);
  {
    Txn txn = w.Begin();
    for (uint32_t i = 0; i < 50; ++i) {
      const uint64_t val = 0xdead0000 + i;
      ASSERT_EQ(txn.UpdatePartial(table_, kKey, (i % 31) * 8, 8, &val),
                Status::kOk);
    }
    txn.Abort();
  }

  std::byte expect[kRowBytes];
  std::memset(expect, 0x5a, kRowBytes);
  Txn check = w.Begin();
  std::byte got[kRowBytes];
  ASSERT_EQ(check.Read(table_, kKey, got), Status::kOk);
  EXPECT_EQ(std::memcmp(got, expect, kRowBytes), 0);
  ASSERT_EQ(check.Commit(), Status::kOk);
}

std::string ParamName(const ::testing::TestParamInfo<RowParam>& info) {
  return info.param.label;
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, ReadOwnWritesTest,
    ::testing::Values(RowParam{"InPlace_2PL", MakeInPlace, CcScheme::k2pl},
                      RowParam{"InPlace_TO", MakeInPlace, CcScheme::kTo},
                      RowParam{"InPlace_OCC", MakeInPlace, CcScheme::kOcc},
                      RowParam{"OutOfPlace_2PL", MakeOutOfPlace, CcScheme::k2pl},
                      RowParam{"OutOfPlace_TO", MakeOutOfPlace, CcScheme::kTo},
                      RowParam{"OutOfPlace_OCC", MakeOutOfPlace, CcScheme::kOcc}),
    ParamName);

}  // namespace
}  // namespace falcon
