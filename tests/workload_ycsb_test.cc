// YCSB workload driver tests: loading, per-workload op mixes, key
// distributions, and cross-engine integrity under concurrency.

#include <gtest/gtest.h>

#include <thread>

#include "src/workload/ycsb.h"

namespace falcon {
namespace {

class YcsbTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kRecords = 2000;

  YcsbTest() : dev_(1ul << 30) {}

  void Setup(char workload, bool zipfian, EngineConfig config = EngineConfig::Falcon()) {
    engine_ = std::make_unique<Engine>(&dev_, config, 4);
    YcsbConfig yc;
    yc.record_count = kRecords;
    yc.field_count = 4;
    yc.field_size = 25;
    yc.workload = workload;
    yc.zipfian = zipfian;
    workload_ = std::make_unique<YcsbWorkload>(engine_.get(), yc);
    workload_->LoadRange(engine_->worker(0), 0, kRecords);
  }

  NvmDevice dev_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<YcsbWorkload> workload_;
};

TEST_F(YcsbTest, LoadPopulatesEveryKey) {
  Setup('A', false);
  Worker& w = engine_->worker(0);
  std::vector<std::byte> row(engine_->TupleDataSize(workload_->table()));
  for (uint64_t k = 0; k < kRecords; k += 97) {
    Txn txn = w.Begin();
    ASSERT_EQ(txn.Read(workload_->table(), k, row.data()), Status::kOk) << k;
    txn.Commit();
  }
  Txn txn = w.Begin();
  EXPECT_EQ(txn.Read(workload_->table(), kRecords + 5, row.data()), Status::kNotFound);
  txn.Commit();
}

TEST_F(YcsbTest, WorkloadARunsMixedOps) {
  Setup('A', false);
  Worker& w = engine_->worker(0);
  YcsbThreadState state(workload_->config(), 0, 1, 7);
  int committed = 0;
  for (int i = 0; i < 2000; ++i) {
    committed += workload_->RunOne(w, state) ? 1 : 0;
  }
  EXPECT_GT(committed, 1900);  // single-threaded: almost everything commits
  EXPECT_GT(w.stats().writes, 800u);  // ~50% updates
  EXPECT_GT(w.stats().reads, 800u);
}

TEST_F(YcsbTest, WorkloadCIsReadOnly) {
  Setup('C', false);
  Worker& w = engine_->worker(0);
  w.ResetStats();  // discard the loader's insert counts
  YcsbThreadState state(workload_->config(), 0, 1, 7);
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(workload_->RunOne(w, state));
  }
  EXPECT_EQ(w.stats().writes, 0u);
}

TEST_F(YcsbTest, WorkloadDInsertsGrowTheTable) {
  Setup('D', false);
  Worker& w = engine_->worker(0);
  YcsbThreadState state(workload_->config(), 0, 1, 7);
  const uint64_t before = workload_->approx_records();
  for (int i = 0; i < 2000; ++i) {
    workload_->RunOne(w, state);
  }
  EXPECT_GT(workload_->approx_records(), before + 50);
}

TEST_F(YcsbTest, WorkloadEScansOnBTree) {
  Setup('E', false);
  Worker& w = engine_->worker(0);
  YcsbThreadState state(workload_->config(), 0, 1, 7);
  int committed = 0;
  for (int i = 0; i < 500; ++i) {
    committed += workload_->RunOne(w, state) ? 1 : 0;
  }
  EXPECT_GT(committed, 450);
}

TEST_F(YcsbTest, WorkloadFReadModifyWrite) {
  Setup('F', false);
  Worker& w = engine_->worker(0);
  YcsbThreadState state(workload_->config(), 0, 1, 7);
  int committed = 0;
  for (int i = 0; i < 1000; ++i) {
    committed += workload_->RunOne(w, state) ? 1 : 0;
  }
  EXPECT_GT(committed, 950);
  EXPECT_GT(w.stats().writes, 300u);
}

TEST_F(YcsbTest, ZipfianSkewsTraffic) {
  Setup('A', true);
  YcsbThreadState state(workload_->config(), 0, 1, 7);
  std::vector<int> counts(kRecords, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[state.NextKey(kRecords)];
  }
  std::sort(counts.begin(), counts.end(), std::greater<>());
  int top10 = 0;
  for (int i = 0; i < 10; ++i) {
    top10 += counts[i];
  }
  EXPECT_GT(top10, 50000 / 10) << "zipfian(0.99) top-10 keys must dominate";
}

TEST_F(YcsbTest, ParallelMixedWorkloadKeepsEngineConsistent) {
  Setup('A', true, EngineConfig::Falcon(CcScheme::kOcc));
  std::vector<std::thread> threads;
  std::atomic<uint64_t> committed{0};
  for (uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Worker& w = engine_->worker(t);
      YcsbThreadState state(workload_->config(), t, 4, 100 + t);
      for (int i = 0; i < 5000; ++i) {
        committed += workload_->RunOne(w, state) ? 1 : 0;
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_GT(committed.load(), 10000u);
  // Every key still readable (no corruption under contention).
  Worker& w = engine_->worker(0);
  std::vector<std::byte> row(engine_->TupleDataSize(workload_->table()));
  for (uint64_t k = 0; k < kRecords; k += 131) {
    for (;;) {
      Txn txn = w.Begin();
      const Status s = txn.Read(workload_->table(), k, row.data());
      if (s == Status::kOk && txn.Commit() == Status::kOk) {
        break;
      }
      ASSERT_NE(s, Status::kNotFound) << "key lost: " << k;
    }
  }
}

TEST_F(YcsbTest, InsertKeysAreDisjointAcrossThreads) {
  YcsbConfig yc;
  yc.record_count = 100;
  YcsbThreadState s0(yc, 0, 4, 1);
  YcsbThreadState s1(yc, 1, 4, 2);
  std::set<uint64_t> keys;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(keys.insert(s0.NextInsertKey()).second);
    EXPECT_TRUE(keys.insert(s1.NextInsertKey()).second);
  }
  for (const uint64_t k : keys) {
    EXPECT_GE(k, yc.record_count);
  }
}

TEST_F(YcsbTest, LargeTupleConfiguration) {
  // Fig. 12 regime: bigger tuples need bigger log slots.
  EngineConfig config = EngineConfig::Falcon();
  config.log_slot_bytes = 256 * 1024;
  engine_ = std::make_unique<Engine>(&dev_, config, 2);
  YcsbConfig yc;
  yc.record_count = 100;
  yc.field_count = 4;
  yc.field_size = 16 * 1024;  // 64KB tuples
  yc.workload = 'A';
  workload_ = std::make_unique<YcsbWorkload>(engine_.get(), yc);
  workload_->LoadRange(engine_->worker(0), 0, yc.record_count);
  Worker& w = engine_->worker(0);
  YcsbThreadState state(workload_->config(), 0, 1, 3);
  int committed = 0;
  for (int i = 0; i < 100; ++i) {
    committed += workload_->RunOne(w, state) ? 1 : 0;
  }
  EXPECT_GT(committed, 95);
}

}  // namespace
}  // namespace falcon
