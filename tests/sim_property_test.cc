// Property sweeps over the simulation substrate: invariants that must hold
// for every cache geometry, XPBuffer size, and access pattern — the
// foundations the benchmark shapes rest on.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/sim/cache_model.h"
#include "src/sim/nvm_device.h"
#include "src/sim/thread_context.h"
#include "tests/harness/test_seed.h"

namespace falcon {
namespace {

// ---- Device invariants across XPBuffer sizes --------------------------------

class XpBufferSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(XpBufferSweep, DrainAccountingAlwaysBalances) {
  NvmDevice dev(64ul << 20, CostParams{}, GetParam());
  const uint64_t seed = test::TestSeed(GetParam());
  FALCON_SCOPED_SEED(seed);
  Rng rng(seed);
  for (int i = 0; i < 50000; ++i) {
    const uint64_t block = rng.NextBounded(1000);
    const uint64_t line = rng.NextBounded(kLinesPerBlock);
    dev.LineWrite(reinterpret_cast<uintptr_t>(dev.base()) + block * kNvmBlockSize +
                  line * kCacheLineSize);
  }
  dev.DrainAll();
  const DeviceStats s = dev.stats();
  EXPECT_EQ(s.line_writes, 50000u);
  EXPECT_EQ(s.media_writes, s.full_drains + s.partial_drains)
      << "every media write is exactly one drain";
  EXPECT_EQ(s.media_reads, s.partial_drains) << "every partial drain costs one media read";
  EXPECT_GE(s.busy_ns, s.media_writes * dev.params().media_write_ns);
  // A drained block holds at most 4 lines; amplification is bounded below.
  EXPECT_GE(s.media_writes * kLinesPerBlock, s.line_writes / kLinesPerBlock)
      << "cannot drain fewer blocks than lines/4";
}

TEST_P(XpBufferSweep, SequentialFullBlockStreamNeverAmplifies) {
  NvmDevice dev(64ul << 20, CostParams{}, GetParam());
  for (uint64_t b = 0; b < 2000; ++b) {
    for (uint64_t line = 0; line < kLinesPerBlock; ++line) {
      dev.LineWrite(reinterpret_cast<uintptr_t>(dev.base()) + b * kNvmBlockSize +
                    line * kCacheLineSize);
    }
  }
  dev.DrainAll();
  // Consecutive lines of one block arrive back-to-back: merging must be
  // perfect regardless of buffer size (even a tiny buffer holds one block).
  EXPECT_EQ(dev.stats().media_reads, 0u);
  EXPECT_DOUBLE_EQ(dev.stats().WriteAmplification(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, XpBufferSweep, ::testing::Values(8u, 64u, 384u, 4096u),
                         [](const auto& info) {
                           return "Blocks" + std::to_string(info.param);
                         });

// ---- Cache invariants across geometries --------------------------------------

struct Geo {
  uint32_t sets;
  uint32_t ways;
};

class CacheGeometrySweep : public ::testing::TestWithParam<Geo> {};

TEST_P(CacheGeometrySweep, ResidentWorkingSetNeverWritesToNvm) {
  // The small-log-window property must hold for every geometry: a cycled
  // working set at half the cache capacity stays resident.
  NvmDevice dev(64ul << 20);
  CacheModel cache(&dev, CacheGeometry{GetParam().sets, GetParam().ways}, CostParams{});
  const uint64_t capacity =
      static_cast<uint64_t>(GetParam().sets) * GetParam().ways * kCacheLineSize;
  const uint64_t window = capacity / 2;
  const auto base = reinterpret_cast<uintptr_t>(dev.base());
  for (int round = 0; round < 50; ++round) {
    for (uint64_t off = 0; off < window; off += kCacheLineSize) {
      cache.OnStore(base + off, 8);
    }
  }
  EXPECT_EQ(cache.stats().dirty_evictions, 0u)
      << "a window at half capacity must never thrash";
  dev.DrainAll();
  EXPECT_EQ(dev.stats().media_writes, 0u);
}

TEST_P(CacheGeometrySweep, OversizedWorkingSetAlwaysThrashes) {
  NvmDevice dev(256ul << 20);
  CacheModel cache(&dev, CacheGeometry{GetParam().sets, GetParam().ways}, CostParams{});
  const uint64_t capacity =
      static_cast<uint64_t>(GetParam().sets) * GetParam().ways * kCacheLineSize;
  const uint64_t window = capacity * 4;
  const auto base = reinterpret_cast<uintptr_t>(dev.base());
  for (int round = 0; round < 3; ++round) {
    for (uint64_t off = 0; off < window; off += kCacheLineSize) {
      cache.OnStore(base + off, 8);
    }
  }
  EXPECT_GT(cache.stats().dirty_evictions, window / kCacheLineSize)
      << "a 4x working set must evict at least one full pass";
}

TEST_P(CacheGeometrySweep, HitsPlusMissesEqualsLineTouches) {
  NvmDevice dev(64ul << 20);
  CacheModel cache(&dev, CacheGeometry{GetParam().sets, GetParam().ways}, CostParams{});
  const uint64_t seed = test::TestSeed(9);
  FALCON_SCOPED_SEED(seed);
  Rng rng(seed);
  const auto base = reinterpret_cast<uintptr_t>(dev.base());
  uint64_t touches = 0;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t off = rng.NextBounded(1u << 20) * 8;
    const size_t len = 1 + rng.NextBounded(300);
    const uint64_t first = (base + off) / kCacheLineSize;
    const uint64_t last = (base + off + len - 1) / kCacheLineSize;
    touches += last - first + 1;
    if (rng.NextBounded(2) == 0) {
      cache.OnStore(base + off, len);
    } else {
      cache.OnLoad(base + off, len);
    }
  }
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, touches);
}

TEST_P(CacheGeometrySweep, ClwbThenEvictionNeverDoubleWrites) {
  // A line flushed clean and then evicted must reach the device exactly once.
  NvmDevice dev(64ul << 20);
  CacheModel cache(&dev, CacheGeometry{GetParam().sets, GetParam().ways}, CostParams{});
  const auto base = reinterpret_cast<uintptr_t>(dev.base());
  cache.OnStore(base, 64);
  cache.Clwb(base, 64);
  // Force the line out by filling its set with conflicting lines.
  const uint64_t set_stride =
      static_cast<uint64_t>(GetParam().sets) * kCacheLineSize;
  for (uint32_t w = 0; w <= GetParam().ways; ++w) {
    cache.OnLoad(base + (w + 1) * set_stride, 8);
  }
  cache.WritebackAll();
  dev.DrainAll();
  EXPECT_EQ(dev.stats().line_writes, 1u) << "clean evictions must be silent";
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometrySweep,
    ::testing::Values(Geo{16, 2}, Geo{64, 4}, Geo{256, 16}, Geo{2048, 16}, Geo{128, 8}),
    [](const auto& info) {
      return "S" + std::to_string(info.param.sets) + "W" + std::to_string(info.param.ways);
    });

// ---- Hinted flush dominance (the D2 premise) ---------------------------------

class FlushPatternSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FlushPatternSweep, HintedFlushNeverProducesMoreMediaTrafficThanEvictions) {
  // For any tuple size, writing N tuples and hint-flushing them must cost at
  // most as many media operations as writing them and letting evictions
  // deliver the data (the whole justification for bringing clwb back, §3.3).
  const uint32_t tuple_bytes = GetParam();
  const uint64_t seed = test::TestSeed(77);
  FALCON_SCOPED_SEED(seed);
  const auto run = [&](bool hinted) {
    NvmDevice dev(256ul << 20);
    ThreadContext ctx(0, &dev, CacheGeometry{.sets = 128, .ways = 8});
    Rng rng(seed);
    std::vector<std::byte> payload(tuple_bytes, std::byte{1});
    const uint64_t stride = 256ull * ((tuple_bytes + 255) / 256);
    const uint64_t max_slots = dev.capacity() / stride;
    for (int i = 0; i < 5000; ++i) {
      const uint64_t slot = rng.NextBounded(std::min<uint64_t>(100000, max_slots));
      std::byte* dst = dev.base() + slot * stride;
      ctx.Store(dst, payload.data(), tuple_bytes);
      if (hinted) {
        ctx.Sfence();
        ctx.Clwb(dst, tuple_bytes);
      }
    }
    ctx.cache().WritebackAll();
    dev.DrainAll();
    const DeviceStats s = dev.stats();
    return s.media_writes + s.media_reads;
  };
  const uint64_t hinted_ops = run(true);
  const uint64_t evicted_ops = run(false);
  EXPECT_LE(hinted_ops, evicted_ops)
      << "hinted flush must never lose to uncontrolled eviction (tuple=" << tuple_bytes << ")";
}

INSTANTIATE_TEST_SUITE_P(TupleSizes, FlushPatternSweep,
                         ::testing::Values(256u, 512u, 1024u, 4096u),
                         [](const auto& info) { return "B" + std::to_string(info.param); });

}  // namespace
}  // namespace falcon
