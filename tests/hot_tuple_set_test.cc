// HotTupleSet (paper D2, §4.4): LRU eviction order, open-addressing deletion
// with probe-cluster re-insertion, reuse after Clear, the capacity-0 edge
// case, and the hit/miss/eviction counters added for the metrics layer.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/hot_tuple_set.h"

namespace falcon {
namespace {

TEST(HotTupleSet, EvictsInLruOrder) {
  HotTupleSet set(3);
  set.Cache(10);
  set.Cache(20);
  set.Cache(30);
  ASSERT_EQ(set.size(), 3u);

  // Touch 10 so 20 becomes the coldest entry.
  EXPECT_TRUE(set.Contains(10));

  set.Cache(40);  // evicts 20
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.ContainsQuiet(10));
  EXPECT_FALSE(set.ContainsQuiet(20));
  EXPECT_TRUE(set.ContainsQuiet(30));
  EXPECT_TRUE(set.ContainsQuiet(40));

  // Next victim is 30 (10 and 40 are warmer).
  set.Cache(50);
  EXPECT_FALSE(set.ContainsQuiet(30));
  EXPECT_TRUE(set.ContainsQuiet(10));
  EXPECT_TRUE(set.ContainsQuiet(40));
  EXPECT_TRUE(set.ContainsQuiet(50));
}

TEST(HotTupleSet, CachingAnExistingTupleRefreshesInsteadOfDuplicating) {
  HotTupleSet set(2);
  set.Cache(1);
  set.Cache(2);
  set.Cache(1);  // refresh, not re-insert
  EXPECT_EQ(set.size(), 2u);
  set.Cache(3);  // evicts 2, the coldest
  EXPECT_TRUE(set.ContainsQuiet(1));
  EXPECT_FALSE(set.ContainsQuiet(2));
  EXPECT_TRUE(set.ContainsQuiet(3));
}

TEST(HotTupleSet, EvictionKeepsProbeClustersSearchable) {
  // Fill well past the point where the open-addressed table develops probe
  // clusters, then churn: every surviving entry must stay findable after
  // each eviction's delete + cluster re-insertion.
  constexpr size_t kCapacity = 16;
  HotTupleSet set(kCapacity);
  std::vector<PmOffset> inserted;
  for (PmOffset t = 1; t <= 200; ++t) {
    set.Cache(t * 64);
    inserted.push_back(t * 64);
    ASSERT_EQ(set.size(), std::min<size_t>(t, kCapacity));
    // The most recent kCapacity tuples are exactly the survivors (no
    // Contains() calls, so insertion order == recency order).
    const size_t first_live = inserted.size() > kCapacity ? inserted.size() - kCapacity : 0;
    for (size_t i = 0; i < inserted.size(); ++i) {
      ASSERT_EQ(set.ContainsQuiet(inserted[i]), i >= first_live)
          << "tuple " << inserted[i] << " after inserting " << (t * 64);
    }
  }
}

TEST(HotTupleSet, ReusableAfterClear) {
  HotTupleSet set(4);
  for (PmOffset t = 1; t <= 8; ++t) {
    set.Cache(t);
  }
  set.Clear();
  EXPECT_EQ(set.size(), 0u);
  for (PmOffset t = 1; t <= 8; ++t) {
    EXPECT_FALSE(set.ContainsQuiet(t));
  }
  // Full capacity is available again and LRU behaves normally.
  for (PmOffset t = 100; t < 104; ++t) {
    set.Cache(t);
  }
  EXPECT_EQ(set.size(), 4u);
  set.Cache(200);
  EXPECT_FALSE(set.ContainsQuiet(100));
  EXPECT_TRUE(set.ContainsQuiet(200));
}

TEST(HotTupleSet, CapacityZeroNeverTracks) {
  HotTupleSet set(0);
  set.Cache(1);
  set.Cache(2);
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.Contains(1));
  EXPECT_FALSE(set.ContainsQuiet(2));
}

TEST(HotTupleSet, CountersTrackHitsMissesEvictionsInserts) {
  HotTupleSet set(2);
  EXPECT_FALSE(set.Contains(1));  // miss
  set.Cache(1);                   // insert
  set.Cache(2);                   // insert
  EXPECT_TRUE(set.Contains(1));   // hit
  set.Cache(3);                   // insert + eviction (victim: 2)
  EXPECT_FALSE(set.Contains(2));  // miss

  const HotTupleSetStats& s = set.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.inserts, 3u);
  EXPECT_EQ(s.evictions, 1u);

  // ContainsQuiet must not perturb the counters.
  (void)set.ContainsQuiet(1);
  (void)set.ContainsQuiet(2);
  EXPECT_EQ(set.stats().hits, 1u);
  EXPECT_EQ(set.stats().misses, 2u);

  set.ResetStats();
  EXPECT_EQ(set.stats().hits, 0u);
  EXPECT_EQ(set.stats().inserts, 0u);

  // Clear() resets contents, not counters: tracking effectiveness is
  // cumulative across benchmark warmup boundaries unless explicitly reset.
  set.Cache(9);
  set.Clear();
  EXPECT_EQ(set.stats().inserts, 1u);
}

}  // namespace
}  // namespace falcon
