// Intra-worker batched execution (Worker::RunBatch + TxnFrame):
//
//   * read-own-writes survives frame interleaving — a frame that updates a
//     key and reads it back across yield boundaries sees its own write, for
//     batch sizes {2,4,8} under all six CC schemes;
//   * sibling conflicts abort cleanly and never deadlock — frames forced
//     onto one shared key finish with commits + aborts == frames, the key
//     stays writable, and RunBatch returns (no-wait CC cannot self-wedge);
//   * overlap speedup — on read-heavy YCSB with the default cost model
//     (nvm_miss_ns = 300), batch 4 shortens the batch timeline by >= 1.5x
//     vs the serial charge for the same transactions, and the hidden-stall
//     counter accounts for the difference exactly;
//   * crash safety — the deterministic crash sweep (Falcon/MVOCC) passes at
//     batch_size 4: every persistence step of the batched schedule recovers
//     to the shadow oracle, with mid-batch wounded transactions frozen.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/batch.h"
#include "src/core/engine.h"
#include "src/workload/ycsb.h"
#include "tests/harness/crash_sweep.h"
#include "tests/harness/test_seed.h"

namespace falcon {
namespace {

constexpr CcScheme kAllSchemes[] = {CcScheme::k2pl,   CcScheme::kTo,   CcScheme::kOcc,
                                    CcScheme::kMv2pl, CcScheme::kMvTo, CcScheme::kMvOcc};
constexpr uint32_t kBatchSizes[] = {2, 4, 8};
constexpr uint32_t kValueColumn = 1;

// Minimal source over a fixed list of pre-built frames (no recycling).
class ListSource final : public FrameSource {
 public:
  explicit ListSource(std::vector<TxnFrame*> frames) : frames_(std::move(frames)) {}

  TxnFrame* Next(Worker&) override {
    return next_ < frames_.size() ? frames_[next_++] : nullptr;
  }

 private:
  std::vector<TxnFrame*> frames_;
  size_t next_ = 0;
};

struct BatchFixture {
  std::unique_ptr<NvmDevice> device;
  std::unique_ptr<Engine> engine;
  TableId table = 0;

  static BatchFixture Create(CcScheme cc, uint32_t batch_size, uint64_t preload_keys) {
    BatchFixture f;
    f.device = std::make_unique<NvmDevice>(256ull << 20);
    EngineConfig config = EngineConfig::Falcon(cc);
    config.batch_size = batch_size;
    f.engine = std::make_unique<Engine>(f.device.get(), config, /*workers=*/1);
    SchemaBuilder schema("batch");
    schema.AddU64();  // column 0: key copy
    schema.AddU64();  // column 1: value
    f.table = f.engine->CreateTable(schema, IndexKind::kHash);
    Worker& w = f.engine->worker(0);
    for (uint64_t k = 0; k < preload_keys; ++k) {
      Txn txn = w.Begin();
      const uint64_t row[2] = {k, k * 1000};
      EXPECT_EQ(txn.Insert(f.table, k, row), Status::kOk);
      EXPECT_EQ(txn.Commit(), Status::kOk);
    }
    return f;
  }
};

// Updates its own key, yields, reads it back (must see the own write even
// though sibling frames ran in between), yields, commits. CC aborts replay
// the same transaction.
class RowFrame final : public TxnFrame {
 public:
  RowFrame(TableId table, uint64_t key, uint64_t value)
      : table_(table), key_(key), value_(value) {}

  bool saw_own_write() const { return saw_own_write_; }

  bool Step(Worker& worker) override {
    if (!has_txn()) {
      BeginTxn(worker);
      stage_ = 0;
    }
    Status s = Status::kOk;
    switch (stage_) {
      case 0:
        s = txn().UpdateColumn(table_, key_, kValueColumn, &value_);
        break;
      case 1: {
        uint64_t got = 0;
        s = txn().ReadColumn(table_, key_, kValueColumn, &got);
        if (s == Status::kOk) {
          saw_own_write_ = got == value_;
        }
        break;
      }
      default: {
        const Status cs = txn().Commit();
        EndTxn();
        if (cs == Status::kOk) {
          set_result(0);
          return true;
        }
        s = cs;
        break;
      }
    }
    if (s == Status::kAborted) {
      if (has_txn()) {
        txn().Abort();
        EndTxn();
      }
      if (++attempts_ >= 16) {
        set_result(~0);
        return true;
      }
      return false;  // replay
    }
    EXPECT_EQ(s, Status::kOk) << "unexpected status at stage " << stage_;
    ++stage_;
    return false;  // yield between stages
  }

 private:
  TableId table_;
  uint64_t key_;
  uint64_t value_;
  int stage_ = 0;
  int attempts_ = 0;
  bool saw_own_write_ = false;
};

// Reads the one shared key, yields, updates it, yields, commits. Single
// attempt: a sibling conflict resolves the frame as aborted (~0).
class ConflictFrame final : public TxnFrame {
 public:
  ConflictFrame(TableId table, uint64_t key, uint64_t value)
      : table_(table), key_(key), value_(value) {}

  bool Step(Worker& worker) override {
    if (!has_txn()) {
      BeginTxn(worker);
      stage_ = 0;
    }
    Status s = Status::kOk;
    switch (stage_) {
      case 0: {
        uint64_t got = 0;
        s = txn().ReadColumn(table_, key_, kValueColumn, &got);
        break;
      }
      case 1:
        s = txn().UpdateColumn(table_, key_, kValueColumn, &value_);
        break;
      default: {
        const Status cs = txn().Commit();
        EndTxn();
        set_result(cs == Status::kOk ? 0 : ~0);
        return true;
      }
    }
    if (s != Status::kOk) {
      if (has_txn()) {
        txn().Abort();
        EndTxn();
      }
      set_result(~0);
      return true;
    }
    ++stage_;
    return false;
  }

 private:
  TableId table_;
  uint64_t key_;
  uint64_t value_;
  int stage_ = 0;
};

TEST(BatchExecTest, ReadOwnWritesAcrossYields) {
  for (const CcScheme cc : kAllSchemes) {
    for (const uint32_t batch : kBatchSizes) {
      SCOPED_TRACE(std::string(CcSchemeName(cc)) + " batch=" + std::to_string(batch));
      const uint64_t frames = 4ull * batch;
      BatchFixture f = BatchFixture::Create(cc, batch, frames);
      std::vector<std::unique_ptr<RowFrame>> owned;
      std::vector<TxnFrame*> list;
      for (uint64_t i = 0; i < frames; ++i) {
        owned.push_back(std::make_unique<RowFrame>(f.table, i, 7000 + i));
        list.push_back(owned.back().get());
      }
      ListSource source(std::move(list));
      const BatchRunStats stats = f.engine->worker(0).RunBatch(batch, source);
      EXPECT_EQ(stats.frames, frames);
      for (uint64_t i = 0; i < frames; ++i) {
        EXPECT_EQ(owned[i]->result(), 0) << "frame " << i << " did not commit";
        EXPECT_TRUE(owned[i]->saw_own_write()) << "frame " << i << " lost its own write";
      }
      // Committed values visible serially afterwards.
      Worker& w = f.engine->worker(0);
      for (uint64_t i = 0; i < frames; ++i) {
        Txn txn = w.Begin();
        uint64_t got = 0;
        ASSERT_EQ(txn.ReadColumn(f.table, i, kValueColumn, &got), Status::kOk);
        EXPECT_EQ(got, 7000 + i);
        EXPECT_EQ(txn.Commit(), Status::kOk);
      }
    }
  }
}

TEST(BatchExecTest, SiblingConflictsAbortCleanly) {
  for (const CcScheme cc : kAllSchemes) {
    for (const uint32_t batch : kBatchSizes) {
      SCOPED_TRACE(std::string(CcSchemeName(cc)) + " batch=" + std::to_string(batch));
      const uint64_t frames = 4ull * batch;
      BatchFixture f = BatchFixture::Create(cc, batch, /*preload_keys=*/1);
      std::vector<std::unique_ptr<ConflictFrame>> owned;
      std::vector<TxnFrame*> list;
      for (uint64_t i = 0; i < frames; ++i) {
        owned.push_back(std::make_unique<ConflictFrame>(f.table, 0, 9000 + i));
        list.push_back(owned.back().get());
      }
      ListSource source(std::move(list));
      // RunBatch returning at all is the no-deadlock check (no-wait CC).
      const BatchRunStats stats = f.engine->worker(0).RunBatch(batch, source);
      EXPECT_EQ(stats.frames, frames);
      uint64_t commits = 0;
      uint64_t aborts = 0;
      for (const auto& frame : owned) {
        (frame->result() == 0 ? commits : aborts) += 1;
      }
      EXPECT_EQ(commits + aborts, frames);
      EXPECT_GE(commits, 1u) << "conflict storm starved every frame";
      EXPECT_GE(aborts, 1u) << "siblings on one key cannot all be serializable";
      // No lock or latch survives: the key is still writable serially.
      Worker& w = f.engine->worker(0);
      const uint64_t fresh = 424242;
      Txn txn = w.Begin();
      ASSERT_EQ(txn.UpdateColumn(f.table, 0, kValueColumn, &fresh), Status::kOk);
      ASSERT_EQ(txn.Commit(), Status::kOk);
    }
  }
}

// Read-heavy YCSB at one worker: batch 4 must shorten the batch timeline by
// >= 1.5x against the serial charge for the same transaction stream, with
// the hidden-stall counter explaining the difference exactly; batch 1 must
// stay exactly serial.
TEST(BatchExecTest, ReadHeavyYcsbOverlapSpeedup) {
  const auto run = [](uint32_t batch) {
    auto device = std::make_unique<NvmDevice>(1ull << 30);
    EngineConfig config = EngineConfig::Falcon(CcScheme::kOcc);
    config.batch_size = batch;
    // Small per-thread cache so the uniform read working set misses to NVM.
    config.cache_geometry = CacheGeometry{.sets = 256, .ways = 16};
    auto engine = std::make_unique<Engine>(device.get(), config, /*workers=*/1);
    YcsbConfig yc;
    yc.record_count = 20000;
    yc.field_count = 4;
    yc.field_size = 64;
    yc.workload = 'C';  // 100% read: stall-dominated, abort-free
    YcsbWorkload workload(engine.get(), yc);
    workload.LoadRange(engine->worker(0), 0, yc.record_count);
    YcsbThreadState state(workload.config(), 0, 1, 31);
    YcsbFrameSource source(&workload, &state, /*txn_count=*/4000, batch);
    return engine->worker(0).RunBatch(batch, source);
  };

  const BatchRunStats serial = run(1);
  EXPECT_EQ(serial.elapsed_ns, serial.serial_ns) << "batch 1 must stay exactly serial";
  EXPECT_EQ(serial.hidden_stall_ns, 0u);

  const BatchRunStats batched = run(4);
  EXPECT_EQ(batched.frames, 4000u);
  // Identity: the batch timeline is the serial charge minus hidden stalls.
  EXPECT_EQ(batched.elapsed_ns, batched.serial_ns - batched.hidden_stall_ns);
  EXPECT_GT(batched.hidden_stall_ns, 0u);
  // >= 1.5x on the same stream's serial charge (observed ~3.8x).
  EXPECT_GE(static_cast<double>(batched.serial_ns),
            1.5 * static_cast<double>(batched.elapsed_ns))
      << "serial_ns=" << batched.serial_ns << " elapsed_ns=" << batched.elapsed_ns;
}

// Crash sweep at batch_size 4 (Falcon / MVOCC): every persistence step of
// the batched schedule — including steps that wound one frame while its
// siblings hold open transactions — recovers to the shadow oracle.
TEST(BatchExecTest, CrashSweepBatchedFalconMvocc) {
  test::SweepConfig cfg;
  cfg.make = [](CcScheme cc) { return EngineConfig::Falcon(cc); };
  cfg.cc = CcScheme::kMvOcc;
  cfg.threads = 1;
  cfg.batch_size = 4;
  cfg.txns_per_thread = 32;
  cfg.keys_per_thread = 16;
  cfg.max_ops_per_txn = 4;
  cfg.seed = test::TestSeed(0xba7c4);
  FALCON_SCOPED_SEED(cfg.seed);

  const test::SweepResult clean = test::RunCrashAt(cfg, 0);
  ASSERT_TRUE(clean.ok()) << clean.violation;
  EXPECT_FALSE(clean.crashed);
  EXPECT_GT(clean.commits_acked, cfg.keys_per_thread);

  const uint64_t steps = test::CountSteps(cfg);
  ASSERT_GE(steps, 100u) << "batched workload too small for a meaningful sweep";
  for (uint64_t step = 1; step <= steps; ++step) {
    const test::SweepResult r = test::RunCrashAt(cfg, step);
    ASSERT_TRUE(r.ok()) << r.violation;
    ASSERT_TRUE(r.crashed) << "armed step " << step << " of " << steps << " never fired";
    ASSERT_EQ(r.crash_step, step);
    ASSERT_TRUE(r.report.recovered);
  }
}

}  // namespace
}  // namespace falcon
