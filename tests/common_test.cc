// Unit tests for src/common: rng, zipfian, histogram, latch, status.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/latch.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/zipf.h"

namespace falcon {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (a.Next() == b.Next()) ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NextRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.NextBounded(10)];
  }
  for (int c : counts) {
    EXPECT_GT(c, kSamples / 10 * 0.9);
    EXPECT_LT(c, kSamples / 10 * 1.1);
  }
}

TEST(Mix64Test, InjectiveOnSmallRange) {
  std::map<uint64_t, uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) {
    const uint64_t h = Mix64(i);
    EXPECT_EQ(seen.count(h), 0u);
    seen[h] = i;
  }
}

TEST(ZipfTest, ValuesInRange) {
  ZipfianGenerator zipf(1000, 0.99, 3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(), 1000u);
  }
}

TEST(ZipfTest, SkewConcentratesOnLowRanks) {
  ZipfianGenerator zipf(100000, 0.99, 5);
  constexpr int kSamples = 100000;
  int in_top_100 = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Next() < 100) {
      ++in_top_100;
    }
  }
  // With theta=0.99 over 100K items, well over a third of accesses hit the
  // 100 hottest ranks; a uniform distribution would put ~0.1% there.
  EXPECT_GT(in_top_100, kSamples / 3);
}

TEST(ZipfTest, RankZeroIsHottest) {
  ZipfianGenerator zipf(10000, 0.99, 8);
  std::vector<int> counts(10000, 0);
  for (int i = 0; i < 200000; ++i) {
    ++counts[zipf.Next()];
  }
  const int max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_EQ(counts[0], max_count);
}

TEST(ZipfTest, ScrambledCoversRange) {
  ZipfianGenerator zipf(1000, 0.99, 13);
  std::vector<bool> seen(1000, false);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t v = zipf.NextScrambled();
    ASSERT_LT(v, 1000u);
    seen[v] = true;
  }
  const auto covered = static_cast<size_t>(std::count(seen.begin(), seen.end(), true));
  EXPECT_GT(covered, 500u);  // scrambling spreads hot ranks over the space
}

TEST(ZipfTest, ThetaControlsSkew) {
  ZipfianGenerator mild(10000, 0.5, 21);
  ZipfianGenerator hot(10000, 0.99, 21);
  int mild_top = 0;
  int hot_top = 0;
  for (int i = 0; i < 50000; ++i) {
    mild_top += (mild.Next() < 10) ? 1 : 0;
    hot_top += (hot.Next() < 10) ? 1 : 0;
  }
  EXPECT_GT(hot_top, mild_top * 2);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 100.0);
  // Percentile returns the bucket upper bound: within ~6% of the true value.
  EXPECT_GE(h.Percentile(50), 100u);
  EXPECT_LE(h.Percentile(50), 112u);
}

TEST(HistogramTest, ExactForSmallValues) {
  Histogram h;
  for (uint64_t v = 0; v < 16; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.Percentile(0), 0u);
  EXPECT_EQ(h.Percentile(100), 15u);
}

TEST(HistogramTest, PercentileMonotone) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    h.Record(rng.NextBounded(1'000'000));
  }
  uint64_t prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9}) {
    const uint64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(HistogramTest, PercentileAccuracyOnUniform) {
  Histogram h;
  Rng rng(17);
  for (int i = 0; i < 200000; ++i) {
    h.Record(rng.NextBounded(1'000'000));
  }
  const uint64_t p50 = h.Percentile(50);
  EXPECT_GT(p50, 450'000u);
  EXPECT_LT(p50, 560'000u);
  const uint64_t p95 = h.Percentile(95);
  EXPECT_GT(p95, 900'000u);
  EXPECT_LT(p95, 1'010'000u);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 100; ++i) {
    a.Record(10);
    b.Record(1000);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.max(), 1000u);
  EXPECT_LE(a.Percentile(25), 12u);
  EXPECT_GE(a.Percentile(75), 900u);
}

TEST(HistogramTest, MaxTracksLargest) {
  Histogram h;
  h.Record(5);
  h.Record(500000);
  h.Record(50);
  EXPECT_EQ(h.max(), 500000u);
}

TEST(HistogramTest, P100IsAtLeastMax) {
  Histogram h;
  h.Record(7);
  h.Record(123456789);
  EXPECT_GE(h.Percentile(100), h.max());
  EXPECT_EQ(h.Percentile(100), 123456789u);
}

TEST(HistogramTest, P100CoversSaturationBucket) {
  // Values past the last bucket's nominal range clamp into it; p=100 must
  // still report a bound >= the recorded max.
  Histogram h;
  const uint64_t huge = uint64_t{1} << 62;
  h.Record(1);
  h.Record(huge);
  EXPECT_EQ(h.max(), huge);
  EXPECT_GE(h.Percentile(100), huge);
  EXPECT_GE(h.Percentile(99.999), 1u);
}

TEST(HistogramTest, P0IsFirstNonEmptyBucket) {
  Histogram h;
  h.Record(3);
  h.Record(900);
  h.Record(900000);
  // 3 lands in an exact small-value bucket, so p=0 reports it exactly.
  EXPECT_EQ(h.Percentile(0), 3u);
  // Out-of-range p clamps rather than wrapping.
  EXPECT_EQ(h.Percentile(-5), h.Percentile(0));
  EXPECT_EQ(h.Percentile(250), h.Percentile(100));
}

TEST(HistogramTest, PercentileNeverExceedsMax) {
  Histogram h;
  Rng rng(29);
  for (int i = 0; i < 50000; ++i) {
    h.Record(rng.NextBounded(1'000'000));
  }
  for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    EXPECT_LE(h.Percentile(p), h.max()) << "p=" << p;
  }
}

TEST(SpinLatchTest, MutualExclusion) {
  SpinLatch latch;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<SpinLatch> guard(latch);
        ++counter;
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(SpinLatchTest, TryLockFailsWhenHeld) {
  SpinLatch latch;
  latch.lock();
  EXPECT_FALSE(latch.try_lock());
  latch.unlock();
  EXPECT_TRUE(latch.try_lock());
  latch.unlock();
}

TEST(StatusTest, StringsAreStable) {
  EXPECT_EQ(StatusString(Status::kOk), "ok");
  EXPECT_EQ(StatusString(Status::kAborted), "aborted");
  EXPECT_EQ(StatusString(Status::kNotFound), "not found");
  EXPECT_EQ(StatusString(Status::kDuplicate), "duplicate");
  EXPECT_EQ(StatusString(Status::kNoSpace), "no space");
  EXPECT_TRUE(IsOk(Status::kOk));
  EXPECT_FALSE(IsOk(Status::kAborted));
}

}  // namespace
}  // namespace falcon
