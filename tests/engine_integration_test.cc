// End-to-end integration tests: a workload running across repeated crashes
// with full data-integrity verification, ZenS vs Falcon recovery equivalence
// on identical histories, and cross-table transactions.

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "src/common/rng.h"
#include "src/core/engine.h"

namespace falcon {
namespace {

struct Param {
  const char* label;
  EngineConfig (*make)(CcScheme);
  CcScheme cc;
};

EngineConfig MakeFalcon(CcScheme cc) { return EngineConfig::Falcon(cc); }
EngineConfig MakeFalconDram(CcScheme cc) { return EngineConfig::FalconDramIndex(cc); }
EngineConfig MakeInp(CcScheme cc) { return EngineConfig::Inp(cc); }
EngineConfig MakeOutp(CcScheme cc) { return EngineConfig::Outp(cc); }
EngineConfig MakeZenS(CcScheme cc) { return EngineConfig::ZenS(cc); }

// Runs a randomized single-threaded workload against the engine AND a
// std::map reference, crashing at random commit points every few hundred
// transactions and recovering. After every recovery, the engine must agree
// with the reference on every key (committed txns durable, uncommitted ones
// invisible).
class CrashLoopTest : public ::testing::TestWithParam<Param> {
 protected:
  static constexpr uint64_t kKeySpace = 400;

  void RunCrashLoop() {
    NvmDevice dev(1ul << 30);
    std::map<uint64_t, uint64_t> reference;
    Rng rng(2026);

    for (int epoch = 0; epoch < 6; ++epoch) {
      Engine engine(&dev, GetParam().make(GetParam().cc), 2);
      TableId table;
      if (!engine.recovery_report().recovered) {
        SchemaBuilder schema("t");
        schema.AddU64();
        table = engine.CreateTable(schema, IndexKind::kHash);
      } else {
        table = *engine.FindTableId("t");
        VerifyAgainstReference(engine, table, reference, epoch);
      }

      Worker& w = engine.worker(0);
      const int txns = 150 + static_cast<int>(rng.NextBounded(100));
      for (int i = 0; i < txns; ++i) {
        // Arm a crash for the final transaction of the epoch at a random
        // commit point.
        const bool crash_now = (i == txns - 1) && epoch + 1 < 6;
        if (crash_now) {
          engine.ArmCrashPoint(
              static_cast<CrashPoint>(1 + rng.NextBounded(4)));
        }

        const uint64_t key = rng.NextBounded(kKeySpace);
        const uint64_t value = rng.Next() >> 8;
        const uint64_t op = rng.NextBounded(10);
        try {
          Txn txn = w.Begin();
          Status s;
          bool applied = false;
          if (op < 5) {
            s = txn.UpdateColumn(table, key, 0, &value);
            applied = (s == Status::kOk);
          } else if (op < 8) {
            s = txn.Insert(table, key, &value);
            applied = (s == Status::kOk);
          } else {
            s = txn.Delete(table, key);
            applied = (s == Status::kOk);
          }
          if (s == Status::kAborted) {
            continue;
          }
          if (txn.Commit() != Status::kOk) {
            continue;
          }
          if (applied) {
            // Mirror the committed effect in the reference.
            if (op < 5) {
              reference[key] = value;
            } else if (op < 8) {
              reference[key] = value;
            } else {
              reference.erase(key);
            }
          }
        } catch (const TxnCrashed& crashed) {
          // The transaction's fate depends on where it died: after the
          // commit mark it IS committed (recovery replays it); before, it is
          // not. Mirror accordingly.
          if (crashed.point != CrashPoint::kBeforeCommitMark) {
            if (op < 8) {
              reference[key] = value;
            } else {
              reference.erase(key);
            }
          }
          break;  // "power failure": stop issuing transactions this epoch
        }
      }
    }
  }

  void VerifyAgainstReference(Engine& engine, TableId table,
                              const std::map<uint64_t, uint64_t>& reference, int epoch) {
    Worker& w = engine.worker(0);
    for (uint64_t key = 0; key < kKeySpace; ++key) {
      Txn txn = w.Begin();
      uint64_t got = 0;
      const Status s = txn.ReadColumn(table, key, 0, &got);
      txn.Commit();
      const auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_EQ(s, Status::kNotFound) << "epoch " << epoch << " key " << key
                                        << ": phantom value " << got;
      } else {
        ASSERT_EQ(s, Status::kOk) << "epoch " << epoch << " key " << key << ": lost value";
        EXPECT_EQ(got, it->second) << "epoch " << epoch << " key " << key;
      }
    }
  }
};

TEST_P(CrashLoopTest, RandomizedCrashRecoveryAgreesWithReference) { RunCrashLoop(); }

INSTANTIATE_TEST_SUITE_P(
    Engines, CrashLoopTest,
    ::testing::Values(Param{"Falcon_OCC", MakeFalcon, CcScheme::kOcc},
                      Param{"Falcon_2PL", MakeFalcon, CcScheme::k2pl},
                      Param{"Falcon_TO", MakeFalcon, CcScheme::kTo},
                      Param{"Falcon_MVOCC", MakeFalcon, CcScheme::kMvOcc},
                      Param{"FalconDram_OCC", MakeFalconDram, CcScheme::kOcc},
                      Param{"Inp_OCC", MakeInp, CcScheme::kOcc},
                      Param{"Outp_OCC", MakeOutp, CcScheme::kOcc},
                      Param{"ZenS_OCC", MakeZenS, CcScheme::kOcc}),
    [](const auto& info) { return std::string(info.param.label); });

TEST(CrossTableTest, MultiTableTransactionIsAtomicAcrossCrash) {
  // A transfer between two *tables*: both updates must survive or neither.
  NvmDevice dev(512ul << 20);
  {
    Engine engine(&dev, EngineConfig::Falcon(CcScheme::kOcc), 2);
    SchemaBuilder a("alpha");
    a.AddU64();
    SchemaBuilder b("beta");
    b.AddU64();
    const TableId ta = engine.CreateTable(a, IndexKind::kHash);
    const TableId tb = engine.CreateTable(b, IndexKind::kBTree);
    Worker& w = engine.worker(0);
    {
      Txn txn = w.Begin();
      const uint64_t v = 500;
      ASSERT_EQ(txn.Insert(ta, 1, &v), Status::kOk);
      ASSERT_EQ(txn.Insert(tb, 1, &v), Status::kOk);
      ASSERT_EQ(txn.Commit(), Status::kOk);
    }
    engine.ArmCrashPoint(CrashPoint::kMidApply);
    try {
      Txn txn = w.Begin();
      const uint64_t a_new = 400;
      const uint64_t b_new = 600;
      ASSERT_EQ(txn.UpdateColumn(ta, 1, 0, &a_new), Status::kOk);
      ASSERT_EQ(txn.UpdateColumn(tb, 1, 0, &b_new), Status::kOk);
      txn.Commit();
      FAIL() << "crash point did not fire";
    } catch (const TxnCrashed&) {
    }
  }
  Engine recovered(&dev, EngineConfig::Falcon(CcScheme::kOcc), 2);
  const TableId ta = *recovered.FindTableId("alpha");
  const TableId tb = *recovered.FindTableId("beta");
  Worker& w = recovered.worker(0);
  Txn txn = w.Begin();
  uint64_t va = 0;
  uint64_t vb = 0;
  ASSERT_EQ(txn.ReadColumn(ta, 1, 0, &va), Status::kOk);
  ASSERT_EQ(txn.ReadColumn(tb, 1, 0, &vb), Status::kOk);
  txn.Commit();
  EXPECT_EQ(va + vb, 1000u) << "cross-table atomicity violated";
  EXPECT_EQ(va, 400u) << "mid-apply crash after commit mark must be completed by replay";
}

TEST(ArtTableTest, EngineRunsOnAdaptiveRadixTreeIndex) {
  // The third index family (§5.1: "Other indexes are also possible"): a
  // table indexed by the RoART-style ART, with scans and crash recovery.
  NvmDevice dev(512ul << 20);
  {
    Engine engine(&dev, EngineConfig::Falcon(CcScheme::kOcc), 2);
    SchemaBuilder schema("art_table");
    schema.AddU64();
    const TableId table = engine.CreateTable(schema, IndexKind::kArt);
    Worker& w = engine.worker(0);
    for (uint64_t k = 0; k < 500; ++k) {
      Txn txn = w.Begin();
      const uint64_t v = k * 11;
      ASSERT_EQ(txn.Insert(table, k * 2, &v), Status::kOk);
      ASSERT_EQ(txn.Commit(), Status::kOk);
    }
    // Updates, deletes, scans all work through the ART.
    {
      Txn txn = w.Begin();
      const uint64_t v = 777;
      ASSERT_EQ(txn.UpdateColumn(table, 10, 0, &v), Status::kOk);
      ASSERT_EQ(txn.Delete(table, 20), Status::kOk);
      ASSERT_EQ(txn.Commit(), Status::kOk);
    }
    Txn txn = w.Begin();
    std::vector<uint64_t> keys;
    ASSERT_EQ(txn.Scan(table, 10, 30, 100,
                       [&](uint64_t key, const std::byte*) { keys.push_back(key); }),
              Status::kOk);
    EXPECT_EQ(keys.size(), 10u);  // 10,12,...,30 minus deleted 20
    EXPECT_EQ(std::count(keys.begin(), keys.end(), 20), 0);
    txn.Commit();
  }
  // Crash + reopen: the NVM-resident ART recovers instantly.
  Engine recovered(&dev, EngineConfig::Falcon(CcScheme::kOcc), 2);
  EXPECT_TRUE(recovered.recovery_report().recovered);
  const TableId table = *recovered.FindTableId("art_table");
  Worker& w = recovered.worker(0);
  Txn txn = w.Begin();
  uint64_t got = 0;
  ASSERT_EQ(txn.ReadColumn(table, 10, 0, &got), Status::kOk);
  EXPECT_EQ(got, 777u);
  EXPECT_EQ(txn.ReadColumn(table, 20, 0, &got), Status::kNotFound);
  txn.Commit();
}

TEST(WorkerCountTest, RecoveryIgnoresMismatchedWorkerHint) {
  // Reopening with a different worker count must reuse the persisted layout.
  NvmDevice dev(256ul << 20);
  {
    Engine engine(&dev, EngineConfig::Falcon(CcScheme::kOcc), 4);
    SchemaBuilder schema("t");
    schema.AddU64();
    const TableId t = engine.CreateTable(schema, IndexKind::kHash);
    Worker& w = engine.worker(3);
    Txn txn = w.Begin();
    const uint64_t v = 9;
    ASSERT_EQ(txn.Insert(t, 1, &v), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  Engine recovered(&dev, EngineConfig::Falcon(CcScheme::kOcc), 16);
  EXPECT_EQ(recovered.worker_count(), 4u) << "log-region layout is persistent";
  Worker& w = recovered.worker(0);
  Txn txn = w.Begin();
  uint64_t got = 0;
  ASSERT_EQ(txn.ReadColumn(*recovered.FindTableId("t"), 1, 0, &got), Status::kOk);
  EXPECT_EQ(got, 9u);
  txn.Commit();
}

}  // namespace
}  // namespace falcon
