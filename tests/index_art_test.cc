// Unit + property tests for the RoART-style adaptive radix tree, over NVM
// and DRAM placements, including node growth through all four layouts,
// ordered scans, concurrency, and crash re-attachment.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/index/art_index.h"
#include "src/pmem/catalog.h"

namespace falcon {
namespace {

enum class Placement { kNvm, kDram };

class ArtIndexTest : public ::testing::TestWithParam<Placement> {
 protected:
  ArtIndexTest()
      : dev_(512ul * 1024 * 1024), arena_(NvmArena::Format(&dev_)), ctx_(0, &dev_) {
    if (GetParam() == Placement::kNvm) {
      space_ = std::make_unique<NvmIndexSpace>(&arena_);
    } else {
      space_ = std::make_unique<DramIndexSpace>();
    }
    index_ = std::make_unique<ArtIndex>(space_.get(), ctx_);
  }

  NvmDevice dev_;
  NvmArena arena_;
  ThreadContext ctx_;
  std::unique_ptr<IndexSpace> space_;
  std::unique_ptr<ArtIndex> index_;
};

TEST_P(ArtIndexTest, EmptyTreeLookups) {
  EXPECT_EQ(index_->Lookup(ctx_, 0), kNullPm);
  EXPECT_EQ(index_->Lookup(ctx_, UINT64_MAX), kNullPm);
  EXPECT_EQ(index_->Remove(ctx_, 1), Status::kNotFound);
  EXPECT_EQ(index_->Update(ctx_, 1, 2), Status::kNotFound);
  EXPECT_EQ(index_->Size(), 0u);
}

TEST_P(ArtIndexTest, SingleLeafRoot) {
  ASSERT_EQ(index_->Insert(ctx_, 42, 0x100), Status::kOk);
  EXPECT_EQ(index_->Lookup(ctx_, 42), 0x100u);
  EXPECT_EQ(index_->Lookup(ctx_, 43), kNullPm);
  EXPECT_EQ(index_->Insert(ctx_, 42, 0x200), Status::kDuplicate);
  EXPECT_EQ(index_->Remove(ctx_, 42), Status::kOk);
  EXPECT_EQ(index_->Lookup(ctx_, 42), kNullPm);
  EXPECT_EQ(index_->Size(), 0u);
}

TEST_P(ArtIndexTest, LeafSplitCreatesInnerNode) {
  // Two keys sharing 7 bytes of prefix: splits at the last byte.
  ASSERT_EQ(index_->Insert(ctx_, 0x1000, 1), Status::kOk);
  ASSERT_EQ(index_->Insert(ctx_, 0x1001, 2), Status::kOk);
  EXPECT_EQ(index_->Lookup(ctx_, 0x1000), 1u);
  EXPECT_EQ(index_->Lookup(ctx_, 0x1001), 2u);
  // A key diverging high up forces a path split near the root.
  ASSERT_EQ(index_->Insert(ctx_, 0xff00000000000000ull, 3), Status::kOk);
  EXPECT_EQ(index_->Lookup(ctx_, 0xff00000000000000ull), 3u);
  EXPECT_EQ(index_->Lookup(ctx_, 0x1000), 1u) << "path split must keep old subtree reachable";
}

TEST_P(ArtIndexTest, NodeGrowthThroughAllLayouts) {
  // 300 children under one radix byte: N4 -> N16 -> N48 -> N256.
  for (uint64_t k = 0; k < 256; ++k) {
    ASSERT_EQ(index_->Insert(ctx_, k << 8, k + 1), Status::kOk) << k;
  }
  for (uint64_t k = 0; k < 256; ++k) {
    EXPECT_EQ(index_->Lookup(ctx_, k << 8), k + 1) << k;
  }
  EXPECT_EQ(index_->Size(), 256u);
}

TEST_P(ArtIndexTest, SequentialAndSparseKeys) {
  for (uint64_t k = 0; k < 50000; ++k) {
    ASSERT_EQ(index_->Insert(ctx_, k, k + 1), Status::kOk);
  }
  // Sparse high keys exercise deep prefix compression.
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_EQ(index_->Insert(ctx_, (k << 40) | 0xdeadull, k), Status::kOk);
  }
  for (uint64_t k = 0; k < 50000; k += 997) {
    EXPECT_EQ(index_->Lookup(ctx_, k), k + 1);
  }
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(index_->Lookup(ctx_, (k << 40) | 0xdeadull), k);
  }
}

TEST_P(ArtIndexTest, ScanReturnsSortedRange) {
  for (uint64_t k = 0; k < 2000; ++k) {
    ASSERT_EQ(index_->Insert(ctx_, k * 3, k), Status::kOk);
  }
  std::vector<IndexEntry> out;
  ASSERT_EQ(index_->Scan(ctx_, 100, 400, 1000, out), Status::kOk);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front().key, 102u);  // first multiple of 3 >= 100
  EXPECT_EQ(out.back().key, 399u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end(),
                             [](const auto& a, const auto& b) { return a.key < b.key; }));
  EXPECT_EQ(out.size(), 100u);

  out.clear();
  ASSERT_EQ(index_->Scan(ctx_, 0, UINT64_MAX, 17, out), Status::kOk);
  EXPECT_EQ(out.size(), 17u);
  EXPECT_EQ(out.back().key, 48u);
}

TEST_P(ArtIndexTest, RandomizedAgainstReferenceMap) {
  std::map<uint64_t, uint64_t> reference;
  Rng rng(404);
  for (int op = 0; op < 60000; ++op) {
    // Mixed dense/sparse key space stresses both split kinds.
    const uint64_t key = rng.NextBounded(2) == 0 ? rng.NextBounded(1500)
                                                 : (rng.NextBounded(64) << 32);
    const uint64_t value = rng.Next() | 1;
    switch (rng.NextBounded(5)) {
      case 0: {
        const Status s = index_->Insert(ctx_, key, value);
        if (reference.count(key) != 0) {
          EXPECT_EQ(s, Status::kDuplicate);
        } else {
          EXPECT_EQ(s, Status::kOk);
          reference[key] = value;
        }
        break;
      }
      case 1: {
        const Status s = index_->Remove(ctx_, key);
        EXPECT_EQ(s, reference.erase(key) != 0 ? Status::kOk : Status::kNotFound);
        break;
      }
      case 2: {
        const Status s = index_->Update(ctx_, key, value);
        if (reference.count(key) != 0) {
          EXPECT_EQ(s, Status::kOk);
          reference[key] = value;
        } else {
          EXPECT_EQ(s, Status::kNotFound);
        }
        break;
      }
      case 3: {
        const PmOffset got = index_->Lookup(ctx_, key);
        const auto it = reference.find(key);
        EXPECT_EQ(got, it == reference.end() ? kNullPm : it->second);
        break;
      }
      default: {
        const uint64_t hi = key + rng.NextBounded(300);
        std::vector<IndexEntry> out;
        ASSERT_EQ(index_->Scan(ctx_, key, hi, 1000, out), Status::kOk);
        auto it = reference.lower_bound(key);
        size_t i = 0;
        while (it != reference.end() && it->first <= hi) {
          ASSERT_LT(i, out.size()) << "scan missed key " << it->first;
          EXPECT_EQ(out[i].key, it->first);
          EXPECT_EQ(out[i].value, it->second);
          ++i;
          ++it;
        }
        EXPECT_EQ(i, out.size());
        break;
      }
    }
  }
  EXPECT_EQ(index_->Size(), reference.size());
}

TEST_P(ArtIndexTest, ConcurrentDisjointInserts) {
  constexpr int kThreads = 6;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadContext ctx(static_cast<uint32_t>(t), &dev_);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t key = i * kThreads + static_cast<uint64_t>(t);
        ASSERT_EQ(index_->Insert(ctx, key, key + 1), Status::kOk);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(index_->Size(), kThreads * kPerThread);
  for (uint64_t key = 0; key < kThreads * kPerThread; key += 101) {
    EXPECT_EQ(index_->Lookup(ctx_, key), key + 1);
  }
}

TEST_P(ArtIndexTest, ConcurrentReadersDuringInserts) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> progress{0};
  constexpr uint64_t kKeys = 30000;

  std::thread writer([&] {
    ThreadContext ctx(1, &dev_);
    Rng rng(5);
    for (uint64_t k = 0; k < kKeys; ++k) {
      // Interleave dense and sparse keys to force prefix splits mid-run.
      const uint64_t key = (k % 3 == 0) ? (k << 24) : k;
      ASSERT_EQ(index_->Insert(ctx, key, key + 1), Status::kOk);
      progress.store(k, std::memory_order_release);
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      ThreadContext ctx(static_cast<uint32_t>(2 + t), &dev_);
      Rng rng(t);
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t hi = progress.load(std::memory_order_acquire);
        const uint64_t k = rng.NextBounded(hi + 1);
        const uint64_t key = (k % 3 == 0) ? (k << 24) : k;
        ASSERT_EQ(index_->Lookup(ctx, key), key + 1)
            << "published key lost during concurrent path splits";
      }
    });
  }
  writer.join();
  for (auto& th : readers) {
    th.join();
  }
}

INSTANTIATE_TEST_SUITE_P(Placements, ArtIndexTest,
                         ::testing::Values(Placement::kNvm, Placement::kDram),
                         [](const auto& info) {
                           return info.param == Placement::kNvm ? "Nvm" : "Dram";
                         });

TEST(ArtRecoveryTest, SurvivesReopen) {
  NvmDevice dev(256ul * 1024 * 1024);
  NvmArena arena = NvmArena::Format(&dev);
  ThreadContext ctx(0, &dev);
  NvmIndexSpace space(&arena);
  IndexHandle root;
  {
    ArtIndex index(&space, ctx);
    root = index.root_handle();
    for (uint64_t k = 0; k < 20000; ++k) {
      ASSERT_EQ(index.Insert(ctx, k * 7, k), Status::kOk);
    }
  }
  ArtIndex recovered(&space, root);
  recovered.Recover(ctx);
  EXPECT_EQ(recovered.Size(), 20000u);
  for (uint64_t k = 0; k < 20000; k += 53) {
    EXPECT_EQ(recovered.Lookup(ctx, k * 7), k);
  }
  std::vector<IndexEntry> out;
  ASSERT_EQ(recovered.Scan(ctx, 0, 70, 100, out), Status::kOk);
  EXPECT_EQ(out.size(), 11u);  // 0, 7, ..., 70
  EXPECT_EQ(recovered.Insert(ctx, 1, 99), Status::kOk);
}

}  // namespace
}  // namespace falcon
