// Delete-flag GC across recovery (paper §5.4): deleted-but-unreclaimed
// tuples must stay deleted after a reopen, the per-thread deleted lists must
// be rebuilt so reclamation keeps working, and delete-heavy transactions
// must stay atomic across crashes — including the update-then-delete and
// delete/revive/delete shapes that stress the tombstone bookkeeping.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/core/engine.h"

namespace falcon {
namespace {

struct Param {
  const char* label;
  EngineConfig (*make)(CcScheme);
  CcScheme cc;
};

EngineConfig MakeFalcon(CcScheme cc) { return EngineConfig::Falcon(cc); }
EngineConfig MakeOutp(CcScheme cc) { return EngineConfig::Outp(cc); }
EngineConfig MakeZenS(CcScheme cc) { return EngineConfig::ZenS(cc); }

class DeletedGcRecoveryTest : public ::testing::TestWithParam<Param> {
 protected:
  static constexpr uint64_t kRows = 64;

  DeletedGcRecoveryTest() : dev_(256ul * 1024 * 1024) { Open(); }

  void Open() {
    engine_ = std::make_unique<Engine>(&dev_, GetParam().make(GetParam().cc), 2);
    if (!engine_->recovery_report().recovered) {
      SchemaBuilder schema("t");
      schema.AddU64();
      schema.AddU64();
      table_ = engine_->CreateTable(schema, IndexKind::kHash);
      Worker& w = engine_->worker(0);
      for (uint64_t k = 0; k < kRows; ++k) {
        Txn txn = w.Begin();
        const uint64_t row[2] = {k, 100 + k};
        ASSERT_EQ(txn.Insert(table_, k, row), Status::kOk);
        ASSERT_EQ(txn.Commit(), Status::kOk);
      }
    } else {
      table_ = *engine_->FindTableId("t");
    }
  }

  void Reopen() {
    engine_.reset();
    Open();
    ASSERT_TRUE(engine_->recovery_report().recovered);
  }

  uint64_t ReadValue(uint64_t key) {
    Worker& w = engine_->worker(0);
    for (;;) {
      Txn txn = w.Begin();
      uint64_t value = 0;
      const Status s = txn.ReadColumn(table_, key, 1, &value);
      if (s == Status::kNotFound) {
        return UINT64_MAX;
      }
      if (s == Status::kOk && txn.Commit() == Status::kOk) {
        return value;
      }
    }
  }

  void Delete(uint64_t key) {
    Worker& w = engine_->worker(0);
    Txn txn = w.Begin();
    ASSERT_EQ(txn.Delete(table_, key), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }

  void Insert(uint64_t key, uint64_t value) {
    Worker& w = engine_->worker(0);
    Txn txn = w.Begin();
    const uint64_t row[2] = {key, value};
    ASSERT_EQ(txn.Insert(table_, key, row), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }

  NvmDevice dev_;
  std::unique_ptr<Engine> engine_;
  TableId table_ = 0;
};

TEST_P(DeletedGcRecoveryTest, DeletedStaysDeletedAfterReopen) {
  for (uint64_t k = 0; k < 16; ++k) {
    Delete(k);
  }
  Reopen();
  for (uint64_t k = 0; k < 16; ++k) {
    EXPECT_EQ(ReadValue(k), UINT64_MAX) << k;
  }
  for (uint64_t k = 16; k < 24; ++k) {
    EXPECT_EQ(ReadValue(k), 100 + k) << k;
  }
}

TEST_P(DeletedGcRecoveryTest, DeletedListIsRebuiltAndCounted) {
  for (uint64_t k = 0; k < 16; ++k) {
    Delete(k);
  }
  Reopen();
  // Stage 5 reconciliation must have walked the surviving tombstones.
  EXPECT_GE(engine_->recovery_report().deleted_entries, 16u);
}

TEST_P(DeletedGcRecoveryTest, TombstonesAreReclaimedAfterReopen) {
  for (uint64_t k = 0; k < 32; ++k) {
    Delete(k);
  }
  Reopen();
  const uint64_t slots_before = engine_->table_heap(table_).CountSlots();
  // Fresh inserts (new keys) should reuse the recovered tombstones instead
  // of growing the heap: every pre-crash delete is older than any
  // post-recovery TID, so the whole list is reclaimable.
  for (uint64_t k = 0; k < 32; ++k) {
    Insert(10000 + k, k);
  }
  const uint64_t slots_after = engine_->table_heap(table_).CountSlots();
  EXPECT_EQ(slots_after, slots_before)
      << "inserts after recovery must drain the rebuilt deleted list";
  for (uint64_t k = 0; k < 32; ++k) {
    EXPECT_EQ(ReadValue(10000 + k), k) << k;
  }
}

TEST_P(DeletedGcRecoveryTest, DeleteReviveDeleteSurvivesReopen) {
  // Exercises the tombstone "listed" bookkeeping: the revived tuple is still
  // chained in the deleted list, and the second delete must not corrupt it.
  Delete(3);
  Insert(3, 9001);
  EXPECT_EQ(ReadValue(3), 9001u);
  Delete(3);
  Reopen();
  EXPECT_EQ(ReadValue(3), UINT64_MAX);
  // The key (and the rest of the table) must remain fully usable.
  Insert(3, 9002);
  EXPECT_EQ(ReadValue(3), 9002u);
  EXPECT_EQ(ReadValue(4), 104u);
}

TEST_P(DeletedGcRecoveryTest, UpdateThenDeleteInOneTxnIsAtomicAcrossCrash) {
  for (const CrashPoint point : {CrashPoint::kBeforeCommitMark, CrashPoint::kAfterCommitMark}) {
    const uint64_t key = point == CrashPoint::kBeforeCommitMark ? 40 : 41;
    engine_->ArmCrashPoint(point);
    bool crashed = false;
    try {
      Worker& w = engine_->worker(0);
      Txn txn = w.Begin();
      const uint64_t v = 7777;
      ASSERT_EQ(txn.UpdateColumn(table_, key, 1, &v), Status::kOk);
      ASSERT_EQ(txn.Delete(table_, key), Status::kOk);
      txn.Commit();
    } catch (const TxnCrashed&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed) << static_cast<int>(point);
    Reopen();
    if (point == CrashPoint::kBeforeCommitMark) {
      EXPECT_EQ(ReadValue(key), 100 + key) << "all-old: neither update nor delete may land";
    } else {
      EXPECT_EQ(ReadValue(key), UINT64_MAX) << "all-new: the delete must be recovered";
    }
  }
}

TEST_P(DeletedGcRecoveryTest, CrashedDeleteLeavesKeyWritable) {
  engine_->ArmCrashPoint(CrashPoint::kMidApply);
  bool crashed = false;
  try {
    Worker& w = engine_->worker(0);
    Txn txn = w.Begin();
    ASSERT_EQ(txn.Delete(table_, 50), Status::kOk);
    ASSERT_EQ(txn.Delete(table_, 51), Status::kOk);
    txn.Commit();
  } catch (const TxnCrashed&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);
  Reopen();
  // Crash after the mark mid-apply: both deletes must be completed by replay.
  EXPECT_EQ(ReadValue(50), UINT64_MAX);
  EXPECT_EQ(ReadValue(51), UINT64_MAX);
  Insert(50, 1234);
  EXPECT_EQ(ReadValue(50), 1234u);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, DeletedGcRecoveryTest,
    ::testing::Values(Param{"Falcon_OCC", MakeFalcon, CcScheme::kOcc},
                      Param{"Falcon_2PL", MakeFalcon, CcScheme::k2pl},
                      Param{"Falcon_TO", MakeFalcon, CcScheme::kTo},
                      Param{"Falcon_MVOCC", MakeFalcon, CcScheme::kMvOcc},
                      Param{"Outp_OCC", MakeOutp, CcScheme::kOcc},
                      Param{"ZenS_OCC", MakeZenS, CcScheme::kOcc}),
    [](const auto& info) { return std::string(info.param.label); });

}  // namespace
}  // namespace falcon
