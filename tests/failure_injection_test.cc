// Failure injection: resource exhaustion and limit conditions must surface
// as clean status codes with the engine still usable — never corruption.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/engine.h"

namespace falcon {
namespace {

TEST(FailureInjectionTest, LogWindowOverflowAbortsCleanly) {
  // §5.5 ①: "The small log window design limits the redo log size of one
  // transaction." An oversized transaction must abort with kNoSpace and the
  // engine must keep working.
  NvmDevice dev(512ul << 20);
  EngineConfig config = EngineConfig::Falcon(CcScheme::kOcc);
  config.log_slot_bytes = 2048;  // tiny slots
  Engine engine(&dev, config, 2);
  SchemaBuilder schema("t");
  schema.AddColumn(256);
  const TableId table = engine.CreateTable(schema, IndexKind::kHash);

  Worker& w = engine.worker(0);
  std::vector<std::byte> row(256, std::byte{1});
  for (uint64_t k = 0; k < 20; ++k) {
    Txn txn = w.Begin();
    ASSERT_EQ(txn.Insert(table, k, row.data()), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }

  // One transaction updating many 256B tuples: (40 + 256) bytes per entry
  // overflows a 2KB slot at the 7th entry.
  Txn txn = w.Begin();
  Status s = Status::kOk;
  int applied = 0;
  for (uint64_t k = 0; k < 20 && s == Status::kOk; ++k) {
    s = txn.UpdateFull(table, k, row.data());
    if (s == Status::kOk) {
      ++applied;
    }
  }
  EXPECT_EQ(s, Status::kNoSpace);
  EXPECT_LT(applied, 20);

  // The engine is still fully usable and the failed txn left no effects.
  Txn check = w.Begin();
  std::vector<std::byte> got(256);
  ASSERT_EQ(check.Read(table, 0, got.data()), Status::kOk);
  ASSERT_EQ(check.Commit(), Status::kOk);
  Txn retry = w.Begin();
  ASSERT_EQ(retry.UpdateFull(table, 0, row.data()), Status::kOk);
  EXPECT_EQ(retry.Commit(), Status::kOk);
}

TEST(FailureInjectionTest, ArenaExhaustionSurfacesAsNoSpace) {
  // A tiny device runs out of 2MB pages; inserts must fail with kNoSpace
  // (not crash), and previously committed data stays readable.
  NvmDevice dev(8ul << 20);  // 4 pages: superblock + logs + little else
  EngineConfig config = EngineConfig::Falcon(CcScheme::kOcc);
  Engine engine(&dev, config, 1);
  SchemaBuilder schema("t");
  schema.AddColumn(1024);
  const TableId table = engine.CreateTable(schema, IndexKind::kHash);

  Worker& w = engine.worker(0);
  std::vector<std::byte> row(1024, std::byte{2});
  uint64_t inserted = 0;
  Status s = Status::kOk;
  for (uint64_t k = 0; k < 100000; ++k) {
    Txn txn = w.Begin();
    s = txn.Insert(table, k, row.data());
    if (s != Status::kOk) {
      txn.Abort();
      break;
    }
    if (txn.Commit() != Status::kOk) {
      break;
    }
    ++inserted;
  }
  EXPECT_EQ(s, Status::kNoSpace);
  EXPECT_GT(inserted, 0u);

  // Everything inserted before exhaustion is intact.
  Txn check = w.Begin();
  std::vector<std::byte> got(1024);
  ASSERT_EQ(check.Read(table, 0, got.data()), Status::kOk);
  EXPECT_EQ(got[10], std::byte{2});
  ASSERT_EQ(check.Read(table, inserted - 1, got.data()), Status::kOk);
  check.Commit();

  // Updates of existing tuples still work (no new allocation needed).
  Txn update = w.Begin();
  row[0] = std::byte{7};
  ASSERT_EQ(update.UpdateFull(table, 0, row.data()), Status::kOk);
  EXPECT_EQ(update.Commit(), Status::kOk);
}

TEST(FailureInjectionTest, DeleteReclaimReusesSpaceUnderPressure) {
  // With a nearly-full arena, deleting and re-inserting must recycle slots
  // through the deleted list instead of failing.
  NvmDevice dev(8ul << 20);
  Engine engine(&dev, EngineConfig::Falcon(CcScheme::kOcc), 1);
  SchemaBuilder schema("t");
  schema.AddColumn(1024);
  const TableId table = engine.CreateTable(schema, IndexKind::kHash);
  Worker& w = engine.worker(0);
  std::vector<std::byte> row(1024, std::byte{3});

  // Fill to exhaustion.
  uint64_t inserted = 0;
  for (uint64_t k = 0;; ++k) {
    Txn txn = w.Begin();
    if (txn.Insert(table, k, row.data()) != Status::kOk) {
      txn.Abort();
      break;
    }
    if (txn.Commit() != Status::kOk) {
      break;
    }
    ++inserted;
  }
  ASSERT_GT(inserted, 100u);

  // Delete a batch, then re-insert new keys: reclamation must serve them.
  for (uint64_t k = 0; k < 50; ++k) {
    Txn txn = w.Begin();
    ASSERT_EQ(txn.Delete(table, k), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  uint64_t reinserted = 0;
  for (uint64_t k = 0; k < 50; ++k) {
    Txn txn = w.Begin();
    const Status s = txn.Insert(table, 1000000 + k, row.data());
    if (s == Status::kOk && txn.Commit() == Status::kOk) {
      ++reinserted;
    }
  }
  EXPECT_GE(reinserted, 40u) << "deleted-list reclamation must recycle slots (§5.4)";
}

TEST(FailureInjectionTest, InvalidColumnAndReadOnlyViolations) {
  NvmDevice dev(64ul << 20);
  Engine engine(&dev, EngineConfig::Falcon(CcScheme::kOcc), 1);
  SchemaBuilder schema("t");
  schema.AddU64();
  const TableId table = engine.CreateTable(schema, IndexKind::kHash);
  Worker& w = engine.worker(0);
  const uint64_t v = 1;
  {
    Txn txn = w.Begin();
    ASSERT_EQ(txn.Insert(table, 1, &v), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  Txn txn = w.Begin();
  uint64_t out = 0;
  EXPECT_EQ(txn.ReadColumn(table, 1, /*column=*/5, &out), Status::kInvalidArgument);
  EXPECT_EQ(txn.UpdateColumn(table, 1, /*column=*/5, &v), Status::kInvalidArgument);
  EXPECT_EQ(txn.Commit(), Status::kOk);

  Txn ro = w.Begin(/*read_only=*/true);
  EXPECT_EQ(ro.UpdateColumn(table, 1, 0, &v), Status::kInvalidArgument);
  EXPECT_EQ(ro.Insert(table, 2, &v), Status::kInvalidArgument);
  EXPECT_EQ(ro.Delete(table, 1), Status::kInvalidArgument);
  EXPECT_EQ(ro.ReadColumn(table, 1, 0, &out), Status::kOk);
  EXPECT_EQ(ro.Commit(), Status::kOk);
}

TEST(FailureInjectionTest, OperationsAfterAbortAreRejected) {
  NvmDevice dev(64ul << 20);
  Engine engine(&dev, EngineConfig::Falcon(CcScheme::kOcc), 1);
  SchemaBuilder schema("t");
  schema.AddU64();
  const TableId table = engine.CreateTable(schema, IndexKind::kHash);
  Worker& w = engine.worker(0);
  const uint64_t v = 1;
  {
    Txn txn = w.Begin();
    ASSERT_EQ(txn.Insert(table, 1, &v), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  Txn txn = w.Begin();
  txn.Abort();
  uint64_t out = 0;
  EXPECT_EQ(txn.Read(table, 1, &out), Status::kAborted);
  EXPECT_EQ(txn.UpdateColumn(table, 1, 0, &v), Status::kAborted);
  EXPECT_EQ(txn.Insert(table, 2, &v), Status::kAborted);
  EXPECT_EQ(txn.Commit(), Status::kAborted);
  txn.Abort();  // double-abort is a no-op
}

TEST(FailureInjectionTest, CatalogTableLimitEnforcedThroughEngine) {
  NvmDevice dev(256ul << 20);
  Engine engine(&dev, EngineConfig::Falcon(CcScheme::kOcc), 1);
  for (uint32_t i = 0; i < kMaxTables; ++i) {
    SchemaBuilder schema(("t" + std::to_string(i)).c_str());
    schema.AddU64();
    engine.CreateTable(schema, IndexKind::kHash);
  }
  EXPECT_EQ(engine.FindTableId("t0").has_value(), true);
  EXPECT_EQ(engine.FindTableId("t15").has_value(), true);
  EXPECT_EQ(engine.FindTableId("t16").has_value(), false);
}

}  // namespace
}  // namespace falcon
