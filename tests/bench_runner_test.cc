// RunBench accounting: the two abort counters measure different things —
// attempt_aborts is what the bench loop saw (failed run_txn attempts),
// txn_aborts is what the engine did (every Txn::Abort, including internal
// retries that eventually committed) — and the metrics window matches the
// per-thread tallies. Also covers the strict env-knob parser: FALCON_BATCH
// and FALCON_SHARDS must reject zero/negative/non-numeric values loudly
// instead of silently running a different configuration.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>

#include "src/workload/bench_runner.h"

namespace falcon {
namespace {

constexpr uint64_t kRowBytes = 32;

struct Fixture {
  NvmDevice dev{256ul * 1024 * 1024};
  std::unique_ptr<Engine> engine;
  TableId table = kInvalidTable;

  explicit Fixture(uint32_t workers, EngineConfig config = EngineConfig::Falcon(CcScheme::kOcc)) {
    engine = std::make_unique<Engine>(&dev, config, workers);
    SchemaBuilder schema("t");
    schema.AddU64();
    schema.AddColumn(24);
    table = engine->CreateTable(schema, IndexKind::kHash);
    std::byte row[kRowBytes] = {};
    for (uint64_t k = 0; k < 64; ++k) {
      Txn txn = engine->worker(0).Begin();
      std::memcpy(row, &k, sizeof(k));
      EXPECT_EQ(txn.Insert(table, k, row), Status::kOk);
      EXPECT_EQ(txn.Commit(), Status::kOk);
    }
  }
};

TEST(BenchRunner, CleanRunHasNoAbortsOfEitherKind) {
  Fixture f(2);
  const BenchResult r = RunBench(*f.engine, 2, 50, [&](Worker& w, uint32_t t, uint64_t i) {
    const uint64_t v = i;
    Txn txn = w.Begin();
    // Partitioned keys: no conflicts possible.
    if (txn.UpdatePartial(f.table, t * 32 + i % 32, 0, 8, &v) != Status::kOk) {
      return false;
    }
    return txn.Commit() == Status::kOk;
  });
  EXPECT_EQ(r.commits, 100u);
  EXPECT_EQ(r.attempt_aborts, 0u);
  EXPECT_EQ(r.txn_aborts, 0u);
  EXPECT_EQ(r.AbortRate(), 0.0);
  // The metrics window agrees with the bench tallies.
  EXPECT_EQ(r.metrics.commits, 100u);
  EXPECT_EQ(r.metrics.txn_aborts, 0u);
  EXPECT_GT(r.metrics.sim_ns_max, 0u);
}

TEST(BenchRunner, InternalRetriesCountInTxnAbortsOnly) {
  Fixture f(1);
  // Every "transaction" aborts twice internally before committing — the shape
  // of a workload-level retry loop. The bench loop sees only successes.
  const BenchResult r = RunBench(*f.engine, 1, 20, [&](Worker& w, uint32_t, uint64_t i) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      Txn txn = w.Begin();
      const uint64_t v = i;
      (void)txn.UpdatePartial(f.table, i % 32, 0, 8, &v);
      txn.Abort();  // simulated internal failure
    }
    const uint64_t v = i;
    Txn txn = w.Begin();
    if (txn.UpdatePartial(f.table, i % 32, 0, 8, &v) != Status::kOk) {
      return false;
    }
    return txn.Commit() == Status::kOk;
  });
  EXPECT_EQ(r.commits, 20u);
  EXPECT_EQ(r.attempt_aborts, 0u);  // the loop never saw a failure...
  EXPECT_EQ(r.txn_aborts, 40u);     // ...but the engine aborted 2x per txn
  EXPECT_EQ(r.AbortRate(), 0.0);    // attempt-level rate
  EXPECT_EQ(r.metrics.aborts_user, 40u);
}

TEST(BenchRunner, FailedAttemptsCountInBoth) {
  Fixture f(1);
  // Every third attempt gives up (one engine abort, one failed attempt).
  const BenchResult r = RunBench(*f.engine, 1, 30, [&](Worker& w, uint32_t, uint64_t i) {
    Txn txn = w.Begin();
    const uint64_t v = i;
    if (txn.UpdatePartial(f.table, i % 32, 0, 8, &v) != Status::kOk) {
      return false;
    }
    if (i % 3 == 2) {
      txn.Abort();
      return false;
    }
    return txn.Commit() == Status::kOk;
  });
  EXPECT_EQ(r.commits, 20u);
  EXPECT_EQ(r.attempt_aborts, 10u);
  EXPECT_EQ(r.txn_aborts, 10u);
  // The invariant the two counters must always satisfy: the engine aborts at
  // least once per failed attempt.
  EXPECT_GE(r.txn_aborts, r.attempt_aborts);
  EXPECT_NEAR(r.AbortRate(), 10.0 / 30.0, 1e-12);
}

TEST(BenchRunner, MetricsWindowExcludesLoadPhase) {
  Fixture f(1);
  // The 64 loader inserts above happened before RunBench; the measured
  // window must contain only the benchmarked transactions.
  const BenchResult r = RunBench(*f.engine, 1, 10, [&](Worker& w, uint32_t, uint64_t i) {
    const uint64_t v = i;
    Txn txn = w.Begin();
    if (txn.UpdatePartial(f.table, i % 32, 0, 8, &v) != Status::kOk) {
      return false;
    }
    return txn.Commit() == Status::kOk;
  });
  EXPECT_EQ(r.metrics.commits, 10u);
  EXPECT_EQ(r.metrics.writes, 10u);
  // Device traffic in the window matches the DeviceStats the result reports.
  EXPECT_EQ(r.metrics.device_media_writes, r.device.media_writes);
}

// Sets (or unsets, for value == nullptr) an env var for one test and
// restores the previous state on scope exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) {
      old_ = old;
    }
    if (value != nullptr) {
      setenv(name, value, /*overwrite=*/1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_, old_.c_str(), /*overwrite=*/1);
    } else {
      unsetenv(name_);
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(PositiveKnob, ParseAcceptsPositiveIntegersAndClamps) {
  EXPECT_EQ(ParsePositiveKnob("1", 64), 1u);
  EXPECT_EQ(ParsePositiveKnob("8", 64), 8u);
  EXPECT_EQ(ParsePositiveKnob("64", 64), 64u);
  EXPECT_EQ(ParsePositiveKnob("007", 64), 7u);  // leading zeros are digits
  // A genuine positive value above the ceiling clamps instead of failing —
  // including digit strings past the uint64 range (strtoull ERANGE).
  EXPECT_EQ(ParsePositiveKnob("65", 64), 64u);
  EXPECT_EQ(ParsePositiveKnob("4294967296", 64), 64u);
  EXPECT_EQ(ParsePositiveKnob("99999999999999999999999999", 64), 64u);
}

TEST(PositiveKnob, ParseRejectsZeroNegativeAndNonNumeric) {
  EXPECT_FALSE(ParsePositiveKnob(nullptr, 64).has_value());
  EXPECT_FALSE(ParsePositiveKnob("", 64).has_value());
  EXPECT_FALSE(ParsePositiveKnob("0", 64).has_value());
  EXPECT_FALSE(ParsePositiveKnob("000", 64).has_value());
  // strtoull would silently wrap "-3" to a huge value; the parser must not.
  EXPECT_FALSE(ParsePositiveKnob("-3", 64).has_value());
  EXPECT_FALSE(ParsePositiveKnob("+4", 64).has_value());
  EXPECT_FALSE(ParsePositiveKnob("abc", 64).has_value());
  EXPECT_FALSE(ParsePositiveKnob("4x", 64).has_value());
  EXPECT_FALSE(ParsePositiveKnob(" 4", 64).has_value());
  EXPECT_FALSE(ParsePositiveKnob("4 ", 64).has_value());
  EXPECT_FALSE(ParsePositiveKnob("1e3", 64).has_value());
  EXPECT_FALSE(ParsePositiveKnob("0x8", 64).has_value());
}

TEST(PositiveKnob, BatchSizeFromEnvDefaultsParsesAndClamps) {
  {
    ScopedEnv unset("FALCON_BATCH", nullptr);
    EXPECT_EQ(BatchSizeFromEnv(), 1u) << "unset must select the serial path";
  }
  {
    ScopedEnv empty("FALCON_BATCH", "");
    EXPECT_EQ(BatchSizeFromEnv(), 1u) << "empty must behave like unset";
  }
  {
    ScopedEnv set("FALCON_BATCH", "8");
    EXPECT_EQ(BatchSizeFromEnv(), 8u);
  }
  {
    ScopedEnv big("FALCON_BATCH", "1000");
    EXPECT_EQ(BatchSizeFromEnv(), 64u) << "must clamp to the 64-frame ceiling";
  }
}

TEST(PositiveKnob, ShardCountFromEnvDefaultsParsesAndClamps) {
  {
    ScopedEnv unset("FALCON_SHARDS", nullptr);
    EXPECT_EQ(ShardCountFromEnv(), 0u) << "unset means 'run the default sweep'";
    EXPECT_EQ(ShardCountFromEnv(4), 4u);
  }
  {
    ScopedEnv set("FALCON_SHARDS", "3");
    EXPECT_EQ(ShardCountFromEnv(), 3u);
    EXPECT_EQ(ShardCountFromEnv(4), 3u) << "an explicit value beats the fallback";
  }
  {
    ScopedEnv big("FALCON_SHARDS", "200");
    EXPECT_EQ(ShardCountFromEnv(), 64u);
  }
}

// Malformed knobs are a hard error (exit 2): benches must never silently run
// a different configuration than the caller asked for.
TEST(PositiveKnobDeathTest, MalformedEnvValuesAreFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  {
    ScopedEnv zero("FALCON_BATCH", "0");
    EXPECT_EXIT(BatchSizeFromEnv(), ::testing::ExitedWithCode(2),
                "FALCON_BATCH.*not a positive integer");
  }
  {
    ScopedEnv negative("FALCON_BATCH", "-2");
    EXPECT_EXIT(BatchSizeFromEnv(), ::testing::ExitedWithCode(2),
                "not a positive integer");
  }
  {
    ScopedEnv junk("FALCON_SHARDS", "two");
    EXPECT_EXIT(ShardCountFromEnv(), ::testing::ExitedWithCode(2),
                "FALCON_SHARDS.*not a positive integer");
  }
}

}  // namespace
}  // namespace falcon
