// RunBench accounting: the two abort counters measure different things —
// attempt_aborts is what the bench loop saw (failed run_txn attempts),
// txn_aborts is what the engine did (every Txn::Abort, including internal
// retries that eventually committed) — and the metrics window matches the
// per-thread tallies.

#include <gtest/gtest.h>

#include <cstring>

#include "src/workload/bench_runner.h"

namespace falcon {
namespace {

constexpr uint64_t kRowBytes = 32;

struct Fixture {
  NvmDevice dev{256ul * 1024 * 1024};
  std::unique_ptr<Engine> engine;
  TableId table = kInvalidTable;

  explicit Fixture(uint32_t workers, EngineConfig config = EngineConfig::Falcon(CcScheme::kOcc)) {
    engine = std::make_unique<Engine>(&dev, config, workers);
    SchemaBuilder schema("t");
    schema.AddU64();
    schema.AddColumn(24);
    table = engine->CreateTable(schema, IndexKind::kHash);
    std::byte row[kRowBytes] = {};
    for (uint64_t k = 0; k < 64; ++k) {
      Txn txn = engine->worker(0).Begin();
      std::memcpy(row, &k, sizeof(k));
      EXPECT_EQ(txn.Insert(table, k, row), Status::kOk);
      EXPECT_EQ(txn.Commit(), Status::kOk);
    }
  }
};

TEST(BenchRunner, CleanRunHasNoAbortsOfEitherKind) {
  Fixture f(2);
  const BenchResult r = RunBench(*f.engine, 2, 50, [&](Worker& w, uint32_t t, uint64_t i) {
    const uint64_t v = i;
    Txn txn = w.Begin();
    // Partitioned keys: no conflicts possible.
    if (txn.UpdatePartial(f.table, t * 32 + i % 32, 0, 8, &v) != Status::kOk) {
      return false;
    }
    return txn.Commit() == Status::kOk;
  });
  EXPECT_EQ(r.commits, 100u);
  EXPECT_EQ(r.attempt_aborts, 0u);
  EXPECT_EQ(r.txn_aborts, 0u);
  EXPECT_EQ(r.AbortRate(), 0.0);
  // The metrics window agrees with the bench tallies.
  EXPECT_EQ(r.metrics.commits, 100u);
  EXPECT_EQ(r.metrics.txn_aborts, 0u);
  EXPECT_GT(r.metrics.sim_ns_max, 0u);
}

TEST(BenchRunner, InternalRetriesCountInTxnAbortsOnly) {
  Fixture f(1);
  // Every "transaction" aborts twice internally before committing — the shape
  // of a workload-level retry loop. The bench loop sees only successes.
  const BenchResult r = RunBench(*f.engine, 1, 20, [&](Worker& w, uint32_t, uint64_t i) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      Txn txn = w.Begin();
      const uint64_t v = i;
      (void)txn.UpdatePartial(f.table, i % 32, 0, 8, &v);
      txn.Abort();  // simulated internal failure
    }
    const uint64_t v = i;
    Txn txn = w.Begin();
    if (txn.UpdatePartial(f.table, i % 32, 0, 8, &v) != Status::kOk) {
      return false;
    }
    return txn.Commit() == Status::kOk;
  });
  EXPECT_EQ(r.commits, 20u);
  EXPECT_EQ(r.attempt_aborts, 0u);  // the loop never saw a failure...
  EXPECT_EQ(r.txn_aborts, 40u);     // ...but the engine aborted 2x per txn
  EXPECT_EQ(r.AbortRate(), 0.0);    // attempt-level rate
  EXPECT_EQ(r.metrics.aborts_user, 40u);
}

TEST(BenchRunner, FailedAttemptsCountInBoth) {
  Fixture f(1);
  // Every third attempt gives up (one engine abort, one failed attempt).
  const BenchResult r = RunBench(*f.engine, 1, 30, [&](Worker& w, uint32_t, uint64_t i) {
    Txn txn = w.Begin();
    const uint64_t v = i;
    if (txn.UpdatePartial(f.table, i % 32, 0, 8, &v) != Status::kOk) {
      return false;
    }
    if (i % 3 == 2) {
      txn.Abort();
      return false;
    }
    return txn.Commit() == Status::kOk;
  });
  EXPECT_EQ(r.commits, 20u);
  EXPECT_EQ(r.attempt_aborts, 10u);
  EXPECT_EQ(r.txn_aborts, 10u);
  // The invariant the two counters must always satisfy: the engine aborts at
  // least once per failed attempt.
  EXPECT_GE(r.txn_aborts, r.attempt_aborts);
  EXPECT_NEAR(r.AbortRate(), 10.0 / 30.0, 1e-12);
}

TEST(BenchRunner, MetricsWindowExcludesLoadPhase) {
  Fixture f(1);
  // The 64 loader inserts above happened before RunBench; the measured
  // window must contain only the benchmarked transactions.
  const BenchResult r = RunBench(*f.engine, 1, 10, [&](Worker& w, uint32_t, uint64_t i) {
    const uint64_t v = i;
    Txn txn = w.Begin();
    if (txn.UpdatePartial(f.table, i % 32, 0, 8, &v) != Status::kOk) {
      return false;
    }
    return txn.Commit() == Status::kOk;
  });
  EXPECT_EQ(r.metrics.commits, 10u);
  EXPECT_EQ(r.metrics.writes, 10u);
  // Device traffic in the window matches the DeviceStats the result reports.
  EXPECT_EQ(r.metrics.device_media_writes, r.device.media_writes);
}

}  // namespace
}  // namespace falcon
