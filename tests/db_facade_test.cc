// Database facade semantics: the M = 1 byte-identity guarantee (the facade
// adds zero device traffic over driving the Engine directly), cross-shard
// routing, 2PC accounting, multi-shard scan merging, rollback on abort, and
// recovery through the external-devices constructor.

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "src/db/database.h"

namespace falcon {
namespace {

constexpr uint64_t kDeviceBytes = 128ull << 20;

// Finds a key >= start routed to `shard`.
uint64_t KeyOnShard(const Database& db, TableId table, uint32_t shard, uint64_t start) {
  uint64_t key = start;
  while (db.ShardOf(table, key) != shard) {
    ++key;
  }
  return key;
}

// A fixed mixed workload driven through any Begin() callable returning a
// transaction handle with the shared Txn/DbTxn operation surface. Both the
// bare Engine and the M = 1 Database run this verbatim for the identity test.
template <typename BeginFn>
void RunIdentityWorkload(BeginFn begin, TableId hash_table, TableId btree_table) {
  Rng rng(0xfacadeull);
  auto commit = [](auto& txn) { ASSERT_EQ(txn.Commit(), Status::kOk); };
  // Inserts.
  for (uint64_t key = 1; key <= 64; ++key) {
    auto txn = begin();
    const uint64_t row[2] = {key, rng.Next() >> 1};
    ASSERT_EQ(txn.Insert(hash_table, key, row), Status::kOk);
    const uint64_t brow[2] = {key, key * 3};
    ASSERT_EQ(txn.Insert(btree_table, key, brow), Status::kOk);
    commit(txn);
  }
  // Mixed updates / reads / deletes.
  for (uint32_t i = 0; i < 128; ++i) {
    auto txn = begin();
    const uint64_t key = 1 + rng.NextBounded(64);
    switch (rng.NextBounded(4)) {
      case 0: {
        uint64_t value = 0;
        const Status s = txn.ReadColumn(hash_table, key, 1, &value);
        ASSERT_TRUE(s == Status::kOk || s == Status::kNotFound);
        break;
      }
      case 1: {
        const uint64_t v = rng.Next() >> 1;
        const Status s = txn.UpdateColumn(hash_table, key, 1, &v);
        ASSERT_TRUE(s == Status::kOk || s == Status::kNotFound);
        break;
      }
      case 2: {
        const Status s = txn.Delete(hash_table, key);
        ASSERT_TRUE(s == Status::kOk || s == Status::kNotFound);
        break;
      }
      default: {
        uint64_t seen = 0;
        ASSERT_EQ(txn.Scan(btree_table, 1, 64, 10,
                           [&seen](uint64_t, const std::byte*) { ++seen; }),
                  Status::kOk);
        break;
      }
    }
    commit(txn);
  }
}

bool SameDeviceStats(const DeviceStats& a, const DeviceStats& b, std::string* diff) {
  auto check = [&](const char* name, uint64_t x, uint64_t y) {
    if (x != y && diff->empty()) {
      *diff = std::string(name) + ": " + std::to_string(x) + " vs " + std::to_string(y);
    }
    return x == y;
  };
  bool same = check("line_writes", a.line_writes, b.line_writes) &
              check("media_writes", a.media_writes, b.media_writes) &
              check("media_reads", a.media_reads, b.media_reads) &
              check("full_drains", a.full_drains, b.full_drains) &
              check("partial_drains", a.partial_drains, b.partial_drains) &
              check("busy_ns", a.busy_ns, b.busy_ns);
  for (size_t r = 0; r < kMediaRegionCount; ++r) {
    same &= check(MediaRegionName(static_cast<MediaRegion>(r)),
                  a.region_line_writes[r], b.region_line_writes[r]);
    same &= check(MediaRegionName(static_cast<MediaRegion>(r)),
                  a.region_media_writes[r], b.region_media_writes[r]);
  }
  return same;
}

// The acceptance bar for the facade: with one shard, a workload driven
// through Database produces device traffic byte-identical to the same
// workload driven through the Engine directly.
TEST(DbFacade, SingleShardIsByteIdenticalToBareEngine) {
  const EngineConfig engine_cfg = EngineConfig::Falcon(CcScheme::kOcc);
  SchemaBuilder schema("identity");
  schema.AddU64();
  schema.AddU64();
  SchemaBuilder ordered("identity_btree");
  ordered.AddU64();
  ordered.AddU64();

  // Side A: bare engine.
  NvmDevice bare_dev(kDeviceBytes, engine_cfg.cost_params);
  DeviceStats bare_stats;
  MetricsSnapshot bare_metrics;
  {
    Engine engine(&bare_dev, engine_cfg, /*workers=*/1);
    const TableId hash_table = engine.CreateTable(schema, IndexKind::kHash);
    const TableId btree_table = engine.CreateTable(ordered, IndexKind::kBTree);
    Worker& w = engine.worker(0);
    RunIdentityWorkload([&w] { return w.Begin(); }, hash_table, btree_table);
    w.ctx().cache().WritebackAll();
    bare_dev.DrainAll();
    bare_stats = bare_dev.stats();
    bare_metrics = engine.SnapshotMetrics();
  }

  // Side B: the facade with M = 1.
  DatabaseConfig db_cfg;
  db_cfg.engine = engine_cfg;
  db_cfg.shards = 1;
  db_cfg.sessions = 1;
  db_cfg.device_bytes_per_shard = kDeviceBytes;
  Database db(db_cfg);
  const TableId hash_table = db.CreateTable(schema, IndexKind::kHash);
  const TableId btree_table = db.CreateTable(ordered, IndexKind::kBTree);
  RunIdentityWorkload([&db] { return db.Begin(0); }, hash_table, btree_table);
  db.engine(0).worker(0).ctx().cache().WritebackAll();
  db.engine(0).device()->DrainAll();

  std::string diff;
  EXPECT_TRUE(SameDeviceStats(bare_stats, db.engine(0).device()->stats(), &diff))
      << "facade changed device traffic at M=1: " << diff;

  // Engine-side accounting is identical too, not just the media image.
  const MetricsSnapshot facade_metrics = db.SnapshotMetrics();
  for (const MetricField& field : MetricFieldTable()) {
    EXPECT_EQ(MetricValue(bare_metrics, field), MetricValue(facade_metrics, field))
        << "metric " << field.name << " diverged at M=1";
  }
  EXPECT_EQ(facade_metrics.twopc_prepares, 0u);
}

class DbFacadeShardedTest : public ::testing::Test {
 protected:
  DbFacadeShardedTest() {
    cfg_.engine = EngineConfig::Falcon(CcScheme::kOcc);
    cfg_.shards = 2;
    cfg_.sessions = 2;
    cfg_.device_bytes_per_shard = kDeviceBytes;
    db_ = std::make_unique<Database>(cfg_);
    SchemaBuilder schema("pairs");
    schema.AddU64();
    schema.AddU64();
    table_ = db_->CreateTable(schema, IndexKind::kHash);
  }

  void InsertKey(uint64_t key, uint64_t value) {
    DbTxn txn = db_->Begin(0);
    const uint64_t row[2] = {key, value};
    ASSERT_EQ(txn.Insert(table_, key, row), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }

  uint64_t ReadKey(uint64_t key) {
    DbTxn txn = db_->Begin(0);
    uint64_t value = UINT64_MAX;
    const Status s = txn.ReadColumn(table_, key, 1, &value);
    EXPECT_TRUE(s == Status::kOk || s == Status::kNotFound);
    EXPECT_EQ(txn.Commit(), Status::kOk);
    return s == Status::kOk ? value : UINT64_MAX;
  }

  DatabaseConfig cfg_;
  std::unique_ptr<Database> db_;
  TableId table_ = kInvalidTable;
};

TEST_F(DbFacadeShardedTest, CrossShardCommitRunsTwoPcOnBothShards) {
  const uint64_t k0 = KeyOnShard(*db_, table_, 0, 1);
  const uint64_t k1 = KeyOnShard(*db_, table_, 1, 1);
  InsertKey(k0, 10);
  InsertKey(k1, 20);

  const MetricsSnapshot before = db_->SnapshotMetrics();
  DbTxn txn = db_->Begin(0);
  const uint64_t v0 = 11;
  const uint64_t v1 = 21;
  ASSERT_EQ(txn.UpdateColumn(table_, k0, 1, &v0), Status::kOk);
  ASSERT_EQ(txn.UpdateColumn(table_, k1, 1, &v1), Status::kOk);
  EXPECT_EQ(txn.branches_open(), 2u);
  ASSERT_EQ(txn.Commit(), Status::kOk);
  const MetricsSnapshot delta = DiffMetrics(before, db_->SnapshotMetrics());

  EXPECT_EQ(delta.twopc_prepares, 2u);  // coordinator + one participant
  EXPECT_EQ(delta.twopc_commits, 2u);
  EXPECT_EQ(delta.twopc_aborts, 0u);
  EXPECT_EQ(ReadKey(k0), v0);
  EXPECT_EQ(ReadKey(k1), v1);
}

TEST_F(DbFacadeShardedTest, SingleShardWritesSkipTwoPc) {
  const uint64_t a = KeyOnShard(*db_, table_, 0, 1);
  const uint64_t b = KeyOnShard(*db_, table_, 0, a + 1);
  const MetricsSnapshot before = db_->SnapshotMetrics();
  DbTxn txn = db_->Begin(0);
  const uint64_t rowa[2] = {a, 1};
  const uint64_t rowb[2] = {b, 2};
  ASSERT_EQ(txn.Insert(table_, a, rowa), Status::kOk);
  ASSERT_EQ(txn.Insert(table_, b, rowb), Status::kOk);
  ASSERT_EQ(txn.Commit(), Status::kOk);
  const MetricsSnapshot delta = DiffMetrics(before, db_->SnapshotMetrics());
  EXPECT_EQ(delta.twopc_prepares, 0u) << "same-shard writes must not pay for 2PC";
  EXPECT_EQ(delta.commits, 1u);
}

TEST_F(DbFacadeShardedTest, ReadOnlyBranchRidesSingleWriteShardCommit) {
  const uint64_t k0 = KeyOnShard(*db_, table_, 0, 1);
  const uint64_t k1 = KeyOnShard(*db_, table_, 1, 1);
  InsertKey(k0, 5);
  InsertKey(k1, 6);
  const MetricsSnapshot before = db_->SnapshotMetrics();
  DbTxn txn = db_->Begin(0);
  uint64_t seen = 0;
  ASSERT_EQ(txn.ReadColumn(table_, k0, 1, &seen), Status::kOk);
  EXPECT_EQ(seen, 5u);
  const uint64_t v = 7;
  ASSERT_EQ(txn.UpdateColumn(table_, k1, 1, &v), Status::kOk);
  EXPECT_EQ(txn.branches_open(), 2u);
  ASSERT_EQ(txn.Commit(), Status::kOk);
  const MetricsSnapshot delta = DiffMetrics(before, db_->SnapshotMetrics());
  EXPECT_EQ(delta.twopc_prepares, 0u) << "one write shard never needs 2PC";
  EXPECT_EQ(ReadKey(k1), v);
}

TEST_F(DbFacadeShardedTest, ReadYourOwnWritesAcrossShards) {
  const uint64_t k0 = KeyOnShard(*db_, table_, 0, 1);
  const uint64_t k1 = KeyOnShard(*db_, table_, 1, 1);
  DbTxn txn = db_->Begin(0);
  const uint64_t row0[2] = {k0, 100};
  const uint64_t row1[2] = {k1, 200};
  ASSERT_EQ(txn.Insert(table_, k0, row0), Status::kOk);
  ASSERT_EQ(txn.Insert(table_, k1, row1), Status::kOk);
  uint64_t v = 0;
  ASSERT_EQ(txn.ReadColumn(table_, k0, 1, &v), Status::kOk);
  EXPECT_EQ(v, 100u);
  ASSERT_EQ(txn.ReadColumn(table_, k1, 1, &v), Status::kOk);
  EXPECT_EQ(v, 200u);
  ASSERT_EQ(txn.Commit(), Status::kOk);
}

TEST_F(DbFacadeShardedTest, AbortRollsBackEveryShard) {
  const uint64_t k0 = KeyOnShard(*db_, table_, 0, 1);
  const uint64_t k1 = KeyOnShard(*db_, table_, 1, 1);
  InsertKey(k0, 1);
  InsertKey(k1, 2);
  {
    DbTxn txn = db_->Begin(0);
    const uint64_t v = 99;
    ASSERT_EQ(txn.UpdateColumn(table_, k0, 1, &v), Status::kOk);
    ASSERT_EQ(txn.UpdateColumn(table_, k1, 1, &v), Status::kOk);
    txn.Abort();
    EXPECT_FALSE(txn.active());
  }
  EXPECT_EQ(ReadKey(k0), 1u);
  EXPECT_EQ(ReadKey(k1), 2u);
  {
    // Implicit rollback on destruction behaves the same.
    DbTxn txn = db_->Begin(1);
    const uint64_t v = 98;
    ASSERT_EQ(txn.UpdateColumn(table_, k0, 1, &v), Status::kOk);
    ASSERT_EQ(txn.UpdateColumn(table_, k1, 1, &v), Status::kOk);
  }
  EXPECT_EQ(ReadKey(k0), 1u);
  EXPECT_EQ(ReadKey(k1), 2u);
}

TEST(DbFacadeScan, MergesShardsInKeyOrder) {
  DatabaseConfig cfg;
  cfg.engine = EngineConfig::Falcon(CcScheme::kOcc);
  cfg.shards = 2;
  cfg.sessions = 1;
  cfg.device_bytes_per_shard = kDeviceBytes;
  Database db(cfg);
  SchemaBuilder schema("ordered");
  schema.AddU64();
  schema.AddU64();
  const TableId table = db.CreateTable(schema, IndexKind::kBTree);

  std::set<uint32_t> shards_used;
  for (uint64_t key = 1; key <= 32; ++key) {
    DbTxn txn = db.Begin(0);
    const uint64_t row[2] = {key, key * 7};
    ASSERT_EQ(txn.Insert(table, key, row), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
    shards_used.insert(db.ShardOf(table, key));
  }
  ASSERT_EQ(shards_used.size(), 2u) << "hash routing left a shard empty";

  DbTxn txn = db.Begin(0);
  std::vector<uint64_t> keys;
  std::vector<uint64_t> values;
  ASSERT_EQ(txn.Scan(table, 1, 32, 10,
                     [&](uint64_t key, const std::byte* data) {
                       keys.push_back(key);
                       uint64_t v = 0;
                       std::memcpy(&v, data + sizeof(uint64_t), sizeof(v));
                       values.push_back(v);
                     }),
            Status::kOk);
  ASSERT_EQ(txn.Commit(), Status::kOk);
  ASSERT_EQ(keys.size(), 10u) << "limit not applied across the shard merge";
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i], i + 1) << "merge broke key order";
    EXPECT_EQ(values[i], (i + 1) * 7);
  }
}

TEST(DbFacadeRecovery, CrossShardCommitsSurviveReopen) {
  DatabaseConfig cfg;
  cfg.engine = EngineConfig::Falcon(CcScheme::kOcc);
  cfg.shards = 2;
  cfg.sessions = 1;
  cfg.device_bytes_per_shard = kDeviceBytes;
  std::vector<std::unique_ptr<NvmDevice>> devices;
  std::vector<NvmDevice*> raw;
  for (uint32_t s = 0; s < cfg.shards; ++s) {
    devices.push_back(
        std::make_unique<NvmDevice>(cfg.device_bytes_per_shard, cfg.engine.cost_params));
    raw.push_back(devices.back().get());
  }

  SchemaBuilder schema("durable_pairs");
  schema.AddU64();
  schema.AddU64();
  uint64_t k0 = 0;
  uint64_t k1 = 0;
  {
    Database db(cfg, raw);
    const TableId table = db.CreateTable(schema, IndexKind::kHash);
    k0 = KeyOnShard(db, table, 0, 1);
    k1 = KeyOnShard(db, table, 1, 1);
    DbTxn txn = db.Begin(0);
    const uint64_t row0[2] = {k0, 41};
    const uint64_t row1[2] = {k1, 42};
    ASSERT_EQ(txn.Insert(table, k0, row0), Status::kOk);
    ASSERT_EQ(txn.Insert(table, k1, row1), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
    for (uint32_t s = 0; s < cfg.shards; ++s) {
      db.engine(s).worker(0).ctx().cache().WritebackAll();
      db.engine(s).device()->DrainAll();
    }
  }

  Database db(cfg, raw);
  EXPECT_TRUE(db.recovered());
  const auto table = db.FindTableId("durable_pairs");
  ASSERT_TRUE(table.has_value());
  DbTxn txn = db.Begin(0);
  uint64_t v = 0;
  ASSERT_EQ(txn.ReadColumn(*table, k0, 1, &v), Status::kOk);
  EXPECT_EQ(v, 41u);
  ASSERT_EQ(txn.ReadColumn(*table, k1, 1, &v), Status::kOk);
  EXPECT_EQ(v, 42u);
  ASSERT_EQ(txn.Commit(), Status::kOk);
}

}  // namespace
}  // namespace falcon
