// Unit tests for the set-associative cache model: hit/miss behavior,
// eviction-driven NVM traffic, clwb semantics, small-window residency.

#include <gtest/gtest.h>

#include "src/common/constants.h"
#include "src/sim/cache_model.h"
#include "src/sim/nvm_device.h"
#include "src/sim/thread_context.h"

namespace falcon {
namespace {

class CacheModelTest : public ::testing::Test {
 protected:
  static constexpr size_t kCap = 16ul * 1024 * 1024;
  CacheModelTest() : dev_(kCap), cache_(&dev_, Geometry(), CostParams{}) {}

  static CacheGeometry Geometry() { return CacheGeometry{.sets = 64, .ways = 4}; }

  uintptr_t Addr(uint64_t offset) const {
    return reinterpret_cast<uintptr_t>(dev_.base()) + offset;
  }

  NvmDevice dev_;
  CacheModel cache_;
};

TEST_F(CacheModelTest, FirstTouchMissesThenHits) {
  const uint64_t miss_cost = cache_.OnLoad(Addr(0), 8);
  EXPECT_EQ(cache_.stats().misses, 1u);
  const uint64_t hit_cost = cache_.OnLoad(Addr(0), 8);
  EXPECT_EQ(cache_.stats().hits, 1u);
  EXPECT_GT(miss_cost, hit_cost);
}

TEST_F(CacheModelTest, NvmMissCostsMoreThanDramMiss) {
  CostParams p;
  const uint64_t nvm_cost = cache_.OnLoad(Addr(0), 1);
  alignas(64) static char dram_buf[64];
  const uint64_t dram_cost = cache_.OnLoad(reinterpret_cast<uintptr_t>(dram_buf), 1);
  EXPECT_EQ(nvm_cost, p.nvm_miss_ns);
  EXPECT_EQ(dram_cost, p.dram_miss_ns);
}

TEST_F(CacheModelTest, StoreMarksDirty) {
  cache_.OnStore(Addr(128), 8);
  EXPECT_TRUE(cache_.IsResident(Addr(128)));
  EXPECT_TRUE(cache_.IsDirty(Addr(128)));
  cache_.OnLoad(Addr(192), 8);
  EXPECT_FALSE(cache_.IsDirty(Addr(192)));
}

TEST_F(CacheModelTest, MultiLineAccessTouchesEveryLine) {
  cache_.OnStore(Addr(0), 256);  // 4 lines
  EXPECT_EQ(cache_.stats().misses, 4u);
  // Unaligned span crossing a line boundary touches both lines.
  cache_.OnLoad(Addr(1024 + 60), 8);
  EXPECT_EQ(cache_.stats().misses, 6u);
}

TEST_F(CacheModelTest, ClwbWritesBackDirtyLineAndKeepsItResident) {
  cache_.OnStore(Addr(0), 64);
  EXPECT_EQ(dev_.stats().line_writes, 0u);
  cache_.Clwb(Addr(0), 64);
  EXPECT_EQ(dev_.stats().line_writes, 1u);
  EXPECT_TRUE(cache_.IsResident(Addr(0)));
  EXPECT_FALSE(cache_.IsDirty(Addr(0)));
  // Second clwb of the now-clean line sends nothing.
  cache_.Clwb(Addr(0), 64);
  EXPECT_EQ(dev_.stats().line_writes, 1u);
}

TEST_F(CacheModelTest, ClwbOfTupleMergesIntoFullBlocks) {
  // Hinted flush: storing a 256B-aligned tuple and clwb-ing its whole span
  // produces exactly one full-block media write — no amplification.
  cache_.OnStore(Addr(512), 256);
  cache_.Clwb(Addr(512), 256);
  const DeviceStats s = dev_.stats();
  EXPECT_EQ(s.media_writes, 1u);
  EXPECT_EQ(s.media_reads, 0u);
  EXPECT_EQ(s.full_drains, 1u);
}

TEST_F(CacheModelTest, DirtyEvictionReachesDevice) {
  // Fill one set beyond capacity with dirty NVM lines. Set index is
  // line_tag % 64, so stride = 64 lines * 64 B = 4096 B keeps us in one set.
  const uint64_t stride = 64 * kCacheLineSize;
  for (uint64_t i = 0; i < 5; ++i) {  // 4 ways -> fifth store evicts
    cache_.OnStore(Addr(i * stride), 8);
  }
  EXPECT_EQ(cache_.stats().dirty_evictions, 1u);
  // Evicted lines sit in the (uncontrolled-order) eviction pool until it
  // fills or the cache is drained.
  cache_.WritebackAll();
  EXPECT_EQ(dev_.stats().line_writes, 5u);  // 1 eviction + 4 remaining dirty
}

TEST_F(CacheModelTest, EvictionOrderIsDecorrelated) {
  // Store a long contiguous region far larger than the cache: every line is
  // eventually evicted, but because eviction order is uncontrolled the
  // device sees mostly partial (read-modify-write) drains — unlike a clwb
  // sweep of the same region, which merges fully.
  const size_t region = 256 * 1024;  // 16x the 16KB cache
  for (size_t off = 0; off < region; off += kCacheLineSize) {
    cache_.OnStore(Addr(off), 8);
  }
  cache_.WritebackAll();
  dev_.DrainAll();
  const DeviceStats evicted = dev_.stats();
  EXPECT_GT(evicted.partial_drains, evicted.full_drains)
      << "uncontrolled evictions must not merge like hinted flushes";
}

TEST_F(CacheModelTest, LruEvictsColdestLine) {
  const uint64_t stride = 64 * kCacheLineSize;
  for (uint64_t i = 0; i < 4; ++i) {
    cache_.OnStore(Addr(i * stride), 8);
  }
  // Re-touch line 0 so line 1 becomes LRU.
  cache_.OnLoad(Addr(0), 8);
  cache_.OnStore(Addr(4 * stride), 8);
  EXPECT_TRUE(cache_.IsResident(Addr(0)));
  EXPECT_FALSE(cache_.IsResident(Addr(stride)));
}

TEST_F(CacheModelTest, HotWorkingSetStaysResident) {
  // The small-log-window property: a working set smaller than the cache that
  // is touched continuously is never evicted, so it generates zero NVM
  // writes even though it is dirty NVM data.
  const size_t window_bytes = 4 * 1024;  // cache is 64 sets * 4 ways * 64B = 16KB
  for (int round = 0; round < 100; ++round) {
    for (size_t off = 0; off < window_bytes; off += kCacheLineSize) {
      cache_.OnStore(Addr(off), kCacheLineSize);
    }
  }
  EXPECT_EQ(dev_.stats().line_writes, 0u);
  EXPECT_EQ(cache_.stats().dirty_evictions, 0u);
}

TEST_F(CacheModelTest, OversizedWorkingSetThrashes) {
  // A working set 4x the cache size cycled repeatedly evicts constantly —
  // the Fig. 12 regime where the log window no longer fits.
  const size_t window_bytes = 64 * 1024;
  for (int round = 0; round < 4; ++round) {
    for (size_t off = 0; off < window_bytes; off += kCacheLineSize) {
      cache_.OnStore(Addr(off), kCacheLineSize);
    }
  }
  EXPECT_GT(cache_.stats().dirty_evictions, 1000u);
  EXPECT_GT(dev_.stats().line_writes, 1000u);
}

TEST_F(CacheModelTest, WritebackAllFlushesEveryDirtyLine) {
  cache_.OnStore(Addr(0), 64);
  cache_.OnStore(Addr(4096), 64);
  alignas(64) static char dram_buf[64];
  cache_.OnStore(reinterpret_cast<uintptr_t>(dram_buf), 8);  // DRAM line: no NVM traffic
  cache_.WritebackAll();
  EXPECT_EQ(dev_.stats().line_writes, 2u);
  // Lines stay resident but clean; a second writeback is a no-op.
  cache_.WritebackAll();
  EXPECT_EQ(dev_.stats().line_writes, 2u);
}

TEST_F(CacheModelTest, InvalidateAllDropsWithoutWriteback) {
  cache_.OnStore(Addr(0), 64);
  cache_.InvalidateAll();
  EXPECT_FALSE(cache_.IsResident(Addr(0)));
  EXPECT_EQ(dev_.stats().line_writes, 0u);
}

TEST_F(CacheModelTest, SfenceCountsAndCharges) {
  CostParams p;
  EXPECT_EQ(cache_.Sfence(), p.sfence_ns);
  EXPECT_EQ(cache_.stats().sfences, 1u);
}

TEST(ThreadContextTest, StoreActuallyCopiesAndCharges) {
  NvmDevice dev(kPageSize);
  ThreadContext ctx(0, &dev, CacheGeometry{.sets = 16, .ways = 2});
  const uint64_t value = 0x1122334455667788ull;
  auto* slot = reinterpret_cast<uint64_t*>(dev.base());
  ctx.Store(slot, &value, sizeof(value));
  EXPECT_EQ(*slot, value);
  EXPECT_GT(ctx.sim_ns(), 0u);

  uint64_t read_back = 0;
  ctx.Load(&read_back, slot, sizeof(read_back));
  EXPECT_EQ(read_back, value);
}

TEST(ThreadContextTest, WorkAdvancesClock) {
  NvmDevice dev(kPageSize);
  ThreadContext ctx(3, &dev);
  EXPECT_EQ(ctx.thread_id(), 3u);
  ctx.Work(123);
  EXPECT_EQ(ctx.sim_ns(), 123u);
  ctx.ResetClock();
  EXPECT_EQ(ctx.sim_ns(), 0u);
}

TEST(ThreadContextTest, FlushSequenceReachesDevice) {
  NvmDevice dev(kPageSize);
  ThreadContext ctx(0, &dev);
  char buf[256] = {};
  // Store a 256B-aligned region in NVM and hint-flush it.
  auto* dst = dev.base() + 1024;
  ctx.Store(dst, buf, sizeof(buf));
  ctx.Sfence();
  ctx.Clwb(dst, sizeof(buf));
  EXPECT_EQ(dev.stats().line_writes, 4u);
  EXPECT_EQ(dev.stats().full_drains, 1u);
}

}  // namespace
}  // namespace falcon
