// TPC-C workload tests: loading, each transaction type, the standard mix,
// consistency invariants under concurrency, and cross-engine runs.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/workload/tpcc.h"

namespace falcon {
namespace {

TpccConfig SmallConfig() {
  TpccConfig c;
  c.warehouses = 2;
  c.districts_per_warehouse = 4;
  c.customers_per_district = 64;
  c.items = 200;
  c.initial_orders_per_district = 20;
  return c;
}

class TpccTest : public ::testing::Test {
 protected:
  TpccTest() : dev_(2ul << 30) { Setup(EngineConfig::Falcon(CcScheme::kOcc)); }

  void Setup(EngineConfig config) {
    engine_ = std::make_unique<Engine>(&dev_, config, 4);
    workload_ = std::make_unique<TpccWorkload>(engine_.get(), SmallConfig());
    workload_->LoadItems(engine_->worker(0));
    workload_->LoadWarehouseSlice(engine_->worker(0), 1, 1);
    workload_->LoadWarehouseSlice(engine_->worker(1), 2, 2);
  }

  NvmDevice dev_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<TpccWorkload> workload_;
};

TEST_F(TpccTest, LoadBuildsAllTables) {
  Worker& w = engine_->worker(0);
  Txn txn = w.Begin();
  uint64_t price = 0;
  EXPECT_EQ(txn.ReadColumn(workload_->item_, 1, ItemCol::kPrice, &price), Status::kOk);
  EXPECT_GT(price, 0u);
  uint64_t tax = 0;
  EXPECT_EQ(txn.ReadColumn(workload_->warehouse_, 1, WarehouseCol::kTax, &tax), Status::kOk);
  uint64_t balance = 0;
  EXPECT_EQ(txn.ReadColumn(workload_->customer_, (((1ull << 4) | 1) << 12) | 1,
                           CustomerCol::kBalance, &balance),
            Status::kOk);
  EXPECT_EQ(balance, 1'000'000'000ull);
  txn.Commit();
}

TEST_F(TpccTest, NewOrderAdvancesDistrictCounter) {
  Worker& w = engine_->worker(0);
  Rng rng(1);
  const uint64_t before = workload_->TotalNextOrderIds(w);
  int committed = 0;
  for (int i = 0; i < 50; ++i) {
    committed += workload_->NewOrder(w, rng) ? 1 : 0;
  }
  EXPECT_GT(committed, 30);  // ~1% intentional rollbacks
  const uint64_t after = workload_->TotalNextOrderIds(w);
  EXPECT_EQ(after - before, static_cast<uint64_t>(committed))
      << "each committed NewOrder bumps exactly one next_o_id";
}

TEST_F(TpccTest, PaymentMovesMoney) {
  Worker& w = engine_->worker(0);
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(workload_->Payment(w, rng));
  }
  // Warehouse ytd accumulated.
  Txn txn = w.Begin();
  uint64_t ytd = 0;
  ASSERT_EQ(txn.ReadColumn(workload_->warehouse_, 1, WarehouseCol::kYtd, &ytd), Status::kOk);
  EXPECT_GT(ytd, 0u);
  txn.Commit();
}

TEST_F(TpccTest, OrderStatusReadsLatestOrder) {
  Worker& w = engine_->worker(0);
  Rng rng(3);
  // Generate some orders first so customers have last_order set.
  for (int i = 0; i < 30; ++i) {
    workload_->NewOrder(w, rng);
  }
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(workload_->OrderStatus(w, rng));
  }
}

TEST_F(TpccTest, DeliveryConsumesNewOrders) {
  Worker& w = engine_->worker(0);
  Rng rng(4);
  // The loader put the newest third of initial orders into NEW-ORDER.
  int deliveries = 0;
  for (int i = 0; i < 10; ++i) {
    deliveries += workload_->Delivery(w, rng) ? 1 : 0;
  }
  EXPECT_GT(deliveries, 5);
  // Customers got credited for delivered orders.
  uint64_t credited = 0;
  for (uint64_t c = 1; c <= 64; ++c) {
    Txn txn = w.Begin();
    uint64_t cnt = 0;
    if (txn.ReadColumn(workload_->customer_, (((1ull << 4) | 1) << 12) | c,
                       CustomerCol::kDeliveryCnt, &cnt) == Status::kOk) {
      credited += cnt;
    }
    txn.Commit();
  }
  EXPECT_GT(credited, 0u);
}

TEST_F(TpccTest, StockLevelRuns) {
  Worker& w = engine_->worker(0);
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(workload_->StockLevel(w, rng));
  }
}

TEST_F(TpccTest, MixRunsAllTypes) {
  Worker& w = engine_->worker(0);
  Rng rng(6);
  TpccStats stats;
  for (int i = 0; i < 500; ++i) {
    bool committed = false;
    const TpccTxnType type = workload_->RunOne(w, rng, &committed);
    if (committed) {
      ++stats.committed[type];
    } else {
      ++stats.aborted[type];
    }
  }
  EXPECT_GT(stats.committed[kNewOrder], 150u);
  EXPECT_GT(stats.committed[kPayment], 150u);
  EXPECT_GT(stats.committed[kOrderStatus], 1u);
  EXPECT_GT(stats.committed[kDelivery], 1u);
  EXPECT_GT(stats.committed[kStockLevel], 1u);
}

TEST_F(TpccTest, ConcurrentMixPreservesOrderCountInvariant) {
  std::atomic<uint64_t> new_orders{0};
  std::vector<std::thread> threads;
  Worker& w0 = engine_->worker(0);
  const uint64_t before = workload_->TotalNextOrderIds(w0);
  for (uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Worker& w = engine_->worker(t);
      Rng rng(50 + t);
      for (int i = 0; i < 500; ++i) {
        bool committed = false;
        const TpccTxnType type = workload_->RunOne(w, rng, &committed);
        if (committed && type == kNewOrder) {
          new_orders.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  const uint64_t after = workload_->TotalNextOrderIds(w0);
  EXPECT_EQ(after - before, new_orders.load())
      << "district counters must equal committed NewOrders (serializability)";
}

struct EngineParam {
  const char* label;
  EngineConfig (*make)(CcScheme);
  CcScheme cc;
};

class TpccEngineMatrixTest : public ::testing::TestWithParam<EngineParam> {};

TEST_P(TpccEngineMatrixTest, MixRunsCleanlyOnEngine) {
  NvmDevice dev(2ul << 30);
  Engine engine(&dev, GetParam().make(GetParam().cc), 2);
  TpccConfig config = SmallConfig();
  config.warehouses = 1;
  config.districts_per_warehouse = 2;
  TpccWorkload workload(&engine, config);
  workload.LoadItems(engine.worker(0));
  workload.LoadWarehouseSlice(engine.worker(0), 1, 1);

  Worker& w = engine.worker(0);
  Rng rng(9);
  TpccStats stats;
  for (int i = 0; i < 300; ++i) {
    bool committed = false;
    const TpccTxnType type = workload.RunOne(w, rng, &committed);
    (committed ? stats.committed : stats.aborted)[type] += 1;
  }
  EXPECT_GT(stats.TotalCommitted(), 250u);
}

EngineConfig MxFalcon(CcScheme cc) { return EngineConfig::Falcon(cc); }
EngineConfig MxInp(CcScheme cc) { return EngineConfig::Inp(cc); }
EngineConfig MxOutp(CcScheme cc) { return EngineConfig::Outp(cc); }
EngineConfig MxZenS(CcScheme cc) { return EngineConfig::ZenS(cc); }

INSTANTIATE_TEST_SUITE_P(
    Engines, TpccEngineMatrixTest,
    ::testing::Values(EngineParam{"Falcon_OCC", MxFalcon, CcScheme::kOcc},
                      EngineParam{"Falcon_2PL", MxFalcon, CcScheme::k2pl},
                      EngineParam{"Falcon_TO", MxFalcon, CcScheme::kTo},
                      EngineParam{"Falcon_MV2PL", MxFalcon, CcScheme::kMv2pl},
                      EngineParam{"Falcon_MVTO", MxFalcon, CcScheme::kMvTo},
                      EngineParam{"Falcon_MVOCC", MxFalcon, CcScheme::kMvOcc},
                      EngineParam{"Inp_OCC", MxInp, CcScheme::kOcc},
                      EngineParam{"Outp_OCC", MxOutp, CcScheme::kOcc},
                      EngineParam{"ZenS_OCC", MxZenS, CcScheme::kOcc}),
    [](const auto& info) { return std::string(info.param.label); });

}  // namespace
}  // namespace falcon
