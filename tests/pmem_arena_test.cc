// Unit tests for the NVM arena: formatting, page allocation, bump
// allocation, offset translation, crash-survivable allocation state.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/pmem/arena.h"
#include "src/pmem/catalog.h"

namespace falcon {
namespace {

class ArenaTest : public ::testing::Test {
 protected:
  ArenaTest() : dev_(64ul * 1024 * 1024), arena_(NvmArena::Format(&dev_)) {}

  NvmDevice dev_;
  NvmArena arena_;
};

TEST_F(ArenaTest, FormatWritesSuperblock) {
  EXPECT_TRUE(NvmArena::IsFormatted(dev_));
  Superblock* sb = GetSuperblock(arena_);
  EXPECT_EQ(sb->magic, kArenaMagic);
  EXPECT_EQ(sb->generation.load(), 1u);
  EXPECT_EQ(sb->table_count, 0u);
  EXPECT_EQ(arena_.pages_allocated(), NvmArena::kSuperblockPages);
}

TEST_F(ArenaTest, UnformattedDeviceIsDetected) {
  NvmDevice fresh(kPageSize * 2);
  EXPECT_FALSE(NvmArena::IsFormatted(fresh));
}

TEST_F(ArenaTest, OpenSeesFormattedState) {
  GetSuperblock(arena_)->worker_count = 7;
  NvmArena reopened = NvmArena::Open(&dev_);
  EXPECT_EQ(GetSuperblock(reopened)->worker_count, 7u);
}

TEST_F(ArenaTest, AllocPageReturnsAlignedInitializedPages) {
  const PmOffset p1 = arena_.AllocPage(PagePurpose::kTupleHeap, 3, 5);
  ASSERT_NE(p1, kNullPm);
  EXPECT_EQ(p1 % kPageSize, 0u);
  auto* header = arena_.Ptr<PageHeader>(p1);
  EXPECT_EQ(header->purpose, static_cast<uint64_t>(PagePurpose::kTupleHeap));
  EXPECT_EQ(header->owner_thread, 3u);
  EXPECT_EQ(header->table_id, 5u);
  EXPECT_EQ(header->next_page, kNullPm);
  EXPECT_EQ(header->used_bytes.load(), kPageDataStart);

  const PmOffset p2 = arena_.AllocPage(PagePurpose::kLogWindow, 0, 0);
  EXPECT_EQ(p2, p1 + kPageSize);
}

TEST_F(ArenaTest, AllocPageFailsWhenFull) {
  const uint64_t capacity = arena_.page_capacity();
  PmOffset last = kNullPm;
  for (uint64_t i = NvmArena::kSuperblockPages; i < capacity; ++i) {
    last = arena_.AllocPage(PagePurpose::kTupleHeap, 0, 0);
    EXPECT_NE(last, kNullPm);
  }
  EXPECT_EQ(arena_.AllocPage(PagePurpose::kTupleHeap, 0, 0), kNullPm);
  // The failed attempt must not leak the cursor past capacity forever.
  EXPECT_EQ(arena_.pages_allocated(), capacity);
}

TEST_F(ArenaTest, OffsetPointerRoundTrip) {
  const PmOffset page = arena_.AllocPage(PagePurpose::kTupleHeap, 0, 0);
  auto* ptr = arena_.Ptr<std::byte>(page);
  EXPECT_EQ(arena_.Offset(ptr), page);
  EXPECT_EQ(arena_.Ptr<std::byte>(kNullPm), nullptr);
  EXPECT_EQ(arena_.Offset(nullptr), kNullPm);
}

TEST_F(ArenaTest, AllocFromPageBumpsWithAlignment) {
  const PmOffset page = arena_.AllocPage(PagePurpose::kTupleHeap, 0, 0);
  const PmOffset a = arena_.AllocFromPage(page, 100, 64);
  const PmOffset b = arena_.AllocFromPage(page, 100, 64);
  ASSERT_NE(a, kNullPm);
  ASSERT_NE(b, kNullPm);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 100);
}

TEST_F(ArenaTest, AllocFromPageRespectsCapacity) {
  const PmOffset page = arena_.AllocPage(PagePurpose::kTupleHeap, 0, 0);
  // Allocate 1MB chunks: the second one exhausts the 2MB page.
  EXPECT_NE(arena_.AllocFromPage(page, 1024 * 1024, 64), kNullPm);
  EXPECT_EQ(arena_.AllocFromPage(page, 1024 * 1024, 64), kNullPm);
}

TEST_F(ArenaTest, ConcurrentPageAllocationIsRaceFree) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 3;  // 24 pages total, within the 32-page arena
  std::vector<std::vector<PmOffset>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        results[t].push_back(
            arena_.AllocPage(PagePurpose::kTupleHeap, static_cast<uint32_t>(t), 0));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::vector<PmOffset> all;
  for (const auto& r : results) {
    all.insert(all.end(), r.begin(), r.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end()) << "duplicate page handed out";
  EXPECT_NE(all.front(), kNullPm);
}

TEST_F(ArenaTest, ConcurrentBumpAllocationIsRaceFree) {
  const PmOffset page = arena_.AllocPage(PagePurpose::kTupleHeap, 0, 0);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 512;
  std::vector<std::vector<PmOffset>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const PmOffset slot = arena_.AllocFromPage(page, 128, 64);
        if (slot != kNullPm) {
          results[t].push_back(slot);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::vector<PmOffset> all;
  for (const auto& r : results) {
    all.insert(all.end(), r.begin(), r.end());
  }
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads) * kPerThread);
  std::sort(all.begin(), all.end());
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i], all[i - 1] + 128) << "overlapping allocations";
  }
}

TEST_F(ArenaTest, AllocationStateSurvivesReopen) {
  // Simulated crash + recovery: the bump cursor lives in the superblock, so
  // a reopened arena continues allocating after the pre-crash pages.
  const PmOffset before = arena_.AllocPage(PagePurpose::kTupleHeap, 0, 0);
  NvmArena reopened = NvmArena::Open(&dev_);
  const PmOffset after = reopened.AllocPage(PagePurpose::kTupleHeap, 0, 0);
  EXPECT_EQ(after, before + kPageSize);
}

}  // namespace
}  // namespace falcon
