// Unit tests for the NVM device / XPBuffer model: merge behavior, write
// amplification accounting, eviction under pressure.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/common/constants.h"
#include "src/sim/nvm_device.h"

namespace falcon {
namespace {

class NvmDeviceTest : public ::testing::Test {
 protected:
  static constexpr size_t kCap = 8ul * 1024 * 1024;
  NvmDevice dev_{kCap};
};

uintptr_t LineAddr(NvmDevice& dev, uint64_t block, uint64_t line) {
  return reinterpret_cast<uintptr_t>(dev.base()) + block * kNvmBlockSize + line * kCacheLineSize;
}

TEST_F(NvmDeviceTest, ArenaIsUsableMemory) {
  auto* p = reinterpret_cast<uint64_t*>(dev_.base());
  p[0] = 0xdeadbeef;
  p[1000] = 42;
  EXPECT_EQ(p[0], 0xdeadbeefu);
  EXPECT_EQ(p[1000], 42u);
  EXPECT_GE(dev_.capacity(), kCap);
}

TEST_F(NvmDeviceTest, ContainsDetectsArenaBounds) {
  EXPECT_TRUE(dev_.Contains(dev_.base()));
  EXPECT_TRUE(dev_.Contains(dev_.base() + dev_.capacity() - 1));
  EXPECT_FALSE(dev_.Contains(dev_.base() + dev_.capacity()));
  int local = 0;
  EXPECT_FALSE(dev_.Contains(&local));
}

TEST_F(NvmDeviceTest, FourAdjacentLinesMergeIntoOneMediaWrite) {
  for (uint64_t line = 0; line < kLinesPerBlock; ++line) {
    dev_.LineWrite(LineAddr(dev_, 0, line));
  }
  const DeviceStats s = dev_.stats();
  EXPECT_EQ(s.line_writes, 4u);
  EXPECT_EQ(s.media_writes, 1u);
  EXPECT_EQ(s.media_reads, 0u);
  EXPECT_EQ(s.full_drains, 1u);
  EXPECT_EQ(s.partial_drains, 0u);
  // 4 x 64B app writes became 1 x 256B media write: amplification 1.0.
  EXPECT_DOUBLE_EQ(s.WriteAmplification(), 1.0);
}

TEST_F(NvmDeviceTest, SingleLineDrainIsReadModifyWrite) {
  dev_.LineWrite(LineAddr(dev_, 3, 1));
  dev_.DrainAll();
  const DeviceStats s = dev_.stats();
  EXPECT_EQ(s.line_writes, 1u);
  EXPECT_EQ(s.media_writes, 1u);
  EXPECT_EQ(s.media_reads, 1u);
  EXPECT_EQ(s.partial_drains, 1u);
  // 64B app write became 256B read + 256B write: amplification 8.0.
  EXPECT_DOUBLE_EQ(s.WriteAmplification(), 8.0);
}

TEST_F(NvmDeviceTest, RepeatedSameLineMergesInBuffer) {
  for (int i = 0; i < 10; ++i) {
    dev_.LineWrite(LineAddr(dev_, 5, 2));
  }
  dev_.DrainAll();
  const DeviceStats s = dev_.stats();
  EXPECT_EQ(s.line_writes, 10u);
  // All ten arrivals merge in the buffered block (it is re-touched before
  // its drain age expires): one drain total.
  EXPECT_EQ(s.media_writes, 1u);
}

TEST_F(NvmDeviceTest, IdleBlocksDrainByAge) {
  // Touch block 0 once, then stream enough unrelated traffic through the
  // same shard that block 0 exceeds its residency age and drains — so a
  // later re-flush of block 0 costs a second media write (what hot tuple
  // tracking avoids).
  dev_.LineWrite(LineAddr(dev_, 0, 0));
  for (uint64_t i = 1; i <= NvmDevice::kDrainAge + 2; ++i) {
    dev_.LineWrite(LineAddr(dev_, i * 8, 0));  // same shard (index % 8 == 0)
  }
  EXPECT_GE(dev_.stats().media_writes, 1u) << "idle block must have drained";
  dev_.LineWrite(LineAddr(dev_, 0, 0));
  dev_.DrainAll();
  EXPECT_GE(dev_.stats().media_writes, 2u);
}

TEST_F(NvmDeviceTest, ScatteredWritesThrashTheBuffer) {
  // Touch one line in each of many more blocks than the XPBuffer holds;
  // every drain is partial (RMW).
  constexpr uint64_t kBlocks = 4000;
  for (uint64_t b = 0; b < kBlocks; ++b) {
    dev_.LineWrite(LineAddr(dev_, b, 0));
  }
  dev_.DrainAll();
  const DeviceStats s = dev_.stats();
  EXPECT_EQ(s.line_writes, kBlocks);
  EXPECT_EQ(s.media_writes, kBlocks);
  EXPECT_EQ(s.media_reads, kBlocks);
  EXPECT_DOUBLE_EQ(s.WriteAmplification(), 8.0);
}

TEST_F(NvmDeviceTest, SequentialStreamMergesFully) {
  // Stream 1000 blocks of 4 adjacent lines each, in order: all full drains.
  constexpr uint64_t kBlocks = 1000;
  for (uint64_t b = 0; b < kBlocks; ++b) {
    for (uint64_t line = 0; line < kLinesPerBlock; ++line) {
      dev_.LineWrite(LineAddr(dev_, b, line));
    }
  }
  const DeviceStats s = dev_.stats();
  EXPECT_EQ(s.full_drains, kBlocks);
  EXPECT_EQ(s.media_reads, 0u);
  EXPECT_DOUBLE_EQ(s.WriteAmplification(), 1.0);
}

TEST_F(NvmDeviceTest, InterleavedDistantStreamsStillMergePerBlock) {
  // Two streams far apart, lines interleaved; the buffer holds both blocks so
  // both merge fully.
  for (uint64_t line = 0; line < kLinesPerBlock; ++line) {
    dev_.LineWrite(LineAddr(dev_, 10, line));
    dev_.LineWrite(LineAddr(dev_, 9000, line));
  }
  const DeviceStats s = dev_.stats();
  EXPECT_EQ(s.full_drains, 2u);
  EXPECT_EQ(s.media_reads, 0u);
}

TEST_F(NvmDeviceTest, BusyTimeAccumulates) {
  EXPECT_EQ(dev_.stats().busy_ns, 0u);
  for (uint64_t line = 0; line < kLinesPerBlock; ++line) {
    dev_.LineWrite(LineAddr(dev_, 0, line));
  }
  const uint64_t full = dev_.stats().busy_ns;
  EXPECT_EQ(full, dev_.params().media_write_ns);
  dev_.LineWrite(LineAddr(dev_, 1, 0));
  dev_.DrainAll();
  EXPECT_EQ(dev_.stats().busy_ns,
            full + dev_.params().media_write_ns + dev_.params().media_read_ns);
}

TEST_F(NvmDeviceTest, ResetStatsClearsCounters) {
  dev_.LineWrite(LineAddr(dev_, 0, 0));
  dev_.DrainAll();
  EXPECT_GT(dev_.stats().media_writes, 0u);
  dev_.ResetStats();
  const DeviceStats s = dev_.stats();
  EXPECT_EQ(s.line_writes, 0u);
  EXPECT_EQ(s.media_writes, 0u);
  EXPECT_EQ(s.busy_ns, 0u);
}

TEST_F(NvmDeviceTest, DrainAllIsIdempotent) {
  dev_.LineWrite(LineAddr(dev_, 2, 0));
  dev_.DrainAll();
  const uint64_t writes = dev_.stats().media_writes;
  dev_.DrainAll();
  EXPECT_EQ(dev_.stats().media_writes, writes);
}

TEST_F(NvmDeviceTest, ConcurrentWritersAreCountedExactly) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        // Each thread writes its own disjoint block range, all 4 lines.
        const uint64_t block = static_cast<uint64_t>(t) * kPerThread / 4 + i % (kPerThread / 4);
        dev_.LineWrite(LineAddr(dev_, block % 30000, i % kLinesPerBlock));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  dev_.DrainAll();
  const DeviceStats s = dev_.stats();
  EXPECT_EQ(s.line_writes, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.full_drains + s.partial_drains, s.media_writes);
}

TEST(NvmDeviceGeometryTest, CapacityRoundsUpToPage) {
  NvmDevice dev(1);
  EXPECT_EQ(dev.capacity() % kPageSize, 0u);
  EXPECT_GE(dev.capacity(), kPageSize);
}

TEST(NvmDeviceGeometryTest, TinyXpBufferStillWorks) {
  NvmDevice dev(kPageSize, CostParams{}, /*xpbuffer_blocks=*/8);
  for (uint64_t b = 0; b < 100; ++b) {
    dev.LineWrite(reinterpret_cast<uintptr_t>(dev.base()) + b * kNvmBlockSize);
  }
  dev.DrainAll();
  EXPECT_EQ(dev.stats().media_writes, 100u);
}

}  // namespace
}  // namespace falcon
