// Tests for ADR vs eADR crash semantics (paper §3.1): with a volatile cache
// (ADR), unflushed stores are lost on power failure; with a persistent cache
// (eADR), they survive without any clwb.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/constants.h"
#include "src/sim/semantic_cache.h"

namespace falcon {
namespace {

class SemanticCacheTest : public ::testing::Test {
 protected:
  SemanticCacheTest() { backing_.resize(64 * 1024); }

  std::byte* At(size_t off) { return backing_.data() + off; }

  std::vector<std::byte> backing_;
  SemanticCache cache_;
};

TEST_F(SemanticCacheTest, StoreIsBufferedNotPersistent) {
  const uint64_t v = 42;
  cache_.Store(At(0), &v, sizeof(v));
  // Backing memory (the "NVM image") does not see the store yet.
  uint64_t raw = 0;
  std::memcpy(&raw, At(0), sizeof(raw));
  EXPECT_EQ(raw, 0u);
  // But the program's own view through the cache does.
  uint64_t through = 0;
  cache_.Load(&through, At(0), sizeof(through));
  EXPECT_EQ(through, 42u);
}

TEST_F(SemanticCacheTest, ClwbPersistsTheLine) {
  const uint64_t v = 7;
  cache_.Store(At(128), &v, sizeof(v));
  cache_.Clwb(At(128), sizeof(v));
  uint64_t raw = 0;
  std::memcpy(&raw, At(128), sizeof(raw));
  EXPECT_EQ(raw, 7u);
}

TEST_F(SemanticCacheTest, AdrCrashLosesUnflushedStores) {
  const uint64_t flushed = 1;
  const uint64_t unflushed = 2;
  cache_.Store(At(0), &flushed, sizeof(flushed));
  cache_.Clwb(At(0), sizeof(flushed));
  cache_.Store(At(256), &unflushed, sizeof(unflushed));
  cache_.CrashAdr();

  uint64_t a = 0;
  uint64_t b = 0;
  std::memcpy(&a, At(0), sizeof(a));
  std::memcpy(&b, At(256), sizeof(b));
  EXPECT_EQ(a, 1u) << "clwb'd data must survive an ADR crash";
  EXPECT_EQ(b, 0u) << "un-flushed data must be lost on an ADR crash";
}

TEST_F(SemanticCacheTest, EadrCrashPreservesEverything) {
  const uint64_t v1 = 11;
  const uint64_t v2 = 22;
  cache_.Store(At(0), &v1, sizeof(v1));
  cache_.Store(At(256), &v2, sizeof(v2));
  cache_.CrashEadr();

  uint64_t a = 0;
  uint64_t b = 0;
  std::memcpy(&a, At(0), sizeof(a));
  std::memcpy(&b, At(256), sizeof(b));
  EXPECT_EQ(a, 11u);
  EXPECT_EQ(b, 22u);
  EXPECT_EQ(cache_.dirty_lines(), 0u);
}

TEST_F(SemanticCacheTest, PartialLineStoresMergeInBuffer) {
  const uint32_t lo = 0xaaaaaaaa;
  const uint32_t hi = 0xbbbbbbbb;
  cache_.Store(At(0), &lo, sizeof(lo));
  cache_.Store(At(4), &hi, sizeof(hi));
  uint64_t combined = 0;
  cache_.Load(&combined, At(0), sizeof(combined));
  EXPECT_EQ(combined, 0xbbbbbbbbaaaaaaaaull);
}

TEST_F(SemanticCacheTest, SpanningStoreCrossesLines) {
  std::vector<std::byte> src(kCacheLineSize * 3, std::byte{0x5a});
  cache_.Store(At(32), src.data(), src.size());  // unaligned, spans 4 lines
  std::vector<std::byte> dst(src.size());
  cache_.Load(dst.data(), At(32), dst.size());
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
  cache_.CrashEadr();
  EXPECT_EQ(std::memcmp(src.data(), At(32), src.size()), 0);
}

TEST_F(SemanticCacheTest, CapacityEvictionPersistsLikeHardware) {
  // Cache with room for 4 lines; writing 8 distinct lines evicts the first
  // ones to backing memory — eviction persists data even under ADR.
  SemanticCache tiny(4);
  for (uint64_t i = 0; i < 8; ++i) {
    tiny.Store(At(i * kCacheLineSize), &i, sizeof(i));
  }
  tiny.CrashAdr();
  uint64_t first = 99;
  std::memcpy(&first, At(0), sizeof(first));
  EXPECT_EQ(first, 0u) << "evicted line reached NVM before the crash";
  uint64_t last = 99;
  std::memcpy(&last, At(7 * kCacheLineSize), sizeof(last));
  EXPECT_EQ(last, 0u) << "the most recent line was still cached and is lost";
}

TEST_F(SemanticCacheTest, LoadSeesMixOfCachedAndBackingData) {
  // Line 0 cached-dirty, line 1 only in backing memory.
  const uint64_t cached = 5;
  cache_.Store(At(0), &cached, sizeof(cached));
  const uint64_t direct = 6;
  std::memcpy(At(kCacheLineSize), &direct, sizeof(direct));

  uint64_t a = 0;
  uint64_t b = 0;
  cache_.Load(&a, At(0), sizeof(a));
  cache_.Load(&b, At(kCacheLineSize), sizeof(b));
  EXPECT_EQ(a, 5u);
  EXPECT_EQ(b, 6u);
}

TEST_F(SemanticCacheTest, RedoLogCommitProtocolSurvivesEadrCrash) {
  // Miniature small-log-window protocol: write redo payload + COMMITTED flag
  // with no flushes at all, crash under eADR, verify recovery sees both.
  struct LogSlot {
    uint64_t state;  // 0=free, 1=uncommitted, 2=committed
    uint64_t payload[4];
  };
  LogSlot slot = {};
  slot.state = 1;
  slot.payload[0] = 0xfeed;
  cache_.Store(At(512), &slot, sizeof(slot));
  const uint64_t committed = 2;
  cache_.Store(At(512), &committed, sizeof(committed));
  cache_.CrashEadr();

  LogSlot recovered = {};
  std::memcpy(&recovered, At(512), sizeof(recovered));
  EXPECT_EQ(recovered.state, 2u);
  EXPECT_EQ(recovered.payload[0], 0xfeedu);
}

TEST_F(SemanticCacheTest, RedoLogProtocolNeedsFlushUnderAdr) {
  // The same protocol without flushes loses the log under ADR — the reason
  // volatile-cache engines must flush logs before commit.
  const uint64_t committed_state = 2;
  cache_.Store(At(512), &committed_state, sizeof(committed_state));
  cache_.CrashAdr();
  uint64_t recovered_state = 0;
  std::memcpy(&recovered_state, At(512), sizeof(recovered_state));
  EXPECT_EQ(recovered_state, 0u);
}

}  // namespace
}  // namespace falcon
