// Tests for ADR vs eADR crash semantics (paper §3.1): with a volatile cache
// (ADR), unflushed stores are lost on power failure; with a persistent cache
// (eADR), they survive without any clwb.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/constants.h"
#include "src/sim/semantic_cache.h"

namespace falcon {
namespace {

class SemanticCacheTest : public ::testing::Test {
 protected:
  SemanticCacheTest() { backing_.resize(64 * 1024); }

  std::byte* At(size_t off) { return backing_.data() + off; }

  // Like At(), but relative to the first XPBuffer-block-aligned address, so
  // line/block arithmetic in tests is exact.
  std::byte* AlignedAt(size_t off) {
    const auto raw = reinterpret_cast<uintptr_t>(backing_.data());
    const uintptr_t base = (raw + kNvmBlockSize - 1) & ~(kNvmBlockSize - 1);
    return reinterpret_cast<std::byte*>(base) + off;
  }

  std::vector<std::byte> backing_;
  SemanticCache cache_;
};

TEST_F(SemanticCacheTest, StoreIsBufferedNotPersistent) {
  const uint64_t v = 42;
  cache_.Store(At(0), &v, sizeof(v));
  // Backing memory (the "NVM image") does not see the store yet.
  uint64_t raw = 0;
  std::memcpy(&raw, At(0), sizeof(raw));
  EXPECT_EQ(raw, 0u);
  // But the program's own view through the cache does.
  uint64_t through = 0;
  cache_.Load(&through, At(0), sizeof(through));
  EXPECT_EQ(through, 42u);
}

TEST_F(SemanticCacheTest, ClwbPersistsTheLine) {
  const uint64_t v = 7;
  cache_.Store(At(128), &v, sizeof(v));
  cache_.Clwb(At(128), sizeof(v));
  uint64_t raw = 0;
  std::memcpy(&raw, At(128), sizeof(raw));
  EXPECT_EQ(raw, 7u);
}

TEST_F(SemanticCacheTest, AdrCrashLosesUnflushedStores) {
  const uint64_t flushed = 1;
  const uint64_t unflushed = 2;
  cache_.Store(At(0), &flushed, sizeof(flushed));
  cache_.Clwb(At(0), sizeof(flushed));
  cache_.Store(At(256), &unflushed, sizeof(unflushed));
  cache_.CrashAdr();

  uint64_t a = 0;
  uint64_t b = 0;
  std::memcpy(&a, At(0), sizeof(a));
  std::memcpy(&b, At(256), sizeof(b));
  EXPECT_EQ(a, 1u) << "clwb'd data must survive an ADR crash";
  EXPECT_EQ(b, 0u) << "un-flushed data must be lost on an ADR crash";
}

TEST_F(SemanticCacheTest, EadrCrashPreservesEverything) {
  const uint64_t v1 = 11;
  const uint64_t v2 = 22;
  cache_.Store(At(0), &v1, sizeof(v1));
  cache_.Store(At(256), &v2, sizeof(v2));
  cache_.CrashEadr();

  uint64_t a = 0;
  uint64_t b = 0;
  std::memcpy(&a, At(0), sizeof(a));
  std::memcpy(&b, At(256), sizeof(b));
  EXPECT_EQ(a, 11u);
  EXPECT_EQ(b, 22u);
  EXPECT_EQ(cache_.dirty_lines(), 0u);
}

TEST_F(SemanticCacheTest, PartialLineStoresMergeInBuffer) {
  const uint32_t lo = 0xaaaaaaaa;
  const uint32_t hi = 0xbbbbbbbb;
  cache_.Store(At(0), &lo, sizeof(lo));
  cache_.Store(At(4), &hi, sizeof(hi));
  uint64_t combined = 0;
  cache_.Load(&combined, At(0), sizeof(combined));
  EXPECT_EQ(combined, 0xbbbbbbbbaaaaaaaaull);
}

TEST_F(SemanticCacheTest, SpanningStoreCrossesLines) {
  std::vector<std::byte> src(kCacheLineSize * 3, std::byte{0x5a});
  cache_.Store(At(32), src.data(), src.size());  // unaligned, spans 4 lines
  std::vector<std::byte> dst(src.size());
  cache_.Load(dst.data(), At(32), dst.size());
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
  cache_.CrashEadr();
  EXPECT_EQ(std::memcmp(src.data(), At(32), src.size()), 0);
}

TEST_F(SemanticCacheTest, CapacityEvictionPersistsLikeHardware) {
  // Cache with room for 4 lines; writing 8 distinct lines evicts the first
  // ones to backing memory — eviction persists data even under ADR.
  SemanticCache tiny(4);
  for (uint64_t i = 0; i < 8; ++i) {
    tiny.Store(At(i * kCacheLineSize), &i, sizeof(i));
  }
  tiny.CrashAdr();
  uint64_t first = 99;
  std::memcpy(&first, At(0), sizeof(first));
  EXPECT_EQ(first, 0u) << "evicted line reached NVM before the crash";
  uint64_t last = 99;
  std::memcpy(&last, At(7 * kCacheLineSize), sizeof(last));
  EXPECT_EQ(last, 0u) << "the most recent line was still cached and is lost";
}

TEST_F(SemanticCacheTest, LoadSeesMixOfCachedAndBackingData) {
  // Line 0 cached-dirty, line 1 only in backing memory.
  const uint64_t cached = 5;
  cache_.Store(At(0), &cached, sizeof(cached));
  const uint64_t direct = 6;
  std::memcpy(At(kCacheLineSize), &direct, sizeof(direct));

  uint64_t a = 0;
  uint64_t b = 0;
  cache_.Load(&a, At(0), sizeof(a));
  cache_.Load(&b, At(kCacheLineSize), sizeof(b));
  EXPECT_EQ(a, 5u);
  EXPECT_EQ(b, 6u);
}

TEST_F(SemanticCacheTest, RedoLogCommitProtocolSurvivesEadrCrash) {
  // Miniature small-log-window protocol: write redo payload + COMMITTED flag
  // with no flushes at all, crash under eADR, verify recovery sees both.
  struct LogSlot {
    uint64_t state;  // 0=free, 1=uncommitted, 2=committed
    uint64_t payload[4];
  };
  LogSlot slot = {};
  slot.state = 1;
  slot.payload[0] = 0xfeed;
  cache_.Store(At(512), &slot, sizeof(slot));
  const uint64_t committed = 2;
  cache_.Store(At(512), &committed, sizeof(committed));
  cache_.CrashEadr();

  LogSlot recovered = {};
  std::memcpy(&recovered, At(512), sizeof(recovered));
  EXPECT_EQ(recovered.state, 2u);
  EXPECT_EQ(recovered.payload[0], 0xfeedu);
}

TEST_F(SemanticCacheTest, RedoLogProtocolNeedsFlushUnderAdr) {
  // The same protocol without flushes loses the log under ADR — the reason
  // volatile-cache engines must flush logs before commit.
  const uint64_t committed_state = 2;
  cache_.Store(At(512), &committed_state, sizeof(committed_state));
  cache_.CrashAdr();
  uint64_t recovered_state = 0;
  std::memcpy(&recovered_state, At(512), sizeof(recovered_state));
  EXPECT_EQ(recovered_state, 0u);
}

// ---- Crash edge cases --------------------------------------------------------

TEST_F(SemanticCacheTest, DirtyLinesStraddlingXpBufferBlocks) {
  // A store whose dirty lines straddle a 256B XPBuffer block boundary: lines
  // at 192 (block 0) and 256 (block 1). Flushing only the first line and
  // crashing under ADR must tear the write exactly at the block boundary.
  std::vector<std::byte> src(2 * kCacheLineSize, std::byte{0x7e});
  cache_.Store(AlignedAt(kNvmBlockSize - kCacheLineSize), src.data(), src.size());

  // Both lines are at risk, and they live in different XPBuffer blocks.
  EXPECT_TRUE(cache_.IsDirty(AlignedAt(kNvmBlockSize - kCacheLineSize)));
  EXPECT_TRUE(cache_.IsDirty(AlignedAt(kNvmBlockSize)));
  std::vector<uintptr_t> blocks;
  cache_.ForEachDirtyLine(
      [&](uintptr_t line) { blocks.push_back(line / kNvmBlockSize); });
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_NE(blocks[0], blocks[1]) << "the two dirty lines must span two blocks";

  cache_.Clwb(AlignedAt(kNvmBlockSize - kCacheLineSize), kCacheLineSize);
  cache_.CrashAdr();

  // First line persisted, second line (the other block) lost.
  EXPECT_EQ(std::memcmp(src.data(), AlignedAt(kNvmBlockSize - kCacheLineSize), kCacheLineSize), 0);
  std::vector<std::byte> zeros(kCacheLineSize, std::byte{0});
  EXPECT_EQ(std::memcmp(zeros.data(), AlignedAt(kNvmBlockSize), kCacheLineSize), 0)
      << "the unflushed line straddling into the next block must be lost";
}

TEST_F(SemanticCacheTest, CrashOnEmptyCacheIsHarmless) {
  // Power failure with nothing buffered: both models are no-ops and must not
  // disturb the persistent image.
  const uint64_t v = 77;
  std::memcpy(At(0), &v, sizeof(v));
  EXPECT_FALSE(cache_.IsDirty(At(0)));
  cache_.CrashAdr();
  cache_.CrashEadr();
  uint64_t raw = 0;
  std::memcpy(&raw, At(0), sizeof(raw));
  EXPECT_EQ(raw, 77u);
  EXPECT_EQ(cache_.dirty_lines(), 0u);
}

TEST_F(SemanticCacheTest, DoubleCrashIsIdempotent) {
  // A second power failure immediately after the first finds an empty cache;
  // neither model may lose or resurrect anything on the repeat.
  const uint64_t flushed = 1;
  const uint64_t unflushed = 2;
  cache_.Store(At(0), &flushed, sizeof(flushed));
  cache_.Clwb(At(0), sizeof(flushed));
  cache_.Store(At(256), &unflushed, sizeof(unflushed));
  cache_.CrashAdr();
  cache_.CrashAdr();  // second failure during "recovery"
  cache_.CrashEadr();

  uint64_t a = 0;
  uint64_t b = 0;
  std::memcpy(&a, At(0), sizeof(a));
  std::memcpy(&b, At(256), sizeof(b));
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 0u) << "a repeated crash must not resurrect lost data";
  EXPECT_EQ(cache_.dirty_lines(), 0u);

  // The cache must remain fully usable after consecutive crashes.
  const uint64_t again = 3;
  cache_.Store(At(256), &again, sizeof(again));
  cache_.CrashEadr();
  std::memcpy(&b, At(256), sizeof(b));
  EXPECT_EQ(b, 3u);
}

TEST_F(SemanticCacheTest, EadrThenAdrCrashKeepsOnlyPreCrashStores) {
  // eADR crash persists everything; stores issued after reopen are governed
  // by the NEXT crash's model.
  const uint64_t before = 10;
  cache_.Store(At(0), &before, sizeof(before));
  cache_.CrashEadr();
  const uint64_t after = 20;
  cache_.Store(At(0), &after, sizeof(after));
  cache_.CrashAdr();
  uint64_t raw = 0;
  std::memcpy(&raw, At(0), sizeof(raw));
  EXPECT_EQ(raw, 10u) << "the ADR crash rolls back to the last persisted value";
}

TEST_F(SemanticCacheTest, CommitProtocolStepSweepAdrVsEadr) {
  // Step-enumerated crash sweep over the miniature commit protocol, the
  // single-threaded analogue of the engine's crash-sweep harness: crash after
  // every prefix of stores and assert the commit invariant — a committed flag
  // implies the payload is fully present.
  struct LogSlot {
    uint64_t state;  // 0=free, 1=uncommitted, 2=committed
    uint64_t payload[4];
  };
  constexpr size_t kSlotOff = 512;
  for (const bool eadr : {false, true}) {
    for (int crash_step = 0; crash_step <= 3; ++crash_step) {
      std::fill(backing_.begin(), backing_.end(), std::byte{0});
      SemanticCache cache;
      int step = 0;
      const auto do_step = [&](const auto& fn) {
        if (step++ < crash_step) {
          fn();
          return true;
        }
        return false;
      };
      // Step 0: payload + uncommitted state. Step 1: flush (ADR only needs
      // it). Step 2: committed flag.
      do_step([&] {
        LogSlot slot = {};
        slot.state = 1;
        slot.payload[0] = 0xfeed;
        slot.payload[3] = 0xf00d;
        cache.Store(At(kSlotOff), &slot, sizeof(slot));
      });
      do_step([&] {
        if (!eadr) {
          cache.Clwb(At(kSlotOff), sizeof(LogSlot));
        }
      });
      do_step([&] {
        const uint64_t committed = 2;
        cache.Store(At(kSlotOff), &committed, sizeof(committed));
        if (!eadr) {
          cache.Clwb(At(kSlotOff), sizeof(committed));
        }
      });
      if (eadr) {
        cache.CrashEadr();
      } else {
        cache.CrashAdr();
      }
      LogSlot recovered = {};
      std::memcpy(&recovered, At(kSlotOff), sizeof(recovered));
      if (recovered.state == 2) {
        EXPECT_EQ(recovered.payload[0], 0xfeedu)
            << "committed implies payload present (eadr=" << eadr
            << " step=" << crash_step << ")";
        EXPECT_EQ(recovered.payload[3], 0xf00du);
      }
      if (crash_step == 3) {
        EXPECT_EQ(recovered.state, 2u)
            << "all steps ran: commit must be durable (eadr=" << eadr << ")";
      }
    }
  }
}

}  // namespace
}  // namespace falcon
