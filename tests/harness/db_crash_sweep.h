// Deterministic cross-shard (2PC) crash-sweep harness with a shadow-table
// oracle, the Database-facade counterpart of crash_sweep.h.
//
// A sweep runs a seeded single-session workload of cross-shard write pairs,
// single-shard transactions and read-only-branch mixes against a fresh
// M-shard Database, crashes ONE engine at one exact persistence step
// (Engine::ArmCrashAtStep on the armed shard only), reopens a Database over
// the surviving device images, and checks recovery against a shadow table of
// acknowledged commits:
//
//   durability — every acknowledged cross-shard commit survives on every
//                shard it touched; nothing unacknowledged appears, except:
//   atomicity  — the wounded transaction is all-old or all-new ON EVERY
//                SHARD AT ONCE, decided by where the crash fell relative to
//                the coordinator's durable decision mark
//                (CrashStepPrecedesTwoPcDecision): a participant's own
//                kCommitMark is already post-decision, so recovery must
//                roll it FORWARD via the coordinator's record, while any
//                crash at or before the coordinator's mark must roll every
//                prepared participant BACK (presumed abort);
//   liveness   — every log slot on every shard is free again (no prepared
//                slot outlives recovery) and every shard stays writable.
//
// The session is serial and the plans are drawn from a seeded RNG against
// the committed shadow, so the counting run and every crash run execute the
// same persistence schedule per engine; a failure replays exactly from
// (seed, armed_shard, step).
//
// CountDbSteps() runs the workload in counting mode on one engine and
// returns how many persistence steps that engine generates, so a driver can
// enumerate RunDbCrashAt(cfg, shard, 1..N) exhaustively — sweeping the
// coordinator shard and a participant shard covers every distinct 2PC
// failure point. Step 0 means "never crash" (clean run, still verified).
//
// The library is gtest-free so benchmarks can reuse it; tests wrap the
// returned DbSweepResult in EXPECT/ASSERT.

#ifndef TESTS_HARNESS_DB_CRASH_SWEEP_H_
#define TESTS_HARNESS_DB_CRASH_SWEEP_H_

#include <cstdint>
#include <string>

#include "src/db/database.h"

namespace falcon::test {

struct DbSweepConfig {
  // Engine preset under test, e.g. &EngineConfig::Falcon (taking the CC
  // scheme so one sweep covers every scheme x engine combination).
  EngineConfig (*make)(CcScheme) = nullptr;
  CcScheme cc = CcScheme::kOcc;
  uint32_t shards = 2;
  uint32_t txns = 24;
  // Live keys preloaded per shard; the per-shard key universe is twice this
  // (the second half starts dead so inserts and revivals get exercised).
  uint32_t keys_per_shard = 8;
  uint64_t seed = 1;
  uint64_t device_bytes_per_shard = 64ull << 20;
};

struct DbSweepResult {
  bool crashed = false;  // the armed step fired
  uint64_t crash_step = 0;
  CrashStepKind crash_kind = CrashStepKind::kNone;
  // Oracle classification of the wounded transaction (meaningful only when
  // crashed): true = the decision preceded the crash, recovery must commit.
  bool wounded_all_new = false;
  uint64_t commits_acked = 0;  // successful DbTxn commits (incl. preload)
  uint64_t cross_shard_acked = 0;  // acked commits with writes on >= 2 shards
  // First oracle violation, empty when every invariant held. The message
  // embeds the seed, armed shard and step for deterministic replay.
  std::string violation;

  bool ok() const { return violation.empty(); }
};

// Runs the workload in counting mode on `armed_shard`'s engine and returns
// the number of persistence steps that engine generates.
uint64_t CountDbSteps(const DbSweepConfig& cfg, uint32_t armed_shard);

// Runs the workload crashing `armed_shard`'s engine at `step` (1-based;
// 0 = no crash), reopens a Database over the same devices, and verifies.
DbSweepResult RunDbCrashAt(const DbSweepConfig& cfg, uint32_t armed_shard, uint64_t step);

}  // namespace falcon::test

#endif  // TESTS_HARNESS_DB_CRASH_SWEEP_H_
