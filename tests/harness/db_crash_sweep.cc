#include "tests/harness/db_crash_sweep.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include "src/common/rng.h"

namespace falcon::test {
namespace {

// Shadow value meaning "key is dead". Generated values are Next() >> 1, so
// the sentinel can never collide with a real value.
constexpr uint64_t kDead = UINT64_MAX;
constexpr uint32_t kValueColumn = 1;

uint64_t InitialValue(uint64_t seed, uint64_t key) { return Mix64(seed ^ key) >> 1; }

// key -> live value (absent = dead).
using Shadow = std::map<uint64_t, uint64_t>;
// key -> final value this txn will commit (kDead = delete).
using Effects = std::map<uint64_t, uint64_t>;

enum class OpKind : uint8_t { kRead, kUpdate, kInsert, kDelete };

struct Op {
  OpKind kind;
  uint64_t key;
  uint64_t value;
};

const char* OpName(OpKind k) {
  switch (k) {
    case OpKind::kRead: return "read";
    case OpKind::kUpdate: return "update";
    case OpKind::kInsert: return "insert";
    case OpKind::kDelete: return "delete";
  }
  return "?";
}

std::string DescribePlan(const std::vector<Op>& ops) {
  std::ostringstream os;
  os << " [plan:";
  for (const Op& op : ops) {
    os << " " << OpName(op.kind) << "(" << op.key << ")";
  }
  os << "]";
  return os.str();
}

struct WoundedTxn {
  bool fired = false;
  CrashStepKind kind = CrashStepKind::kNone;
  uint64_t step = 0;
  bool all_new = false;  // decision preceded the crash: recovery must commit
  Effects effects;       // intended final state of the crashed txn
};

enum class TxnOutcome : uint8_t { kCommitted, kGaveUp, kCrashed, kBroken };

class DbSweepRun {
 public:
  explicit DbSweepRun(const DbSweepConfig& cfg) : cfg_(cfg) {}

  DatabaseConfig MakeDbConfig() const {
    DatabaseConfig db;
    db.engine = cfg_.make(cfg_.cc);
    db.shards = cfg_.shards;
    db.sessions = 1;  // serial session: deterministic persistence schedule
    return db;
  }

  // Builds the devices and database, buckets a key universe into per-shard
  // pools, and preloads the live half of every pool (single-shard commits,
  // before the injector is armed).
  bool Preload(std::string* error) {
    const DatabaseConfig db_cfg = MakeDbConfig();
    devices_.reserve(cfg_.shards);
    std::vector<NvmDevice*> raw;
    for (uint32_t s = 0; s < cfg_.shards; ++s) {
      devices_.push_back(std::make_unique<NvmDevice>(cfg_.device_bytes_per_shard,
                                                     db_cfg.engine.cost_params));
      raw.push_back(devices_.back().get());
    }
    db_ = std::make_unique<Database>(db_cfg, raw);
    SchemaBuilder schema("db_sweep");
    schema.AddU64();  // column 0: key copy
    schema.AddU64();  // column 1: value
    table_ = db_->CreateTable(schema, IndexKind::kHash);
    if (table_ == kInvalidTable) {
      *error = "CreateTable failed";
      return false;
    }

    // Hash routing scatters consecutive keys; walk the key space until every
    // shard owns a full pool (2x keys_per_shard: the first half preloads
    // live, the second half starts dead).
    pools_.assign(cfg_.shards, {});
    const uint64_t pool_size = 2ull * cfg_.keys_per_shard;
    uint32_t full = 0;
    for (uint64_t key = 1; full < cfg_.shards; ++key) {
      std::vector<uint64_t>& pool = pools_[db_->ShardOf(table_, key)];
      if (pool.size() == pool_size) {
        continue;
      }
      pool.push_back(key);
      if (pool.size() == pool_size) {
        ++full;
      }
    }

    for (uint32_t s = 0; s < cfg_.shards; ++s) {
      for (uint32_t i = 0; i < cfg_.keys_per_shard; ++i) {
        const uint64_t key = pools_[s][i];
        const uint64_t value = InitialValue(cfg_.seed, key);
        DbTxn txn = db_->Begin(0);
        const uint64_t row[2] = {key, value};
        if (txn.Insert(table_, key, row) != Status::kOk ||
            txn.Commit() != Status::kOk) {
          *error = "preload insert failed";
          return false;
        }
        shadow_[key] = value;
        ++commits_acked_;
      }
    }
    return true;
  }

  // Plans one transaction against the committed shadow. Every plan draws the
  // same RNG stream across the counting run and every crash run.
  std::vector<Op> PlanTxn(Rng& rng, Effects& effects) {
    std::vector<Op> ops;
    std::set<uint64_t> used;
    auto pick_key = [&](uint32_t shard) -> uint64_t {
      const std::vector<uint64_t>& pool = pools_[shard];
      for (int tries = 0; tries < 8; ++tries) {
        const uint64_t key = pool[rng.NextBounded(pool.size())];
        if (used.insert(key).second) {
          return key;
        }
      }
      return 0;  // pool exhausted by this txn: skip the op
    };
    auto plan_write = [&](uint32_t shard) {
      const uint64_t key = pick_key(shard);
      if (key == 0) {
        return;
      }
      if (shadow_.count(key) != 0) {
        // Mix updates and deletes; updates dominate so cross-shard pairs
        // usually carry two applied writes.
        if (rng.NextBounded(4) == 3) {
          ops.push_back({OpKind::kDelete, key, 0});
          effects[key] = kDead;
        } else {
          const uint64_t v = rng.Next() >> 1;
          ops.push_back({OpKind::kUpdate, key, v});
          effects[key] = v;
        }
      } else {
        const uint64_t v = rng.Next() >> 1;
        ops.push_back({OpKind::kInsert, key, v});
        effects[key] = v;
      }
    };
    auto plan_read = [&](uint32_t shard) {
      const uint64_t key = pick_key(shard);
      if (key != 0) {
        ops.push_back({OpKind::kRead, key, 0});
      }
    };
    auto two_shards = [&](uint32_t* a, uint32_t* b) {
      *a = rng.NextBounded(cfg_.shards);
      *b = (*a + 1 + rng.NextBounded(cfg_.shards - 1)) % cfg_.shards;
    };

    const uint32_t roll = rng.NextBounded(100);
    uint32_t a = 0;
    uint32_t b = 0;
    if (roll < 45) {
      // Cross-shard write pair: the canonical 2PC transaction.
      two_shards(&a, &b);
      plan_write(a);
      plan_write(b);
    } else if (roll < 60) {
      // Cross-shard writes plus a read (the read may land on a third shard,
      // adding a read-only branch to the 2PC commit).
      two_shards(&a, &b);
      plan_write(a);
      plan_write(b);
      plan_read(rng.NextBounded(cfg_.shards));
    } else if (roll < 80) {
      // Single-shard transaction through the facade (1-2 writes).
      a = rng.NextBounded(cfg_.shards);
      plan_write(a);
      if (rng.NextBounded(2) == 0) {
        plan_write(a);
      }
    } else {
      // Read-only branch + one write branch: the single-write-shard path
      // with several branches open.
      two_shards(&a, &b);
      plan_read(a);
      plan_write(b);
    }
    return ops;
  }

  // Executes one planned transaction with abort-retry (the serial session
  // should never conflict, but the protocol surfaces kAborted uniformly).
  TxnOutcome RunTxn(const std::vector<Op>& ops, const Effects& effects,
                    uint32_t armed_shard, std::string* broken) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      DbTxn txn = db_->Begin(0);
      try {
        Effects applied;  // own writes so far (read-own-writes oracle)
        auto expect = [&](uint64_t key) {
          const auto it = applied.find(key);
          if (it != applied.end()) {
            return it->second;
          }
          const auto s = shadow_.find(key);
          return s == shadow_.end() ? kDead : s->second;
        };
        bool aborted = false;
        for (const Op& op : ops) {
          Status s = Status::kOk;
          switch (op.kind) {
            case OpKind::kRead: {
              uint64_t v = kDead;
              s = txn.ReadColumn(table_, op.key, kValueColumn, &v);
              if (s == Status::kOk || s == Status::kNotFound) {
                const uint64_t got = (s == Status::kOk) ? v : kDead;
                const uint64_t want = expect(op.key);
                if (got != want) {
                  std::ostringstream os;
                  os << "read of key " << op.key << " saw " << got << ", expected "
                     << want << DescribePlan(ops);
                  *broken = os.str();
                  return TxnOutcome::kBroken;
                }
                s = Status::kOk;
              }
              break;
            }
            case OpKind::kUpdate:
              s = txn.UpdateColumn(table_, op.key, kValueColumn, &op.value);
              if (s == Status::kOk) {
                applied[op.key] = op.value;
              }
              break;
            case OpKind::kInsert: {
              const uint64_t row[2] = {op.key, op.value};
              s = txn.Insert(table_, op.key, row);
              if (s == Status::kOk) {
                applied[op.key] = op.value;
              }
              break;
            }
            case OpKind::kDelete:
              s = txn.Delete(table_, op.key);
              if (s == Status::kOk) {
                applied[op.key] = kDead;
              }
              break;
          }
          if (s == Status::kAborted) {
            aborted = true;
            break;
          }
          if (s != Status::kOk) {
            std::ostringstream os;
            os << OpName(op.kind) << " of key " << op.key << " returned status "
               << static_cast<int>(s) << DescribePlan(ops);
            *broken = os.str();
            return TxnOutcome::kBroken;
          }
        }
        if (!aborted) {
          const Status cs = txn.Commit();
          if (cs == Status::kOk) {
            return TxnOutcome::kCommitted;
          }
          if (cs != Status::kAborted) {
            std::ostringstream os;
            os << "commit returned status " << static_cast<int>(cs)
               << DescribePlan(ops);
            *broken = os.str();
            return TxnOutcome::kBroken;
          }
        } else {
          txn.Abort();
        }
        // Aborted: retry the same plan (RNG consumption stays deterministic).
      } catch (const TxnCrashed& crashed) {
        // Simulated power failure: freeze every open branch in place and
        // classify the outcome. Only write branches fire persistence steps,
        // so the armed shard is a write shard of this transaction; the
        // coordinator is its lowest write shard.
        uint32_t coord = UINT32_MAX;
        for (const auto& [key, value] : effects) {
          coord = std::min(coord, db_->ShardOf(table_, key));
        }
        wound_.fired = true;
        wound_.kind = crashed.kind;
        wound_.step = crashed.step;
        wound_.all_new =
            !CrashStepPrecedesTwoPcDecision(crashed.kind, armed_shard == coord);
        wound_.effects = effects;
        txn.Freeze();
        return TxnOutcome::kCrashed;
      }
    }
    return TxnOutcome::kGaveUp;
  }

  // Runs the workload. `step` 0 = no crash; in counting mode the armed
  // shard's injector numbers steps without firing.
  void RunWorkload(uint32_t armed_shard, uint64_t step, bool count_only,
                   std::string* broken) {
    for (uint32_t s = 0; s < cfg_.shards; ++s) {
      db_->engine(s).DisarmCrash();
    }
    if (count_only) {
      db_->engine(armed_shard).BeginCrashStepCount();
    } else if (step != 0) {
      db_->engine(armed_shard).ArmCrashAtStep(step);
    }
    Rng rng(Mix64(cfg_.seed ^ 0x517cc1b727220a95ull));
    for (uint32_t i = 0; i < cfg_.txns; ++i) {
      Effects effects;
      const std::vector<Op> ops = PlanTxn(rng, effects);
      if (ops.empty()) {
        continue;
      }
      switch (RunTxn(ops, effects, armed_shard, broken)) {
        case TxnOutcome::kCommitted: {
          std::set<uint32_t> write_shards;
          for (const auto& [key, value] : effects) {
            write_shards.insert(db_->ShardOf(table_, key));
            if (value == kDead) {
              shadow_.erase(key);
            } else {
              shadow_[key] = value;
            }
          }
          ++commits_acked_;
          if (write_shards.size() >= 2) {
            ++cross_shard_acked_;
          }
          break;
        }
        case TxnOutcome::kGaveUp:
          break;  // plan was still drawn deterministically
        case TxnOutcome::kCrashed:
        case TxnOutcome::kBroken:
          return;
      }
    }
  }

  // Simulated power failure: drop the database (all completed stores survive
  // in the devices, the eADR model) and reopen over the same devices. With
  // M > 1 this runs the deferred-open 2PC resolution before replay.
  void CrashAndReopen() {
    db_.reset();
    std::vector<NvmDevice*> raw;
    for (auto& dev : devices_) {
      raw.push_back(dev.get());
    }
    db_ = std::make_unique<Database>(MakeDbConfig(), raw);
  }

  const DbSweepConfig& cfg_;
  std::vector<std::unique_ptr<NvmDevice>> devices_;
  std::unique_ptr<Database> db_;
  TableId table_ = kInvalidTable;
  std::vector<std::vector<uint64_t>> pools_;  // per-shard key universe
  Shadow shadow_;
  uint64_t commits_acked_ = 0;
  uint64_t cross_shard_acked_ = 0;
  WoundedTxn wound_;
};

std::string Prefix(const DbSweepConfig& cfg, uint32_t armed_shard, uint64_t step) {
  std::ostringstream os;
  os << "[db-crash-sweep engine=" << cfg.make(cfg.cc).name
     << " cc=" << CcSchemeName(cfg.cc) << " shards=" << cfg.shards
     << " armed=" << armed_shard << " seed=" << cfg.seed << " step=" << step << "] ";
  return os.str();
}

// Post-recovery verification. Returns the first violation, or "".
std::string Verify(DbSweepRun& run, uint32_t armed_shard, uint64_t step) {
  const DbSweepConfig& cfg = run.cfg_;
  Database& db = *run.db_;
  const auto found = db.FindTableId("db_sweep");
  if (!found.has_value()) {
    return Prefix(cfg, armed_shard, step) + "table missing after reopen";
  }
  const TableId table = *found;

  for (uint32_t s = 0; s < cfg.shards; ++s) {
    if (!db.engine(s).recovery_report().recovered) {
      return Prefix(cfg, armed_shard, step) + "shard " + std::to_string(s) +
             " reopened without running recovery";
    }
  }

  // Expected post-crash state: acknowledged shadow, plus the wounded txn's
  // effects iff the coordinator's decision preceded the crash (all-new); a
  // crash before the decision must leave every wounded key all-old on every
  // shard (presumed abort, even for participants already PREPARED).
  std::map<uint64_t, uint64_t> expected;
  for (uint32_t s = 0; s < cfg.shards; ++s) {
    for (const uint64_t key : run.pools_[s]) {
      const auto it = run.shadow_.find(key);
      expected[key] = it == run.shadow_.end() ? kDead : it->second;
    }
  }
  if (run.wound_.fired && run.wound_.all_new) {
    for (const auto& [key, value] : run.wound_.effects) {
      expected[key] = value;
    }
  }

  // 1. Durability + cross-shard atomicity via the transactional read path.
  auto read_value = [&](uint64_t key) {
    for (int attempt = 0; attempt < 16; ++attempt) {
      DbTxn txn = db.Begin(0);
      uint64_t value = 0;
      const Status s = txn.ReadColumn(table, key, kValueColumn, &value);
      if (s == Status::kNotFound) {
        txn.Commit();
        return kDead;
      }
      if (s == Status::kOk && txn.Commit() == Status::kOk) {
        return value;
      }
    }
    return kDead - 1;  // read never succeeded
  };
  for (const auto& [key, want] : expected) {
    const uint64_t got = read_value(key);
    if (got != want) {
      std::ostringstream os;
      os << Prefix(cfg, armed_shard, step) << "key " << key << " (shard "
         << db.ShardOf(table, key) << "): recovered value ";
      if (got == kDead) {
        os << "<dead>";
      } else {
        os << got;
      }
      os << ", oracle expects ";
      if (want == kDead) {
        os << "<dead>";
      } else {
        os << want;
      }
      if (run.wound_.fired && run.wound_.effects.count(key) != 0) {
        os << " (wounded txn, crashed at " << CrashStepKindName(run.wound_.kind)
           << " on shard " << armed_shard << ", must be "
           << (run.wound_.all_new ? "all-new" : "all-old") << ")";
      }
      return os.str();
    }
  }

  // 2. Liveness: every log slot on every shard is free again — in
  // particular, no slot is still PREPARED after resolution.
  for (uint32_t s = 0; s < cfg.shards; ++s) {
    Engine& engine = db.engine(s);
    for (uint32_t t = 0; t < engine.worker_count(); ++t) {
      LogWindow& log = engine.worker(t).log();
      if (log.FreeSlotCount() != log.slot_count()) {
        std::ostringstream os;
        os << Prefix(cfg, armed_shard, step) << "shard " << s << " worker " << t
           << " log window leaked slots (" << log.FreeSlotCount() << "/"
           << log.slot_count() << " free)";
        return os.str();
      }
    }
  }

  // 3. Every shard stays writable through the facade, including cross-shard:
  // one fresh 2PC pair touching the armed shard and its successor.
  for (uint32_t s = 0; s < cfg.shards; ++s) {
    const uint64_t key = run.pools_[s][s % run.pools_[s].size()];
    const uint64_t fresh = Mix64(cfg.seed ^ step ^ key) >> 1;
    bool done = false;
    for (int attempt = 0; attempt < 8 && !done; ++attempt) {
      DbTxn txn = db.Begin(0);
      Status st;
      if (expected[key] == kDead) {
        const uint64_t row[2] = {key, fresh};
        st = txn.Insert(table, key, row);
      } else {
        st = txn.UpdateColumn(table, key, kValueColumn, &fresh);
      }
      done = st == Status::kOk && txn.Commit() == Status::kOk;
    }
    if (!done) {
      std::ostringstream os;
      os << Prefix(cfg, armed_shard, step) << "shard " << s << " key " << key
         << " is wedged after recovery";
      return os.str();
    }
    if (read_value(key) != fresh) {
      std::ostringstream os;
      os << Prefix(cfg, armed_shard, step) << "post-recovery write to key " << key
         << " did not stick";
      return os.str();
    }
    expected[key] = fresh;
  }
  if (cfg.shards >= 2) {
    const uint64_t k1 = run.pools_[armed_shard].back();
    const uint64_t k2 = run.pools_[(armed_shard + 1) % cfg.shards].back();
    const uint64_t v1 = Mix64(cfg.seed ^ step ^ 0xabcdull) >> 1;
    const uint64_t v2 = Mix64(cfg.seed ^ step ^ 0xef01ull) >> 1;
    bool done = false;
    for (int attempt = 0; attempt < 8 && !done; ++attempt) {
      DbTxn txn = db.Begin(0);
      auto put = [&](uint64_t key, const uint64_t& v) {
        if (expected[key] == kDead) {
          const uint64_t row[2] = {key, v};
          return txn.Insert(table, key, row);
        }
        return txn.UpdateColumn(table, key, kValueColumn, &v);
      };
      done = put(k1, v1) == Status::kOk && put(k2, v2) == Status::kOk &&
             txn.Commit() == Status::kOk;
    }
    if (!done || read_value(k1) != v1 || read_value(k2) != v2) {
      std::ostringstream os;
      os << Prefix(cfg, armed_shard, step)
         << "post-recovery cross-shard commit failed (keys " << k1 << ", " << k2
         << ")";
      return os.str();
    }
  }

  return "";
}

}  // namespace

uint64_t CountDbSteps(const DbSweepConfig& cfg, uint32_t armed_shard) {
  DbSweepRun run(cfg);
  std::string error;
  if (!run.Preload(&error)) {
    return 0;
  }
  run.RunWorkload(armed_shard, /*step=*/0, /*count_only=*/true, &error);
  return run.db_->engine(armed_shard).CrashStepsCounted();
}

DbSweepResult RunDbCrashAt(const DbSweepConfig& cfg, uint32_t armed_shard,
                           uint64_t step) {
  DbSweepResult result;
  DbSweepRun run(cfg);
  std::string error;
  if (!run.Preload(&error)) {
    result.violation = Prefix(cfg, armed_shard, step) + error;
    return result;
  }
  std::string broken;
  run.RunWorkload(armed_shard, step, /*count_only=*/false, &broken);
  result.commits_acked = run.commits_acked_;
  result.cross_shard_acked = run.cross_shard_acked_;
  if (!broken.empty()) {
    result.violation =
        Prefix(cfg, armed_shard, step) + "pre-crash oracle violation: " + broken;
    return result;
  }
  result.crashed = run.wound_.fired;
  result.crash_step = run.wound_.step;
  result.crash_kind = run.wound_.kind;
  result.wounded_all_new = run.wound_.all_new;
  run.CrashAndReopen();
  result.violation = Verify(run, armed_shard, step);
  return result;
}

}  // namespace falcon::test
