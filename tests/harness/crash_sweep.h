// Deterministic crash-sweep harness with a shadow-table oracle.
//
// A sweep runs a seeded mixed insert/update/delete workload against a fresh
// engine, crashes it at one exact persistence step (Engine::ArmCrashAtStep),
// reopens the engine over the surviving device image (the eADR crash model),
// and checks every recovery invariant against a shadow table that recorded
// each *acknowledged* commit:
//
//   durability   — every acknowledged write survives; nothing else appears
//   atomicity    — the wounded transaction is all-old (crash at or before
//                  the commit mark) or all-new (crash after it)
//   consistency  — index and heap agree: at most one live version per key,
//                  expected-dead keys resolve to tombstones or nothing
//   liveness     — every log slot is free again and every touched key is
//                  writable (no lock or latch survives the crash)
//
// Workers write disjoint key partitions, so each thread's shadow is exact
// even in the multi-threaded sweep: an acknowledged commit on partition t
// can only have come from thread t.
//
// CountSteps() runs the same seeded workload in counting mode (no crash) and
// returns how many persistence steps it generates, so a driver can enumerate
// RunCrashAt(cfg, 1..N) exhaustively. Step 0 means "never crash" (clean run,
// still verified).
//
// The library is gtest-free so benchmarks can reuse it; tests wrap the
// returned SweepResult in EXPECT/ASSERT.

#ifndef TESTS_HARNESS_CRASH_SWEEP_H_
#define TESTS_HARNESS_CRASH_SWEEP_H_

#include <cstdint>
#include <string>

#include "src/core/engine.h"

namespace falcon::test {

struct SweepConfig {
  // Engine preset under test, e.g. &EngineConfig::Falcon (taking the CC
  // scheme so one sweep covers every scheme x engine combination).
  EngineConfig (*make)(CcScheme) = nullptr;
  CcScheme cc = CcScheme::kOcc;
  uint32_t threads = 1;
  uint32_t txns_per_thread = 32;
  // > 1 drives each worker through Worker::RunBatch with this many resumable
  // transaction frames in flight (sibling conflicts, frame interleaving and
  // mid-batch crashes all exercised). 1 keeps the serial driver.
  uint32_t batch_size = 1;
  // Live keys preloaded per partition; the partition universe is twice this
  // (the second half starts dead so inserts and revivals get exercised).
  uint32_t keys_per_thread = 16;
  uint32_t max_ops_per_txn = 4;
  uint64_t seed = 1;
  uint64_t device_bytes = 64ull << 20;
  // Flight recorder: the harness enables tracing with this per-thread ring
  // capacity (0 turns it off) and, when the oracle fails, captures the last
  // `flight_last_n` events of every thread into SweepResult::flight_recorder.
  // If $FALCON_FLIGHT_DIR names a directory, the capture is also written to
  // a file there and the path is appended to the violation message.
  size_t trace_events = 4096;
  size_t flight_last_n = 64;
  // Test hook for the dump path: report a fabricated violation even when
  // every invariant held.
  bool force_violation = false;
};

struct SweepResult {
  bool crashed = false;  // the armed step fired
  uint64_t crash_step = 0;
  CrashStepKind crash_kind = CrashStepKind::kNone;
  uint64_t commits_acked = 0;  // successful Commit() calls (incl. preload)
  RecoveryReport report;       // from the post-crash reopen
  // First oracle violation, empty when every invariant held. The message
  // embeds the seed and step for deterministic replay.
  std::string violation;
  // Per-thread event timeline captured just before the simulated power
  // failure; filled only when the run ends in a violation (see SweepConfig).
  std::string flight_recorder;

  bool ok() const { return violation.empty(); }
};

// Runs the workload in counting mode and returns the number of persistence
// steps it generates (>= 1 for any non-empty workload).
uint64_t CountSteps(const SweepConfig& cfg);

// Runs the workload crashing at `step` (1-based; 0 = no crash), recovers,
// and verifies. With threads == 1 the run is fully deterministic in
// cfg.seed, so a failure replays exactly.
SweepResult RunCrashAt(const SweepConfig& cfg, uint64_t step);

}  // namespace falcon::test

#endif  // TESTS_HARNESS_CRASH_SWEEP_H_
