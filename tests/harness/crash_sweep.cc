#include "tests/harness/crash_sweep.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/core/batch.h"

namespace falcon::test {
namespace {

// Shadow value meaning "key is dead". Generated values are Next() >> 1, so
// the sentinel can never collide with a real value.
constexpr uint64_t kDead = UINT64_MAX;
constexpr uint32_t kValueColumn = 1;

// Disjoint per-thread key partitions: thread t owns
// [PartitionBase(t), PartitionBase(t) + 2 * keys_per_thread).
uint64_t PartitionBase(uint32_t t) { return (uint64_t{t} + 1) << 20; }

uint64_t InitialValue(uint64_t seed, uint64_t key) { return Mix64(seed ^ key) >> 1; }

// key -> live value (absent = dead).
using Shadow = std::map<uint64_t, uint64_t>;
// key -> final value this txn will commit (kDead = delete).
using Effects = std::map<uint64_t, uint64_t>;

enum class OpKind : uint8_t { kRead, kUpdate, kInsert, kDelete };

struct Op {
  OpKind kind;
  uint64_t key;
  uint64_t value;
};

const char* OpName(OpKind k) {
  switch (k) {
    case OpKind::kRead: return "read";
    case OpKind::kUpdate: return "update";
    case OpKind::kInsert: return "insert";
    case OpKind::kDelete: return "delete";
  }
  return "?";
}

// Plans one transaction against the thread's committed shadow. Fills
// `effects` with the txn's intended final state per written key (reads
// excluded). RNG consumption depends only on the shadow and seed, so the
// counting run and every crash run draw identical plans.
std::vector<Op> PlanTxn(Rng& rng, const SweepConfig& cfg, uint32_t t, const Shadow& shadow,
                        Effects& effects) {
  const uint64_t base = PartitionBase(t);
  const uint64_t universe = 2ull * cfg.keys_per_thread;
  const uint64_t n = 1 + rng.NextBounded(cfg.max_ops_per_txn);
  std::vector<Op> ops;
  std::set<uint64_t> tabu;  // keys deleted earlier in this txn: hands off
  auto projected_live = [&](uint64_t key) {
    const auto it = effects.find(key);
    if (it != effects.end()) {
      return it->second != kDead;
    }
    return shadow.count(key) != 0;
  };
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t key = 0;
    bool found = false;
    for (int tries = 0; tries < 8; ++tries) {
      key = base + rng.NextBounded(universe);
      if (tabu.count(key) == 0) {
        found = true;
        break;
      }
    }
    if (!found) {
      break;
    }
    if (projected_live(key)) {
      // Mix reads, updates and deletes; updates dominate so update-then-
      // delete and read-own-writes sequences occur regularly.
      switch (rng.NextBounded(4)) {
        case 0:
          ops.push_back({OpKind::kRead, key, 0});
          break;
        case 1:
        case 2: {
          const uint64_t v = rng.Next() >> 1;
          ops.push_back({OpKind::kUpdate, key, v});
          effects[key] = v;
          break;
        }
        default:
          ops.push_back({OpKind::kDelete, key, 0});
          effects[key] = kDead;
          tabu.insert(key);
          break;
      }
    } else {
      const uint64_t v = rng.Next() >> 1;
      ops.push_back({OpKind::kInsert, key, v});
      effects[key] = v;
    }
  }
  return ops;
}

enum class TxnOutcome : uint8_t { kCommitted, kGaveUp, kCrashed, kBroken };

std::string DescribePlan(const std::vector<Op>& ops) {
  std::ostringstream os;
  os << " [plan:";
  for (const Op& op : ops) {
    os << " " << OpName(op.kind) << "(" << op.key << ")";
  }
  os << "]";
  return os.str();
}

struct WoundedTxn {
  bool fired = false;
  CrashStepKind kind = CrashStepKind::kNone;
  uint64_t step = 0;
  Effects effects;  // intended final state of the crashed txn
};

// Executes one planned transaction with abort-retry. Reads are validated
// against the shadow + own writes (exact: partitions are single-writer).
TxnOutcome RunTxn(Worker& worker, TableId table, const std::vector<Op>& ops,
                  const Shadow& shadow, WoundedTxn* wound, std::string* broken) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    try {
      Txn txn = worker.Begin();
      Effects applied;  // own writes executed so far (read-own-writes oracle)
      auto expect = [&](uint64_t key) {
        const auto it = applied.find(key);
        if (it != applied.end()) {
          return it->second;
        }
        const auto s = shadow.find(key);
        return s == shadow.end() ? kDead : s->second;
      };
      bool aborted = false;
      for (const Op& op : ops) {
        Status s = Status::kOk;
        switch (op.kind) {
          case OpKind::kRead: {
            uint64_t v = kDead;
            s = txn.ReadColumn(table, op.key, kValueColumn, &v);
            if (s == Status::kOk || s == Status::kNotFound) {
              const uint64_t got = (s == Status::kOk) ? v : kDead;
              const uint64_t want = expect(op.key);
              if (got != want) {
                std::ostringstream os;
                os << "read of key " << op.key << " saw " << got << ", expected " << want
                   << DescribePlan(ops);
                *broken = os.str();
                return TxnOutcome::kBroken;
              }
              s = Status::kOk;
            }
            break;
          }
          case OpKind::kUpdate:
            s = txn.UpdateColumn(table, op.key, kValueColumn, &op.value);
            if (s == Status::kOk) {
              applied[op.key] = op.value;
            }
            break;
          case OpKind::kInsert: {
            const uint64_t row[2] = {op.key, op.value};
            s = txn.Insert(table, op.key, row);
            if (s == Status::kOk) {
              applied[op.key] = op.value;
            }
            break;
          }
          case OpKind::kDelete:
            s = txn.Delete(table, op.key);
            if (s == Status::kOk) {
              applied[op.key] = kDead;
            }
            break;
        }
        if (s == Status::kAborted) {
          aborted = true;
          break;
        }
        if (s != Status::kOk) {
          std::ostringstream os;
          os << OpName(op.kind) << " of key " << op.key << " returned status "
             << static_cast<int>(s) << DescribePlan(ops);
          *broken = os.str();
          return TxnOutcome::kBroken;
        }
      }
      if (!aborted) {
        const Status cs = txn.Commit();
        if (cs == Status::kOk) {
          return TxnOutcome::kCommitted;
        }
        if (cs != Status::kAborted) {
          std::ostringstream os;
          os << "commit returned status " << static_cast<int>(cs);
          *broken = os.str();
          return TxnOutcome::kBroken;
        }
      }
      // Aborted: the destructor rolled back whatever remained; retry the
      // same plan so RNG consumption stays deterministic.
    } catch (const TxnCrashed& crashed) {
      wound->fired = true;
      wound->kind = crashed.kind;
      wound->step = crashed.step;
      return TxnOutcome::kCrashed;
    }
  }
  return TxnOutcome::kGaveUp;
}

class SweepRun {
 public:
  explicit SweepRun(const SweepConfig& cfg) : cfg_(cfg), shadows_(cfg.threads) {}

  // Engine preset with the sweep's batch size applied: the log-window slot
  // geometry scales with batch_size, and the reopened engine must see the
  // same geometry to scan the surviving log region.
  EngineConfig MakeEngineConfig() const {
    EngineConfig config = cfg_.make(cfg_.cc);
    config.batch_size = cfg_.batch_size;
    return config;
  }

  // Builds the engine, preloads the live half of every partition, and
  // records the preloaded values in the shadows.
  bool Preload(std::string* error) {
    device_ = std::make_unique<NvmDevice>(cfg_.device_bytes);
    engine_ = std::make_unique<Engine>(device_.get(), MakeEngineConfig(), cfg_.threads);
    if (cfg_.trace_events != 0) {
      engine_->EnableTracing(cfg_.trace_events);
    }
    SchemaBuilder schema("sweep");
    schema.AddU64();  // column 0: key copy
    schema.AddU64();  // column 1: value
    table_ = engine_->CreateTable(schema, IndexKind::kHash);
    Worker& w = engine_->worker(0);
    for (uint32_t t = 0; t < cfg_.threads; ++t) {
      const uint64_t base = PartitionBase(t);
      for (uint32_t i = 0; i < cfg_.keys_per_thread; ++i) {
        const uint64_t key = base + i;
        const uint64_t value = InitialValue(cfg_.seed, key);
        Txn txn = w.Begin();
        const uint64_t row[2] = {key, value};
        if (txn.Insert(table_, key, row) != Status::kOk || txn.Commit() != Status::kOk) {
          *error = "preload insert failed";
          return false;
        }
        shadows_[t][key] = value;
        ++commits_acked_;
      }
    }
    return true;
  }

  // Runs the workload. `step` 0 = no crash; in counting mode the injector
  // numbers steps without firing.
  void RunWorkload(uint64_t step, bool count_only) {
    if (count_only) {
      engine_->BeginCrashStepCount();
    } else if (step == 0) {
      engine_->DisarmCrash();
    } else {
      engine_->ArmCrashAtStep(step);
    }
    if (cfg_.threads == 1) {
      ThreadBody(0);
      return;
    }
    std::vector<std::thread> threads;
    threads.reserve(cfg_.threads);
    for (uint32_t t = 0; t < cfg_.threads; ++t) {
      threads.emplace_back([this, t] { ThreadBody(t); });
    }
    for (auto& th : threads) {
      th.join();
    }
  }

  // Simulated power failure: drop the engine (all completed stores survive
  // in the device, the eADR model) and reopen over the same device.
  void CrashAndReopen() {
    engine_.reset();
    engine_ = std::make_unique<Engine>(device_.get(), MakeEngineConfig(), cfg_.threads);
  }

  const SweepConfig& cfg_;
  std::unique_ptr<NvmDevice> device_;
  std::unique_ptr<Engine> engine_;
  TableId table_ = 0;
  std::vector<Shadow> shadows_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> commits_acked_{0};
  WoundedTxn wound_;  // at most one thread fires (exactly-once injector)
  std::mutex broken_mu_;
  std::string broken_;

 private:
  // Batched driver (cfg_.batch_size > 1); defined after SweepFrameSource.
  void BatchThreadBody(uint32_t t);

  void ThreadBody(uint32_t t) {
    if (cfg_.batch_size > 1) {
      BatchThreadBody(t);
      return;
    }
    Rng rng(Mix64(cfg_.seed ^ (0x517cc1b727220a95ull + t)));
    Shadow& shadow = shadows_[t];
    Worker& worker = engine_->worker(t);
    for (uint32_t i = 0; i < cfg_.txns_per_thread; ++i) {
      if (stop_.load(std::memory_order_acquire)) {
        break;
      }
      Effects effects;
      const std::vector<Op> ops = PlanTxn(rng, cfg_, t, shadow, effects);
      if (ops.empty()) {
        continue;
      }
      WoundedTxn wound;
      std::string broken;
      const TxnOutcome outcome = RunTxn(worker, table_, ops, shadow, &wound, &broken);
      switch (outcome) {
        case TxnOutcome::kCommitted:
          for (const auto& [key, value] : effects) {
            if (value == kDead) {
              shadow.erase(key);
            } else {
              shadow[key] = value;
            }
          }
          commits_acked_.fetch_add(1, std::memory_order_relaxed);
          break;
        case TxnOutcome::kGaveUp:
          break;  // conflict storm; plan was still drawn deterministically
        case TxnOutcome::kCrashed:
          wound.effects = std::move(effects);
          wound_ = std::move(wound);  // single writer: injector fires once
          stop_.store(true, std::memory_order_release);
          return;
        case TxnOutcome::kBroken: {
          std::lock_guard<std::mutex> lock(broken_mu_);
          if (broken_.empty()) {
            broken_ = "thread " + std::to_string(t) + ": " + broken;
          }
          stop_.store(true, std::memory_order_release);
          return;
        }
      }
    }
  }
};

// One planned sweep transaction as a resumable frame for Worker::RunBatch.
// Executes one op per Step() (a yield boundary between every access), so
// sibling frames interleave at every point the real batched drivers do.
//
// Because several sibling transactions are now live on one partition, a plan
// drawn against the committed shadow can be stale by the time it executes (a
// sibling committed first): an update may hit a key a sibling deleted
// (kNotFound -> execute as insert), an insert may hit a key a sibling
// revived (kDuplicate -> execute as update), a delete may find the key
// already dead (skip). The frame's `effects_` records what was actually
// applied, and the commit step folds them into the thread's live shadow.
//
// Read oracle: own writes win; otherwise the value must match either the
// begin-of-attempt snapshot (multi-version reads) or the current committed
// shadow (single-version reads). Values are random 63-bit draws, so an
// accidental match is negligible.
class SweepFrame final : public TxnFrame {
 public:
  SweepFrame(SweepRun* run, uint32_t t) : run_(run), t_(t) {}

  void Reset(std::vector<Op> ops) {
    plan_ = std::move(ops);
    op_idx_ = 0;
    attempts_ = 0;
    applied_.clear();
    effects_.clear();
    snapshot_.clear();
    set_result(0);
  }

  bool Step(Worker& worker) override {
    try {
      return StepImpl(worker);
    } catch (const TxnCrashed& crashed) {
      // Record the wounded transaction, then drop the handle without
      // rollback — the power already failed; the device image is final.
      WoundedTxn wound;
      wound.fired = true;
      wound.kind = crashed.kind;
      wound.step = crashed.step;
      wound.effects = effects_;
      run_->wound_ = std::move(wound);
      Freeze();
      throw;
    }
  }

 private:
  bool StepImpl(Worker& worker) {
    Shadow& live = run_->shadows_[t_];
    if (!has_txn()) {
      BeginTxn(worker);
      snapshot_ = live;
      applied_.clear();
      effects_.clear();
    }
    if (op_idx_ < plan_.size()) {
      const Op& op = plan_[op_idx_];
      Txn& txn = this->txn();
      Status s = Status::kOk;
      switch (op.kind) {
        case OpKind::kRead: {
          uint64_t v = kDead;
          s = txn.ReadColumn(run_->table_, op.key, kValueColumn, &v);
          if (s == Status::kOk || s == Status::kNotFound) {
            const uint64_t got = s == Status::kOk ? v : kDead;
            uint64_t want_snapshot;
            uint64_t want_live;
            const auto a = applied_.find(op.key);
            if (a != applied_.end()) {
              want_snapshot = want_live = a->second;
            } else {
              const auto sn = snapshot_.find(op.key);
              want_snapshot = sn == snapshot_.end() ? kDead : sn->second;
              const auto lv = live.find(op.key);
              want_live = lv == live.end() ? kDead : lv->second;
            }
            if (got != want_snapshot && got != want_live) {
              std::ostringstream os;
              os << "batched read of key " << op.key << " saw " << got << ", expected "
                 << want_snapshot;
              if (want_live != want_snapshot) {
                os << " (snapshot) or " << want_live << " (live)";
              }
              os << DescribePlan(plan_);
              return Break(os.str());
            }
            s = Status::kOk;
          }
          break;
        }
        case OpKind::kUpdate:
          s = txn.UpdateColumn(run_->table_, op.key, kValueColumn, &op.value);
          if (s == Status::kNotFound) {
            // A sibling's delete committed after this plan was drawn.
            const uint64_t row[2] = {op.key, op.value};
            s = txn.Insert(run_->table_, op.key, row);
          }
          if (s == Status::kOk) {
            applied_[op.key] = op.value;
            effects_[op.key] = op.value;
          }
          break;
        case OpKind::kInsert: {
          const uint64_t row[2] = {op.key, op.value};
          s = txn.Insert(run_->table_, op.key, row);
          if (s == Status::kDuplicate) {
            // A sibling's insert (or revival) committed first.
            s = txn.UpdateColumn(run_->table_, op.key, kValueColumn, &op.value);
          }
          if (s == Status::kOk) {
            applied_[op.key] = op.value;
            effects_[op.key] = op.value;
          }
          break;
        }
        case OpKind::kDelete:
          s = txn.Delete(run_->table_, op.key);
          if (s == Status::kNotFound) {
            s = Status::kOk;  // a sibling's delete committed first
          }
          if (s == Status::kOk) {
            applied_[op.key] = kDead;
            effects_[op.key] = kDead;
          }
          break;
      }
      if (s == Status::kAborted) {
        return Retry();
      }
      if (s != Status::kOk) {
        std::ostringstream os;
        os << "batched " << OpName(op.kind) << " of key " << op.key << " returned status "
           << static_cast<int>(s) << DescribePlan(plan_);
        return Break(os.str());
      }
      ++op_idx_;
      return false;  // yield between ops
    }
    const Status cs = txn().Commit();
    EndTxn();
    if (cs == Status::kOk) {
      for (const auto& [key, value] : effects_) {
        if (value == kDead) {
          live.erase(key);
        } else {
          live[key] = value;
        }
      }
      run_->commits_acked_.fetch_add(1, std::memory_order_relaxed);
      set_result(0);
      return true;
    }
    if (cs != Status::kAborted) {
      std::ostringstream os;
      os << "batched commit returned status " << static_cast<int>(cs) << DescribePlan(plan_);
      return Break(os.str());
    }
    return Retry();
  }

  // Sibling conflict: roll back and replay the same plan (stale-plan op
  // conversions re-derive from the then-current shadow on the next attempt).
  bool Retry() {
    if (has_txn()) {
      txn().Abort();
      EndTxn();
    }
    op_idx_ = 0;
    if (++attempts_ >= 16) {
      set_result(~0);  // conflict storm; give up like the serial driver
      return true;
    }
    return false;
  }

  bool Break(std::string message) {
    if (has_txn()) {
      txn().Abort();
      EndTxn();
    }
    {
      std::lock_guard<std::mutex> lock(run_->broken_mu_);
      if (run_->broken_.empty()) {
        run_->broken_ = "thread " + std::to_string(t_) + ": " + std::move(message);
      }
    }
    run_->stop_.store(true, std::memory_order_release);
    set_result(~0);
    return true;
  }

  SweepRun* run_;
  uint32_t t_;
  std::vector<Op> plan_;
  size_t op_idx_ = 0;
  int attempts_ = 0;
  Effects applied_;   // own writes executed so far (read-own-writes oracle)
  Effects effects_;   // final state this txn will commit, as executed
  Shadow snapshot_;   // committed shadow at BeginTxn (multi-version reads)
};

// Plans transactions on demand and feeds them through a fixed frame pool.
// Plans are drawn against the live shadow, which by construction includes
// every sibling commit that retired before this admission.
class SweepFrameSource final : public FrameSource {
 public:
  SweepFrameSource(SweepRun* run, uint32_t t, Rng* rng) : run_(run), t_(t), rng_(rng) {
    const uint32_t pool = std::max(2u, run->cfg_.batch_size);
    pool_.reserve(pool);
    for (uint32_t i = 0; i < pool; ++i) {
      pool_.push_back(std::make_unique<SweepFrame>(run, t));
      free_.push_back(pool_.back().get());
    }
  }

  TxnFrame* Next(Worker&) override {
    if (free_.empty()) {
      return nullptr;
    }
    while (issued_ < run_->cfg_.txns_per_thread &&
           !run_->stop_.load(std::memory_order_acquire)) {
      ++issued_;
      Effects projection;
      std::vector<Op> ops = PlanTxn(*rng_, run_->cfg_, t_, run_->shadows_[t_], projection);
      if (ops.empty()) {
        continue;
      }
      SweepFrame* frame = free_.back();
      free_.pop_back();
      frame->Reset(std::move(ops));
      return frame;
    }
    return nullptr;
  }

  void Done(Worker&, TxnFrame* frame, uint64_t, uint64_t) override {
    free_.push_back(static_cast<SweepFrame*>(frame));
  }

  // Power failed mid-batch: drop every outstanding transaction handle
  // without rollback, leaving the engine image exactly as the crash did.
  void FreezeAll() {
    for (auto& frame : pool_) {
      frame->Freeze();
    }
  }

 private:
  SweepRun* run_;
  uint32_t t_;
  Rng* rng_;
  uint64_t issued_ = 0;
  std::vector<std::unique_ptr<SweepFrame>> pool_;
  std::vector<SweepFrame*> free_;
};

void SweepRun::BatchThreadBody(uint32_t t) {
  Rng rng(Mix64(cfg_.seed ^ (0x517cc1b727220a95ull + t)));
  SweepFrameSource source(this, t, &rng);
  try {
    engine_->worker(t).RunBatch(cfg_.batch_size, source);
  } catch (const TxnCrashed&) {
    // The crashing frame already recorded the wound and froze itself;
    // freeze the rest of the batch before the engine is torn down.
    source.FreezeAll();
    stop_.store(true, std::memory_order_release);
  }
}

// Renders the engine's flight recorder into a string (the rings die with the
// engine on reopen, so this must run before CrashAndReopen).
std::string CaptureFlightRecorder(Engine& engine, size_t last_n) {
  if (!engine.tracing_enabled()) {
    return "";
  }
  char* buf = nullptr;
  size_t len = 0;
  std::FILE* mem = open_memstream(&buf, &len);
  if (mem == nullptr) {
    return "";
  }
  engine.tracer().DumpFlightRecorder(mem, last_n);
  std::fclose(mem);
  std::string out(buf, len);
  std::free(buf);
  return out;
}

// Writes the captured timeline to $FALCON_FLIGHT_DIR (when set) and appends
// the file path to the violation message so CI logs point at the artifact.
void PublishFlightRecorder(const SweepConfig& cfg, uint64_t step, SweepResult* result) {
  const char* dir = std::getenv("FALCON_FLIGHT_DIR");
  if (dir == nullptr || dir[0] == '\0' || result->flight_recorder.empty()) {
    return;
  }
  std::ostringstream path;
  path << dir << "/flight_" << SanitizeLabelPart(cfg.make(cfg.cc).name) << "_seed" << cfg.seed
       << "_step" << step << ".txt";
  std::FILE* f = std::fopen(path.str().c_str(), "w");
  if (f == nullptr) {
    return;
  }
  std::fwrite(result->flight_recorder.data(), 1, result->flight_recorder.size(), f);
  std::fclose(f);
  result->violation += " [flight recorder: " + path.str() + "]";
}

std::string Prefix(const SweepConfig& cfg, uint64_t step) {
  std::ostringstream os;
  os << "[crash-sweep engine=" << cfg.make(cfg.cc).name << " cc=" << CcSchemeName(cfg.cc)
     << " seed=" << cfg.seed << " step=" << step << "] ";
  return os.str();
}

// Post-recovery verification. Returns the first violation, or "".
std::string Verify(SweepRun& run, uint64_t step) {
  const SweepConfig& cfg = run.cfg_;
  Engine& engine = *run.engine_;
  const TableId table = *engine.FindTableId("sweep");
  const bool out_of_place = engine.config().update_mode == UpdateMode::kOutOfPlace;

  if (!engine.recovery_report().recovered) {
    return Prefix(cfg, step) + "reopen did not run recovery";
  }

  // Expected post-crash state: acknowledged shadows, plus the wounded txn's
  // effects iff it crashed after the commit mark (all-new); a crash at or
  // before the mark must leave every wounded key all-old.
  std::map<uint64_t, uint64_t> expected;
  for (uint32_t t = 0; t < cfg.threads; ++t) {
    const uint64_t base = PartitionBase(t);
    for (uint64_t k = base; k < base + 2ull * cfg.keys_per_thread; ++k) {
      const auto it = run.shadows_[t].find(k);
      expected[k] = it == run.shadows_[t].end() ? kDead : it->second;
    }
  }
  if (run.wound_.fired && !CrashStepPrecedesCommit(run.wound_.kind)) {
    for (const auto& [key, value] : run.wound_.effects) {
      expected[key] = value;
    }
  }

  // 1. Durability + atomicity via the transactional read path.
  Worker& w = engine.worker(0);
  constexpr uint64_t kUnreadable = kDead - 1;  // read never succeeded
  auto read_value = [&](uint64_t key) {
    for (int attempt = 0; attempt < 1000; ++attempt) {
      Txn txn = w.Begin();
      uint64_t value = 0;
      const Status s = txn.ReadColumn(table, key, kValueColumn, &value);
      if (s == Status::kNotFound) {
        txn.Commit();
        return kDead;
      }
      if (s == Status::kOk && txn.Commit() == Status::kOk) {
        return value;
      }
    }
    return kUnreadable;
  };
  for (const auto& [key, want] : expected) {
    const uint64_t got = read_value(key);
    if (got != want) {
      std::ostringstream os;
      os << Prefix(cfg, step) << "key " << key << ": recovered value ";
      if (got == kDead) {
        os << "<dead>";
      } else {
        os << got;
      }
      os << ", oracle expects ";
      if (want == kDead) {
        os << "<dead>";
      } else {
        os << want;
      }
      if (run.wound_.fired && run.wound_.effects.count(key) != 0) {
        os << " (wounded txn, crashed at " << CrashStepKindName(run.wound_.kind)
           << ", must be " << (CrashStepPrecedesCommit(run.wound_.kind) ? "all-old" : "all-new")
           << ")";
      }
      // Header diagnostics: what does the index resolve to?
      const PmOffset off = engine.table_index(table).Lookup(w.ctx(), key);
      if (off == kNullPm) {
        os << " [index: no entry]";
      } else {
        TupleHeader* header = engine.table_heap(table).Header(off);
        os << " [index -> tuple key=" << header->key << " flags=0x" << std::hex
           << header->flags.load(std::memory_order_acquire) << " cc_word=0x"
           << header->cc_word.load(std::memory_order_acquire) << std::dec << "]";
      }
      return os.str();
    }
  }

  // 2. Index/heap agreement per key.
  Index& index = engine.table_index(table);
  TupleHeap& heap = engine.table_heap(table);
  ThreadContext& ctx = w.ctx();
  for (const auto& [key, want] : expected) {
    const PmOffset off = index.Lookup(ctx, key);
    if (want == kDead) {
      if (off != kNullPm) {
        const uint64_t flags = heap.Header(off)->flags.load(std::memory_order_acquire);
        if ((flags & kTupleDeleted) == 0 && (flags & kTupleValid) != 0 &&
            (!out_of_place || (flags & kTupleCommitted) != 0)) {
          std::ostringstream os;
          os << Prefix(cfg, step) << "dead key " << key
             << " resolves to a live tuple (flags=" << flags << ")";
          return os.str();
        }
      }
      continue;
    }
    if (off == kNullPm) {
      std::ostringstream os;
      os << Prefix(cfg, step) << "live key " << key << " missing from the index";
      return os.str();
    }
    TupleHeader* header = heap.Header(off);
    const uint64_t flags = header->flags.load(std::memory_order_acquire);
    if (header->key != key || (flags & kTupleValid) == 0 || (flags & kTupleDeleted) != 0 ||
        (flags & kTupleSuperseded) != 0 || (out_of_place && (flags & kTupleCommitted) == 0)) {
      std::ostringstream os;
      os << Prefix(cfg, step) << "live key " << key << " resolves to a bad header (key="
         << header->key << " flags=" << flags << ")";
      return os.str();
    }
  }

  // 3. At most one live current version per key in the whole heap.
  {
    std::map<uint64_t, int> live;
    std::string dup;
    heap.ForEachSlot([&](PmOffset, TupleHeader* header) {
      const uint64_t flags = header->flags.load(std::memory_order_acquire);
      const bool current = (flags & kTupleValid) != 0 && (flags & kTupleDeleted) == 0 &&
                           (flags & kTupleSuperseded) == 0 &&
                           (!out_of_place || (flags & kTupleCommitted) != 0);
      if (current && ++live[header->key] == 2 && dup.empty()) {
        dup = std::to_string(header->key);
      }
    });
    if (!dup.empty()) {
      return Prefix(cfg, step) + "key " + dup + " has two live versions in the heap";
    }
  }

  // 4. Every log slot is free again (nothing leaked across recovery).
  for (uint32_t t = 0; t < engine.worker_count(); ++t) {
    LogWindow& log = engine.worker(t).log();
    if (log.FreeSlotCount() != log.slot_count()) {
      std::ostringstream os;
      os << Prefix(cfg, step) << "worker " << t << " log window leaked slots ("
         << log.FreeSlotCount() << "/" << log.slot_count() << " free)";
      return os.str();
    }
  }

  // 5. Every partition stays writable: no lock, latch, or half-dead index
  // entry may wedge a key after recovery.
  for (uint32_t t = 0; t < cfg.threads; ++t) {
    const uint64_t key = PartitionBase(t) + (t % (2ull * cfg.keys_per_thread));
    const uint64_t fresh = Mix64(cfg.seed ^ step ^ key) >> 1;
    bool done = false;
    for (int attempt = 0; attempt < 16 && !done; ++attempt) {
      Txn txn = w.Begin();
      Status s;
      if (expected[key] == kDead) {
        const uint64_t row[2] = {key, fresh};
        s = txn.Insert(table, key, row);
      } else {
        s = txn.UpdateColumn(table, key, kValueColumn, &fresh);
      }
      done = s == Status::kOk && txn.Commit() == Status::kOk;
    }
    if (!done) {
      std::ostringstream os;
      os << Prefix(cfg, step) << "key " << key << " is wedged after recovery";
      return os.str();
    }
    if (read_value(key) != fresh) {
      std::ostringstream os;
      os << Prefix(cfg, step) << "post-recovery write to key " << key << " did not stick";
      return os.str();
    }
  }

  return "";
}

}  // namespace

uint64_t CountSteps(const SweepConfig& cfg) {
  SweepRun run(cfg);
  std::string error;
  if (!run.Preload(&error)) {
    return 0;
  }
  run.RunWorkload(/*step=*/0, /*count_only=*/true);
  return run.engine_->CrashStepsCounted();
}

SweepResult RunCrashAt(const SweepConfig& cfg, uint64_t step) {
  SweepResult result;
  SweepRun run(cfg);
  std::string error;
  if (!run.Preload(&error)) {
    result.violation = Prefix(cfg, step) + error;
    return result;
  }
  run.RunWorkload(step, /*count_only=*/false);
  result.commits_acked = run.commits_acked_.load();
  {
    std::lock_guard<std::mutex> lock(run.broken_mu_);
    if (!run.broken_.empty()) {
      result.violation = Prefix(cfg, step) + "pre-crash oracle violation: " + run.broken_;
      result.flight_recorder = CaptureFlightRecorder(*run.engine_, cfg.flight_last_n);
      PublishFlightRecorder(cfg, step, &result);
      return result;
    }
  }
  result.crashed = run.wound_.fired;
  result.crash_step = run.wound_.step;
  result.crash_kind = run.wound_.kind;
  // Capture the timeline while the crashed engine (and its rings) still
  // exists; it is published only if verification fails below.
  std::string flight = CaptureFlightRecorder(*run.engine_, cfg.flight_last_n);
  run.CrashAndReopen();
  result.report = run.engine_->recovery_report();
  result.violation = Verify(run, step);
  if (result.violation.empty() && cfg.force_violation) {
    result.violation = Prefix(cfg, step) + "forced violation (SweepConfig::force_violation)";
  }
  if (!result.violation.empty()) {
    result.flight_recorder = std::move(flight);
    PublishFlightRecorder(cfg, step, &result);
  }
  return result;
}

}  // namespace falcon::test
