// FALCON_TEST_SEED support for RNG-seeded tests.
//
// Every randomized test derives its seed through TestSeed(default): normal
// runs are deterministic (the default), and setting FALCON_TEST_SEED=<n>
// replays a failure reported by FALCON_SCOPED_SEED. The macro attaches the
// effective seed to every assertion in scope, so any failure prints the
// exact environment line needed to reproduce it.

#ifndef TESTS_HARNESS_TEST_SEED_H_
#define TESTS_HARNESS_TEST_SEED_H_

#include <cstdint>
#include <cstdlib>

namespace falcon::test {

// Returns FALCON_TEST_SEED when the env var is set and parseable (decimal,
// or hex with a 0x prefix), otherwise `fallback`.
inline uint64_t TestSeed(uint64_t fallback) {
  const char* env = std::getenv("FALCON_TEST_SEED");
  if (env == nullptr || *env == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 0);
  return end != env ? static_cast<uint64_t>(parsed) : fallback;
}

}  // namespace falcon::test

// Requires <gtest/gtest.h> at the use site.
#define FALCON_SCOPED_SEED(seed) \
  SCOPED_TRACE(::testing::Message() << "replay with FALCON_TEST_SEED=" << (seed))

#endif  // TESTS_HARNESS_TEST_SEED_H_
