// Engine CRUD + transaction semantics, parameterized over every engine
// configuration from the paper's Table 1 and every CC scheme (§5.2.1).

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "src/core/engine.h"

namespace falcon {
namespace {

struct EngineParam {
  const char* label;
  EngineConfig (*make)(CcScheme);
  CcScheme cc;
};

EngineConfig MakeFalcon(CcScheme cc) { return EngineConfig::Falcon(cc); }
EngineConfig MakeFalconNoFlush(CcScheme cc) { return EngineConfig::FalconNoFlush(cc); }
EngineConfig MakeFalconAllFlush(CcScheme cc) { return EngineConfig::FalconAllFlush(cc); }
EngineConfig MakeFalconDram(CcScheme cc) { return EngineConfig::FalconDramIndex(cc); }
EngineConfig MakeInp(CcScheme cc) { return EngineConfig::Inp(cc); }
EngineConfig MakeInpNoFlush(CcScheme cc) { return EngineConfig::InpNoFlush(cc); }
EngineConfig MakeInpSlw(CcScheme cc) { return EngineConfig::InpSmallLogWindow(cc); }
EngineConfig MakeInpHtt(CcScheme cc) { return EngineConfig::InpHotTupleTracking(cc); }
EngineConfig MakeOutp(CcScheme cc) { return EngineConfig::Outp(cc); }
EngineConfig MakeZenS(CcScheme cc) { return EngineConfig::ZenS(cc); }
EngineConfig MakeZenSNoFlush(CcScheme cc) { return EngineConfig::ZenSNoFlush(cc); }

class EngineTest : public ::testing::TestWithParam<EngineParam> {
 protected:
  static constexpr uint64_t kRowBytes = 32;

  EngineTest() : dev_(512ul * 1024 * 1024) {
    engine_ = std::make_unique<Engine>(&dev_, GetParam().make(GetParam().cc), /*workers=*/4);
    SchemaBuilder schema("accounts");
    schema.AddU64();        // balance
    schema.AddColumn(24);   // payload
    table_ = engine_->CreateTable(schema, IndexKind::kHash);

    SchemaBuilder orders("orders");
    orders.AddU64();
    ordered_table_ = engine_->CreateTable(orders, IndexKind::kBTree);
  }

  // Writes a recognizable 32-byte row for `seed`.
  static void FillRow(std::byte* row, uint64_t seed) {
    std::memset(row, static_cast<int>(seed & 0x7f), kRowBytes);
    std::memcpy(row, &seed, sizeof(seed));
  }

  Status InsertRow(Worker& w, TableId table, uint64_t key, uint64_t seed) {
    std::byte row[kRowBytes];
    FillRow(row, seed);
    Txn txn = w.Begin();
    const Status s = txn.Insert(table, key, row);
    if (s != Status::kOk) {
      txn.Abort();
      return s;
    }
    return txn.Commit();
  }

  NvmDevice dev_;
  std::unique_ptr<Engine> engine_;
  TableId table_ = 0;
  TableId ordered_table_ = 0;
};

TEST_P(EngineTest, InsertThenRead) {
  Worker& w = engine_->worker(0);
  ASSERT_EQ(InsertRow(w, table_, 7, 0xabc), Status::kOk);

  Txn txn = w.Begin();
  std::byte got[kRowBytes];
  ASSERT_EQ(txn.Read(table_, 7, got), Status::kOk);
  std::byte want[kRowBytes];
  FillRow(want, 0xabc);
  EXPECT_EQ(std::memcmp(got, want, kRowBytes), 0);
  EXPECT_EQ(txn.Commit(), Status::kOk);
}

TEST_P(EngineTest, ReadMissingKey) {
  Worker& w = engine_->worker(0);
  Txn txn = w.Begin();
  std::byte got[kRowBytes];
  EXPECT_EQ(txn.Read(table_, 999, got), Status::kNotFound);
  EXPECT_EQ(txn.Commit(), Status::kOk);
}

TEST_P(EngineTest, DuplicateInsertRejected) {
  Worker& w = engine_->worker(0);
  ASSERT_EQ(InsertRow(w, table_, 1, 1), Status::kOk);
  EXPECT_EQ(InsertRow(w, table_, 1, 2), Status::kDuplicate);
  // Original row unchanged.
  Txn txn = w.Begin();
  std::byte got[kRowBytes];
  ASSERT_EQ(txn.Read(table_, 1, got), Status::kOk);
  std::byte want[kRowBytes];
  FillRow(want, 1);
  EXPECT_EQ(std::memcmp(got, want, kRowBytes), 0);
  txn.Commit();
}

TEST_P(EngineTest, UpdateFullAndPartial) {
  Worker& w = engine_->worker(0);
  ASSERT_EQ(InsertRow(w, table_, 5, 10), Status::kOk);

  {
    Txn txn = w.Begin();
    std::byte row[kRowBytes];
    FillRow(row, 20);
    ASSERT_EQ(txn.UpdateFull(table_, 5, row), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  {
    Txn txn = w.Begin();
    const uint64_t new_balance = 777;
    ASSERT_EQ(txn.UpdateColumn(table_, 5, 0, &new_balance), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  Txn txn = w.Begin();
  uint64_t balance = 0;
  ASSERT_EQ(txn.ReadColumn(table_, 5, 0, &balance), Status::kOk);
  EXPECT_EQ(balance, 777u);
  std::byte got[kRowBytes];
  ASSERT_EQ(txn.Read(table_, 5, got), Status::kOk);
  EXPECT_EQ(static_cast<unsigned char>(got[kRowBytes - 1]), 20u & 0x7f);
  txn.Commit();
}

TEST_P(EngineTest, ReadOwnWrites) {
  Worker& w = engine_->worker(0);
  ASSERT_EQ(InsertRow(w, table_, 3, 1), Status::kOk);

  Txn txn = w.Begin();
  const uint64_t v = 42;
  ASSERT_EQ(txn.UpdateColumn(table_, 3, 0, &v), Status::kOk);
  uint64_t got = 0;
  ASSERT_EQ(txn.ReadColumn(table_, 3, 0, &got), Status::kOk);
  EXPECT_EQ(got, 42u) << "transaction must see its own pending update";
  ASSERT_EQ(txn.Commit(), Status::kOk);
}

TEST_P(EngineTest, ReadOwnInsert) {
  Worker& w = engine_->worker(0);
  Txn txn = w.Begin();
  std::byte row[kRowBytes];
  FillRow(row, 9);
  ASSERT_EQ(txn.Insert(table_, 30, row), Status::kOk);
  std::byte got[kRowBytes];
  ASSERT_EQ(txn.Read(table_, 30, got), Status::kOk);
  EXPECT_EQ(std::memcmp(got, row, kRowBytes), 0);
  ASSERT_EQ(txn.Commit(), Status::kOk);
}

TEST_P(EngineTest, AbortRollsBackUpdate) {
  Worker& w = engine_->worker(0);
  ASSERT_EQ(InsertRow(w, table_, 4, 50), Status::kOk);
  {
    Txn txn = w.Begin();
    const uint64_t v = 999;
    ASSERT_EQ(txn.UpdateColumn(table_, 4, 0, &v), Status::kOk);
    txn.Abort();
  }
  Txn txn = w.Begin();
  uint64_t got = 0;
  ASSERT_EQ(txn.ReadColumn(table_, 4, 0, &got), Status::kOk);
  EXPECT_EQ(got, 50u);
  txn.Commit();
}

TEST_P(EngineTest, AbortRollsBackInsert) {
  Worker& w = engine_->worker(0);
  {
    Txn txn = w.Begin();
    std::byte row[kRowBytes];
    FillRow(row, 1);
    ASSERT_EQ(txn.Insert(table_, 77, row), Status::kOk);
    txn.Abort();
  }
  Txn txn = w.Begin();
  std::byte got[kRowBytes];
  EXPECT_EQ(txn.Read(table_, 77, got), Status::kNotFound);
  txn.Commit();
  // The key is insertable again.
  EXPECT_EQ(InsertRow(w, table_, 77, 2), Status::kOk);
}

TEST_P(EngineTest, ImplicitAbortOnDrop) {
  Worker& w = engine_->worker(0);
  ASSERT_EQ(InsertRow(w, table_, 8, 1), Status::kOk);
  {
    Txn txn = w.Begin();
    const uint64_t v = 2;
    ASSERT_EQ(txn.UpdateColumn(table_, 8, 0, &v), Status::kOk);
    // Dropped without Commit: destructor must roll back and release locks.
  }
  Txn txn = w.Begin();
  uint64_t got = 0;
  ASSERT_EQ(txn.ReadColumn(table_, 8, 0, &got), Status::kOk);
  EXPECT_EQ(got, 1u);
  txn.Commit();
}

TEST_P(EngineTest, DeleteHidesTuple) {
  Worker& w = engine_->worker(0);
  ASSERT_EQ(InsertRow(w, table_, 11, 1), Status::kOk);
  {
    Txn txn = w.Begin();
    ASSERT_EQ(txn.Delete(table_, 11), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  Txn txn = w.Begin();
  std::byte got[kRowBytes];
  EXPECT_EQ(txn.Read(table_, 11, got), Status::kNotFound);
  txn.Commit();
  // Key is re-insertable after the delete.
  EXPECT_EQ(InsertRow(w, table_, 11, 3), Status::kOk);
}

TEST_P(EngineTest, MultiTupleTransactionIsAtomic) {
  Worker& w = engine_->worker(0);
  for (uint64_t k = 100; k < 105; ++k) {
    ASSERT_EQ(InsertRow(w, table_, k, 1000), Status::kOk);
  }
  {
    Txn txn = w.Begin();
    for (uint64_t k = 100; k < 105; ++k) {
      const uint64_t v = 2000 + k;
      ASSERT_EQ(txn.UpdateColumn(table_, k, 0, &v), Status::kOk);
    }
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  Txn txn = w.Begin();
  for (uint64_t k = 100; k < 105; ++k) {
    uint64_t got = 0;
    ASSERT_EQ(txn.ReadColumn(table_, k, 0, &got), Status::kOk);
    EXPECT_EQ(got, 2000 + k);
  }
  txn.Commit();
}

TEST_P(EngineTest, ScanOverBTreeTable) {
  Worker& w = engine_->worker(0);
  for (uint64_t k = 0; k < 50; ++k) {
    std::byte row[8];
    std::memcpy(row, &k, 8);
    Txn txn = w.Begin();
    ASSERT_EQ(txn.Insert(ordered_table_, k * 2, row), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  Txn txn = w.Begin();
  std::vector<uint64_t> keys;
  ASSERT_EQ(txn.Scan(ordered_table_, 10, 30, 100,
                     [&](uint64_t key, const std::byte*) { keys.push_back(key); }),
            Status::kOk);
  ASSERT_EQ(keys.size(), 11u);  // 10, 12, ..., 30
  EXPECT_EQ(keys.front(), 10u);
  EXPECT_EQ(keys.back(), 30u);
  txn.Commit();
}

TEST_P(EngineTest, RepeatedUpdatesKeepLatestValue) {
  Worker& w = engine_->worker(0);
  ASSERT_EQ(InsertRow(w, table_, 60, 0), Status::kOk);
  for (uint64_t round = 1; round <= 100; ++round) {
    Txn txn = w.Begin();
    ASSERT_EQ(txn.UpdateColumn(table_, 60, 0, &round), Status::kOk);
    ASSERT_EQ(txn.Commit(), Status::kOk);
  }
  Txn txn = w.Begin();
  uint64_t got = 0;
  ASSERT_EQ(txn.ReadColumn(table_, 60, 0, &got), Status::kOk);
  EXPECT_EQ(got, 100u);
  txn.Commit();
}

TEST_P(EngineTest, UpdateSameTupleTwiceInOneTxn) {
  Worker& w = engine_->worker(0);
  ASSERT_EQ(InsertRow(w, table_, 61, 0), Status::kOk);
  Txn txn = w.Begin();
  uint64_t v = 1;
  ASSERT_EQ(txn.UpdateColumn(table_, 61, 0, &v), Status::kOk);
  v = 2;
  ASSERT_EQ(txn.UpdateColumn(table_, 61, 0, &v), Status::kOk);
  ASSERT_EQ(txn.Commit(), Status::kOk);

  Txn check = w.Begin();
  uint64_t got = 0;
  ASSERT_EQ(check.ReadColumn(table_, 61, 0, &got), Status::kOk);
  EXPECT_EQ(got, 2u);
  check.Commit();
}

TEST_P(EngineTest, WriteConflictAbortsOneSide) {
  // Two workers update the same tuple with overlapping transactions: the
  // no-wait policies must abort (not block or corrupt) one of them.
  Worker& w0 = engine_->worker(0);
  Worker& w1 = engine_->worker(1);
  ASSERT_EQ(InsertRow(w0, table_, 70, 0), Status::kOk);

  Txn a = w0.Begin();
  Txn b = w1.Begin();
  const uint64_t va = 1;
  const uint64_t vb = 2;
  const Status sa = a.UpdateColumn(table_, 70, 0, &va);
  const Status sb = b.UpdateColumn(table_, 70, 0, &vb);
  Status ca = sa == Status::kOk ? a.Commit() : Status::kAborted;
  Status cb = sb == Status::kOk ? b.Commit() : Status::kAborted;
  if (sa != Status::kOk) {
    a.Abort();
  }
  if (sb != Status::kOk) {
    b.Abort();
  }
  // At least one side must succeed; the final value reflects a winner.
  EXPECT_TRUE(ca == Status::kOk || cb == Status::kOk);
  Txn check = w0.Begin();
  uint64_t got = 99;
  ASSERT_EQ(check.ReadColumn(table_, 70, 0, &got), Status::kOk);
  if (ca == Status::kOk && cb == Status::kOk) {
    EXPECT_TRUE(got == 1 || got == 2);
  } else if (ca == Status::kOk) {
    EXPECT_EQ(got, 1u);
  } else if (cb == Status::kOk) {
    EXPECT_EQ(got, 2u);
  }
  check.Commit();
}

TEST_P(EngineTest, ReadOnlyTxnSeesCommittedData) {
  Worker& w = engine_->worker(0);
  ASSERT_EQ(InsertRow(w, table_, 80, 123), Status::kOk);
  Txn ro = w.Begin(/*read_only=*/true);
  uint64_t got = 0;
  ASSERT_EQ(ro.ReadColumn(table_, 80, 0, &got), Status::kOk);
  EXPECT_EQ(got, 123u);
  EXPECT_EQ(ro.Commit(), Status::kOk);
}

TEST_P(EngineTest, StatsCountCommitsAndAborts) {
  Worker& w = engine_->worker(2);
  const uint64_t commits_before = w.stats().commits;
  ASSERT_EQ(InsertRow(w, table_, 90, 1), Status::kOk);
  {
    Txn txn = w.Begin();
    const uint64_t v = 2;
    ASSERT_EQ(txn.UpdateColumn(table_, 90, 0, &v), Status::kOk);
    txn.Abort();
  }
  EXPECT_EQ(w.stats().commits, commits_before + 1);
  EXPECT_GE(w.stats().txn_aborts, 1u);
  EXPECT_GT(w.ctx().sim_ns(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineTest,
    ::testing::Values(EngineParam{"Falcon_OCC", MakeFalcon, CcScheme::kOcc},
                      EngineParam{"Falcon_2PL", MakeFalcon, CcScheme::k2pl},
                      EngineParam{"Falcon_TO", MakeFalcon, CcScheme::kTo},
                      EngineParam{"Falcon_MVOCC", MakeFalcon, CcScheme::kMvOcc},
                      EngineParam{"Falcon_MV2PL", MakeFalcon, CcScheme::kMv2pl},
                      EngineParam{"Falcon_MVTO", MakeFalcon, CcScheme::kMvTo},
                      EngineParam{"FalconNoFlush_OCC", MakeFalconNoFlush, CcScheme::kOcc},
                      EngineParam{"FalconAllFlush_OCC", MakeFalconAllFlush, CcScheme::kOcc},
                      EngineParam{"FalconDramIndex_OCC", MakeFalconDram, CcScheme::kOcc},
                      EngineParam{"Inp_OCC", MakeInp, CcScheme::kOcc},
                      EngineParam{"InpNoFlush_OCC", MakeInpNoFlush, CcScheme::kOcc},
                      EngineParam{"InpSLW_OCC", MakeInpSlw, CcScheme::kOcc},
                      EngineParam{"InpHTT_OCC", MakeInpHtt, CcScheme::kOcc},
                      EngineParam{"Outp_OCC", MakeOutp, CcScheme::kOcc},
                      EngineParam{"Outp_2PL", MakeOutp, CcScheme::k2pl},
                      EngineParam{"Outp_MVTO", MakeOutp, CcScheme::kMvTo},
                      EngineParam{"ZenS_OCC", MakeZenS, CcScheme::kOcc},
                      EngineParam{"ZenS_MVOCC", MakeZenS, CcScheme::kMvOcc},
                      EngineParam{"ZenSNoFlush_OCC", MakeZenSNoFlush, CcScheme::kOcc}),
    [](const auto& info) { return std::string(info.param.label); });

}  // namespace
}  // namespace falcon
