// Unit tests for storage: schema layout, table catalog, tuple heap
// allocation/deletion/reclamation, heap scans, version heap GC.

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "src/pmem/arena.h"
#include "src/pmem/catalog.h"
#include "src/sim/thread_context.h"
#include "src/storage/schema.h"
#include "src/storage/table.h"
#include "src/storage/tuple_heap.h"
#include "src/storage/version_heap.h"

namespace falcon {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  StorageTest()
      : dev_(256ul * 1024 * 1024), arena_(NvmArena::Format(&dev_)), ctx_(0, &dev_) {}

  TableMeta* MakeTable(const char* name, uint32_t column_size, uint32_t columns = 2) {
    SchemaBuilder schema(name);
    for (uint32_t i = 0; i < columns; ++i) {
      schema.AddColumn(column_size);
    }
    return CreateTable(arena_, schema, IndexKind::kHash);
  }

  NvmDevice dev_;
  NvmArena arena_;
  ThreadContext ctx_;
};

TEST(SchemaTest, ColumnOffsetsArePacked) {
  SchemaBuilder schema("t");
  const uint32_t c0 = schema.AddU64();
  const uint32_t c1 = schema.AddColumn(24);
  const uint32_t c2 = schema.AddU64();
  EXPECT_EQ(c0, 0u);
  EXPECT_EQ(c1, 1u);
  EXPECT_EQ(c2, 2u);
  EXPECT_EQ(schema.columns()[0].offset, 0u);
  EXPECT_EQ(schema.columns()[1].offset, 8u);
  EXPECT_EQ(schema.columns()[2].offset, 32u);
  EXPECT_EQ(schema.data_size(), 40u);
}

TEST(SchemaTest, LongNamesAreTruncatedSafely) {
  SchemaBuilder schema("a_very_long_table_name_that_exceeds_the_limit");
  EXPECT_EQ(std::strlen(schema.name()), kMaxTableNameLen);
}

TEST(SchemaTest, SlotSizeRounding) {
  // Small tuples round to cache lines; slot <= 256B stays line-granular.
  EXPECT_EQ(ComputeSlotSize(64, 8), 128u);
  EXPECT_EQ(ComputeSlotSize(64, 64), 128u);
  EXPECT_EQ(ComputeSlotSize(64, 192), 256u);
  // Larger tuples round to whole 256B media blocks for hinted flush.
  EXPECT_EQ(ComputeSlotSize(64, 200), 512u);
  EXPECT_EQ(ComputeSlotSize(64, 1000), 1280u);
  EXPECT_EQ(ComputeSlotSize(64, 1024), 1280u);
}

TEST_F(StorageTest, CreateAndFindTable) {
  TableMeta* meta = MakeTable("orders", 8, 4);
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->tuple_data_size, 32u);
  EXPECT_EQ(meta->slot_size, 128u);
  EXPECT_EQ(meta->column_count, 4u);
  EXPECT_EQ(FindTable(arena_, "orders"), meta);
  EXPECT_EQ(FindTable(arena_, meta->id), meta);
  EXPECT_EQ(FindTable(arena_, "nonexistent"), nullptr);
  EXPECT_EQ(FindTable(arena_, 99u), nullptr);
}

TEST_F(StorageTest, DuplicateTableNameRejected) {
  ASSERT_NE(MakeTable("t", 8), nullptr);
  EXPECT_EQ(MakeTable("t", 8), nullptr);
}

TEST_F(StorageTest, CatalogCapacityEnforced) {
  for (uint32_t i = 0; i < kMaxTables; ++i) {
    char name[16];
    std::snprintf(name, sizeof(name), "t%u", i);
    ASSERT_NE(MakeTable(name, 8), nullptr) << i;
  }
  EXPECT_EQ(MakeTable("overflow", 8), nullptr);
}

TEST_F(StorageTest, AllocateInitializesHeader) {
  TableMeta* meta = MakeTable("t", 16);
  TupleHeap heap(&arena_, meta);
  const PmOffset slot = heap.Allocate(ctx_, /*key=*/42, /*min_active_tid=*/0);
  ASSERT_NE(slot, kNullPm);
  TupleHeader* header = heap.Header(slot);
  EXPECT_EQ(header->key, 42u);
  EXPECT_EQ(header->flags.load(), kTupleValid);
  EXPECT_EQ(header->cc_word.load(), 0u);
  EXPECT_EQ(header->prev.load(), kNullPm);
  // Data area is writable.
  std::memset(TupleData(header), 0xab, meta->tuple_data_size);
  EXPECT_EQ(static_cast<unsigned char>(TupleData(header)[15]), 0xabu);
}

TEST_F(StorageTest, AllocationsAreDistinctAndAligned) {
  TableMeta* meta = MakeTable("t", 8);
  TupleHeap heap(&arena_, meta);
  std::set<PmOffset> seen;
  for (int i = 0; i < 100000; ++i) {
    const PmOffset slot = heap.Allocate(ctx_, i, 0);
    ASSERT_NE(slot, kNullPm);
    EXPECT_EQ(slot % kCacheLineSize, 0u);
    EXPECT_TRUE(seen.insert(slot).second);
  }
  EXPECT_EQ(heap.CountSlots(), 100000u);
}

TEST_F(StorageTest, LargeTupleSlotsAreBlockAligned) {
  SchemaBuilder schema("big");
  schema.AddColumn(1000);
  TableMeta* meta = CreateTable(arena_, schema, IndexKind::kHash);
  TupleHeap heap(&arena_, meta);
  for (int i = 0; i < 10; ++i) {
    const PmOffset slot = heap.Allocate(ctx_, i, 0);
    EXPECT_EQ(slot % kNvmBlockSize, 0u);
  }
}

TEST_F(StorageTest, HeapSpansMultiplePages) {
  TableMeta* meta = MakeTable("t", 8);  // slot 128B -> ~16K slots per page
  TupleHeap heap(&arena_, meta);
  constexpr int kCount = 40000;  // needs 3 pages
  for (int i = 0; i < kCount; ++i) {
    ASSERT_NE(heap.Allocate(ctx_, i, 0), kNullPm);
  }
  EXPECT_EQ(heap.CountSlots(), static_cast<uint64_t>(kCount));
  // Page chain for thread 0 has >= 3 pages.
  int pages = 0;
  PmOffset page = meta->heap_head[0];
  while (page != kNullPm) {
    ++pages;
    page = arena_.Ptr<PageHeader>(page)->next_page;
  }
  EXPECT_GE(pages, 3);
}

TEST_F(StorageTest, PerThreadPagesAreDisjoint) {
  TableMeta* meta = MakeTable("t", 8);
  TupleHeap heap(&arena_, meta);
  ThreadContext ctx1(1, &dev_);
  const PmOffset a = heap.Allocate(ctx_, 1, 0);
  const PmOffset b = heap.Allocate(ctx1, 2, 0);
  EXPECT_NE(a / kPageSize, b / kPageSize);
  EXPECT_NE(meta->heap_head[0], meta->heap_head[1]);
}

TEST_F(StorageTest, DeletedTupleIsReclaimedOnlyAfterMinActiveAdvances) {
  TableMeta* meta = MakeTable("t", 8);
  TupleHeap heap(&arena_, meta);
  const PmOffset slot = heap.Allocate(ctx_, 1, 0);
  heap.MarkDeleted(ctx_, slot, /*delete_tid=*/100);
  EXPECT_NE(heap.Header(slot)->flags.load() & kTupleDeleted, 0u);

  // A reader with TID <= 100 may still be looking at the tuple: not reused.
  const PmOffset fresh = heap.Allocate(ctx_, 2, /*min_active_tid=*/100);
  EXPECT_NE(fresh, slot);

  // Once every active TID exceeds the delete timestamp, the slot recycles.
  const PmOffset recycled = heap.Allocate(ctx_, 3, /*min_active_tid=*/101);
  EXPECT_EQ(recycled, slot);
  EXPECT_EQ(heap.Header(recycled)->key, 3u);
  EXPECT_EQ(heap.Header(recycled)->flags.load(), kTupleValid);
}

TEST_F(StorageTest, DeletedListPreservesFifoTimestampOrder) {
  TableMeta* meta = MakeTable("t", 8);
  TupleHeap heap(&arena_, meta);
  const PmOffset s1 = heap.Allocate(ctx_, 1, 0);
  const PmOffset s2 = heap.Allocate(ctx_, 2, 0);
  heap.MarkDeleted(ctx_, s1, 10);
  heap.MarkDeleted(ctx_, s2, 20);
  // min_active 15: only s1 reclaimable.
  EXPECT_EQ(heap.Allocate(ctx_, 7, 15), s1);
  const PmOffset next = heap.Allocate(ctx_, 8, 15);
  EXPECT_NE(next, s2);
  // Now s2 becomes reclaimable.
  EXPECT_EQ(heap.Allocate(ctx_, 9, 25), s2);
}

TEST_F(StorageTest, ForEachSlotVisitsAcrossThreadsAndSkipsNothingValid) {
  TableMeta* meta = MakeTable("t", 8);
  TupleHeap heap(&arena_, meta);
  ThreadContext ctx1(1, &dev_);
  for (int i = 0; i < 100; ++i) {
    heap.Allocate(ctx_, i, 0);
    heap.Allocate(ctx1, 1000 + i, 0);
  }
  std::set<uint64_t> keys;
  heap.ForEachSlot([&](PmOffset, TupleHeader* header) { keys.insert(header->key); });
  EXPECT_EQ(keys.size(), 200u);
  EXPECT_TRUE(keys.count(0) == 1 && keys.count(1099) == 1);
}

TEST_F(StorageTest, DeletedListSurvivesReopen) {
  // The deleted list lives in the catalog + tuple headers (all NVM): after a
  // simulated crash a new heap instance still reclaims from it.
  TableMeta* meta = MakeTable("t", 8);
  {
    TupleHeap heap(&arena_, meta);
    const PmOffset slot = heap.Allocate(ctx_, 1, 0);
    heap.MarkDeleted(ctx_, slot, 5);
  }
  NvmArena reopened = NvmArena::Open(&dev_);
  TupleHeap heap2(&reopened, FindTable(reopened, "t"));
  const PmOffset slot = heap2.Allocate(ctx_, 2, /*min_active_tid=*/10);
  EXPECT_EQ(heap2.Header(slot)->key, 2u);
  EXPECT_EQ(heap2.CountSlots(), 1u);
}

TEST(TaggedPtrTest, RoundTripAndStaleDetection) {
  int x = 0;
  const uint64_t word = PackTaggedPtr(3, &x);
  EXPECT_EQ(UnpackTaggedPtr<int>(3, word), &x);
  EXPECT_EQ(UnpackTaggedPtr<int>(4, word), nullptr) << "stale generation must read as null";
  EXPECT_EQ(UnpackTaggedPtr<int>(3, PackTaggedPtr(3, nullptr)), nullptr);
}

TEST(VersionHeapTest, AllocateFillsAndTracksBytes) {
  VersionHeap heap;
  Version* v = heap.Allocate(100);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->data_size, 100u);
  std::memset(v->data(), 0x7f, 100);
  EXPECT_GT(heap.live_bytes(), 100u);
  heap.Enqueue(v);
  heap.DropAll();
  EXPECT_EQ(heap.live_bytes(), 0u);
}

TEST(VersionHeapTest, GcRecyclesOnlyBelowMinActive) {
  VersionHeap heap(/*gc_threshold=*/4);
  for (uint64_t ts = 1; ts <= 10; ++ts) {
    Version* v = heap.Allocate(8);
    v->end_ts = ts;
    heap.Enqueue(v);
  }
  EXPECT_TRUE(heap.NeedsGc());
  EXPECT_EQ(heap.Gc(/*min_active_tid=*/5), 4u);  // end_ts 1..4
  EXPECT_EQ(heap.queued(), 6u);
  EXPECT_EQ(heap.Gc(/*min_active_tid=*/100), 6u);
  EXPECT_EQ(heap.queued(), 0u);
  EXPECT_EQ(heap.live_bytes(), 0u);
}

TEST(VersionHeapTest, GcStopsAtFirstSurvivor) {
  VersionHeap heap;
  for (uint64_t ts : {2u, 9u, 3u}) {  // 3 after 9: front blocks the rest
    Version* v = heap.Allocate(8);
    v->end_ts = ts;
    heap.Enqueue(v);
  }
  EXPECT_EQ(heap.Gc(5), 1u);
  EXPECT_EQ(heap.queued(), 2u);
}

TEST(VersionHeapTest, ChainTraversalFindsSnapshotVersion) {
  // Build the Figure 6 scenario: versions with [begin_ts, end_ts) ranges
  // 2-5, 5-7, 7-10; a reader at TS=6 must select the 5-7 version.
  VersionHeap heap;
  Version* v2 = heap.Allocate(8);
  v2->begin_ts = 2;
  v2->end_ts = 5;
  Version* v3 = heap.Allocate(8);
  v3->begin_ts = 5;
  v3->end_ts = 7;
  v3->prev = v2;
  Version* v4 = heap.Allocate(8);
  v4->begin_ts = 7;
  v4->end_ts = 10;
  v4->prev = v3;

  const uint64_t reader_ts = 6;
  Version* cur = v4;
  while (cur != nullptr && cur->begin_ts > reader_ts) {
    cur = cur->prev;
  }
  ASSERT_NE(cur, nullptr);
  EXPECT_EQ(cur->begin_ts, 5u);
  EXPECT_EQ(cur->end_ts, 7u);
  heap.Enqueue(v2);
  heap.Enqueue(v3);
  heap.Enqueue(v4);
}

}  // namespace
}  // namespace falcon
