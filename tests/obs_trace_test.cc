// Flight-recorder tests: ring semantics, engine instrumentation, the
// zero-simulated-cost invariant (device totals are byte-identical with
// tracing on or off), exporter well-formedness, and the crash-sweep
// flight-recorder hook.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unistd.h>
#include <vector>

#include "src/core/engine.h"
#include "tests/harness/crash_sweep.h"

namespace falcon {
namespace {

EngineConfig MakeFalconOcc(CcScheme cc) { return EngineConfig::Falcon(cc); }

// ---- Minimal JSON well-formedness checker ---------------------------------
// Enough of RFC 8259 to catch a malformed exporter: objects, arrays,
// strings with escapes, numbers, true/false/null. Validates the WHOLE input
// is exactly one value.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    while (std::isdigit(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') {
        ++pos_;
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    const size_t len = std::strlen(word);
    if (text_.substr(pos_, len) != word) {
      return false;
    }
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

std::string CaptureDump(const Tracer& tracer, bool perfetto) {
  char* buf = nullptr;
  size_t len = 0;
  std::FILE* mem = open_memstream(&buf, &len);
  if (perfetto) {
    tracer.DumpPerfetto(mem);
  } else {
    tracer.DumpFlightRecorder(mem);
  }
  std::fclose(mem);
  std::string out(buf, len);
  std::free(buf);
  return out;
}

// ---- TraceRing ------------------------------------------------------------

TEST(TraceRing, WraparoundKeepsChronologicalTail) {
  TraceRing ring(/*thread=*/3, /*capacity=*/8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (uint64_t i = 0; i < 20; ++i) {
    ring.Emit(TraceEventKind::kTxnBegin, /*ts=*/100 + i, /*a=*/i);
  }
  EXPECT_EQ(ring.total(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);

  std::vector<TraceEvent> events;
  ring.Snapshot(&events);
  ASSERT_EQ(events.size(), 8u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts, 100 + 12 + i);  // oldest 12 overwritten
    EXPECT_EQ(events[i].thread, 3u);
    if (i > 0) {
      EXPECT_LT(events[i - 1].ts, events[i].ts);
    }
  }

  ring.Snapshot(&events, /*last_n=*/3);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].ts, 117u);
  EXPECT_EQ(events[2].ts, 119u);
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  TraceRing ring(0, 5);
  EXPECT_EQ(ring.capacity(), 8u);
  TraceRing exact(0, 16);
  EXPECT_EQ(exact.capacity(), 16u);
}

TEST(TraceRing, CurrentTxnAttributesDeepEvents) {
  TraceRing ring(0, 16);
  ring.set_current_txn(42);
  ring.Emit(TraceEventKind::kReadStall, 5, 1, 80);
  ring.set_current_txn(0);
  ring.Emit(TraceEventKind::kLogWrap, 6, 0, 3);
  std::vector<TraceEvent> events;
  ring.Snapshot(&events);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].txn, 42u);
  EXPECT_EQ(events[1].txn, 0u);
}

// ---- Engine instrumentation -----------------------------------------------

constexpr uint64_t kRowBytes = 32;

struct Fixture {
  std::unique_ptr<NvmDevice> device;
  std::unique_ptr<Engine> engine;
  TableId table = kInvalidTable;
};

Fixture MakeFixture(uint32_t workers, bool traced) {
  Fixture f;
  f.device = std::make_unique<NvmDevice>(256ull << 20);
  f.engine = std::make_unique<Engine>(f.device.get(), EngineConfig::Falcon(CcScheme::kOcc),
                                      workers);
  if (traced) {
    f.engine->EnableTracing(/*capacity_per_thread=*/1024);
  }
  SchemaBuilder schema("t");
  schema.AddU64();
  schema.AddColumn(kRowBytes - 8);
  f.table = f.engine->CreateTable(schema, IndexKind::kHash);
  return f;
}

// Deterministic single-thread workload; returns committed count.
uint64_t RunWorkload(Fixture& f, uint32_t thread, uint64_t keys) {
  Worker& w = f.engine->worker(thread);
  std::byte row[kRowBytes];
  std::memset(row, 0x5a, sizeof(row));
  uint64_t commits = 0;
  const uint64_t base = (uint64_t{thread} + 1) << 20;
  for (uint64_t k = 0; k < keys; ++k) {
    Txn txn = w.Begin();
    if (txn.Insert(f.table, base + k, row) == Status::kOk && txn.Commit() == Status::kOk) {
      ++commits;
    }
  }
  for (uint64_t k = 0; k < keys; ++k) {
    Txn txn = w.Begin();
    const uint64_t stamp = k;
    if (txn.UpdatePartial(f.table, base + k, 0, 8, &stamp) == Status::kOk &&
        txn.Commit() == Status::kOk) {
      ++commits;
    }
  }
  return commits;
}

TEST(TraceEngine, DisabledByDefaultAndZeroSideEffects) {
  Fixture off = MakeFixture(1, /*traced=*/false);
  Fixture on = MakeFixture(1, /*traced=*/true);
  EXPECT_FALSE(off.engine->tracing_enabled());
  EXPECT_TRUE(on.engine->tracing_enabled());

  const uint64_t commits_off = RunWorkload(off, 0, 200);
  const uint64_t commits_on = RunWorkload(on, 0, 200);
  EXPECT_EQ(commits_off, commits_on);

  for (Fixture* f : {&off, &on}) {
    f->engine->worker(0).ctx().cache().WritebackAll();
    f->device->DrainAll();
  }
  // The invariant the whole subsystem leans on: emission charges no
  // simulated time and touches no modeled memory.
  const DeviceStats a = off.device->stats();
  const DeviceStats b = on.device->stats();
  EXPECT_EQ(a.line_writes, b.line_writes);
  EXPECT_EQ(a.media_writes, b.media_writes);
  EXPECT_EQ(a.media_reads, b.media_reads);
  EXPECT_EQ(off.engine->worker(0).ctx().sim_ns(), on.engine->worker(0).ctx().sim_ns());

  // Disabled engine has no rings at all.
  EXPECT_FALSE(off.engine->tracer().enabled());
  EXPECT_GT(on.engine->tracer().ring(0)->total(), 0u);
}

TEST(TraceEngine, TxnLifecycleEventsRecorded) {
  Fixture f = MakeFixture(1, /*traced=*/true);
  RunWorkload(f, 0, 10);
  // One user abort for the kTxnAbort path.
  {
    Worker& w = f.engine->worker(0);
    Txn txn = w.Begin();
    const uint64_t stamp = 1;
    (void)txn.UpdatePartial(f.table, (1ull << 20) + 1, 0, 8, &stamp);
    txn.Abort();
  }

  std::vector<TraceEvent> events;
  f.engine->tracer().ring(0)->Snapshot(&events);
  uint64_t begins = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t phases = 0;
  for (const TraceEvent& e : events) {
    switch (static_cast<TraceEventKind>(e.kind)) {
      case TraceEventKind::kTxnBegin:
        ++begins;
        break;
      case TraceEventKind::kTxnCommit:
        ++commits;
        EXPECT_NE(e.txn, 0u);
        EXPECT_LE(e.a, e.ts);  // span start <= end
        break;
      case TraceEventKind::kTxnAbort:
        ++aborts;
        EXPECT_EQ(e.b, static_cast<uint64_t>(AbortReason::kUser));
        break;
      case TraceEventKind::kPhaseEnd:
        ++phases;
        EXPECT_LT(e.a, static_cast<uint64_t>(kSimPhaseCount));
        break;
      default:
        break;
    }
  }
  EXPECT_GT(begins, 0u);
  EXPECT_GT(commits, 0u);
  EXPECT_EQ(aborts, 1u);
  EXPECT_GT(phases, 0u);
}

TEST(TraceEngine, ConcurrentWritersStayInTheirOwnRings) {
  constexpr uint32_t kThreads = 4;
  Fixture f = MakeFixture(kThreads, /*traced=*/true);
  std::vector<std::thread> pool;
  for (uint32_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&f, t] { RunWorkload(f, t, 100); });
  }
  for (auto& th : pool) {
    th.join();
  }
  for (uint32_t t = 0; t < kThreads; ++t) {
    std::vector<TraceEvent> events;
    f.engine->tracer().ring(t)->Snapshot(&events);
    ASSERT_FALSE(events.empty());
    for (const TraceEvent& e : events) {
      EXPECT_EQ(e.thread, t);
    }
  }
}

// ---- Exporters ------------------------------------------------------------

TEST(TraceExport, PerfettoDumpIsWellFormedJson) {
  Fixture f = MakeFixture(2, /*traced=*/true);
  RunWorkload(f, 0, 50);
  RunWorkload(f, 1, 50);

  const std::string json = CaptureDump(f.engine->tracer(), /*perfetto=*/true);
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"txn\""), std::string::npos);
}

TEST(TraceExport, FlightRecorderDumpListsEveryThread) {
  Fixture f = MakeFixture(2, /*traced=*/true);
  RunWorkload(f, 0, 20);
  RunWorkload(f, 1, 20);
  const std::string text = CaptureDump(f.engine->tracer(), /*perfetto=*/false);
  EXPECT_NE(text.find("== thread 0:"), std::string::npos);
  EXPECT_NE(text.find("== thread 1:"), std::string::npos);
  EXPECT_NE(text.find("txn_commit"), std::string::npos);
}

TEST(TraceExport, MaybeDumpPerfettoWritesFileWhenEnabled) {
  Fixture f = MakeFixture(1, /*traced=*/true);
  RunWorkload(f, 0, 10);
  const char* path = "obs_trace_test_perfetto.json";
  std::remove(path);
  setenv("FALCON_TRACE_OUT", path, 1);
  EXPECT_TRUE(MaybeDumpPerfetto(f.engine->tracer(), "unused_fallback.json"));
  unsetenv("FALCON_TRACE_OUT");
  std::FILE* in = std::fopen(path, "r");
  ASSERT_NE(in, nullptr);
  std::string json;
  char chunk[4096];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), in)) > 0) {
    json.append(chunk, n);
  }
  std::fclose(in);
  std::remove(path);
  EXPECT_TRUE(JsonChecker(json).Valid());

  Fixture off = MakeFixture(1, /*traced=*/false);
  EXPECT_FALSE(MaybeDumpPerfetto(off.engine->tracer(), "unused_fallback.json"));
}

// ---- Crash-sweep flight recorder ------------------------------------------

TEST(TraceFlightRecorder, ForcedViolationDumpsArmedCrashStep) {
  test::SweepConfig cfg;
  cfg.make = MakeFalconOcc;
  cfg.force_violation = true;

  const uint64_t steps = test::CountSteps(cfg);
  ASSERT_GT(steps, 0u);
  const uint64_t step = steps / 2 + 1;

  char dir_template[] = "/tmp/falcon_flight_test_XXXXXX";
  char* dir = mkdtemp(dir_template);
  ASSERT_NE(dir, nullptr);
  setenv("FALCON_FLIGHT_DIR", dir, 1);
  const test::SweepResult result = test::RunCrashAt(cfg, step);
  unsetenv("FALCON_FLIGHT_DIR");

  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.violation.find("forced violation"), std::string::npos);
  ASSERT_TRUE(result.crashed);
  EXPECT_EQ(result.crash_step, step);

  // The captured timeline must show the armed crash firing.
  ASSERT_FALSE(result.flight_recorder.empty());
  EXPECT_NE(result.flight_recorder.find("crash_fired"), std::string::npos);
  EXPECT_NE(result.flight_recorder.find("step=" + std::to_string(step)), std::string::npos);
  EXPECT_NE(result.flight_recorder.find("== thread 0:"), std::string::npos);

  // And the violation message must point at the published artifact.
  const size_t tag = result.violation.find("[flight recorder: ");
  ASSERT_NE(tag, std::string::npos) << result.violation;
  const size_t start = tag + std::strlen("[flight recorder: ");
  const size_t end = result.violation.find(']', start);
  ASSERT_NE(end, std::string::npos);
  const std::string path = result.violation.substr(start, end - start);
  std::FILE* in = std::fopen(path.c_str(), "r");
  ASSERT_NE(in, nullptr) << path;
  std::fclose(in);
  std::remove(path.c_str());
  rmdir(dir);
}

TEST(TraceFlightRecorder, CleanSweepStaysSilent) {
  test::SweepConfig cfg;
  cfg.make = MakeFalconOcc;
  const test::SweepResult result = test::RunCrashAt(cfg, /*step=*/0);
  EXPECT_TRUE(result.ok()) << result.violation;
  EXPECT_TRUE(result.flight_recorder.empty());
}

}  // namespace
}  // namespace falcon
