// Unit + property tests for the NBTree-style B+tree, over both NVM and DRAM
// placements, including ordered scans and concurrent structure changes.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/index/btree_index.h"
#include "src/pmem/catalog.h"

namespace falcon {
namespace {

enum class Placement { kNvm, kDram };

class BTreeIndexTest : public ::testing::TestWithParam<Placement> {
 protected:
  BTreeIndexTest()
      : dev_(512ul * 1024 * 1024), arena_(NvmArena::Format(&dev_)), ctx_(0, &dev_) {
    if (GetParam() == Placement::kNvm) {
      space_ = std::make_unique<NvmIndexSpace>(&arena_);
    } else {
      space_ = std::make_unique<DramIndexSpace>();
    }
    index_ = std::make_unique<BTreeIndex>(space_.get(), ctx_);
  }

  NvmDevice dev_;
  NvmArena arena_;
  ThreadContext ctx_;
  std::unique_ptr<IndexSpace> space_;
  std::unique_ptr<BTreeIndex> index_;
};

TEST_P(BTreeIndexTest, InsertLookupRemove) {
  EXPECT_EQ(index_->Lookup(ctx_, 10), kNullPm);
  EXPECT_EQ(index_->Insert(ctx_, 10, 0x10), Status::kOk);
  EXPECT_EQ(index_->Insert(ctx_, 10, 0x20), Status::kDuplicate);
  EXPECT_EQ(index_->Lookup(ctx_, 10), 0x10u);
  EXPECT_EQ(index_->Remove(ctx_, 10), Status::kOk);
  EXPECT_EQ(index_->Remove(ctx_, 10), Status::kNotFound);
  EXPECT_EQ(index_->Lookup(ctx_, 10), kNullPm);
}

TEST_P(BTreeIndexTest, UpdateExistingKey) {
  EXPECT_EQ(index_->Update(ctx_, 1, 0x99), Status::kNotFound);
  ASSERT_EQ(index_->Insert(ctx_, 1, 0x11), Status::kOk);
  EXPECT_EQ(index_->Update(ctx_, 1, 0x99), Status::kOk);
  EXPECT_EQ(index_->Lookup(ctx_, 1), 0x99u);
}

TEST_P(BTreeIndexTest, SequentialInsertGrowsTree) {
  constexpr uint64_t kKeys = 100000;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(index_->Insert(ctx_, k, k + 1), Status::kOk) << k;
  }
  EXPECT_EQ(index_->Size(), kKeys);
  for (uint64_t k = 0; k < kKeys; k += 379) {
    EXPECT_EQ(index_->Lookup(ctx_, k), k + 1);
  }
}

TEST_P(BTreeIndexTest, ReverseAndRandomInsertOrders) {
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 20000; ++k) {
    keys.push_back(k * 3 + 1);
  }
  Rng rng(5);
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.NextBounded(i)]);
  }
  for (const uint64_t k : keys) {
    ASSERT_EQ(index_->Insert(ctx_, k, k), Status::kOk);
  }
  for (const uint64_t k : keys) {
    EXPECT_EQ(index_->Lookup(ctx_, k), k);
  }
  // Keys not inserted are absent.
  EXPECT_EQ(index_->Lookup(ctx_, 2), kNullPm);
}

TEST_P(BTreeIndexTest, ScanReturnsSortedRange) {
  for (uint64_t k = 0; k < 10000; ++k) {
    ASSERT_EQ(index_->Insert(ctx_, k * 2, k), Status::kOk);  // even keys only
  }
  std::vector<IndexEntry> out;
  ASSERT_EQ(index_->Scan(ctx_, 101, 301, 1000, out), Status::kOk);
  ASSERT_EQ(out.size(), 100u);  // 102, 104, ..., 300
  EXPECT_EQ(out.front().key, 102u);
  EXPECT_EQ(out.back().key, 300u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end(),
                             [](const auto& a, const auto& b) { return a.key < b.key; }));
  for (const auto& e : out) {
    EXPECT_EQ(e.value, e.key / 2);
  }
}

TEST_P(BTreeIndexTest, ScanHonorsLimit) {
  for (uint64_t k = 0; k < 1000; ++k) {
    index_->Insert(ctx_, k, k);
  }
  std::vector<IndexEntry> out;
  ASSERT_EQ(index_->Scan(ctx_, 0, UINT64_MAX, 17, out), Status::kOk);
  EXPECT_EQ(out.size(), 17u);
  EXPECT_EQ(out.back().key, 16u);
}

TEST_P(BTreeIndexTest, ScanEmptyRangeAndEmptyTree) {
  std::vector<IndexEntry> out;
  EXPECT_EQ(index_->Scan(ctx_, 0, UINT64_MAX, 10, out), Status::kOk);
  EXPECT_TRUE(out.empty());
  index_->Insert(ctx_, 500, 1);
  EXPECT_EQ(index_->Scan(ctx_, 100, 400, 10, out), Status::kOk);
  EXPECT_TRUE(out.empty());
}

TEST_P(BTreeIndexTest, ScanAcrossLeafBoundaries) {
  constexpr uint64_t kKeys = 5000;
  for (uint64_t k = 0; k < kKeys; ++k) {
    index_->Insert(ctx_, k, k);
  }
  std::vector<IndexEntry> out;
  ASSERT_EQ(index_->Scan(ctx_, 0, UINT64_MAX, kKeys + 10, out), Status::kOk);
  ASSERT_EQ(out.size(), kKeys);
  for (uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(out[k].key, k);
  }
}

TEST_P(BTreeIndexTest, RandomizedAgainstReferenceMap) {
  std::map<uint64_t, uint64_t> reference;
  Rng rng(123);
  for (int op = 0; op < 60000; ++op) {
    const uint64_t key = rng.NextBounded(3000);
    const uint64_t value = rng.Next() | 1;
    switch (rng.NextBounded(5)) {
      case 0: {
        const Status s = index_->Insert(ctx_, key, value);
        if (reference.count(key) != 0) {
          EXPECT_EQ(s, Status::kDuplicate);
        } else {
          EXPECT_EQ(s, Status::kOk);
          reference[key] = value;
        }
        break;
      }
      case 1: {
        const Status s = index_->Remove(ctx_, key);
        EXPECT_EQ(s, reference.erase(key) != 0 ? Status::kOk : Status::kNotFound);
        break;
      }
      case 2: {
        const Status s = index_->Update(ctx_, key, value);
        if (reference.count(key) != 0) {
          EXPECT_EQ(s, Status::kOk);
          reference[key] = value;
        } else {
          EXPECT_EQ(s, Status::kNotFound);
        }
        break;
      }
      case 3: {
        const PmOffset got = index_->Lookup(ctx_, key);
        const auto it = reference.find(key);
        EXPECT_EQ(got, it == reference.end() ? kNullPm : it->second);
        break;
      }
      default: {
        const uint64_t hi = key + rng.NextBounded(200);
        std::vector<IndexEntry> out;
        ASSERT_EQ(index_->Scan(ctx_, key, hi, 1000, out), Status::kOk);
        auto it = reference.lower_bound(key);
        size_t i = 0;
        while (it != reference.end() && it->first <= hi) {
          ASSERT_LT(i, out.size());
          EXPECT_EQ(out[i].key, it->first);
          EXPECT_EQ(out[i].value, it->second);
          ++i;
          ++it;
        }
        EXPECT_EQ(i, out.size());
        break;
      }
    }
  }
  EXPECT_EQ(index_->Size(), reference.size());
}

TEST_P(BTreeIndexTest, ConcurrentDisjointInserts) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 15000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadContext ctx(static_cast<uint32_t>(t), &dev_);
      Rng rng(t);
      // Interleaved stripes to force shared leaves and splits.
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t key = i * kThreads + static_cast<uint64_t>(t);
        ASSERT_EQ(index_->Insert(ctx, key, key + 1), Status::kOk);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(index_->Size(), kThreads * kPerThread);
  for (uint64_t key = 0; key < kThreads * kPerThread; key += 101) {
    EXPECT_EQ(index_->Lookup(ctx_, key), key + 1);
  }
}

TEST_P(BTreeIndexTest, ConcurrentReadersAndScannersDuringInserts) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> write_progress{0};
  constexpr uint64_t kKeys = 40000;

  std::thread writer([&] {
    ThreadContext ctx(1, &dev_);
    for (uint64_t k = 0; k < kKeys; ++k) {
      ASSERT_EQ(index_->Insert(ctx, k, k + 1), Status::kOk);
      write_progress.store(k, std::memory_order_release);
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      ThreadContext ctx(static_cast<uint32_t>(2 + t), &dev_);
      Rng rng(t);
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t hi = write_progress.load(std::memory_order_acquire);
        const uint64_t k = rng.NextBounded(hi + 1);
        ASSERT_EQ(index_->Lookup(ctx, k), k + 1);
      }
    });
  }
  readers.emplace_back([&] {
    ThreadContext ctx(5, &dev_);
    Rng rng(42);
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t hi = write_progress.load(std::memory_order_acquire);
      if (hi < 100) {
        continue;
      }
      const uint64_t start = rng.NextBounded(hi - 99);
      std::vector<IndexEntry> out;
      ASSERT_EQ(index_->Scan(ctx, start, start + 99, 200, out), Status::kOk);
      // Published prefix is dense: the scan must see every key in range.
      ASSERT_EQ(out.size(), 100u) << "scan lost keys during concurrent splits";
      for (size_t i = 0; i < out.size(); ++i) {
        ASSERT_EQ(out[i].key, start + i);
      }
    }
  });
  writer.join();
  for (auto& th : readers) {
    th.join();
  }
}

INSTANTIATE_TEST_SUITE_P(Placements, BTreeIndexTest,
                         ::testing::Values(Placement::kNvm, Placement::kDram),
                         [](const auto& info) {
                           return info.param == Placement::kNvm ? "Nvm" : "Dram";
                         });

TEST(BTreeRecoveryTest, SurvivesReopen) {
  NvmDevice dev(256ul * 1024 * 1024);
  NvmArena arena = NvmArena::Format(&dev);
  ThreadContext ctx(0, &dev);
  NvmIndexSpace space(&arena);

  IndexHandle root;
  {
    BTreeIndex index(&space, ctx);
    root = index.root_handle();
    for (uint64_t k = 0; k < 50000; ++k) {
      ASSERT_EQ(index.Insert(ctx, k, k + 1), Status::kOk);
    }
  }
  BTreeIndex recovered(&space, root);
  recovered.Recover(ctx);
  EXPECT_EQ(recovered.Size(), 50000u);
  for (uint64_t k = 0; k < 50000; k += 73) {
    EXPECT_EQ(recovered.Lookup(ctx, k), k + 1);
  }
  std::vector<IndexEntry> out;
  ASSERT_EQ(recovered.Scan(ctx, 1000, 1099, 200, out), Status::kOk);
  EXPECT_EQ(out.size(), 100u);
  EXPECT_EQ(recovered.Insert(ctx, 1ull << 50, 3), Status::kOk);
}

}  // namespace
}  // namespace falcon
