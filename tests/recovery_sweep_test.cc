// Exhaustive deterministic crash sweep (single worker): count every
// persistence step the seeded mixed insert/update/delete workload generates,
// then crash at each one in turn and hold the recovered engine against the
// shadow-table oracle. A failure prints the engine, seed, and step, and the
// run replays bit-for-bit with FALCON_TEST_SEED.

#include <gtest/gtest.h>

#include <string>

#include "tests/harness/crash_sweep.h"
#include "tests/harness/test_seed.h"

namespace falcon::test {
namespace {

struct Param {
  const char* label;
  EngineConfig (*make)(CcScheme);
  CcScheme cc;
  // Acceptance floor on distinct crash points. In-place engines log, apply,
  // and flush per write, so the same workload spans far more steps than the
  // log-free out-of-place engines.
  uint64_t min_steps;
};

EngineConfig MakeFalcon(CcScheme cc) { return EngineConfig::Falcon(cc); }
EngineConfig MakeOutp(CcScheme cc) { return EngineConfig::Outp(cc); }
EngineConfig MakeZenS(CcScheme cc) { return EngineConfig::ZenS(cc); }

SweepConfig MakeConfig(const Param& p) {
  SweepConfig cfg;
  cfg.make = p.make;
  cfg.cc = p.cc;
  cfg.threads = 1;
  cfg.txns_per_thread = 48;
  cfg.keys_per_thread = 16;
  cfg.max_ops_per_txn = 4;
  cfg.seed = TestSeed(0xfa1c0 + static_cast<uint64_t>(p.cc));
  return cfg;
}

class CrashSweepTest : public ::testing::TestWithParam<Param> {};

TEST_P(CrashSweepTest, StepCountIsDeterministic) {
  const SweepConfig cfg = MakeConfig(GetParam());
  FALCON_SCOPED_SEED(cfg.seed);
  const uint64_t a = CountSteps(cfg);
  const uint64_t b = CountSteps(cfg);
  EXPECT_EQ(a, b) << "same seed must generate the same persistence schedule";
  EXPECT_GE(a, GetParam().min_steps);
}

TEST_P(CrashSweepTest, CleanRunSatisfiesTheOracle) {
  const SweepConfig cfg = MakeConfig(GetParam());
  FALCON_SCOPED_SEED(cfg.seed);
  const SweepResult clean = RunCrashAt(cfg, 0);
  ASSERT_TRUE(clean.ok()) << clean.violation;
  EXPECT_FALSE(clean.crashed);
  EXPECT_GT(clean.commits_acked, cfg.keys_per_thread) << "workload committed nothing";
}

TEST_P(CrashSweepTest, EveryPersistenceStepRecovers) {
  const SweepConfig cfg = MakeConfig(GetParam());
  FALCON_SCOPED_SEED(cfg.seed);
  const uint64_t steps = CountSteps(cfg);
  ASSERT_GE(steps, GetParam().min_steps) << "workload too small for a meaningful sweep";
  for (uint64_t step = 1; step <= steps; ++step) {
    const SweepResult r = RunCrashAt(cfg, step);
    ASSERT_TRUE(r.ok()) << r.violation;
    // The single-threaded run is deterministic: every counted step fires.
    ASSERT_TRUE(r.crashed) << "armed step " << step << " of " << steps << " never fired";
    ASSERT_EQ(r.crash_step, step);
    ASSERT_TRUE(r.report.recovered);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, CrashSweepTest,
    ::testing::Values(Param{"Falcon_2PL", MakeFalcon, CcScheme::k2pl, 200},
                      Param{"Falcon_TO", MakeFalcon, CcScheme::kTo, 200},
                      Param{"Falcon_OCC", MakeFalcon, CcScheme::kOcc, 200},
                      Param{"Falcon_MV2PL", MakeFalcon, CcScheme::kMv2pl, 200},
                      Param{"Falcon_MVTO", MakeFalcon, CcScheme::kMvTo, 200},
                      Param{"Falcon_MVOCC", MakeFalcon, CcScheme::kMvOcc, 200},
                      Param{"Outp_OCC", MakeOutp, CcScheme::kOcc, 50},
                      Param{"Outp_2PL", MakeOutp, CcScheme::k2pl, 50},
                      Param{"ZenS_OCC", MakeZenS, CcScheme::kOcc, 50}),
    [](const auto& info) { return std::string(info.param.label); });

}  // namespace
}  // namespace falcon::test
