// Multi-threaded randomized crash sweep: several workers run disjoint
// partitions of the mixed workload while a random persistence step is armed;
// exactly one thread crashes (the injector consumes the step atomically),
// the engine is reopened, and the shadow oracle must hold. Every round's
// seed and step are printed on failure for deterministic replay.
//
// Kept small enough to finish well under the 5-minute CI budget with
// ThreadSanitizer instrumentation.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "tests/harness/crash_sweep.h"
#include "tests/harness/test_seed.h"

namespace falcon::test {
namespace {

struct Param {
  const char* label;
  EngineConfig (*make)(CcScheme);
  CcScheme cc;
};

EngineConfig MakeFalcon(CcScheme cc) { return EngineConfig::Falcon(cc); }
EngineConfig MakeZenS(CcScheme cc) { return EngineConfig::ZenS(cc); }

class ConcurrentCrashSweepTest : public ::testing::TestWithParam<Param> {};

TEST_P(ConcurrentCrashSweepTest, RandomCrashPointsRecover) {
  constexpr int kRounds = 8;
  const uint64_t base_seed = TestSeed(0xc0ffee ^ static_cast<uint64_t>(GetParam().cc));

  SweepConfig cfg;
  cfg.make = GetParam().make;
  cfg.cc = GetParam().cc;
  cfg.threads = 3;
  cfg.txns_per_thread = 24;
  cfg.keys_per_thread = 12;
  cfg.max_ops_per_txn = 4;
  cfg.seed = base_seed;

  // Step budget from one counting run. Interleaving shifts the exact count
  // round to round, so an armed step can fall past the end and never fire —
  // the oracle must hold either way.
  const uint64_t approx_steps = CountSteps(cfg);
  ASSERT_GT(approx_steps, 0u);

  Rng pick(Mix64(base_seed));
  int fired = 0;
  for (int round = 0; round < kRounds; ++round) {
    cfg.seed = Mix64(base_seed ^ static_cast<uint64_t>(round + 1));
    const uint64_t step = 1 + pick.NextBounded(approx_steps);
    FALCON_SCOPED_SEED(cfg.seed);
    SCOPED_TRACE(::testing::Message() << "round " << round << " armed step " << step);
    const SweepResult r = RunCrashAt(cfg, step);
    ASSERT_TRUE(r.ok()) << r.violation;
    if (r.crashed) {
      ++fired;
      EXPECT_EQ(r.crash_step, step);
    }
  }
  EXPECT_GT(fired, 0) << "no round ever reached its armed step; sweep is vacuous";
}

INSTANTIATE_TEST_SUITE_P(
    Engines, ConcurrentCrashSweepTest,
    ::testing::Values(Param{"Falcon_OCC", MakeFalcon, CcScheme::kOcc},
                      Param{"Falcon_2PL", MakeFalcon, CcScheme::k2pl},
                      Param{"Falcon_MVTO", MakeFalcon, CcScheme::kMvTo},
                      Param{"ZenS_OCC", MakeZenS, CcScheme::kOcc}),
    [](const auto& info) { return std::string(info.param.label); });

// The injector itself must fire exactly once no matter how many threads race
// past the armed step (satellite: race-safe crash injection).
TEST(CrashInjectorTest, ExactlyOneThreadFires) {
  for (int round = 0; round < 50; ++round) {
    CrashInjector injector;
    injector.ArmStep(64);
    std::atomic<int> fired{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 64; ++i) {
          if (injector.ConsumeStep() != 0) {
            fired.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    EXPECT_EQ(fired.load(), 1) << "round " << round;
  }
}

TEST(CrashInjectorTest, DisarmedInjectorNeverFires) {
  CrashInjector injector;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.ConsumeStep(), 0u);
  }
  injector.ArmStep(5);
  injector.Disarm();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.ConsumeStep(), 0u);
  }
}

TEST(CrashInjectorTest, CountingModeNumbersWithoutFiring) {
  CrashInjector injector;
  injector.BeginCount();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(injector.ConsumeStep(), 0u);
  }
  EXPECT_EQ(injector.StepsCounted(), 10u);
}

}  // namespace
}  // namespace falcon::test
