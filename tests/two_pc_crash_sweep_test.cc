// Exhaustive deterministic 2PC crash sweep over the Database facade: count
// every persistence step a seeded cross-shard workload generates on one
// shard's engine, then crash at each step in turn — arming the coordinator
// shard and a participant shard separately — and hold the recovered database
// against the shadow-table oracle. Cross-shard atomicity must hold at every
// step: the wounded transaction lands all-old on every shard (crash at or
// before the coordinator's decision mark, presumed abort) or all-new on
// every shard (decision durable, participants roll forward through the
// coordinator's record).

#include <gtest/gtest.h>

#include <string>

#include "tests/harness/db_crash_sweep.h"
#include "tests/harness/test_seed.h"

namespace falcon::test {
namespace {

struct Param {
  const char* label;
  EngineConfig (*make)(CcScheme);
  CcScheme cc;
  uint32_t shards;
  // Acceptance floor on distinct crash points per armed shard.
  uint64_t min_steps;
};

EngineConfig MakeFalcon(CcScheme cc) { return EngineConfig::Falcon(cc); }
EngineConfig MakeOutp(CcScheme cc) { return EngineConfig::Outp(cc); }

DbSweepConfig MakeConfig(const Param& p) {
  DbSweepConfig cfg;
  cfg.make = p.make;
  cfg.cc = p.cc;
  cfg.shards = p.shards;
  cfg.txns = 24;
  cfg.keys_per_shard = 8;
  cfg.seed = TestSeed(0x2bc0 + static_cast<uint64_t>(p.cc) + 17 * p.shards);
  return cfg;
}

class TwoPcCrashSweepTest : public ::testing::TestWithParam<Param> {};

TEST_P(TwoPcCrashSweepTest, StepCountIsDeterministicPerShard) {
  const DbSweepConfig cfg = MakeConfig(GetParam());
  FALCON_SCOPED_SEED(cfg.seed);
  for (uint32_t shard = 0; shard < cfg.shards; ++shard) {
    const uint64_t a = CountDbSteps(cfg, shard);
    const uint64_t b = CountDbSteps(cfg, shard);
    EXPECT_EQ(a, b) << "shard " << shard
                    << ": same seed must generate the same persistence schedule";
    EXPECT_GE(a, GetParam().min_steps) << "shard " << shard;
  }
}

TEST_P(TwoPcCrashSweepTest, CleanRunSatisfiesTheOracle) {
  const DbSweepConfig cfg = MakeConfig(GetParam());
  FALCON_SCOPED_SEED(cfg.seed);
  const DbSweepResult clean = RunDbCrashAt(cfg, /*armed_shard=*/0, /*step=*/0);
  ASSERT_TRUE(clean.ok()) << clean.violation;
  EXPECT_FALSE(clean.crashed);
  EXPECT_GT(clean.commits_acked, uint64_t{cfg.shards} * cfg.keys_per_shard)
      << "workload committed nothing beyond the preload";
  EXPECT_GT(clean.cross_shard_acked, 0u)
      << "workload never exercised a cross-shard (2PC) commit";
}

// The tentpole guarantee: every persistence step of every shard — 2PC
// prepare marks, the coordinator's decision mark, participant decision
// marks, applies, flushes and slot releases — recovers atomically.
TEST_P(TwoPcCrashSweepTest, EveryStepOnEveryShardRecoversAtomically) {
  const DbSweepConfig cfg = MakeConfig(GetParam());
  FALCON_SCOPED_SEED(cfg.seed);
  bool saw_all_old = false;
  bool saw_all_new = false;
  for (uint32_t shard = 0; shard < cfg.shards; ++shard) {
    const uint64_t steps = CountDbSteps(cfg, shard);
    ASSERT_GE(steps, GetParam().min_steps)
        << "shard " << shard << ": workload too small for a meaningful sweep";
    for (uint64_t step = 1; step <= steps; ++step) {
      const DbSweepResult r = RunDbCrashAt(cfg, shard, step);
      ASSERT_TRUE(r.ok()) << r.violation;
      // The serial session is deterministic: every counted step fires.
      ASSERT_TRUE(r.crashed) << "shard " << shard << ": armed step " << step
                             << " of " << steps << " never fired";
      ASSERT_EQ(r.crash_step, step);
      (r.wounded_all_new ? saw_all_new : saw_all_old) = true;
    }
  }
  // The sweep must cross the decision boundary in both directions, or it
  // proved nothing about 2PC atomicity.
  EXPECT_TRUE(saw_all_old) << "no crash step landed before a commit decision";
  EXPECT_TRUE(saw_all_new) << "no crash step landed after a commit decision";
}

INSTANTIATE_TEST_SUITE_P(
    Engines, TwoPcCrashSweepTest,
    ::testing::Values(Param{"Falcon_OCC_M2", MakeFalcon, CcScheme::kOcc, 2, 100},
                      Param{"Falcon_2PL_M2", MakeFalcon, CcScheme::k2pl, 2, 100},
                      Param{"Falcon_MVOCC_M2", MakeFalcon, CcScheme::kMvOcc, 2, 100},
                      Param{"Outp_OCC_M2", MakeOutp, CcScheme::kOcc, 2, 40},
                      // Three shards spread the same txn count thinner, so
                      // the per-shard step floor is lower.
                      Param{"Falcon_OCC_M3", MakeFalcon, CcScheme::kOcc, 3, 50}),
    [](const auto& info) { return std::string(info.param.label); });

}  // namespace
}  // namespace falcon::test
