// Unit + property tests for the Dash-style hash index, over both NVM and
// DRAM placements (parameterized).

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/index/hash_index.h"
#include "src/pmem/catalog.h"

namespace falcon {
namespace {

enum class Placement { kNvm, kDram };

class HashIndexTest : public ::testing::TestWithParam<Placement> {
 protected:
  HashIndexTest()
      : dev_(256ul * 1024 * 1024), arena_(NvmArena::Format(&dev_)), ctx_(0, &dev_) {
    if (GetParam() == Placement::kNvm) {
      space_ = std::make_unique<NvmIndexSpace>(&arena_);
    } else {
      space_ = std::make_unique<DramIndexSpace>();
    }
    index_ = std::make_unique<HashIndex>(space_.get(), ctx_);
  }

  NvmDevice dev_;
  NvmArena arena_;
  ThreadContext ctx_;
  std::unique_ptr<IndexSpace> space_;
  std::unique_ptr<HashIndex> index_;
};

TEST_P(HashIndexTest, InsertLookup) {
  EXPECT_EQ(index_->Lookup(ctx_, 1), kNullPm);
  EXPECT_EQ(index_->Insert(ctx_, 1, 0x100), Status::kOk);
  EXPECT_EQ(index_->Lookup(ctx_, 1), 0x100u);
  EXPECT_EQ(index_->Size(), 1u);
}

TEST_P(HashIndexTest, DuplicateInsertRejected) {
  EXPECT_EQ(index_->Insert(ctx_, 5, 0x100), Status::kOk);
  EXPECT_EQ(index_->Insert(ctx_, 5, 0x200), Status::kDuplicate);
  EXPECT_EQ(index_->Lookup(ctx_, 5), 0x100u);
}

TEST_P(HashIndexTest, UpdateRepointsValue) {
  EXPECT_EQ(index_->Update(ctx_, 9, 0x300), Status::kNotFound);
  ASSERT_EQ(index_->Insert(ctx_, 9, 0x100), Status::kOk);
  EXPECT_EQ(index_->Update(ctx_, 9, 0x300), Status::kOk);
  EXPECT_EQ(index_->Lookup(ctx_, 9), 0x300u);
  EXPECT_EQ(index_->Size(), 1u);
}

TEST_P(HashIndexTest, RemoveDeletesKey) {
  EXPECT_EQ(index_->Remove(ctx_, 3), Status::kNotFound);
  ASSERT_EQ(index_->Insert(ctx_, 3, 0x100), Status::kOk);
  EXPECT_EQ(index_->Remove(ctx_, 3), Status::kOk);
  EXPECT_EQ(index_->Lookup(ctx_, 3), kNullPm);
  EXPECT_EQ(index_->Size(), 0u);
  // Reinsert works after removal.
  EXPECT_EQ(index_->Insert(ctx_, 3, 0x200), Status::kOk);
  EXPECT_EQ(index_->Lookup(ctx_, 3), 0x200u);
}

TEST_P(HashIndexTest, ScanUnsupported) {
  std::vector<IndexEntry> out;
  EXPECT_EQ(index_->Scan(ctx_, 0, 100, 10, out), Status::kInvalidArgument);
}

TEST_P(HashIndexTest, GrowsThroughManySplits) {
  constexpr uint64_t kKeys = 200000;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(index_->Insert(ctx_, k, k * 8 + 64), Status::kOk) << k;
  }
  EXPECT_EQ(index_->Size(), kKeys);
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t k = rng.NextBounded(kKeys);
    EXPECT_EQ(index_->Lookup(ctx_, k), k * 8 + 64);
  }
  EXPECT_EQ(index_->Lookup(ctx_, kKeys + 1), kNullPm);
}

TEST_P(HashIndexTest, RandomizedAgainstReferenceMap) {
  // Property test: a random op stream applied to the index and a std::map
  // must agree at every step.
  std::map<uint64_t, uint64_t> reference;
  Rng rng(99);
  for (int op = 0; op < 50000; ++op) {
    const uint64_t key = rng.NextBounded(500);
    const uint64_t value = (rng.NextBounded(1u << 20) + 1) * 8;
    switch (rng.NextBounded(4)) {
      case 0: {
        const Status s = index_->Insert(ctx_, key, value);
        if (reference.count(key) != 0) {
          EXPECT_EQ(s, Status::kDuplicate);
        } else {
          EXPECT_EQ(s, Status::kOk);
          reference[key] = value;
        }
        break;
      }
      case 1: {
        const Status s = index_->Update(ctx_, key, value);
        if (reference.count(key) != 0) {
          EXPECT_EQ(s, Status::kOk);
          reference[key] = value;
        } else {
          EXPECT_EQ(s, Status::kNotFound);
        }
        break;
      }
      case 2: {
        const Status s = index_->Remove(ctx_, key);
        EXPECT_EQ(s, reference.erase(key) != 0 ? Status::kOk : Status::kNotFound);
        break;
      }
      default: {
        const PmOffset v = index_->Lookup(ctx_, key);
        const auto it = reference.find(key);
        EXPECT_EQ(v, it == reference.end() ? kNullPm : it->second);
        break;
      }
    }
  }
  EXPECT_EQ(index_->Size(), reference.size());
  for (const auto& [key, value] : reference) {
    EXPECT_EQ(index_->Lookup(ctx_, key), value);
  }
}

TEST_P(HashIndexTest, ConcurrentDisjointInserts) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadContext ctx(static_cast<uint32_t>(t), &dev_);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>(t) * kPerThread + i;
        ASSERT_EQ(index_->Insert(ctx, key, key + 1), Status::kOk);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(index_->Size(), kThreads * kPerThread);
  ThreadContext ctx(0, &dev_);
  for (uint64_t key = 0; key < kThreads * kPerThread; key += 97) {
    EXPECT_EQ(index_->Lookup(ctx, key), key + 1);
  }
}

TEST_P(HashIndexTest, ConcurrentReadersDuringWrites) {
  constexpr uint64_t kKeys = 50000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> write_progress{0};

  std::thread writer([&] {
    ThreadContext ctx(1, &dev_);
    for (uint64_t k = 0; k < kKeys; ++k) {
      ASSERT_EQ(index_->Insert(ctx, k, k + 1), Status::kOk);
      // Publish the COUNT of inserted keys, not the last key: the initial 0
      // must mean "nothing published yet", or a reader that starts before
      // the first insert looks up key 0 and reports it lost.
      write_progress.store(k + 1, std::memory_order_release);
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      ThreadContext ctx(static_cast<uint32_t>(2 + t), &dev_);
      Rng rng(t);
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t hi = write_progress.load(std::memory_order_acquire);
        if (hi == 0) {
          continue;  // nothing published yet
        }
        const uint64_t k = rng.NextBounded(hi);
        // Keys < write_progress are fully published: must be found.
        ASSERT_EQ(index_->Lookup(ctx, k), k + 1) << "lost key during concurrent growth";
      }
    });
  }
  writer.join();
  for (auto& th : readers) {
    th.join();
  }
}

TEST_P(HashIndexTest, MixedConcurrentMutations) {
  // Each thread owns a key stripe and mutates only its own keys, while
  // lookups span everything: exercises bucket lock + split interleavings.
  constexpr int kThreads = 6;
  constexpr int kOps = 30000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadContext ctx(static_cast<uint32_t>(t), &dev_);
      Rng rng(t * 7 + 1);
      std::map<uint64_t, uint64_t> mine;
      for (int i = 0; i < kOps; ++i) {
        const uint64_t key = (rng.NextBounded(2000) << 4) | static_cast<uint64_t>(t);
        const uint64_t value = rng.Next() | 1;
        switch (rng.NextBounded(3)) {
          case 0:
            if (index_->Insert(ctx, key, value) == Status::kOk) {
              ASSERT_EQ(mine.count(key), 0u);
              mine[key] = value;
            } else {
              ASSERT_NE(mine.count(key), 0u);
            }
            break;
          case 1:
            if (index_->Remove(ctx, key) == Status::kOk) {
              ASSERT_EQ(mine.erase(key), 1u);
            } else {
              ASSERT_EQ(mine.count(key), 0u);
            }
            break;
          default: {
            const PmOffset got = index_->Lookup(ctx, key);
            const auto it = mine.find(key);
            ASSERT_EQ(got, it == mine.end() ? kNullPm : it->second);
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
}

INSTANTIATE_TEST_SUITE_P(Placements, HashIndexTest,
                         ::testing::Values(Placement::kNvm, Placement::kDram),
                         [](const auto& info) {
                           return info.param == Placement::kNvm ? "Nvm" : "Dram";
                         });

TEST(HashIndexRecoveryTest, SurvivesReopenWithClearedLatches) {
  NvmDevice dev(256ul * 1024 * 1024);
  NvmArena arena = NvmArena::Format(&dev);
  ThreadContext ctx(0, &dev);
  NvmIndexSpace space(&arena);

  IndexHandle root;
  {
    HashIndex index(&space, ctx);
    root = index.root_handle();
    for (uint64_t k = 0; k < 100000; ++k) {
      ASSERT_EQ(index.Insert(ctx, k, k + 1), Status::kOk);
    }
  }
  // Simulated crash: attach a fresh instance to the persistent root.
  HashIndex recovered(&space, root);
  recovered.Recover(ctx);
  EXPECT_EQ(recovered.Size(), 100000u);
  for (uint64_t k = 0; k < 100000; k += 41) {
    EXPECT_EQ(recovered.Lookup(ctx, k), k + 1);
  }
  // And it remains writable.
  EXPECT_EQ(recovered.Insert(ctx, 1ull << 40, 7), Status::kOk);
  EXPECT_EQ(recovered.Lookup(ctx, 1ull << 40), 7u);
}

TEST(HashIndexPersistenceTest, NvmPlacementWritesToDevice) {
  NvmDevice dev(64ul * 1024 * 1024);
  NvmArena arena = NvmArena::Format(&dev);
  ThreadContext ctx(0, &dev);

  NvmIndexSpace nvm_space(&arena);
  HashIndex nvm_index(&nvm_space, ctx);
  nvm_index.set_flush_writes(true);
  for (uint64_t k = 0; k < 1000; ++k) {
    nvm_index.Insert(ctx, k, k + 1);
  }
  dev.DrainAll();
  EXPECT_GT(dev.stats().media_writes, 0u) << "flushed NVM index must produce media traffic";

  dev.ResetStats();
  DramIndexSpace dram_space;
  HashIndex dram_index(&dram_space, ctx);
  dram_index.set_flush_writes(true);  // must be a no-op for DRAM
  ThreadContext ctx2(1, &dev);
  for (uint64_t k = 0; k < 1000; ++k) {
    dram_index.Insert(ctx2, k, k + 1);
  }
  dev.DrainAll();
  EXPECT_EQ(dev.stats().media_writes, 0u) << "DRAM index must never touch the NVM device";
}

}  // namespace
}  // namespace falcon
